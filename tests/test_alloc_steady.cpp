// Steady-state allocation regression test for the filter's per-reading path.
//
// Every container the hot path touches is a member or thread_local scratch
// buffer sized on first use: the spatial index's rebuild scratch, the fusion
// subset, the SoA gather slices, the resample picks and drawn-particle
// staging (src/radloc/filter/particle_filter.hpp). Once those have reached
// capacity, a reading must not allocate at all — this test counts EVERY
// global operator new (plain, array, aligned, nothrow) during readings
// processed after a warm-up pass and requires exactly zero.
//
// The scenario pins the subset size: the fusion range covers the whole
// area, so |P'| == num_particles for every reading and capacity demands
// are deterministic (a partial-coverage subset would make the high-water
// mark stochastic under resampling jitter).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "radloc/filter/particle_filter.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace {

std::atomic<long> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void note_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_alloc(std::size_t size) {
  note_alloc();
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* checked_aligned_alloc(std::size_t size, std::align_val_t align) {
  note_alloc();
  const std::size_t al = std::max(static_cast<std::size_t>(align), sizeof(void*));
  void* p = nullptr;
  if (posix_memalign(&p, al, size != 0 ? size : al) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

// Replacement allocation functions: counting wrappers over malloc. All forms
// are replaced as a set so new/delete stay paired (AlignedAllocator uses the
// align_val_t forms; the containers use the plain ones).
void* operator new(std::size_t size) { return checked_alloc(size); }
void* operator new[](std::size_t size) { return checked_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return checked_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return checked_aligned_alloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace radloc {
namespace {

long count_allocs_during_one_pass(FusionParticleFilter& filter,
                                  const std::vector<Measurement>& stream) {
  g_alloc_count.store(0);
  g_counting.store(true);
  for (const auto& m : stream) (void)filter.process(m);
  g_counting.store(false);
  return g_alloc_count.load();
}

void run_steady_state_scenario(bool cached_obstacles) {
  Environment env(make_area(60, 60));
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);

  FilterConfig cfg;
  cfg.num_particles = 1500;
  cfg.fusion_range = 200.0;  // covers the whole area: |P'| is deterministic
  cfg.use_known_obstacles = cached_obstacles;
  cfg.use_transmission_cache = cached_obstacles;
  FusionParticleFilter filter(env, sensors, cfg, Rng(11));

  MeasurementSimulator sim(env, sensors, {{{20, 40}, 50.0}, {{45, 15}, 50.0}});
  Rng noise(12);
  std::vector<Measurement> stream;
  for (int step = 0; step < 3; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) stream.push_back(m);
  }

  // Warm-up: builds the transmission fields (when enabled) and grows every
  // scratch buffer to its steady-state capacity.
  for (const auto& m : stream) (void)filter.process(m);

  const long allocs = count_allocs_during_one_pass(filter, stream);
  EXPECT_EQ(allocs, 0) << "per-reading path allocated at steady state"
                       << " (cached_obstacles=" << cached_obstacles << ")";
}

TEST(SteadyStateAllocation, FreeSpaceReadingsAreAllocationFree) {
  run_steady_state_scenario(/*cached_obstacles=*/false);
}

TEST(SteadyStateAllocation, CachedObstacleReadingsAreAllocationFree) {
  run_steady_state_scenario(/*cached_obstacles=*/true);
}

TEST(SteadyStateAllocation, AdaptiveBudgetResizesAreAllocationFree) {
  // The adaptive budget's steady state cycles resize_budget() between a
  // small set of recurring sizes. initialize_particles reserves
  // max_particles capacity up front and resize_budget reuses the picks_/
  // drawn_ scratch, so once every recurring size has been visited (and each
  // size's fusion subset processed once), the resize+process cycle must not
  // allocate.
  Environment env(make_area(60, 60));
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);

  FilterConfig cfg;
  cfg.num_particles = 1024;
  cfg.fusion_range = 200.0;  // covers the whole area: |P'| is deterministic
  cfg.adaptive_budget = true;
  cfg.min_particles = 256;
  cfg.max_particles = 1024;
  FusionParticleFilter filter(env, sensors, cfg, Rng(13));

  MeasurementSimulator sim(env, sensors, {{{20, 40}, 50.0}, {{45, 15}, 50.0}});
  Rng noise(14);
  std::vector<Measurement> stream;
  for (int step = 0; step < 2; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) stream.push_back(m);
  }

  const std::size_t cycle[] = {256, 1024, 512, 256};
  // Warm-up: visit every recurring size and process the stream at each.
  for (const std::size_t count : cycle) {
    (void)filter.resize_budget(count);
    for (const auto& m : stream) (void)filter.process(m);
  }

  g_alloc_count.store(0);
  g_counting.store(true);
  for (const std::size_t count : cycle) {
    (void)filter.resize_budget(count);
    for (const auto& m : stream) (void)filter.process(m);
  }
  g_counting.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0)
      << "adaptive resize+process cycle allocated at steady state";
}

TEST(SteadyStateAllocation, CachedAndFusedReadingsAreAllocationFree) {
  // The scoring cache stores each sensor origin's fusion subset + rates in
  // per-entry buffers: the warm-up pass grows every entry (the constructor
  // reserves the entry table itself), and stale entries are overwritten in
  // place through the same-key slot, so once every origin has been seen both
  // the hit path and the regenerating-miss path must not allocate. Fused
  // groups ride the same scratch as single readings.
  Environment env(make_area(60, 60));
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);

  FilterConfig cfg;
  cfg.num_particles = 1500;
  cfg.fusion_range = 200.0;  // covers the whole area: |P'| is deterministic
  cfg.scoring_cache_entries = 16;  // >= sensor count: no LRU churn
  cfg.ess_resample_threshold = 0.5;  // exercises both the hit and miss paths
  FusionParticleFilter filter(env, sensors, cfg, Rng(11));

  MeasurementSimulator sim(env, sensors, {{{20, 40}, 50.0}, {{45, 15}, 50.0}});
  Rng noise(12);
  // Runs of 3 same-sensor readings: fused groups + repeat-hit lookups.
  std::vector<Measurement> stream;
  for (int step = 0; step < 3; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) {
      for (int r = 0; r < 3; ++r) stream.push_back(m);
    }
  }
  const auto pass = [&] {
    for (std::size_t i = 0; i < stream.size(); i += 3) {
      (void)filter.process_fused(std::span{stream}.subspan(i, 3));
      (void)filter.process(stream[i]);  // single-reading path against the cache
    }
  };
  pass();  // warm-up: every origin cached, every scratch at capacity

  g_alloc_count.store(0);
  g_counting.store(true);
  pass();
  g_counting.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0) << "cached/fused reading path allocated at steady state";
  EXPECT_GT(filter.scoring_cache_hits(), 0u) << "cache never hit; the assertion is vacuous";
  EXPECT_GT(filter.fused_groups(), 0u);
}

TEST(SteadyStateAllocation, CounterSeesOrdinaryAllocations) {
  // Sanity check of the harness itself: a vector growing under counting
  // must register, or the zero assertions above would be vacuous.
  g_alloc_count.store(0);
  g_counting.store(true);
  std::vector<double>* v = new std::vector<double>(256);
  g_counting.store(false);
  delete v;
  EXPECT_GE(g_alloc_count.load(), 1);
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <cmath>

#include "radloc/common/math.hpp"
#include "radloc/optim/nelder_mead.hpp"

namespace radloc {
namespace {

TEST(NelderMead, MinimizesQuadratic1D) {
  const auto res = nelder_mead([](const std::vector<double>& x) { return square(x[0] - 3.0); },
                               {10.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 3.0, 1e-3);
  EXPECT_NEAR(res.value, 0.0, 1e-6);
}

TEST(NelderMead, MinimizesQuadraticBowl3D) {
  const auto res = nelder_mead(
      [](const std::vector<double>& x) {
        return square(x[0] - 1.0) + 2.0 * square(x[1] + 2.0) + 0.5 * square(x[2] - 5.0);
      },
      {0.0, 0.0, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 1.0, 1e-2);
  EXPECT_NEAR(res.x[1], -2.0, 1e-2);
  EXPECT_NEAR(res.x[2], 5.0, 1e-2);
}

TEST(NelderMead, Rosenbrock2D) {
  NelderMeadOptions opts;
  opts.max_evaluations = 20000;
  opts.tolerance = 1e-12;
  const auto res = nelder_mead(
      [](const std::vector<double>& x) {
        return 100.0 * square(x[1] - square(x[0])) + square(1.0 - x[0]);
      },
      {-1.2, 1.0}, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], 1.0, 1e-3);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  NelderMeadOptions opts;
  opts.max_evaluations = 50;
  std::size_t calls = 0;
  const auto res = nelder_mead(
      [&](const std::vector<double>& x) {
        ++calls;
        return square(x[0]) + square(x[1]);
      },
      {100.0, 100.0}, opts);
  EXPECT_LE(res.evaluations, 50u + 4u);  // a few calls may finish the last step
  EXPECT_EQ(res.evaluations, calls);
}

TEST(NelderMead, RejectsEmptyInput) {
  EXPECT_THROW((void)nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
               std::invalid_argument);
}

TEST(NelderMead, HandlesFlatRegionsWithoutLooping) {
  // Piecewise-flat objective: must terminate (by convergence) quickly.
  const auto res = nelder_mead(
      [](const std::vector<double>& x) { return x[0] > 0.0 ? 1.0 : 0.0; }, {5.0});
  EXPECT_TRUE(res.converged || res.evaluations >= 1);
  EXPECT_LE(res.value, 1.0);
}

class NelderMeadSweep : public ::testing::TestWithParam<double> {};

TEST_P(NelderMeadSweep, FindsShiftedMinimum) {
  const double target = GetParam();
  const auto res = nelder_mead(
      [&](const std::vector<double>& x) {
        return square(x[0] - target) + square(x[1] + target);
      },
      {0.0, 0.0});
  EXPECT_NEAR(res.x[0], target, 1e-2);
  EXPECT_NEAR(res.x[1], -target, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Targets, NelderMeadSweep,
                         ::testing::Values(-50.0, -1.0, 0.0, 2.5, 100.0));

}  // namespace
}  // namespace radloc

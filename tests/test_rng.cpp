#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "radloc/common/math.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/rng/poisson_process.hpp"
#include "radloc/rng/rng.hpp"

namespace radloc {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  // The child stream must not simply mirror the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Uniform01, InHalfOpenUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanAndVarianceMatch) {
  Rng rng(43);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(uniform01(rng));
  EXPECT_NEAR(rs.mean(), 0.5, 0.005);
  EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.003);
}

TEST(UniformIndex, CoversRangeWithoutBias) {
  Rng rng(44);
  constexpr std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  constexpr int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[uniform_index(rng, n)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / static_cast<double>(n), 400.0);
  }
}

TEST(UniformIndex, SingleOutcome) {
  Rng rng(45);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(uniform_index(rng, 1), 0u);
}

TEST(UniformPoint, StaysInsideArea) {
  Rng rng(46);
  const AreaBounds area{{10.0, -5.0}, {20.0, 5.0}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(area.contains(uniform_point(rng, area)));
  }
}

TEST(Normal, MomentsMatch) {
  Rng rng(47);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(normal(rng, 3.0, 2.0));
  EXPECT_NEAR(rs.mean(), 3.0, 0.02);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.02);
}

TEST(Exponential, MeanMatches) {
  Rng rng(48);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(exponential(rng, 0.5));
  EXPECT_NEAR(rs.mean(), 2.0, 0.05);
}

/// Poisson sampler property sweep across both algorithm regimes (Knuth
/// below lambda=30, PTRS above).
class PoissonSamplerSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSamplerSweep, MeanAndVarianceEqualLambda) {
  const double lambda = GetParam();
  Rng rng(49);
  RunningStats rs;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) rs.add(static_cast<double>(poisson(rng, lambda)));
  const double tol = 5.0 * std::sqrt(lambda / draws) + 0.01;
  EXPECT_NEAR(rs.mean(), lambda, tol) << "lambda=" << lambda;
  // Variance of the sample variance is ~2 lambda^2 / n for Poisson-ish tails.
  EXPECT_NEAR(rs.variance(), lambda, 10.0 * lambda / std::sqrt(draws) + 0.05)
      << "lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonSamplerSweep,
                         ::testing::Values(0.1, 1.0, 5.0, 29.9, 30.1, 100.0, 5000.0));

TEST(PoissonSampler, ZeroLambdaGivesZero) {
  Rng rng(50);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(poisson(rng, 0.0), 0u);
  EXPECT_EQ(poisson(rng, -3.0), 0u);
}

TEST(PoissonSampler, DistributionMatchesPmfChiSquared) {
  // Goodness-of-fit against the analytic PMF at lambda = 8.
  const double lambda = 8.0;
  Rng rng(51);
  constexpr int draws = 100000;
  constexpr int k_max = 30;
  std::vector<int> observed(k_max + 1, 0);
  for (int i = 0; i < draws; ++i) {
    const auto k = poisson(rng, lambda);
    ++observed[std::min<std::uint64_t>(k, k_max)];
  }
  double chi2 = 0.0;
  int dof = 0;
  for (int k = 0; k < k_max; ++k) {
    const double expected = draws * poisson_pmf(k, lambda);
    if (expected < 5.0) continue;
    chi2 += square(observed[k] - expected) / expected;
    ++dof;
  }
  // 99.9th percentile of chi2 with ~20 dof is ~45; allow slack.
  EXPECT_LT(chi2, 60.0) << "dof=" << dof;
}

TEST(PoissonProcess, BinomialCountExact) {
  Rng rng(52);
  const auto pts = sample_binomial_process(rng, make_area(100, 100), 195);
  EXPECT_EQ(pts.size(), 195u);
  const AreaBounds area = make_area(100, 100);
  for (const auto& p : pts) EXPECT_TRUE(area.contains(p));
}

TEST(PoissonProcess, HomogeneousCountIsPoisson) {
  Rng rng(53);
  const AreaBounds area = make_area(10, 10);
  const double intensity = 0.5;  // expect 50 points
  RunningStats rs;
  for (int i = 0; i < 2000; ++i) {
    rs.add(static_cast<double>(sample_poisson_process(rng, area, intensity).size()));
  }
  EXPECT_NEAR(rs.mean(), 50.0, 1.0);
  EXPECT_NEAR(rs.variance(), 50.0, 5.0);
}

TEST(PoissonProcess, RejectsNegativeIntensity) {
  Rng rng(54);
  EXPECT_THROW((void)sample_poisson_process(rng, make_area(1, 1), -1.0), std::invalid_argument);
}

TEST(SeparatedPoints, RespectsMinDistanceWhenFeasible) {
  Rng rng(55);
  const auto pts = sample_separated_points(rng, make_area(100, 100), 9, 20.0);
  ASSERT_EQ(pts.size(), 9u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GE(distance(pts[i], pts[j]), 20.0);
    }
  }
}

TEST(SeparatedPoints, FallsBackWhenInfeasible) {
  Rng rng(56);
  // 50 points with 100-unit separation cannot fit in a 100x100 box; the
  // sampler must still return 50 points.
  const auto pts = sample_separated_points(rng, make_area(100, 100), 50, 100.0, 10);
  EXPECT_EQ(pts.size(), 50u);
}

}  // namespace
}  // namespace radloc

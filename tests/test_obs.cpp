// Unified observability layer (src/radloc/obs, DESIGN.md §5.11): instrument
// semantics, quantile accuracy, registry keying, exporter goldens, and the
// trace ring. The exporter tests are GOLDEN-FILE style: exact expected text,
// because the Prometheus exposition and JSONL schemas are interfaces that
// downstream scrapers parse — a formatting drift is a breaking change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "radloc/obs/export.hpp"
#include "radloc/obs/metrics.hpp"
#include "radloc/obs/trace.hpp"

namespace radloc::obs {
namespace {

TEST(Counter, AccumulatesAcrossThreads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kAdds = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 42u + kThreads * kAdds);
}

TEST(Gauge, StoresLastValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketEdgesAndSpecialValues) {
  // Decade buckets: [0,1) [1,10) [10,100) [100,1000) [1000,inf).
  Histogram h(HistogramSpec{1.0, 10.0, 5});
  ASSERT_EQ(h.num_buckets(), 5u);
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(0.999), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 1u);
  EXPECT_EQ(h.bucket_index(9.999), 1u);
  EXPECT_EQ(h.bucket_index(10.0), 2u);
  EXPECT_EQ(h.bucket_index(999.0), 3u);
  EXPECT_EQ(h.bucket_index(1000.0), 4u);
  EXPECT_EQ(h.bucket_index(1e12), 4u);
  // Malformed observations must not throw on the hot path: NaN and negative
  // land in the underflow bucket.
  EXPECT_EQ(h.bucket_index(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(h.bucket_index(-5.0), 0u);
  EXPECT_EQ(h.upper_bound(0), 1.0);
  EXPECT_EQ(h.upper_bound(3), 1000.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(4)));

  h.observe(0.5);
  h.observe(50.0);
  h.observe(1e6);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 50.0 + 1e6);
}

TEST(Histogram, RejectsInvalidSpecs) {
  EXPECT_THROW(Histogram(HistogramSpec{0.0, 2.0, 8}), std::invalid_argument);
  EXPECT_THROW(Histogram(HistogramSpec{1.0, 1.0, 8}), std::invalid_argument);
  EXPECT_THROW(Histogram(HistogramSpec{1.0, 2.0, 2}), std::invalid_argument);
}

/// Exact nearest-rank percentile — the rule the seed service layer used for
/// its sliding-window p50/p99 (rank = floor(q * (n-1)) over the sorted
/// samples). The histogram's quantile() must stay within ONE BUCKET of this.
double exact_percentile(std::vector<double> samples, double q) {
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

// Satellite regression for the sliding-window -> histogram migration: on a
// deterministic latency-like sequence, the histogram's p50/p95/p99 agree
// with the exact nearest-rank percentiles to within one bucket (a factor of
// `growth` in either direction — the representative is the geometric
// midpoint of the bucket holding the same rank).
TEST(Histogram, QuantilesWithinOneBucketOfExactNearestRank) {
  const HistogramSpec spec;  // default: sqrt(2) growth from 1 µs
  Histogram h(spec);
  std::vector<double> samples;
  // Deterministic heavy-tailed "drain latency" sequence spanning ~4 decades,
  // kept inside (first_bound, overflow) so the one-bucket bound is exact.
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double u = static_cast<double>(x % 1000000) / 1000000.0;
    const double v = 2.0 * std::pow(10.0, 4.0 * u * u);  // 2 µs .. ~20 ms
    samples.push_back(v);
    h.observe(v);
  }
  for (const double q : {0.50, 0.95, 0.99}) {
    const double exact = exact_percentile(samples, q);
    const double approx = h.quantile(q);
    EXPECT_LE(approx, exact * spec.growth) << "q=" << q;
    EXPECT_GE(approx, exact / spec.growth) << "q=" << q;
  }
}

TEST(Histogram, QuantileEmptyAndSingle) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.observe(100.0);
  const double q = h.quantile(0.5);
  EXPECT_LE(q, 100.0 * h.spec().growth);
  EXPECT_GE(q, 100.0 / h.spec().growth);
}

TEST(MetricsRegistry, FindOrCreateIsIdempotentAndLabelOrderInsensitive) {
  MetricsRegistry reg;
  Counter& a = reg.counter("c", {{"x", "1"}, {"y", "2"}});
  Counter& b = reg.counter("c", {{"y", "2"}, {"x", "1"}});  // swapped order
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  Counter& c = reg.counter("c", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
  // Same name+labels with a different kind is a registration bug.
  EXPECT_THROW(reg.gauge("c", {{"x", "1"}, {"y", "2"}}), std::invalid_argument);
  // Label VALUES must not collide with a differently-split pair ("ab"+"c"
  // vs "a"+"bc") — the canonical key uses non-printing separators.
  Counter& d = reg.counter("k", {{"ab", "c"}});
  Counter& e = reg.counter("k", {{"a", "bc"}});
  EXPECT_NE(&d, &e);
}

TEST(MetricsRegistry, CallbackGaugeSampledAtVisitTime) {
  MetricsRegistry reg;
  double source = 1.0;
  reg.callback_gauge("pull", {}, [&source] { return source; });
  source = 7.5;
  double seen = 0.0;
  reg.visit([&seen](const MetricsRegistry::Instrument& inst) { seen = inst.scalar(); });
  EXPECT_EQ(seen, 7.5);
}

TEST(PrometheusExport, GoldenExposition) {
  MetricsRegistry reg;
  // Label values exercising every escape: backslash, double-quote, newline.
  reg.counter("requests_total", {{"session", "1"}, {"path", "a\"b\\c\nd"}}).add(3);
  reg.gauge("temp").set(2.5);
  Histogram& h = reg.histogram("lat_us", {}, HistogramSpec{1.0, 10.0, 5});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);

  // Names sorted; labels canonical (key-sorted); histogram buckets are
  // CUMULATIVE with le edges and a +Inf bucket equal to _count.
  const std::string expected =
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"1\"} 1\n"
      "lat_us_bucket{le=\"10\"} 2\n"
      "lat_us_bucket{le=\"100\"} 3\n"
      "lat_us_bucket{le=\"1000\"} 3\n"
      "lat_us_bucket{le=\"+Inf\"} 4\n"
      "lat_us_sum 5055.5\n"
      "lat_us_count 4\n"
      "# TYPE requests_total counter\n"
      "requests_total{path=\"a\\\"b\\\\c\\nd\",session=\"1\"} 3\n"
      "# TYPE temp gauge\n"
      "temp 2.5\n";
  EXPECT_EQ(prometheus_text(reg), expected);
}

TEST(PrometheusExport, CallbackGaugeTypedAsGauge) {
  MetricsRegistry reg;
  reg.callback_gauge("live", {{"k", "v"}}, [] { return 4.0; });
  EXPECT_EQ(prometheus_text(reg),
            "# TYPE live gauge\n"
            "live{k=\"v\"} 4\n");
}

TEST(JsonlExport, GoldenMetricsLines) {
  MetricsRegistry reg;
  reg.counter("c_total", {{"weird", "a\"b"}}).add(2);
  reg.gauge("g").set(0.25);
  Histogram& h = reg.histogram("h", {{"k", "v"}}, HistogramSpec{1.0, 10.0, 5});
  // All three observations land in the underflow bucket, so every quantile
  // reports its arithmetic midpoint 0.5 — clean golden values.
  h.observe(0.25);
  h.observe(0.5);
  h.observe(0.25);

  std::ostringstream os;
  write_metrics_jsonl(reg, os);
  EXPECT_EQ(os.str(),
            "{\"type\":\"counter\",\"name\":\"c_total\",\"labels\":{\"weird\":\"a\\\"b\"},"
            "\"value\":2}\n"
            "{\"type\":\"gauge\",\"name\":\"g\",\"labels\":{},\"value\":0.25}\n"
            "{\"type\":\"histogram\",\"name\":\"h\",\"labels\":{\"k\":\"v\"},\"count\":3,"
            "\"sum\":1,\"p50\":0.5,\"p95\":0.5,\"p99\":0.5}\n");
}

TEST(JsonlExport, GoldenTraceLines) {
  const std::vector<TraceEvent> events = {
      {3, 0, Stage::kFusionQuery, 1.5, 2.25},
      {3, 1, Stage::kDrain, 10.0, 0.5},
  };
  std::ostringstream os;
  write_trace_jsonl(events, os);
  EXPECT_EQ(os.str(),
            "{\"type\":\"span\",\"session\":3,\"seq\":0,\"stage\":\"fusion_query\","
            "\"start_us\":1.5,\"duration_us\":2.25}\n"
            "{\"type\":\"span\",\"session\":3,\"seq\":1,\"stage\":\"drain\","
            "\"start_us\":10,\"duration_us\":0.5}\n");
}

TEST(TraceSink, SamplingInterval) {
  TraceSink every(16, 1);
  EXPECT_TRUE(every.should_sample());
  EXPECT_TRUE(every.should_sample());

  TraceSink third(16, 3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) sampled += third.should_sample() ? 1 : 0;
  EXPECT_EQ(sampled, 3);  // ticks 0, 3, 6

  TraceSink off(16, 0);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(off.should_sample());
}

TEST(TraceSink, RingOverwritesOldestAndDrainsInOrder) {
  TraceSink sink(4, 1);
  for (std::uint64_t i = 0; i < 6; ++i) {
    sink.record(TraceEvent{1, i, Stage::kValidate, static_cast<double>(i), 0.0});
  }
  EXPECT_EQ(sink.recorded(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const std::vector<TraceEvent> events = sink.drain();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].seq, i + 2);  // oldest first
  EXPECT_TRUE(sink.drain().empty());  // drain clears
}

TEST(ScopedSpan, RecordsThroughTracerAndIgnoresNull) {
  TraceSink sink(16, 1);
  StageTracer tracer(&sink, 42);
  {
    const ScopedSpan span(&tracer, Stage::kWeightUpdate);
  }
  {
    const ScopedSpan span(nullptr, Stage::kWeightUpdate);  // must be inert
  }
  StageTracer unbound;  // default tracer: null sink, also inert
  {
    const ScopedSpan span(&unbound, Stage::kResample);
  }
  const std::vector<TraceEvent> events = sink.drain();
#ifdef RADLOC_OBS_OFF
  EXPECT_TRUE(events.empty());
#else
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].session, 42u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].stage, Stage::kWeightUpdate);
  EXPECT_GE(events[0].duration_us, 0.0);
#endif
}

TEST(TraceSink, RejectsZeroCapacity) {
  EXPECT_THROW(TraceSink(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace radloc::obs

// Deterministic stress harness for the geometry layer: TransmissionCache
// pointer stability under capacity pressure and revision churn, pathological
// obstacle shapes, and GridIndex radius queries checked against brute force
// through rebuild churn and boundary cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "radloc/geom/grid_index.hpp"
#include "radloc/geom/polygon.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/radiation/obstacle.hpp"
#include "radloc/radiation/transmission_cache.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {
namespace {

Environment make_walled_env() {
  return Environment(make_area(100.0, 100.0),
                     {Obstacle(make_rect(40.0, 0.0, 60.0, 80.0), 0.0693),
                      Obstacle(make_rect(10.0, 90.0, 90.0, 95.0), 0.046)});
}

// THE pointer-stability regression: a Field* handed out by prepare() must
// survive later prepare() calls for other origins. With the old vector
// storage the 2nd..Nth prepare could reallocate and leave the first pointer
// dangling — ASan flags the reads below as heap-use-after-free pre-fix.
TEST(StressGeometry, CacheFieldPointerSurvivesMaxFieldsPrepares) {
  const Environment env = make_walled_env();
  constexpr std::size_t kMaxFields = 8;
  TransmissionCache cache(env, 2.0, kMaxFields);

  const Point2 held_origin{10.0, 10.0};
  const TransmissionCache::Field* held = cache.prepare(held_origin);
  ASSERT_NE(held, nullptr);

  const std::vector<Point2> probes{{5.0, 5.0}, {50.0, 40.0}, {95.0, 95.0}, {70.0, 10.0}};
  std::vector<double> baseline;
  for (const Point2& p : probes) baseline.push_back(cache.transmission(*held, p));

  // Fill the cache to capacity with distinct origins; after every single
  // prepare the held field must still read back bit-identically.
  for (std::size_t k = 1; k < kMaxFields; ++k) {
    const Point2 origin{5.0 + 10.0 * static_cast<double>(k), 20.0};
    ASSERT_NE(cache.prepare(origin), nullptr) << "prepare " << k;
    ASSERT_EQ(held->origin, held_origin) << "after prepare " << k;
    for (std::size_t j = 0; j < probes.size(); ++j) {
      ASSERT_EQ(cache.transmission(*held, probes[j]), baseline[j])
          << "after prepare " << k << ", probe " << j;
    }
  }
  EXPECT_EQ(cache.field_count(), kMaxFields);

  // At capacity a new origin is declined, existing origins still hit, and a
  // repeat prepare returns the very same pointer.
  EXPECT_EQ(cache.prepare(Point2{1.0, 1.0}), nullptr);
  EXPECT_EQ(cache.prepare(held_origin), held);
  EXPECT_EQ(cache.field_count(), kMaxFields);
}

TEST(StressGeometry, CacheRevisionChurnDropsAndRebuildsFields) {
  Environment env(make_area(100.0, 100.0),
                  {Obstacle(make_rect(40.0, 0.0, 60.0, 80.0), 0.0693)});
  TransmissionCache cache(env, 2.0, 16);

  const Point2 origin{10.0, 50.0};
  const Point2 behind_wall{90.0, 50.0};
  const TransmissionCache::Field* before = cache.prepare(origin);
  ASSERT_NE(before, nullptr);
  const double t_before = cache.transmission(*before, behind_wall);
  (void)cache.prepare(Point2{20.0, 20.0});
  (void)cache.prepare(Point2{30.0, 30.0});
  EXPECT_EQ(cache.field_count(), 3u);

  // An obstacle change bumps the revision: the next prepare drops every
  // stale field and rebuilds against the new geometry.
  env.add_obstacle(Obstacle(make_rect(70.0, 0.0, 75.0, 100.0), 0.0693));
  const TransmissionCache::Field* after = cache.prepare(origin);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(cache.field_count(), 1u);
  EXPECT_LT(cache.transmission(*after, behind_wall), t_before)
      << "rebuilt field must see the extra wall";

  // Churn: alternate obstacle edits and prepares for several rounds.
  for (int round = 0; round < 4; ++round) {
    env.add_obstacle(Obstacle(
        make_rect(5.0 + round, 5.0, 6.0 + round, 95.0), 0.01));
    const TransmissionCache::Field* f = cache.prepare(origin);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(cache.field_count(), 1u) << "revision change must drop all fields";
    const double t = cache.transmission(*f, behind_wall);
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(StressGeometry, PathologicalObstacleGeometryKeepsTransmissionPhysical) {
  const AreaBounds area = make_area(100.0, 100.0);
  struct Case {
    const char* name;
    Environment env;
  };
  const Case cases[] = {
      {"sliver wall", Environment(area, {Obstacle(make_rect(50.0, 0.0, 50.001, 100.0), 0.5)})},
      {"area-covering slab", Environment(area, {Obstacle(make_rect(0.0, 0.0, 100.0, 100.0), 0.02)})},
      {"opaque block", Environment(area, {Obstacle(make_rect(30.0, 30.0, 70.0, 70.0), 1e6)})},
      {"transparent block", Environment(area, {Obstacle(make_rect(30.0, 30.0, 70.0, 70.0), 0.0)})},
      {"stacked overlapping slabs",
       Environment(area, {Obstacle(make_rect(20.0, 0.0, 40.0, 100.0), 0.0693),
                          Obstacle(make_rect(30.0, 0.0, 50.0, 100.0), 0.0693),
                          Obstacle(make_rect(35.0, 40.0, 36.0, 60.0), 0.5)})},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    TransmissionCache cache(c.env, 2.5, 8);
    // One origin outside the blocks, one deliberately inside the 30..70 block.
    for (const Point2 origin : {Point2{5.0, 5.0}, Point2{50.0, 50.0}}) {
      const TransmissionCache::Field* field = cache.prepare(origin);
      ASSERT_NE(field, nullptr);
      Rng rng(17);
      for (int i = 0; i < 200; ++i) {
        const Point2 target = uniform_point(rng, area);
        const double cached = cache.transmission(*field, target);
        ASSERT_TRUE(std::isfinite(cached));
        ASSERT_GE(cached, 0.0);
        ASSERT_LE(cached, 1.0);
        const double exact = c.env.transmission(Segment{origin, target});
        ASSERT_TRUE(std::isfinite(exact));
        ASSERT_GE(exact, 0.0);
        ASSERT_LE(exact, 1.0);
      }
    }
  }

  // Accuracy is only meaningful where the field is smooth; near an opaque
  // silhouette edge the exact field is effectively a step and interpolation
  // error legitimately approaches 1. The area-covering slab has no edges
  // inside the bounds — attenuation is mu * distance — so there the cache
  // must track exact geometry tightly.
  Environment slab(area, {Obstacle(make_rect(0.0, 0.0, 100.0, 100.0), 0.02)});
  TransmissionCache cache(slab, 2.5, 8);
  const Point2 origin{5.0, 5.0};
  const TransmissionCache::Field* field = cache.prepare(origin);
  ASSERT_NE(field, nullptr);
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    const Point2 target = uniform_point(rng, area);
    const double exact = slab.transmission(Segment{origin, target});
    EXPECT_NEAR(cache.transmission(*field, target), exact, 0.01);
  }
}

void expect_matches_brute_force(const GridIndex& index, const std::vector<Point2>& points,
                                const Point2& center, double radius) {
  std::vector<std::uint32_t> got;
  index.query_radius(points, center, radius, got);
  std::sort(got.begin(), got.end());

  std::vector<std::uint32_t> want;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    if (distance2(points[i], center) <= radius * radius) want.push_back(i);
  }
  ASSERT_EQ(got, want) << "center (" << center.x << ", " << center.y << ") radius " << radius;
}

TEST(StressGeometry, GridIndexMatchesBruteForceAcrossSeedsAndRadii) {
  const AreaBounds area = make_area(100.0, 100.0);
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    Rng rng(seed);
    const std::size_t n = 50 + uniform_index(rng, 500);
    std::vector<Point2> points;
    for (std::size_t i = 0; i < n; ++i) points.push_back(uniform_point(rng, area));
    // A few points pinned exactly on the boundary and corners.
    points.push_back({0.0, 0.0});
    points.push_back({100.0, 100.0});
    points.push_back({0.0, 100.0});
    points.push_back({50.0, 0.0});

    GridIndex index(area, 7.0);
    index.rebuild(points);
    ASSERT_EQ(index.size(), points.size());

    for (const double radius : {0.0, 0.5, 7.0, 33.0, 1000.0}) {
      // Centers inside, on the boundary, and far outside the area.
      expect_matches_brute_force(index, points, uniform_point(rng, area), radius);
      expect_matches_brute_force(index, points, {0.0, 0.0}, radius);
      expect_matches_brute_force(index, points, {100.0, 50.0}, radius);
      expect_matches_brute_force(index, points, {250.0, -80.0}, radius);
    }
  }
}

TEST(StressGeometry, GridIndexSurvivesRebuildChurnAndDegenerateSets) {
  const AreaBounds area = make_area(100.0, 100.0);
  GridIndex index(area, 5.0);
  Rng rng(29);
  std::vector<std::uint32_t> out;

  // Empty set: no matches anywhere.
  std::vector<Point2> points;
  index.rebuild(points);
  index.query_radius(points, {50.0, 50.0}, 1000.0, out);
  EXPECT_TRUE(out.empty());

  // Every point identical: all or nothing depending on radius.
  points.assign(137, Point2{42.0, 42.0});
  index.rebuild(points);
  index.query_radius(points, {42.0, 42.0}, 0.0, out);
  EXPECT_EQ(out.size(), 137u);
  index.query_radius(points, {43.0, 42.0}, 0.5, out);
  EXPECT_TRUE(out.empty());

  // Rebuild churn with wildly varying sizes; brute-force parity each time.
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = uniform_index(rng, 300);
    points.clear();
    for (std::size_t i = 0; i < n; ++i) points.push_back(uniform_point(rng, area));
    index.rebuild(points);
    ASSERT_EQ(index.size(), n);
    expect_matches_brute_force(index, points, uniform_point(rng, area), 12.0);
  }
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <sstream>

#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/sensornet/trace.hpp"

namespace radloc {
namespace {

MeasurementTrace sample_trace() {
  MeasurementTrace t;
  t.record_step({{0, 5.0}, {1, 7.0}, {2, 4.0}});
  t.record_step({{2, 6.0}, {0, 5.0}});
  t.record_step({});
  t.record_step({{1, 9.5}});
  return t;
}

TEST(Trace, CountsAndAccess) {
  const auto t = sample_trace();
  EXPECT_EQ(t.num_steps(), 4u);
  EXPECT_EQ(t.num_measurements(), 6u);
  EXPECT_EQ(t.step(0).size(), 3u);
  EXPECT_EQ(t.step(2).size(), 0u);
  EXPECT_EQ(t.step(3)[0].sensor, 1u);
  EXPECT_EQ(t.flattened().size(), 6u);
  // Arrival order preserved across flattening.
  EXPECT_EQ(t.flattened()[3].sensor, 2u);
}

TEST(Trace, CsvRoundTripPreservesEverything) {
  const auto t = sample_trace();
  std::stringstream ss;
  t.save_csv(ss);
  const auto loaded = MeasurementTrace::load_csv(ss);
  // Interior empty steps round-trip (recreated from the step-number gap).
  ASSERT_EQ(loaded.num_steps(), 4u);
  EXPECT_EQ(loaded.num_measurements(), t.num_measurements());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(loaded.step(i), t.step(i));
}

TEST(Trace, CsvFormatIsStable) {
  MeasurementTrace t;
  t.record_step({{3, 12.5}});
  std::ostringstream os;
  t.save_csv(os);
  EXPECT_EQ(os.str(), "step,sensor,cpm\n0,3,12.5\n");
}

TEST(Trace, LoadRejectsMalformedInput) {
  auto load = [](const std::string& text) {
    std::istringstream is(text);
    return MeasurementTrace::load_csv(is);
  };
  EXPECT_THROW((void)load(""), std::invalid_argument);
  EXPECT_THROW((void)load("wrong,header\n"), std::invalid_argument);
  EXPECT_THROW((void)load("step,sensor,cpm\nnot,a,row\n"), std::invalid_argument);
  EXPECT_THROW((void)load("step,sensor,cpm\n0,1,-5\n"), std::invalid_argument);
  EXPECT_THROW((void)load("step,sensor,cpm\n1,1,5\n"), std::invalid_argument);   // starts at 1
  EXPECT_THROW((void)load("step,sensor,cpm\n0,1,5\n1,1,5\n0,1,5\n"),
               std::invalid_argument);  // decreasing
  // A forward gap is an interior empty step, not an error.
  const auto gapped = load("step,sensor,cpm\n0,1,5\n2,1,5\n");
  ASSERT_EQ(gapped.num_steps(), 3u);
  EXPECT_TRUE(gapped.step(1).empty());
  EXPECT_NO_THROW((void)load("step,sensor,cpm\n0,1,5\n0,2,6\n1,1,4\n"));
}

TEST(Trace, FileRoundTrip) {
  const auto t = sample_trace();
  const std::string path = ::testing::TempDir() + "/radloc_trace_test.csv";
  t.save_csv_file(path);
  const auto loaded = MeasurementTrace::load_csv_file(path);
  EXPECT_EQ(loaded.num_measurements(), t.num_measurements());
}

TEST(Trace, RecordedSimulationReplaysIdentically) {
  // Record a short simulated campaign, then re-run localization from the
  // trace: the replayed input equals the live input.
  const auto scenario = make_scenario_a(10.0, 5.0, false);
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  Rng noise(77);

  MeasurementTrace trace;
  for (int t = 0; t < 5; ++t) trace.record_step(sim.sample_time_step(noise));

  std::stringstream ss;
  trace.save_csv(ss);
  const auto replay = MeasurementTrace::load_csv(ss);
  ASSERT_EQ(replay.num_steps(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    ASSERT_EQ(replay.step(t).size(), trace.step(t).size());
    for (std::size_t i = 0; i < replay.step(t).size(); ++i) {
      EXPECT_EQ(replay.step(t)[i].sensor, trace.step(t)[i].sensor);
      EXPECT_DOUBLE_EQ(replay.step(t)[i].cpm, trace.step(t)[i].cpm);
    }
  }
}

}  // namespace
}  // namespace radloc

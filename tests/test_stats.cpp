#include <gtest/gtest.h>

#include <cmath>

#include "radloc/eval/scenarios.hpp"
#include "radloc/eval/stats.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {
namespace {

TEST(Percentile, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  // Interpolation between ranks.
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 1.5);
}

TEST(Percentile, UnsortedInputAndSingleton) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 1.0), 7.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 1.1), std::invalid_argument);
}

TEST(Bootstrap, IntervalContainsPointAndOrdersCorrectly) {
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 40; ++i) sample.push_back(normal(rng, 10.0, 2.0));
  Rng boot(2);
  const auto ci = bootstrap_mean_ci(sample, boot);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_NEAR(ci.point, 10.0, 1.5);
  // Width ~ 2 * 1.96 * sigma/sqrt(n) ~ 1.24.
  EXPECT_GT(ci.hi - ci.lo, 0.4);
  EXPECT_LT(ci.hi - ci.lo, 3.0);
}

TEST(Bootstrap, CoverageNearNominal) {
  // Repeat small-sample bootstraps; the 95% interval should cover the true
  // mean in roughly 95% of experiments (allow generous slack for n=25).
  Rng rng(3);
  int covered = 0;
  constexpr int experiments = 200;
  for (int e = 0; e < experiments; ++e) {
    std::vector<double> sample;
    for (int i = 0; i < 25; ++i) sample.push_back(normal(rng, 5.0, 3.0));
    const auto ci = bootstrap_mean_ci(sample, rng, 0.95, 500);
    if (ci.lo <= 5.0 && 5.0 <= ci.hi) ++covered;
  }
  const double rate = static_cast<double>(covered) / experiments;
  EXPECT_GT(rate, 0.85);
  EXPECT_LE(rate, 1.0);
}

TEST(Bootstrap, DeterministicGivenRng) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  Rng a(7);
  Rng b(7);
  const auto ca = bootstrap_mean_ci(sample, a);
  const auto cb = bootstrap_mean_ci(sample, b);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(Bootstrap, Validation) {
  Rng rng(1);
  EXPECT_THROW((void)bootstrap_mean_ci({}, rng), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)bootstrap_mean_ci(v, rng, 1.5), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(v, rng, 0.95, 2), std::invalid_argument);
}

TEST(SummaryStats, FiveNumber) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0, 5.0};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

// --------------------------------------------------------- random scenarios

TEST(RandomScenario, HonorsConfig) {
  Rng rng(11);
  RandomScenarioConfig cfg;
  cfg.num_sources = 4;
  cfg.num_obstacles = 3;
  const auto s = make_random_scenario(rng, cfg);
  EXPECT_EQ(s.sources.size(), 4u);
  EXPECT_LE(s.env.obstacles().size(), 3u);  // degenerate clamped walls may be dropped
  EXPECT_EQ(s.sensors.size(), 36u);
  for (const auto& src : s.sources) {
    EXPECT_TRUE(s.env.bounds().contains(src.pos));
    EXPECT_GE(src.strength, cfg.strength_min);
    EXPECT_LE(src.strength, cfg.strength_max);
  }
}

TEST(RandomScenario, SourcesSeparated) {
  Rng rng(12);
  RandomScenarioConfig cfg;
  cfg.num_sources = 3;
  cfg.min_source_separation = 30.0;
  const auto s = make_random_scenario(rng, cfg);
  for (std::size_t i = 0; i < s.sources.size(); ++i) {
    for (std::size_t j = i + 1; j < s.sources.size(); ++j) {
      EXPECT_GE(distance(s.sources[i].pos, s.sources[j].pos), 30.0);
    }
  }
}

TEST(RandomScenario, DeterministicGivenRngState) {
  Rng a(13);
  Rng b(13);
  const auto sa = make_random_scenario(a, {});
  const auto sb = make_random_scenario(b, {});
  ASSERT_EQ(sa.sources.size(), sb.sources.size());
  for (std::size_t i = 0; i < sa.sources.size(); ++i) {
    EXPECT_EQ(sa.sources[i].pos, sb.sources[i].pos);
    EXPECT_DOUBLE_EQ(sa.sources[i].strength, sb.sources[i].strength);
  }
}

TEST(RandomScenario, DifferentDrawsDiffer) {
  Rng rng(14);
  const auto s1 = make_random_scenario(rng, {});
  const auto s2 = make_random_scenario(rng, {});
  bool any_diff = false;
  for (std::size_t i = 0; i < s1.sources.size(); ++i) {
    if (!(s1.sources[i].pos == s2.sources[i].pos)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomScenario, Validation) {
  Rng rng(15);
  RandomScenarioConfig cfg;
  cfg.num_sources = 0;
  EXPECT_THROW((void)make_random_scenario(rng, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "radloc/common/math.hpp"
#include "radloc/common/types.hpp"

namespace radloc {
namespace {

TEST(Point2, Arithmetic) {
  const Point2 a{1.0, 2.0};
  const Point2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point2{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Point2{2.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Point2{2.0, 4.0}));
}

TEST(Point2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot(Point2{1, 2}, Point2{3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(cross(Point2{1, 0}, Point2{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cross(Point2{0, 1}, Point2{1, 0}), -1.0);
  // Cross of parallel vectors is zero.
  EXPECT_DOUBLE_EQ(cross(Point2{2, 3}, Point2{4, 6}), 0.0);
}

TEST(Point2, DistanceIsSymmetricAndPositive) {
  const Point2 a{47.0, 71.0};
  const Point2 b{81.0, 42.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
  EXPECT_GT(distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(distance2(a, b), square(distance(a, b)));
}

TEST(Point2, StreamOutput) {
  std::ostringstream os;
  os << Point2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(AreaBounds, ContainsAndClamp) {
  const AreaBounds area = make_area(100.0, 50.0);
  EXPECT_TRUE(area.contains({0.0, 0.0}));
  EXPECT_TRUE(area.contains({100.0, 50.0}));
  EXPECT_TRUE(area.contains({50.0, 25.0}));
  EXPECT_FALSE(area.contains({-0.1, 25.0}));
  EXPECT_FALSE(area.contains({50.0, 50.1}));

  EXPECT_EQ(area.clamp({-5.0, 60.0}), (Point2{0.0, 50.0}));
  EXPECT_EQ(area.clamp({105.0, -1.0}), (Point2{100.0, 0.0}));
  EXPECT_EQ(area.clamp({50.0, 25.0}), (Point2{50.0, 25.0}));
}

TEST(AreaBounds, Dimensions) {
  const AreaBounds area = make_area(260.0, 130.0);
  EXPECT_DOUBLE_EQ(area.width(), 260.0);
  EXPECT_DOUBLE_EQ(area.height(), 130.0);
  EXPECT_DOUBLE_EQ(area.area(), 260.0 * 130.0);
}

TEST(PoissonPmf, MatchesKnownValues) {
  // P(X=0 | lambda=1) = e^-1.
  EXPECT_NEAR(poisson_pmf(0, 1.0), std::exp(-1.0), 1e-12);
  // P(X=3 | lambda=2) = 2^3 e^-2 / 3! = 8 e^-2 / 6.
  EXPECT_NEAR(poisson_pmf(3, 2.0), 8.0 * std::exp(-2.0) / 6.0, 1e-12);
}

TEST(PoissonPmf, EdgeCases) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(-1, 5.0), 0.0);
  EXPECT_TRUE(std::isinf(poisson_log_pmf(5, 0.0)));
}

TEST(PoissonPmf, LargeCountsStayFinite) {
  // CPM-scale counts must not overflow the log-PMF.
  const double ll = poisson_log_pmf(24000, 24000.0);
  EXPECT_TRUE(std::isfinite(ll));
  // At the mode, pmf ~ 1/sqrt(2 pi lambda).
  EXPECT_NEAR(std::exp(ll), 1.0 / std::sqrt(2.0 * kPi * 24000.0), 1e-5);
}

class PoissonPmfSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonPmfSweep, SumsToOne) {
  const double lambda = GetParam();
  double total = 0.0;
  const int k_max = static_cast<int>(lambda + 12.0 * std::sqrt(lambda + 1.0)) + 20;
  for (int k = 0; k <= k_max; ++k) total += poisson_pmf(k, lambda);
  EXPECT_NEAR(total, 1.0, 1e-9) << "lambda=" << lambda;
}

TEST_P(PoissonPmfSweep, ModeAtFloorLambda) {
  const double lambda = GetParam();
  const double mode = std::floor(lambda);
  const double at_mode = poisson_log_pmf(mode, lambda);
  EXPECT_GE(at_mode, poisson_log_pmf(mode - 1, lambda));
  EXPECT_GE(at_mode, poisson_log_pmf(mode + 1, lambda));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonPmfSweep,
                         ::testing::Values(0.5, 1.0, 5.0, 20.0, 100.0, 1000.0));

TEST(LogSumExp, MatchesDirectComputation) {
  const std::vector<double> v{-1.0, 0.0, 2.5};
  double direct = 0.0;
  for (const double x : v) direct += std::exp(x);
  EXPECT_NEAR(log_sum_exp(v), std::log(direct), 1e-12);
}

TEST(LogSumExp, StableForLargeMagnitudes) {
  const std::vector<double> v{-100000.0, -100001.0};
  const double r = log_sum_exp(v);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_NEAR(r, -100000.0 + std::log(1.0 + std::exp(-1.0)), 1e-9);
}

TEST(LogSumExp, EmptyIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_sum_exp({})));
  EXPECT_LT(log_sum_exp({}), 0.0);
}

TEST(RunningStats, MatchesDirectFormulas) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  const RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Require, ThrowsOnViolation) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "boom"), std::invalid_argument);
}

}  // namespace
}  // namespace radloc

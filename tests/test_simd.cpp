// Parity and dispatch tests for the batch kernel tiers (simd/simd.hpp).
//
// Contract under test (DESIGN.md §5.7):
//   * the scalar tier replays the seed's per-element expressions bit for
//     bit (PoissonLogPmf, expected_cpm_single_free_space, the cached
//     Eq. (3) rate, TransmissionCache::transmission, max scan, exp);
//   * vector tiers match scalar exactly on every special value (lambda
//     <= 0, denormals, inf, NaN, k = 0, k < 0, out-of-range exp args) —
//     those lanes are patched with the scalar expression — and to ~1 ulp
//     relative on in-range log/exp;
//   * everything that is pure arithmetic (rates, bilinear, max,
//     Epanechnikov) is bit-identical across ALL tiers;
//   * remainder lanes (n % width != 0) go through the same padded vector
//     path, so results never depend on how a range is chunked.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "radloc/common/math.hpp"
#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/filter/particle_filter.hpp"
#include "radloc/geom/polygon.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/radiation/transmission_cache.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/simd/aligned.hpp"
#include "radloc/simd/simd.hpp"

namespace radloc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::numeric_limits<double>::quiet_NaN();

/// Bitwise equality — the only meaningful comparison for "identical
/// including NaN payloads and signed zeros".
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string hex_bits(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

/// Every tier the host can run (scalar always; vector tiers if detected).
std::vector<simd::Tier> host_tiers() {
  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  if (simd::detected_tier() >= simd::Tier::kSse2) tiers.push_back(simd::Tier::kSse2);
  if (simd::detected_tier() >= simd::Tier::kAvx2) tiers.push_back(simd::Tier::kAvx2);
  return tiers;
}

/// Sizes that cover full vectors, remainder lanes, and the empty range.
const std::vector<std::size_t> kSizes{0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 129};

struct TierGuard {
  explicit TierGuard(simd::Tier t) { simd::force_tier(t); }
  ~TierGuard() { simd::reset_tier(); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;
};

std::vector<double> random_lambdas(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) {
    // Log-uniform over the dynamic range a filter actually sees (background
    // CPM units up to wildly hot hypotheses).
    x = std::exp(uniform(rng, std::log(1e-6), std::log(1e8)));
  }
  return v;
}

TEST(SimdDispatch, ParseTierAcceptsKnownNamesOnly) {
  EXPECT_EQ(simd::parse_tier("scalar"), simd::Tier::kScalar);
  EXPECT_EQ(simd::parse_tier("sse2"), simd::Tier::kSse2);
  EXPECT_EQ(simd::parse_tier("avx2"), simd::Tier::kAvx2);
  EXPECT_EQ(simd::parse_tier("auto"), simd::detected_tier());
  EXPECT_FALSE(simd::parse_tier("AVX2").has_value());
  EXPECT_FALSE(simd::parse_tier("").has_value());
  EXPECT_FALSE(simd::parse_tier("avx512").has_value());
  EXPECT_FALSE(simd::parse_tier(nullptr).has_value());
}

TEST(SimdDispatch, TablesReportTheirOwnTier) {
  for (const auto t : host_tiers()) {
    const simd::Kernels& k = simd::kernels_for(t);
    EXPECT_EQ(k.tier, t);
    EXPECT_STREQ(k.name, simd::tier_name(t));
    EXPECT_NE(k.poisson_log_pmf, nullptr);
    EXPECT_NE(k.bilinear, nullptr);  // tiers without a native one inherit scalar
  }
  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
}

TEST(SimdDispatch, RequestsAboveDetectedClampDown) {
  const simd::Kernels& k = simd::kernels_for(simd::Tier::kAvx2);
  EXPECT_LE(k.tier, simd::detected_tier());
}

TEST(SimdDispatch, ForceTierRoutesTheActiveTable) {
  const simd::Tier before = simd::active_tier();
  for (const auto t : host_tiers()) {
    TierGuard guard(t);
    EXPECT_EQ(simd::active_tier(), t);
    EXPECT_EQ(simd::kernels().tier, t);
  }
  EXPECT_EQ(simd::active_tier(), before);  // reset restores env/default resolution
  EXPECT_EQ(simd::kernels().tier, before);
}

TEST(SimdDispatch, SweepTiersCoversScalarThroughDetected) {
  const auto tiers = simd::sweep_tiers();
  ASSERT_FALSE(tiers.empty());
  if (!simd::tier_pinned_by_env()) {
    EXPECT_EQ(tiers.front(), simd::Tier::kScalar);
    EXPECT_EQ(tiers.back(), simd::detected_tier());
    EXPECT_EQ(tiers.size(), static_cast<std::size_t>(simd::detected_tier()) + 1);
  } else {
    EXPECT_EQ(tiers.size(), 1u);
    EXPECT_EQ(tiers.front(), simd::active_tier());
  }
}

// ---------------------------------------------------------------------------
// Poisson log-PMF

TEST(SimdPoisson, ScalarTierBitIdenticalToPoissonLogPmf) {
  const auto lambdas = random_lambdas(257, 101);
  const simd::Kernels& ker = simd::kernels_for(simd::Tier::kScalar);
  for (const double k : {0.0, 1.0, 3.0, 7.0, 120.0, 4096.0, -2.0}) {
    const PoissonLogPmf pmf(k);
    std::vector<double> out(lambdas.size());
    ker.poisson_log_pmf(pmf.count(), pmf.log_k_factorial(), lambdas.data(), out.data(),
                        lambdas.size());
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      ASSERT_TRUE(same_bits(out[i], pmf(lambdas[i])))
          << "k=" << k << " lambda=" << lambdas[i] << " got " << hex_bits(out[i]) << " want "
          << hex_bits(pmf(lambdas[i]));
    }
  }
}

TEST(SimdPoisson, SpecialLambdasExactInEveryTier) {
  // Special lanes are patched with the scalar expression, so every tier
  // must return the exact scalar bits — including the k == 0 / lambda <= 0
  // edge table and NaN propagation.
  const std::vector<double> lambdas{0.0,
                                    -0.0,
                                    -3.5,
                                    5e-324,  // denormal
                                    1e-310,  // denormal
                                    2.2250738585072014e-308,  // smallest normal: vector path
                                    1.0,
                                    kInf,
                                    -kInf,
                                    kNan,
                                    3.5};
  const simd::Kernels& scalar = simd::kernels_for(simd::Tier::kScalar);
  for (const double k : {0.0, 5.0, -1.0}) {
    const PoissonLogPmf pmf(k);
    std::vector<double> want(lambdas.size());
    scalar.poisson_log_pmf(pmf.count(), pmf.log_k_factorial(), lambdas.data(), want.data(),
                           lambdas.size());
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      ASSERT_TRUE(same_bits(want[i], pmf(lambdas[i]))) << "scalar tier drifted from seed";
    }
    for (const auto t : host_tiers()) {
      const simd::Kernels& ker = simd::kernels_for(t);
      // Also exercise the documented in-place aliasing (out == lambda):
      // patched lanes must read their inputs before the store clobbers them.
      std::vector<double> inplace = lambdas;
      ker.poisson_log_pmf(pmf.count(), pmf.log_k_factorial(), inplace.data(), inplace.data(),
                          inplace.size());
      for (std::size_t i = 0; i < lambdas.size(); ++i) {
        ASSERT_TRUE(same_bits(inplace[i], want[i]))
            << simd::tier_name(t) << " k=" << k << " lambda=" << lambdas[i] << " got "
            << hex_bits(inplace[i]) << " want " << hex_bits(want[i]);
      }
    }
  }
}

TEST(SimdPoisson, VectorTiersMatchScalarWithinTolerance) {
  for (const std::size_t n : kSizes) {
    const auto lambdas = random_lambdas(n, 202 + n);
    for (const double k : {0.0, 1.0, 64.0, 5000.0}) {
      const PoissonLogPmf pmf(k);
      std::vector<double> want(n);
      simd::kernels_for(simd::Tier::kScalar)
          .poisson_log_pmf(pmf.count(), pmf.log_k_factorial(), lambdas.data(), want.data(), n);
      for (const auto t : host_tiers()) {
        std::vector<double> got(n, kNan);
        simd::kernels_for(t).poisson_log_pmf(pmf.count(), pmf.log_k_factorial(), lambdas.data(),
                                             got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          // The only tier-divergent ops are log/exp (~1 ulp relative); the
          // bound scales with the magnitudes feeding the cancellation.
          const double tol =
              1e-13 * (1.0 + std::abs(k * std::log(lambdas[i])) + lambdas[i] +
                       pmf.log_k_factorial());
          ASSERT_NEAR(got[i], want[i], tol)
              << simd::tier_name(t) << " n=" << n << " k=" << k << " lambda=" << lambdas[i];
        }
      }
    }
  }
}

TEST(SimdPoisson, MultiKMatchesPerElementSeedAndAllTiers) {
  for (const std::size_t n : kSizes) {
    auto lambdas = random_lambdas(n, 303 + n);
    std::vector<double> ks(n);
    std::vector<double> log_kf(n);
    Rng rng(404 + n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix regular counts with the edge table: k = 0, k < 0, lambda <= 0.
      const double draw = uniform01(rng);
      if (draw < 0.1) {
        ks[i] = 0.0;
      } else if (draw < 0.2) {
        ks[i] = -1.0;
      } else {
        ks[i] = std::floor(uniform(rng, 0.0, 500.0));
      }
      if (uniform01(rng) < 0.15) lambdas[i] = uniform01(rng) < 0.5 ? 0.0 : -2.0;
      const PoissonLogPmf pmf(ks[i]);
      log_kf[i] = pmf.log_k_factorial();
    }

    std::vector<double> want(n);
    for (std::size_t i = 0; i < n; ++i) want[i] = PoissonLogPmf(ks[i])(lambdas[i]);

    // Scalar tier: bit-identical to the seed's per-element evaluation.
    std::vector<double> got(n);
    simd::kernels_for(simd::Tier::kScalar)
        .poisson_log_pmf_multi(ks.data(), log_kf.data(), lambdas.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_bits(got[i], want[i])) << "i=" << i << " k=" << ks[i];
    }

    // Vector tiers: tolerance in range, exact on patched lanes; in place.
    for (const auto t : host_tiers()) {
      std::vector<double> inplace = lambdas;
      simd::kernels_for(t).poisson_log_pmf_multi(ks.data(), log_kf.data(), inplace.data(),
                                                 inplace.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        if (ks[i] < 0.0 || lambdas[i] <= 0.0) {
          ASSERT_TRUE(same_bits(inplace[i], want[i]))
              << simd::tier_name(t) << " edge lane i=" << i;
        } else {
          const double tol = 1e-13 * (1.0 + std::abs(ks[i] * std::log(lambdas[i])) +
                                      lambdas[i] + log_kf[i]);
          ASSERT_NEAR(inplace[i], want[i], tol) << simd::tier_name(t) << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdPoisson, FusedRepsOneBitIdenticalToSingleK) {
  // reps == 1 must replay poisson_log_pmf bit for bit in EVERY tier
  // (1.0 * lambda is exact) — the contract that lets a size-1 fused group
  // take the single-reading path with no tolerance carve-out.
  for (const std::size_t n : kSizes) {
    auto lambdas = random_lambdas(n, 505 + n);
    if (n > 4) {
      lambdas[1] = 0.0;
      lambdas[3] = -2.0;
      lambdas[4] = kNan;
    }
    for (const double k : {0.0, 3.0, 120.0, -2.0}) {
      const PoissonLogPmf pmf(k);
      for (const auto t : host_tiers()) {
        const simd::Kernels& ker = simd::kernels_for(t);
        std::vector<double> want(n, kNan);
        ker.poisson_log_pmf(pmf.count(), pmf.log_k_factorial(), lambdas.data(), want.data(), n);
        std::vector<double> inplace = lambdas;  // documented aliasing: out == lambda
        ker.poisson_log_pmf_fused(pmf.count(), 1.0, pmf.log_k_factorial(), inplace.data(),
                                  inplace.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(same_bits(inplace[i], want[i]))
              << simd::tier_name(t) << " n=" << n << " k=" << k << " lambda=" << lambdas[i]
              << " got " << hex_bits(inplace[i]) << " want " << hex_bits(want[i]);
        }
      }
    }
  }
}

TEST(SimdPoisson, FusedEdgeSemanticsExactInEveryTier) {
  // k_sum < 0 fills -inf; lambda <= 0 lanes follow the per-reading sum
  // (k_sum == 0 ? 0 : -inf); NaN/inf lambdas are patched with the scalar
  // expression — all bit-identical to the scalar tier.
  const std::vector<double> lambdas{0.0, -0.0, -3.5, 5e-324, 1.0, kInf, -kInf, kNan, 42.0};
  const std::size_t n = lambdas.size();
  const simd::Kernels& scalar = simd::kernels_for(simd::Tier::kScalar);
  for (const auto [k_sum, reps, lfs] :
       {std::tuple{0.0, 3.0, 0.0}, {91.0, 3.0, 12.5}, {-1.0, 2.0, 0.0}}) {
    std::vector<double> want(n);
    scalar.poisson_log_pmf_fused(k_sum, reps, lfs, lambdas.data(), want.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      if (k_sum < 0.0) {
        ASSERT_TRUE(same_bits(want[i], -kInf)) << "i=" << i;
      } else if (lambdas[i] <= 0.0) {
        ASSERT_TRUE(same_bits(want[i], k_sum == 0.0 ? 0.0 : -kInf)) << "i=" << i;
      }
    }
    for (const auto t : host_tiers()) {
      std::vector<double> inplace = lambdas;
      simd::kernels_for(t).poisson_log_pmf_fused(k_sum, reps, lfs, inplace.data(),
                                                 inplace.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(same_bits(inplace[i], want[i]))
            << simd::tier_name(t) << " k_sum=" << k_sum << " lambda=" << lambdas[i] << " got "
            << hex_bits(inplace[i]) << " want " << hex_bits(want[i]);
      }
    }
  }
}

TEST(SimdPoisson, FusedMatchesSerialSumWithinToleranceInEveryTier) {
  // The fused kernel's k_sum*log(l) - reps*l - log_fact_sum must agree with
  // serially summing the K per-reading log-PMFs, up to FP reordering.
  const std::vector<double> counts{28.0, 31.0, 0.0, 33.0, 30.0};
  double k_sum = 0.0, log_fact_sum = 0.0;
  for (const double k : counts) {
    const PoissonLogPmf pmf(k);
    k_sum += pmf.count();
    log_fact_sum += pmf.log_k_factorial();
  }
  for (const std::size_t n : kSizes) {
    const auto lambdas = random_lambdas(n, 606 + n);
    std::vector<double> want(n, 0.0);
    for (const double k : counts) {
      const PoissonLogPmf pmf(k);
      for (std::size_t i = 0; i < n; ++i) want[i] += pmf(lambdas[i]);
    }
    for (const auto t : host_tiers()) {
      std::vector<double> got(n, kNan);
      simd::kernels_for(t).poisson_log_pmf_fused(k_sum, static_cast<double>(counts.size()),
                                                 log_fact_sum, lambdas.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const double tol = 1e-12 * (1.0 + std::abs(k_sum * std::log(lambdas[i])) +
                                    static_cast<double>(counts.size()) * lambdas[i] +
                                    log_fact_sum);
        ASSERT_NEAR(got[i], want[i], tol)
            << simd::tier_name(t) << " n=" << n << " lambda=" << lambdas[i];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hypothesis rates (exact in every tier)

TEST(SimdRates, FreeSpaceRatesBitIdenticalToSeedInEveryTier) {
  SensorResponse response;
  response.efficiency = 0.7;
  response.background_cpm = 5.0;
  const Point2 at{37.5, 61.25};
  const double scale = kMicroCurieToCpm * response.efficiency;

  for (const std::size_t n : kSizes) {
    Rng rng(505 + n);
    std::vector<double> x(n);
    std::vector<double> y(n);
    std::vector<double> s(n);
    std::vector<double> want(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = uniform(rng, 0.0, 100.0);
      y[i] = uniform(rng, 0.0, 100.0);
      s[i] = uniform(rng, 1.0, 1000.0);
      want[i] = expected_cpm_single_free_space(at, Source{{x[i], y[i]}, s[i]}, response);
    }
    for (const auto t : host_tiers()) {
      std::vector<double> got(n, kNan);
      simd::kernels_for(t).hypothesis_rates(at.x, at.y, scale, response.background_cpm, x.data(),
                                            y.data(), s.data(), nullptr, got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(same_bits(got[i], want[i]))
            << simd::tier_name(t) << " n=" << n << " i=" << i << " got " << hex_bits(got[i])
            << " want " << hex_bits(want[i]);
      }
    }
  }
}

TEST(SimdRates, TransmissionWeightedRatesBitIdenticalToCachedSeedPath) {
  // The cached Eq. (3) association is scale * free_space * transmission +
  // background, evaluated as ((scale * fs) * t) + b — pin it against the
  // filter's scalar expression in every tier.
  SensorResponse response;
  response.efficiency = 1.3;
  response.background_cpm = 12.0;
  const Point2 at{10.0, 90.0};
  const double scale = kMicroCurieToCpm * response.efficiency;

  const std::size_t n = 67;
  Rng rng(606);
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<double> s(n);
  std::vector<double> trans(n);
  std::vector<double> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = uniform(rng, 0.0, 100.0);
    y[i] = uniform(rng, 0.0, 100.0);
    s[i] = uniform(rng, 1.0, 1000.0);
    trans[i] = uniform01(rng);
    want[i] = scale * free_space_intensity(at, Source{{x[i], y[i]}, s[i]}) * trans[i] +
              response.background_cpm;
  }
  for (const auto t : host_tiers()) {
    std::vector<double> got(n, kNan);
    simd::kernels_for(t).hypothesis_rates(at.x, at.y, scale, response.background_cpm, x.data(),
                                          y.data(), s.data(), trans.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_bits(got[i], want[i])) << simd::tier_name(t) << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Bilinear grid lookups (exact in every tier)

TEST(SimdBilinear, MatchesTransmissionCacheBitwiseIncludingBoundaries) {
  Environment env(make_area(50, 40), {Obstacle(make_rect(18, 10, 30, 25), 0.4)});
  TransmissionCache cache(env, /*cell_size=*/3.0);
  const auto* field = cache.prepare({5.0, 5.0});
  ASSERT_NE(field, nullptr);
  const simd::BilinearGrid grid = cache.grid_view(*field);

  // Interior points, exact nodes, cell edges, all four out-of-bounds sides
  // (clamped), and the far corners.
  std::vector<double> xs;
  std::vector<double> ys;
  Rng rng(707);
  for (int i = 0; i < 53; ++i) {
    xs.push_back(uniform(rng, 0.0, 50.0));
    ys.push_back(uniform(rng, 0.0, 40.0));
  }
  for (const double nx : {0.0, 3.0, 6.0, 48.0, 50.0}) {
    for (const double ny : {0.0, 3.0, 39.0, 40.0}) {
      xs.push_back(nx);
      ys.push_back(ny);
    }
  }
  const std::vector<Point2> outside{{-7.0, 20.0}, {63.0, 20.0}, {25.0, -4.0},
                                    {25.0, 55.0}, {-1.0, -1.0}, {200.0, 200.0}};
  for (const auto& p : outside) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }

  std::vector<double> want(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    want[i] = cache.transmission(*field, {xs[i], ys[i]});
  }
  for (const auto t : host_tiers()) {
    std::vector<double> got(xs.size(), kNan);
    simd::kernels_for(t).bilinear(grid, xs.data(), ys.data(), got.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ASSERT_TRUE(same_bits(got[i], want[i]))
          << simd::tier_name(t) << " target=(" << xs[i] << "," << ys[i] << ") got "
          << hex_bits(got[i]) << " want " << hex_bits(want[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Max scan and exp-shifted (renormalization pass)

TEST(SimdMax, MatchesSeedScanWithNanSkippingInEveryTier) {
  for (const std::size_t n : kSizes) {
    Rng rng(808 + n);
    std::vector<double> v(n);
    for (auto& x : v) {
      const double draw = uniform01(rng);
      if (draw < 0.1) {
        x = kNan;
      } else if (draw < 0.2) {
        x = -kInf;
      } else {
        x = uniform(rng, -1e6, 1e6);
      }
    }
    double want = -kInf;
    for (const double x : v) {
      if (x > want) want = x;  // the seed's scan: NaN never replaces m
    }
    for (const auto t : host_tiers()) {
      const double got = simd::kernels_for(t).max_value(v.data(), n);
      ASSERT_TRUE(same_bits(got, want)) << simd::tier_name(t) << " n=" << n;
    }
  }
  // All-NaN and empty ranges report -inf, like the seed's loop.
  const std::vector<double> nans(5, kNan);
  for (const auto t : host_tiers()) {
    EXPECT_EQ(simd::kernels_for(t).max_value(nans.data(), nans.size()), -kInf);
    EXPECT_EQ(simd::kernels_for(t).max_value(nans.data(), 0), -kInf);
  }
}

TEST(SimdExp, ParityInRangeAndExactOnPatchedLanes) {
  const double shift = 3.25;
  std::vector<double> v{0.0,    1.0,   -5.5,  shift, 700.0,  // in range after the shift
                        1e4,    -1e4,  kInf,  -kInf, kNan,   // patched lanes
                        2.5,    -707.0, 711.25, 6.0,  -0.125,
                        88.75,  -3.0,  0.5,   12.0,  -250.0, 1.5};
  for (const auto t : host_tiers()) {
    // In place (the filter renormalizes in place) and out of place agree.
    std::vector<double> got(v.size(), kNan);
    std::vector<double> inplace = v;
    simd::kernels_for(t).exp_shifted(v.data(), shift, got.data(), v.size());
    simd::kernels_for(t).exp_shifted(inplace.data(), shift, inplace.data(), inplace.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      ASSERT_TRUE(same_bits(got[i], inplace[i])) << simd::tier_name(t) << " i=" << i;
      const double arg = v[i] - shift;
      const double want = std::exp(arg);
      if (!(arg > -708.0 && arg < 708.0)) {
        // Out-of-range/NaN lanes are patched with std::exp — exact.
        ASSERT_TRUE(same_bits(got[i], want)) << simd::tier_name(t) << " arg=" << arg;
      } else {
        ASSERT_NEAR(got[i], want, 1e-13 * want + 1e-300) << simd::tier_name(t) << " arg=" << arg;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mean-shift profile

TEST(SimdMeanShift, GaussianParityAndEpanechnikovExactAcrossTiers) {
  const double cx = 20.0;
  const double cy = 30.0;
  const double cs = std::log(50.0);
  const double h2 = 25.0;
  const double hs2 = 0.5625;
  for (const std::size_t n : kSizes) {
    Rng rng(909 + n);
    std::vector<double> x(n);
    std::vector<double> y(n);
    std::vector<double> ls(n);
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = uniform(rng, 5.0, 35.0);
      y[i] = uniform(rng, 15.0, 45.0);
      ls[i] = uniform(rng, std::log(1.0), std::log(1000.0));
      w[i] = uniform01(rng);
    }
    for (const bool gaussian : {true, false}) {
      std::vector<double> want(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - cx;
        const double dy = y[i] - cy;
        const double dls = ls[i] - cs;
        const double e = 0.5 * ((dx * dx + dy * dy) / h2 + dls * dls / hs2);
        want[i] = gaussian ? w[i] * std::exp(-e) : w[i] * std::max(0.0, 1.0 - e / 4.5);
      }
      // Scalar tier: seed expression bit for bit.
      std::vector<double> scalar_out(n);
      simd::kernels_for(simd::Tier::kScalar)
          .meanshift_profile(gaussian, cx, cy, cs, h2, hs2, x.data(), y.data(), ls.data(),
                             w.data(), scalar_out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(same_bits(scalar_out[i], want[i])) << "gaussian=" << gaussian << " i=" << i;
      }
      for (const auto t : host_tiers()) {
        std::vector<double> got(n, kNan);
        simd::kernels_for(t).meanshift_profile(gaussian, cx, cy, cs, h2, hs2, x.data(), y.data(),
                                               ls.data(), w.data(), got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          if (gaussian) {
            ASSERT_NEAR(got[i], want[i], 1e-13 * (want[i] + 1.0))
                << simd::tier_name(t) << " n=" << n << " i=" << i;
          } else {
            // Epanechnikov is exact arithmetic in every tier.
            ASSERT_TRUE(same_bits(got[i], want[i])) << simd::tier_name(t) << " i=" << i;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Aligned storage

TEST(SimdAligned, AVectorBuffersAre32ByteAligned) {
  for (const std::size_t n : {1, 2, 3, 7, 64, 1000, 4097}) {
    simd::AVector<double> v(n);
    EXPECT_TRUE(simd::is_vector_aligned(v.data())) << "n=" << n;
    simd::AVector<Point2> p(n);
    EXPECT_TRUE(simd::is_vector_aligned(p.data())) << "n=" << n;
  }
  EXPECT_TRUE(simd::is_vector_aligned(nullptr));
  alignas(32) double block[8];
  EXPECT_TRUE(simd::is_vector_aligned(&block[0]));
  EXPECT_FALSE(simd::is_vector_aligned(&block[1]));
}

// ---------------------------------------------------------------------------
// Adoption invariants: the filter and mean-shift under a forced vector tier

TEST(SimdAdoption, FilterWeightsBitIdenticalAcrossThreadCountsInVectorTier) {
  // The padded-tail design makes every kernel chunking-invariant, so the
  // thread-count bit-identity contract must hold within a VECTOR tier too,
  // on both batched paths (free space, and cached-obstacle bilinear).
  if (simd::detected_tier() == simd::Tier::kScalar) {
    GTEST_SKIP() << "host has no vector tier";
  }
  TierGuard guard(simd::detected_tier());

  for (const bool cached_obstacles : {false, true}) {
    Environment env = cached_obstacles
                          ? Environment(make_area(100, 100),
                                        {Obstacle(make_u_shape(38, 35, 62, 60, 2.0), 0.2)})
                          : Environment(make_area(100, 100));
    auto sensors = place_grid(env.bounds(), 5, 5);
    set_background(sensors, 5.0);
    FilterConfig cfg;
    cfg.num_particles = 1200;
    cfg.use_known_obstacles = cached_obstacles;
    cfg.use_transmission_cache = cached_obstacles;

    MeasurementSimulator sim(env, sensors, {{{47, 71}, 60.0}, {{81, 42}, 60.0}});
    Rng noise(21);
    std::vector<Measurement> stream;
    for (int step = 0; step < 4; ++step) {
      for (const auto& m : sim.sample_time_step(noise)) stream.push_back(m);
    }

    FusionParticleFilter serial(env, sensors, cfg, Rng(23));
    for (const auto& m : stream) (void)serial.process(m);

    ThreadPool pool(4, /*max_fanout=*/4);
    FusionParticleFilter parallel(env, sensors, cfg, Rng(23));
    parallel.set_thread_pool(&pool);
    for (const auto& m : stream) (void)parallel.process(m);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_TRUE(same_bits(serial.weights()[i], parallel.weights()[i]))
          << "cached=" << cached_obstacles << " i=" << i;
      ASSERT_TRUE(same_bits(serial.positions()[i].x, parallel.positions()[i].x));
      ASSERT_TRUE(same_bits(serial.strengths()[i], parallel.strengths()[i]));
    }
  }
}

TEST(SimdAdoption, FilterStaysNormalizedInEveryTier) {
  for (const auto t : host_tiers()) {
    TierGuard guard(t);
    Environment env(make_area(100, 100));
    auto sensors = place_grid(env.bounds(), 5, 5);
    set_background(sensors, 5.0);
    FilterConfig cfg;
    cfg.num_particles = 1000;
    FusionParticleFilter filter(env, sensors, cfg, Rng(31));
    MeasurementSimulator sim(env, sensors, {{{30, 60}, 80.0}});
    Rng noise(32);
    for (int step = 0; step < 6; ++step) {
      for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
    }
    double total = 0.0;
    for (const double w : filter.weights()) {
      ASSERT_TRUE(std::isfinite(w)) << simd::tier_name(t);
      ASSERT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << simd::tier_name(t);
  }
}

TEST(SimdAdoption, MeanShiftModesAgreeAcrossTiers) {
  // The Gaussian profile differs by ~1 ulp between tiers; converged mode
  // positions must agree far beyond the convergence epsilon.
  ThreadPool pool(2, /*max_fanout=*/2);
  const AreaBounds bounds = make_area(100, 100);
  Rng rng(41);
  std::vector<Point2> positions;
  std::vector<double> strengths;
  std::vector<double> weights;
  for (const auto& [center, strength] :
       std::vector<std::pair<Point2, double>>{{{25.0, 25.0}, 40.0}, {{70.0, 65.0}, 400.0}}) {
    for (int i = 0; i < 500; ++i) {
      positions.push_back({center.x + normal(rng, 0.0, 2.0), center.y + normal(rng, 0.0, 2.0)});
      strengths.push_back(strength * std::exp(normal(rng, 0.0, 0.1)));
      weights.push_back(1.0 / 1000.0);
    }
  }

  std::vector<std::vector<SourceEstimate>> per_tier;
  for (const auto t : host_tiers()) {
    TierGuard guard(t);
    MeanShiftEstimator estimator(bounds, MeanShiftConfig{}, pool);
    per_tier.push_back(estimator.estimate(positions, strengths, weights));
  }
  ASSERT_EQ(per_tier.front().size(), 2u);
  for (std::size_t k = 1; k < per_tier.size(); ++k) {
    ASSERT_EQ(per_tier[k].size(), per_tier.front().size());
    for (std::size_t j = 0; j < per_tier[k].size(); ++j) {
      EXPECT_NEAR(per_tier[k][j].pos.x, per_tier.front()[j].pos.x, 1e-6);
      EXPECT_NEAR(per_tier[k][j].pos.y, per_tier.front()[j].pos.y, 1e-6);
      EXPECT_NEAR(per_tier[k][j].strength, per_tier.front()[j].strength,
                  1e-6 * per_tier.front()[j].strength);
    }
  }
}

}  // namespace
}  // namespace radloc

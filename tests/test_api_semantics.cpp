// Public-API semantic guarantees that could regress silently: detection
// evidence polarity, estimator knobs, experiment metadata, model-selection
// criteria.
#include <gtest/gtest.h>

#include <cmath>

#include "radloc/baselines/mle.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/experiment.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

TEST(DetectionEvidence, PolarityMatchesGroundTruth) {
  // After feeding data from one real source, the evidence at the true
  // source parameters is decisively positive; at an empty location it is
  // below threshold; and the marginal evidence of a duplicate candidate on
  // top of the accepted true source collapses.
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const Source truth{{60, 40}, 40.0};
  MeasurementSimulator sim(env, sensors, {truth});
  MultiSourceLocalizer loc(env, sensors, LocalizerConfig{}, 1);
  Rng noise(2);
  for (int t = 0; t < 8; ++t) loc.process_all(sim.sample_time_step(noise));

  const SourceEstimate at_truth{truth.pos, truth.strength, 1.0};
  const SourceEstimate at_empty{{15, 85}, 40.0, 1.0};
  EXPECT_GT(loc.detection_evidence(at_truth), 100.0);
  EXPECT_LT(loc.detection_evidence(at_empty), 3.0);

  const std::vector<SourceEstimate> accepted{at_truth};
  const SourceEstimate duplicate{truth.pos + Vec2{2.0, 1.0}, truth.strength, 1.0};
  EXPECT_LT(loc.detection_evidence(duplicate, accepted),
            0.2 * loc.detection_evidence(duplicate));
}

TEST(DetectionEvidence, UnobservedRegionIsMinusInfinity) {
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  MultiSourceLocalizer loc(env, sensors, LocalizerConfig{}, 3);
  // No measurements processed at all: nothing to judge with.
  const SourceEstimate anywhere{{50, 50}, 10.0, 1.0};
  EXPECT_TRUE(std::isinf(loc.detection_evidence(anywhere)));
  EXPECT_LT(loc.detection_evidence(anywhere), 0.0);
}

TEST(MeanShiftKnobs, MaxSeedsBoundsWork) {
  Rng rng(4);
  std::vector<Point2> pos;
  std::vector<double> str;
  std::vector<double> w;
  const AreaBounds area = make_area(100, 100);
  for (int i = 0; i < 2000; ++i) {
    pos.push_back(uniform_point(rng, area));
    str.push_back(10.0);
    w.push_back(1.0 / 2000);
  }
  ThreadPool pool(1);
  MeanShiftConfig one_seed;
  one_seed.max_seeds = 1;
  one_seed.min_support = 0.0;
  MeanShiftEstimator est(area, one_seed, pool);
  // One seed can yield at most one mode.
  EXPECT_LE(est.estimate(pos, str, w).size(), 1u);
}

TEST(ExperimentMetadata, MatchedFracAndTimingPopulated) {
  const auto scenario = make_scenario_a(20.0, 5.0, false);
  ExperimentOptions opts;
  opts.trials = 2;
  opts.time_steps = 6;
  opts.seed = 5;
  const auto r = run_experiment(scenario, opts);
  ASSERT_EQ(r.matched_frac.size(), 6u);
  for (const auto& step : r.matched_frac) {
    for (const double f : step) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
  EXPECT_GT(r.seconds_per_iteration, 0.0);
  EXPECT_LT(r.seconds_per_iteration, 1.0);  // sanity: microseconds, not seconds
  // Late steps should match at least as often as step 0 on average.
  double early = 0.0;
  double late = 0.0;
  for (std::size_t j = 0; j < 2; ++j) {
    early += r.matched_frac[0][j];
    late += r.matched_frac[5][j];
  }
  EXPECT_GE(late, early - 1e-9);
}

TEST(ModelSelection, AicAndBicBothRecoverK1) {
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> truth{{{47, 71}, 60.0}};
  MeasurementSimulator sim(env, sensors, truth);
  Rng noise(6);
  std::vector<Measurement> data;
  for (int t = 0; t < 4; ++t) {
    auto batch = sim.sample_time_step(noise);
    data.insert(data.end(), batch.begin(), batch.end());
  }
  for (const auto criterion : {ModelSelection::kAic, ModelSelection::kBic}) {
    MleConfig cfg;
    cfg.max_sources = 3;
    cfg.restarts = 5;
    cfg.criterion = criterion;
    MleLocalizer mle(env, sensors, cfg);
    Rng rng(7);
    const auto fit = mle.fit(data, rng);
    if (criterion == ModelSelection::kBic) {
      // BIC's ln(n) penalty reliably picks the true K here.
      EXPECT_EQ(fit.selected_k, 1u);
    } else {
      // AIC's constant penalty is known to overfit by a component or so —
      // the textbook behavior this paper's Sec. II cites against model
      // selection. Allow the off-by-one.
      EXPECT_LE(fit.selected_k, 2u);
      EXPECT_GE(fit.selected_k, 1u);
    }
  }
}

TEST(LocalizerKnobs, ObstacleAwareModeBeatsBlindBehindHeavyWalls) {
  // End-to-end version of the filter-level test: with a near-opaque wall
  // shadowing the source's nearest sensors, the obstacle-aware localizer's
  // error must not be worse than twice the blind one's (usually better).
  Environment env(make_area(100, 100),
                  {Obstacle(make_rect(30, 30, 36, 70), 0.7)});
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> truth{{{22, 50}, 60.0}};
  MeasurementSimulator sim(env, sensors, truth);

  auto run = [&](bool aware) {
    LocalizerConfig cfg;
    cfg.filter.use_known_obstacles = aware;
    MultiSourceLocalizer loc(env, sensors, cfg, 8);
    Rng noise(9);
    for (int t = 0; t < 12; ++t) loc.process_all(sim.sample_time_step(noise));
    double best = 1e18;
    for (const auto& e : loc.estimate()) best = std::min(best, distance(e.pos, truth[0].pos));
    return best;
  };
  const double blind = run(false);
  const double aware = run(true);
  EXPECT_LT(aware, 12.0);
  EXPECT_LT(blind, 25.0);           // blind still localizes (the paper's claim)
  EXPECT_LE(aware, 2.0 * blind + 2.0);  // knowing the wall never hurts much
}

}  // namespace
}  // namespace radloc

// Deterministic stress harness for the fusion filter ingestion path.
//
// Drives FusionParticleFilter / MultiSourceLocalizer through seeded
// randomized episodes — hostile delivery stacks, obstacles, moving
// hypotheses, extreme CPM values, malformed input — asserting the filter's
// standing invariants after every single measurement:
//   * weights are finite, non-negative, and sum to 1 (total mass conserved),
//   * positions stay inside the surveillance bounds,
//   * strengths stay finite inside the configured prior range,
//   * results are bit-identical at any thread count.
// Every episode is fully determined by its seed; failures reproduce exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/filter/movement.hpp"
#include "radloc/filter/particle_filter.hpp"
#include "radloc/geom/polygon.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/sensornet/validation.hpp"

namespace radloc {
namespace {

constexpr double kMassTolerance = 1e-9;

void expect_filter_invariants(const FusionParticleFilter& filter, const char* context) {
  SCOPED_TRACE(context);
  const AreaBounds& bounds = filter.environment().bounds();
  const FilterConfig& cfg = filter.config();
  double mass = 0.0;
  for (std::size_t i = 0; i < filter.size(); ++i) {
    const double w = filter.weights()[i];
    ASSERT_TRUE(std::isfinite(w)) << "weight " << i << " not finite: " << w;
    ASSERT_GE(w, 0.0) << "weight " << i << " negative";
    mass += w;
    const Point2& p = filter.positions()[i];
    ASSERT_TRUE(std::isfinite(p.x) && std::isfinite(p.y)) << "position " << i << " not finite";
    ASSERT_TRUE(bounds.contains(p)) << "position " << i << " escaped bounds";
    const double s = filter.strengths()[i];
    ASSERT_TRUE(std::isfinite(s)) << "strength " << i << " not finite";
    ASSERT_GE(s, cfg.strength_min);
    ASSERT_LE(s, cfg.strength_max);
  }
  ASSERT_NEAR(mass, 1.0, kMassTolerance) << "total weight mass drifted";
  ASSERT_TRUE(std::isfinite(filter.effective_sample_size()));
}

Environment make_episode_environment(std::uint64_t seed) {
  std::vector<Obstacle> obstacles;
  if (seed % 2 == 1) {
    obstacles.emplace_back(make_rect(40.0, 20.0, 46.0, 80.0), 0.0693);
    obstacles.emplace_back(make_rect(60.0, 0.0, 66.0, 40.0), 0.2);
  }
  return Environment(make_area(100.0, 100.0), std::move(obstacles));
}

std::unique_ptr<DeliveryModel> make_episode_delivery(std::uint64_t seed) {
  switch (seed % 4) {
    case 0:
      return std::make_unique<InOrderDelivery>();
    case 1:
      return std::make_unique<ShuffledDelivery>();
    case 2:
      return std::make_unique<LossyDelivery>(0.3, std::make_unique<ShuffledDelivery>());
    default:
      return std::make_unique<LossyDelivery>(0.2,
                                             std::make_unique<RandomLatencyDelivery>(2.0));
  }
}

FilterConfig make_episode_config(std::uint64_t seed) {
  FilterConfig cfg;
  cfg.num_particles = 512;
  if (seed % 2 == 1) {
    cfg.use_known_obstacles = true;
    cfg.use_transmission_cache = (seed % 3 == 0);
  }
  return cfg;
}

// One full episode: simulate a two-source world, push every delivered
// measurement through the filter, check invariants after each iteration and
// drain the stragglers at the end.
void run_episode(std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "episode seed " << seed);
  const Environment env = make_episode_environment(seed);
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);
  const std::vector<Source> sources{{{25.0, 70.0}, 120.0}, {{75.0, 30.0}, 60.0}};
  MeasurementSimulator sim(env, sensors, sources);

  FusionParticleFilter filter(env, sensors, make_episode_config(seed), Rng(seed));
  if (seed % 3 == 1) {
    filter.set_movement_model(std::make_unique<RandomWalkMovement>(0.5));
  }
  auto delivery = make_episode_delivery(seed);

  Rng world(seed ^ 0x9e3779b97f4a7c15ULL);
  for (int step = 0; step < 25; ++step) {
    for (const Measurement& m : delivery->deliver(world, sim.sample_time_step(world))) {
      (void)filter.process(m);
      expect_filter_invariants(filter, "after process");
    }
  }
  for (const Measurement& m : delivery->drain(world)) {
    (void)filter.process(m);
  }
  expect_filter_invariants(filter, "after drain");
  EXPECT_EQ(filter.validator().rejected(), 0u);  // the episode feed is well-formed
}

TEST(StressFilter, SeededEpisodesPreserveInvariants) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 6u, 9u}) run_episode(seed);
}

TEST(StressFilter, LocalizerEpisodeEstimatesStayPhysical) {
  const Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);
  MeasurementSimulator sim(env, sensors, {{{30.0, 30.0}, 150.0}});

  LocalizerConfig cfg;
  cfg.filter.num_particles = 512;
  MultiSourceLocalizer loc(env, sensors, cfg, /*seed=*/17);
  Rng world(99);
  for (int step = 0; step < 30; ++step) {
    for (const Measurement& m : sim.sample_time_step(world)) loc.process(m);
    if (step % 10 == 9) {
      for (const SourceEstimate& e : loc.estimate()) {
        EXPECT_TRUE(env.bounds().contains(e.pos));
        EXPECT_TRUE(std::isfinite(e.strength));
        EXPECT_GT(e.strength, 0.0);
        EXPECT_GE(e.support, 0.0);
        EXPECT_LE(e.support, 1.0 + 1e-9);
      }
      expect_filter_invariants(loc.filter(), "after estimate");
    }
  }
}

TEST(StressFilter, BitIdenticalAcrossThreadCounts) {
  const Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);
  MeasurementSimulator sim(env, sensors, {{{40.0, 60.0}, 100.0}});
  Rng world(5);
  std::vector<Measurement> stream;
  for (int step = 0; step < 8; ++step) {
    for (const Measurement& m : sim.sample_time_step(world)) stream.push_back(m);
  }

  FilterConfig cfg;
  cfg.num_particles = 512;
  // max_fanout == thread count so the dispatch machinery actually fans out
  // even when the host exposes a single core.
  ThreadPool pool4(4, 4);
  ThreadPool pool8(8, 8);
  struct Run {
    const char* name;
    ThreadPool* pool;
  };
  const Run runs[] = {{"serial", nullptr}, {"4 threads", &pool4}, {"8 threads", &pool8}};

  std::vector<double> reference_weights;
  std::vector<Point2> reference_positions;
  for (const Run& run : runs) {
    SCOPED_TRACE(run.name);
    FusionParticleFilter filter(env, sensors, cfg, Rng(1234));
    filter.set_thread_pool(run.pool);
    for (const Measurement& m : stream) (void)filter.process(m);
    if (reference_weights.empty()) {
      reference_weights.assign(filter.weights().begin(), filter.weights().end());
      reference_positions.assign(filter.positions().begin(), filter.positions().end());
    } else {
      for (std::size_t i = 0; i < filter.size(); ++i) {
        ASSERT_EQ(filter.weights()[i], reference_weights[i]) << "weight " << i << " diverged";
        ASSERT_EQ(filter.positions()[i], reference_positions[i])
            << "position " << i << " diverged";
      }
    }
  }
}

TEST(StressFilter, ExtremeCpmValuesKeepStateFinite) {
  const Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 3, 3);
  set_background(sensors, 5.0);
  FilterConfig cfg;
  cfg.num_particles = 256;
  FusionParticleFilter filter(env, sensors, cfg, Rng(7));

  const double extremes[] = {0.0,
                             std::numeric_limits<double>::denorm_min(),
                             1e-300,
                             1.0,
                             1e6,
                             1e15,
                             1e308};
  const SensorResponse response{kDefaultEfficiency, 5.0};
  for (const double cpm : extremes) {
    SCOPED_TRACE(::testing::Message() << "cpm = " << cpm);
    (void)filter.process_reading({50.0, 50.0}, response, cpm);
    expect_filter_invariants(filter, "after extreme reading");
  }
}

// ---------------------------------------------------------------- semantics
// The degenerate-update early returns, pinned (see particle_filter.hpp).

TEST(StressFilter, EmptyFusionDiskIsACompleteNoOp) {
  const Environment env(make_area(100.0, 100.0));
  FilterConfig cfg;
  cfg.num_particles = 128;
  FusionParticleFilter filter(env, {}, cfg, Rng(3));
  filter.set_movement_model(std::make_unique<RandomWalkMovement>(2.0));

  const std::vector<Point2> before_pos(filter.positions().begin(), filter.positions().end());
  const std::vector<double> before_w(filter.weights().begin(), filter.weights().end());

  // Far outside the area: the fusion disk selects nothing, so not even the
  // predict step runs — the movement model must not have touched anything.
  EXPECT_EQ(filter.process_reading({1e6, 1e6}, SensorResponse{kDefaultEfficiency, 5.0}, 10.0),
            0u);
  EXPECT_EQ(filter.iteration(), 1u);
  for (std::size_t i = 0; i < filter.size(); ++i) {
    ASSERT_EQ(filter.positions()[i], before_pos[i]);
    ASSERT_EQ(filter.weights()[i], before_w[i]);
  }
}

TEST(StressFilter, DegenerateUpdatePredictsButSkipsWeightUpdate) {
  const Environment env(make_area(100.0, 100.0));
  FilterConfig cfg;
  cfg.num_particles = 128;
  cfg.fusion_range = 200.0;  // every particle selected
  FusionParticleFilter filter(env, {}, cfg, Rng(3));
  filter.set_movement_model(std::make_unique<RandomWalkMovement>(2.0));

  const std::vector<Point2> before_pos(filter.positions().begin(), filter.positions().end());
  const std::vector<double> before_w(filter.weights().begin(), filter.weights().end());

  // cpm = 1e308 overflows log(cpm!), driving every log-likelihood to -inf:
  // the measurement is impossible for all hypotheses and the update is
  // skipped — but the predict step has already evolved the selected
  // particles. That is the documented contract.
  EXPECT_EQ(filter.process_reading({50.0, 50.0}, SensorResponse{kDefaultEfficiency, 5.0}, 1e308),
            0u);
  EXPECT_EQ(filter.iteration(), 1u);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < filter.size(); ++i) {
    ASSERT_EQ(filter.weights()[i], before_w[i]) << "weights must be untouched on a skip";
    if (!(filter.positions()[i] == before_pos[i])) ++moved;
  }
  EXPECT_GT(moved, 0u) << "predict must have run before the update was skipped";
  expect_filter_invariants(filter, "after degenerate update");
}

// --------------------------------------------------------------- validation
// The ingestion choke point: malformed readings are named, counted, and
// rejected without touching filter state.

TEST(StressFilter, ValidationChokePointNamesAndCountsFaults) {
  const Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 2, 2);
  FilterConfig cfg;
  cfg.num_particles = 64;
  FusionParticleFilter filter(env, sensors, cfg, Rng(11));

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  EXPECT_EQ(filter.try_process({99, 10.0}), ReadingFault::kUnknownSensor);
  EXPECT_EQ(filter.try_process({0, nan}), ReadingFault::kNonFiniteCpm);
  EXPECT_EQ(filter.try_process({0, inf}), ReadingFault::kNonFiniteCpm);
  EXPECT_EQ(filter.try_process({0, -1.0}), ReadingFault::kNegativeCpm);
  EXPECT_EQ(filter.iteration(), 0u) << "rejected readings must not consume an iteration";

  EXPECT_THROW((void)filter.process({99, 10.0}), std::invalid_argument);
  EXPECT_THROW((void)filter.process({2, inf}), std::invalid_argument);
  EXPECT_THROW((void)filter.process_reading({nan, 50.0}, SensorResponse{}, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)filter.process_reading({50.0, 50.0}, SensorResponse{}, -2.0),
               std::invalid_argument);

  EXPECT_EQ(filter.try_process({1, 12.0}), ReadingFault::kNone);
  EXPECT_EQ(filter.iteration(), 1u);

  const MeasurementValidator& v = filter.validator();
  EXPECT_EQ(v.count(ReadingFault::kUnknownSensor), 2u);
  EXPECT_EQ(v.count(ReadingFault::kNonFiniteCpm), 3u);
  EXPECT_EQ(v.count(ReadingFault::kNegativeCpm), 2u);
  EXPECT_EQ(v.count(ReadingFault::kNonFinitePosition), 1u);
  EXPECT_EQ(v.accepted(), 1u);
  EXPECT_EQ(v.rejected(), 8u);
}

TEST(StressFilter, LocalizerTryProcessToleratesMalformedFeed) {
  const Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 3, 3);
  set_background(sensors, 5.0);
  MeasurementSimulator sim(env, sensors, {{{50.0, 50.0}, 80.0}});

  LocalizerConfig cfg;
  cfg.filter.num_particles = 256;
  MultiSourceLocalizer loc(env, sensors, cfg, /*seed=*/23);

  Rng world(42);
  std::size_t rejects = 0;
  for (int step = 0; step < 10; ++step) {
    for (Measurement m : sim.sample_time_step(world)) {
      // A hostile feed: every few readings are corrupted in transit.
      if (step % 3 == 0 && m.sensor % 4 == 0) {
        m.cpm = (m.sensor % 8 == 0) ? std::numeric_limits<double>::quiet_NaN() : -5.0;
      }
      if (loc.try_process(m) != ReadingFault::kNone) ++rejects;
    }
  }
  EXPECT_GT(rejects, 0u);
  EXPECT_EQ(loc.filter().validator().rejected(), rejects);
  expect_filter_invariants(loc.filter(), "after hostile feed");
  for (const SourceEstimate& e : loc.estimate()) {
    EXPECT_TRUE(env.bounds().contains(e.pos));
  }
}

}  // namespace
}  // namespace radloc

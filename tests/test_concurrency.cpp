#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "radloc/concurrency/thread_pool.hpp"

namespace radloc {
namespace {

TEST(ThreadPool, SerialModeRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.for_each_index(100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ZeroThreadsBehavesLikeOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  int count = 0;
  pool.for_each_index(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 10);
}

// The sweep constructs pools with max_fanout == thread count so the queued
// dispatch path is exercised even on hosts with fewer cores than threads.
class ThreadPoolSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadPoolSweep, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(GetParam(), GetParam());
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.for_each_index(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ThreadPoolSweep, ParallelSumMatchesSerial) {
  ThreadPool pool(GetParam(), GetParam());
  constexpr std::size_t n = 10000;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<double>(i) * 0.5;

  std::atomic<double> parallel_sum{0.0};
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) local += data[i];
    double expected = parallel_sum.load();
    while (!parallel_sum.compare_exchange_weak(expected, expected + local)) {
    }
  });
  const double serial = std::accumulate(data.begin(), data.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel_sum.load(), serial);
}

TEST_P(ThreadPoolSweep, ReusableAcrossManyCalls) {
  ThreadPool pool(GetParam(), GetParam());
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.for_each_index(64, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 64);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolSweep, ::testing::Values(1u, 2u, 4u, 8u));

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleElementRunsOnCaller) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](std::size_t, std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ChunksCoverRangeWithoutOverlap) {
  ThreadPool pool(3, 3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    const std::lock_guard lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t cursor = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, cursor);
    EXPECT_GT(e, b);
    cursor = e;
  }
  EXPECT_EQ(cursor, 100u);
}

TEST(TaskGroup, RunsEveryTask) {
  ThreadPool pool(4, 4);
  constexpr std::size_t n = 200;
  std::vector<std::atomic<int>> hits(n);
  {
    ThreadPool::TaskGroup group(pool);
    for (std::size_t i = 0; i < n; ++i) {
      group.run([&hits, i] { hits[i].fetch_add(1); });
    }
    group.wait();
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskGroup, DestructorWaits) {
  ThreadPool pool(4, 4);
  std::atomic<int> count{0};
  {
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) group.run([&count] { count.fetch_add(1); });
    // No explicit wait: ~TaskGroup must block until every task ran.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(TaskGroup, SerialPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on;
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 5; ++i) {
    group.run([&ran_on] { ran_on.push_back(std::this_thread::get_id()); });
  }
  group.wait();
  ASSERT_EQ(ran_on.size(), 5u);
  for (const auto id : ran_on) EXPECT_EQ(id, caller);
}

TEST(TaskGroup, InPoolWorkVisibleInsideTasks) {
  ThreadPool pool(2, 2);
  EXPECT_FALSE(pool.in_pool_work());
  std::atomic<int> inside{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([&] {
      if (pool.in_pool_work()) inside.fetch_add(1);
    });
  }
  group.wait();
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(pool.in_pool_work());
}

// The nesting contract: a parallel_for issued from inside pool work runs
// the whole range inline on that worker instead of re-entering the queue —
// no deadlock, no oversubscription, every index exactly once.
TEST(TaskGroup, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4, 4);
  constexpr std::size_t tasks = 16;
  constexpr std::size_t inner = 1000;
  std::vector<std::atomic<int>> hits(tasks * inner);
  ThreadPool::TaskGroup group(pool);
  for (std::size_t t = 0; t < tasks; ++t) {
    group.run([&, t] {
      const auto me = std::this_thread::get_id();
      pool.parallel_for(inner, [&, t, me](std::size_t begin, std::size_t end) {
        EXPECT_EQ(std::this_thread::get_id(), me);
        for (std::size_t i = begin; i < end; ++i) hits[t * inner + i].fetch_add(1);
      });
    });
  }
  group.wait();
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskGroup, ManyMoreTasksThanWorkers) {
  // wait() must make progress by stealing queued tasks, not just blocking.
  ThreadPool pool(2, 2);
  std::atomic<int> count{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 500; ++i) group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 500);
}

TEST(TaskGroup, GroupReusableAfterWait) {
  ThreadPool pool(3, 3);
  std::atomic<int> count{0};
  ThreadPool::TaskGroup group(pool);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 32; ++i) group.run([&count] { count.fetch_add(1); });
    group.wait();
    ASSERT_EQ(count.load(), 32 * (round + 1));
  }
}

TEST(TaskGroup, ParallelForFromCallerWhileGroupPending) {
  // An outer serial caller may interleave its own parallel_for with a
  // pending TaskGroup on the same pool; both must complete.
  ThreadPool pool(4, 4);
  std::atomic<int> task_count{0};
  std::atomic<int> index_count{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 50; ++i) group.run([&task_count] { task_count.fetch_add(1); });
  pool.for_each_index(300, [&](std::size_t) { index_count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(task_count.load(), 50);
  EXPECT_EQ(index_count.load(), 300);
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "radloc/concurrency/thread_pool.hpp"

namespace radloc {
namespace {

TEST(ThreadPool, SerialModeRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.for_each_index(100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ZeroThreadsBehavesLikeOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  int count = 0;
  pool.for_each_index(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 10);
}

// The sweep constructs pools with max_fanout == thread count so the queued
// dispatch path is exercised even on hosts with fewer cores than threads.
class ThreadPoolSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadPoolSweep, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(GetParam(), GetParam());
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.for_each_index(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ThreadPoolSweep, ParallelSumMatchesSerial) {
  ThreadPool pool(GetParam(), GetParam());
  constexpr std::size_t n = 10000;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<double>(i) * 0.5;

  std::atomic<double> parallel_sum{0.0};
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) local += data[i];
    double expected = parallel_sum.load();
    while (!parallel_sum.compare_exchange_weak(expected, expected + local)) {
    }
  });
  const double serial = std::accumulate(data.begin(), data.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel_sum.load(), serial);
}

TEST_P(ThreadPoolSweep, ReusableAcrossManyCalls) {
  ThreadPool pool(GetParam(), GetParam());
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.for_each_index(64, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 64);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolSweep, ::testing::Values(1u, 2u, 4u, 8u));

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleElementRunsOnCaller) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](std::size_t, std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ChunksCoverRangeWithoutOverlap) {
  ThreadPool pool(3, 3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    const std::lock_guard lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t cursor = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, cursor);
    EXPECT_GT(e, b);
    cursor = e;
  }
  EXPECT_EQ(cursor, 100u);
}

TEST(TaskGroup, RunsEveryTask) {
  ThreadPool pool(4, 4);
  constexpr std::size_t n = 200;
  std::vector<std::atomic<int>> hits(n);
  {
    ThreadPool::TaskGroup group(pool);
    for (std::size_t i = 0; i < n; ++i) {
      group.run([&hits, i] { hits[i].fetch_add(1); });
    }
    group.wait();
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskGroup, DestructorWaits) {
  ThreadPool pool(4, 4);
  std::atomic<int> count{0};
  {
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) group.run([&count] { count.fetch_add(1); });
    // No explicit wait: ~TaskGroup must block until every task ran.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(TaskGroup, SerialPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on;
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 5; ++i) {
    group.run([&ran_on] { ran_on.push_back(std::this_thread::get_id()); });
  }
  group.wait();
  ASSERT_EQ(ran_on.size(), 5u);
  for (const auto id : ran_on) EXPECT_EQ(id, caller);
}

TEST(TaskGroup, InPoolWorkVisibleInsideTasks) {
  ThreadPool pool(2, 2);
  EXPECT_FALSE(pool.in_pool_work());
  std::atomic<int> inside{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([&] {
      if (pool.in_pool_work()) inside.fetch_add(1);
    });
  }
  group.wait();
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(pool.in_pool_work());
}

// The nesting contract: a parallel_for issued from inside pool work runs
// the whole range inline on that worker instead of re-entering the queue —
// no deadlock, no oversubscription, every index exactly once.
TEST(TaskGroup, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4, 4);
  constexpr std::size_t tasks = 16;
  constexpr std::size_t inner = 1000;
  std::vector<std::atomic<int>> hits(tasks * inner);
  ThreadPool::TaskGroup group(pool);
  for (std::size_t t = 0; t < tasks; ++t) {
    group.run([&, t] {
      const auto me = std::this_thread::get_id();
      pool.parallel_for(inner, [&, t, me](std::size_t begin, std::size_t end) {
        EXPECT_EQ(std::this_thread::get_id(), me);
        for (std::size_t i = begin; i < end; ++i) hits[t * inner + i].fetch_add(1);
      });
    });
  }
  group.wait();
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskGroup, ManyMoreTasksThanWorkers) {
  // wait() must make progress by stealing queued tasks, not just blocking.
  ThreadPool pool(2, 2);
  std::atomic<int> count{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 500; ++i) group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 500);
}

TEST(TaskGroup, GroupReusableAfterWait) {
  ThreadPool pool(3, 3);
  std::atomic<int> count{0};
  ThreadPool::TaskGroup group(pool);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 32; ++i) group.run([&count] { count.fetch_add(1); });
    group.wait();
    ASSERT_EQ(count.load(), 32 * (round + 1));
  }
}

// ---------------------------------------------------------------------------
// Exception propagation (DESIGN.md §5.6/§5.8): an exception thrown inside a
// parallel_for chunk or TaskGroup task must not escape a worker thread (that
// would std::terminate the process). The pool captures the FIRST exception of
// a wave and rethrows it at the parallel_for return / TaskGroup::wait() call
// site; the remaining jobs of the wave still run and the pool stays usable.
// Before the fix these tests died with "terminate called after throwing ...".

TEST(ThreadPoolException, ParallelForRethrowsWorkerChunkException) {
  ThreadPool pool(4, 4);
  EXPECT_THROW(
      pool.for_each_index(256,
                          [](std::size_t i) {
                            if (i == 200) throw std::runtime_error("chunk failed");
                          }),
      std::runtime_error);
  // The pool must survive a throwing wave and run later work normally.
  std::atomic<int> count{0};
  pool.for_each_index(128, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 128);
}

TEST(ThreadPoolException, ParallelForCallerChunkExceptionStillRetiresQueuedChunks) {
  // The caller runs chunk [0, k) itself; a throw there must not unwind past
  // the queued chunks — they borrow the chunk functor and Sync off this
  // stack frame, so returning early would be a use-after-free for the
  // workers. Every surviving index must still run exactly once.
  ThreadPool pool(4, 4);
  constexpr std::size_t n = 4000;
  std::vector<std::atomic<int>> hits(n);
  EXPECT_THROW(pool.parallel_for(n,
                                 [&](std::size_t begin, std::size_t end) {
                                   if (begin == 0) throw std::runtime_error("caller chunk");
                                   for (std::size_t i = begin; i < end; ++i)
                                     hits[i].fetch_add(1);
                                 }),
               std::runtime_error);
  for (std::size_t i = 1000; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolException, ParallelForSerialPoolPropagatesInline) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.for_each_index(
                   8, [](std::size_t i) { (void)i; throw std::logic_error("serial"); }),
               std::logic_error);
  int count = 0;
  pool.for_each_index(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 8);
}

TEST(ThreadPoolException, TaskGroupWaitRethrowsFirstTaskException) {
  ThreadPool pool(4, 4);
  std::atomic<int> ran{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.run([&ran, i] {
      if (i == 13) throw std::runtime_error("task 13");
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // Every non-throwing task still ran: one failure doesn't cancel the wave.
  EXPECT_EQ(ran.load(), 63);
  // Group and pool stay usable after the rethrow.
  group.run([&ran] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolException, TaskGroupSerialPoolRethrowsAtWaitNotRun) {
  // Inline execution (no workers) must keep the contract: run() returns
  // normally, the captured exception surfaces at wait().
  ThreadPool pool(1);
  ThreadPool::TaskGroup group(pool);
  EXPECT_NO_THROW(group.run([] { throw std::runtime_error("inline task"); }));
  EXPECT_THROW(group.wait(), std::runtime_error);
  int ran = 0;
  group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolException, TaskGroupDestructorSwallowsUnobservedException) {
  // ~TaskGroup waits but must not rethrow (throwing destructors terminate).
  ThreadPool pool(2, 2);
  {
    ThreadPool::TaskGroup group(pool);
    group.run([] { throw std::runtime_error("unobserved"); });
  }
  std::atomic<int> count{0};
  pool.for_each_index(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolException, NestedParallelForExceptionReachesGroupWait) {
  // A task's inline nested parallel_for throws -> the task throws -> the
  // group captures it and wait() rethrows.
  ThreadPool pool(4, 4);
  ThreadPool::TaskGroup group(pool);
  group.run([&] {
    pool.for_each_index(100, [](std::size_t i) {
      if (i == 50) throw std::runtime_error("nested");
    });
  });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ThreadPoolException, ExceptionTypePreserved) {
  ThreadPool pool(4, 4);
  try {
    pool.for_each_index(64, [](std::size_t i) {
      if (i == 32) throw std::out_of_range("index 32 rejected");
    });
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "index 32 rejected");
  }
}

TEST(TaskGroup, ParallelForFromCallerWhileGroupPending) {
  // An outer serial caller may interleave its own parallel_for with a
  // pending TaskGroup on the same pool; both must complete.
  ThreadPool pool(4, 4);
  std::atomic<int> task_count{0};
  std::atomic<int> index_count{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 50; ++i) group.run([&task_count] { task_count.fetch_add(1); });
  pool.for_each_index(300, [&](std::size_t) { index_count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(task_count.load(), 50);
  EXPECT_EQ(index_count.load(), 300);
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "radloc/baselines/grid_solver.hpp"
#include "radloc/baselines/joint_pf.hpp"
#include "radloc/baselines/mle.hpp"
#include "radloc/baselines/single_source.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

struct World {
  Environment env{make_area(100, 100)};
  std::vector<Sensor> sensors;

  World() {
    sensors = place_grid(env.bounds(), 6, 6);
    set_background(sensors, 5.0);
  }

  /// `steps` time steps of measurements from `sources`.
  std::vector<Measurement> collect(const std::vector<Source>& sources, int steps,
                                   std::uint64_t seed) const {
    MeasurementSimulator sim(env, sensors, sources);
    Rng rng(seed);
    std::vector<Measurement> all;
    for (int t = 0; t < steps; ++t) {
      auto batch = sim.sample_time_step(rng);
      all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
  }
};

// ---------------------------------------------------------------- joint PF

TEST(JointPf, LocalizesSingleSourceWithKnownK) {
  World w;
  const std::vector<Source> truth{{{47, 71}, 50.0}};
  JointPfConfig cfg;
  cfg.num_sources = 1;
  cfg.num_particles = 3000;
  JointParticleFilter pf(w.env, w.sensors, cfg, Rng(1));

  MeasurementSimulator sim(w.env, w.sensors, truth);
  Rng noise(2);
  for (int t = 0; t < 10; ++t) {
    for (const auto& m : sim.sample_time_step(noise)) pf.process(m);
  }
  const auto est = pf.estimate();
  ASSERT_EQ(est.size(), 1u);
  EXPECT_LT(distance(est[0].pos, truth[0].pos), 8.0);
}

TEST(JointPf, SingleSourceModelOscillatesBetweenTwoSources) {
  // The Fig. 2 pathology: a K=1 filter fed two sources drifts with the
  // sensor update order. We verify the centroid swings substantially.
  World w;
  const std::vector<Source> truth{{{20, 80}, 80.0}, {{80, 20}, 80.0}};
  JointPfConfig cfg;
  cfg.num_sources = 1;
  cfg.num_particles = 2000;
  JointParticleFilter pf(w.env, w.sensors, cfg, Rng(3));

  MeasurementSimulator sim(w.env, w.sensors, truth);
  Rng noise(4);
  double min_dist_a = 1e9;
  double min_dist_b = 1e9;
  for (int t = 0; t < 12; ++t) {
    for (const auto& m : sim.sample_time_step(noise)) pf.process(m);
    const Point2 c = pf.centroid();
    min_dist_a = std::min(min_dist_a, distance(c, truth[0].pos));
    min_dist_b = std::min(min_dist_b, distance(c, truth[1].pos));
  }
  // The centroid came close to both sources at different times (oscillation)
  // or sat between them — either way it cannot stay on both simultaneously.
  EXPECT_LT(std::min(min_dist_a, min_dist_b), 45.0);
}

TEST(JointPf, EssNeverExceedsParticleCount) {
  World w;
  JointPfConfig cfg;
  cfg.num_sources = 2;
  cfg.num_particles = 500;
  JointParticleFilter pf(w.env, w.sensors, cfg, Rng(5));
  EXPECT_NEAR(pf.effective_sample_size(), 500.0, 1e-6);
  MeasurementSimulator sim(w.env, w.sensors, {{{30, 30}, 20.0}, {{70, 70}, 20.0}});
  Rng noise(6);
  for (const auto& m : sim.sample_time_step(noise)) pf.process(m);
  EXPECT_LE(pf.effective_sample_size(), 500.0 + 1e-6);
  EXPECT_GT(pf.effective_sample_size(), 0.0);
}

TEST(JointPf, RejectsBadConfig) {
  World w;
  JointPfConfig cfg;
  cfg.num_sources = 0;
  EXPECT_THROW(JointParticleFilter(w.env, w.sensors, cfg, Rng(1)), std::invalid_argument);
}

// --------------------------------------------------------------------- MLE

TEST(Mle, RecoversSingleSource) {
  World w;
  const std::vector<Source> truth{{{47, 71}, 50.0}};
  const auto data = w.collect(truth, 3, 7);

  MleConfig cfg;
  cfg.max_sources = 2;
  cfg.restarts = 6;
  MleLocalizer mle(w.env, w.sensors, cfg);
  Rng rng(8);
  const auto fit = mle.fit(data, rng);

  EXPECT_EQ(fit.selected_k, 1u);
  ASSERT_EQ(fit.sources.size(), 1u);
  EXPECT_LT(distance(fit.sources[0].pos, truth[0].pos), 5.0);
  EXPECT_NEAR(fit.sources[0].strength, 50.0, 20.0);
}

TEST(Mle, SelectsKTwoForTwoSources) {
  World w;
  const std::vector<Source> truth{{{25, 75}, 80.0}, {{80, 25}, 80.0}};
  const auto data = w.collect(truth, 6, 9);

  MleConfig cfg;
  cfg.max_sources = 3;
  cfg.restarts = 8;
  MleLocalizer mle(w.env, w.sensors, cfg);
  Rng rng(10);
  const auto fit = mle.fit(data, rng);

  EXPECT_EQ(fit.selected_k, 2u);
  const std::vector<Source> truth_span(truth.begin(), truth.end());
  const auto match = match_estimates(truth_span, fit.sources);
  EXPECT_EQ(match.false_negatives, 0u);
}

TEST(Mle, FixedKBypassesSelection) {
  World w;
  const auto data = w.collect({{{50, 50}, 50.0}}, 2, 11);
  MleConfig cfg;
  cfg.restarts = 4;
  MleLocalizer mle(w.env, w.sensors, cfg);
  Rng rng(12);
  const auto fit = mle.fit_fixed_k(data, 3, rng);
  EXPECT_EQ(fit.selected_k, 3u);
  EXPECT_EQ(fit.sources.size(), 3u);
}

TEST(Mle, NllLowerForTruthThanForGarbage) {
  World w;
  const std::vector<Source> truth{{{47, 71}, 50.0}};
  const auto data = w.collect(truth, 2, 13);
  MleLocalizer mle(w.env, w.sensors, {});
  const std::vector<Source> garbage{{{5, 5}, 700.0}};
  EXPECT_LT(mle.negative_log_likelihood(data, truth),
            mle.negative_log_likelihood(data, garbage));
}

TEST(Mle, RejectsEmptyMeasurements) {
  World w;
  MleLocalizer mle(w.env, w.sensors, {});
  Rng rng(14);
  EXPECT_THROW((void)mle.fit({}, rng), std::invalid_argument);
}

// ------------------------------------------------------------- grid solver

TEST(GridSolverTest, RecoversSingleSourceCell) {
  World w;
  const std::vector<Source> truth{{{47, 71}, 50.0}};
  const auto data = w.collect(truth, 10, 15);

  GridSolverConfig cfg;
  cfg.cells_x = 20;
  cfg.cells_y = 20;  // 5-unit cells
  GridSolver solver(w.env, w.sensors, cfg);
  const auto fit = solver.fit_measurements(data);

  ASSERT_FALSE(fit.sources.empty());
  // The strongest recovered peak may be one cell off; some peak must land
  // within two cell widths of the truth.
  double best = 1e18;
  for (const auto& s : fit.sources) best = std::min(best, distance(s.pos, truth[0].pos));
  EXPECT_LT(best, 10.0);
}

TEST(GridSolverTest, RecoversTwoWellSeparatedSources) {
  World w;
  const std::vector<Source> truth{{{25, 75}, 60.0}, {{80, 25}, 60.0}};
  const auto data = w.collect(truth, 5, 16);

  GridSolverConfig cfg;
  cfg.cells_x = 20;
  cfg.cells_y = 20;
  GridSolver solver(w.env, w.sensors, cfg);
  const auto fit = solver.fit_measurements(data);

  const auto match = match_estimates(truth, fit.sources, 15.0);
  EXPECT_EQ(match.false_negatives, 0u);
}

TEST(GridSolverTest, BackgroundOnlyGivesNoSources) {
  World w;
  const auto data = w.collect({}, 5, 17);
  GridSolverConfig cfg;
  cfg.cells_x = 15;
  cfg.cells_y = 15;
  cfg.detect_threshold = 1.0;
  GridSolver solver(w.env, w.sensors, cfg);
  const auto fit = solver.fit_measurements(data);
  EXPECT_TRUE(fit.sources.empty());
}

TEST(GridSolverTest, CellStrengthsNonNegative) {
  World w;
  const auto data = w.collect({{{50, 50}, 30.0}}, 3, 18);
  GridSolver solver(w.env, w.sensors, {});
  const auto fit = solver.fit_measurements(data);
  for (const double s : fit.cell_strengths) EXPECT_GE(s, 0.0);
}

TEST(GridSolverTest, CellCenterLayout) {
  World w;
  GridSolverConfig cfg;
  cfg.cells_x = 10;
  cfg.cells_y = 10;
  GridSolver solver(w.env, w.sensors, cfg);
  EXPECT_EQ(solver.num_cells(), 100u);
  EXPECT_EQ(solver.cell_center(0), (Point2{5.0, 5.0}));
  EXPECT_EQ(solver.cell_center(99), (Point2{95.0, 95.0}));
}

// ----------------------------------------------------------- single source

TEST(SingleSource, MlFitFindsSource) {
  World w;
  const std::vector<Source> truth{{{47, 71}, 50.0}};
  const auto data = w.collect(truth, 5, 19);
  SingleSourceLocalizer loc(w.env, w.sensors);
  Rng rng(20);
  const auto avg = loc.average_per_sensor(data);
  const auto est = loc.fit_ml(avg, rng);
  EXPECT_LT(distance(est.pos, truth[0].pos), 5.0);
  EXPECT_NEAR(est.strength, 50.0, 25.0);
}

TEST(SingleSource, MoeFindsSource) {
  World w;
  const std::vector<Source> truth{{{60, 40}, 100.0}};
  const auto data = w.collect(truth, 5, 21);
  SingleSourceLocalizer loc(w.env, w.sensors);
  Rng rng(22);
  const auto est = loc.fit_moe(loc.average_per_sensor(data), rng);
  EXPECT_LT(distance(est.pos, truth[0].pos), 12.0);
}

TEST(SingleSource, BreaksDownWithTwoSources) {
  // Motivates the paper: a single-source method fed two sources lands near
  // neither (or near only one).
  World w;
  const std::vector<Source> truth{{{20, 80}, 80.0}, {{80, 20}, 80.0}};
  const auto data = w.collect(truth, 5, 23);
  SingleSourceLocalizer loc(w.env, w.sensors);
  Rng rng(24);
  const auto est = loc.fit_ml(loc.average_per_sensor(data), rng);
  const double d0 = distance(est.pos, truth[0].pos);
  const double d1 = distance(est.pos, truth[1].pos);
  // It cannot be close to both.
  EXPECT_GT(std::max(d0, d1), 30.0);
}

TEST(SingleSource, RequiresThreeSensors) {
  Environment env(make_area(10, 10));
  std::vector<Sensor> two{{0, {0, 0}, {}}, {1, {10, 10}, {}}};
  EXPECT_THROW(SingleSourceLocalizer(env, two), std::invalid_argument);
}

}  // namespace
}  // namespace radloc

// Seeded stress harness for the streaming session service (ctest label
// `stress`; runs under the asan and tsan presets like the rest of the
// harness).
//
// The contract under test (DESIGN.md §5.8): a SessionManager multiplexing N
// sessions over one shared pool — ingests racing drains racing telemetry
// reads, feeds arriving interleaved, lossy, and out of order — leaves every
// session's filter state BIT-IDENTICAL to the same delivered sequence
// replayed serially through a standalone localizer. Drain batch boundaries,
// thread scheduling, and which worker runs which drain must all be
// invisible in the result.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "radloc/obs/export.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/service/session_manager.hpp"

namespace radloc {
namespace {

struct SessionScript {
  std::vector<SessionReading> feed;  ///< delivered order, corruption included
  std::size_t malformed = 0;         ///< readings the validator must reject
};

/// Builds one session's delivered feed: simulator time steps pushed through
/// a per-session delivery model (in-order / shuffled / lossy / latency), a
/// deterministic ~2% of readings corrupted (NaN/negative CPM, unknown
/// sensor, NaN/negative timestamp).
SessionScript make_script(const Environment& env, const std::vector<Sensor>& sensors,
                          std::size_t session_index, std::uint64_t seed, int steps) {
  const std::vector<Source> sources{
      {{15.0 + 11.0 * static_cast<double>(session_index % 7),
        85.0 - 9.0 * static_cast<double>(session_index % 8)},
       30.0 + 5.0 * static_cast<double>(session_index % 4)}};
  MeasurementSimulator sim(env, sensors, sources);
  Rng noise(seed);
  Rng delivery_rng(seed ^ 0xD15EA5E0ULL);
  Rng corrupt_rng(seed ^ 0xBADC0DEULL);

  std::unique_ptr<DeliveryModel> delivery;
  switch (session_index % 4) {
    case 0:
      delivery = std::make_unique<InOrderDelivery>();
      break;
    case 1:
      delivery = std::make_unique<ShuffledDelivery>();
      break;
    case 2:
      delivery = std::make_unique<LossyDelivery>(0.15, std::make_unique<ShuffledDelivery>());
      break;
    default:
      delivery = std::make_unique<RandomLatencyDelivery>(1.5);
      break;
  }

  SessionScript script;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto emit = [&](std::vector<Measurement> delivered, int step) {
    for (Measurement& m : delivered) {
      SessionReading r{static_cast<double>(step), m};
      if (uniform01(corrupt_rng) < 0.02) {
        ++script.malformed;
        switch (uniform_index(corrupt_rng, 5)) {
          case 0: r.m.cpm = nan; break;
          case 1: r.m.cpm = -3.0; break;
          case 2: r.m.sensor = 100000; break;
          case 3: r.timestamp = nan; break;
          default: r.timestamp = -7.0; break;
        }
      }
      script.feed.push_back(r);
    }
  };
  for (int t = 0; t < steps; ++t) {
    emit(delivery->deliver(delivery_rng, sim.sample_time_step(noise)), t);
  }
  emit(delivery->drain(delivery_rng), steps);
  return script;
}

/// Serial ground truth: the exact delivered sequence through a standalone
/// localizer, mirroring the service's ingest-time timestamp gate (the
/// localizer itself never sees timestamps).
void replay_serial(MultiSourceLocalizer& serial, const SessionScript& script) {
  for (const SessionReading& r : script.feed) {
    if (MeasurementValidator::check_timestamp(r.timestamp) != ReadingFault::kNone) continue;
    (void)serial.try_process(r.m);
  }
}

class StressService : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressService, ConcurrentMultiplexBitIdenticalToSerialReplay) {
  const std::uint64_t master_seed = GetParam();
  Environment env(make_area(100, 100));
  std::vector<Sensor> sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);

  constexpr std::size_t kSessions = 12;
  constexpr int kSteps = 6;
  constexpr std::size_t kProducers = 3;

  SessionConfig cfg;
  cfg.localizer.filter.num_particles = 600;
  // Large enough that backpressure never triggers: drops would depend on
  // drain timing and break the determinism assertion by design.
  cfg.queue_capacity = 1 << 14;

  std::vector<SessionScript> scripts;
  for (std::size_t k = 0; k < kSessions; ++k) {
    scripts.push_back(make_script(env, sensors, k, master_seed * 1000 + k, kSteps));
  }

  ThreadPool pool(4, 4);
  SessionManager mgr(pool);
  std::vector<SessionManager::SessionId> ids;
  for (std::size_t k = 0; k < kSessions; ++k) {
    ids.push_back(mgr.open(env, sensors, cfg, master_seed ^ (k * 7919)));
  }

  // Producers own disjoint session subsets (per-session arrival order is
  // the feed contract); the main thread drains concurrently, so ingest,
  // drain scheduling, filter work, and stats reads all overlap.
  std::atomic<std::size_t> producers_done{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = p; k < kSessions; k += kProducers) {
        for (const SessionReading& r : scripts[k].feed) {
          const IngestStatus status = mgr.ingest(ids[k], r);
          ASSERT_NE(status, IngestStatus::kRejectedFull);
          ASSERT_NE(status, IngestStatus::kQueuedDroppedOldest);
        }
      }
      producers_done.fetch_add(1);
    });
  }
  while (producers_done.load() < kProducers) {
    mgr.drain_all();
    for (std::size_t k = 0; k < kSessions; ++k) (void)mgr.stats(ids[k]);
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  mgr.drain_all();

  for (std::size_t k = 0; k < kSessions; ++k) {
    const SessionScript& script = scripts[k];
    const std::size_t valid = script.feed.size() - script.malformed;
    const SessionStats st = mgr.stats(ids[k]);
    EXPECT_EQ(st.queue_depth, 0u) << k;
    EXPECT_EQ(st.ingested, valid) << k;
    EXPECT_EQ(st.processed, valid) << k;
    EXPECT_EQ(st.rejected_malformed, script.malformed) << k;
    EXPECT_EQ(st.rejected_full, 0u) << k;
    EXPECT_EQ(st.dropped_oldest, 0u) << k;

    MultiSourceLocalizer serial(env, sensors, cfg.localizer, master_seed ^ (k * 7919));
    replay_serial(serial, script);
    // applied == what the serial replay applied (drain-time rejects mirror
    // try_process verdicts exactly).
    EXPECT_EQ(st.applied, serial.iterations()) << k;

    const auto& managed = mgr.localizer(ids[k]);
    ASSERT_EQ(managed.filter().size(), serial.filter().size()) << k;
    ASSERT_EQ(managed.iterations(), serial.iterations()) << k;
    for (std::size_t i = 0; i < managed.filter().size(); ++i) {
      ASSERT_EQ(managed.filter().weights()[i], serial.filter().weights()[i]) << k << ":" << i;
      ASSERT_EQ(managed.filter().positions()[i], serial.filter().positions()[i])
          << k << ":" << i;
      ASSERT_EQ(managed.filter().strengths()[i], serial.filter().strengths()[i])
          << k << ":" << i;
    }

    // The estimates (mean-shift over identical clouds) must agree too —
    // managed through the shared pool, serial through its own.
    const auto managed_est = mgr.estimate(ids[k]);
    const auto serial_est = serial.estimate();
    ASSERT_EQ(managed_est.size(), serial_est.size()) << k;
    for (std::size_t e = 0; e < managed_est.size(); ++e) {
      EXPECT_EQ(managed_est[e].pos, serial_est[e].pos) << k << ":" << e;
      EXPECT_EQ(managed_est[e].strength, serial_est[e].strength) << k << ":" << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressService, ::testing::Values(1u, 23u, 456u));

// Observability-enabled variant: the same multiplex contract with a
// MetricsRegistry and TraceSink plugged in, plus mid-flight snapshot
// consistency. Every stats() snapshot — taken while ingests and drains are
// racing — must satisfy the cross-counter invariants (one-acquire
// semantics: the counters cannot be torn across the drain's critical
// section), and the registry exporter runs concurrently to exercise the
// pull-gauge lock ordering under tsan.
TEST(StressServiceObs, EnabledObservabilityKeepsDeterminismAndSnapshotConsistency) {
  const std::uint64_t master_seed = 77;
  Environment env(make_area(100, 100));
  std::vector<Sensor> sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);

  constexpr std::size_t kSessions = 8;
  constexpr int kSteps = 5;
  constexpr std::size_t kProducers = 3;

  SessionConfig cfg;
  cfg.localizer.filter.num_particles = 600;
  cfg.queue_capacity = 1 << 14;

  std::vector<SessionScript> scripts;
  for (std::size_t k = 0; k < kSessions; ++k) {
    scripts.push_back(make_script(env, sensors, k, master_seed * 1000 + k, kSteps));
  }

  ThreadPool pool(4, 4);
  obs::MetricsRegistry registry;
  obs::TraceSink sink(2048, /*sample_interval=*/4);
  SessionManager mgr(pool, ServiceObservability{&registry, &sink});
  std::vector<SessionManager::SessionId> ids;
  for (std::size_t k = 0; k < kSessions; ++k) {
    ids.push_back(mgr.open(env, sensors, cfg, master_seed ^ (k * 7919)));
  }

  std::atomic<std::size_t> producers_done{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = p; k < kSessions; k += kProducers) {
        for (const SessionReading& r : scripts[k].feed) {
          const IngestStatus status = mgr.ingest(ids[k], r);
          ASSERT_NE(status, IngestStatus::kRejectedFull);
          ASSERT_NE(status, IngestStatus::kQueuedDroppedOldest);
        }
      }
      producers_done.fetch_add(1);
    });
  }
  while (producers_done.load() < kProducers) {
    mgr.drain_all();
    for (std::size_t k = 0; k < kSessions; ++k) {
      // Mid-flight snapshot invariants: all counters read under ONE mutex
      // acquisition, so no snapshot may catch the drain's tallies half
      // applied.
      const SessionStats st = mgr.stats(ids[k]);
      EXPECT_LE(st.applied, st.processed) << k;
      EXPECT_LE(st.processed + st.queue_depth, st.ingested) << k;
      EXPECT_EQ(st.latency_samples, st.processed) << k;
    }
    // Concurrent export: visits every instrument and samples the pull
    // gauges (pool stats, session count) while drains are running.
    (void)obs::prometheus_text(registry);
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  mgr.drain_all();

  for (std::size_t k = 0; k < kSessions; ++k) {
    const SessionScript& script = scripts[k];
    const std::size_t valid = script.feed.size() - script.malformed;
    const SessionStats st = mgr.stats(ids[k]);
    EXPECT_EQ(st.queue_depth, 0u) << k;
    EXPECT_EQ(st.ingested, valid) << k;
    EXPECT_EQ(st.processed, valid) << k;
    EXPECT_EQ(st.latency_samples, valid) << k;
    EXPECT_EQ(st.rejected_malformed, script.malformed) << k;

    // Registry mirrors agree with the authoritative snapshot once quiesced.
    const obs::Labels sl{{"session", std::to_string(ids[k])}};
    EXPECT_EQ(registry.counter("radloc_session_readings_ingested_total", sl).value(), valid)
        << k;
    EXPECT_EQ(registry.counter("radloc_session_readings_processed_total", sl).value(), valid)
        << k;
    EXPECT_EQ(registry.counter("radloc_session_readings_applied_total", sl).value(),
              st.applied)
        << k;
    EXPECT_EQ(registry.counter("radloc_session_rejected_malformed_total", sl).value(),
              script.malformed)
        << k;
    EXPECT_EQ(registry.histogram("radloc_session_drain_latency_us", sl).count(), valid) << k;

    // Tracing and metric mirroring must not perturb the filter: state stays
    // bit-identical to the serial replay, exactly as in the plain harness.
    MultiSourceLocalizer serial(env, sensors, cfg.localizer, master_seed ^ (k * 7919));
    replay_serial(serial, script);
    EXPECT_EQ(st.applied, serial.iterations()) << k;
    const auto& managed = mgr.localizer(ids[k]);
    ASSERT_EQ(managed.filter().size(), serial.filter().size()) << k;
    ASSERT_EQ(managed.iterations(), serial.iterations()) << k;
    for (std::size_t i = 0; i < managed.filter().size(); ++i) {
      ASSERT_EQ(managed.filter().weights()[i], serial.filter().weights()[i]) << k << ":" << i;
      ASSERT_EQ(managed.filter().positions()[i], serial.filter().positions()[i])
          << k << ":" << i;
      ASSERT_EQ(managed.filter().strengths()[i], serial.filter().strengths()[i])
          << k << ":" << i;
    }
  }

  // The sink saw spans (sampling 1-in-4 over thousands of stage executions)
  // and every drained event carries a known stage and session label.
  const std::vector<obs::TraceEvent> events = sink.drain();
  EXPECT_FALSE(events.empty());
  for (const obs::TraceEvent& e : events) {
    EXPECT_LT(static_cast<std::size_t>(e.stage), obs::kStageCount);
    EXPECT_GE(e.duration_us, 0.0);
    bool known = false;
    for (const auto id : ids) known = known || e.session == id;
    EXPECT_TRUE(known) << e.session;
  }
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include "radloc/distributed/regional.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

RegionalConfig grid_config(std::size_t tiles, std::size_t particles = 4000) {
  RegionalConfig cfg;
  cfg.tiles_x = tiles;
  cfg.tiles_y = tiles;
  cfg.localizer.filter.num_particles = particles;
  return cfg;
}

TEST(Regional, ConstructionPartitionsSensors) {
  const auto scenario = make_scenario_a(10.0, 5.0, false);
  RegionalLocalizerGrid grid(scenario.env, scenario.sensors, grid_config(2), 1);
  ASSERT_EQ(grid.num_tiles(), 4u);
  // Cores tile the area exactly.
  double core_area = 0.0;
  for (std::size_t t = 0; t < 4; ++t) core_area += grid.tile_core(t).area();
  EXPECT_DOUBLE_EQ(core_area, scenario.env.bounds().area());
  // Margins overlap, so tile sensor counts exceed an exact partition.
  std::size_t total_assigned = 0;
  for (std::size_t t = 0; t < 4; ++t) total_assigned += grid.tile_sensor_count(t);
  EXPECT_GT(total_assigned, scenario.sensors.size());
}

TEST(Regional, LocalizesTwoSourcesLikeMonolithic) {
  const auto scenario = make_scenario_a(20.0, 5.0, false);
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);

  RegionalLocalizerGrid grid(scenario.env, scenario.sensors, grid_config(2, 8000), 2);
  Rng noise(3);
  for (int t = 0; t < 15; ++t) grid.process_time_step(sim.sample_time_step(noise));

  const auto match = match_estimates(scenario.sources, grid.estimate());
  EXPECT_EQ(match.false_negatives, 0u);
  EXPECT_LE(match.false_positives, 1u);
  for (const auto& e : match.error) {
    ASSERT_TRUE(e.has_value());
    EXPECT_LT(*e, 10.0);
  }
}

TEST(Regional, SourceOnTileBoundaryReportedOnce) {
  // A source exactly on the 2x2 tile seam at (50, y): the margin lets both
  // tiles see it, core ownership must report it exactly once.
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> truth{{{50.0, 50.0}, 40.0}};
  MeasurementSimulator sim(env, sensors, truth);

  RegionalLocalizerGrid grid(env, sensors, grid_config(2), 4);
  Rng noise(5);
  for (int t = 0; t < 15; ++t) grid.process_time_step(sim.sample_time_step(noise));

  const auto estimates = grid.estimate();
  std::size_t near = 0;
  for (const auto& e : estimates) {
    if (distance(e.pos, truth[0].pos) < 15.0) ++near;
  }
  EXPECT_EQ(near, 1u);
}

TEST(Regional, NineSourcesAcrossSixteenTiles) {
  auto scenario = make_scenario_b(5.0, false);
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  RegionalConfig cfg = grid_config(4, 16000);
  cfg.num_threads = 4;
  RegionalLocalizerGrid grid(scenario.env, scenario.sensors, cfg, 6);
  Rng noise(7);
  for (int t = 0; t < 12; ++t) grid.process_time_step(sim.sample_time_step(noise));

  const auto match = match_estimates(scenario.sources, grid.estimate());
  EXPECT_LE(match.false_negatives, 2u);
  EXPECT_LE(match.false_positives, 2u);
}

TEST(Regional, SingleTileMatchesMonolithicExactly) {
  // tiles=1 with the same seed path should behave like one localizer (same
  // config, same measurement order).
  const auto scenario = make_scenario_a(20.0, 5.0, false);
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  Rng noise(8);
  std::vector<std::vector<Measurement>> steps;
  for (int t = 0; t < 10; ++t) steps.push_back(sim.sample_time_step(noise));

  RegionalConfig cfg = grid_config(1, 2000);
  RegionalLocalizerGrid grid(scenario.env, scenario.sensors, cfg, 9);
  for (const auto& s : steps) grid.process_time_step(s);
  const auto regional = grid.estimate();

  const auto match = match_estimates(scenario.sources, regional);
  EXPECT_EQ(match.false_negatives, 0u);
}

TEST(Regional, UnknownSensorRejected) {
  const auto scenario = make_scenario_a();
  RegionalLocalizerGrid grid(scenario.env, scenario.sensors, grid_config(2), 10);
  const std::vector<Measurement> bad{{999, 5.0}};
  EXPECT_THROW(grid.process_time_step(bad), std::invalid_argument);
}

TEST(Regional, Validation) {
  const auto scenario = make_scenario_a();
  RegionalConfig cfg = grid_config(2);
  cfg.tiles_x = 0;
  EXPECT_THROW(RegionalLocalizerGrid(scenario.env, scenario.sensors, cfg, 1),
               std::invalid_argument);
  cfg = grid_config(2);
  cfg.margin = -1.0;
  EXPECT_THROW(RegionalLocalizerGrid(scenario.env, scenario.sensors, cfg, 1),
               std::invalid_argument);
  EXPECT_THROW(RegionalLocalizerGrid(scenario.env, {}, grid_config(2), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace radloc

// End-to-end integration tests: full scenario pipelines through the
// experiment runner, mirroring (scaled-down) the paper's evaluation setups.
#include <gtest/gtest.h>

#include <cmath>

#include "radloc/eval/experiment.hpp"
#include "radloc/eval/scenarios.hpp"

namespace radloc {
namespace {

ExperimentOptions fast_options(std::size_t trials = 2, std::size_t steps = 12) {
  ExperimentOptions opts;
  opts.trials = trials;
  opts.time_steps = steps;
  opts.seed = 99;
  return opts;
}

TEST(Integration, ScenarioATwoSourcesConverges) {
  const auto scenario = make_scenario_a(/*strength=*/50.0, /*bg=*/5.0, /*obstacle=*/false);
  const auto result = run_experiment(scenario, fast_options());

  ASSERT_EQ(result.error.size(), 12u);
  // Late-window error small for both sources; FP/FN low.
  for (std::size_t j = 0; j < 2; ++j) {
    const double late = result.avg_error(j, 8, 12);
    ASSERT_FALSE(std::isnan(late)) << "source " << j;
    EXPECT_LT(late, 10.0) << "source " << j;
  }
  EXPECT_LT(result.avg_false_negatives(8, 12), 0.5);
}

TEST(Integration, ErrorDecreasesOverTime) {
  const auto scenario = make_scenario_a(50.0, 5.0, false);
  const auto result = run_experiment(scenario, fast_options(3, 14));
  const double early = result.avg_error_all(0, 3);
  const double late = result.avg_error_all(10, 14);
  ASSERT_FALSE(std::isnan(late));
  // The paper's Figs. 3-6: error shrinks after the first few steps.
  if (!std::isnan(early)) {
    EXPECT_LT(late, early + 1e-9);
  }
}

TEST(Integration, WeakSourceHarderThanStrong) {
  const auto weak = run_experiment(make_scenario_a(4.0, 5.0, false), fast_options(3, 14));
  const auto strong = run_experiment(make_scenario_a(100.0, 5.0, false), fast_options(3, 14));
  // Weak sources (4 uCi vs 5 CPM background) are missed more often.
  EXPECT_GE(weak.avg_false_negatives(4, 14) + 1e-9, strong.avg_false_negatives(4, 14));
}

TEST(Integration, HighBackgroundStillLocalizes) {
  const auto scenario = make_scenario_a(50.0, 50.0, false);
  const auto result = run_experiment(scenario, fast_options(2, 14));
  EXPECT_LT(result.avg_error_all(10, 14), 12.0);
}

TEST(Integration, ObstacleDoesNotBreakLocalization) {
  const auto with_obs = run_experiment(make_scenario_a(50.0, 5.0, true), fast_options(2, 14));
  const double late = with_obs.avg_error_all(10, 14);
  ASSERT_FALSE(std::isnan(late));
  EXPECT_LT(late, 12.0);
}

TEST(Integration, ThreeSourceScenarioConverges) {
  const auto scenario = make_scenario_a3(50.0, 5.0);
  const auto result = run_experiment(scenario, fast_options(2, 16));
  EXPECT_LT(result.avg_false_negatives(12, 16), 1.0);
  const double late = result.avg_error_all(12, 16);
  ASSERT_FALSE(std::isnan(late));
  EXPECT_LT(late, 12.0);
}

TEST(Integration, LossyShuffledDeliveryDegradesGracefully) {
  auto opts = fast_options(2, 14);
  opts.delivery_override = DeliveryKind::kShuffled;
  opts.loss_rate = 0.25;
  const auto result = run_experiment(make_scenario_a(50.0, 5.0, false), opts);
  EXPECT_LT(result.avg_error_all(10, 14), 12.0);
}

TEST(Integration, RandomLatencyDeliveryWorks) {
  auto opts = fast_options(2, 14);
  opts.delivery_override = DeliveryKind::kRandomLatency;
  opts.mean_latency_steps = 1.5;
  const auto result = run_experiment(make_scenario_a(50.0, 5.0, false), opts);
  EXPECT_LT(result.avg_error_all(10, 14), 15.0);
}

TEST(Integration, ScenarioBSmokeTest) {
  // Full Scenario B is bench territory; here a budget version proves the
  // 9-source pipeline works end to end.
  auto scenario = make_scenario_b(5.0, true);
  scenario.recommended_particles = 6000;
  auto opts = fast_options(1, 10);
  const auto result = run_experiment(scenario, opts);
  ASSERT_EQ(result.error.size(), 10u);
  ASSERT_EQ(result.error[0].size(), 9u);
  // Most sources should be found by step 10.
  EXPECT_LT(result.avg_false_negatives(7, 10), 4.0);
  EXPECT_GT(result.seconds_per_iteration, 0.0);
}

TEST(Integration, ExperimentIsDeterministicForSeed) {
  const auto scenario = make_scenario_a(20.0, 5.0, false);
  const auto r1 = run_experiment(scenario, fast_options(2, 6));
  const auto r2 = run_experiment(scenario, fast_options(2, 6));
  for (std::size_t t = 0; t < r1.error.size(); ++t) {
    for (std::size_t j = 0; j < r1.error[t].size(); ++j) {
      const bool nan1 = std::isnan(r1.error[t][j]);
      const bool nan2 = std::isnan(r2.error[t][j]);
      ASSERT_EQ(nan1, nan2);
      if (!nan1) {
        ASSERT_DOUBLE_EQ(r1.error[t][j], r2.error[t][j]);
      }
    }
    ASSERT_DOUBLE_EQ(r1.false_positives[t], r2.false_positives[t]);
  }
}

TEST(Integration, OptionValidation) {
  const auto scenario = make_scenario_a();
  ExperimentOptions opts;
  opts.trials = 0;
  EXPECT_THROW((void)run_experiment(scenario, opts), std::invalid_argument);
  opts = ExperimentOptions{};
  opts.time_steps = 0;
  EXPECT_THROW((void)run_experiment(scenario, opts), std::invalid_argument);
}

}  // namespace
}  // namespace radloc

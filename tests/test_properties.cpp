// Cross-module property suites: randomized invariants and failure
// injection that single-module tests don't cover.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/geom/intersect.hpp"
#include "radloc/geom/shapes.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

// ---------------------------------------------------------------- matching

/// Matching accounting identity: matched + FN = #sources and
/// matched + FP = #estimates, for arbitrary random configurations.
class MatchingProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingProperties, AccountingIdentities) {
  Rng rng(GetParam());
  const AreaBounds area = make_area(100, 100);
  for (int round = 0; round < 100; ++round) {
    const auto ns = static_cast<std::size_t>(uniform_index(rng, 6));
    const auto ne = static_cast<std::size_t>(uniform_index(rng, 6));
    std::vector<Source> truth;
    for (std::size_t i = 0; i < ns; ++i) truth.push_back({uniform_point(rng, area), 10.0});
    std::vector<SourceEstimate> est;
    for (std::size_t i = 0; i < ne; ++i) est.push_back({uniform_point(rng, area), 10.0, 1.0});

    const double gate = uniform(rng, 5.0, 60.0);
    const auto r = match_estimates(truth, est, gate);

    std::size_t matched = 0;
    for (const auto& e : r.error) {
      if (e) {
        ++matched;
        EXPECT_LE(*e, gate);
      }
    }
    EXPECT_EQ(matched + r.false_negatives, ns);
    EXPECT_EQ(matched + r.false_positives, ne);

    // One-to-one: no estimate is matched twice.
    std::vector<std::size_t> used;
    for (const auto& m : r.matched_estimate) {
      if (m) used.push_back(*m);
    }
    std::sort(used.begin(), used.end());
    EXPECT_EQ(std::adjacent_find(used.begin(), used.end()), used.end());
  }
}

TEST_P(MatchingProperties, GateMonotonicity) {
  // A wider gate never increases FN.
  Rng rng(GetParam() ^ 0xF00D);
  const AreaBounds area = make_area(100, 100);
  for (int round = 0; round < 50; ++round) {
    std::vector<Source> truth;
    std::vector<SourceEstimate> est;
    for (int i = 0; i < 4; ++i) truth.push_back({uniform_point(rng, area), 10.0});
    for (int i = 0; i < 4; ++i) est.push_back({uniform_point(rng, area), 10.0, 1.0});
    const auto narrow = match_estimates(truth, est, 20.0);
    const auto wide = match_estimates(truth, est, 60.0);
    EXPECT_LE(wide.false_negatives, narrow.false_negatives);
    EXPECT_LE(wide.false_positives, narrow.false_positives);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperties, ::testing::Values(11u, 22u, 33u));

// ----------------------------------------------------------- physics model

class PhysicsProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhysicsProperties, TransmissionBoundedAndMonotone) {
  Rng rng(GetParam());
  Environment env(make_area(100, 100));
  env.add_obstacle(Obstacle(make_regular_polygon({50, 50}, 15.0, 12), 0.05));
  env.add_obstacle(Obstacle(make_wall({10, 80}, {90, 80}, 4.0), 0.1));

  const AreaBounds area = make_area(100, 100);
  for (int i = 0; i < 300; ++i) {
    const Segment seg{uniform_point(rng, area), uniform_point(rng, area)};
    const double t = env.transmission(seg);
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 1.0);
    // Attenuation is additive over obstacles: single-obstacle environments
    // transmit at least as much.
    Environment only_first(area, {env.obstacles()[0]});
    EXPECT_LE(t, only_first.transmission(seg) + 1e-12);
  }
}

TEST_P(PhysicsProperties, SuperpositionAdditivity) {
  Rng rng(GetParam() ^ 0xBEEF);
  Environment env(make_area(100, 100));
  const SensorResponse resp{kDefaultEfficiency, 7.0};
  for (int i = 0; i < 200; ++i) {
    const Point2 at = uniform_point(rng, env.bounds());
    const Source a{uniform_point(rng, env.bounds()), uniform(rng, 1.0, 100.0)};
    const Source b{uniform_point(rng, env.bounds()), uniform(rng, 1.0, 100.0)};
    const std::vector<Source> both{a, b};
    const double together = expected_cpm(at, both, env, resp);
    const double separate = expected_cpm_single(at, a, env, resp) +
                            expected_cpm_single(at, b, env, resp) - resp.background_cpm;
    EXPECT_NEAR(together, separate, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhysicsProperties, ::testing::Values(5u, 6u));

// ------------------------------------------------------- filter robustness

/// The filter's invariants must survive arbitrary interleavings of valid
/// measurements, including adversarial ones.
class FilterRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterRobustness, InvariantsUnderRandomMeasurementSoup) {
  Rng rng(GetParam());
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 5, 5);
  set_background(sensors, 5.0);
  FilterConfig cfg;
  cfg.num_particles = 800;
  FusionParticleFilter filter(env, sensors, cfg, Rng(GetParam() ^ 1));

  for (int i = 0; i < 400; ++i) {
    // Random sensor, wildly random reading (including zeros and huge).
    const auto sensor = static_cast<SensorId>(uniform_index(rng, sensors.size()));
    double cpm = 0.0;
    switch (uniform_index(rng, 4)) {
      case 0: cpm = 0.0; break;
      case 1: cpm = uniform(rng, 0.0, 20.0); break;
      case 2: cpm = uniform(rng, 0.0, 2000.0); break;
      default: cpm = uniform(rng, 0.0, 2e5); break;
    }
    (void)filter.process({sensor, std::floor(cpm)});

    const auto w = filter.weights();
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    ASSERT_NEAR(total, 1.0, 1e-6) << "iteration " << i;
    for (const double v : w) ASSERT_GE(v, 0.0);
    for (const auto& p : filter.positions()) ASSERT_TRUE(env.bounds().contains(p));
    for (const double s : filter.strengths()) {
      ASSERT_GE(s, cfg.strength_min);
      ASSERT_LE(s, cfg.strength_max);
    }
  }
  EXPECT_EQ(filter.size(), 800u);
  EXPECT_EQ(filter.iteration(), 400u);
}

TEST_P(FilterRobustness, LocalizerEndToEndUnderSensorChaos) {
  // Half the measurements dropped, order shuffled, two sensors stuck at 0,
  // one reading train duplicated: the localizer must stay numerically sane
  // and still find a strong source.
  const std::uint64_t seed = GetParam();
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> truth{{{60, 60}, 80.0}};
  MeasurementSimulator sim(env, sensors, truth);
  MultiSourceLocalizer loc(env, sensors, LocalizerConfig{}, seed);
  Rng rng(seed ^ 0x77);

  for (int t = 0; t < 15; ++t) {
    auto batch = sim.sample_time_step(rng);
    for (auto& m : batch) {
      if (m.sensor == 3 || m.sensor == 30) m.cpm = 0.0;  // stuck sensors
    }
    // Drop half.
    std::erase_if(batch, [&](const Measurement&) { return uniform01(rng) < 0.5; });
    // Duplicate a few (retransmissions).
    const std::size_t dup = batch.size() / 4;
    for (std::size_t i = 0; i < dup; ++i) batch.push_back(batch[i]);
    // Shuffle.
    for (std::size_t i = batch.size(); i > 1; --i) {
      std::swap(batch[i - 1], batch[uniform_index(rng, i)]);
    }
    loc.process_all(batch);
  }
  const auto match = match_estimates(truth, loc.estimate());
  EXPECT_EQ(match.false_negatives, 0u);
  ASSERT_TRUE(match.error[0].has_value());
  EXPECT_LT(*match.error[0], 10.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterRobustness, ::testing::Values(101u, 202u, 303u));

// --------------------------------------------------- mean-shift kernel par

TEST(KernelVariants, EpanechnikovFindsSameClusters) {
  Rng rng(9);
  std::vector<Point2> pos;
  std::vector<double> str;
  std::vector<double> w;
  for (const auto& c : {Point2{25, 25}, Point2{75, 75}}) {
    for (int i = 0; i < 500; ++i) {
      pos.push_back({c.x + normal(rng, 0, 2.5), c.y + normal(rng, 0, 2.5)});
      str.push_back(20.0 * std::exp(normal(rng, 0, 0.1)));
      w.push_back(1e-3);
    }
  }
  ThreadPool pool(1);
  for (const auto kernel : {KernelType::kGaussian, KernelType::kEpanechnikov}) {
    MeanShiftConfig cfg;
    cfg.kernel = kernel;
    cfg.min_support = 0.1;
    MeanShiftEstimator est(make_area(100, 100), cfg, pool);
    const auto modes = est.estimate(pos, str, w);
    ASSERT_EQ(modes.size(), 2u) << "kernel " << static_cast<int>(kernel);
    for (const auto& m : modes) {
      const double d = std::min(distance(m.pos, {25, 25}), distance(m.pos, {75, 75}));
      EXPECT_LT(d, 2.0);
    }
  }
}

// ------------------------------------------------------ delivery composure

class DeliveryComposition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeliveryComposition, NoDeliveryModelInventsMeasurements) {
  Rng rng(GetParam());
  std::vector<std::unique_ptr<DeliveryModel>> models;
  models.push_back(std::make_unique<InOrderDelivery>());
  models.push_back(std::make_unique<ShuffledDelivery>());
  models.push_back(std::make_unique<LossyDelivery>(0.3, std::make_unique<ShuffledDelivery>()));
  models.push_back(std::make_unique<RandomLatencyDelivery>(1.5));
  models.push_back(std::make_unique<LossyDelivery>(
      0.2, std::make_unique<RandomLatencyDelivery>(2.0)));

  for (auto& model : models) {
    std::size_t sent = 0;
    std::size_t got = 0;
    for (int step = 0; step < 30; ++step) {
      std::vector<Measurement> batch;
      const auto n = uniform_index(rng, 20);
      for (std::uint64_t i = 0; i < n; ++i) {
        batch.push_back({static_cast<SensorId>(i), uniform(rng, 0, 100)});
      }
      sent += batch.size();
      got += model->deliver(rng, std::move(batch)).size();
    }
    got += model->drain(rng).size();
    EXPECT_LE(got, sent);  // loss allowed, invention never
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryComposition, ::testing::Values(7u, 8u));

// ------------------------------------------------------------ geometry mix

TEST(GeometryComposition, ChordThroughCompositeSceneIsSubadditive) {
  // Total chord through several disjoint obstacles equals the sum of the
  // individual chords (obstacles do not overlap).
  const Polygon a = make_rect(10, 0, 20, 100);
  const Polygon b = make_regular_polygon({60, 50}, 8.0, 24);
  const Polygon c = make_wall({80, 10}, {80, 90}, 4.0);
  Rng rng(123);
  const AreaBounds area = make_area(100, 100);
  for (int i = 0; i < 300; ++i) {
    const Segment seg{uniform_point(rng, area), uniform_point(rng, area)};
    const double total = chord_length(seg, a) + chord_length(seg, b) + chord_length(seg, c);
    EXPECT_LE(total, seg.length() + 1e-9);
  }
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/filter/particle_filter.hpp"
#include "radloc/filter/resample.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

Environment test_env() { return Environment(make_area(100, 100)); }

std::vector<Sensor> test_sensors(const Environment& env, double bg = 5.0) {
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, bg);
  return sensors;
}

FilterConfig small_config() {
  FilterConfig cfg;
  cfg.num_particles = 1500;
  return cfg;
}

TEST(SystematicResample, ProportionalAllocation) {
  Rng rng(1);
  const std::vector<double> weights{0.1, 0.6, 0.3};
  std::vector<int> counts(3, 0);
  constexpr int rounds = 200;
  constexpr std::size_t draws = 100;
  for (int r = 0; r < rounds; ++r) {
    for (const auto i : systematic_resample(rng, weights, draws)) ++counts[i];
  }
  const double total = rounds * draws;
  EXPECT_NEAR(counts[0] / total, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / total, 0.6, 0.01);
  EXPECT_NEAR(counts[2] / total, 0.3, 0.01);
}

TEST(SystematicResample, OutputSortedAndSized) {
  Rng rng(2);
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  const auto picks = systematic_resample(rng, weights, 57);
  EXPECT_EQ(picks.size(), 57u);
  EXPECT_TRUE(std::is_sorted(picks.begin(), picks.end()));
}

TEST(SystematicResample, DegenerateWeightConcentrates) {
  Rng rng(3);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (const auto i : systematic_resample(rng, weights, 20)) EXPECT_EQ(i, 1u);
}

TEST(SystematicResample, RejectsZeroTotal) {
  Rng rng(4);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW((void)systematic_resample(rng, weights, 5), std::invalid_argument);
}

TEST(SystematicResample, ZeroCountIsEmpty) {
  Rng rng(5);
  const std::vector<double> weights{1.0};
  EXPECT_TRUE(systematic_resample(rng, weights, 0).empty());
}

TEST(SystematicResample, RejectsNonFiniteAndNegativeWeights) {
  // Before the guard these slipped through silently: a NaN poisons the
  // running total and the comparison `cumulative < pointer` is false for
  // every NaN, so picks collapse onto whatever index the scan stalls at.
  Rng rng(6);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<std::vector<double>> bad{
      {0.5, nan, 0.5}, {nan}, {1.0, inf}, {1.0, -0.25, 1.0}};
  for (const auto& weights : bad) {
    EXPECT_THROW((void)systematic_resample(rng, weights, 8), std::invalid_argument);
  }
}

TEST(SystematicResample, ZeroPrefixAndSuffixAreNeverPicked) {
  // Leading zeros: the cursor must start at the first positive weight, and
  // trailing zeros must be unreachable even when the final stratified
  // pointer lands at (or, through rounding, just past) the total mass.
  Rng rng(7);
  const std::vector<double> weights{0.0, 0.0, 0.0, 2.0, 1.0, 0.0, 0.0};
  for (int round = 0; round < 50; ++round) {
    for (const auto i : systematic_resample(rng, weights, 64)) {
      ASSERT_GE(i, 3u);
      ASSERT_LE(i, 4u);
    }
  }
}

TEST(SystematicResample, TinyWeightsDoNotEscapeTheSupport) {
  // Denormal-scale totals stress the pointer>total rounding edge: every
  // pick must still carry strictly positive weight.
  Rng rng(8);
  std::vector<double> weights(40, 0.0);
  weights[12] = std::numeric_limits<double>::denorm_min();
  weights[31] = std::numeric_limits<double>::denorm_min();
  for (const auto i : systematic_resample(rng, weights, 100)) {
    ASSERT_TRUE(i == 12u || i == 31u);
  }
}

TEST(FusionFilter, InitializationIsUniform) {
  const Environment env = test_env();
  FusionParticleFilter filter(env, test_sensors(env), small_config(), Rng(7));

  EXPECT_EQ(filter.size(), 1500u);
  const double total = std::accumulate(filter.weights().begin(), filter.weights().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);

  // Quadrant occupancy roughly equal for a uniform init.
  int quads[4] = {0, 0, 0, 0};
  for (const auto& p : filter.positions()) {
    EXPECT_TRUE(env.bounds().contains(p));
    quads[(p.x > 50.0 ? 1 : 0) + (p.y > 50.0 ? 2 : 0)]++;
  }
  for (const int q : quads) EXPECT_NEAR(q, 375, 120);

  for (const double s : filter.strengths()) {
    EXPECT_GE(s, filter.config().strength_min);
    EXPECT_LE(s, filter.config().strength_max);
  }
}

TEST(FusionFilter, ConfigValidation) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FilterConfig cfg = small_config();

  cfg.num_particles = 0;
  EXPECT_THROW(FusionParticleFilter(env, sensors, cfg, Rng(1)), std::invalid_argument);
  cfg = small_config();
  cfg.fusion_range = 0.0;
  EXPECT_THROW(FusionParticleFilter(env, sensors, cfg, Rng(1)), std::invalid_argument);
  cfg = small_config();
  cfg.random_replacement_frac = 1.0;
  EXPECT_THROW(FusionParticleFilter(env, sensors, cfg, Rng(1)), std::invalid_argument);
  cfg = small_config();
  cfg.strength_min = -1.0;
  EXPECT_THROW(FusionParticleFilter(env, sensors, cfg, Rng(1)), std::invalid_argument);
  // Empty sensor list is allowed (mobile-detector mode)...
  FusionParticleFilter sensorless(env, {}, small_config(), Rng(1));
  // ...but then only process_reading() works; sensor ids all throw.
  EXPECT_THROW((void)sensorless.process({0, 5.0}), std::invalid_argument);
  EXPECT_GT(sensorless.process_reading({50, 50}, SensorResponse{kDefaultEfficiency, 5.0}, 7.0),
            0u);
}

TEST(FusionFilter, RejectsBadMeasurements) {
  const Environment env = test_env();
  FusionParticleFilter filter(env, test_sensors(env), small_config(), Rng(7));
  EXPECT_THROW((void)filter.process({999, 5.0}), std::invalid_argument);
  EXPECT_THROW((void)filter.process({0, -1.0}), std::invalid_argument);
}

TEST(FusionFilter, FusionRangeLimitsUpdate) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter filter(env, sensors, small_config(), Rng(8));

  // Snapshot particles far from sensor 0 (at (0,0)).
  const double d = filter.config().fusion_range;
  std::vector<std::pair<Point2, double>> far_before;
  std::vector<std::size_t> far_idx;
  for (std::size_t i = 0; i < filter.size(); ++i) {
    if (distance(filter.positions()[i], sensors[0].pos) > d) {
      far_idx.push_back(i);
      far_before.emplace_back(filter.positions()[i], filter.strengths()[i]);
    }
  }
  ASSERT_FALSE(far_idx.empty());

  const std::size_t touched = filter.process({0, 20.0});
  EXPECT_GT(touched, 0u);
  EXPECT_LT(touched, filter.size());

  // Particles outside the fusion range kept identical state.
  for (std::size_t k = 0; k < far_idx.size(); ++k) {
    const auto i = far_idx[k];
    EXPECT_EQ(filter.positions()[i], far_before[k].first);
    EXPECT_DOUBLE_EQ(filter.strengths()[i], far_before[k].second);
  }
}

TEST(FusionFilter, WeightsStayNormalized) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter filter(env, sensors, small_config(), Rng(9));
  MeasurementSimulator sim(env, sensors, {{{47, 71}, 10.0}});
  Rng noise(10);
  for (int step = 0; step < 3; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) {
      (void)filter.process(m);
      const double total =
          std::accumulate(filter.weights().begin(), filter.weights().end(), 0.0);
      ASSERT_NEAR(total, 1.0, 1e-6);
    }
  }
}

TEST(FusionFilter, ParticlesStayInBounds) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter filter(env, sensors, small_config(), Rng(11));
  MeasurementSimulator sim(env, sensors, {{{5, 5}, 100.0}});
  Rng noise(12);
  for (int step = 0; step < 5; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
  }
  for (const auto& p : filter.positions()) EXPECT_TRUE(env.bounds().contains(p));
  for (const double s : filter.strengths()) {
    EXPECT_GE(s, filter.config().strength_min);
    EXPECT_LE(s, filter.config().strength_max);
  }
}

/// Weighted particle mass within `radius` of `center`.
double mass_near(const FusionParticleFilter& f, const Point2& center, double radius) {
  double m = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (distance(f.positions()[i], center) <= radius) m += f.weights()[i];
  }
  return m;
}

TEST(FusionFilter, ConvergesOnSingleSource) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  const Point2 src_pos{47, 71};
  MeasurementSimulator sim(env, sensors, {{src_pos, 50.0}});
  FusionParticleFilter filter(env, sensors, small_config(), Rng(13));

  Rng noise(14);
  const double before = mass_near(filter, src_pos, 15.0);
  for (int step = 0; step < 10; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
  }
  const double after = mass_near(filter, src_pos, 15.0);
  EXPECT_GT(after, 0.25);
  EXPECT_GT(after, before * 2.0);
}

TEST(FusionFilter, TracksTwoSourcesSimultaneously) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  const Point2 a{47, 71};
  const Point2 b{81, 42};
  MeasurementSimulator sim(env, sensors, {{a, 50.0}, {b, 50.0}});
  FilterConfig cfg = small_config();
  cfg.num_particles = 2000;
  FusionParticleFilter filter(env, sensors, cfg, Rng(15));

  Rng noise(16);
  for (int step = 0; step < 12; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
  }
  // Both sources hold substantial particle mass — the fusion range prevents
  // the all-mass-on-one-source collapse of Fig. 2.
  EXPECT_GT(mass_near(filter, a, 15.0), 0.05);
  EXPECT_GT(mass_near(filter, b, 15.0), 0.05);
}

TEST(FusionFilter, ExtremeReadingKeepsStateFinite) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter filter(env, sensors, small_config(), Rng(17));

  // A wildly implausible (but finite) reading: likelihoods underflow for
  // nearly every hypothesis; the filter must stay normalized and finite.
  (void)filter.process({0, 1e12});
  double total = 0.0;
  for (const double w : filter.weights()) {
    ASSERT_TRUE(std::isfinite(w));
    ASSERT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(FusionFilter, NonFiniteReadingRejected) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter filter(env, sensors, small_config(), Rng(17));
  EXPECT_THROW((void)filter.process({0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
  EXPECT_THROW((void)filter.process({0, std::nan("")}), std::invalid_argument);
}

TEST(FusionFilter, RandomReplacementRepopulatesEmptyRegions) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FilterConfig cfg = small_config();
  cfg.random_replacement_frac = 0.3;  // aggressive, to test the mechanism
  MeasurementSimulator sim(env, sensors, {{{20, 20}, 100.0}});
  FusionParticleFilter filter(env, sensors, cfg, Rng(18));
  Rng noise(19);
  for (int step = 0; step < 15; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
  }
  // Far corner must still hold some particles despite all evidence pointing
  // to (20,20) — fresh particles keep the area observable.
  int far_corner = 0;
  for (const auto& p : filter.positions()) {
    if (p.x > 70.0 && p.y > 70.0) ++far_corner;
  }
  EXPECT_GT(far_corner, 0);
}

TEST(FusionFilter, EffectiveSampleSizeBounded) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter filter(env, sensors, small_config(), Rng(20));
  const double ess0 = filter.effective_sample_size();
  EXPECT_NEAR(ess0, 1500.0, 1.0);  // uniform weights -> ESS = N

  MeasurementSimulator sim(env, sensors, {{{50, 50}, 20.0}});
  Rng noise(21);
  for (int step = 0; step < 5; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
  }
  const double ess = filter.effective_sample_size();
  EXPECT_GT(ess, 1.0);
  EXPECT_LE(ess, 1500.0 + 1e-9);
}

TEST(FusionFilter, MovementModelHookRuns) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter filter(env, sensors, small_config(), Rng(22));
  filter.set_movement_model(std::make_unique<RandomWalkMovement>(2.0));
  EXPECT_THROW(filter.set_movement_model(nullptr), std::invalid_argument);

  // With a random-walk model, processing must still keep invariants.
  MeasurementSimulator sim(env, sensors, {{{50, 50}, 20.0}});
  Rng noise(23);
  for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
  const double total = std::accumulate(filter.weights().begin(), filter.weights().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (const auto& p : filter.positions()) EXPECT_TRUE(env.bounds().contains(p));
}

TEST(FusionFilter, ParticlesAccessorMatchesSoA) {
  const Environment env = test_env();
  FusionParticleFilter filter(env, test_sensors(env), small_config(), Rng(24));
  const auto particles = filter.particles();
  ASSERT_EQ(particles.size(), filter.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    EXPECT_EQ(particles[i].pos, filter.positions()[i]);
    EXPECT_DOUBLE_EQ(particles[i].strength, filter.strengths()[i]);
    EXPECT_DOUBLE_EQ(particles[i].weight, filter.weights()[i]);
  }
}

TEST(FusionFilter, DeterministicForSameSeed) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter f1(env, sensors, small_config(), Rng(25));
  FusionParticleFilter f2(env, sensors, small_config(), Rng(25));
  MeasurementSimulator sim(env, sensors, {{{47, 71}, 10.0}});
  Rng noise(26);
  const auto batch = sim.sample_time_step(noise);
  for (const auto& m : batch) {
    (void)f1.process(m);
    (void)f2.process(m);
  }
  for (std::size_t i = 0; i < f1.size(); ++i) {
    ASSERT_EQ(f1.positions()[i], f2.positions()[i]);
    ASSERT_DOUBLE_EQ(f1.weights()[i], f2.weights()[i]);
  }
}

TEST(FusionFilter, IterationCounterAdvances) {
  const Environment env = test_env();
  const auto sensors = test_sensors(env);
  FusionParticleFilter filter(env, sensors, small_config(), Rng(27));
  EXPECT_EQ(filter.iteration(), 0u);
  (void)filter.process({0, 5.0});
  (void)filter.process({1, 5.0});
  EXPECT_EQ(filter.iteration(), 2u);
}

TEST(FusionFilter, KnownObstacleModeChangesLikelihood) {
  // With use_known_obstacles the filter should converge even when a wall
  // blocks most sensors' view — it models the attenuation explicitly.
  Environment env(make_area(100, 100), {Obstacle(make_rect(30, 0, 34, 100), 0.2)});
  auto sensors = test_sensors(env, 5.0);

  FilterConfig cfg = small_config();
  cfg.use_known_obstacles = true;
  FusionParticleFilter aware(env, sensors, cfg, Rng(28));
  cfg.use_known_obstacles = false;
  FusionParticleFilter naive(env, sensors, cfg, Rng(28));

  MeasurementSimulator sim(env, sensors, {{{15, 50}, 100.0}});
  Rng noise(29);
  for (int step = 0; step < 10; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) {
      (void)aware.process(m);
      (void)naive.process(m);
    }
  }
  // Both should find the source; the aware filter at least as well.
  const double aware_mass = mass_near(aware, {15, 50}, 15.0);
  EXPECT_GT(aware_mass, 0.2);
}

TEST(FusionFilter, WeightsBitIdenticalAcrossThreadCounts) {
  // Determinism contract of the parallel weight update: chunks write
  // disjoint slots and every reduction (max, sum) runs serially in index
  // order, so weights and particle states are bit-identical at any thread
  // count. Pools are built with forced fan-out so the queued dispatch path
  // runs even on single-core hosts.
  Environment env(make_area(100, 100), {Obstacle(make_u_shape(38, 35, 62, 60, 2.0), 0.2)});
  const auto sensors = test_sensors(env);
  FilterConfig cfg = small_config();
  cfg.use_known_obstacles = true;

  MeasurementSimulator sim(env, sensors, {{{47, 71}, 40.0}, {{81, 42}, 40.0}});
  Rng noise(31);
  std::vector<Measurement> stream;
  for (int step = 0; step < 5; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) stream.push_back(m);
  }

  FusionParticleFilter serial(env, sensors, cfg, Rng(33));
  for (const auto& m : stream) (void)serial.process(m);

  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads, /*max_fanout=*/threads);
    FusionParticleFilter parallel(env, sensors, cfg, Rng(33));
    parallel.set_thread_pool(&pool);
    for (const auto& m : stream) (void)parallel.process(m);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial.weights()[i], parallel.weights()[i]) << "threads=" << threads << " i=" << i;
      ASSERT_EQ(serial.positions()[i].x, parallel.positions()[i].x) << "threads=" << threads;
      ASSERT_EQ(serial.positions()[i].y, parallel.positions()[i].y) << "threads=" << threads;
      ASSERT_EQ(serial.strengths()[i], parallel.strengths()[i]) << "threads=" << threads;
    }
  }
}

TEST(FusionFilter, LocalizerEstimatesBitIdenticalAcrossThreadCounts) {
  // End-to-end check over the public entry point: filter weighting and the
  // mean-shift basin-support accumulation both fan out over the pool, and
  // both must leave estimates independent of cfg.num_threads.
  Environment env(make_area(100, 100), {Obstacle(make_u_shape(38, 35, 62, 60, 2.0), 0.2)});
  const auto sensors = test_sensors(env);

  std::vector<std::vector<SourceEstimate>> per_thread_count;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    LocalizerConfig cfg;
    cfg.filter.num_particles = 1500;
    cfg.filter.use_known_obstacles = true;
    cfg.num_threads = threads;
    MultiSourceLocalizer loc(env, sensors, cfg, /*seed=*/45);
    MeasurementSimulator sim(env, sensors, {{{47, 71}, 40.0}});
    Rng noise(46);
    for (int step = 0; step < 5; ++step) loc.process_all(sim.sample_time_step(noise));
    per_thread_count.push_back(loc.estimate());
  }

  for (std::size_t t = 1; t < per_thread_count.size(); ++t) {
    ASSERT_EQ(per_thread_count[0].size(), per_thread_count[t].size());
    for (std::size_t k = 0; k < per_thread_count[0].size(); ++k) {
      EXPECT_EQ(per_thread_count[0][k].pos.x, per_thread_count[t][k].pos.x);
      EXPECT_EQ(per_thread_count[0][k].pos.y, per_thread_count[t][k].pos.y);
      EXPECT_EQ(per_thread_count[0][k].strength, per_thread_count[t][k].strength);
      EXPECT_EQ(per_thread_count[0][k].support, per_thread_count[t][k].support);
    }
  }
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include "radloc/core/tracker.hpp"

namespace radloc {
namespace {

SourceEstimate est(double x, double y, double s = 10.0) { return {{x, y}, s, 1.0}; }

TEST(Tracker, ConfigValidation) {
  TrackerConfig cfg;
  cfg.association_gate = 0.0;
  EXPECT_THROW(SourceTracker{cfg}, std::invalid_argument);
  cfg = TrackerConfig{};
  cfg.confirm_hits = 0;
  EXPECT_THROW(SourceTracker{cfg}, std::invalid_argument);
  cfg = TrackerConfig{};
  cfg.confirm_window = 1;  // < confirm_hits (3)
  EXPECT_THROW(SourceTracker{cfg}, std::invalid_argument);
  cfg = TrackerConfig{};
  cfg.smoothing_alpha = 0.0;
  EXPECT_THROW(SourceTracker{cfg}, std::invalid_argument);
}

TEST(Tracker, ConfirmsAfterMOutOfN) {
  SourceTracker tracker;  // confirm 3/5
  std::vector<TrackEvent> events;

  events = tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  EXPECT_TRUE(events.empty());
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].state, TrackState::kTentative);

  events = tracker.update(std::vector<SourceEstimate>{est(51, 50)});
  EXPECT_TRUE(events.empty());

  events = tracker.update(std::vector<SourceEstimate>{est(50, 51)});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TrackEvent::Kind::kConfirmed);
  EXPECT_EQ(tracker.confirmed().size(), 1u);
}

TEST(Tracker, StableIdAcrossUpdates) {
  SourceTracker tracker;
  (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  const TrackId id = tracker.tracks()[0].id;
  for (int i = 0; i < 10; ++i) {
    (void)tracker.update(std::vector<SourceEstimate>{est(50 + 0.3 * i, 50)});
    ASSERT_EQ(tracker.tracks().size(), 1u);
    EXPECT_EQ(tracker.tracks()[0].id, id);
  }
  EXPECT_EQ(tracker.tracks()[0].hits, 11u);
}

TEST(Tracker, TwoSourcesTwoTracks) {
  SourceTracker tracker;
  for (int i = 0; i < 5; ++i) {
    (void)tracker.update(std::vector<SourceEstimate>{est(20, 20), est(80, 80)});
  }
  const auto confirmed = tracker.confirmed();
  ASSERT_EQ(confirmed.size(), 2u);
  EXPECT_NE(confirmed[0].id, confirmed[1].id);
}

TEST(Tracker, FlickerToleratedWithinKillWindow) {
  SourceTracker tracker;  // kill after 5 consecutive misses
  for (int i = 0; i < 3; ++i) (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  ASSERT_EQ(tracker.confirmed().size(), 1u);

  // Three empty rounds (flicker), then the estimate returns: same track.
  const TrackId id = tracker.tracks()[0].id;
  for (int i = 0; i < 3; ++i) (void)tracker.update({});
  ASSERT_EQ(tracker.tracks().size(), 1u);
  (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].id, id);
  EXPECT_EQ(tracker.tracks()[0].misses, 0u);
}

TEST(Tracker, LostEventAfterKillMisses) {
  SourceTracker tracker;
  for (int i = 0; i < 3; ++i) (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  ASSERT_EQ(tracker.confirmed().size(), 1u);

  std::vector<TrackEvent> events;
  for (int i = 0; i < 5; ++i) events = tracker.update({});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TrackEvent::Kind::kLost);
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(Tracker, TentativeTracksDieSilently) {
  SourceTracker tracker;
  (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});  // one hit only
  std::vector<TrackEvent> all_events;
  for (int i = 0; i < 6; ++i) {
    auto ev = tracker.update({});
    all_events.insert(all_events.end(), ev.begin(), ev.end());
  }
  EXPECT_TRUE(all_events.empty());
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(Tracker, LateConfirmationBlockedByWindow) {
  // 2 hits, then misses, then hits again outside the confirm window: the
  // track survives (miss streak < kill) but cannot confirm late.
  TrackerConfig cfg;
  cfg.confirm_hits = 3;
  cfg.confirm_window = 3;
  cfg.kill_misses = 10;
  SourceTracker tracker(cfg);
  (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  for (int i = 0; i < 4; ++i) (void)tracker.update({});
  const auto events = tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  EXPECT_TRUE(events.empty());
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].state, TrackState::kTentative);
}

TEST(Tracker, NewSourceGetsNewTrackId) {
  SourceTracker tracker;
  for (int i = 0; i < 3; ++i) (void)tracker.update(std::vector<SourceEstimate>{est(20, 20)});
  const TrackId first = tracker.tracks()[0].id;

  // A second source appears far away.
  for (int i = 0; i < 3; ++i) {
    (void)tracker.update(std::vector<SourceEstimate>{est(20, 20), est(80, 80)});
  }
  ASSERT_EQ(tracker.tracks().size(), 2u);
  EXPECT_EQ(tracker.tracks()[0].id, first);
  EXPECT_GT(tracker.tracks()[1].id, first);
  EXPECT_EQ(tracker.confirmed().size(), 2u);
}

TEST(Tracker, SmoothingAveragesJitter) {
  TrackerConfig cfg;
  cfg.smoothing_alpha = 0.25;
  SourceTracker tracker(cfg);
  (void)tracker.update(std::vector<SourceEstimate>{est(50, 50, 10.0)});
  // A jumpy estimate: the smoothed track moves only alpha of the way.
  (void)tracker.update(std::vector<SourceEstimate>{est(58, 50, 20.0)});
  const auto& t = tracker.tracks()[0];
  EXPECT_NEAR(t.pos.x, 52.0, 1e-9);
  EXPECT_NEAR(t.strength, 12.5, 1e-9);
}

TEST(Tracker, InstantConfirmMode) {
  TrackerConfig cfg;
  cfg.confirm_hits = 1;
  cfg.confirm_window = 1;
  SourceTracker tracker(cfg);
  const auto events = tracker.update(std::vector<SourceEstimate>{est(10, 10)});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TrackEvent::Kind::kConfirmed);
}

TEST(Tracker, ResetClearsState) {
  SourceTracker tracker;
  for (int i = 0; i < 3; ++i) (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  tracker.reset();
  EXPECT_TRUE(tracker.tracks().empty());
  EXPECT_EQ(tracker.updates(), 0u);
  (void)tracker.update(std::vector<SourceEstimate>{est(50, 50)});
  EXPECT_EQ(tracker.tracks()[0].id, 1u);  // ids restart
}

TEST(Tracker, AssociationPrefersClosestPair) {
  SourceTracker tracker;
  (void)tracker.update(std::vector<SourceEstimate>{est(50, 50), est(60, 50)});
  // Next round both estimates shift right; each must stay with its track.
  (void)tracker.update(std::vector<SourceEstimate>{est(61, 50), est(51, 50)});
  ASSERT_EQ(tracker.tracks().size(), 2u);
  // Track near 50 stays near 50 (smoothed midpoint 50.5), not dragged to 61.
  EXPECT_LT(tracker.tracks()[0].pos.x, 55.0);
  EXPECT_GT(tracker.tracks()[1].pos.x, 55.0);
}

}  // namespace
}  // namespace radloc

// Deterministic stress harness for the delivery-model stack.
//
// Randomly composed stacks (loss over shuffle over latency, multi-hop with
// per-hop loss) are driven through bursty, gappy traffic with every
// measurement carrying a unique tag. The standing invariants: no model ever
// invents or duplicates a measurement; loss-free stacks conserve the feed
// exactly once the in-flight tail is drained; drain() leaves the queue empty
// and honors the same out-of-order contract as deliver().
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/topology.hpp"

namespace radloc {
namespace {

// Unique per-measurement tag via the cpm payload (models never alter cpm).
double tag_of(int step, std::size_t index) {
  return static_cast<double>(step) * 1000.0 + static_cast<double>(index);
}

struct StackSpec {
  const char* name;
  bool lossless;
};

std::unique_ptr<DeliveryModel> make_stack(std::size_t variant) {
  switch (variant) {
    case 0:
      return std::make_unique<InOrderDelivery>();
    case 1:
      return std::make_unique<ShuffledDelivery>();
    case 2:
      return std::make_unique<RandomLatencyDelivery>(3.0);
    case 3:
      return std::make_unique<LossyDelivery>(0.25, std::make_unique<ShuffledDelivery>());
    case 4:
      return std::make_unique<LossyDelivery>(0.15,
                                             std::make_unique<RandomLatencyDelivery>(2.0));
    default:
      return std::make_unique<LossyDelivery>(
          0.1, std::make_unique<LossyDelivery>(
                   0.1, std::make_unique<RandomLatencyDelivery>(4.0)));
  }
}

bool stack_is_lossless(std::size_t variant) { return variant < 3; }

TEST(StressDelivery, ComposedStacksNeverInventOrDuplicate) {
  for (const std::uint64_t seed : {3u, 7u, 19u, 31u}) {
    for (std::size_t variant = 0; variant < 6; ++variant) {
      SCOPED_TRACE(::testing::Message() << "seed " << seed << " variant " << variant);
      Rng rng(seed * 100 + variant);
      auto model = make_stack(variant);

      std::multiset<double> sent;
      std::multiset<double> received;
      for (int step = 0; step < 40; ++step) {
        std::vector<Measurement> batch;
        // Bursty traffic with hard gaps: some steps ship nothing at all.
        const auto burst = (step % 5 == 4) ? 0 : uniform_index(rng, 25);
        for (std::size_t i = 0; i < burst; ++i) {
          const double tag = tag_of(step, i);
          sent.insert(tag);
          batch.push_back({static_cast<SensorId>(i), tag});
        }
        for (const Measurement& m : model->deliver(rng, std::move(batch))) {
          received.insert(m.cpm);
        }
      }
      for (const Measurement& m : model->drain(rng)) received.insert(m.cpm);
      EXPECT_TRUE(model->drain(rng).empty()) << "drain must empty the queue";

      // Every received tag was sent, and sent at most once.
      for (const double tag : received) {
        ASSERT_EQ(sent.count(tag), 1u) << "tag " << tag << " invented or duplicated";
      }
      ASSERT_LE(received.size(), sent.size());
      if (stack_is_lossless(variant)) {
        EXPECT_EQ(received, sent) << "lossless stack must conserve the feed exactly";
      }
    }
  }
}

TEST(StressDelivery, LatencyChurnWithEmptyStepsConserves) {
  Rng rng(5);
  RandomLatencyDelivery model(5.0);
  std::multiset<double> sent;
  std::multiset<double> received;
  for (int step = 0; step < 60; ++step) {
    std::vector<Measurement> batch;
    if (step % 4 == 0) {
      for (std::size_t i = 0; i < 12; ++i) {
        const double tag = tag_of(step, i);
        sent.insert(tag);
        batch.push_back({static_cast<SensorId>(i), tag});
      }
    }
    for (const Measurement& m : model.deliver(rng, std::move(batch))) received.insert(m.cpm);
  }
  for (const Measurement& m : model.drain(rng)) received.insert(m.cpm);
  EXPECT_EQ(received, sent);
}

TEST(StressDelivery, MultiHopStackConservesWhenLossFree) {
  // Radio range just over the 50-unit grid pitch: every sensor routes to
  // the base station (orphaned sensors are dropped by design, which would
  // break conservation).
  const auto sensors = place_grid(make_area(100.0, 100.0), 3, 3);
  NetworkTopology topo(sensors, 55.0, /*base_station=*/0);
  ASSERT_EQ(topo.connected_count(), sensors.size());
  MultiHopDelivery model(topo, /*per_hop_loss=*/0.0, /*slots_per_step=*/1);

  Rng rng(9);
  std::multiset<double> sent;
  std::multiset<double> received;
  for (int step = 0; step < 30; ++step) {
    std::vector<Measurement> batch;
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      const double tag = tag_of(step, i);
      sent.insert(tag);
      batch.push_back({static_cast<SensorId>(i), tag});
    }
    for (const Measurement& m : model.deliver(rng, std::move(batch))) received.insert(m.cpm);
  }
  for (const Measurement& m : model.drain(rng)) received.insert(m.cpm);
  EXPECT_EQ(received, sent);
}

TEST(StressDelivery, MultiHopDrainShufflesStragglers) {
  // A straggler-heavy queue: every sensor is several hops out and only one
  // slot per step, so one deliver() leaves most measurements in flight.
  const auto sensors = place_grid(make_area(100.0, 100.0), 5, 5);
  NetworkTopology topo(sensors, 25.0, /*base_station=*/0);
  MultiHopDelivery model(topo, 0.0, /*slots_per_step=*/1);

  Rng rng(12);
  std::vector<Measurement> batch;
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    batch.push_back({static_cast<SensorId>(i), static_cast<double>(i)});
  }
  (void)model.deliver(rng, std::move(batch));
  const auto tail = model.drain(rng);
  ASSERT_GT(tail.size(), 8u);

  std::vector<SensorId> ids;
  for (const Measurement& m : tail) ids.push_back(m.sensor);
  std::vector<SensorId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  std::size_t displaced = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != sorted[i]) ++displaced;
  }
  EXPECT_GT(displaced, ids.size() / 2) << "drained stragglers came back in insertion order";
}

}  // namespace
}  // namespace radloc

// Generation-versioned scoring cache + fused same-sensor updates
// (DESIGN.md §5.10).
//
// Contracts under test:
//   * cache ON with the otherwise-default config is bit-identical to the
//     seed golden fingerprint (cache hits replay the exact rates the miss
//     path would recompute — no RNG consumed, no FP reordering);
//   * cache on/off produce bitwise-identical particle state on a stream
//     where hits actually occur (ESS gate + repeat-sensor runs);
//   * a repeat reading hits iff the particle generation survived: the ESS
//     gate skipping the resample keeps the generation, a performed resample,
//     a resize_budget, or an environment revision bump each force a miss;
//   * an empty fusion disk is itself a cacheable (cheap) hit, and still
//     advances iteration() — the stream-clock semantics pinned here;
//   * non-static movement disables lookups entirely and bumps the
//     generation on every evolved reading;
//   * LRU eviction at tiny capacity evicts the least-recently-used origin;
//   * RADLOC_SCORING_CACHE turns the default-off cache on (explicit config
//     still wins; garbage values stay off);
//   * process_fused: size-1 groups are bit-identical to process(), K >= 2
//     groups match the serial posterior within tolerance at every SIMD
//     tier, mixed-sensor/non-static/malformed groups throw, and the
//     localizer batch paths group consecutive same-sensor runs (breaking
//     runs on malformed readings without double-tallying);
//   * SessionStats surfaces cache_hit_rate / fused_batch_len after drain.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "radloc/core/localizer.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/filter/particle_filter.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/service/session_manager.hpp"
#include "radloc/simd/simd.hpp"

namespace radloc {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t state_fingerprint(const FusionParticleFilter& f) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto pos = f.positions();
  const auto str = f.strengths();
  const auto w = f.weights();
  h = fnv1a(h, pos.data(), pos.size() * sizeof(Point2));
  h = fnv1a(h, str.data(), str.size_bytes());
  h = fnv1a(h, w.data(), w.size_bytes());
  return h;
}

/// A small deployment whose readings never degenerate: 4x4 grid, one source.
struct SmallWorld {
  Environment env{make_area(100, 100)};
  std::vector<Sensor> sensors;
  SmallWorld() {
    sensors = place_grid(env.bounds(), 4, 4);
    set_background(sensors, 5.0);
  }
};

FilterConfig small_cfg(std::size_t cache_entries, double ess_threshold) {
  FilterConfig cfg;
  cfg.num_particles = 400;
  cfg.fusion_range = 60.0;
  cfg.scoring_cache_entries = cache_entries;
  cfg.ess_resample_threshold = ess_threshold;
  return cfg;
}

/// ESS threshold low enough that the gate skips every non-degenerate
/// resample — the regime where repeat readings keep their generation.
constexpr double kAlwaysSkip = 1e-6;

// ---------------------------------------------------------------------------
// Seed bit-identity

TEST(ScoringCacheIdentity, CacheOnMatchesSeedGolden) {
  // Same scenario/stream/seeds/tier as test_budget.cpp's seed pin. Turning
  // the cache on must reproduce the identical fingerprint: a hit replays the
  // exact subset and rates the miss path would recompute, consuming no RNG.
  simd::force_tier(simd::Tier::kScalar);
  const Scenario sc = make_scenario_a(10.0);
  FilterConfig cfg;
  cfg.num_particles = 600;
  cfg.fusion_range = sc.recommended_fusion_range;
  cfg.scoring_cache_entries = 64;
  FusionParticleFilter filter(sc.env, sc.sensors, cfg, Rng(42));
  MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
  Rng sim_rng(7);
  for (int step = 0; step < 3; ++step) {
    for (const Measurement& m : sim.sample_time_step(sim_rng)) (void)filter.process(m);
  }
  const std::uint64_t h = state_fingerprint(filter);
  simd::reset_tier();
  EXPECT_EQ(h, 0xbf58403a314a0840ULL) << "cache-on path drifted from the seed";
  EXPECT_GT(filter.scoring_cache_lookups(), 0u) << "cache was never consulted";
}

TEST(ScoringCacheIdentity, CacheOnOffBitIdenticalWhenHitsOccur) {
  // Repeat-sensor stream + ESS gate: the cached run must actually hit, and
  // the particle state must still be bitwise equal to the uncached run.
  const Scenario sc = make_scenario_a(10.0);
  MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
  Rng noise(7);
  std::vector<Measurement> stream;
  for (int step = 0; step < 3; ++step) {
    for (const Measurement& m : sim.sample_time_step(noise)) {
      for (int r = 0; r < 4; ++r) stream.push_back(m);
    }
  }
  auto run = [&](std::size_t cache_entries) {
    FilterConfig cfg;
    cfg.num_particles = 600;
    cfg.fusion_range = sc.recommended_fusion_range;
    cfg.ess_resample_threshold = 0.5;
    cfg.scoring_cache_entries = cache_entries;
    FusionParticleFilter filter(sc.env, sc.sensors, cfg, Rng(42));
    for (const Measurement& m : stream) (void)filter.process(m);
    return std::pair{state_fingerprint(filter), filter.scoring_cache_hits()};
  };
  const auto [h_off, hits_off] = run(0);
  const auto [h_on, hits_on] = run(64);
  EXPECT_EQ(hits_off, 0u);
  EXPECT_GT(hits_on, 0u) << "stream produced no hits; the comparison is vacuous";
  EXPECT_EQ(h_on, h_off) << "cache hits must be bit-identical to recomputing";
}

// ---------------------------------------------------------------------------
// Hit/miss semantics: generation + environment revision

TEST(ScoringCacheHits, RepeatSensorHitsWhileGenerationSurvives) {
  const SmallWorld w;
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(8, kAlwaysSkip), Rng(1));
  const Measurement m{5, 30.0};

  EXPECT_GT(filter.process(m), 0u);  // miss: first sight of this origin
  const std::uint64_t gen = filter.particle_generation();
  EXPECT_GT(filter.process(m), 0u);  // gate skipped the resample -> hit
  EXPECT_GT(filter.process(m), 0u);
  EXPECT_EQ(filter.particle_generation(), gen) << "skipped resamples must keep the generation";
  EXPECT_EQ(filter.scoring_cache_lookups(), 3u);
  EXPECT_EQ(filter.scoring_cache_hits(), 2u);
}

TEST(ScoringCacheHits, PerformedResampleBumpsGenerationAndMisses) {
  const SmallWorld w;
  // Default ESS threshold 1.0: every non-degenerate update resamples.
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(8, 1.0), Rng(1));
  const Measurement m{5, 30.0};
  EXPECT_GT(filter.process(m), 0u);
  const std::uint64_t gen = filter.particle_generation();
  EXPECT_GT(filter.process(m), 0u);
  EXPECT_GT(filter.particle_generation(), gen) << "resample must bump the generation";
  EXPECT_EQ(filter.scoring_cache_lookups(), 2u);
  EXPECT_EQ(filter.scoring_cache_hits(), 0u) << "stale generation must never hit";
}

TEST(ScoringCacheHits, ResizeBudgetInvalidates) {
  const SmallWorld w;
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(8, kAlwaysSkip), Rng(1));
  const Measurement m{5, 30.0};
  (void)filter.process(m);
  (void)filter.process(m);
  ASSERT_EQ(filter.scoring_cache_hits(), 1u);
  const std::uint64_t gen = filter.particle_generation();
  EXPECT_EQ(filter.resize_budget(300), 300u);
  EXPECT_GT(filter.particle_generation(), gen);
  (void)filter.process(m);  // subset indices refer to the old population: miss
  EXPECT_EQ(filter.scoring_cache_lookups(), 3u);
  EXPECT_EQ(filter.scoring_cache_hits(), 1u);
}

TEST(ScoringCacheHits, EnvironmentRevisionInvalidates) {
  SmallWorld w;
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(8, kAlwaysSkip), Rng(1));
  const Measurement m{5, 30.0};
  (void)filter.process(m);
  (void)filter.process(m);
  ASSERT_EQ(filter.scoring_cache_hits(), 1u);
  w.env.add_obstacle(Obstacle(make_rect(40, 0, 50, 100), 0.0693));
  (void)filter.process(m);  // revision changed: conservative miss
  EXPECT_EQ(filter.scoring_cache_lookups(), 3u);
  EXPECT_EQ(filter.scoring_cache_hits(), 1u);
}

TEST(ScoringCacheHits, EmptyDiskIsACheapHitAndStillAdvancesTheClock) {
  const SmallWorld w;
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(8, kAlwaysSkip), Rng(1));
  // A mobile reading far outside the bounds: the fusion disk is empty, the
  // update is a no-op — but iteration() must still count it (the stream
  // clock tracks readings fed, not subset geometry; pinned intentionally so
  // the adaptive-budget cadence and service accounting stay aligned).
  const SensorResponse resp{kDefaultEfficiency, 5.0};
  EXPECT_EQ(filter.iteration(), 0u);
  EXPECT_EQ(filter.process_reading({1e6, 1e6}, resp, 5.0), 0u);
  EXPECT_EQ(filter.iteration(), 1u);
  EXPECT_EQ(filter.process_reading({1e6, 1e6}, resp, 5.0), 0u);  // memoized empty disk
  EXPECT_EQ(filter.iteration(), 2u);
  EXPECT_EQ(filter.scoring_cache_lookups(), 2u);
  EXPECT_EQ(filter.scoring_cache_hits(), 1u);
}

TEST(ScoringCacheHits, NonStaticMovementDisablesLookups) {
  const SmallWorld w;
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(8, kAlwaysSkip), Rng(1));
  ASSERT_TRUE(filter.movement_is_static());
  filter.set_movement_model(std::make_unique<RandomWalkMovement>(0.5));
  EXPECT_FALSE(filter.movement_is_static());

  const Measurement m{5, 30.0};
  const std::uint64_t gen = filter.particle_generation();
  ASSERT_GT(filter.process(m), 0u);
  EXPECT_GT(filter.particle_generation(), gen) << "evolution must bump the generation";
  (void)filter.process(m);
  EXPECT_EQ(filter.scoring_cache_lookups(), 0u)
      << "per-reading evolution makes memoized rates stale within one update";

  // Restoring a static model re-arms the cache.
  filter.set_movement_model(std::make_unique<StaticMovement>());
  EXPECT_TRUE(filter.movement_is_static());
  (void)filter.process(m);
  EXPECT_EQ(filter.scoring_cache_lookups(), 1u);
}

TEST(ScoringCacheLru, TinyCapacityEvictsLeastRecentlyUsed) {
  const SmallWorld w;
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(2, kAlwaysSkip), Rng(1));
  const Measurement a{0, 30.0}, b{5, 30.0}, c{10, 30.0};
  (void)filter.process(a);  // miss, cache {a}
  (void)filter.process(a);  // hit
  (void)filter.process(b);  // miss, cache {a,b}
  (void)filter.process(b);  // hit
  EXPECT_EQ(filter.scoring_cache_hits(), 2u);
  (void)filter.process(c);  // miss, capacity 2: evicts a (LRU)
  (void)filter.process(a);  // miss — a was evicted
  EXPECT_EQ(filter.scoring_cache_lookups(), 6u);
  EXPECT_EQ(filter.scoring_cache_hits(), 2u);
  (void)filter.process(c);  // c must have survived the reinsert of a
  EXPECT_EQ(filter.scoring_cache_hits(), 3u);
}

// ---------------------------------------------------------------------------
// RADLOC_SCORING_CACHE environment override

TEST(ScoringCacheEnv, EnvVarEnablesTheDefaultOffCache) {
  const SmallWorld w;
  const Measurement m{5, 30.0};
  auto lookups_with_default_cfg = [&] {
    FusionParticleFilter filter(w.env, w.sensors, small_cfg(0, kAlwaysSkip), Rng(1));
    (void)filter.process(m);
    (void)filter.process(m);
    return filter.scoring_cache_lookups();
  };
  ASSERT_EQ(setenv("RADLOC_SCORING_CACHE", "16", 1), 0);
  EXPECT_GT(lookups_with_default_cfg(), 0u) << "env knob must arm the cache";
  ASSERT_EQ(setenv("RADLOC_SCORING_CACHE", "bananas", 1), 0);
  EXPECT_EQ(lookups_with_default_cfg(), 0u) << "garbage env value must stay off (with a warning)";
  ASSERT_EQ(unsetenv("RADLOC_SCORING_CACHE"), 0);
  EXPECT_EQ(lookups_with_default_cfg(), 0u) << "default stays off without the knob";
}

TEST(ScoringCacheEnv, ExplicitConfigWinsOverEnv) {
  const SmallWorld w;
  const Measurement m{5, 30.0};
  ASSERT_EQ(setenv("RADLOC_SCORING_CACHE", "0", 1), 0);
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(8, kAlwaysSkip), Rng(1));
  (void)filter.process(m);
  (void)filter.process(m);
  ASSERT_EQ(unsetenv("RADLOC_SCORING_CACHE"), 0);
  EXPECT_EQ(filter.scoring_cache_hits(), 1u) << "cfg.scoring_cache_entries > 0 must win";
}

// ---------------------------------------------------------------------------
// Fused multi-reading updates

TEST(FusedUpdates, SizeOneGroupBitIdenticalToProcess) {
  const SmallWorld w;
  const Measurement m{5, 30.0};
  FusionParticleFilter a(w.env, w.sensors, small_cfg(0, 1.0), Rng(3));
  FusionParticleFilter b(w.env, w.sensors, small_cfg(0, 1.0), Rng(3));
  const std::size_t na = a.process(m);
  const std::size_t nb = b.process_fused(std::span{&m, 1});
  EXPECT_EQ(na, nb);
  EXPECT_EQ(b.fused_groups(), 0u) << "size-1 groups take the exact single-reading path";
  EXPECT_EQ(b.iteration(), a.iteration());
  EXPECT_EQ(state_fingerprint(b), state_fingerprint(a));
}

TEST(FusedUpdates, GroupMatchesSerialWithinToleranceAtEveryTier) {
  // With the gate skipping every resample the serial path never mutates
  // positions mid-group, so fused-vs-serial differ only by FP reordering of
  // the summed log-likelihoods: positions bitwise equal, weights within a
  // tight relative tolerance — at every SIMD tier the host supports.
  const SmallWorld w;
  const std::vector<Measurement> stream{{5, 28.0}, {5, 31.0}, {5, 30.0}, {5, 33.0},
                                        {9, 12.0}, {9, 14.0}, {9, 11.0}, {9, 13.0}};
  for (const simd::Tier tier : simd::sweep_tiers()) {
    simd::force_tier(tier);
    FusionParticleFilter serial(w.env, w.sensors, small_cfg(0, kAlwaysSkip), Rng(3));
    FusionParticleFilter fused(w.env, w.sensors, small_cfg(0, kAlwaysSkip), Rng(3));
    for (const Measurement& m : stream) (void)serial.process(m);
    (void)fused.process_fused(std::span{stream}.subspan(0, 4));
    (void)fused.process_fused(std::span{stream}.subspan(4, 4));
    simd::reset_tier();

    EXPECT_EQ(fused.iteration(), serial.iteration()) << "fused must count every reading";
    EXPECT_EQ(fused.fused_groups(), 2u);
    EXPECT_EQ(fused.fused_readings(), 8u);
    ASSERT_EQ(fused.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(fused.positions()[i], serial.positions()[i])
          << "tier " << static_cast<int>(tier) << " i=" << i;
      const double ws = serial.weights()[i];
      const double wf = fused.weights()[i];
      ASSERT_LE(std::abs(wf - ws), 1e-9 * std::abs(ws) + 1e-15)
          << "tier " << static_cast<int>(tier) << " i=" << i;
    }
  }
}

TEST(FusedUpdates, RejectsMixedSensorsNonStaticMovementAndMalformedReadings) {
  const SmallWorld w;
  FusionParticleFilter filter(w.env, w.sensors, small_cfg(0, 1.0), Rng(3));

  EXPECT_EQ(filter.process_fused({}), 0u);
  EXPECT_EQ(filter.iteration(), 0u) << "an empty group must not advance the clock";

  const std::vector<Measurement> mixed{{5, 30.0}, {6, 30.0}};
  EXPECT_THROW((void)filter.process_fused(mixed), std::invalid_argument);
  const std::vector<Measurement> malformed{{5, 30.0}, {5, -1.0}};
  EXPECT_THROW((void)filter.process_fused(malformed), std::invalid_argument);
  EXPECT_EQ(filter.iteration(), 0u) << "rejected groups must not advance the clock";

  filter.set_movement_model(std::make_unique<RandomWalkMovement>(0.5));
  const std::vector<Measurement> group{{5, 30.0}, {5, 31.0}};
  EXPECT_THROW((void)filter.process_fused(group), std::invalid_argument)
      << "fused updates require a static movement model";
}

TEST(FusedUpdates, LocalizerBatchGroupsConsecutiveSameSensorRuns) {
  const Scenario sc = make_scenario_a(10.0);
  LocalizerConfig cfg;
  cfg.filter.num_particles = 600;
  cfg.filter.fusion_range = sc.recommended_fusion_range;
  cfg.filter.ess_resample_threshold = 0.5;
  cfg.filter.fused_batch_updates = true;
  MultiSourceLocalizer loc(sc.env, sc.sensors, cfg, 42);

  MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
  Rng noise(7);
  std::vector<Measurement> batch;
  for (const Measurement& m : sim.sample_time_step(noise)) {
    for (int r = 0; r < 4; ++r) batch.push_back(m);
  }
  loc.process_all(batch);
  const FusionParticleFilter& f = loc.filter();
  EXPECT_EQ(f.iteration(), batch.size());
  EXPECT_GT(f.fused_groups(), 0u);
  EXPECT_EQ(f.fused_readings(), 4 * f.fused_groups()) << "every run in this batch has length 4";
}

TEST(FusedUpdates, TryProcessAllBreaksRunsOnMalformedWithoutDoubleTally) {
  const SmallWorld w;
  LocalizerConfig cfg;
  cfg.filter.num_particles = 400;
  cfg.filter.fusion_range = 60.0;
  cfg.filter.ess_resample_threshold = 0.5;
  cfg.filter.fused_batch_updates = true;
  MultiSourceLocalizer loc(w.env, w.sensors, cfg, 42);

  const double nan = std::nan("");
  const std::vector<Measurement> batch{{5, 30.0}, {5, nan}, {5, 31.0}, {5, 29.0}, {5, 30.0}};
  std::vector<std::size_t> order;
  std::vector<ReadingFault> faults;
  const BatchIngestResult res = loc.try_process_all(batch, [&](std::size_t i, ReadingFault f) {
    order.push_back(i);
    faults.push_back(f);
  });
  EXPECT_EQ(res.processed, 4u);
  EXPECT_EQ(res.rejected, 1u);
  EXPECT_EQ(res.first_fault, ReadingFault::kNonFiniteCpm);
  ASSERT_EQ(order.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(order[i], i) << "callbacks must fire in batch order";
    EXPECT_EQ(faults[i], i == 1 ? ReadingFault::kNonFiniteCpm : ReadingFault::kNone);
  }
  const FusionParticleFilter& f = loc.filter();
  EXPECT_EQ(f.iteration(), 4u);
  EXPECT_EQ(f.fused_groups(), 1u) << "the NaN breaks the run: [m0], reject, [m2 m3 m4]";
  EXPECT_EQ(f.fused_readings(), 3u);
  // Each well-formed reading tallies exactly once (probe does not tally).
  EXPECT_EQ(f.validator().accepted(), 4u);
  EXPECT_EQ(f.validator().rejected(), 1u);
}

// ---------------------------------------------------------------------------
// Service-layer telemetry

TEST(ScoringCacheService, SessionStatsSurfaceHitRateAndFusedLength) {
  const Scenario sc = make_scenario_a(10.0);
  SessionConfig cfg;
  cfg.localizer.filter.num_particles = 600;
  cfg.localizer.filter.fusion_range = sc.recommended_fusion_range;
  // Always-skip gate: the generation survives whole sweeps, so the SAME
  // sensor origins recur across steps and must hit from the second step on.
  cfg.localizer.filter.ess_resample_threshold = kAlwaysSkip;
  cfg.localizer.filter.scoring_cache_entries = 64;
  cfg.localizer.filter.fused_batch_updates = true;
  ThreadPool pool(2, 2);
  SessionManager mgr(pool);
  const auto id = mgr.open(sc.env, sc.sensors, cfg, 7);
  EXPECT_EQ(mgr.stats(id).cache_hit_rate, 0.0);
  EXPECT_EQ(mgr.stats(id).fused_batch_len, 0.0);

  MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
  Rng noise(8);
  for (int t = 0; t < 4; ++t) {
    for (const Measurement& m : sim.sample_time_step(noise)) {
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(mgr.ingest(id, SessionReading{static_cast<double>(t), m}),
                  IngestStatus::kQueued);
      }
    }
    (void)mgr.drain_all();
  }
  const SessionStats st = mgr.stats(id);
  EXPECT_GT(st.cache_hit_rate, 0.0);
  EXPECT_LE(st.cache_hit_rate, 1.0);
  EXPECT_GE(st.fused_batch_len, 2.0) << "repeat-4 runs must fuse";
}

}  // namespace
}  // namespace radloc

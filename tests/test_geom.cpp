#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "radloc/common/math.hpp"
#include "radloc/geom/grid_index.hpp"
#include "radloc/geom/intersect.hpp"
#include "radloc/geom/polygon.hpp"
#include "radloc/geom/segment.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {
namespace {

TEST(Segment, LengthAndInterpolation) {
  const Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_EQ(s.at(0.0), (Point2{0, 0}));
  EXPECT_EQ(s.at(1.0), (Point2{3, 4}));
  EXPECT_EQ(s.at(0.5), (Point2{1.5, 2.0}));
}

TEST(Polygon, RejectsDegenerate) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(Polygon, RectContainment) {
  const Polygon r = make_rect(10, 20, 30, 40);
  EXPECT_TRUE(r.contains({20, 30}));
  EXPECT_TRUE(r.contains({10.01, 20.01}));
  EXPECT_FALSE(r.contains({9.99, 30}));
  EXPECT_FALSE(r.contains({20, 40.01}));
  EXPECT_FALSE(r.contains({100, 100}));
}

TEST(Polygon, RectAabbAndArea) {
  const Polygon r = make_rect(10, 20, 30, 40);
  EXPECT_EQ(r.aabb().min, (Point2{10, 20}));
  EXPECT_EQ(r.aabb().max, (Point2{30, 40}));
  EXPECT_DOUBLE_EQ(std::abs(r.signed_area()), 400.0);
}

TEST(Polygon, UShapeContainment) {
  // U from (0,0) to (30,30), walls 5 thick, opening at the top.
  const Polygon u = make_u_shape(0, 0, 30, 30, 5.0);
  EXPECT_TRUE(u.contains({2.5, 15}));    // left wall
  EXPECT_TRUE(u.contains({27.5, 15}));   // right wall
  EXPECT_TRUE(u.contains({15, 2.5}));    // bottom wall
  EXPECT_FALSE(u.contains({15, 15}));    // the cavity
  EXPECT_FALSE(u.contains({15, 29}));    // the opening
  EXPECT_FALSE(u.contains({-1, 15}));    // outside
}

TEST(Polygon, UShapeAreaEqualsWalls) {
  const Polygon u = make_u_shape(0, 0, 30, 30, 5.0);
  // bottom 30x5 + two walls 5x25 each.
  EXPECT_NEAR(std::abs(u.signed_area()), 150.0 + 2.0 * 125.0, 1e-9);
}

TEST(Polygon, UShapeRejectsBadDimensions) {
  EXPECT_THROW(make_u_shape(0, 0, 8, 30, 5.0), std::invalid_argument);
}

TEST(SegmentIntersection, BasicCross) {
  const auto t = segment_intersection_param({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}});
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.5, 1e-12);
}

TEST(SegmentIntersection, ParallelReturnsNull) {
  EXPECT_FALSE(segment_intersection_param({{0, 0}, {10, 0}}, {{0, 1}, {10, 1}}).has_value());
}

TEST(SegmentIntersection, DisjointReturnsNull) {
  EXPECT_FALSE(segment_intersection_param({{0, 0}, {1, 1}}, {{5, 0}, {6, 1}}).has_value());
}

TEST(ChordLength, FullCrossingOfRect) {
  const Polygon r = make_rect(10, 0, 20, 100);
  // Horizontal segment crossing the 10-unit-wide slab.
  EXPECT_NEAR(chord_length({{0, 50}, {30, 50}}, r), 10.0, 1e-9);
}

TEST(ChordLength, DiagonalCrossing) {
  const Polygon r = make_rect(0, 0, 10, 10);
  EXPECT_NEAR(chord_length({{-5, -5}, {15, 15}}, r), 10.0 * std::sqrt(2.0), 1e-9);
}

TEST(ChordLength, EndpointInside) {
  const Polygon r = make_rect(0, 0, 10, 10);
  // Starts at the center, exits right: 5 units inside.
  EXPECT_NEAR(chord_length({{5, 5}, {20, 5}}, r), 5.0, 1e-9);
}

TEST(ChordLength, FullyInside) {
  const Polygon r = make_rect(0, 0, 10, 10);
  EXPECT_NEAR(chord_length({{2, 5}, {8, 5}}, r), 6.0, 1e-9);
}

TEST(ChordLength, Miss) {
  const Polygon r = make_rect(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(chord_length({{0, 20}, {10, 20}}, r), 0.0);
  EXPECT_DOUBLE_EQ(chord_length({{-5, -5}, {-1, -1}}, r), 0.0);
}

TEST(ChordLength, NonConvexCountsBothWalls) {
  // Segment through both walls of the U (cavity excluded).
  const Polygon u = make_u_shape(0, 0, 30, 30, 5.0);
  EXPECT_NEAR(chord_length({{-10, 15}, {40, 15}}, u), 10.0, 1e-9);
}

/// Property sweep: chord length is invariant under translation and under
/// reversing the segment, and never exceeds the segment length.
class ChordProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChordProperties, InvariantsHoldForRandomSegments) {
  Rng rng(GetParam());
  const Polygon poly = make_u_shape(20, 20, 80, 70, 8.0);
  const AreaBounds area = make_area(100, 100);
  for (int i = 0; i < 200; ++i) {
    const Segment s{uniform_point(rng, area), uniform_point(rng, area)};
    const double l = chord_length(s, poly);
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, s.length() + 1e-9);
    // Reversal symmetry.
    EXPECT_NEAR(chord_length({s.b, s.a}, poly), l, 1e-9);
    // Translation invariance (translate both by the same offset).
    const Point2 offset{13.7, -4.2};
    std::vector<Point2> moved;
    for (const auto& v : poly.vertices()) moved.push_back(v + offset);
    const Polygon poly_moved(std::move(moved));
    EXPECT_NEAR(chord_length({s.a + offset, s.b + offset}, poly_moved), l, 1e-9);
  }
}

TEST_P(ChordProperties, AdditiveUnderSplitting) {
  Rng rng(GetParam() ^ 0xABCD);
  const Polygon poly = make_rect(30, 30, 70, 70);
  const AreaBounds area = make_area(100, 100);
  for (int i = 0; i < 200; ++i) {
    const Segment s{uniform_point(rng, area), uniform_point(rng, area)};
    const Point2 mid = s.at(0.5);
    const double whole = chord_length(s, poly);
    const double halves = chord_length({s.a, mid}, poly) + chord_length({mid, s.b}, poly);
    EXPECT_NEAR(whole, halves, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChordProperties, ::testing::Values(1u, 2u, 3u));

TEST(GridIndex, FindsAllPointsInRadius) {
  Rng rng(99);
  const AreaBounds area = make_area(100, 100);
  std::vector<Point2> pts;
  for (int i = 0; i < 2000; ++i) pts.push_back(uniform_point(rng, area));

  GridIndex index(area, 10.0);
  index.rebuild(pts);

  const Point2 center{40, 60};
  const double radius = 17.0;
  std::vector<std::uint32_t> found;
  index.query_radius(pts, center, radius, found);

  std::vector<std::uint32_t> expected;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (distance(pts[i], center) <= radius) expected.push_back(i);
  }
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, expected);
}

TEST(GridIndex, HandlesPointsOutsideBounds) {
  const AreaBounds area = make_area(10, 10);
  std::vector<Point2> pts{{-5, -5}, {15, 15}, {5, 5}};
  GridIndex index(area, 2.0);
  index.rebuild(pts);
  std::vector<std::uint32_t> found;
  index.query_radius(pts, {-5, -5}, 1.0, found);
  EXPECT_EQ(found, (std::vector<std::uint32_t>{0}));
}

TEST(GridIndex, EmptyAndRebuild) {
  const AreaBounds area = make_area(10, 10);
  GridIndex index(area, 1.0);
  index.rebuild({});
  EXPECT_EQ(index.size(), 0u);
  std::vector<std::uint32_t> found;
  index.query_radius({}, {5, 5}, 100.0, found);
  EXPECT_TRUE(found.empty());

  const std::vector<Point2> pts{{1, 1}, {9, 9}};
  index.rebuild(pts);
  EXPECT_EQ(index.size(), 2u);
  index.query_radius(pts, {0, 0}, 2.0, found);
  EXPECT_EQ(found.size(), 1u);
}

TEST(GridIndex, RejectsBadConstruction) {
  EXPECT_THROW(GridIndex(make_area(10, 10), 0.0), std::invalid_argument);
  EXPECT_THROW(GridIndex(AreaBounds{{0, 0}, {0, 10}}, 1.0), std::invalid_argument);
}

TEST(AabbSegmentOverlap, Basics) {
  const AreaBounds box{{0, 0}, {10, 10}};
  EXPECT_TRUE(aabb_overlaps_segment(box, {{-5, 5}, {15, 5}}));
  EXPECT_TRUE(aabb_overlaps_segment(box, {{5, 5}, {6, 6}}));
  EXPECT_FALSE(aabb_overlaps_segment(box, {{20, 20}, {30, 30}}));
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "radloc/eval/matching.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/service/session_manager.hpp"

namespace radloc {
namespace {

struct Fixture {
  Environment env{make_area(100, 100)};
  std::vector<Sensor> sensors;
  SessionConfig cfg;

  Fixture() {
    sensors = place_grid(env.bounds(), 6, 6);
    set_background(sensors, 5.0);
    cfg.localizer.filter.num_particles = 1000;
  }
};

/// Deterministic timed feed for one session: `steps` simulator time steps,
/// timestamps = step index.
std::vector<SessionReading> make_feed(const Fixture& f, const std::vector<Source>& sources,
                                      int steps, std::uint64_t noise_seed) {
  MeasurementSimulator sim(f.env, f.sensors, sources);
  Rng noise(noise_seed);
  std::vector<SessionReading> feed;
  for (int t = 0; t < steps; ++t) {
    for (const Measurement& m : sim.sample_time_step(noise)) {
      feed.push_back(SessionReading{static_cast<double>(t), m});
    }
  }
  return feed;
}

/// Bitwise particle-state equality between a managed session and a
/// standalone localizer.
void expect_bit_identical(const MultiSourceLocalizer& a, const MultiSourceLocalizer& b) {
  ASSERT_EQ(a.filter().size(), b.filter().size());
  ASSERT_EQ(a.iterations(), b.iterations());
  for (std::size_t i = 0; i < a.filter().size(); ++i) {
    ASSERT_EQ(a.filter().weights()[i], b.filter().weights()[i]) << i;
    ASSERT_EQ(a.filter().positions()[i], b.filter().positions()[i]) << i;
    ASSERT_EQ(a.filter().strengths()[i], b.filter().strengths()[i]) << i;
  }
}

TEST(SessionManager, OpenIngestDrainEstimate) {
  Fixture f;
  ThreadPool pool(4, 4);
  SessionManager mgr(pool);
  const auto id = mgr.open(f.env, f.sensors, f.cfg, 42);
  EXPECT_EQ(mgr.num_sessions(), 1u);

  const auto feed = make_feed(f, {{{47, 71}, 50.0}}, 10, 7);
  for (const auto& r : feed) EXPECT_EQ(mgr.ingest(id, r), IngestStatus::kQueued);
  EXPECT_EQ(mgr.stats(id).queue_depth, feed.size());

  EXPECT_EQ(mgr.drain_all(), feed.size());
  const SessionStats st = mgr.stats(id);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_EQ(st.processed, feed.size());
  EXPECT_EQ(st.applied, feed.size());
  EXPECT_EQ(st.filter_iterations, feed.size());

  const auto estimates = mgr.estimate(id);
  const std::vector<Source> truth{{{47, 71}, 50.0}};
  const auto match = match_estimates(truth, estimates);
  EXPECT_EQ(match.false_negatives, 0u);
  ASSERT_TRUE(match.error[0].has_value());
  EXPECT_LT(*match.error[0], 6.0);
}

TEST(SessionManager, ManagedSessionBitIdenticalToSerialReplay) {
  Fixture f;
  ThreadPool pool(4, 4);
  SessionManager mgr(pool);
  const auto id = mgr.open(f.env, f.sensors, f.cfg, 9);
  const auto feed = make_feed(f, {{{30, 60}, 40.0}}, 6, 3);
  // Interleave ingest and drains: partial backlogs must compose to the same
  // serial order.
  for (std::size_t i = 0; i < feed.size(); ++i) {
    mgr.ingest(id, feed[i]);
    if (i % 17 == 0) mgr.drain_all();
  }
  mgr.drain_all();

  MultiSourceLocalizer serial(f.env, f.sensors, f.cfg.localizer, 9);
  std::vector<Measurement> raw;
  for (const auto& r : feed) raw.push_back(r.m);
  serial.try_process_all(raw);
  expect_bit_identical(mgr.localizer(id), serial);
}

TEST(SessionManager, BackpressureRejectNewest) {
  Fixture f;
  f.cfg.queue_capacity = 8;
  ThreadPool pool(1);
  SessionManager mgr(pool);
  const auto id = mgr.open(f.env, f.sensors, f.cfg, 1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mgr.ingest(id, {1.0, {0, 10.0}}), IngestStatus::kQueued);
  }
  EXPECT_EQ(mgr.ingest(id, {2.0, {0, 11.0}}), IngestStatus::kRejectedFull);
  EXPECT_EQ(mgr.ingest(id, {3.0, {0, 12.0}}), IngestStatus::kRejectedFull);
  const SessionStats st = mgr.stats(id);
  EXPECT_EQ(st.queue_depth, 8u);
  EXPECT_EQ(st.rejected_full, 2u);
  EXPECT_EQ(st.dropped_oldest, 0u);
  EXPECT_EQ(mgr.drain(id), 8u);
}

TEST(SessionManager, BackpressureDropOldestKeepsMostRecent) {
  Fixture f;
  f.cfg.queue_capacity = 4;
  f.cfg.backpressure = BackpressurePolicy::kDropOldest;
  ThreadPool pool(1);
  SessionManager mgr(pool);
  const auto id = mgr.open(f.env, f.sensors, f.cfg, 1);
  for (int i = 0; i < 10; ++i) {
    const auto status = mgr.ingest(id, {static_cast<double>(i), {0, 10.0 + i}});
    EXPECT_EQ(status,
              i < 4 ? IngestStatus::kQueued : IngestStatus::kQueuedDroppedOldest);
  }
  const SessionStats st = mgr.stats(id);
  EXPECT_EQ(st.queue_depth, 4u);
  EXPECT_EQ(st.dropped_oldest, 6u);
  EXPECT_EQ(st.ingested, 10u);
  EXPECT_EQ(mgr.drain(id), 4u);

  // The survivors are the four MOST RECENT readings: replaying exactly
  // those serially reproduces the session's filter state bit for bit.
  MultiSourceLocalizer serial(f.env, f.sensors, f.cfg.localizer, 1);
  const std::vector<Measurement> kept{{0, 16.0}, {0, 17.0}, {0, 18.0}, {0, 19.0}};
  serial.try_process_all(kept);
  expect_bit_identical(mgr.localizer(id), serial);
}

TEST(SessionManager, MalformedReadingsRejectedAtIngest) {
  Fixture f;
  ThreadPool pool(1);
  SessionManager mgr(pool);
  const auto id = mgr.open(f.env, f.sensors, f.cfg, 1);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(mgr.ingest(id, {nan, {0, 10.0}}), IngestStatus::kRejectedMalformed);
  EXPECT_EQ(mgr.ingest(id, {-1.0, {0, 10.0}}), IngestStatus::kRejectedMalformed);
  EXPECT_EQ(mgr.ingest(id, {1.0, {0, nan}}), IngestStatus::kRejectedMalformed);
  EXPECT_EQ(mgr.ingest(id, {1.0, {0, -2.0}}), IngestStatus::kRejectedMalformed);
  EXPECT_EQ(mgr.ingest(id, {1.0, {999, 10.0}}), IngestStatus::kRejectedMalformed);
  EXPECT_EQ(mgr.ingest(id, {inf, {0, 10.0}}), IngestStatus::kRejectedMalformed);
  EXPECT_EQ(mgr.ingest(id, {1.0, {0, 10.0}}), IngestStatus::kQueued);

  const SessionStats st = mgr.stats(id);
  EXPECT_EQ(st.queue_depth, 1u);
  EXPECT_EQ(st.rejected_malformed, 6u);
  EXPECT_EQ(st.faults[static_cast<std::size_t>(ReadingFault::kNonFiniteTimestamp)], 2u);
  EXPECT_EQ(st.faults[static_cast<std::size_t>(ReadingFault::kNegativeTimestamp)], 1u);
  EXPECT_EQ(st.faults[static_cast<std::size_t>(ReadingFault::kNonFiniteCpm)], 1u);
  EXPECT_EQ(st.faults[static_cast<std::size_t>(ReadingFault::kNegativeCpm)], 1u);
  EXPECT_EQ(st.faults[static_cast<std::size_t>(ReadingFault::kUnknownSensor)], 1u);
  // Malformed readings never reach the queue, the drain, or the filter.
  EXPECT_EQ(mgr.drain(id), 1u);
  EXPECT_EQ(mgr.stats(id).applied, 1u);
}

TEST(SessionManager, TimestampDrainOrderAppliesInTimeOrder) {
  Fixture f;
  f.cfg.drain_order = DrainOrder::kTimestamp;
  ThreadPool pool(1);
  SessionManager mgr(pool);
  const auto id = mgr.open(f.env, f.sensors, f.cfg, 5);

  auto feed = make_feed(f, {{{60, 40}, 30.0}}, 3, 11);
  // Scramble arrival order deterministically; timestamps still carry the
  // true time order.
  Rng shuffle_rng(99);
  for (std::size_t i = feed.size(); i > 1; --i) {
    std::swap(feed[i - 1], feed[uniform_index(shuffle_rng, i)]);
  }
  for (const auto& r : feed) mgr.ingest(id, r);
  mgr.drain(id);

  // Serial replay in timestamp order (stable: ties keep arrival order).
  std::stable_sort(feed.begin(), feed.end(),
                   [](const SessionReading& a, const SessionReading& b) {
                     return a.timestamp < b.timestamp;
                   });
  MultiSourceLocalizer serial(f.env, f.sensors, f.cfg.localizer, 5);
  for (const auto& r : feed) serial.try_process(r.m);
  expect_bit_identical(mgr.localizer(id), serial);
}

TEST(SessionManager, LatencyTelemetryPopulatedByDrains) {
  Fixture f;
  ThreadPool pool(2, 2);
  SessionManager mgr(pool);
  const auto id = mgr.open(f.env, f.sensors, f.cfg, 3);
  const auto feed = make_feed(f, {{{50, 50}, 40.0}}, 4, 13);
  for (const auto& r : feed) mgr.ingest(id, r);
  mgr.drain_all();
  const SessionStats st = mgr.stats(id);
  // The latency histogram is cumulative: one sample per drained reading,
  // updated in the same critical section as the processed tally.
  EXPECT_EQ(st.latency_samples, st.processed);
  EXPECT_EQ(st.latency_samples, feed.size());
  EXPECT_GT(st.p50_latency_us, 0.0);
  EXPECT_GE(st.p99_latency_us, st.p50_latency_us);
}

TEST(SessionManager, SessionsAreIndependent) {
  Fixture f;
  ThreadPool pool(4, 4);
  SessionManager mgr(pool);
  const auto a = mgr.open(f.env, f.sensors, f.cfg, 21);
  const auto b = mgr.open(f.env, f.sensors, f.cfg, 22);
  // Feed ONLY session a; b must stay untouched.
  const auto feed = make_feed(f, {{{25, 75}, 45.0}}, 5, 17);
  for (const auto& r : feed) mgr.ingest(a, r);
  mgr.drain_all();
  EXPECT_EQ(mgr.stats(a).processed, feed.size());
  EXPECT_EQ(mgr.stats(b).processed, 0u);
  EXPECT_EQ(mgr.localizer(b).iterations(), 0u);
}

TEST(SessionManager, CloseAndUnknownIdSemantics) {
  Fixture f;
  ThreadPool pool(1);
  SessionManager mgr(pool);
  const auto id = mgr.open(f.env, f.sensors, f.cfg, 1);
  EXPECT_EQ(mgr.num_sessions(), 1u);
  EXPECT_TRUE(mgr.close(id));
  EXPECT_FALSE(mgr.close(id));
  EXPECT_EQ(mgr.num_sessions(), 0u);
  EXPECT_THROW(mgr.ingest(id, {0.0, {0, 1.0}}), std::out_of_range);
  EXPECT_THROW((void)mgr.stats(id), std::out_of_range);
  EXPECT_THROW(mgr.drain(id), std::out_of_range);
  // Ids are never reused.
  const auto id2 = mgr.open(f.env, f.sensors, f.cfg, 1);
  EXPECT_NE(id2, id);
}

TEST(SessionManager, ZeroCapacityRejectedAtOpen) {
  Fixture f;
  f.cfg.queue_capacity = 0;
  ThreadPool pool(1);
  SessionManager mgr(pool);
  EXPECT_THROW(mgr.open(f.env, f.sensors, f.cfg, 1), std::invalid_argument);
}

TEST(SessionManager, ManySessionsDrainConcurrentlyBitIdentical) {
  Fixture f;
  ThreadPool pool(4, 4);
  SessionManager mgr(pool);
  constexpr int kSessions = 6;
  std::vector<SessionManager::SessionId> ids;
  std::vector<std::vector<SessionReading>> feeds;
  for (int k = 0; k < kSessions; ++k) {
    ids.push_back(mgr.open(f.env, f.sensors, f.cfg, 100 + static_cast<std::uint64_t>(k)));
    feeds.push_back(make_feed(f, {{{20.0 + 10 * k, 80.0 - 9 * k}, 35.0}}, 3,
                              200 + static_cast<std::uint64_t>(k)));
  }
  // Round-robin interleaved ingest across sessions, drained in waves.
  const std::size_t per = feeds[0].size();
  for (std::size_t i = 0; i < per; ++i) {
    for (int k = 0; k < kSessions; ++k) mgr.ingest(ids[k], feeds[k][i]);
    if (i % 29 == 0) mgr.drain_all();
  }
  mgr.drain_all();

  for (int k = 0; k < kSessions; ++k) {
    MultiSourceLocalizer serial(f.env, f.sensors, f.cfg.localizer,
                                100 + static_cast<std::uint64_t>(k));
    for (const auto& r : feeds[k]) serial.try_process(r.m);
    expect_bit_identical(mgr.localizer(ids[k]), serial);
  }
}

}  // namespace
}  // namespace radloc

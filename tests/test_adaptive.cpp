#include <gtest/gtest.h>

#include <algorithm>

#include "radloc/adaptive/planner.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

struct World {
  Environment env{make_area(100, 100)};
  std::vector<Sensor> sensors;

  World() {
    sensors = place_grid(env.bounds(), 6, 6);
    set_background(sensors, 5.0);
  }
};

TEST(AdaptivePlanner, ScoresEverySensorSorted) {
  World w;
  FusionParticleFilter filter(w.env, w.sensors, FilterConfig{}, Rng(1));
  AdaptiveSensingPlanner planner;
  const auto scores = planner.score_sensors(filter);
  ASSERT_EQ(scores.size(), w.sensors.size());
  for (std::size_t i = 0; i + 1 < scores.size(); ++i) {
    EXPECT_GE(scores[i].score, scores[i + 1].score);
  }
  for (const auto& s : scores) EXPECT_GE(s.score, 0.0);
}

TEST(AdaptivePlanner, UniformPriorEverySensorInformative) {
  // With a fresh uniform particle cloud, every sensor has hypotheses that
  // disagree about its reading, so every score is positive.
  World w;
  FusionParticleFilter filter(w.env, w.sensors, FilterConfig{}, Rng(2));
  AdaptiveSensingPlanner planner;
  for (const auto& s : planner.score_sensors(filter)) {
    EXPECT_GT(s.score, 0.0) << "sensor " << s.sensor;
  }
}

TEST(AdaptivePlanner, ConvergedPosteriorPrefersSensorsNearTheCluster) {
  // After convergence on one source, sensors near the source see the
  // largest hypothesis spread (position/strength still uncertain there),
  // while remote sensors' predictions all agree on "background".
  World w;
  const std::vector<Source> truth{{{30, 30}, 60.0}};
  MeasurementSimulator sim(w.env, w.sensors, truth);
  FusionParticleFilter filter(w.env, w.sensors, FilterConfig{}, Rng(3));
  Rng noise(4);
  for (int t = 0; t < 10; ++t) {
    for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
  }

  AdaptiveSensingPlanner planner;
  const auto best = planner.select(filter, 4);
  ASSERT_EQ(best.size(), 4u);
  // All of the top-4 sensors are near the source (their fusion disks touch
  // the cluster's spread).
  for (const auto id : best) {
    EXPECT_LT(distance(w.sensors[id].pos, truth[0].pos), filter.config().fusion_range + 10.0)
        << "sensor " << id;
  }
}

TEST(AdaptivePlanner, SelectRespectsBudget) {
  World w;
  FusionParticleFilter filter(w.env, w.sensors, FilterConfig{}, Rng(5));
  AdaptiveSensingPlanner planner;
  EXPECT_EQ(planner.select(filter, 3).size(), 3u);
  EXPECT_EQ(planner.select(filter, 0).size(), 0u);
  EXPECT_EQ(planner.select(filter, 999).size(), w.sensors.size());
}

TEST(AdaptivePlanner, AdaptivePollingBeatsRoundRobinAtEqualBudget) {
  // Poll only 6 of 36 sensors per step. Adaptive selection should localize
  // at least as well as a fixed round-robin schedule.
  World w;
  const std::vector<Source> truth{{{47, 71}, 30.0}, {{81, 42}, 30.0}};
  MeasurementSimulator sim(w.env, w.sensors, truth);

  auto run = [&](bool adaptive) {
    MultiSourceLocalizer loc(w.env, w.sensors, LocalizerConfig{}, 6);
    AdaptiveSensingPlanner planner;
    Rng noise(7);
    std::size_t rr = 0;
    for (int t = 0; t < 30; ++t) {
      std::vector<SensorId> poll;
      if (adaptive && t >= 3) {  // bootstrap with full coverage first
        poll = planner.select(loc.filter(), 6);
      } else if (t < 3) {
        for (SensorId i = 0; i < w.sensors.size(); ++i) poll.push_back(i);
      } else {
        for (int k = 0; k < 6; ++k) {
          poll.push_back(static_cast<SensorId>(rr++ % w.sensors.size()));
        }
      }
      for (const auto id : poll) loc.process(sim.sample(noise, id));
    }
    const auto match = match_estimates(truth, loc.estimate());
    return std::pair{match.mean_error(), match.false_negatives};
  };

  const auto [err_adaptive, fn_adaptive] = run(true);
  const auto [err_rr, fn_rr] = run(false);
  EXPECT_LE(fn_adaptive, fn_rr);
  if (fn_adaptive == fn_rr) {
    EXPECT_LT(err_adaptive, err_rr + 3.0);  // at least comparable accuracy
  }
}

TEST(AdaptivePlanner, StrideKeepsRankingStable) {
  // Coarse particle subsampling must preserve the broad ranking: the top
  // pick with full evaluation stays in the top quarter with stride.
  World w;
  const std::vector<Source> truth{{{30, 30}, 60.0}};
  MeasurementSimulator sim(w.env, w.sensors, truth);
  FusionParticleFilter filter(w.env, w.sensors, FilterConfig{}, Rng(8));
  Rng noise(9);
  for (int t = 0; t < 8; ++t) {
    for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
  }

  AdaptivePlannerConfig full_cfg;
  full_cfg.max_particles_evaluated = 1u << 30;
  const auto full = AdaptiveSensingPlanner(full_cfg).score_sensors(filter);

  AdaptivePlannerConfig coarse_cfg;
  coarse_cfg.max_particles_evaluated = 128;
  const auto coarse = AdaptiveSensingPlanner(coarse_cfg).score_sensors(filter);

  const SensorId top = full.front().sensor;
  const auto it = std::find_if(coarse.begin(), coarse.end(),
                               [&](const SensorScore& s) { return s.sensor == top; });
  ASSERT_NE(it, coarse.end());
  EXPECT_LT(static_cast<std::size_t>(it - coarse.begin()), coarse.size() / 3);
}

}  // namespace
}  // namespace radloc

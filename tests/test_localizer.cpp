#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

struct Fixture {
  Environment env{make_area(100, 100)};
  std::vector<Sensor> sensors;
  LocalizerConfig cfg;

  Fixture() {
    sensors = place_grid(env.bounds(), 6, 6);
    set_background(sensors, 5.0);
    cfg.filter.num_particles = 2000;
  }
};

/// Runs `steps` time steps of in-order measurements through the localizer.
std::vector<SourceEstimate> run_steps(Fixture& f, const std::vector<Source>& sources,
                                      int steps, std::uint64_t seed) {
  MeasurementSimulator sim(f.env, f.sensors, sources);
  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, seed);
  Rng noise(seed ^ 0x5555);
  for (int t = 0; t < steps; ++t) {
    loc.process_all(sim.sample_time_step(noise));
  }
  return loc.estimate();
}

TEST(Localizer, SingleSourceLocalizedAccurately) {
  Fixture f;
  const std::vector<Source> truth{{{47, 71}, 50.0}};
  const auto estimates = run_steps(f, truth, 10, 1);
  const auto match = match_estimates(truth, estimates);
  EXPECT_EQ(match.false_negatives, 0u);
  ASSERT_TRUE(match.error[0].has_value());
  EXPECT_LT(*match.error[0], 5.0);
}

TEST(Localizer, TwoSourcesWithoutKnowingK) {
  Fixture f;
  const std::vector<Source> truth{{{47, 71}, 20.0}, {{81, 42}, 20.0}};
  const auto estimates = run_steps(f, truth, 15, 2);
  const auto match = match_estimates(truth, estimates);
  EXPECT_EQ(match.false_negatives, 0u);
  EXPECT_LE(match.false_positives, 1u);
  for (const auto& e : match.error) {
    ASSERT_TRUE(e.has_value());
    EXPECT_LT(*e, 10.0);
  }
}

TEST(Localizer, ThreeSourcesLearnedK) {
  Fixture f;
  const std::vector<Source> truth{{{87, 89}, 50.0}, {{37, 14}, 50.0}, {{55, 51}, 50.0}};
  const auto estimates = run_steps(f, truth, 20, 3);
  const auto match = match_estimates(truth, estimates);
  EXPECT_EQ(match.false_negatives, 0u);
  for (const auto& e : match.error) {
    ASSERT_TRUE(e.has_value());
    EXPECT_LT(*e, 10.0);
  }
}

TEST(Localizer, StrengthEstimatesInRightBallpark) {
  Fixture f;
  const std::vector<Source> truth{{{47, 71}, 100.0}};
  const auto estimates = run_steps(f, truth, 15, 4);
  const auto match = match_estimates(truth, estimates);
  ASSERT_TRUE(match.matched_estimate[0].has_value());
  const double s = estimates[*match.matched_estimate[0]].strength;
  EXPECT_GT(s, 30.0);
  EXPECT_LT(s, 350.0);
}

TEST(Localizer, NoSourcesYieldsNoConfidentEstimates) {
  Fixture f;
  // Background-only world: modes, if any, should carry little support and
  // produce no estimate surviving min_support... but uniform particles can
  // transiently cluster. After several steps of background readings the
  // weights stay diffuse, so estimates (if any) are few.
  const auto estimates = run_steps(f, {}, 10, 5);
  EXPECT_LE(estimates.size(), 3u);
}

TEST(Localizer, OutOfOrderDeliveryStillConverges) {
  Fixture f;
  const std::vector<Source> truth{{{47, 71}, 50.0}, {{81, 42}, 50.0}};
  MeasurementSimulator sim(f.env, f.sensors, truth);
  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, 6);
  ShuffledDelivery delivery;
  Rng noise(7);
  Rng net(8);
  for (int t = 0; t < 15; ++t) {
    loc.process_all(delivery.deliver(net, sim.sample_time_step(noise)));
  }
  const auto match = match_estimates(truth, loc.estimate());
  EXPECT_EQ(match.false_negatives, 0u);
  for (const auto& e : match.error) {
    ASSERT_TRUE(e.has_value());
    EXPECT_LT(*e, 8.0);
  }
}

TEST(Localizer, LossySensorsToleratedGracefully) {
  Fixture f;
  const std::vector<Source> truth{{{47, 71}, 50.0}};
  MeasurementSimulator sim(f.env, f.sensors, truth);
  // Also kill two sensors entirely.
  sim.kill_sensor(0);
  sim.kill_sensor(35);
  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, 9);
  LossyDelivery delivery(0.3, std::make_unique<ShuffledDelivery>());
  Rng noise(10);
  Rng net(11);
  for (int t = 0; t < 15; ++t) {
    loc.process_all(delivery.deliver(net, sim.sample_time_step(noise)));
  }
  const auto match = match_estimates(truth, loc.estimate());
  EXPECT_EQ(match.false_negatives, 0u);
  EXPECT_LT(*match.error[0], 8.0);
}

TEST(Localizer, MultithreadedEstimateMatchesSerial) {
  Fixture serial_f;
  Fixture parallel_f;
  parallel_f.cfg.num_threads = 4;
  const std::vector<Source> truth{{{30, 30}, 50.0}, {{70, 70}, 50.0}};

  const auto serial = run_steps(serial_f, truth, 8, 12);
  const auto parallel = run_steps(parallel_f, truth, 8, 12);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i].pos.x, parallel[i].pos.x, 1e-9);
    EXPECT_NEAR(serial[i].pos.y, parallel[i].pos.y, 1e-9);
  }
}

TEST(Localizer, IterationsCounterTracksMeasurements) {
  Fixture f;
  MeasurementSimulator sim(f.env, f.sensors, {{{50, 50}, 10.0}});
  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, 13);
  Rng noise(14);
  loc.process_all(sim.sample_time_step(noise));
  EXPECT_EQ(loc.iterations(), f.sensors.size());
}

TEST(Localizer, EstimateIsRepeatableBetweenProcessCalls) {
  Fixture f;
  MeasurementSimulator sim(f.env, f.sensors, {{{50, 50}, 50.0}});
  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, 15);
  Rng noise(16);
  for (int t = 0; t < 5; ++t) loc.process_all(sim.sample_time_step(noise));
  const auto a = loc.estimate();
  const auto b = loc.estimate();  // estimation must not perturb the filter
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].pos.x, b[i].pos.x);
    EXPECT_DOUBLE_EQ(a[i].support, b[i].support);
  }
}

TEST(Localizer, RemovedSourceStopsBeingReported) {
  // A source present for 12 steps then removed: within ~15 further steps
  // the estimate list near its position must clear (the bounded detection
  // history flushes the stale evidence; Sec. V-E's random replacement
  // re-seeds the vacated region).
  Fixture f;
  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, 17);
  Rng noise(18);
  const Point2 old_pos{40, 40};
  {
    MeasurementSimulator sim(f.env, f.sensors, {{old_pos, 40.0}});
    for (int t = 0; t < 12; ++t) loc.process_all(sim.sample_time_step(noise));
  }
  // Present while active:
  {
    bool near = false;
    for (const auto& e : loc.estimate()) {
      if (distance(e.pos, old_pos) < 15.0) near = true;
    }
    ASSERT_TRUE(near);
  }
  // Removed:
  MeasurementSimulator sim(f.env, f.sensors, {});
  int last_seen = -1;
  for (int t = 0; t < 18; ++t) {
    loc.process_all(sim.sample_time_step(noise));
    for (const auto& e : loc.estimate()) {
      if (distance(e.pos, old_pos) < 15.0) last_seen = t;
    }
  }
  EXPECT_LT(last_seen, 15);
}

TEST(Localizer, HistoryWindowValidation) {
  Fixture f;
  f.cfg.history_window = 0;
  EXPECT_THROW(MultiSourceLocalizer(f.env, f.sensors, f.cfg, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Batch ingestion: process_all must be all-or-nothing on malformed input
// (regression — it used to apply the prefix before throwing mid-batch), and
// try_process_all is the fault-tolerant drain path the service layer uses.

TEST(Localizer, ProcessAllIsAllOrNothingOnMalformedBatch) {
  Fixture f;
  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, 7);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Measurement> batch{{0, 12.0}, {1, 9.0}, {2, nan}, {3, 11.0}};
  EXPECT_THROW(loc.process_all(batch), std::invalid_argument);
  // Nothing was applied: the malformed reading was found before the first
  // process() call, so the well-formed prefix did not leak into the filter.
  EXPECT_EQ(loc.iterations(), 0u);
  try {
    loc.process_all(batch);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("finite"), std::string::npos) << what;
    EXPECT_NE(what.find("index 2"), std::string::npos) << what;
  }
}

TEST(Localizer, TryProcessAllProcessesWellFormedAndTalliesFaults) {
  Fixture f;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Measurement> batch{
      {0, 12.0}, {999, 5.0}, {1, nan}, {2, 8.0}, {3, -4.0}, {4, 10.0}};

  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, 7);
  const BatchIngestResult r = loc.try_process_all(batch);
  EXPECT_EQ(r.processed, 3u);
  EXPECT_EQ(r.rejected, 3u);
  EXPECT_EQ(r.processed + r.rejected, batch.size());
  EXPECT_EQ(r.first_fault, ReadingFault::kUnknownSensor);
  EXPECT_EQ(r.count(ReadingFault::kUnknownSensor), 1u);
  EXPECT_EQ(r.count(ReadingFault::kNonFiniteCpm), 1u);
  EXPECT_EQ(r.count(ReadingFault::kNegativeCpm), 1u);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(loc.iterations(), 3u);

  // The surviving readings produce exactly the state of a clean feed of the
  // well-formed subsequence — malformed readings are skips, not no-op
  // iterations.
  MultiSourceLocalizer clean(f.env, f.sensors, f.cfg, 7);
  const std::vector<Measurement> good{{0, 12.0}, {2, 8.0}, {4, 10.0}};
  const BatchIngestResult rc = clean.try_process_all(good);
  EXPECT_TRUE(rc.clean());
  ASSERT_EQ(loc.filter().size(), clean.filter().size());
  for (std::size_t i = 0; i < loc.filter().size(); ++i) {
    ASSERT_EQ(loc.filter().weights()[i], clean.filter().weights()[i]) << i;
    ASSERT_EQ(loc.filter().positions()[i], clean.filter().positions()[i]) << i;
  }
}

TEST(Localizer, TryProcessAllCallbackSeesEveryReadingInOrder) {
  Fixture f;
  MultiSourceLocalizer loc(f.env, f.sensors, f.cfg, 7);
  const std::vector<Measurement> batch{{0, 12.0}, {999, 5.0}, {1, 9.0}};
  std::vector<std::pair<std::size_t, ReadingFault>> seen;
  loc.try_process_all(batch, [&](std::size_t i, ReadingFault fault) {
    seen.emplace_back(i, fault);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::size_t, ReadingFault>{0, ReadingFault::kNone}));
  EXPECT_EQ(seen[1], (std::pair<std::size_t, ReadingFault>{1, ReadingFault::kUnknownSensor}));
  EXPECT_EQ(seen[2], (std::pair<std::size_t, ReadingFault>{2, ReadingFault::kNone}));
}

}  // namespace
}  // namespace radloc

// Adaptive particle budget: KLD controller, ESS-gated resampling, and
// FusionParticleFilter::resize_budget (DESIGN.md §5.9).
//
// Contracts under test:
//   * the fixed-budget default is bit-identical to the seed (FNV-1a
//     fingerprint of the full particle state after a canonical stream,
//     captured from the unmodified seed build under the scalar tier);
//   * FilterConfig budget fields are validated at construction;
//   * the KLD bound is monotone in the bin count and the epsilon;
//   * the controller shrinks concentrated stable posteriors to the floor,
//     grows spread ones immediately, grows on persistent mode churn and on
//     ESS collapse, holds inside the hysteresis band — and only invokes the
//     (expensive) mode callback when a persistent shrink is on the table;
//   * resize_budget re-represents the posterior at the new count with
//     uniform weights and aligned storage, and is a no-op (no RNG) at the
//     current count;
//   * the ESS gate at the default threshold (1.0) never skips a resample;
//     below 1.0 it skips deterministically;
//   * adaptive runs are bit-identical across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "radloc/adaptive/budget_controller.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/filter/particle_filter.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/service/session_manager.hpp"
#include "radloc/simd/aligned.hpp"
#include "radloc/simd/simd.hpp"

namespace radloc {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Seed bit-identity pin

TEST(BudgetSeedIdentity, DefaultConfigMatchesSeedGolden) {
  // Fingerprint captured from the seed build BEFORE this subsystem existed:
  // same scenario, stream, seeds, and scalar tier. Any change to the default
  // (fixed-budget, gate-off) per-reading path shows up here.
  simd::force_tier(simd::Tier::kScalar);
  const Scenario sc = make_scenario_a(10.0);
  FilterConfig cfg;  // defaults — the seed's fixed-budget path
  cfg.num_particles = 600;
  cfg.fusion_range = sc.recommended_fusion_range;
  FusionParticleFilter filter(sc.env, sc.sensors, cfg, Rng(42));
  MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
  Rng sim_rng(7);
  for (int step = 0; step < 3; ++step) {
    for (const Measurement& m : sim.sample_time_step(sim_rng)) (void)filter.process(m);
  }
  std::uint64_t h = 1469598103934665603ULL;
  const auto pos = filter.positions();
  const auto str = filter.strengths();
  const auto w = filter.weights();
  h = fnv1a(h, pos.data(), pos.size() * sizeof(Point2));
  h = fnv1a(h, str.data(), str.size_bytes());
  h = fnv1a(h, w.data(), w.size_bytes());
  simd::reset_tier();
  EXPECT_EQ(h, 0xbf58403a314a0840ULL) << "default filter path drifted from the seed";
  EXPECT_EQ(filter.resamples_skipped(), 0u);
}

// ---------------------------------------------------------------------------
// Config validation

TEST(BudgetConfigValidation, RejectsInvalidBudgetFieldsAtConstruction) {
  const Environment env(make_area(50, 50));
  auto make = [&](auto mutate) {
    FilterConfig cfg;
    cfg.num_particles = 100;
    mutate(cfg);
    FusionParticleFilter f(env, {}, cfg, Rng(1));
  };
  EXPECT_THROW(make([](FilterConfig& c) { c.ess_resample_threshold = 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) {
                 c.ess_resample_threshold = std::numeric_limits<double>::infinity();
               }),
               std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.min_particles = 0; }), std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.max_particles = 0; }), std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) {
                 c.min_particles = 200;
                 c.max_particles = 100;
               }),
               std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.kld_epsilon = 0.0; }), std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) {
                 c.kld_epsilon = std::numeric_limits<double>::quiet_NaN();
               }),
               std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.kld_quantile = -1.0; }), std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.budget_bin_size = -2.0; }), std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.budget_adapt_interval = 0; }),
               std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.budget_stability_window = 0; }),
               std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.budget_mode_displacement = -1.0; }),
               std::invalid_argument);
  EXPECT_THROW(make([](FilterConfig& c) { c.budget_ess_floor = 1.5; }), std::invalid_argument);
  // Validation is unconditional, but the start-inside-bounds rule only
  // applies once the controller is actually on.
  EXPECT_NO_THROW(make([](FilterConfig& c) {
    c.min_particles = 500;
    c.max_particles = 4000;
  }));
  EXPECT_THROW(make([](FilterConfig& c) {
                 c.adaptive_budget = true;
                 c.min_particles = 500;
                 c.max_particles = 4000;  // num_particles = 100 < min
               }),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// KLD bound

TEST(BudgetKld, SampleSizeMonotoneInBinsAndEpsilon) {
  EXPECT_EQ(BudgetController::kld_sample_size(0, 0.05, 2.33), 1u);
  EXPECT_EQ(BudgetController::kld_sample_size(1, 0.05, 2.33), 1u);
  std::size_t prev = 0;
  for (const std::size_t k : {2u, 5u, 20u, 100u, 500u}) {
    const std::size_t n = BudgetController::kld_sample_size(k, 0.05, 2.33);
    EXPECT_GT(n, prev) << "k=" << k;
    prev = n;
  }
  // Looser epsilon and lower confidence both need fewer particles.
  EXPECT_LT(BudgetController::kld_sample_size(100, 0.10, 2.33),
            BudgetController::kld_sample_size(100, 0.05, 2.33));
  EXPECT_LT(BudgetController::kld_sample_size(100, 0.05, 1.28),
            BudgetController::kld_sample_size(100, 0.05, 2.33));
}

// ---------------------------------------------------------------------------
// Controller policy (synthetic clouds, no filter)

BudgetControllerConfig controller_cfg() {
  BudgetControllerConfig cfg;
  cfg.min_particles = 500;
  cfg.max_particles = 4000;
  cfg.bin_size = 7.0;
  cfg.stability_window = 2;
  return cfg;
}

/// Two tight clusters: a converged easy posterior (few occupied bins).
void make_concentrated_cloud(std::vector<Point2>& positions, std::vector<double>& weights) {
  Rng rng(5);
  for (int c = 0; c < 2; ++c) {
    const Point2 center = c == 0 ? Point2{20.0, 20.0} : Point2{80.0, 80.0};
    for (int i = 0; i < 1000; ++i) {
      positions.push_back({center.x + normal(rng, 0.0, 1.0), center.y + normal(rng, 0.0, 1.0)});
      weights.push_back(1.0 / 2000.0);
    }
  }
}

std::vector<SourceEstimate> stable_modes() {
  return {{{20.0, 20.0}, 10.0, 0.5}, {{80.0, 80.0}, 10.0, 0.5}};
}

TEST(BudgetController, ShrinksConcentratedStableCloudToTheFloor) {
  const AreaBounds bounds = make_area(100, 100);
  BudgetController ctl(bounds, controller_cfg());
  std::vector<Point2> positions;
  std::vector<double> weights;
  make_concentrated_cloud(positions, weights);

  std::size_t current = 2000;
  for (int run = 0; run < 8; ++run) {
    const std::size_t next =
        ctl.recommend(positions, weights, 1.0, [] { return stable_modes(); }, current);
    EXPECT_LE(next, current) << "run " << run;  // never grows on this input
    current = next;
  }
  EXPECT_EQ(current, 500u) << "stable concentrated posterior must pin the floor";
  EXPECT_GE(ctl.diagnostics().shrink_events, 2u);  // rate-limited, not one jump
  EXPECT_EQ(ctl.diagnostics().grow_events, 0u);
}

TEST(BudgetController, GrowsSpreadCloudWithoutInvokingModeCallback) {
  const AreaBounds bounds = make_area(100, 100);
  BudgetController ctl(bounds, controller_cfg());
  // Uniform cloud: every bin occupied, KLD target far above current.
  Rng rng(6);
  std::vector<Point2> positions;
  std::vector<double> weights;
  for (int i = 0; i < 4000; ++i) {
    positions.push_back(uniform_point(rng, bounds));
    weights.push_back(1.0 / 4000.0);
  }
  int callback_invocations = 0;
  const std::size_t next = ctl.recommend(
      positions, weights, 1.0,
      [&] {
        ++callback_invocations;
        return stable_modes();
      },
      500);
  EXPECT_GE(next, 2000u) << "spread posterior must grow toward the KLD target";
  EXPECT_EQ(callback_invocations, 0) << "growth must not pay for mean-shift";
  EXPECT_EQ(ctl.diagnostics().grow_events, 1u);
}

TEST(BudgetController, PersistentModeChurnGrowsInsteadOfShrinking) {
  const AreaBounds bounds = make_area(100, 100);
  BudgetController ctl(bounds, controller_cfg());
  std::vector<Point2> positions;
  std::vector<double> weights;
  make_concentrated_cloud(positions, weights);

  // Strong modes teleport every run: never stable, so despite constant
  // shrink pressure the budget must first hold, then grow.
  int run = 0;
  std::size_t current = 2000;
  std::size_t peak = current;
  for (; run < 8; ++run) {
    const double jump = 30.0 * static_cast<double>(run % 3);
    current = ctl.recommend(
        positions, weights, 1.0,
        [&] {
          return std::vector<SourceEstimate>{{{5.0 + jump, 50.0}, 10.0, 0.5},
                                             {{95.0 - jump, 50.0}, 10.0, 0.5}};
        },
        current);
    peak = std::max(peak, current);
  }
  EXPECT_GT(peak, 2000u) << "persistent churn must grow the budget";
  EXPECT_EQ(ctl.diagnostics().shrink_events, 0u);
}

TEST(BudgetController, EssCollapseGrowsRegardlessOfConcentration) {
  const AreaBounds bounds = make_area(100, 100);
  BudgetController ctl(bounds, controller_cfg());
  std::vector<Point2> positions;
  std::vector<double> weights;
  make_concentrated_cloud(positions, weights);
  int callback_invocations = 0;
  const std::size_t next = ctl.recommend(
      positions, weights, /*ess_fraction=*/0.1,
      [&] {
        ++callback_invocations;
        return stable_modes();
      },
      2000);
  EXPECT_EQ(next, 3000u) << "ESS alarm grows 1.5x toward the cap";
  EXPECT_EQ(callback_invocations, 0);
}

TEST(BudgetController, GrowthInsideTheHysteresisBandHolds) {
  const AreaBounds bounds = make_area(100, 100);
  auto cfg = controller_cfg();
  cfg.min_particles = 100;  // keep the floor well below the KLD target
  BudgetController ctl(bounds, cfg);
  // Exactly 10 occupied bins (distinct 7-unit cells, one cluster each).
  std::vector<Point2> positions;
  std::vector<double> weights;
  for (int b = 0; b < 10; ++b) {
    for (int i = 0; i < 100; ++i) {
      positions.push_back({3.5 + 7.0 * static_cast<double>(b), 3.5});
      weights.push_back(1.0 / 1000.0);
    }
  }
  const std::size_t kld = BudgetController::kld_sample_size(10, cfg.kld_epsilon,
                                                            cfg.kld_quantile);
  int callback_invocations = 0;
  // Current a few percent BELOW the KLD target: the proposed growth sits
  // inside the 12.5% band and must be suppressed on every run, without ever
  // paying for the mean-shift callback.
  const std::size_t current = kld - kld / 20;
  for (int run = 0; run < 4; ++run) {
    const std::size_t next = ctl.recommend(
        positions, weights, 1.0,
        [&] {
          ++callback_invocations;
          return stable_modes();
        },
        current);
    EXPECT_EQ(next, current) << "run " << run;
  }
  EXPECT_EQ(callback_invocations, 0) << "band holds must not pay for mean-shift";
  EXPECT_EQ(ctl.diagnostics().occupied_bins, 10u);
  EXPECT_EQ(ctl.diagnostics().kld_target, kld);
  EXPECT_EQ(ctl.diagnostics().grow_events, 0u);
}

TEST(BudgetController, InBandShrinkDescendsFreelyWithoutModeCallback) {
  // A shrink within the 12.5% band is applied immediately — each step is
  // small and cheap, and the free descent is what lets the occupancy
  // feedback (fewer particles -> fewer occupied bins) walk an easy
  // scenario's budget down to its KLD equilibrium. It must not pay for the
  // mean-shift callback.
  const AreaBounds bounds = make_area(100, 100);
  auto cfg = controller_cfg();
  cfg.min_particles = 100;  // keep the floor well below the KLD target
  BudgetController ctl(bounds, cfg);
  std::vector<Point2> positions;
  std::vector<double> weights;
  for (int b = 0; b < 10; ++b) {
    for (int i = 0; i < 100; ++i) {
      positions.push_back({3.5 + 7.0 * static_cast<double>(b), 3.5});
      weights.push_back(1.0 / 1000.0);
    }
  }
  const std::size_t kld = BudgetController::kld_sample_size(10, cfg.kld_epsilon,
                                                            cfg.kld_quantile);
  int callback_invocations = 0;
  const std::size_t next = ctl.recommend(
      positions, weights, 1.0,
      [&] {
        ++callback_invocations;
        return stable_modes();
      },
      kld + kld / 10);
  EXPECT_EQ(next, kld) << "in-band shrink must descend on the first proposal";
  EXPECT_EQ(callback_invocations, 0);
  EXPECT_EQ(ctl.diagnostics().shrink_events, 1u);
}

TEST(BudgetController, IsolatedLargeShrinkProposalHoldsWithoutModeCallback) {
  // A single run proposing a larger-than-band shrink is occupancy noise
  // until the pressure persists: the first proposal must hold AND must not
  // invoke mean-shift.
  const AreaBounds bounds = make_area(100, 100);
  BudgetController ctl(bounds, controller_cfg());
  std::vector<Point2> positions;
  std::vector<double> weights;
  make_concentrated_cloud(positions, weights);
  int callback_invocations = 0;
  const std::size_t next = ctl.recommend(
      positions, weights, 1.0,
      [&] {
        ++callback_invocations;
        return stable_modes();
      },
      2000);
  EXPECT_EQ(next, 2000u);
  EXPECT_EQ(callback_invocations, 0);
}

// ---------------------------------------------------------------------------
// resize_budget

FusionParticleFilter make_adaptive_filter(const Environment& env,
                                          const std::vector<Sensor>& sensors, std::size_t np,
                                          std::uint64_t seed) {
  FilterConfig cfg;
  cfg.num_particles = np;
  cfg.adaptive_budget = true;
  cfg.min_particles = 50;
  cfg.max_particles = 4000;
  return FusionParticleFilter(env, sensors, cfg, Rng(seed));
}

TEST(ResizeBudget, ShrinkAndGrowKeepInvariants) {
  const Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);
  auto filter = make_adaptive_filter(env, sensors, 1000, 3);

  for (const std::size_t count : {300UL, 1500UL, 77UL}) {
    EXPECT_EQ(filter.resize_budget(count), count);
    ASSERT_EQ(filter.size(), count);
    ASSERT_EQ(filter.positions().size(), count);
    ASSERT_EQ(filter.strengths().size(), count);
    EXPECT_TRUE(simd::is_vector_aligned(filter.positions().data()));
    EXPECT_TRUE(simd::is_vector_aligned(filter.weights().data()));
    const double uniform_w = 1.0 / static_cast<double>(count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(filter.weights()[i], uniform_w);
      EXPECT_TRUE(env.bounds().contains(filter.positions()[i])) << i;
    }
  }
  EXPECT_THROW((void)filter.resize_budget(0), std::invalid_argument);
}

TEST(ResizeBudget, SameCountIsANoOpWithoutConsumingRng) {
  const Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);
  auto a = make_adaptive_filter(env, sensors, 800, 9);
  auto b = make_adaptive_filter(env, sensors, 800, 9);
  EXPECT_EQ(a.resize_budget(800), 800u);  // no-op on a only

  MeasurementSimulator sim(env, sensors, {{{30, 60}, 40.0}});
  Rng noise(10);
  std::vector<Measurement> stream;
  for (int step = 0; step < 2; ++step) {
    for (const auto& m : sim.sample_time_step(noise)) stream.push_back(m);
  }
  for (const auto& m : stream) {
    (void)a.process(m);
    (void)b.process(m);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.weights()[i], b.weights()[i]) << i;
    ASSERT_EQ(a.positions()[i], b.positions()[i]) << i;
  }
}

TEST(ResizeBudget, OddBudgetsSurviveEveryKernelTier) {
  // Odd and n % 4 != 0 budgets exercise the SIMD kernels' padded-tail
  // remainder path at every runtime tier the host supports. The filter must
  // stay well-formed (normalized finite weights, in-bounds positions)
  // through resize + process at each size.
  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  if (simd::detected_tier() >= simd::Tier::kSse2) tiers.push_back(simd::Tier::kSse2);
  if (simd::detected_tier() >= simd::Tier::kAvx2) tiers.push_back(simd::Tier::kAvx2);

  const Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 4, 4);
  set_background(sensors, 5.0);
  MeasurementSimulator sim(env, sensors, {{{30, 60}, 40.0}});

  for (const simd::Tier tier : tiers) {
    simd::force_tier(tier);
    FilterConfig cfg;
    cfg.num_particles = 1021;
    cfg.adaptive_budget = true;
    cfg.min_particles = 1;
    cfg.max_particles = 2048;
    FusionParticleFilter filter(env, sensors, cfg, Rng(21));
    Rng noise(22);
    for (const std::size_t count : {1UL, 3UL, 257UL, 1021UL}) {
      ASSERT_EQ(filter.resize_budget(count), count) << "tier " << static_cast<int>(tier);
      for (const auto& m : sim.sample_time_step(noise)) (void)filter.process(m);
      ASSERT_EQ(filter.size(), count);
      double sum = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_TRUE(std::isfinite(filter.weights()[i]));
        ASSERT_GE(filter.weights()[i], 0.0);
        sum += filter.weights()[i];
        ASSERT_TRUE(env.bounds().contains(filter.positions()[i]));
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "tier " << static_cast<int>(tier) << " count " << count;
    }
    simd::reset_tier();
  }
}

// ---------------------------------------------------------------------------
// ESS-gated resampling

TEST(EssGate, DefaultThresholdNeverSkipsBelowOneAlwaysDeterministic) {
  const Scenario sc = make_scenario_a(10.0);
  auto run = [&](double threshold) {
    FilterConfig cfg;
    cfg.num_particles = 600;
    cfg.fusion_range = sc.recommended_fusion_range;
    cfg.ess_resample_threshold = threshold;
    FusionParticleFilter filter(sc.env, sc.sensors, cfg, Rng(42));
    MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
    Rng sim_rng(7);
    for (int step = 0; step < 3; ++step) {
      for (const Measurement& m : sim.sample_time_step(sim_rng)) (void)filter.process(m);
    }
    return filter;
  };

  const auto gated_off = run(1.0);
  EXPECT_EQ(gated_off.resamples_skipped(), 0u);
  EXPECT_GT(gated_off.resamples_performed(), 0u);

  const auto gated = run(0.5);
  EXPECT_GT(gated.resamples_skipped(), 0u) << "a 0.5 gate must skip some resamples";
  const auto gated_again = run(0.5);
  ASSERT_EQ(gated.size(), gated_again.size());
  for (std::size_t i = 0; i < gated.size(); ++i) {
    ASSERT_EQ(gated.weights()[i], gated_again.weights()[i]) << i;
    ASSERT_EQ(gated.positions()[i], gated_again.positions()[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Localizer integration

LocalizerConfig adaptive_localizer_cfg(const Scenario& sc) {
  LocalizerConfig cfg;
  cfg.filter.num_particles = 1200;
  cfg.filter.fusion_range = sc.recommended_fusion_range;
  cfg.filter.adaptive_budget = true;
  cfg.filter.min_particles = 400;
  cfg.filter.max_particles = 1200;
  cfg.filter.ess_resample_threshold = 0.5;
  return cfg;
}

TEST(AdaptiveBudgetIntegration, EasyScenarioShrinksAndReportsDiagnostics) {
  const Scenario sc = make_scenario_a(10.0);
  MultiSourceLocalizer loc(sc.env, sc.sensors, adaptive_localizer_cfg(sc), 77);
  MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
  Rng noise(78);
  for (int t = 0; t < 12; ++t) {
    for (const Measurement& m : sim.sample_time_step(noise)) loc.process(m);
  }
  const BudgetDiagnostics d = loc.budget_diagnostics();
  EXPECT_LT(loc.filter().size(), 1200u) << "easy posterior must shrink the budget";
  EXPECT_EQ(d.current_budget, loc.filter().size());
  EXPECT_GT(d.controller_runs, 0u);
  EXPECT_GE(d.shrink_events, 1u);
  EXPECT_GT(d.occupied_bins, 0u);
  EXPECT_GE(loc.filter().size(), 400u);
}

TEST(AdaptiveBudgetIntegration, BitIdenticalAcrossThreadCounts) {
  const Scenario sc = make_scenario_a(10.0);
  MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
  Rng noise(91);
  std::vector<Measurement> stream;
  for (int t = 0; t < 8; ++t) {
    for (const Measurement& m : sim.sample_time_step(noise)) stream.push_back(m);
  }

  // MultiSourceLocalizer owns a ThreadPool and is not movable: snapshot the
  // final particle state per thread count instead of keeping the localizers.
  struct Snapshot {
    std::size_t budget;
    std::uint64_t controller_runs;
    std::vector<Point2> positions;
    std::vector<double> strengths;
    std::vector<double> weights;
  };
  auto run = [&](std::size_t threads) {
    LocalizerConfig cfg = adaptive_localizer_cfg(sc);
    cfg.num_threads = threads;
    MultiSourceLocalizer loc(sc.env, sc.sensors, cfg, 92);
    for (const Measurement& m : stream) loc.process(m);
    const auto& f = loc.filter();
    return Snapshot{f.size(), loc.budget_diagnostics().controller_runs,
                    {f.positions().begin(), f.positions().end()},
                    {f.strengths().begin(), f.strengths().end()},
                    {f.weights().begin(), f.weights().end()}};
  };

  const Snapshot base = run(1);
  for (const std::size_t threads : {4UL, 8UL}) {
    const Snapshot other = run(threads);
    ASSERT_EQ(other.budget, base.budget) << "threads diverged the budget";
    ASSERT_EQ(other.controller_runs, base.controller_runs);
    for (std::size_t i = 0; i < base.budget; ++i) {
      ASSERT_EQ(other.weights[i], base.weights[i]) << "threads=" << threads << " i=" << i;
      ASSERT_EQ(other.positions[i], base.positions[i]) << "threads=" << threads << " i=" << i;
      ASSERT_EQ(other.strengths[i], base.strengths[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(AdaptiveBudgetIntegration, SessionStatsSurfaceBudgetAndEss) {
  const Scenario sc = make_scenario_a(10.0);
  SessionConfig cfg;
  cfg.localizer = adaptive_localizer_cfg(sc);
  ThreadPool pool(2, 2);
  SessionManager mgr(pool);
  const auto id = mgr.open(sc.env, sc.sensors, cfg, 7);
  EXPECT_EQ(mgr.stats(id).current_budget, 1200u) << "pre-drain stats report the start budget";

  MeasurementSimulator sim(sc.env, sc.sensors, sc.sources);
  Rng noise(8);
  for (int t = 0; t < 20; ++t) {
    for (const Measurement& m : sim.sample_time_step(noise)) {
      ASSERT_EQ(mgr.ingest(id, SessionReading{static_cast<double>(t), m}),
                IngestStatus::kQueued);
    }
    (void)mgr.drain_all();
  }
  const SessionStats st = mgr.stats(id);
  EXPECT_LT(st.current_budget, 1200u) << "drained adaptive session must have shrunk";
  EXPECT_GE(st.current_budget, 400u);
  EXPECT_GT(st.ess_fraction, 0.0);
  EXPECT_LE(st.ess_fraction, 1.0 + 1e-9);
}

}  // namespace
}  // namespace radloc

// Tests for sensor fault detection and efficiency calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "radloc/core/fault_detector.hpp"
#include "radloc/radiation/calibration.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

struct World {
  Environment env{make_area(100, 100)};
  std::vector<Sensor> sensors;

  World() {
    sensors = place_grid(env.bounds(), 4, 4);
    set_background(sensors, 5.0);
  }
};

// ------------------------------------------------------------ fault detector

TEST(FaultDetector, HealthySensorsPass) {
  World w;
  const std::vector<Source> truth{{{50, 50}, 50.0}};
  MeasurementSimulator sim(w.env, w.sensors, truth);
  FaultDetector detector(w.env, w.sensors);
  Rng noise(1);
  for (int t = 0; t < 20; ++t) {
    for (const auto& m : sim.sample_time_step(noise)) detector.observe(m);
  }
  const std::vector<SourceEstimate> estimates{{{50, 50}, 50.0, 1.0}};
  EXPECT_TRUE(detector.suspects(estimates).empty());
  for (const auto& h : detector.assess(estimates)) {
    EXPECT_EQ(h.readings, 20u);
    EXPECT_LT(std::abs(h.z_score), 4.0);
  }
}

TEST(FaultDetector, StuckSensorFlagged) {
  World w;
  const std::vector<Source> truth{{{50, 50}, 50.0}};
  MeasurementSimulator sim(w.env, w.sensors, truth);
  FaultDetector detector(w.env, w.sensors);
  Rng noise(2);
  for (int t = 0; t < 20; ++t) {
    for (auto m : sim.sample_time_step(noise)) {
      if (m.sensor == 5) m.cpm = 0.0;  // dead counter reporting zeros
      detector.observe(m);
    }
  }
  const std::vector<SourceEstimate> estimates{{{50, 50}, 50.0, 1.0}};
  const auto suspects = detector.suspects(estimates);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 5u);
}

TEST(FaultDetector, MiscalibratedSensorFlagged) {
  World w;
  const std::vector<Source> truth{{{50, 50}, 50.0}};
  MeasurementSimulator sim(w.env, w.sensors, truth);
  FaultDetector detector(w.env, w.sensors);
  Rng noise(3);
  for (int t = 0; t < 30; ++t) {
    for (auto m : sim.sample_time_step(noise)) {
      if (m.sensor == 9) m.cpm *= 3.0;  // efficiency drifted 3x high
      detector.observe(m);
    }
  }
  const std::vector<SourceEstimate> estimates{{{50, 50}, 50.0, 1.0}};
  const auto suspects = detector.suspects(estimates);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 9u);
}

TEST(FaultDetector, NearSourceExclusionSuppressesModelError) {
  // A sensor right at the source with a slightly-off estimate would be
  // flagged by model error alone; the exclusion radius protects it.
  World w;
  const std::vector<Source> truth{{{25, 33.3333}, 80.0}};  // near sensor 5 (33.3, 33.3)
  MeasurementSimulator sim(w.env, w.sensors, truth);
  Rng noise(6);

  FaultDetectorConfig strict;
  FaultDetectorConfig tolerant;
  tolerant.near_source_exclusion = 10.0;
  FaultDetector d_strict(w.env, w.sensors, strict);
  FaultDetector d_tolerant(w.env, w.sensors, tolerant);
  for (int t = 0; t < 30; ++t) {
    for (const auto& m : sim.sample_time_step(noise)) {
      d_strict.observe(m);
      d_tolerant.observe(m);
    }
  }
  // Estimate offset 2 units toward sensor 5: big rate error at that sensor
  // (1/(1+r^2) is steep there), negligible error at distant sensors.
  const std::vector<SourceEstimate> biased{{{27, 33.3333}, 80.0, 1.0}};
  EXPECT_FALSE(d_strict.suspects(biased).empty());
  EXPECT_TRUE(d_tolerant.suspects(biased).empty());
}

TEST(FaultDetector, NeedsMinimumReadings) {
  World w;
  FaultDetector detector(w.env, w.sensors);
  detector.observe({5, 1e6});  // absurd, but only one reading
  EXPECT_TRUE(detector.suspects({}).empty());
}

TEST(FaultDetector, ResetClearsHistory) {
  World w;
  FaultDetector detector(w.env, w.sensors);
  for (int i = 0; i < 10; ++i) detector.observe({5, 1e6});
  EXPECT_FALSE(detector.suspects({}).empty());
  detector.reset();
  EXPECT_TRUE(detector.suspects({}).empty());
  EXPECT_EQ(detector.assess({})[5].readings, 0u);
}

TEST(FaultDetector, Validation) {
  World w;
  FaultDetector detector(w.env, w.sensors);
  EXPECT_THROW(detector.observe({99, 5.0}), std::invalid_argument);
  EXPECT_THROW(detector.observe({0, -5.0}), std::invalid_argument);
  EXPECT_THROW(FaultDetector(w.env, {}), std::invalid_argument);
}

// -------------------------------------------------------------- calibration

TEST(Calibration, RecoversBackgroundAndEfficiency) {
  World w;
  // Ground truth: heterogeneous sensors.
  auto true_sensors = w.sensors;
  Rng rng(4);
  for (auto& s : true_sensors) {
    s.response.efficiency = kDefaultEfficiency * (0.5 + 0.1 * s.id);
    s.response.background_cpm = 4.0 + 0.25 * s.id;
  }

  // Session 1: background only. Session 2+3: strong check source at two
  // known positions.
  std::vector<CalibrationSession> sessions(3);
  {
    MeasurementSimulator sim(w.env, true_sensors, {});
    for (int t = 0; t < 300; ++t) {
      auto batch = sim.sample_time_step(rng);
      sessions[0].readings.insert(sessions[0].readings.end(), batch.begin(), batch.end());
    }
  }
  const Source check1{{30, 30}, 500.0};
  const Source check2{{70, 70}, 500.0};
  sessions[1].sources = {check1};
  sessions[2].sources = {check2};
  for (int si = 1; si <= 2; ++si) {
    MeasurementSimulator sim(w.env, true_sensors, sessions[si].sources);
    for (int t = 0; t < 300; ++t) {
      auto batch = sim.sample_time_step(rng);
      sessions[si].readings.insert(sessions[si].readings.end(), batch.begin(), batch.end());
    }
  }

  const auto result = calibrate_sensors(w.env, w.sensors, sessions);
  EXPECT_EQ(result.sensors_calibrated, w.sensors.size());
  for (const auto& s : true_sensors) {
    EXPECT_NEAR(result.background_cpm[s.id], s.response.background_cpm,
                0.12 * s.response.background_cpm + 0.3)
        << "sensor " << s.id;
    EXPECT_NEAR(result.efficiency[s.id], s.response.efficiency,
                0.25 * s.response.efficiency)
        << "sensor " << s.id;
  }

  // Applying the calibration makes the configured sensors match the truth.
  auto calibrated = w.sensors;
  apply_calibration(calibrated, result);
  for (const auto& s : calibrated) {
    EXPECT_NEAR(s.response.efficiency, true_sensors[s.id].response.efficiency,
                0.25 * true_sensors[s.id].response.efficiency);
  }
}

TEST(Calibration, UnobservedSensorsStayNaN) {
  World w;
  std::vector<CalibrationSession> sessions(1);
  sessions[0].readings = {{0, 5.0}, {0, 6.0}};  // only sensor 0, background
  const auto result = calibrate_sensors(w.env, w.sensors, sessions);
  EXPECT_FALSE(std::isnan(result.background_cpm[0]));
  EXPECT_TRUE(std::isnan(result.background_cpm[1]));
  EXPECT_TRUE(std::isnan(result.efficiency[0]));  // no check-source session
  EXPECT_EQ(result.sensors_calibrated, 0u);

  // apply_calibration must only touch calibrated fields.
  auto sensors = w.sensors;
  const double old_eff = sensors[1].response.efficiency;
  apply_calibration(sensors, result);
  EXPECT_DOUBLE_EQ(sensors[1].response.efficiency, old_eff);
  EXPECT_DOUBLE_EQ(sensors[0].response.background_cpm, 5.5);
}

TEST(Calibration, ObstaclesEnterTheModel) {
  // A thick wall between the check source and half the sensors: ignoring it
  // would bias their efficiency low; modeling it (via env) must not.
  Environment env(make_area(100, 100),
                  {Obstacle(make_rect(48, 0, 52, 100), 0.5)});
  auto sensors = place_grid(env.bounds(), 2, 2);
  set_background(sensors, 5.0);

  Rng rng(5);
  CalibrationSession bg_session;
  CalibrationSession src_session;
  src_session.sources = {Source{{25, 50}, 800.0}};
  MeasurementSimulator bg_sim(env, sensors, {});
  MeasurementSimulator src_sim(env, sensors, src_session.sources);
  for (int t = 0; t < 400; ++t) {
    auto b = bg_sim.sample_time_step(rng);
    bg_session.readings.insert(bg_session.readings.end(), b.begin(), b.end());
    auto s = src_sim.sample_time_step(rng);
    src_session.readings.insert(src_session.readings.end(), s.begin(), s.end());
  }
  const std::vector<CalibrationSession> sessions{bg_session, src_session};
  const auto result = calibrate_sensors(env, sensors, sessions);
  for (const auto& s : sensors) {
    EXPECT_NEAR(result.efficiency[s.id], kDefaultEfficiency, 0.3 * kDefaultEfficiency)
        << "sensor " << s.id;
  }
}

TEST(Calibration, Validation) {
  Environment env(make_area(10, 10));
  EXPECT_THROW((void)calibrate_sensors(env, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace radloc

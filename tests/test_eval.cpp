#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "radloc/eval/experiment.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"

namespace radloc {
namespace {

// ----------------------------------------------------------------- matching

TEST(Matching, PerfectMatch) {
  const std::vector<Source> truth{{{10, 10}, 5.0}, {{90, 90}, 5.0}};
  const std::vector<SourceEstimate> est{{{11, 10}, 5.0, 0.5}, {{90, 91}, 5.0, 0.5}};
  const auto r = match_estimates(truth, est);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_NEAR(*r.error[0], 1.0, 1e-12);
  EXPECT_NEAR(*r.error[1], 1.0, 1e-12);
  EXPECT_NEAR(r.mean_error(), 1.0, 1e-12);
}

TEST(Matching, GateProducesFalseNegative) {
  const std::vector<Source> truth{{{10, 10}, 5.0}};
  const std::vector<SourceEstimate> est{{{80, 80}, 5.0, 1.0}};
  const auto r = match_estimates(truth, est, 40.0);
  EXPECT_EQ(r.false_negatives, 1u);
  EXPECT_EQ(r.false_positives, 1u);
  EXPECT_FALSE(r.error[0].has_value());
}

TEST(Matching, OneEstimateCannotMatchTwoSources) {
  // "each estimate must estimate a single source only" (Sec. VI).
  const std::vector<Source> truth{{{50, 50}, 5.0}, {{55, 50}, 5.0}};
  const std::vector<SourceEstimate> est{{{52, 50}, 5.0, 1.0}};
  const auto r = match_estimates(truth, est);
  EXPECT_EQ(r.false_negatives, 1u);
  EXPECT_EQ(r.false_positives, 0u);
}

TEST(Matching, GreedyPicksGloballyClosestFirst) {
  // est0 is near both sources; greedy assigns it to the closer one and
  // est1 takes the other.
  const std::vector<Source> truth{{{50, 50}, 5.0}, {{60, 50}, 5.0}};
  const std::vector<SourceEstimate> est{{{59, 50}, 5.0, 1.0}, {{45, 50}, 5.0, 1.0}};
  const auto r = match_estimates(truth, est);
  EXPECT_EQ(*r.matched_estimate[1], 0u);  // source (60,50) <- est (59,50), d=1
  EXPECT_EQ(*r.matched_estimate[0], 1u);  // source (50,50) <- est (45,50), d=5
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_EQ(r.false_negatives, 0u);
}

TEST(Matching, ExtraEstimatesAreFalsePositives) {
  const std::vector<Source> truth{{{50, 50}, 5.0}};
  const std::vector<SourceEstimate> est{
      {{50, 51}, 5.0, 1.0}, {{52, 50}, 5.0, 1.0}, {{20, 20}, 5.0, 1.0}};
  const auto r = match_estimates(truth, est);
  EXPECT_EQ(r.false_positives, 2u);
  EXPECT_EQ(r.false_negatives, 0u);
}

TEST(Matching, EmptyInputs) {
  const auto r1 = match_estimates({}, {});
  EXPECT_EQ(r1.false_positives, 0u);
  EXPECT_EQ(r1.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(r1.mean_error(), 0.0);

  const std::vector<Source> truth{{{1, 1}, 1.0}};
  const auto r2 = match_estimates(truth, {});
  EXPECT_EQ(r2.false_negatives, 1u);

  const std::vector<SourceEstimate> est{{{1, 1}, 1.0, 1.0}};
  const auto r3 = match_estimates({}, est);
  EXPECT_EQ(r3.false_positives, 1u);
}

// ---------------------------------------------------------------- scenarios

TEST(Scenarios, ScenarioAMatchesPaper) {
  const auto s = make_scenario_a(10.0, 5.0, false);
  EXPECT_EQ(s.sensors.size(), 36u);
  ASSERT_EQ(s.sources.size(), 2u);
  EXPECT_EQ(s.sources[0].pos, (Point2{47, 71}));
  EXPECT_EQ(s.sources[1].pos, (Point2{81, 42}));
  EXPECT_FALSE(s.env.has_obstacles());
  EXPECT_DOUBLE_EQ(s.sensors[0].response.background_cpm, 5.0);
  EXPECT_EQ(s.recommended_particles, 2000u);
}

TEST(Scenarios, ScenarioAObstacleVariant) {
  const auto s = make_scenario_a(10.0, 5.0, true);
  EXPECT_TRUE(s.env.has_obstacles());
  // The U-obstacle sits in the middle of the area.
  const auto& box = s.env.obstacles()[0].shape().aabb();
  EXPECT_GT(box.min.x, 20.0);
  EXPECT_LT(box.max.x, 80.0);

  const auto stripped = s.without_obstacles();
  EXPECT_FALSE(stripped.env.has_obstacles());
  EXPECT_EQ(stripped.sensors.size(), s.sensors.size());
  EXPECT_EQ(stripped.sources.size(), s.sources.size());
}

TEST(Scenarios, ScenarioA3ThreeSources) {
  const auto s = make_scenario_a3(4.0, 5.0);
  ASSERT_EQ(s.sources.size(), 3u);
  EXPECT_EQ(s.sources[0].pos, (Point2{87, 89}));
  EXPECT_EQ(s.sources[1].pos, (Point2{37, 14}));
  EXPECT_EQ(s.sources[2].pos, (Point2{55, 51}));
  for (const auto& src : s.sources) EXPECT_DOUBLE_EQ(src.strength, 4.0);
}

TEST(Scenarios, ScenarioBMatchesPaperShape) {
  const auto s = make_scenario_b();
  EXPECT_EQ(s.sensors.size(), 196u);
  EXPECT_EQ(s.sources.size(), 9u);
  EXPECT_EQ(s.env.obstacles().size(), 3u);
  EXPECT_EQ(s.recommended_particles, 15000u);
  EXPECT_FALSE(s.out_of_order_delivery);
  for (const auto& src : s.sources) {
    EXPECT_GE(src.strength, 10.0);
    EXPECT_LE(src.strength, 100.0);
    EXPECT_TRUE(s.env.bounds().contains(src.pos));
  }
}

TEST(Scenarios, ScenarioCPoissonPlacementAndOrder) {
  const auto s = make_scenario_c();
  EXPECT_EQ(s.sensors.size(), 195u);
  EXPECT_TRUE(s.out_of_order_delivery);
  EXPECT_EQ(s.sources.size(), 9u);
  // Deterministic placement for a fixed seed.
  const auto s2 = make_scenario_c();
  for (std::size_t i = 0; i < s.sensors.size(); ++i) {
    EXPECT_EQ(s.sensors[i].pos, s2.sensors[i].pos);
  }
}

TEST(Scenarios, ObstaclesNearTheDocumentedSources) {
  const auto s = make_scenario_b();
  auto min_dist_to_obstacle = [&](const Point2& p) {
    double best = 1e18;
    for (const auto& o : s.env.obstacles()) {
      // Distance to obstacle AABB as a proxy.
      const auto& b = o.shape().aabb();
      const double dx = std::max({b.min.x - p.x, 0.0, p.x - b.max.x});
      const double dy = std::max({b.min.y - p.y, 0.0, p.y - b.max.y});
      best = std::min(best, std::hypot(dx, dy));
    }
    return best;
  };
  // S2, S3, S5, S6, S7, S9 (indices 1,2,4,5,6,8) have an obstacle nearby.
  for (const std::size_t j : {1u, 2u, 4u, 5u, 6u, 8u}) {
    EXPECT_LT(min_dist_to_obstacle(s.sources[j].pos), 30.0) << "source " << j + 1;
  }
  // S1 and S4 (indices 0, 3) are in open space.
  for (const std::size_t j : {0u, 3u}) {
    EXPECT_GT(min_dist_to_obstacle(s.sources[j].pos), 50.0) << "source " << j + 1;
  }
}

// ------------------------------------------------------------------ report

TEST(Report, TableFormatsAndRejectsRaggedRows) {
  std::ostringstream os;
  const std::vector<std::string> header{"a", "b"};
  const std::vector<std::vector<double>> rows{{1.0, 2.0}, {3.0, std::nan("")}};
  print_table(os, header, rows);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);  // NaN renders as "-"

  const std::vector<std::vector<double>> ragged{{1.0}};
  std::ostringstream os2;
  EXPECT_THROW(print_table(os2, header, ragged), std::invalid_argument);
}

TEST(Report, CsvSeriesRoundTrips) {
  ExperimentResult r;
  r.error = {{1.5, std::nan("")}, {2.5, 3.5}};
  r.matched_frac = {{1.0, 0.0}, {1.0, 1.0}};
  r.false_positives = {0.5, 0.0};
  r.false_negatives = {1.0, 0.0};

  std::ostringstream os;
  const auto names = default_source_names(2);
  write_time_series_csv(os, r, names);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("step,Source1,Source2,false_positives,false_negatives"),
            std::string::npos);
  EXPECT_NE(csv.find("0,1.5,,0.5,1"), std::string::npos);
  EXPECT_NE(csv.find("1,2.5,3.5,0,0"), std::string::npos);
}

TEST(Report, DefaultSourceNames) {
  const auto names = default_source_names(3);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "Source1");
  EXPECT_EQ(names[2], "Source3");
}

TEST(ExperimentResultTest, AverageHelpersSkipNaN) {
  ExperimentResult r;
  r.error = {{std::nan(""), 4.0}, {2.0, 6.0}, {4.0, std::nan("")}};
  r.false_positives = {3.0, 1.0, 2.0};
  r.false_negatives = {1.0, 0.0, 0.0};

  EXPECT_DOUBLE_EQ(r.avg_error(0, 0, 3), 3.0);   // mean of {2, 4}
  EXPECT_DOUBLE_EQ(r.avg_error(1, 0, 3), 5.0);   // mean of {4, 6}
  EXPECT_DOUBLE_EQ(r.avg_error(0, 1, 2), 2.0);   // single step
  EXPECT_DOUBLE_EQ(r.avg_error_all(0, 3), 4.0);  // mean of {3, 5}
  EXPECT_DOUBLE_EQ(r.avg_false_positives(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(r.avg_false_negatives(0, 3), 1.0 / 3.0);
  EXPECT_TRUE(std::isnan(r.avg_error(0, 0, 0)));
}

// ------------------------------------------------ parallel determinism pin

// Bitwise comparison (NaN == NaN) — EXPECT_DOUBLE_EQ would accept ULP noise
// and reject NaN pairs; the contract here is exact equality.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.error.size(), b.error.size());
  for (std::size_t t = 0; t < a.error.size(); ++t) {
    ASSERT_EQ(a.error[t].size(), b.error[t].size());
    for (std::size_t j = 0; j < a.error[t].size(); ++j) {
      EXPECT_TRUE(same_bits(a.error[t][j], b.error[t][j])) << "error[" << t << "][" << j << "]";
      EXPECT_TRUE(same_bits(a.matched_frac[t][j], b.matched_frac[t][j]))
          << "matched_frac[" << t << "][" << j << "]";
    }
    EXPECT_TRUE(same_bits(a.false_positives[t], b.false_positives[t])) << "fp[" << t << "]";
    EXPECT_TRUE(same_bits(a.false_negatives[t], b.false_negatives[t])) << "fn[" << t << "]";
  }
  // seconds_per_iteration is wall clock and intentionally excluded.
}

// The tentpole contract of the parallel trial runner: any thread count and
// either sharing mode produce bit-identical metrics to the serial seed path.
TEST(ExperimentParallel, EightThreadsBitIdenticalToSerial) {
  const Scenario scenario = make_scenario_a(10.0, 5.0, false);
  ExperimentOptions serial;
  serial.trials = 4;
  serial.time_steps = 5;
  serial.seed = 21;
  serial.num_threads = 1;
  serial.share_scenario_state = false;  // the seed configuration
  const auto ref = run_experiment(scenario, serial);

  for (const std::size_t threads : {2u, 8u}) {
    ExperimentOptions opts = serial;
    opts.num_threads = threads;
    opts.share_scenario_state = true;
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    expect_identical(ref, run_experiment(scenario, opts));
  }
}

TEST(ExperimentParallel, SharedStateBitIdenticalWithObstaclesAndCache) {
  // Obstacle scenario with the transmission cache on: the shared per-
  // scenario cache and simulator rate table must reproduce the per-trial
  // rebuilds exactly.
  const Scenario scenario = make_scenario_a3(10.0, 5.0, /*with_obstacle=*/true);
  ExperimentOptions base;
  base.trials = 3;
  base.time_steps = 4;
  base.seed = 9;
  base.localizer.filter.use_known_obstacles = true;
  base.localizer.filter.use_transmission_cache = true;
  base.use_scenario_defaults = false;

  ExperimentOptions serial = base;
  serial.num_threads = 1;
  serial.share_scenario_state = false;
  const auto ref = run_experiment(scenario, serial);

  ExperimentOptions shared_serial = base;
  shared_serial.num_threads = 1;
  shared_serial.share_scenario_state = true;
  expect_identical(ref, run_experiment(scenario, shared_serial));

  ExperimentOptions shared_parallel = base;
  shared_parallel.num_threads = 8;
  shared_parallel.share_scenario_state = true;
  expect_identical(ref, run_experiment(scenario, shared_parallel));
}

TEST(ExperimentParallel, MoreThreadsThanTrials) {
  const Scenario scenario = make_scenario_a(10.0, 5.0, false);
  ExperimentOptions serial;
  serial.trials = 2;
  serial.time_steps = 3;
  serial.seed = 4;
  const auto ref = run_experiment(scenario, serial);

  ExperimentOptions opts = serial;
  opts.num_threads = 16;
  expect_identical(ref, run_experiment(scenario, opts));
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {
namespace {

struct Cloud {
  std::vector<Point2> positions;
  std::vector<double> strengths;
  std::vector<double> weights;
};

/// Particles clustered around `centers` with Gaussian spread, log-normal
/// strength scatter around each center's strength, equal weights.
Cloud make_cloud(Rng& rng, const std::vector<SourceEstimate>& centers, std::size_t per_center,
                 double pos_sigma = 3.0, double strength_sigma = 0.15) {
  Cloud c;
  const double w = 1.0 / static_cast<double>(centers.size() * per_center);
  for (const auto& center : centers) {
    for (std::size_t i = 0; i < per_center; ++i) {
      c.positions.push_back({center.pos.x + normal(rng, 0.0, pos_sigma),
                             center.pos.y + normal(rng, 0.0, pos_sigma)});
      c.strengths.push_back(center.strength * std::exp(normal(rng, 0.0, strength_sigma)));
      c.weights.push_back(w);
    }
  }
  return c;
}

MeanShiftConfig test_config() {
  MeanShiftConfig cfg;
  cfg.min_support = 0.05;
  return cfg;
}

TEST(MeanShift, EmptyInputGivesNoEstimates) {
  ThreadPool pool(1);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  EXPECT_TRUE(est.estimate({}, {}, {}).empty());
}

TEST(MeanShift, AllZeroWeightsGiveNoEstimates) {
  ThreadPool pool(1);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  const std::vector<Point2> pos{{10, 10}, {20, 20}};
  const std::vector<double> str{5.0, 5.0};
  const std::vector<double> w{0.0, 0.0};
  EXPECT_TRUE(est.estimate(pos, str, w).empty());
}

TEST(MeanShift, MismatchedSpansThrow) {
  ThreadPool pool(1);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  const std::vector<Point2> pos{{10, 10}};
  const std::vector<double> one{5.0};
  const std::vector<double> two{0.5, 0.5};
  EXPECT_THROW((void)est.estimate(pos, one, two), std::invalid_argument);
}

TEST(MeanShift, ConfigValidation) {
  ThreadPool pool(1);
  MeanShiftConfig cfg = test_config();
  cfg.bandwidth_xy = 0.0;
  EXPECT_THROW(MeanShiftEstimator(make_area(10, 10), cfg, pool), std::invalid_argument);
  cfg = test_config();
  cfg.min_support = 1.5;
  EXPECT_THROW(MeanShiftEstimator(make_area(10, 10), cfg, pool), std::invalid_argument);
}

TEST(MeanShift, SingleClusterRecovered) {
  Rng rng(1);
  ThreadPool pool(1);
  const auto cloud = make_cloud(rng, {{{47, 71}, 10.0, 0.0}}, 800);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  const auto modes = est.estimate(cloud.positions, cloud.strengths, cloud.weights);
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_LT(distance(modes[0].pos, {47, 71}), 2.0);
  EXPECT_NEAR(modes[0].strength, 10.0, 1.5);
  EXPECT_GT(modes[0].support, 0.9);
}

/// Sweep over cluster counts: the estimator must learn K itself.
class ClusterCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClusterCountSweep, LearnsK) {
  const int k = GetParam();
  Rng rng(100 + k);
  const std::vector<Point2> grid{{20, 20}, {80, 20}, {20, 80}, {80, 80}, {50, 50}};
  std::vector<SourceEstimate> centers;
  for (int j = 0; j < k; ++j) centers.push_back({grid[j], 20.0 + 10.0 * j, 0.0});

  const auto cloud = make_cloud(rng, centers, 500);
  ThreadPool pool(1);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  const auto modes = est.estimate(cloud.positions, cloud.strengths, cloud.weights);

  ASSERT_EQ(modes.size(), static_cast<std::size_t>(k));
  // Every center matched by some mode.
  for (const auto& c : centers) {
    const bool found = std::any_of(modes.begin(), modes.end(), [&](const SourceEstimate& m) {
      return distance(m.pos, c.pos) < 3.0;
    });
    EXPECT_TRUE(found) << "missing center " << c.pos.x << "," << c.pos.y;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, ClusterCountSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(MeanShift, WeightsDominateOverCounts) {
  // Cluster A: many particles with tiny weights. Cluster B: few with heavy
  // weights. Support must follow weight, not count.
  Rng rng(2);
  Cloud cloud;
  for (int i = 0; i < 900; ++i) {
    cloud.positions.push_back({20 + normal(rng, 0, 2.0), 20 + normal(rng, 0, 2.0)});
    cloud.strengths.push_back(10.0);
    cloud.weights.push_back(0.1 / 900.0);
  }
  for (int i = 0; i < 100; ++i) {
    cloud.positions.push_back({80 + normal(rng, 0, 2.0), 80 + normal(rng, 0, 2.0)});
    cloud.strengths.push_back(10.0);
    cloud.weights.push_back(0.9 / 100.0);
  }
  ThreadPool pool(1);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  const auto modes = est.estimate(cloud.positions, cloud.strengths, cloud.weights);
  ASSERT_EQ(modes.size(), 2u);
  // Sorted by support: the heavy cluster first.
  EXPECT_LT(distance(modes[0].pos, {80, 80}), 3.0);
  EXPECT_GT(modes[0].support, modes[1].support);
}

TEST(MeanShift, MinSupportFiltersNoiseClusters) {
  Rng rng(3);
  // One real cluster + uniform background noise.
  auto cloud = make_cloud(rng, {{{50, 50}, 20.0, 0.0}}, 700);
  const AreaBounds area = make_area(100, 100);
  for (int i = 0; i < 300; ++i) {
    cloud.positions.push_back(uniform_point(rng, area));
    cloud.strengths.push_back(10.0);
    cloud.weights.push_back(1e-6);  // negligible weight
  }
  ThreadPool pool(1);
  MeanShiftConfig cfg = test_config();
  cfg.min_support = 0.10;
  MeanShiftEstimator est(area, cfg, pool);
  const auto modes = est.estimate(cloud.positions, cloud.strengths, cloud.weights);
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_LT(distance(modes[0].pos, {50, 50}), 2.5);
}

TEST(MeanShift, CloseClustersMergeIntoOne) {
  Rng rng(4);
  // Two centers 4 apart with bandwidth 5: a single blended mode.
  const auto cloud =
      make_cloud(rng, {{{48, 50}, 10.0, 0.0}, {{52, 50}, 10.0, 0.0}}, 500);
  ThreadPool pool(1);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  const auto modes = est.estimate(cloud.positions, cloud.strengths, cloud.weights);
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_LT(distance(modes[0].pos, {50, 50}), 2.5);
}

TEST(MeanShift, ParallelMatchesSerial) {
  Rng rng(5);
  const auto cloud = make_cloud(
      rng, {{{20, 30}, 15.0, 0.0}, {{70, 60}, 40.0, 0.0}, {{40, 85}, 90.0, 0.0}}, 400);

  ThreadPool serial(1);
  ThreadPool parallel(4);
  MeanShiftEstimator est_s(make_area(100, 100), test_config(), serial);
  MeanShiftEstimator est_p(make_area(100, 100), test_config(), parallel);
  const auto m_s = est_s.estimate(cloud.positions, cloud.strengths, cloud.weights);
  const auto m_p = est_p.estimate(cloud.positions, cloud.strengths, cloud.weights);

  ASSERT_EQ(m_s.size(), m_p.size());
  for (std::size_t i = 0; i < m_s.size(); ++i) {
    EXPECT_NEAR(m_s[i].pos.x, m_p[i].pos.x, 1e-9);
    EXPECT_NEAR(m_s[i].pos.y, m_p[i].pos.y, 1e-9);
    EXPECT_NEAR(m_s[i].strength, m_p[i].strength, 1e-9);
    EXPECT_NEAR(m_s[i].support, m_p[i].support, 1e-9);
  }
}

TEST(MeanShift, StrengthRecoveredInLogSpace) {
  // Widely different strengths must both be recovered — the log-strength
  // feature space keeps the kernel scale-free.
  Rng rng(6);
  const auto cloud = make_cloud(rng, {{{25, 25}, 4.0, 0.0}, {{75, 75}, 900.0, 0.0}}, 600);
  ThreadPool pool(1);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  const auto modes = est.estimate(cloud.positions, cloud.strengths, cloud.weights);
  ASSERT_EQ(modes.size(), 2u);
  std::vector<double> strengths{modes[0].strength, modes[1].strength};
  std::sort(strengths.begin(), strengths.end());
  EXPECT_NEAR(strengths[0], 4.0, 1.0);
  EXPECT_NEAR(strengths[1], 900.0, 180.0);
}

TEST(MeanShift, SupportSumsToAtMostOne) {
  Rng rng(7);
  const auto cloud = make_cloud(rng, {{{30, 30}, 10.0, 0.0}, {{70, 70}, 10.0, 0.0}}, 400);
  ThreadPool pool(1);
  MeanShiftEstimator est(make_area(100, 100), test_config(), pool);
  const auto modes = est.estimate(cloud.positions, cloud.strengths, cloud.weights);
  double total = 0.0;
  for (const auto& m : modes) total += m.support;
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.8);  // most mass is in the two basins
}

}  // namespace
}  // namespace radloc

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "radloc/geom/polygon.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/radiation/materials.hpp"
#include "radloc/radiation/source.hpp"
#include "radloc/radiation/transmission_cache.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {
namespace {

TEST(FreeSpace, Eq1AtKnownDistances) {
  const Source s{{0, 0}, 100.0};
  // At the source: A / (1 + 0) = A.
  EXPECT_DOUBLE_EQ(free_space_intensity({0, 0}, s), 100.0);
  // At distance 3: A / (1 + 9) = 10.
  EXPECT_DOUBLE_EQ(free_space_intensity({3, 0}, s), 10.0);
  EXPECT_DOUBLE_EQ(free_space_intensity({0, 3}, s), 10.0);
}

TEST(FreeSpace, MonotoneDecreasingInDistance) {
  const Source s{{50, 50}, 42.0};
  double prev = free_space_intensity({50, 50}, s);
  for (double d = 1.0; d < 100.0; d += 1.0) {
    const double cur = free_space_intensity({50 + d, 50}, s);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Shielding, Eq2HalvesAtHalfValueLayer) {
  // mu = 0.0693 halves the intensity every ln(2)/0.0693 ~ 10 units.
  const double hvl = std::log(2.0) / 0.0693;
  EXPECT_NEAR(shielded_intensity(100.0, 0.0693, hvl), 50.0, 1e-6);
  EXPECT_NEAR(shielded_intensity(100.0, 0.0693, 2.0 * hvl), 25.0, 1e-6);
  EXPECT_DOUBLE_EQ(shielded_intensity(100.0, 0.0693, 0.0), 100.0);
}

TEST(Materials, LeadConcreteEquivalence) {
  // Paper Sec. III: 1 cm of lead absorbs as much as ~6 cm of concrete.
  const double eq = equivalent_thickness(Material::kLead, 1.0, Material::kConcrete);
  EXPECT_NEAR(eq, 6.0, 0.2);
}

TEST(Materials, OrderingByStoppingPower) {
  EXPECT_GT(attenuation_coefficient(Material::kLead), attenuation_coefficient(Material::kSteel));
  EXPECT_GT(attenuation_coefficient(Material::kSteel),
            attenuation_coefficient(Material::kConcrete));
  EXPECT_GT(attenuation_coefficient(Material::kConcrete),
            attenuation_coefficient(Material::kWood));
}

TEST(Materials, HalfValueLayerDefinition) {
  for (const auto m : {Material::kLead, Material::kConcrete, Material::kWater}) {
    const double hvl = half_value_layer(m);
    EXPECT_NEAR(std::exp(-attenuation_coefficient(m) * hvl), 0.5, 1e-12);
  }
  EXPECT_FALSE(material_name(Material::kLead).empty());
}

TEST(Environment, PathAttenuationThroughSlab) {
  Environment env(make_area(100, 100));
  env.add_obstacle(Obstacle(make_rect(40, 0, 50, 100), 0.0693));
  // Path crossing the 10-unit slab orthogonally: mu * l = 0.693 -> T ~ 0.5.
  EXPECT_NEAR(env.transmission({{0, 50}, {100, 50}}), std::exp(-0.693), 1e-9);
  // Path missing the slab.
  EXPECT_DOUBLE_EQ(env.transmission({{0, 50}, {30, 50}}), 1.0);
}

TEST(Environment, MultipleObstaclesCompose) {
  Environment env(make_area(100, 100));
  env.add_obstacle(Obstacle(make_rect(20, 0, 30, 100), 0.0693));  // T ~ 0.5
  env.add_obstacle(Obstacle(make_rect(60, 0, 70, 100), 0.0693));  // T ~ 0.5
  EXPECT_NEAR(env.transmission({{0, 50}, {100, 50}}), std::exp(-2.0 * 0.693), 1e-9);
}

TEST(Environment, WithoutObstaclesStripsAll) {
  Environment env(make_area(10, 10), {Obstacle(make_rect(4, 0, 6, 10), 1.0)});
  EXPECT_TRUE(env.has_obstacles());
  const Environment stripped = env.without_obstacles();
  EXPECT_FALSE(stripped.has_obstacles());
  EXPECT_EQ(stripped.bounds(), env.bounds());
  EXPECT_DOUBLE_EQ(stripped.transmission({{0, 5}, {10, 5}}), 1.0);
}

TEST(Intensity, Eq3CombinesFadingAndShielding) {
  Environment env(make_area(100, 100));
  env.add_obstacle(Obstacle(make_rect(40, 0, 50, 100), 0.0693));
  const Source s{{0, 50}, 100.0};
  const Point2 x{100, 50};
  const double expected = 100.0 / (1.0 + 100.0 * 100.0) * std::exp(-0.693);
  EXPECT_NEAR(intensity(x, s, env), expected, 1e-9);
}

TEST(ExpectedCpm, Eq4SuperposesSourcesAndBackground) {
  Environment env(make_area(100, 100));
  const std::vector<Source> sources{{{10, 0}, 5.0}, {{0, 10}, 7.0}};
  const SensorResponse resp{2.0e-4, 5.0};
  const Point2 at{0, 0};
  const double expected = kMicroCurieToCpm * 2.0e-4 * (5.0 / 101.0 + 7.0 / 101.0) + 5.0;
  EXPECT_NEAR(expected_cpm(at, sources, env, resp), expected, 1e-9);
}

TEST(ExpectedCpm, NoSourcesGivesBackground) {
  Environment env(make_area(10, 10));
  const SensorResponse resp{1.0, 12.5};
  EXPECT_DOUBLE_EQ(expected_cpm({5, 5}, {}, env, resp), 12.5);
}

TEST(ExpectedCpm, SingleVariantsAgree) {
  Environment env(make_area(100, 100));
  const Source hyp{{30, 40}, 50.0};
  const SensorResponse resp{kDefaultEfficiency, 5.0};
  const Point2 at{10, 10};
  // With no obstacles the full and free-space single-source models agree.
  EXPECT_DOUBLE_EQ(expected_cpm_single(at, hyp, env, resp),
                   expected_cpm_single_free_space(at, hyp, resp));

  env.add_obstacle(Obstacle(make_rect(15, 0, 25, 100), 0.0693));
  EXPECT_LT(expected_cpm_single(at, hyp, env, resp),
            expected_cpm_single_free_space(at, hyp, resp));
}

TEST(ExpectedCpm, EfficiencyScalesSourceTermOnly) {
  Environment env(make_area(100, 100));
  const std::vector<Source> sources{{{10, 10}, 5.0}};
  const double base =
      expected_cpm({0, 0}, sources, env, SensorResponse{1e-4, 0.0});
  const double doubled =
      expected_cpm({0, 0}, sources, env, SensorResponse{2e-4, 0.0});
  EXPECT_NEAR(doubled, 2.0 * base, 1e-9);
  // Background is additive, not scaled.
  const double with_bg =
      expected_cpm({0, 0}, sources, env, SensorResponse{1e-4, 7.0});
  EXPECT_NEAR(with_bg, base + 7.0, 1e-9);
}

TEST(ObstacleType, MaterialConstructorUsesTable) {
  const Obstacle o(make_rect(0, 0, 1, 1), Material::kLead);
  EXPECT_DOUBLE_EQ(o.mu(), attenuation_coefficient(Material::kLead));
}

TEST(TransmissionCache, ExactAtGridNodesAndFreeSpace) {
  Environment env(make_area(100, 100), {Obstacle(make_u_shape(38, 35, 62, 60, 2.0), 0.2)});
  TransmissionCache cache(env, /*cell_size=*/2.0);
  const Point2 origin{25.0, 50.0};
  const auto* field = cache.prepare(origin);
  ASSERT_NE(field, nullptr);
  // Grid nodes hold the exact transmission; querying a node reproduces it.
  for (double x : {0.0, 2.0, 40.0, 98.0, 100.0}) {
    for (double y : {0.0, 36.0, 58.0, 100.0}) {
      EXPECT_DOUBLE_EQ(cache.transmission(*field, {x, y}),
                       env.transmission(Segment{origin, {x, y}}));
    }
  }
  // With no obstacle in the way, interpolating between all-ones nodes is 1.
  EXPECT_DOUBLE_EQ(cache.transmission(*field, {25.7, 50.3}), 1.0);
}

TEST(TransmissionCache, InterpolationErrorBounded) {
  Environment env(make_area(100, 100), {Obstacle(make_u_shape(38, 35, 62, 60, 2.0), 0.2)});
  const Point2 origin{25.0, 50.0};

  TransmissionCache cache(env, /*cell_size=*/1.0);
  const auto* field = cache.prepare(origin);
  ASSERT_NE(field, nullptr);
  double max_err = 0.0;
  for (double x = 0.45; x < 100.0; x += 1.37) {
    for (double y = 0.55; y < 100.0; y += 1.73) {
      const double exact = env.transmission(Segment{origin, Point2{x, y}});
      const double approx = cache.transmission(*field, Point2{x, y});
      max_err = std::max(max_err, std::abs(exact - approx));
    }
  }
  // Transmission is continuous in the target with kinks at obstacle
  // silhouettes, so bilinear error is O(cell) near those lines and far
  // smaller elsewhere. At a 1 m cell the worst sampled error stays well
  // under the ~0.33 full contrast of this obstacle (exp(-0.4) per wall).
  EXPECT_LT(max_err, 0.08);
}

TEST(TransmissionCache, RebuildsWhenEnvironmentChanges) {
  Environment env(make_area(100, 100));
  TransmissionCache cache(env, /*cell_size=*/2.0);
  const Point2 origin{10.0, 50.0};
  const auto* field = cache.prepare(origin);
  ASSERT_NE(field, nullptr);
  const Point2 behind{90.0, 50.0};
  EXPECT_DOUBLE_EQ(cache.transmission(*field, behind), 1.0);
  EXPECT_EQ(cache.field_count(), 1u);

  // Adding an obstacle bumps the environment revision; the next prepare()
  // drops every stale field and rebuilds against the new geometry.
  env.add_obstacle(Obstacle(make_rect(40, 0, 44, 100), 0.2));
  field = cache.prepare(origin);
  ASSERT_NE(field, nullptr);
  EXPECT_EQ(cache.field_count(), 1u);
  EXPECT_DOUBLE_EQ(cache.transmission(*field, behind),
                   env.transmission(Segment{origin, behind}));
  EXPECT_LT(cache.transmission(*field, behind), 1.0);
}

TEST(TransmissionCache, PreparedFieldPointerIsStableAcrossLaterPrepares) {
  // Regression: prepare() hands out a Field* that the filter holds for the
  // whole weight update while other sensors' fields are being prepared.
  // Field storage used to be a std::vector, so a later prepare() could
  // reallocate and leave the held pointer dangling (a use-after-free that
  // ASan catches on the reads below).
  Environment env(make_area(100, 100), {Obstacle(make_rect(40, 0, 60, 100), 0.2)});
  constexpr std::size_t kMaxFields = 8;
  TransmissionCache cache(env, /*cell_size=*/5.0, kMaxFields);

  const Point2 origin{10.0, 10.0};
  const auto* held = cache.prepare(origin);
  ASSERT_NE(held, nullptr);
  const Point2 probe{90.0, 50.0};
  const double baseline = cache.transmission(*held, probe);

  for (std::size_t k = 1; k < kMaxFields; ++k) {
    ASSERT_NE(cache.prepare(Point2{10.0 + 10.0 * static_cast<double>(k), 10.0}), nullptr);
    ASSERT_EQ(held->origin, origin) << "after prepare " << k;
    ASSERT_EQ(cache.transmission(*held, probe), baseline) << "after prepare " << k;
  }
  EXPECT_EQ(cache.prepare(origin), held);  // repeat prepare: the same storage
}

TEST(TransmissionCache, FieldCapDeclinesNewOrigins) {
  Environment env(make_area(100, 100));
  TransmissionCache cache(env, /*cell_size=*/10.0, /*max_fields=*/2);
  EXPECT_NE(cache.prepare({10.0, 10.0}), nullptr);
  EXPECT_NE(cache.prepare({20.0, 10.0}), nullptr);
  EXPECT_EQ(cache.prepare({30.0, 10.0}), nullptr);  // over the cap: caller falls back
  EXPECT_NE(cache.prepare({10.0, 10.0}), nullptr);  // known origins still served
  EXPECT_EQ(cache.field_count(), 2u);
}

}  // namespace
}  // namespace radloc

// Deterministic stress harness for the ThreadPool nesting contract.
//
// Seeded randomized episodes interleave TaskGroup submission, nested
// parallel_for calls issued from inside pool work, caller-side parallel_for
// while a group is pending, and group reuse — across pool sizes 1..8 with
// forced fan-out. Standing invariants: every unit of work runs exactly
// once, nested parallel_for stays on the issuing worker, and every episode
// terminates (the arbitration policy admits no deadlock schedule). Run
// under the tsan preset this doubles as the data-race gauntlet for the
// submission API.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {
namespace {

TEST(StressPool, RandomizedNestingEpisodes) {
  for (const std::uint64_t seed : {5u, 11u, 23u, 47u}) {
    Rng rng(seed);
    for (int episode = 0; episode < 8; ++episode) {
      const std::size_t threads = 1 + uniform_index(rng, 8);
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << " episode " << episode << " threads " << threads);
      ThreadPool pool(threads, threads);

      const std::size_t tasks = 4 + uniform_index(rng, 28);
      std::vector<std::size_t> inner_sizes;
      std::size_t expected = 0;
      for (std::size_t t = 0; t < tasks; ++t) {
        // Mix empty, tiny, and chunk-spanning inner ranges.
        const std::size_t inner = uniform_index(rng, 4) == 0 ? 0 : 1 + uniform_index(rng, 700);
        inner_sizes.push_back(inner);
        expected += inner == 0 ? 1 : inner;
      }
      const bool caller_interleaves = uniform_index(rng, 2) == 0;

      std::atomic<std::size_t> units{0};
      std::atomic<int> escaped_workers{0};
      ThreadPool::TaskGroup group(pool);
      for (std::size_t t = 0; t < tasks; ++t) {
        const std::size_t inner = inner_sizes[t];
        group.run([&, inner] {
          if (inner == 0) {
            units.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          const auto me = std::this_thread::get_id();
          pool.parallel_for(inner, [&, me](std::size_t begin, std::size_t end) {
            if (std::this_thread::get_id() != me) escaped_workers.fetch_add(1);
            units.fetch_add(end - begin, std::memory_order_relaxed);
          });
        });
      }
      if (caller_interleaves) {
        std::atomic<std::size_t> caller_units{0};
        pool.for_each_index(123, [&](std::size_t) {
          caller_units.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_EQ(caller_units.load(), 123u);
      }
      group.wait();
      ASSERT_EQ(units.load(), expected);
      ASSERT_EQ(escaped_workers.load(), 0)
          << "nested parallel_for left the issuing worker thread";
    }
  }
}

TEST(StressPool, GroupReuseAcrossEpisodesOnOnePool) {
  Rng rng(301);
  ThreadPool pool(4, 4);
  ThreadPool::TaskGroup group(pool);
  std::size_t expected = 0;
  std::atomic<std::size_t> units{0};
  for (int round = 0; round < 30; ++round) {
    const std::size_t tasks = 1 + uniform_index(rng, 40);
    for (std::size_t t = 0; t < tasks; ++t) {
      group.run([&units] { units.fetch_add(1, std::memory_order_relaxed); });
    }
    expected += tasks;
    if (uniform_index(rng, 3) != 0) {
      group.wait();
      ASSERT_EQ(units.load(), expected) << "round " << round;
    }
    // Occasionally leave the round pending: the next round's submissions and
    // the final wait must still account for every task.
  }
  group.wait();
  ASSERT_EQ(units.load(), expected);
}

TEST(StressPool, ManyShortLivedPools) {
  // Construction/teardown under load: pools destroyed with freshly-drained
  // queues must join cleanly every time.
  Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    const std::size_t threads = 1 + uniform_index(rng, 8);
    ThreadPool pool(threads, threads);
    std::atomic<int> count{0};
    ThreadPool::TaskGroup group(pool);
    const int tasks = static_cast<int>(1 + uniform_index(rng, 16));
    for (int t = 0; t < tasks; ++t) group.run([&count] { count.fetch_add(1); });
    group.wait();
    ASSERT_EQ(count.load(), tasks);
  }
}

}  // namespace
}  // namespace radloc

// Tests for the deployment coverage planner and the SVG renderer, plus the
// EM-GMM baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "radloc/baselines/em_gmm.hpp"
#include "radloc/eval/coverage.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/viz/svg.hpp"

namespace radloc {
namespace {

// ------------------------------------------------------------------ coverage

TEST(Coverage, DetectionLrIsMonotoneInStrength) {
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const Point2 pos{50, 50};
  double prev = 0.0;
  for (const double s : {1.0, 4.0, 16.0, 64.0}) {
    const double lr = expected_detection_log_lr(env, sensors, Source{pos, s});
    EXPECT_GT(lr, prev);
    prev = lr;
  }
}

TEST(Coverage, MapThresholdsMatchDirectLr) {
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  CoverageConfig cfg;
  cfg.cells_x = 10;
  cfg.cells_y = 10;
  const auto map = compute_coverage(env, sensors, cfg);
  ASSERT_EQ(map.min_detectable.size(), 100u);
  // The reported minimal strength must sit right at the LR threshold.
  for (const std::size_t cell : {0u, 45u, 99u}) {
    const double s = map.min_detectable[cell];
    ASSERT_TRUE(std::isfinite(s));
    const Point2 pos = map.cell_center(cell % 10, cell / 10);
    EXPECT_GE(expected_detection_log_lr(env, sensors, Source{pos, s * 1.01}, cfg),
              cfg.required_log_lr);
    EXPECT_LT(expected_detection_log_lr(env, sensors, Source{pos, s * 0.99}, cfg),
              cfg.required_log_lr);
  }
}

TEST(Coverage, DenserGridDetectsWeakerSources) {
  Environment env(make_area(100, 100));
  auto coarse = place_grid(env.bounds(), 4, 4);
  auto dense = place_grid(env.bounds(), 8, 8);
  set_background(coarse, 5.0);
  set_background(dense, 5.0);
  CoverageConfig cfg;
  cfg.cells_x = 12;
  cfg.cells_y = 12;
  const auto map_coarse = compute_coverage(env, coarse, cfg);
  const auto map_dense = compute_coverage(env, dense, cfg);
  EXPECT_LT(map_dense.worst_case(), map_coarse.worst_case());
  EXPECT_GE(map_dense.covered_fraction(4.0), map_coarse.covered_fraction(4.0));
}

TEST(Coverage, ObstaclesWeakenCoverageBehindThem) {
  // A thick wall in front of the only nearby sensors raises the minimum
  // detectable strength behind it.
  Environment open(make_area(100, 100));
  Environment walled(make_area(100, 100),
                     {Obstacle(make_rect(40, 0, 44, 100), 0.5)});
  auto sensors = place_grid(open.bounds(), 3, 3);  // pitch 50
  set_background(sensors, 5.0);
  CoverageConfig cfg;
  cfg.cells_x = 10;
  cfg.cells_y = 10;
  cfg.detection_range = 60.0;
  const auto m_open = compute_coverage(open, sensors, cfg);
  const auto m_walled = compute_coverage(walled, sensors, cfg);
  // Overall, walls never help detection.
  double worse = 0.0;
  for (std::size_t i = 0; i < m_open.min_detectable.size(); ++i) {
    if (m_walled.min_detectable[i] > m_open.min_detectable[i] * 1.05) worse += 1.0;
    EXPECT_GE(m_walled.min_detectable[i], m_open.min_detectable[i] * 0.999);
  }
  EXPECT_GT(worse, 5.0);  // a meaningful patch of the map got harder
}

TEST(Coverage, BlindCellsAreInfinite) {
  Environment env(make_area(100, 100));
  // One sensor in a corner; cells beyond detection_range are blind.
  std::vector<Sensor> sensors{{0, {0, 0}, {kDefaultEfficiency, 5.0}}};
  CoverageConfig cfg;
  cfg.cells_x = 10;
  cfg.cells_y = 10;
  cfg.detection_range = 30.0;
  const auto map = compute_coverage(env, sensors, cfg);
  EXPECT_TRUE(std::isinf(map.at(9, 9)));
  EXPECT_TRUE(std::isfinite(map.at(0, 0)));
  EXPECT_TRUE(std::isinf(map.worst_case()));
  EXPECT_LT(map.covered_fraction(1e6), 1.0);
}

TEST(Coverage, Validation) {
  Environment env(make_area(10, 10));
  auto sensors = place_grid(env.bounds(), 2, 2);
  CoverageConfig cfg;
  cfg.cells_x = 0;
  EXPECT_THROW((void)compute_coverage(env, sensors, cfg), std::invalid_argument);
  cfg = CoverageConfig{};
  cfg.strength_min = 0.0;
  EXPECT_THROW((void)compute_coverage(env, sensors, cfg), std::invalid_argument);
  EXPECT_THROW((void)compute_coverage(env, {}, CoverageConfig{}), std::invalid_argument);
}

// ----------------------------------------------------------------------- SVG

TEST(Svg, PixelTransformFlipsY) {
  SvgCanvas canvas(make_area(100, 50), 200);  // scale 2 px/unit
  EXPECT_EQ(canvas.width_px(), 200);
  EXPECT_EQ(canvas.height_px(), 100);
  const Point2 origin = canvas.to_pixel({0, 0});
  EXPECT_DOUBLE_EQ(origin.x, 0.0);
  EXPECT_DOUBLE_EQ(origin.y, 100.0);  // world origin = bottom-left
  const Point2 top_right = canvas.to_pixel({100, 50});
  EXPECT_DOUBLE_EQ(top_right.x, 200.0);
  EXPECT_DOUBLE_EQ(top_right.y, 0.0);
}

TEST(Svg, WellFormedDocument) {
  SvgCanvas canvas(make_area(100, 100), 100);
  canvas.add_circle({50, 50}, 5.0, SvgStyle{"red", "black", 1.0, 1.0});
  canvas.add_cross({20, 20}, 2.0, SvgStyle{});
  canvas.add_polygon(make_rect(10, 10, 30, 30), SvgStyle{"gray", "none", 1.0, 0.5});
  canvas.add_text({5, 95}, "hello", 10.0, "blue");

  const std::string svg = canvas.to_string();
  EXPECT_NE(svg.find("<?xml"), std::string::npos);
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  EXPECT_NE(svg.find("<text"), std::string::npos);
  // cross = 2 lines
  EXPECT_EQ(canvas.element_count(), 5u);
}

TEST(Svg, PointBatching) {
  SvgCanvas canvas(make_area(10, 10), 100);
  const std::vector<Point2> pts{{1, 1}, {2, 2}, {3, 3}};
  canvas.add_points(pts, 1.0, "#123456");
  EXPECT_EQ(canvas.element_count(), 1u);  // one <g> for all points
  const std::string svg = canvas.to_string();
  std::size_t count = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
  canvas.add_points({}, 1.0, "red");  // empty span is a no-op
  EXPECT_EQ(canvas.element_count(), 1u);
}

TEST(Svg, SceneRenderContainsEveryLayer) {
  const auto scenario = make_scenario_a(10.0, 5.0, /*with_obstacle=*/true);
  const std::vector<Point2> particles{{10, 10}, {20, 20}};
  const std::vector<SourceEstimate> estimates{{{47, 71}, 10.0, 0.5}};
  const auto canvas = render_scene(scenario.env, scenario.sensors, scenario.sources,
                                   particles, estimates);
  const std::string svg = canvas.to_string();
  EXPECT_NE(svg.find("<polygon"), std::string::npos);  // obstacle
  EXPECT_NE(svg.find("#cc2222"), std::string::npos);   // sources
  EXPECT_NE(svg.find("#3366cc"), std::string::npos);   // particles
  EXPECT_NE(svg.find("#22aa22"), std::string::npos);   // estimates
}

TEST(Svg, SaveToFileRoundTrip) {
  SvgCanvas canvas(make_area(10, 10), 50);
  canvas.add_circle({5, 5}, 1.0, SvgStyle{"red", "none", 1.0, 1.0});
  const std::string path = ::testing::TempDir() + "/radloc_test.svg";
  canvas.save(path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_EQ(ss.str(), canvas.to_string());
}

TEST(Svg, Validation) {
  EXPECT_THROW(SvgCanvas(make_area(10, 10), 0), std::invalid_argument);
  EXPECT_THROW(SvgCanvas(AreaBounds{{0, 0}, {0, 10}}, 100), std::invalid_argument);
}

// -------------------------------------------------------------------- EM GMM

struct EmWorld {
  Environment env{make_area(100, 100)};
  std::vector<Sensor> sensors;

  EmWorld() {
    sensors = place_grid(env.bounds(), 8, 8);  // EM needs spatial resolution
    set_background(sensors, 5.0);
  }

  std::vector<double> averages(const std::vector<Source>& truth, int steps,
                               std::uint64_t seed) const {
    MeasurementSimulator sim(env, sensors, truth);
    Rng rng(seed);
    std::vector<double> sum(sensors.size(), 0.0);
    for (int t = 0; t < steps; ++t) {
      for (const auto& m : sim.sample_time_step(rng)) sum[m.sensor] += m.cpm;
    }
    for (auto& s : sum) s /= steps;
    return sum;
  }
};

TEST(EmGmm, SingleSourceMeanNearTruth) {
  EmWorld w;
  const std::vector<Source> truth{{{47, 71}, 80.0}};
  const auto avg = w.averages(truth, 10, 1);
  EmGmmLocalizer em(w.env, w.sensors, {});
  Rng rng(2);
  const auto fit = em.fit_fixed_k(avg, 1, rng);
  ASSERT_EQ(fit.sources.size(), 1u);
  // GMM fits the signal footprint: means are biased but in the vicinity.
  EXPECT_LT(distance(fit.sources[0].pos, truth[0].pos), 15.0);
}

TEST(EmGmm, ModelSelectionFindsTwoSeparatedSources) {
  EmWorld w;
  const std::vector<Source> truth{{{20, 75}, 100.0}, {{80, 25}, 100.0}};
  const auto avg = w.averages(truth, 10, 3);
  EmConfig cfg;
  cfg.max_components = 4;
  EmGmmLocalizer em(w.env, w.sensors, cfg);
  Rng rng(4);
  const auto fit = em.fit(avg, rng);
  EXPECT_GE(fit.selected_k, 2u);
  const auto match = match_estimates(truth, fit.sources, 30.0);
  EXPECT_EQ(match.false_negatives, 0u);
}

TEST(EmGmm, WeakerThanProposedMethodOnCloseSources) {
  // The paper's critique: the generic GMM blurs nearby sources that the
  // physics-aware localizer separates. Two sources 25 apart:
  EmWorld w;
  const std::vector<Source> truth{{{40, 50}, 80.0}, {{65, 50}, 80.0}};
  const auto avg = w.averages(truth, 10, 5);
  EmConfig cfg;
  cfg.max_components = 4;
  EmGmmLocalizer em(w.env, w.sensors, cfg);
  Rng rng(6);
  const auto fit = em.fit(avg, rng);
  const auto match = match_estimates(truth, fit.sources, 20.0);
  // Document the baseline's limitation: it misses or blurs at least one
  // (this is an expectation about the baseline, not a regression bar for
  // the library).
  EXPECT_GE(match.false_negatives + match.false_positives, 0u);  // smoke
  if (match.false_negatives == 0) {
    // If it did find both, the positional error is large compared to the
    // proposed method's ~2-3 units.
    EXPECT_GT(match.mean_error(), 2.0);
  }
}

TEST(EmGmm, LogLikelihoodImprovesWithK) {
  EmWorld w;
  const std::vector<Source> truth{{{20, 75}, 100.0}, {{80, 25}, 100.0}};
  const auto avg = w.averages(truth, 10, 7);
  EmGmmLocalizer em(w.env, w.sensors, {});
  Rng rng(8);
  const auto k1 = em.fit_fixed_k(avg, 1, rng);
  const auto k2 = em.fit_fixed_k(avg, 2, rng);
  EXPECT_GE(k2.log_likelihood, k1.log_likelihood - 1e-6);
}

TEST(EmGmm, Validation) {
  EmWorld w;
  EmGmmLocalizer em(w.env, w.sensors, {});
  Rng rng(9);
  const std::vector<double> wrong_size{1.0, 2.0};
  EXPECT_THROW((void)em.fit(wrong_size, rng), std::invalid_argument);
  EXPECT_THROW(EmGmmLocalizer(w.env, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace radloc

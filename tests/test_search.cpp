#include <gtest/gtest.h>

#include <cmath>

#include "radloc/eval/matching.hpp"
#include "radloc/search/mobile_searcher.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {
namespace {

/// Oracle backed by the ground-truth simulator.
class SimOracle final : public MeasurementOracle {
 public:
  SimOracle(const MeasurementSimulator& sim, std::uint64_t seed) : sim_(&sim), rng_(seed) {}

  double read_cpm(const Point2& at, const SensorResponse& response) override {
    return sim_->sample_at(rng_, at, response);
  }

 private:
  const MeasurementSimulator* sim_;
  Rng rng_;
};

SearcherConfig small_searcher() {
  SearcherConfig cfg;
  cfg.filter.num_particles = 1500;
  cfg.max_steps = 250;
  return cfg;
}

TEST(MobileSearcher, ConfigValidation) {
  Environment env(make_area(100, 100));
  SearcherConfig cfg = small_searcher();
  cfg.speed = 0.0;
  EXPECT_THROW(MobileSearcher(env, cfg, Rng(1)), std::invalid_argument);
  cfg = small_searcher();
  cfg.candidate_directions = 2;
  EXPECT_THROW(MobileSearcher(env, cfg, Rng(1)), std::invalid_argument);
  cfg = small_searcher();
  cfg.max_steps = 0;
  EXPECT_THROW(MobileSearcher(env, cfg, Rng(1)), std::invalid_argument);
}

TEST(MobileSearcher, FindsSingleSource) {
  Environment env(make_area(100, 100));
  const std::vector<Source> truth{{{70, 65}, 50.0}};
  MeasurementSimulator sim(env, {{0, {0, 0}, {}}}, truth);
  SimOracle oracle(sim, 2);

  MobileSearcher searcher(env, small_searcher(), Rng(3));
  const auto result = searcher.search({10, 10}, oracle);

  EXPECT_TRUE(result.converged);
  ASSERT_FALSE(result.estimates.empty());
  EXPECT_LT(distance(result.estimates[0].pos, truth[0].pos), 8.0);
  EXPECT_GT(result.distance_travelled, 0.0);
  EXPECT_FALSE(result.path.empty());
}

TEST(MobileSearcher, PathStaysInBounds) {
  Environment env(make_area(100, 100));
  MeasurementSimulator sim(env, {{0, {0, 0}, {}}}, {{{90, 90}, 80.0}});
  SimOracle oracle(sim, 4);
  MobileSearcher searcher(env, small_searcher(), Rng(5));
  const auto result = searcher.search({5, 95}, oracle);
  for (const auto& s : result.path) {
    EXPECT_TRUE(env.bounds().contains(s.position));
  }
}

TEST(MobileSearcher, SpeedLimitsPerStepTravel) {
  Environment env(make_area(100, 100));
  MeasurementSimulator sim(env, {{0, {0, 0}, {}}}, {{{80, 20}, 60.0}});
  SimOracle oracle(sim, 6);
  SearcherConfig cfg = small_searcher();
  cfg.speed = 3.0;
  MobileSearcher searcher(env, cfg, Rng(7));

  searcher.set_position({50, 50});
  Point2 prev = searcher.position();
  for (int i = 0; i < 30; ++i) {
    (void)searcher.step(oracle);
    EXPECT_LE(distance(prev, searcher.position()), 3.0 + 1e-9);
    prev = searcher.position();
  }
}

TEST(MobileSearcher, SpreadShrinksDuringSearch) {
  Environment env(make_area(100, 100));
  MeasurementSimulator sim(env, {{0, {0, 0}, {}}}, {{{30, 70}, 60.0}});
  SimOracle oracle(sim, 8);
  MobileSearcher searcher(env, small_searcher(), Rng(9));
  const auto result = searcher.search({90, 10}, oracle);
  ASSERT_GT(result.path.size(), 5u);
  EXPECT_LT(result.path.back().spread, result.path.front().spread);
}

TEST(MobileSearcher, TwoSourcesBothRepresented) {
  // The fusion-range update keeps the posterior multimodal even for a
  // single mobile detector; a long-enough patrol localizes both.
  Environment env(make_area(100, 100));
  const std::vector<Source> truth{{{25, 75}, 60.0}, {{75, 25}, 60.0}};
  MeasurementSimulator sim(env, {{0, {0, 0}, {}}}, truth);
  SimOracle oracle(sim, 10);

  SearcherConfig cfg = small_searcher();
  cfg.max_steps = 500;
  cfg.stop_spread = 0.0;  // never stop early: full patrol
  MobileSearcher searcher(env, cfg, Rng(11));
  const auto result = searcher.search({50, 50}, oracle);

  const auto match = match_estimates(truth, result.estimates);
  EXPECT_LE(match.false_negatives, 1u);  // at least one found, usually both
  ASSERT_FALSE(result.estimates.empty());
}

TEST(MobileSearcher, ObstacleWorldStillConverges) {
  Environment env(make_area(100, 100),
                  {Obstacle(make_rect(45, 20, 55, 80), 0.2)});
  MeasurementSimulator sim(env, {{0, {0, 0}, {}}}, {{{75, 50}, 60.0}});
  SimOracle oracle(sim, 12);
  MobileSearcher searcher(env, small_searcher(), Rng(13));  // obstacle-agnostic
  const auto result = searcher.search({15, 50}, oracle);
  ASSERT_FALSE(result.estimates.empty());
  EXPECT_LT(distance(result.estimates[0].pos, {75, 50}), 12.0);
}

}  // namespace
}  // namespace radloc

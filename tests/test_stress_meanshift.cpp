// Deterministic stress harness for the mean-shift estimator.
//
// Degenerate weight vectors (all-zero, denormal, all-mass-on-one-particle),
// empty/singleton/duplicate inputs, randomized clouds, and thread-count
// determinism. The standing invariants: estimates are finite and inside the
// bounds, supports lie in [0, 1], seed selection never duplicates an index,
// and results are bit-identical at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {
namespace {

struct Cloud {
  std::vector<Point2> positions;
  std::vector<double> strengths;
  std::vector<double> weights;
};

// Two tight clusters plus scattered noise, uniform weights by default.
Cloud make_cloud(std::uint64_t seed, std::size_t n, const AreaBounds& bounds) {
  Rng rng(seed);
  Cloud c;
  for (std::size_t i = 0; i < n; ++i) {
    Point2 p;
    if (i % 3 == 0) {
      p = {25.0 + normal(rng, 0.0, 2.0), 70.0 + normal(rng, 0.0, 2.0)};
    } else if (i % 3 == 1) {
      p = {70.0 + normal(rng, 0.0, 2.0), 30.0 + normal(rng, 0.0, 2.0)};
    } else {
      p = uniform_point(rng, bounds);
    }
    c.positions.push_back(bounds.clamp(p));
    c.strengths.push_back(std::exp(uniform(rng, std::log(4.0), std::log(1000.0))));
    c.weights.push_back(1.0 / static_cast<double>(n));
  }
  return c;
}

void expect_estimate_invariants(const std::vector<SourceEstimate>& estimates,
                                const AreaBounds& bounds, const char* context) {
  SCOPED_TRACE(context);
  double total_support = 0.0;
  for (const SourceEstimate& e : estimates) {
    ASSERT_TRUE(std::isfinite(e.pos.x) && std::isfinite(e.pos.y));
    ASSERT_TRUE(bounds.contains(e.pos));
    ASSERT_TRUE(std::isfinite(e.strength));
    ASSERT_GT(e.strength, 0.0);
    ASSERT_GE(e.support, 0.0);
    ASSERT_LE(e.support, 1.0 + 1e-6);
    total_support += e.support;
  }
  ASSERT_LE(total_support, 1.0 + 1e-6);
}

TEST(StressMeanShift, DegenerateWeightVectors) {
  const AreaBounds bounds = make_area(100.0, 100.0);
  ThreadPool pool(1);
  MeanShiftEstimator estimator(bounds, MeanShiftConfig{}, pool);
  Cloud c = make_cloud(31, 300, bounds);

  // All-zero weights: no mass, no estimates.
  std::vector<double> zeros(c.positions.size(), 0.0);
  EXPECT_TRUE(estimator.estimate(c.positions, c.strengths, zeros).empty());

  // All mass on one particle: exactly that point comes back, full support.
  std::vector<double> one_hot(c.positions.size(), 0.0);
  one_hot[7] = 1.0;
  const auto hot = estimator.estimate(c.positions, c.strengths, one_hot);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_NEAR(hot[0].pos.x, c.positions[7].x, 1e-9);
  EXPECT_NEAR(hot[0].pos.y, c.positions[7].y, 1e-9);
  EXPECT_NEAR(hot[0].support, 1.0, 1e-9);
  expect_estimate_invariants(hot, bounds, "one-hot");

  // Uniform denormal weights: kernel sums may underflow to zero, but the
  // estimator must stay finite and within contract either way.
  std::vector<double> denormal(c.positions.size(), std::numeric_limits<double>::denorm_min());
  expect_estimate_invariants(estimator.estimate(c.positions, c.strengths, denormal), bounds,
                             "denormal");

  // Mass confined to one cluster, zeros elsewhere.
  std::vector<double> cluster_only(c.positions.size(), 0.0);
  for (std::size_t i = 0; i < cluster_only.size(); i += 3) cluster_only[i] = 1.0;
  const auto cluster = estimator.estimate(c.positions, c.strengths, cluster_only);
  expect_estimate_invariants(cluster, bounds, "cluster-only");
  ASSERT_FALSE(cluster.empty());
  EXPECT_NEAR(cluster[0].pos.x, 25.0, 5.0);
  EXPECT_NEAR(cluster[0].pos.y, 70.0, 5.0);
}

TEST(StressMeanShift, EmptySingletonAndDuplicateInputs) {
  const AreaBounds bounds = make_area(100.0, 100.0);
  ThreadPool pool(1);
  MeanShiftEstimator estimator(bounds, MeanShiftConfig{}, pool);

  EXPECT_TRUE(estimator.estimate({}, {}, {}).empty());

  const std::vector<Point2> single_pos{{42.0, 13.0}};
  const std::vector<double> single_str{50.0};
  const std::vector<double> single_w{1.0};
  const auto single = estimator.estimate(single_pos, single_str, single_w);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_NEAR(single[0].pos.x, 42.0, 1e-9);
  EXPECT_NEAR(single[0].strength, 50.0, 1e-6);

  // Every particle at the same point: one mode, all the mass.
  const std::size_t n = 200;
  const std::vector<Point2> dup_pos(n, Point2{60.0, 60.0});
  const std::vector<double> dup_str(n, 80.0);
  const std::vector<double> dup_w(n, 1.0 / static_cast<double>(n));
  const auto dup = estimator.estimate(dup_pos, dup_str, dup_w);
  ASSERT_EQ(dup.size(), 1u);
  EXPECT_NEAR(dup[0].pos.x, 60.0, 1e-9);
  EXPECT_NEAR(dup[0].support, 1.0, 1e-9);
}

TEST(StressMeanShift, SeedSelectionNeverDuplicatesAnIndex) {
  const AreaBounds bounds = make_area(100.0, 100.0);
  ThreadPool pool(1);

  // seed_separation == 0 disables the spatial thinning (0 < 0 is false), so
  // only the index check stands between a mass spike and max_seeds duplicate
  // ascents of the same particle — the regression this pins down.
  MeanShiftConfig cfg;
  cfg.seed_separation = 0.0;
  MeanShiftEstimator estimator(bounds, cfg, pool);

  Cloud c = make_cloud(77, 250, bounds);
  std::vector<double> spiked(c.positions.size(), 1e-12);
  spiked[13] = 1.0;  // virtually all mass on one particle

  const auto seeds = estimator.select_seeds(c.positions, spiked);
  ASSERT_FALSE(seeds.empty());
  std::set<std::uint32_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size()) << "select_seeds returned a duplicate index";
  for (const auto s : seeds) ASSERT_LT(s, c.positions.size());

  // Also holds for ordinary weights at several seeds.
  for (const std::uint64_t seed : {1u, 5u, 9u}) {
    Cloud cloud = make_cloud(seed, 300, bounds);
    const auto sel = estimator.select_seeds(cloud.positions, cloud.weights);
    std::set<std::uint32_t> uniq(sel.begin(), sel.end());
    EXPECT_EQ(uniq.size(), sel.size());
    EXPECT_LE(sel.size(), cfg.max_seeds);
  }
}

TEST(StressMeanShift, BitIdenticalAcrossThreadCounts) {
  const AreaBounds bounds = make_area(100.0, 100.0);
  Cloud c = make_cloud(8, 600, bounds);
  // Uneven weights so the basin-support reduction actually has structure.
  Rng rng(15);
  for (auto& w : c.weights) w = uniform01(rng);

  ThreadPool pool1(1);
  ThreadPool pool4(4, 4);
  ThreadPool pool8(8, 8);
  ThreadPool* pools[] = {&pool1, &pool4, &pool8};

  std::vector<SourceEstimate> reference;
  for (ThreadPool* pool : pools) {
    SCOPED_TRACE(::testing::Message() << pool->num_threads() << " threads");
    MeanShiftEstimator estimator(bounds, MeanShiftConfig{}, *pool);
    const auto estimates = estimator.estimate(c.positions, c.strengths, c.weights);
    expect_estimate_invariants(estimates, bounds, "thread sweep");
    if (reference.empty()) {
      reference = estimates;
      ASSERT_FALSE(reference.empty());
    } else {
      ASSERT_EQ(estimates.size(), reference.size());
      for (std::size_t i = 0; i < estimates.size(); ++i) {
        ASSERT_EQ(estimates[i].pos, reference[i].pos);
        ASSERT_EQ(estimates[i].strength, reference[i].strength);
        ASSERT_EQ(estimates[i].support, reference[i].support);
      }
    }
  }
}

TEST(StressMeanShift, RandomizedEpisodes) {
  const AreaBounds bounds = make_area(100.0, 100.0);
  ThreadPool pool(3, 3);
  MeanShiftEstimator estimator(bounds, MeanShiftConfig{}, pool);

  for (const std::uint64_t seed : {2u, 4u, 11u, 23u, 42u}) {
    SCOPED_TRACE(::testing::Message() << "episode seed " << seed);
    Rng rng(seed);
    const std::size_t n = 50 + static_cast<std::size_t>(uniform_index(rng, 400));
    Cloud c = make_cloud(seed * 31 + 7, n, bounds);
    // Corrupt the weight vector the ways a filter under stress would:
    // zero spans, denormal dust, a dominating spike.
    for (std::size_t i = 0; i < n; ++i) {
      const auto roll = uniform_index(rng, 10);
      if (roll < 3) {
        c.weights[i] = 0.0;
      } else if (roll < 5) {
        c.weights[i] = std::numeric_limits<double>::denorm_min();
      }
    }
    if (seed % 2 == 0) c.weights[uniform_index(rng, n)] = 10.0;
    expect_estimate_invariants(estimator.estimate(c.positions, c.strengths, c.weights), bounds,
                               "randomized episode");
  }
}

}  // namespace
}  // namespace radloc

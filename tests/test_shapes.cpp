#include <gtest/gtest.h>

#include <cmath>

#include "radloc/common/math.hpp"
#include "radloc/geom/intersect.hpp"
#include "radloc/geom/shapes.hpp"

namespace radloc {
namespace {

TEST(RegularPolygon, ApproximatesDiscArea) {
  const Point2 c{50, 50};
  const double r = 10.0;
  const Polygon p = make_regular_polygon(c, r, 32);
  EXPECT_EQ(p.size(), 32u);
  // n-gon area = 0.5 n r^2 sin(2pi/n), close to pi r^2 for n = 32.
  const double expected = 0.5 * 32 * r * r * std::sin(2.0 * kPi / 32);
  EXPECT_NEAR(std::abs(p.signed_area()), expected, 1e-9);
  EXPECT_NEAR(std::abs(p.signed_area()), kPi * r * r, 2.5);
}

TEST(RegularPolygon, ContainsCenterNotOutside) {
  const Polygon p = make_regular_polygon({0, 0}, 5.0, 16);
  EXPECT_TRUE(p.contains({0, 0}));
  EXPECT_TRUE(p.contains({3, 0}));
  EXPECT_FALSE(p.contains({5.1, 0}));
  EXPECT_TRUE(is_convex(p));
}

TEST(RegularPolygon, ChordThroughCenterIsDiameter) {
  const Polygon p = make_regular_polygon({50, 50}, 10.0, 64);
  EXPECT_NEAR(chord_length({{30, 50}, {70, 50}}, p), 20.0, 0.1);
}

TEST(RegularPolygon, Validation) {
  EXPECT_THROW((void)make_regular_polygon({0, 0}, 1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)make_regular_polygon({0, 0}, 0.0, 8), std::invalid_argument);
}

TEST(LShape, AreaAndContainment) {
  // Arms: horizontal [0,20]x[0,3], vertical [0,4]x[0,15].
  const Polygon l = make_l_shape(0, 0, 20, 15, 3.0, 4.0);
  EXPECT_NEAR(std::abs(l.signed_area()), 20 * 3 + 4 * (15 - 3), 1e-9);
  EXPECT_TRUE(l.contains({10, 1.5}));   // horizontal arm
  EXPECT_TRUE(l.contains({2, 10}));     // vertical arm
  EXPECT_FALSE(l.contains({10, 10}));   // the notch
  EXPECT_FALSE(is_convex(l));
}

TEST(LShape, Validation) {
  EXPECT_THROW((void)make_l_shape(0, 0, 3, 15, 3.0, 4.0), std::invalid_argument);
  EXPECT_THROW((void)make_l_shape(0, 0, 20, 15, 0.0, 4.0), std::invalid_argument);
}

TEST(Wall, OrientedRectangleGeometry) {
  const Polygon w = make_wall({0, 0}, {10, 0}, 2.0);
  EXPECT_NEAR(std::abs(w.signed_area()), 20.0, 1e-9);
  EXPECT_TRUE(w.contains({5, 0.9}));
  EXPECT_TRUE(w.contains({5, -0.9}));
  EXPECT_FALSE(w.contains({5, 1.1}));

  // Diagonal wall: crossing it orthogonally traverses the thickness.
  const Polygon d = make_wall({0, 0}, {10, 10}, 2.0);
  EXPECT_NEAR(chord_length({{7, 3}, {3, 7}}, d), 2.0, 1e-9);
}

TEST(Wall, Validation) {
  EXPECT_THROW((void)make_wall({1, 1}, {1, 1}, 2.0), std::invalid_argument);
  EXPECT_THROW((void)make_wall({0, 0}, {1, 0}, 0.0), std::invalid_argument);
}

TEST(Transforms, TranslationMovesAabb) {
  const Polygon p = make_rect(0, 0, 10, 5);
  const Polygon t = translated(p, {100, 50});
  EXPECT_EQ(t.aabb().min, (Point2{100, 50}));
  EXPECT_EQ(t.aabb().max, (Point2{110, 55}));
  EXPECT_NEAR(std::abs(t.signed_area()), std::abs(p.signed_area()), 1e-9);
}

TEST(Transforms, RotationPreservesAreaAndPivot) {
  const Polygon p = make_rect(0, 0, 10, 4);
  const Point2 pivot{5, 2};
  const Polygon r = rotated(p, kPi / 2.0, pivot);
  EXPECT_NEAR(std::abs(r.signed_area()), 40.0, 1e-9);
  EXPECT_TRUE(r.contains(pivot));
  // 90-degree rotation swaps extents around the pivot.
  EXPECT_NEAR(r.aabb().width(), 4.0, 1e-9);
  EXPECT_NEAR(r.aabb().height(), 10.0, 1e-9);
}

TEST(Transforms, FullTurnIsIdentity) {
  const Polygon p = make_regular_polygon({3, 4}, 2.0, 7);
  const Polygon r = rotated(p, 2.0 * kPi, {0, 0});
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(r.vertices()[i].x, p.vertices()[i].x, 1e-9);
    EXPECT_NEAR(r.vertices()[i].y, p.vertices()[i].y, 1e-9);
  }
}

TEST(Centroid, RectAndTriangle) {
  EXPECT_EQ(centroid(make_rect(0, 0, 10, 4)), (Point2{5, 2}));
  const Polygon tri({{0, 0}, {6, 0}, {0, 6}});
  const Point2 c = centroid(tri);
  EXPECT_NEAR(c.x, 2.0, 1e-9);
  EXPECT_NEAR(c.y, 2.0, 1e-9);
}

TEST(Centroid, InvariantUnderRotationAboutCentroid) {
  const Polygon p = make_l_shape(0, 0, 20, 15, 3.0, 4.0);
  const Point2 c = centroid(p);
  const Point2 c2 = centroid(rotated(p, 1.0, c));
  EXPECT_NEAR(c2.x, c.x, 1e-9);
  EXPECT_NEAR(c2.y, c.y, 1e-9);
}

TEST(Convexity, Classification) {
  EXPECT_TRUE(is_convex(make_rect(0, 0, 1, 1)));
  EXPECT_TRUE(is_convex(make_regular_polygon({0, 0}, 1.0, 12)));
  EXPECT_FALSE(is_convex(make_u_shape(0, 0, 30, 30, 5)));
  EXPECT_FALSE(is_convex(make_l_shape(0, 0, 20, 15, 3, 4)));
}

}  // namespace
}  // namespace radloc

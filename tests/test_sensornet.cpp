#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "radloc/common/math.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/sensornet/validation.hpp"

namespace radloc {
namespace {

TEST(Placement, GridCoversAreaUniformly) {
  const AreaBounds area = make_area(100, 100);
  const auto sensors = place_grid(area, 6, 6);
  ASSERT_EQ(sensors.size(), 36u);
  // Corners present.
  EXPECT_EQ(sensors.front().pos, (Point2{0, 0}));
  EXPECT_EQ(sensors.back().pos, (Point2{100, 100}));
  // 20-unit pitch.
  EXPECT_EQ(sensors[1].pos, (Point2{20, 0}));
  EXPECT_EQ(sensors[6].pos, (Point2{0, 20}));
  // Dense ids in order.
  for (std::size_t i = 0; i < sensors.size(); ++i) EXPECT_EQ(sensors[i].id, i);
}

TEST(Placement, GridRejectsTooFew) {
  EXPECT_THROW((void)place_grid(make_area(10, 10), 1, 5), std::invalid_argument);
}

TEST(Placement, PoissonCountAndBounds) {
  Rng rng(7);
  const AreaBounds area = make_area(260, 260);
  const auto sensors = place_poisson(rng, area, 195);
  ASSERT_EQ(sensors.size(), 195u);
  for (const auto& s : sensors) EXPECT_TRUE(area.contains(s.pos));
}

TEST(Placement, SetBackgroundAppliesToAll) {
  auto sensors = place_grid(make_area(100, 100), 3, 3);
  set_background(sensors, 50.0);
  for (const auto& s : sensors) EXPECT_DOUBLE_EQ(s.response.background_cpm, 50.0);
}

TEST(Simulator, ExpectedRateMatchesModel) {
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 2, 2);
  set_background(sensors, 5.0);
  const std::vector<Source> sources{{{0, 0}, 10.0}};
  MeasurementSimulator sim(env, sensors, sources);

  // Sensor 0 is at the source: rate = C*E*10 + 5.
  EXPECT_NEAR(sim.expected_cpm_at(0),
              kMicroCurieToCpm * kDefaultEfficiency * 10.0 + 5.0, 1e-9);
  // Sensor 3 is at (100,100), r^2 = 20000.
  EXPECT_NEAR(sim.expected_cpm_at(3),
              kMicroCurieToCpm * kDefaultEfficiency * 10.0 / 20001.0 + 5.0, 1e-9);
}

TEST(Simulator, SampleMeanConvergesToRate) {
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 2, 2);
  set_background(sensors, 5.0);
  MeasurementSimulator sim(env, sensors, {{{50, 50}, 20.0}});
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(sim.sample(rng, 0).cpm);
  const double rate = sim.expected_cpm_at(0);
  EXPECT_NEAR(rs.mean(), rate, 5.0 * std::sqrt(rate / 20000.0));
}

TEST(Simulator, TimeStepProducesOnePerLiveSensor) {
  Environment env(make_area(100, 100));
  const auto sensors = place_grid(env.bounds(), 3, 3);
  MeasurementSimulator sim(env, sensors, {{{50, 50}, 10.0}});
  Rng rng(12);
  auto batch = sim.sample_time_step(rng);
  EXPECT_EQ(batch.size(), 9u);

  sim.kill_sensor(4);
  EXPECT_TRUE(sim.is_dead(4));
  batch = sim.sample_time_step(rng);
  EXPECT_EQ(batch.size(), 8u);
  EXPECT_TRUE(std::none_of(batch.begin(), batch.end(),
                           [](const Measurement& m) { return m.sensor == 4; }));
}

TEST(Simulator, ObstacleReducesExpectedRate) {
  Environment blocked(make_area(100, 100),
                      {Obstacle(make_rect(40, 0, 60, 100), 0.0693)});
  Environment open = blocked.without_obstacles();
  auto sensors = place_grid(make_area(100, 100), 2, 2);
  const std::vector<Source> sources{{{0, 50}, 100.0}};

  MeasurementSimulator sim_blocked(blocked, sensors, sources);
  MeasurementSimulator sim_open(open, sensors, sources);
  // Sensor 1 at (100, 0): path crosses the slab.
  EXPECT_LT(sim_blocked.expected_cpm_at(1), sim_open.expected_cpm_at(1));
  // Sensor 0 at (0, 0): path does not cross.
  EXPECT_DOUBLE_EQ(sim_blocked.expected_cpm_at(0), sim_open.expected_cpm_at(0));
}

TEST(Simulator, RejectsUnorderedSensorIds) {
  Environment env(make_area(10, 10));
  std::vector<Sensor> bad{{3, {0, 0}, {}}, {1, {1, 1}, {}}};
  EXPECT_THROW(MeasurementSimulator(env, bad, {}), std::invalid_argument);
}

TEST(Delivery, InOrderIsIdentity) {
  Rng rng(1);
  InOrderDelivery d;
  std::vector<Measurement> batch{{0, 1.0}, {1, 2.0}, {2, 3.0}};
  const auto out = d.deliver(rng, batch);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].sensor, batch[i].sensor);
}

TEST(Delivery, ShuffledIsPermutation) {
  Rng rng(2);
  ShuffledDelivery d;
  std::vector<Measurement> batch;
  for (SensorId i = 0; i < 50; ++i) batch.push_back({i, static_cast<double>(i)});
  const auto out = d.deliver(rng, batch);
  ASSERT_EQ(out.size(), batch.size());
  std::vector<SensorId> ids;
  for (const auto& m : out) ids.push_back(m.sensor);
  std::sort(ids.begin(), ids.end());
  for (SensorId i = 0; i < 50; ++i) EXPECT_EQ(ids[i], i);
}

TEST(Delivery, ShuffledActuallyReorders) {
  Rng rng(3);
  ShuffledDelivery d;
  std::vector<Measurement> batch;
  for (SensorId i = 0; i < 100; ++i) batch.push_back({i, 0.0});
  const auto out = d.deliver(rng, batch);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].sensor != i) ++moved;
  }
  EXPECT_GT(moved, 50u);
}

TEST(Delivery, LossyDropsExpectedFraction) {
  Rng rng(4);
  LossyDelivery d(0.3, std::make_unique<InOrderDelivery>());
  std::size_t delivered = 0;
  constexpr std::size_t rounds = 200;
  constexpr std::size_t per_round = 100;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Measurement> batch(per_round);
    delivered += d.deliver(rng, batch).size();
  }
  const double frac = static_cast<double>(delivered) / (rounds * per_round);
  EXPECT_NEAR(frac, 0.7, 0.02);
}

TEST(Delivery, LossyRejectsBadRate) {
  EXPECT_THROW(LossyDelivery(1.0, std::make_unique<InOrderDelivery>()), std::invalid_argument);
  EXPECT_THROW(LossyDelivery(0.5, nullptr), std::invalid_argument);
}

TEST(Delivery, RandomLatencyConservesMeasurements) {
  Rng rng(5);
  RandomLatencyDelivery d(2.0);
  std::size_t sent = 0;
  std::size_t received = 0;
  for (std::size_t step = 0; step < 50; ++step) {
    std::vector<Measurement> batch(10);
    sent += batch.size();
    received += d.deliver(rng, std::move(batch)).size();
  }
  received += d.drain(rng).size();
  EXPECT_EQ(d.drain(rng).size(), 0u);  // drain empties the queue
  EXPECT_EQ(received, sent);
}

TEST(Delivery, RandomLatencyDelaysOnAverage) {
  Rng rng(6);
  RandomLatencyDelivery d(3.0);  // mean 3 steps of delay
  // Inject one batch, count how many steps it takes to drain naturally.
  auto first = d.deliver(rng, std::vector<Measurement>(1000));
  std::size_t received = first.size();
  std::size_t weighted_delay = 0;
  for (std::size_t step = 1; step <= 200 && received < 1000; ++step) {
    const auto out = d.deliver(rng, {});
    weighted_delay += step * out.size();
    received += out.size();
  }
  ASSERT_EQ(received, 1000u);
  const double mean_delay = static_cast<double>(weighted_delay) / 1000.0;
  EXPECT_NEAR(mean_delay, 3.0, 0.4);
}

TEST(Delivery, DrainShufflesTheInFlightTail) {
  // The latency model promises out-of-order arrivals; before the fix the
  // drained shutdown tail came back in insertion order, leaking ordering
  // deliver() never provides.
  Rng rng(8);
  RandomLatencyDelivery d(1e6);  // essentially nothing delivers on its own
  std::vector<Measurement> batch;
  for (SensorId i = 0; i < 200; ++i) batch.push_back({i, static_cast<double>(i)});
  const auto delivered = d.deliver(rng, batch);
  const auto tail = d.drain(rng);
  ASSERT_EQ(delivered.size() + tail.size(), 200u);

  // Still a permutation of what went in...
  std::vector<SensorId> ids;
  for (const auto& m : delivered) ids.push_back(m.sensor);
  for (const auto& m : tail) ids.push_back(m.sensor);
  std::vector<SensorId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  for (SensorId i = 0; i < 200; ++i) EXPECT_EQ(sorted[i], i);

  // ...but the tail no longer preserves insertion (ascending-id) order.
  std::size_t displaced = 0;
  std::vector<SensorId> tail_ids;
  for (const auto& m : tail) tail_ids.push_back(m.sensor);
  std::vector<SensorId> tail_sorted = tail_ids;
  std::sort(tail_sorted.begin(), tail_sorted.end());
  for (std::size_t i = 0; i < tail_ids.size(); ++i) {
    if (tail_ids[i] != tail_sorted[i]) ++displaced;
  }
  EXPECT_GT(displaced, tail_ids.size() / 2);
}

TEST(Delivery, ZeroLatencyIsImmediate) {
  Rng rng(7);
  RandomLatencyDelivery d(0.0);
  const auto out = d.deliver(rng, std::vector<Measurement>(25));
  EXPECT_EQ(out.size(), 25u);
}

// ---------------------------------------------------------------------------
// Timestamp validation (streaming ingest): a NaN timestamp fed into a
// comparison-based drain order breaks strict weak ordering (UB for
// std::sort), so timed readings must be rejected at the choke point before
// any per-session ordering decision. Regression tests pin the exact fault
// per degenerate value.

TEST(Validation, TimestampFaultsPinned) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(MeasurementValidator::check_timestamp(0.0), ReadingFault::kNone);
  EXPECT_EQ(MeasurementValidator::check_timestamp(1e12), ReadingFault::kNone);
  EXPECT_EQ(MeasurementValidator::check_timestamp(nan), ReadingFault::kNonFiniteTimestamp);
  EXPECT_EQ(MeasurementValidator::check_timestamp(inf), ReadingFault::kNonFiniteTimestamp);
  EXPECT_EQ(MeasurementValidator::check_timestamp(-inf), ReadingFault::kNonFiniteTimestamp);
  EXPECT_EQ(MeasurementValidator::check_timestamp(-0.5), ReadingFault::kNegativeTimestamp);
  // -0.0 compares == 0.0: not negative, admitted.
  EXPECT_EQ(MeasurementValidator::check_timestamp(-0.0), ReadingFault::kNone);
  // Subnormal timestamps are finite and non-negative: admitted.
  EXPECT_EQ(MeasurementValidator::check_timestamp(std::numeric_limits<double>::denorm_min()),
            ReadingFault::kNone);
}

TEST(Validation, TimedCheckOrdersTimestampBeforeMeasurement) {
  MeasurementValidator v(4);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Both the timestamp and the measurement are malformed: the timestamp
  // verdict wins (it is checked first — it guards the ordering decision that
  // happens before the reading is even looked at).
  EXPECT_EQ(v.check_timed({99, nan}, nan), ReadingFault::kNonFiniteTimestamp);
  EXPECT_EQ(v.check_timed({99, 10.0}, 1.0), ReadingFault::kUnknownSensor);
  EXPECT_EQ(v.check_timed({1, -3.0}, 1.0), ReadingFault::kNegativeCpm);
  EXPECT_EQ(v.check_timed({1, 10.0}, 1.0), ReadingFault::kNone);
}

TEST(Validation, AdmitTimedTalliesPerFault) {
  MeasurementValidator v(4);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(v.admit_timed({0, 5.0}, 0.0), ReadingFault::kNone);
  EXPECT_EQ(v.admit_timed({0, 5.0}, nan), ReadingFault::kNonFiniteTimestamp);
  EXPECT_EQ(v.admit_timed({0, 5.0}, inf), ReadingFault::kNonFiniteTimestamp);
  EXPECT_EQ(v.admit_timed({0, 5.0}, -1.0), ReadingFault::kNegativeTimestamp);
  EXPECT_EQ(v.admit_timed({9, 5.0}, 2.0), ReadingFault::kUnknownSensor);
  EXPECT_EQ(v.count(ReadingFault::kNonFiniteTimestamp), 2u);
  EXPECT_EQ(v.count(ReadingFault::kNegativeTimestamp), 1u);
  EXPECT_EQ(v.accepted(), 1u);
  EXPECT_EQ(v.rejected(), 4u);
}

TEST(Validation, EnforceNamesTimestampFault) {
  try {
    MeasurementValidator::enforce(ReadingFault::kNonFiniteTimestamp);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("timestamp"), std::string::npos);
  }
}

}  // namespace
}  // namespace radloc

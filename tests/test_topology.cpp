#include <gtest/gtest.h>

#include <algorithm>

#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/topology.hpp"

namespace radloc {
namespace {

/// 3x3 grid over 40x40: pitch 20, so radio range 25 links the 4-neighbors
/// (and diagonals at ~28.3 are out of range).
std::vector<Sensor> grid9() { return place_grid(make_area(40, 40), 3, 3); }

TEST(Topology, GridNeighborhood) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, /*base=*/0);
  // Center sensor (id 4) has the 4 axis neighbors.
  auto n = topo.neighbors(4);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<SensorId>{1, 3, 5, 7}));
  // Corner sensor has 2.
  EXPECT_EQ(topo.neighbors(0).size(), 2u);
}

TEST(Topology, BfsHopsFromCorner) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  EXPECT_EQ(*topo.hops(0), 0u);
  EXPECT_EQ(*topo.hops(1), 1u);
  EXPECT_EQ(*topo.hops(4), 2u);  // manhattan distance on the grid graph
  EXPECT_EQ(*topo.hops(8), 4u);
  EXPECT_EQ(topo.connected_count(), 9u);
  EXPECT_FALSE(topo.parent(0).has_value());
}

TEST(Topology, RouteWalksToBase) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  const auto route = topo.route(8);
  ASSERT_EQ(route.size(), 5u);  // 4 hops -> 5 nodes
  EXPECT_EQ(route.front(), 8u);
  EXPECT_EQ(route.back(), 0u);
  // Each consecutive pair must be a graph edge.
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    const auto& n = topo.neighbors(route[i]);
    EXPECT_NE(std::find(n.begin(), n.end(), route[i + 1]), n.end());
  }
}

TEST(Topology, ShortRangeDisconnects) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 10.0, 0);  // pitch 20 > range: all isolated
  EXPECT_EQ(topo.connected_count(), 1u);
  EXPECT_FALSE(topo.hops(1).has_value());
  EXPECT_TRUE(topo.route(8).empty());
}

TEST(Topology, KillingRelayReroutesOrOrphans) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  // Sensor 8's shortest routes go through 5 or 7. Kill both: 8 must still
  // reach via... no other path (4-neighborhood) -> orphaned.
  topo.kill(5);
  EXPECT_TRUE(topo.connected(8));  // still via 7
  topo.kill(7);
  EXPECT_FALSE(topo.connected(8));
  EXPECT_TRUE(topo.connected(4));  // rest of the grid still routed
  EXPECT_EQ(topo.connected_count(), 6u);  // 9 - two dead - one orphan
}

TEST(Topology, DeadBaseStationKillsEverything) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  topo.kill(0);
  EXPECT_EQ(topo.connected_count(), 0u);
}

TEST(Topology, Validation) {
  const auto sensors = grid9();
  EXPECT_THROW(NetworkTopology(sensors, 25.0, 99), std::invalid_argument);
  EXPECT_THROW(NetworkTopology(sensors, 0.0, 0), std::invalid_argument);
}

TEST(MultiHop, LosslessDeliveryHonorsHopLatency) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  MultiHopDelivery delivery(topo, /*per_hop_loss=*/0.0, /*slots_per_step=*/1);
  Rng rng(1);

  // One measurement from the far corner (4 hops): arrives on the 4th step.
  std::vector<Measurement> batch{{8, 10.0}};
  EXPECT_TRUE(delivery.deliver(rng, batch).empty());           // 3 hops left
  EXPECT_TRUE(delivery.deliver(rng, {}).empty());              // 2
  EXPECT_TRUE(delivery.deliver(rng, {}).empty());              // 1
  const auto arrived = delivery.deliver(rng, {});
  ASSERT_EQ(arrived.size(), 1u);
  EXPECT_EQ(arrived[0].sensor, 8u);
}

TEST(MultiHop, FastSlotsDeliverSameStep) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  MultiHopDelivery delivery(topo, 0.0, /*slots_per_step=*/8);
  Rng rng(2);
  std::vector<Measurement> batch;
  for (SensorId i = 0; i < 9; ++i) batch.push_back({i, 1.0});
  EXPECT_EQ(delivery.deliver(rng, batch).size(), 9u);
}

TEST(MultiHop, OrphansNeverArrive) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  topo.kill(5);
  topo.kill(7);  // orphans sensor 8
  MultiHopDelivery delivery(topo, 0.0, 8);
  Rng rng(3);
  std::vector<Measurement> batch{{8, 1.0}, {4, 2.0}};
  const auto arrived = delivery.deliver(rng, batch);
  ASSERT_EQ(arrived.size(), 1u);
  EXPECT_EQ(arrived[0].sensor, 4u);
  EXPECT_TRUE(delivery.drain(rng).empty());
}

TEST(MultiHop, PerHopLossCompounds) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  MultiHopDelivery delivery(topo, /*per_hop_loss=*/0.2, /*slots_per_step=*/8);
  Rng rng(4);
  // Far corner (4 hops): survival ~ 0.8^4 = 0.41. Near sensor (1 hop): 0.8.
  std::size_t far_ok = 0;
  std::size_t near_ok = 0;
  constexpr int rounds = 3000;
  for (int r = 0; r < rounds; ++r) {
    std::vector<Measurement> batch{{8, 1.0}, {1, 2.0}};
    for (const auto& m : delivery.deliver(rng, batch)) {
      if (m.sensor == 8) ++far_ok;
      if (m.sensor == 1) ++near_ok;
    }
    (void)delivery.drain(rng);
  }
  EXPECT_NEAR(static_cast<double>(far_ok) / rounds, 0.41, 0.04);
  EXPECT_NEAR(static_cast<double>(near_ok) / rounds, 0.80, 0.04);
}

TEST(MultiHop, BaseStationMeasurementIsImmediate) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  MultiHopDelivery delivery(topo, 0.5, 1);
  Rng rng(5);
  // Zero hops: no transmissions, no loss.
  for (int i = 0; i < 20; ++i) {
    std::vector<Measurement> batch{{0, 1.0}};
    EXPECT_EQ(delivery.deliver(rng, batch).size(), 1u);
  }
}

TEST(MultiHop, Validation) {
  const auto sensors = grid9();
  NetworkTopology topo(sensors, 25.0, 0);
  EXPECT_THROW(MultiHopDelivery(topo, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(MultiHopDelivery(topo, 0.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace radloc

// Energy-constrained monitoring: poll only a handful of sensors per round.
//
// Battery-powered sensors cannot all report every round. The adaptive
// planner ranks sensors by how much their next reading would tell the
// current posterior, concentrating the energy budget where the uncertainty
// is. This example compares adaptive polling against a fixed round-robin
// schedule at the same budget.
#include <iostream>

#include "radloc/radloc.hpp"

namespace {

using namespace radloc;

struct Outcome {
  double mean_error;
  std::size_t false_negatives;
  std::size_t estimates;
};

Outcome run(bool adaptive, const Environment& env, const std::vector<Sensor>& sensors,
            const std::vector<Source>& truth, std::size_t budget) {
  MeasurementSimulator simulator(env, sensors, truth);
  MultiSourceLocalizer localizer(env, sensors, LocalizerConfig{}, /*seed=*/21);
  AdaptiveSensingPlanner planner;
  Rng noise(22);

  std::size_t round_robin_cursor = 0;
  for (int step = 0; step < 40; ++step) {
    std::vector<SensorId> poll;
    if (step < 2) {
      // Both strategies bootstrap with one full sweep for initial coverage.
      for (SensorId i = 0; i < sensors.size(); ++i) poll.push_back(i);
    } else if (adaptive) {
      poll = planner.select(localizer.filter(), budget);
    } else {
      for (std::size_t k = 0; k < budget; ++k) {
        poll.push_back(static_cast<SensorId>(round_robin_cursor++ % sensors.size()));
      }
    }
    for (const auto id : poll) localizer.process(simulator.sample(noise, id));
  }

  const auto estimates = localizer.estimate();
  const auto match = match_estimates(truth, estimates);
  return Outcome{match.mean_error(), match.false_negatives, estimates.size()};
}

}  // namespace

int main() {
  using namespace radloc;

  Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> truth{{{47.0, 71.0}, 30.0}, {{81.0, 42.0}, 30.0}};

  std::cout << "Two 30 uCi sources; 36 sensors; only `budget` report per round.\n\n";
  std::cout << "budget  strategy     mean_err  false_neg  estimates\n";
  for (const std::size_t budget : {4u, 8u, 16u}) {
    for (const bool adaptive : {false, true}) {
      const auto r = run(adaptive, env, sensors, truth, budget);
      std::cout << "  " << budget << "     " << (adaptive ? "adaptive  " : "round-robin")
                << "   " << r.mean_error << "      " << r.false_negatives << "        "
                << r.estimates << "\n";
    }
  }
  std::cout << "\nAdaptive polling concentrates the budget where the posterior is\n"
               "uncertain; its advantage is largest when the budget is tightest.\n";
  return 0;
}

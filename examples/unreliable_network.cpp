// Robustness to real sensor networks: out-of-order delivery, message loss,
// multi-hop latency, and dead sensors (paper Sec. V bullet 1, Scenario C).
//
// The same two-source scene is localized under increasingly hostile network
// conditions; the localizer's design — one unordered measurement per
// iteration — keeps it working through all of them.
#include <iostream>
#include <memory>

#include "radloc/radloc.hpp"

namespace {

using namespace radloc;

void run(const char* label, std::unique_ptr<DeliveryModel> delivery,
         const std::vector<SensorId>& dead_sensors) {
  Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> truth{{{47.0, 71.0}, 20.0}, {{81.0, 42.0}, 20.0}};

  MeasurementSimulator simulator(env, sensors, truth);
  for (const auto id : dead_sensors) simulator.kill_sensor(id);

  MultiSourceLocalizer localizer(env, sensors, LocalizerConfig{}, /*seed=*/5);
  Rng noise(6);
  Rng net(7);

  std::size_t delivered = 0;
  for (int step = 0; step < 20; ++step) {
    auto arrived = delivery->deliver(net, simulator.sample_time_step(noise));
    delivered += arrived.size();
    localizer.process_all(arrived);
  }

  const auto match = match_estimates(truth, localizer.estimate());
  std::cout << label << ": " << delivered << " measurements delivered, mean error "
            << match.mean_error() << ", FP " << match.false_positives << ", FN "
            << match.false_negatives << "\n";
}

}  // namespace

int main() {
  using namespace radloc;
  std::cout << "Two 20 uCi sources, 20 time steps, increasingly hostile networks:\n\n";

  run("perfect in-order delivery     ", std::make_unique<InOrderDelivery>(), {});
  run("out-of-order (shuffled)       ", std::make_unique<ShuffledDelivery>(), {});
  run("25% message loss + shuffled   ",
      std::make_unique<LossyDelivery>(0.25, std::make_unique<ShuffledDelivery>()), {});
  run("multi-hop latency (mean 2 st.)", std::make_unique<RandomLatencyDelivery>(2.0), {});
  run("loss + latency + 4 dead nodes ",
      std::make_unique<LossyDelivery>(0.25, std::make_unique<RandomLatencyDelivery>(2.0)),
      {0, 7, 21, 35});

  std::cout << "\nThe algorithm never waits for a complete round and assumes no\n"
               "ordering, so degradation is graceful in every condition.\n";
  return 0;
}

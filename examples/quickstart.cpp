// Quickstart: localize two radiation sources with a 6x6 sensor grid.
//
// Shows the minimal radloc workflow:
//   1. describe the surveillance area and sensor deployment;
//   2. (here) simulate ground-truth measurements — in a real deployment
//      these arrive from the network;
//   3. feed measurements to MultiSourceLocalizer as they arrive;
//   4. read out the source estimates whenever you like.
#include <iostream>

#include "radloc/radloc.hpp"

int main() {
  using namespace radloc;

  // 1. A 100 x 100 surveillance area with a 6 x 6 sensor grid; each sensor
  //    sees 5 CPM of background radiation. The localizer is NOT told
  //    anything about sources or obstacles.
  Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);

  // 2. Ground truth for the simulation: two sources the localizer must find.
  const std::vector<Source> truth{{{47.0, 71.0}, 10.0}, {{81.0, 42.0}, 10.0}};
  MeasurementSimulator simulator(env, sensors, truth);
  Rng noise(/*seed=*/2024);

  // 3. The localizer. Default configuration matches the paper: 2000
  //    particles, fusion range 28, resampling noise 3.
  MultiSourceLocalizer localizer(env, sensors, LocalizerConfig{}, /*seed=*/1);

  std::cout << "truth: (47,71) and (81,42), both 10 uCi\n\n";
  for (int step = 1; step <= 10; ++step) {
    // One time step: every sensor reports one measurement.
    localizer.process_all(simulator.sample_time_step(noise));

    // 4. Estimates: one per discovered source; K is learned, not given.
    const auto estimates = localizer.estimate();
    std::cout << "time step " << step << ": " << estimates.size() << " source(s)";
    for (const auto& e : estimates) {
      std::cout << "  [pos (" << e.pos.x << ", " << e.pos.y << "), strength " << e.strength
                << " uCi, support " << e.support << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

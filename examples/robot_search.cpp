// A detector-carrying robot hunts a hidden source (related work [18]).
//
// No fixed sensor network: a single mobile detector drives through the
// area, feeding position-stamped readings into the same fusion-range
// particle filter, steering toward wherever a reading would be most
// informative. Prints the trajectory and the converged estimate, and
// writes an SVG of the hunt.
#include <iomanip>
#include <iostream>

#include "radloc/radloc.hpp"
#include "radloc/viz/svg.hpp"

namespace {

using namespace radloc;

class SimOracle final : public MeasurementOracle {
 public:
  SimOracle(const MeasurementSimulator& sim, std::uint64_t seed) : sim_(&sim), rng_(seed) {}
  double read_cpm(const Point2& at, const SensorResponse& response) override {
    return sim_->sample_at(rng_, at, response);
  }

 private:
  const MeasurementSimulator* sim_;
  Rng rng_;
};

}  // namespace

int main() {
  using namespace radloc;

  Environment env(make_area(100.0, 100.0));
  const std::vector<Source> truth{{{70.0, 65.0}, 50.0}};
  MeasurementSimulator sim(env, {{0, {0.0, 0.0}, {}}}, truth);
  SimOracle oracle(sim, 2);

  SearcherConfig cfg;
  cfg.filter.num_particles = 2000;
  MobileSearcher searcher(env, cfg, Rng(3));

  std::cout << "Hidden 50 uCi source at (70, 65); robot starts at (10, 10).\n\n";
  const auto result = searcher.search({10.0, 10.0}, oracle);

  std::cout << std::fixed << std::setprecision(1);
  for (std::size_t i = 0; i < result.path.size(); i += 15) {
    const auto& s = result.path[i];
    std::cout << "step " << std::setw(3) << i << ": (" << std::setw(5) << s.position.x << ", "
              << std::setw(5) << s.position.y << ")  reading " << std::setw(7) << s.reading
              << " CPM  local spread " << s.spread << "\n";
  }
  std::cout << "\n" << (result.converged ? "CONVERGED" : "budget exhausted") << " after "
            << result.path.size() << " steps, " << result.distance_travelled
            << " units travelled\n";
  for (const auto& e : result.estimates) {
    std::cout << "estimate: (" << e.pos.x << ", " << e.pos.y << ") ~" << e.strength
              << " uCi (true error " << distance(e.pos, truth[0].pos) << ")\n";
  }

  // Visualize: path as a polyline of small dots, final cloud + estimate.
  auto canvas = render_scene(env, {}, truth, searcher.filter().positions(), result.estimates);
  std::vector<Point2> waypoints;
  for (const auto& s : result.path) waypoints.push_back(s.position);
  canvas.add_points(waypoints, 2.0, "#ff9900", 0.9);
  const std::string path = "robot_search.svg";
  canvas.save(path);
  std::cout << "\ntrajectory written to " << path << " (orange dots = robot path)\n";
  return 0;
}

// Coordinated-attack drill: the paper's motivating scenario.
//
// Four radiological dispersal devices of very different strengths are
// hidden across a 260x260 urban district monitored by a 14x14 sensor grid.
// A fifth device is driven into the area mid-drill (the "new source enters
// the area" case of Sec. V-E). The operator watches detections appear,
// strengthen, and localize in real time.
#include <iomanip>
#include <iostream>

#include "radloc/radloc.hpp"

int main() {
  using namespace radloc;

  Environment env(make_area(260.0, 260.0));
  auto sensors = place_grid(env.bounds(), 14, 14);
  set_background(sensors, 5.0);

  std::vector<Source> devices{
      {{40.0, 200.0}, 120.0},  // truck bomb in the north-west
      {{210.0, 220.0}, 15.0},  // weak device on a rooftop
      {{130.0, 60.0}, 60.0},   // mid-strength device downtown
      {{230.0, 40.0}, 35.0},   // device near the south-east exit
  };
  const Source latecomer{{70.0, 70.0}, 80.0};  // arrives at step 12

  LocalizerConfig cfg;
  cfg.filter.num_particles = 15000;  // paper: proportional to area
  MultiSourceLocalizer localizer(env, sensors, cfg, /*seed=*/7);
  Rng noise(8);

  std::cout << "Dirty-bomb drill: 4 hidden devices, a 5th arrives at step 12.\n"
            << "truth: (40,200)x120  (210,220)x15  (130,60)x60  (230,40)x35, then "
               "(70,70)x80\n\n";

  for (int step = 1; step <= 24; ++step) {
    if (step == 12) {
      devices.push_back(latecomer);
      std::cout << ">>> step 12: a new device enters the area at (70,70)\n";
    }
    // Rebuild the simulator when ground truth changes.
    MeasurementSimulator simulator(env, sensors, devices);
    localizer.process_all(simulator.sample_time_step(noise));

    const auto estimates = localizer.estimate();
    std::cout << "step " << std::setw(2) << step << ": " << estimates.size()
              << " device(s) detected";
    for (const auto& e : estimates) {
      std::cout << "  (" << std::setprecision(3) << e.pos.x << "," << e.pos.y << ")~"
                << std::setprecision(2) << e.strength << "uCi";
    }
    std::cout << '\n';
  }

  std::cout << "\nFinal report:\n";
  for (const auto& e : localizer.estimate()) {
    std::cout << "  device at (" << e.pos.x << ", " << e.pos.y << "), strength "
              << e.strength << " uCi, support " << e.support << "\n";
  }
  return 0;
}

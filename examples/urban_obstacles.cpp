// Obstacles in the surveillance area: the paper's headline claim is that
// the localizer needs NO obstacle knowledge, and that shielding often
// IMPROVES accuracy by isolating source signatures.
//
// This example builds a courtyard scene with a concrete building and a lead
// storage cell, compares localization with and without the obstacles (same
// sources, same sensors, same localizer settings), and prints the material
// table used to construct them.
#include <iostream>

#include "radloc/radloc.hpp"

namespace {

using namespace radloc;

double run_scene(const Environment& env, const std::vector<Sensor>& sensors,
                 const std::vector<Source>& truth, const char* label) {
  MeasurementSimulator simulator(env, sensors, truth);
  MultiSourceLocalizer localizer(env, sensors, LocalizerConfig{}, /*seed=*/3);
  Rng noise(4);
  for (int step = 0; step < 15; ++step) {
    localizer.process_all(simulator.sample_time_step(noise));
  }
  const auto estimates = localizer.estimate();
  const auto match = match_estimates(truth, estimates);
  std::cout << label << ": " << estimates.size() << " estimates, mean error "
            << match.mean_error() << ", FP " << match.false_positives << ", FN "
            << match.false_negatives << "\n";
  return match.mean_error();
}

}  // namespace

int main() {
  using namespace radloc;

  std::cout << "Shielding materials (1 MeV gamma):\n";
  for (const auto m : {Material::kLead, Material::kSteel, Material::kConcrete,
                       Material::kBrick, Material::kWood}) {
    std::cout << "  " << material_name(m) << ": mu = " << attenuation_coefficient(m)
              << " /cm, half-value layer = " << half_value_layer(m) << " cm\n";
  }
  std::cout << "1 cm of lead equals " << equivalent_thickness(Material::kLead, 1.0,
                                                              Material::kConcrete)
            << " cm of concrete (paper Sec. III).\n\n";

  // The courtyard: a concrete building between the two sources and a lead
  // cell shielding the south. NOTE: these obstacles exist in the *world*
  // (the simulator); the localizer is never told about them.
  const AreaBounds area = make_area(100.0, 100.0);
  std::vector<Obstacle> obstacles;
  obstacles.emplace_back(make_rect(45.0, 30.0, 55.0, 80.0), Material::kConcrete);
  obstacles.emplace_back(make_rect(20.0, 15.0, 30.0, 20.0), Material::kLead);

  Environment walled(area, obstacles);
  Environment open(area);

  auto sensors = place_grid(area, 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> truth{{{30.0, 55.0}, 20.0}, {{70.0, 55.0}, 20.0}};

  std::cout << "Two 20 uCi sources at (30,55) and (70,55), concrete wall between them.\n";
  const double err_open = run_scene(open, sensors, truth, "open space      ");
  const double err_wall = run_scene(walled, sensors, truth, "with obstacles  ");

  std::cout << "\nnormalized error (open/walled): " << err_open / err_wall
            << (err_open / err_wall > 1.0
                    ? "  -> the wall isolates the sources and helps localization\n"
                    : "  -> the wall did not help in this run\n");
  std::cout << "The localizer used the free-space model in BOTH runs: no obstacle\n"
               "knowledge was required.\n";
  return 0;
}

// Tracking a slowly moving source — the paper's F_movement hook (Sec. V-B).
//
// The paper assumes static sources (P'' = P'); the filter's movement-model
// hook generalizes it. A source driven through the area in a vehicle is
// tracked by giving the particles a random-walk prediction whose step size
// matches the expected source speed.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "radloc/radloc.hpp"

int main() {
  using namespace radloc;

  Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);

  LocalizerConfig cfg;
  cfg.filter.num_particles = 3000;
  MultiSourceLocalizer localizer(env, sensors, cfg, /*seed=*/31);
  // Predict step: particles random-walk ~1.5 units per iteration, matching
  // a source moving a few units per time step.
  localizer.filter().set_movement_model(std::make_unique<RandomWalkMovement>(1.5));

  Rng noise(32);
  std::cout << "A 60 uCi source drives from (15,20) toward (85,80); the filter\n"
               "tracks it with a random-walk movement model.\n\n";
  std::cout << "step   true position      estimate           error\n";

  double worst_late_error = 0.0;
  for (int step = 0; step < 25; ++step) {
    const double t = step / 24.0;
    const Source truth{{15.0 + 70.0 * t, 20.0 + 60.0 * t}, 60.0};

    MeasurementSimulator simulator(env, sensors, {truth});
    localizer.process_all(simulator.sample_time_step(noise));

    const auto estimates = localizer.estimate();
    double err = std::nan("");
    Point2 best{};
    for (const auto& e : estimates) {
      const double d = distance(e.pos, truth.pos);
      if (std::isnan(err) || d < err) {
        err = d;
        best = e.pos;
      }
    }
    std::cout << std::fixed << std::setprecision(1) << std::setw(3) << step << "    ("
              << std::setw(4) << truth.pos.x << ", " << std::setw(4) << truth.pos.y << ")";
    if (std::isnan(err)) {
      std::cout << "      (no estimate yet)\n";
    } else {
      std::cout << "      (" << std::setw(4) << best.x << ", " << std::setw(4) << best.y
                << ")      " << err << "\n";
      if (step >= 8) worst_late_error = std::max(worst_late_error, err);
    }
  }
  std::cout << "\nworst tracking error after warm-up: " << worst_late_error << " units\n";
  return 0;
}

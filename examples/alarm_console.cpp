// Operator alarm console: stable track identities and alarms on top of the
// per-step estimates.
//
// Raw estimate lists flicker (a mode may drop out for one step); operators
// need "DEVICE #3 CONFIRMED at (x, y)" once, and "DEVICE #3 REMOVED" once.
// SourceTracker provides the M-of-N confirmation and loss logic; this demo
// plays a timeline where a source is planted, a second one arrives, and
// the first is removed by a response team.
#include <iomanip>
#include <iostream>

#include "radloc/radloc.hpp"

int main() {
  using namespace radloc;

  Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);

  MultiSourceLocalizer localizer(env, sensors, LocalizerConfig{}, /*seed=*/41);
  SourceTracker tracker;  // confirm 3-of-5, drop after 5 misses
  Rng noise(42);

  auto sources_at = [](int step) {
    std::vector<Source> s;
    if (step >= 0) s.push_back({{30.0, 60.0}, 40.0});   // device 1 from the start
    if (step >= 12) s.push_back({{75.0, 25.0}, 60.0});  // device 2 planted at step 12
    if (step >= 24) s.erase(s.begin());                 // device 1 removed at step 24
    return s;
  };

  std::cout << "Timeline: device A at (30,60) from step 0; device B at (75,25) from\n"
               "step 12; device A removed at step 24. Alarms below:\n\n";

  for (int step = 0; step < 48; ++step) {
    MeasurementSimulator simulator(env, sensors, sources_at(step));
    localizer.process_all(simulator.sample_time_step(noise));
    const auto events = tracker.update(localizer.estimate());

    for (const auto& ev : events) {
      std::cout << "step " << std::setw(2) << step << ": ";
      if (ev.kind == TrackEvent::Kind::kConfirmed) {
        std::cout << "*** DEVICE #" << ev.track.id << " CONFIRMED at ("
                  << std::setprecision(3) << ev.track.pos.x << ", " << ev.track.pos.y
                  << "), ~" << std::setprecision(2) << ev.track.strength << " uCi\n";
      } else {
        std::cout << "--- DEVICE #" << ev.track.id << " no longer detected (last seen "
                  << "update " << ev.track.last_seen << ")\n";
      }
    }
  }

  std::cout << "\nfinal confirmed tracks:\n";
  for (const auto& t : tracker.confirmed()) {
    std::cout << "  #" << t.id << " at (" << t.pos.x << ", " << t.pos.y << "), ~"
              << t.strength << " uCi, " << t.hits << " hits\n";
  }
  return 0;
}

// Offline analysis workflow: record a measurement campaign to CSV, replay
// it through the localizer later, and audit sensor health afterwards.
//
// This is how a real deployment is debugged: the radiation readings are
// logged at the fusion center, and analysts re-run localization (with
// different settings) and data-quality checks against the same trace.
#include <cmath>
#include <iostream>
#include <sstream>

#include "radloc/radloc.hpp"

int main() {
  using namespace radloc;

  Environment env(make_area(100.0, 100.0));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> truth{{{47.0, 71.0}, 25.0}, {{81.0, 42.0}, 25.0}};

  // ---- Phase 1: live recording. Sensor 2 (at (40,0), far from both
  // sources) has a dying tube that undercounts 5x — the fault we will find
  // in phase 3.
  MeasurementSimulator simulator(env, sensors, truth);
  Rng noise(11);
  MeasurementTrace trace;
  for (int step = 0; step < 20; ++step) {
    auto batch = simulator.sample_time_step(noise);
    for (auto& m : batch) {
      if (m.sensor == 2) m.cpm /= 5.0;
    }
    trace.record_step(std::move(batch));
  }

  std::stringstream storage;  // stands in for the log file on disk
  trace.save_csv(storage);
  std::cout << "recorded " << trace.num_measurements() << " measurements over "
            << trace.num_steps() << " time steps (" << storage.str().size() << " bytes CSV)\n";

  // ---- Phase 2: offline replay. ------------------------------------------
  const auto replay = MeasurementTrace::load_csv(storage);
  MultiSourceLocalizer localizer(env, sensors, LocalizerConfig{}, /*seed=*/12);
  FaultDetectorConfig audit_cfg;
  // Don't judge sensors sitting on top of an estimated source: there the
  // residual measures the estimate's position error, not the sensor.
  audit_cfg.near_source_exclusion = 8.0;
  FaultDetector auditor(env, sensors, audit_cfg);
  for (std::size_t t = 0; t < replay.num_steps(); ++t) {
    for (const auto& m : replay.step(t)) {
      localizer.process(m);
      auditor.observe(m);
    }
  }

  const auto estimates = localizer.estimate();
  std::cout << "\nreplayed localization found " << estimates.size() << " source(s):\n";
  for (const auto& e : estimates) {
    std::cout << "  (" << e.pos.x << ", " << e.pos.y << ") ~" << e.strength << " uCi\n";
  }

  // ---- Phase 3: data-quality audit. ---------------------------------------
  std::cout << "\nsensor health audit (z = standardized residual vs model):\n";
  const auto report = auditor.assess(estimates);
  const auto* worst = &report.front();
  for (const auto& h : report) {
    if (std::abs(h.z_score) > std::abs(worst->z_score)) worst = &h;
    if (h.suspect) {
      std::cout << "  SUSPECT sensor " << h.sensor << ": mean " << h.mean_cpm
                << " CPM vs expected " << h.expected_cpm << " (z = " << h.z_score << ")\n";
    }
  }
  std::cout << "strongest anomaly: sensor " << worst->sensor
            << " (sensor 2 was deliberately corrupted in this demo)\n";
  return 0;
}

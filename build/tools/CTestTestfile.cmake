# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_table "/root/repo/build/tools/radloc_sim" "--scenario" "A" "--strength" "20" "--steps" "4" "--trials" "1" "--seed" "3")
set_tests_properties(cli_smoke_table PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_csv "/root/repo/build/tools/radloc_sim" "--scenario" "A3" "--steps" "3" "--trials" "1" "--report" "csv")
set_tests_properties(cli_smoke_csv PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_artifacts "/root/repo/build/tools/radloc_sim" "--scenario" "A" "--steps" "2" "--trials" "1" "--trace" "/root/repo/build/tools/smoke_trace.csv" "--svg-prefix" "/root/repo/build/tools/smoke")
set_tests_properties(cli_smoke_artifacts PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/radloc_sim.dir/radloc_sim.cpp.o"
  "CMakeFiles/radloc_sim.dir/radloc_sim.cpp.o.d"
  "radloc_sim"
  "radloc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radloc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

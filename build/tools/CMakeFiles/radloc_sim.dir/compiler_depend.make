# Empty compiler generated dependencies file for radloc_sim.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for radloc.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radloc/adaptive/planner.cpp" "src/CMakeFiles/radloc.dir/radloc/adaptive/planner.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/adaptive/planner.cpp.o.d"
  "/root/repo/src/radloc/baselines/em_gmm.cpp" "src/CMakeFiles/radloc.dir/radloc/baselines/em_gmm.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/baselines/em_gmm.cpp.o.d"
  "/root/repo/src/radloc/baselines/grid_solver.cpp" "src/CMakeFiles/radloc.dir/radloc/baselines/grid_solver.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/baselines/grid_solver.cpp.o.d"
  "/root/repo/src/radloc/baselines/joint_pf.cpp" "src/CMakeFiles/radloc.dir/radloc/baselines/joint_pf.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/baselines/joint_pf.cpp.o.d"
  "/root/repo/src/radloc/baselines/mle.cpp" "src/CMakeFiles/radloc.dir/radloc/baselines/mle.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/baselines/mle.cpp.o.d"
  "/root/repo/src/radloc/baselines/single_source.cpp" "src/CMakeFiles/radloc.dir/radloc/baselines/single_source.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/baselines/single_source.cpp.o.d"
  "/root/repo/src/radloc/common/math.cpp" "src/CMakeFiles/radloc.dir/radloc/common/math.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/common/math.cpp.o.d"
  "/root/repo/src/radloc/concurrency/thread_pool.cpp" "src/CMakeFiles/radloc.dir/radloc/concurrency/thread_pool.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/concurrency/thread_pool.cpp.o.d"
  "/root/repo/src/radloc/core/fault_detector.cpp" "src/CMakeFiles/radloc.dir/radloc/core/fault_detector.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/core/fault_detector.cpp.o.d"
  "/root/repo/src/radloc/core/localizer.cpp" "src/CMakeFiles/radloc.dir/radloc/core/localizer.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/core/localizer.cpp.o.d"
  "/root/repo/src/radloc/core/tracker.cpp" "src/CMakeFiles/radloc.dir/radloc/core/tracker.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/core/tracker.cpp.o.d"
  "/root/repo/src/radloc/distributed/regional.cpp" "src/CMakeFiles/radloc.dir/radloc/distributed/regional.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/distributed/regional.cpp.o.d"
  "/root/repo/src/radloc/eval/coverage.cpp" "src/CMakeFiles/radloc.dir/radloc/eval/coverage.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/eval/coverage.cpp.o.d"
  "/root/repo/src/radloc/eval/experiment.cpp" "src/CMakeFiles/radloc.dir/radloc/eval/experiment.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/eval/experiment.cpp.o.d"
  "/root/repo/src/radloc/eval/matching.cpp" "src/CMakeFiles/radloc.dir/radloc/eval/matching.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/eval/matching.cpp.o.d"
  "/root/repo/src/radloc/eval/report.cpp" "src/CMakeFiles/radloc.dir/radloc/eval/report.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/eval/report.cpp.o.d"
  "/root/repo/src/radloc/eval/scenarios.cpp" "src/CMakeFiles/radloc.dir/radloc/eval/scenarios.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/eval/scenarios.cpp.o.d"
  "/root/repo/src/radloc/eval/stats.cpp" "src/CMakeFiles/radloc.dir/radloc/eval/stats.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/eval/stats.cpp.o.d"
  "/root/repo/src/radloc/filter/movement.cpp" "src/CMakeFiles/radloc.dir/radloc/filter/movement.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/filter/movement.cpp.o.d"
  "/root/repo/src/radloc/filter/particle_filter.cpp" "src/CMakeFiles/radloc.dir/radloc/filter/particle_filter.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/filter/particle_filter.cpp.o.d"
  "/root/repo/src/radloc/filter/resample.cpp" "src/CMakeFiles/radloc.dir/radloc/filter/resample.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/filter/resample.cpp.o.d"
  "/root/repo/src/radloc/geom/grid_index.cpp" "src/CMakeFiles/radloc.dir/radloc/geom/grid_index.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/geom/grid_index.cpp.o.d"
  "/root/repo/src/radloc/geom/intersect.cpp" "src/CMakeFiles/radloc.dir/radloc/geom/intersect.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/geom/intersect.cpp.o.d"
  "/root/repo/src/radloc/geom/polygon.cpp" "src/CMakeFiles/radloc.dir/radloc/geom/polygon.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/geom/polygon.cpp.o.d"
  "/root/repo/src/radloc/geom/shapes.cpp" "src/CMakeFiles/radloc.dir/radloc/geom/shapes.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/geom/shapes.cpp.o.d"
  "/root/repo/src/radloc/meanshift/meanshift.cpp" "src/CMakeFiles/radloc.dir/radloc/meanshift/meanshift.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/meanshift/meanshift.cpp.o.d"
  "/root/repo/src/radloc/optim/nelder_mead.cpp" "src/CMakeFiles/radloc.dir/radloc/optim/nelder_mead.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/optim/nelder_mead.cpp.o.d"
  "/root/repo/src/radloc/radiation/calibration.cpp" "src/CMakeFiles/radloc.dir/radloc/radiation/calibration.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/radiation/calibration.cpp.o.d"
  "/root/repo/src/radloc/radiation/environment.cpp" "src/CMakeFiles/radloc.dir/radloc/radiation/environment.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/radiation/environment.cpp.o.d"
  "/root/repo/src/radloc/radiation/intensity_model.cpp" "src/CMakeFiles/radloc.dir/radloc/radiation/intensity_model.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/radiation/intensity_model.cpp.o.d"
  "/root/repo/src/radloc/radiation/materials.cpp" "src/CMakeFiles/radloc.dir/radloc/radiation/materials.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/radiation/materials.cpp.o.d"
  "/root/repo/src/radloc/rng/distributions.cpp" "src/CMakeFiles/radloc.dir/radloc/rng/distributions.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/rng/distributions.cpp.o.d"
  "/root/repo/src/radloc/rng/poisson_process.cpp" "src/CMakeFiles/radloc.dir/radloc/rng/poisson_process.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/rng/poisson_process.cpp.o.d"
  "/root/repo/src/radloc/rng/rng.cpp" "src/CMakeFiles/radloc.dir/radloc/rng/rng.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/rng/rng.cpp.o.d"
  "/root/repo/src/radloc/search/mobile_searcher.cpp" "src/CMakeFiles/radloc.dir/radloc/search/mobile_searcher.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/search/mobile_searcher.cpp.o.d"
  "/root/repo/src/radloc/sensornet/delivery.cpp" "src/CMakeFiles/radloc.dir/radloc/sensornet/delivery.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/sensornet/delivery.cpp.o.d"
  "/root/repo/src/radloc/sensornet/placement.cpp" "src/CMakeFiles/radloc.dir/radloc/sensornet/placement.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/sensornet/placement.cpp.o.d"
  "/root/repo/src/radloc/sensornet/simulator.cpp" "src/CMakeFiles/radloc.dir/radloc/sensornet/simulator.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/sensornet/simulator.cpp.o.d"
  "/root/repo/src/radloc/sensornet/topology.cpp" "src/CMakeFiles/radloc.dir/radloc/sensornet/topology.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/sensornet/topology.cpp.o.d"
  "/root/repo/src/radloc/sensornet/trace.cpp" "src/CMakeFiles/radloc.dir/radloc/sensornet/trace.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/sensornet/trace.cpp.o.d"
  "/root/repo/src/radloc/viz/svg.cpp" "src/CMakeFiles/radloc.dir/radloc/viz/svg.cpp.o" "gcc" "src/CMakeFiles/radloc.dir/radloc/viz/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

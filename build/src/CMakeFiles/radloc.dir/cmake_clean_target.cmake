file(REMOVE_RECURSE
  "libradloc.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bench_robot_search.dir/bench_robot_search.cpp.o"
  "CMakeFiles/bench_robot_search.dir/bench_robot_search.cpp.o.d"
  "bench_robot_search"
  "bench_robot_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robot_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

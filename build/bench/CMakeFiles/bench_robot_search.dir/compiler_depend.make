# Empty compiler generated dependencies file for bench_robot_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_layouts.dir/bench_fig8_layouts.cpp.o"
  "CMakeFiles/bench_fig8_layouts.dir/bench_fig8_layouts.cpp.o.d"
  "bench_fig8_layouts"
  "bench_fig8_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_background.dir/bench_fig6_background.cpp.o"
  "CMakeFiles/bench_fig6_background.dir/bench_fig6_background.cpp.o.d"
  "bench_fig6_background"
  "bench_fig6_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

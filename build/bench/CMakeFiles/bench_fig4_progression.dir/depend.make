# Empty dependencies file for bench_fig4_progression.
# This may be replaced when dependencies are built.

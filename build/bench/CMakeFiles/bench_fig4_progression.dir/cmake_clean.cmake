file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_progression.dir/bench_fig4_progression.cpp.o"
  "CMakeFiles/bench_fig4_progression.dir/bench_fig4_progression.cpp.o.d"
  "bench_fig4_progression"
  "bench_fig4_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

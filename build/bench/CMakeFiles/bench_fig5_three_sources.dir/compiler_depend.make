# Empty compiler generated dependencies file for bench_fig5_three_sources.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_unknown_obstacles.dir/bench_unknown_obstacles.cpp.o"
  "CMakeFiles/bench_unknown_obstacles.dir/bench_unknown_obstacles.cpp.o.d"
  "bench_unknown_obstacles"
  "bench_unknown_obstacles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unknown_obstacles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

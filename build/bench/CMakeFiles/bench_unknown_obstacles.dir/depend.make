# Empty dependencies file for bench_unknown_obstacles.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_sweep.dir/bench_robustness_sweep.cpp.o"
  "CMakeFiles/bench_robustness_sweep.dir/bench_robustness_sweep.cpp.o.d"
  "bench_robustness_sweep"
  "bench_robustness_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

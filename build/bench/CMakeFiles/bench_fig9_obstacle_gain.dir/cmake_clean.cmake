file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_obstacle_gain.dir/bench_fig9_obstacle_gain.cpp.o"
  "CMakeFiles/bench_fig9_obstacle_gain.dir/bench_fig9_obstacle_gain.cpp.o.d"
  "bench_fig9_obstacle_gain"
  "bench_fig9_obstacle_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_obstacle_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

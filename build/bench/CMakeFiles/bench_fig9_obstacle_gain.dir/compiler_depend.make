# Empty compiler generated dependencies file for bench_fig9_obstacle_gain.
# This may be replaced when dependencies are built.

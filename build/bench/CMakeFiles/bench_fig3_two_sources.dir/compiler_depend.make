# Empty compiler generated dependencies file for bench_fig3_two_sources.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig2_fusion_ablation.
# This may be replaced when dependencies are built.

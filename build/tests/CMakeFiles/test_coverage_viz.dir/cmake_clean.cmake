file(REMOVE_RECURSE
  "CMakeFiles/test_coverage_viz.dir/test_coverage_viz.cpp.o"
  "CMakeFiles/test_coverage_viz.dir/test_coverage_viz.cpp.o.d"
  "test_coverage_viz"
  "test_coverage_viz.pdb"
  "test_coverage_viz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coverage_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_fault_calibration.
# This may be replaced when dependencies are built.

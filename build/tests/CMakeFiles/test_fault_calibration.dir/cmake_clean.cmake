file(REMOVE_RECURSE
  "CMakeFiles/test_fault_calibration.dir/test_fault_calibration.cpp.o"
  "CMakeFiles/test_fault_calibration.dir/test_fault_calibration.cpp.o.d"
  "test_fault_calibration"
  "test_fault_calibration.pdb"
  "test_fault_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

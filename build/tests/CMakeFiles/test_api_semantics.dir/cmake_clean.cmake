file(REMOVE_RECURSE
  "CMakeFiles/test_api_semantics.dir/test_api_semantics.cpp.o"
  "CMakeFiles/test_api_semantics.dir/test_api_semantics.cpp.o.d"
  "test_api_semantics"
  "test_api_semantics.pdb"
  "test_api_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

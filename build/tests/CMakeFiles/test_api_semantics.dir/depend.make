# Empty dependencies file for test_api_semantics.
# This may be replaced when dependencies are built.

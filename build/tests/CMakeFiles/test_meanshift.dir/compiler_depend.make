# Empty compiler generated dependencies file for test_meanshift.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_sensornet.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sensornet.dir/test_sensornet.cpp.o"
  "CMakeFiles/test_sensornet.dir/test_sensornet.cpp.o.d"
  "test_sensornet"
  "test_sensornet.pdb"
  "test_sensornet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensornet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

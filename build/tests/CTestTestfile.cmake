# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_fault_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_tracker[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_viz[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_api_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_radiation[1]_include.cmake")
include("/root/repo/build/tests/test_sensornet[1]_include.cmake")
include("/root/repo/build/tests/test_concurrency[1]_include.cmake")
include("/root/repo/build/tests/test_filter[1]_include.cmake")
include("/root/repo/build/tests/test_meanshift[1]_include.cmake")
include("/root/repo/build/tests/test_localizer[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")

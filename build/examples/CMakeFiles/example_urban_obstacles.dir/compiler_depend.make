# Empty compiler generated dependencies file for example_urban_obstacles.
# This may be replaced when dependencies are built.

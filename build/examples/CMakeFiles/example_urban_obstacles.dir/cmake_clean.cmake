file(REMOVE_RECURSE
  "CMakeFiles/example_urban_obstacles.dir/urban_obstacles.cpp.o"
  "CMakeFiles/example_urban_obstacles.dir/urban_obstacles.cpp.o.d"
  "example_urban_obstacles"
  "example_urban_obstacles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_urban_obstacles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

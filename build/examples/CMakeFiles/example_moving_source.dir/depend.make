# Empty dependencies file for example_moving_source.
# This may be replaced when dependencies are built.

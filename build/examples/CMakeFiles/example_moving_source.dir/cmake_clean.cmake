file(REMOVE_RECURSE
  "CMakeFiles/example_moving_source.dir/moving_source.cpp.o"
  "CMakeFiles/example_moving_source.dir/moving_source.cpp.o.d"
  "example_moving_source"
  "example_moving_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_moving_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_robot_search.dir/robot_search.cpp.o"
  "CMakeFiles/example_robot_search.dir/robot_search.cpp.o.d"
  "example_robot_search"
  "example_robot_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_robot_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_robot_search.
# This may be replaced when dependencies are built.

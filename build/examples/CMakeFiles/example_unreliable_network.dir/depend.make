# Empty dependencies file for example_unreliable_network.
# This may be replaced when dependencies are built.

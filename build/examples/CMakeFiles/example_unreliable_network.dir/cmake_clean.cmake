file(REMOVE_RECURSE
  "CMakeFiles/example_unreliable_network.dir/unreliable_network.cpp.o"
  "CMakeFiles/example_unreliable_network.dir/unreliable_network.cpp.o.d"
  "example_unreliable_network"
  "example_unreliable_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_unreliable_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_alarm_console.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_alarm_console.dir/alarm_console.cpp.o"
  "CMakeFiles/example_alarm_console.dir/alarm_console.cpp.o.d"
  "example_alarm_console"
  "example_alarm_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_alarm_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_energy_budget.
# This may be replaced when dependencies are built.

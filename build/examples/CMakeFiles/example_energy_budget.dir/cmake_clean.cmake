file(REMOVE_RECURSE
  "CMakeFiles/example_energy_budget.dir/energy_budget.cpp.o"
  "CMakeFiles/example_energy_budget.dir/energy_budget.cpp.o.d"
  "example_energy_budget"
  "example_energy_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_energy_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_dirty_bomb_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_dirty_bomb_sweep.dir/dirty_bomb_sweep.cpp.o"
  "CMakeFiles/example_dirty_bomb_sweep.dir/dirty_bomb_sweep.cpp.o.d"
  "example_dirty_bomb_sweep"
  "example_dirty_bomb_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dirty_bomb_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Adaptive particle budget: accuracy-vs-budget curves and Table-I-style
// runtime at equal accuracy (ISSUE 8 acceptance bench).
//
// The paper fixes NP = 2000 for every 100x100 scenario; once the posterior
// has collapsed to a few tight modes that budget is pure overhead. This
// bench runs the Fig. 2/3 easy scenarios (two well-separated sources in the
// open, 10 and 50 uCi) and a hard one (three sources behind Scenario A's
// U-shaped obstacle, filter NOT told about it) under fixed budgets, the
// ESS-gated fixed budget, and the KLD budget controller, with paired
// measurement streams per trial. Reported per config:
//
//   mean_error             final-step localization error (matched sources)
//   missed                 false negatives + false positives, averaged
//   particles_per_reading  filter work actually done: sum |P'| / readings
//   us_per_reading         wall time of the measurement loop per reading
//   final_budget           particle count at the end of the run
//   resample_skip_frac     resamples skipped by the ESS gate
//
// Non-smoke runs enforce the acceptance criteria: on BOTH easy scenarios the
// adaptive controller must cut particles_per_reading by >= 2x vs fixed:2000
// at equal accuracy (within +2.0 length units), and on the hard scenario its
// accuracy must stay within 10% (+0.5 units noise slack) of fixed:2000.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "radloc/radloc.hpp"

namespace {

using namespace radloc;

struct BudgetMode {
  std::string label;
  std::size_t num_particles = 2000;
  bool adaptive = false;
  std::size_t min_particles = 500;
  std::size_t max_particles = 2000;
  double ess_threshold = 1.0;
};

struct RunResult {
  double mean_error = 0.0;
  double missed = 0.0;        // false negatives + false positives, per trial
  double missed_total = 0.0;  // summed over trials (criteria compare events)
  double particles_per_reading = 0.0;
  double us_per_reading = 0.0;
  double final_budget = 0.0;
  double resample_skip_frac = 0.0;
};

RunResult run_config(const Scenario& scenario,
                     const std::vector<std::vector<std::vector<Measurement>>>& trial_steps,
                     const BudgetMode& mode) {
  RunResult acc;
  const auto trials = trial_steps.size();
  for (std::size_t r = 0; r < trials; ++r) {
    LocalizerConfig cfg;
    cfg.filter.num_particles = mode.num_particles;
    cfg.filter.fusion_range = scenario.recommended_fusion_range;
    cfg.filter.ess_resample_threshold = mode.ess_threshold;
    if (mode.adaptive) {
      cfg.filter.adaptive_budget = true;
      cfg.filter.min_particles = mode.min_particles;
      cfg.filter.max_particles = mode.max_particles;
    }
    MultiSourceLocalizer loc(scenario.env, scenario.sensors, cfg, 1000 + r);

    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& step : trial_steps[r]) {
      for (const Measurement& m : step) loc.process(m);
    }
    const auto t1 = std::chrono::steady_clock::now();

    const auto estimates = loc.estimate();
    const MatchResult match = match_estimates(scenario.sources, estimates);
    const auto readings = static_cast<double>(loc.iterations());
    acc.mean_error += match.mean_error();
    acc.missed += static_cast<double>(match.false_negatives + match.false_positives);
    acc.particles_per_reading +=
        static_cast<double>(loc.filter().particles_scored()) / readings;
    acc.us_per_reading +=
        std::chrono::duration<double, std::micro>(t1 - t0).count() / readings;
    acc.final_budget += static_cast<double>(loc.budget_diagnostics().current_budget);
    const double skips = static_cast<double>(loc.filter().resamples_skipped());
    const double total =
        skips + static_cast<double>(loc.filter().resamples_performed());
    acc.resample_skip_frac += total > 0.0 ? skips / total : 0.0;
  }
  const auto n = static_cast<double>(trials);
  acc.missed_total = acc.missed;
  acc.mean_error /= n;
  acc.missed /= n;
  acc.particles_per_reading /= n;
  acc.us_per_reading /= n;
  acc.final_budget /= n;
  acc.resample_skip_frac /= n;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const std::size_t num_steps = bench::steps(30);
  const std::size_t trials = bench::trials(3);

  struct Entry {
    const char* tag;
    Scenario scenario;
    bool easy;
  };
  std::vector<Entry> entries;
  entries.push_back({"A-10uCi", make_scenario_a(10.0), true});
  entries.push_back({"A-50uCi", make_scenario_a(50.0), true});
  // Hard: three sources, U-shaped obstacle the filter is NOT told about
  // (the paper's complex-environment mode) — posterior churns for longer.
  entries.push_back({"A3-obstacle", make_scenario_a3(10.0, 5.0, true), false});

  const std::vector<BudgetMode> modes = {
      {"fixed:2000", 2000, false, 0, 0, 1.0},
      {"fixed:1000", 1000, false, 0, 0, 1.0},
      {"fixed:500", 500, false, 0, 0, 1.0},
      {"fixed:2000|essgate", 2000, false, 0, 0, 0.5},
      // The headline config pairs both halves of the subsystem: the ESS gate
      // concentrates the posterior (fewer resample scatters), which is what
      // lets the KLD occupancy count collapse and the budget shrink.
      {"adaptive:500-2000|essgate", 2000, true, 500, 2000, 0.5},
  };

  bench::JsonWriter json("adaptive_budget");
  bool ok = true;
  std::printf("%-12s %-26s %10s %7s %12s %12s %8s %6s\n", "scenario", "config", "error",
              "missed", "parts/read", "us/read", "budget", "skip%");
  for (const Entry& e : entries) {
    // Paired streams: every config replays the same per-trial measurement
    // sequences, so config deltas are not simulator noise.
    MeasurementSimulator sim(e.scenario.env, e.scenario.sensors, e.scenario.sources);
    std::vector<std::vector<std::vector<Measurement>>> trial_steps(trials);
    for (std::size_t r = 0; r < trials; ++r) {
      Rng noise(500 + 77 * r);
      for (std::size_t t = 0; t < num_steps; ++t) {
        trial_steps[r].push_back(sim.sample_time_step(noise));
      }
    }

    RunResult fixed_full;
    RunResult adaptive;
    for (const BudgetMode& mode : modes) {
      const RunResult res = run_config(e.scenario, trial_steps, mode);
      if (mode.label == "fixed:2000") fixed_full = res;
      if (mode.adaptive) adaptive = res;
      std::printf("%-12s %-26s %10.2f %7.1f %12.0f %12.1f %8.0f %5.0f%%\n", e.tag,
                  mode.label.c_str(), res.mean_error, res.missed, res.particles_per_reading,
                  res.us_per_reading, res.final_budget, 100.0 * res.resample_skip_frac);
      json.add(e.tag, mode.label, "mean_error", res.mean_error);
      json.add(e.tag, mode.label, "missed", res.missed);
      json.add(e.tag, mode.label, "particles_per_reading", res.particles_per_reading);
      json.add(e.tag, mode.label, "wall_us_per_reading", res.us_per_reading);
      json.add(e.tag, mode.label, "final_budget", res.final_budget);
      json.add(e.tag, mode.label, "resample_skip_frac", res.resample_skip_frac);
    }

    const double reduction = adaptive.particles_per_reading > 0.0
                                 ? fixed_full.particles_per_reading /
                                       adaptive.particles_per_reading
                                 : 0.0;
    json.add(e.tag, "adaptive-vs-fixed:2000", "particle_reduction_x", reduction);
    // Detection tolerance: one extra mis-detection event across ALL trials.
    // Individual streams can be pathological for every budget (a phantom
    // mode that even fixed:2000 accepts); the criterion guards against a
    // systematic detection regression, not single-event noise.
    const bool missed_ok = adaptive.missed_total <= fixed_full.missed_total + 1.0;
    if (e.easy) {
      const bool pass = reduction >= 2.0 &&
                        adaptive.mean_error <= fixed_full.mean_error + 2.0 && missed_ok;
      std::printf("%-12s easy criteria: %.2fx reduction (need >=2), error %.2f vs %.2f"
                  " (+2.0 tolerance) -> %s\n",
                  e.tag, reduction, adaptive.mean_error, fixed_full.mean_error,
                  pass ? "ok" : "FAIL");
      ok = ok && pass;
    } else {
      const bool pass =
          adaptive.mean_error <= 1.10 * fixed_full.mean_error + 0.5 && missed_ok;
      std::printf("%-12s hard criteria: error %.2f vs %.2f (within 10%% + 0.5) -> %s\n", e.tag,
                  adaptive.mean_error, fixed_full.mean_error, pass ? "ok" : "FAIL");
      ok = ok && pass;
    }
  }
  json.write();
  if (!bench::smoke() && !ok) {
    std::printf("acceptance criteria FAILED\n");
    return 1;
  }
  return 0;
}

// Fig. 5 — three sources at (87,89), (37,14), (55,51) of strength
// {4, 10, 50, 100} uCi, background 5 CPM.
//
// Paper shape: like Fig. 3 but convergence is slower; the 4 uCi case takes
// ~9 time steps before accurate estimates appear.
#include <iostream>

#include "bench_util.hpp"
#include "radloc/eval/experiment.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("fig5_three_sources");
  const std::size_t trials = bench::trials();

  std::cout << "Fig. 5 reproduction: three sources at (87,89), (37,14), (55,51),\n"
            << "background 5 CPM, " << trials << " trials.\n";

  for (const double strength : {4.0, 10.0, 50.0, 100.0}) {
    const auto scenario = make_scenario_a3(strength, 5.0);
    ExperimentOptions opts;
    opts.trials = trials;
    opts.time_steps = bench::steps(30);
    opts.seed = 5000 + static_cast<std::uint64_t>(strength);
    opts.num_threads = bench::threads();
    const auto result = run_experiment(scenario, opts);

    print_banner(std::cout, "Fig. 5: " + std::to_string(static_cast<int>(strength)) +
                                " uCi (loc. error per source, FP, FN vs time step)");
    print_time_series(std::cout, result, default_source_names(scenario.sources.size()));

    // Convergence step: first time step from which every source is matched
    // in most trials (the paper's "accurate results" point).
    std::size_t converged = result.error.size();
    for (std::size_t t = 0; t < result.error.size(); ++t) {
      bool all = true;
      for (std::size_t j = 0; j < scenario.sources.size(); ++j) {
        if (result.matched_frac[t][j] < 0.5) all = false;
      }
      if (all) {
        converged = t;
        break;
      }
    }
    const std::size_t from = opts.time_steps / 3;
    const std::size_t to = opts.time_steps;
    std::cout << "first step with all sources matched (>=50% of trials): " << converged
              << "   late-window error: " << result.avg_error_all(from, to) << "\n";
    const std::string config = std::to_string(static_cast<int>(strength)) + "uCi";
    json.add("fig5-scenario-A3", config, "converged_step", static_cast<double>(converged));
    json.add("fig5-scenario-A3", config, "late_error", result.avg_error_all(from, to));
  }
  return 0;
}

// Extension X5 — deployment coverage planning.
//
// How dense must the sensor grid be to guarantee detection of a source of
// given strength anywhere in the area? The coverage planner answers with
// the minimum-detectable-strength map; this bench sweeps grid density and
// observation budget, and shows the effect of obstacles on coverage —
// the operational questions behind the paper's deployment assumptions
// (6x6 over 100x100, 14x14 over 260x260).
#include <iostream>

#include "bench_util.hpp"
#include "radloc/eval/coverage.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/placement.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("coverage");
  Environment env(make_area(100, 100));
  // Coarser coverage grid in smoke mode: same code path, fraction of cost.
  const std::size_t cells = bench::smoke() ? 10 : 25;

  std::cout << "Deployment coverage: minimum detectable source strength (uCi) for a\n"
            << "10-step observation budget, detection log-LR threshold 3.\n";

  {
    std::vector<std::vector<double>> rows;
    for (const std::size_t n : {3u, 4u, 6u, 8u, 10u}) {
      auto sensors = place_grid(env.bounds(), n, n);
      set_background(sensors, 5.0);
      CoverageConfig cfg;
      cfg.cells_x = cells;
      cfg.cells_y = cells;
      const auto map = compute_coverage(env, sensors, cfg);
      rows.push_back({static_cast<double>(n * n), map.worst_case(),
                      map.covered_fraction(4.0), map.covered_fraction(10.0)});
      const std::string config = "grid" + std::to_string(n) + "x" + std::to_string(n);
      json.add("coverage-100x100", config, "worst_uCi", map.worst_case());
      json.add("coverage-100x100", config, "covered_frac_4uCi", map.covered_fraction(4.0));
    }
    print_banner(std::cout, "grid density sweep (area 100x100)");
    const std::vector<std::string> header{"sensors", "worst_uCi", "cov@4uCi", "cov@10uCi"};
    print_table(std::cout, header, rows);
  }

  {
    std::vector<std::vector<double>> rows;
    auto sensors = place_grid(env.bounds(), 6, 6);
    set_background(sensors, 5.0);
    for (const std::size_t steps : {1u, 3u, 10u, 30u, 100u}) {
      CoverageConfig cfg;
      cfg.cells_x = cells;
      cfg.cells_y = cells;
      cfg.steps = steps;
      const auto map = compute_coverage(env, sensors, cfg);
      rows.push_back({static_cast<double>(steps), map.worst_case(),
                      map.covered_fraction(4.0), map.covered_fraction(10.0)});
      json.add("coverage-100x100", "budget" + std::to_string(steps) + "steps", "worst_uCi",
               map.worst_case());
    }
    print_banner(std::cout, "observation budget sweep (6x6 grid): patience buys sensitivity");
    const std::vector<std::string> header{"steps", "worst_uCi", "cov@4uCi", "cov@10uCi"};
    print_table(std::cout, header, rows);
  }

  {
    // Obstacles hurt *detection* coverage even though they can help
    // *localization* accuracy (Fig. 9) — two different quantities.
    const auto scenario = make_scenario_a(10.0, 5.0, /*with_obstacle=*/true);
    CoverageConfig cfg;
    cfg.cells_x = cells;
    cfg.cells_y = cells;
    const auto open = compute_coverage(scenario.env.without_obstacles(), scenario.sensors, cfg);
    const auto walled = compute_coverage(scenario.env, scenario.sensors, cfg);
    print_banner(std::cout, "Scenario A obstacle effect on detection coverage");
    std::vector<std::vector<double>> rows{
        {0.0, open.worst_case(), open.covered_fraction(4.0)},
        {1.0, walled.worst_case(), walled.covered_fraction(4.0)},
    };
    const std::vector<std::string> header{"obstacles", "worst_uCi", "cov@4uCi"};
    print_table(std::cout, header, rows);
    json.add("coverage-scenario-A", "open", "worst_uCi", open.worst_case());
    json.add("coverage-scenario-A", "walled", "worst_uCi", walled.worst_case());
    std::cout << "\n(detection coverage can only get worse behind shielding; the paper's\n"
              << "Fig. 9 improvement concerns localization accuracy of detected sources)\n";
  }
  return 0;
}

// Extension X7 — mobile search vs static network at equal measurement
// budgets.
//
// A robot taking M position-chosen readings competes with a 6x6 static
// grid consuming the same number of measurements (M / 36 time steps).
// Reported: localization error of the best estimate, convergence rate, and
// distance travelled — quantifying when a single mobile detector can
// substitute for a deployed network (Ristic et al. [18]'s setting, run on
// this paper's filter).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/common/math.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/search/mobile_searcher.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace {

using namespace radloc;

class SimOracle final : public MeasurementOracle {
 public:
  SimOracle(const MeasurementSimulator& sim, std::uint64_t seed) : sim_(&sim), rng_(seed) {}
  double read_cpm(const Point2& at, const SensorResponse& response) override {
    return sim_->sample_at(rng_, at, response);
  }

 private:
  const MeasurementSimulator* sim_;
  Rng rng_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("robot_search");
  const std::size_t trials = bench::trials(5);

  Environment env(make_area(100, 100));
  const std::vector<Source> truth{{{70, 65}, 50.0}};

  std::cout << "Mobile search vs static 6x6 network at equal measurement budgets,\n"
            << "one 50 uCi source, " << trials << " trials.\n";

  std::vector<std::vector<double>> rows;
  // Smoke mode trims the reading budgets, not just trial count: the robot
  // path loop is the dominant cost here.
  const std::vector<std::size_t> budgets =
      bench::smoke() ? std::vector<std::size_t>{36u} : std::vector<std::size_t>{72u, 144u, 288u};
  for (const std::size_t budget : budgets) {
    RunningStats robot_err, robot_conv, robot_dist, net_err;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      // Robot: `budget` readings along a self-chosen path.
      {
        MeasurementSimulator sim(env, {{0, {0, 0}, {}}}, truth);
        SimOracle oracle(sim, 700 + trial);
        SearcherConfig cfg;
        cfg.filter.num_particles = 2000;
        cfg.max_steps = budget;
        MobileSearcher searcher(env, cfg, Rng(710 + trial));
        const auto result = searcher.search({10, 10}, oracle);
        double best = 1e18;
        for (const auto& e : result.estimates) {
          best = std::min(best, distance(e.pos, truth[0].pos));
        }
        robot_err.add(best > 1e17 ? std::nan("") : best);
        robot_conv.add(result.converged ? 1.0 : 0.0);
        robot_dist.add(result.distance_travelled);
      }
      // Static network: budget/36 time steps of full sweeps.
      {
        auto sensors = place_grid(env.bounds(), 6, 6);
        set_background(sensors, 5.0);
        MeasurementSimulator sim(env, sensors, truth);
        MultiSourceLocalizer loc(env, sensors, LocalizerConfig{}, 720 + trial);
        Rng noise(730 + trial);
        const std::size_t steps = std::max<std::size_t>(1, budget / sensors.size());
        for (std::size_t t = 0; t < steps; ++t) loc.process_all(sim.sample_time_step(noise));
        const auto match = match_estimates(truth, loc.estimate());
        net_err.add(match.error[0] ? *match.error[0] : std::nan(""));
      }
    }
    rows.push_back({static_cast<double>(budget), robot_err.mean(), robot_conv.mean(),
                    robot_dist.mean(), net_err.mean()});
    const std::string config = "budget" + std::to_string(budget);
    json.add("single-source-50uCi", config, "robot_error", robot_err.mean());
    json.add("single-source-50uCi", config, "robot_conv_rate", robot_conv.mean());
    json.add("single-source-50uCi", config, "grid_error", net_err.mean());
  }

  print_banner(std::cout, "error / robot convergence rate / distance vs static-network error");
  const std::vector<std::string> header{"readings", "robot_err", "conv_rate", "distance",
                                        "grid_err"};
  print_table(std::cout, header, rows);
  std::cout << "\nExpected shape: the static network wins at tiny budgets (it samples\n"
            << "everywhere at once); the robot catches up once its budget allows the\n"
            << "hunt to complete, using ONE detector instead of 36.\n";
  return 0;
}

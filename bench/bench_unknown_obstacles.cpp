// Extension X6 — THE paper's headline claim, isolated:
//
//   "incompletely specified obstacles will significantly degrade the
//    accuracy of existing algorithms due to their unpredictable effects on
//    the source signatures" — while the proposed algorithm needs no
//    obstacle model at all.
//
// Setup: a heavily shielded world (thick concrete cross in the middle).
// Methods, each run obstacle-BLIND (free-space model) and obstacle-AWARE:
//   * the proposed fusion-range localizer;
//   * the MLE baseline (the "existing algorithm" class).
// The gap between blind and aware is the cost of not knowing the obstacles
// — small for the proposed method, large for MLE.
#include <iostream>

#include "bench_util.hpp"
#include "radloc/baselines/mle.hpp"
#include "radloc/common/math.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/geom/shapes.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace {

using namespace radloc;

Environment shielded_world() {
  // Obstacles only matter when they block sensors that would otherwise
  // carry strong signal: each source sits behind a heavy wall (mu = 0.7,
  // lead-like; ~97% absorption through 5 units) that shadows its nearest
  // sensors on one side.
  std::vector<Obstacle> obstacles;
  obstacles.emplace_back(make_wall({10.0, 65.0}, {35.0, 65.0}, 5.0), 0.7);   // south of S1
  obstacles.emplace_back(make_wall({70.0, 80.0}, {90.0, 62.0}, 5.0), 0.7);   // across S2
  obstacles.emplace_back(make_wall({32.0, 15.0}, {32.0, 38.0}, 5.0), 0.7);   // east of S3
  obstacles.emplace_back(make_wall({60.0, 28.0}, {82.0, 15.0}, 5.0), 0.7);   // across S4
  return Environment(make_area(100.0, 100.0), std::move(obstacles));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("unknown_obstacles");
  const std::size_t trials = bench::trials(3);
  const std::size_t num_steps = bench::steps(15);

  Environment env = shielded_world();
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  // One source per quadrant, separated by the cross.
  const std::vector<Source> truth{
      {{25.0, 75.0}, 40.0}, {{78.0, 72.0}, 60.0}, {{22.0, 25.0}, 50.0}, {{75.0, 28.0}, 30.0}};

  std::cout << "Unknown-obstacle robustness: 4 sources in a heavily shielded world\n"
            << "(concrete cross, mu=0.13), " << trials << " trials x " << num_steps
            << " steps.\n"
            << "Each method runs obstacle-BLIND (free-space model) and obstacle-AWARE.\n";

  RunningStats ours_blind_err, ours_aware_err, mle_blind_err, mle_aware_err;
  RunningStats ours_blind_fn, ours_aware_fn, mle_blind_fn, mle_aware_fn;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    MeasurementSimulator sim(env, sensors, truth);
    Rng noise(900 + trial);
    std::vector<std::vector<Measurement>> steps;
    std::vector<Measurement> all;
    for (std::size_t t = 0; t < num_steps; ++t) {
      steps.push_back(sim.sample_time_step(noise));
      all.insert(all.end(), steps.back().begin(), steps.back().end());
    }

    auto run_ours = [&](bool aware, RunningStats& err, RunningStats& fn) {
      LocalizerConfig cfg;
      cfg.filter.use_known_obstacles = aware;
      MultiSourceLocalizer loc(env, sensors, cfg, 910 + trial);
      for (const auto& batch : steps) loc.process_all(batch);
      const auto match = match_estimates(truth, loc.estimate());
      err.add(match.mean_error());
      fn.add(static_cast<double>(match.false_negatives));
    };
    run_ours(false, ours_blind_err, ours_blind_fn);
    run_ours(true, ours_aware_err, ours_aware_fn);

    auto run_mle = [&](bool aware, RunningStats& err, RunningStats& fn) {
      MleConfig cfg;
      cfg.max_sources = 5;
      cfg.restarts = 6;
      cfg.use_known_obstacles = aware;
      MleLocalizer mle(env, sensors, cfg);
      Rng rng(920 + trial);
      const auto fit = mle.fit(all, rng);
      const auto match = match_estimates(truth, fit.sources);
      err.add(match.mean_error());
      fn.add(static_cast<double>(match.false_negatives));
    };
    run_mle(false, mle_blind_err, mle_blind_fn);
    run_mle(true, mle_aware_err, mle_aware_fn);
  }

  print_banner(std::cout, "mean localization error / false negatives (of 4 sources)");
  const std::vector<std::string> header{"method", "err", "FN"};
  const std::vector<std::vector<double>> rows{
      {0.0, ours_blind_err.mean(), ours_blind_fn.mean()},
      {1.0, ours_aware_err.mean(), ours_aware_fn.mean()},
      {2.0, mle_blind_err.mean(), mle_blind_fn.mean()},
      {3.0, mle_aware_err.mean(), mle_aware_fn.mean()},
  };
  print_table(std::cout, header, rows);
  const struct {
    const char* config;
    const RunningStats* err;
    const RunningStats* fn;
  } json_rows[] = {
      {"ours-blind", &ours_blind_err, &ours_blind_fn},
      {"ours-aware", &ours_aware_err, &ours_aware_fn},
      {"mle-blind", &mle_blind_err, &mle_blind_fn},
      {"mle-aware", &mle_aware_err, &mle_aware_fn},
  };
  for (const auto& r : json_rows) {
    json.add("shielded-world-4src", r.config, "mean_error", r.err->mean());
    json.add("shielded-world-4src", r.config, "fn", r.fn->mean());
  }
  std::cout << "rows: 0 = proposed, obstacle-blind   1 = proposed, obstacle-aware\n"
            << "      2 = MLE+BIC,  obstacle-blind   3 = MLE+BIC,  obstacle-aware\n\n"
            << "Expected shape: rows 0 and 1 close (the proposed method does not need\n"
            << "the obstacle map); row 2 much worse than row 3 (the model-fitting\n"
            << "baseline is crippled by unmodeled shielding).\n";
  return 0;
}

// Trial-level experiment throughput (DESIGN.md §5.6).
//
// Runs the Fig. 5 three-source scenario with Scenario A's U-shaped obstacle
// through run_experiment under increasing trial parallelism and records
// trials/sec:
//
//   seed       serial loop, per-trial rebuild of simulator + transmission
//              cache (the pre-PR cost model)
//   shared     serial loop, immutable per-scenario state shared across
//              trials (memoized ground-truth rates + one prepared cache)
//   N threads  shared state + N-way trial parallelism on one pool
//
// Every parallel run is checked bitwise against the serial result (the
// determinism contract) and the comparison is recorded alongside the
// throughput numbers in BENCH_experiment_throughput.json. Speedups are
// measured on THIS host — host_hw_threads in the JSON says how many cores
// were actually available to the thread scaling.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "radloc/eval/experiment.hpp"

namespace {

using namespace radloc;

double run_once(const Scenario& scenario, const ExperimentOptions& opts, ExperimentResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  ExperimentResult result = run_experiment(scenario, opts);
  const auto t1 = std::chrono::steady_clock::now();
  if (out != nullptr) *out = std::move(result);
  return std::chrono::duration<double>(t1 - t0).count();
}

// Bitwise equality over every deterministic ExperimentResult field
// (seconds_per_iteration is wall clock and excluded by contract).
bool identical(const ExperimentResult& a, const ExperimentResult& b) {
  auto same = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  if (a.error.size() != b.error.size()) return false;
  for (std::size_t t = 0; t < a.error.size(); ++t) {
    for (std::size_t j = 0; j < a.error[t].size(); ++j) {
      if (!same(a.error[t][j], b.error[t][j])) return false;
      if (a.matched_frac[t][j] != b.matched_frac[t][j]) return false;
    }
    if (a.false_positives[t] != b.false_positives[t]) return false;
    if (a.false_negatives[t] != b.false_negatives[t]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::JsonWriter json("experiment_throughput");

  const Scenario scenario = make_scenario_a3(10.0, 5.0, /*with_obstacle=*/true);

  ExperimentOptions opts;
  opts.trials = bench::smoke() ? 2 : bench::env_size("RADLOC_TRIALS", 8);
  opts.time_steps = bench::steps(30);
  opts.seed = 7;
  opts.localizer.filter.use_known_obstacles = true;
  opts.localizer.filter.use_transmission_cache = true;

  const auto trials = static_cast<double>(opts.trials);
  std::printf("experiment throughput — scenario A3+obstacle, %zu trials x %zu steps\n",
              opts.trials, opts.time_steps);

  // Seed baseline: serial loop, everything rebuilt per trial.
  opts.num_threads = 1;
  opts.share_scenario_state = false;
  ExperimentResult serial_ref;
  const double seed_s = run_once(scenario, opts, &serial_ref);
  const double seed_tps = trials / seed_s;
  std::printf("  %-22s %8.3f s  %6.3f trials/s\n", "seed (rebuild/trial)", seed_s, seed_tps);
  json.add("A3+obstacle", "seed-per-trial-rebuild", "trials_per_sec", seed_tps, 1);

  // Shared scenario state, still serial.
  opts.share_scenario_state = true;
  ExperimentResult shared_result;
  const double shared_s = run_once(scenario, opts, &shared_result);
  const double shared_tps = trials / shared_s;
  std::printf("  %-22s %8.3f s  %6.3f trials/s  %5.2fx  bit-identical=%s\n", "shared state",
              shared_s, shared_tps, seed_s / shared_s,
              identical(serial_ref, shared_result) ? "yes" : "NO");
  json.add("A3+obstacle", "shared-state", "trials_per_sec", shared_tps, 1);
  json.add("A3+obstacle", "shared-state", "speedup_vs_seed", seed_s / shared_s, 1);
  json.add("A3+obstacle", "shared-state", "bitwise_match_serial",
           identical(serial_ref, shared_result) ? 1.0 : 0.0, 1);

  for (const std::size_t n : std::vector<std::size_t>{2, 4, 8}) {
    if (n > opts.trials) break;
    opts.num_threads = n;
    ExperimentResult result;
    const double s = run_once(scenario, opts, &result);
    const double tps = trials / s;
    const bool match = identical(serial_ref, result);
    char label[32];
    std::snprintf(label, sizeof(label), "shared, %zu threads", n);
    std::printf("  %-22s %8.3f s  %6.3f trials/s  %5.2fx  bit-identical=%s\n", label, s, tps,
                seed_s / s, match ? "yes" : "NO");
    char config[32];
    std::snprintf(config, sizeof(config), "shared-state-parallel");
    json.add("A3+obstacle", config, "trials_per_sec", tps, n);
    json.add("A3+obstacle", config, "speedup_vs_seed", seed_s / s, n);
    json.add("A3+obstacle", config, "bitwise_match_serial", match ? 1.0 : 0.0, n);
  }

  json.write();
  return 0;
}

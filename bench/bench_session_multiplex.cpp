// Session-multiplex sustained throughput (DESIGN.md §5.8).
//
// Measures the SessionManager service layer end to end: S independent
// Scenario-A sessions share one pool; each time step every session ingests
// one full sensor sweep (36 readings) and drain_all() applies the backlog
// as batched pool work. Reported per session count:
//
//   readings_per_sec   sustained ingest->drain->apply throughput across all
//                      sessions (feeds pre-generated, simulator excluded)
//   p50/p99_latency_us per-reading drain latency (sliding-window percentile
//                      telemetry from SessionStats, worst session's p99)
//
// Thread scaling note: drains parallelize across sessions, so --threads N
// only helps with multiple sessions — and only on a host that actually has
// cores (host_hw_threads in the JSON records what this machine offered).
//
// The repeat-sensor section replays a trace where each sensor reports R
// consecutive readings per step (dwell/burst telemetry, R from
// --repeat-sensor, default 8) and compares baseline vs the generation-
// versioned scoring cache vs cache + fused same-sensor updates — the
// workload those knobs (filter/config.hpp, DESIGN.md §5.10) were built for.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "radloc/radloc.hpp"

namespace {

using namespace radloc;

struct RunStats {
  double readings_per_sec = 0.0;
  double p50_us = 0.0;  // median session
  double p99_us = 0.0;  // worst session
  double cache_hit_rate = 0.0;   // mean over sessions
  double fused_batch_len = 0.0;  // mean over sessions
};

struct RunConfig {
  bool adaptive = false;
  std::size_t cache_entries = 0;
  bool fused = false;
  double ess_threshold = 1.0;
};

RunStats run_once(const Scenario& scenario, const std::vector<std::vector<Measurement>>& steps,
                  std::size_t sessions, std::size_t threads, std::uint64_t seed,
                  const RunConfig& rc) {
  SessionConfig cfg;
  cfg.localizer.filter.num_particles = 800;
  cfg.localizer.filter.fusion_range = scenario.recommended_fusion_range;
  cfg.localizer.filter.ess_resample_threshold = rc.ess_threshold;
  cfg.localizer.filter.scoring_cache_entries = rc.cache_entries;
  cfg.localizer.filter.fused_batch_updates = rc.fused;
  if (rc.adaptive) {
    // The multiplier row: once a session's posterior converges its budget
    // shrinks toward min_particles and the whole server's readings/sec
    // scales with scenario difficulty instead of worst-case NP.
    cfg.localizer.filter.adaptive_budget = true;
    cfg.localizer.filter.min_particles = 200;
    cfg.localizer.filter.max_particles = 1600;
    cfg.localizer.filter.ess_resample_threshold = 0.5;
  }
  cfg.queue_capacity = 1 << 12;

  ThreadPool pool(threads, threads);
  SessionManager mgr(pool);
  std::vector<SessionManager::SessionId> ids;
  for (std::size_t k = 0; k < sessions; ++k) {
    ids.push_back(mgr.open(scenario.env, scenario.sensors, cfg, seed ^ (k * 7919)));
  }

  std::size_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < steps.size(); ++t) {
    for (const auto id : ids) {
      for (const Measurement& m : steps[t]) {
        (void)mgr.ingest(id, SessionReading{static_cast<double>(t), m});
      }
    }
    total += mgr.drain_all();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(t1 - t0).count();

  RunStats out;
  out.readings_per_sec = static_cast<double>(total) / elapsed;
  std::vector<double> p50s, p99s;
  for (const auto id : ids) {
    const SessionStats st = mgr.stats(id);
    p50s.push_back(st.p50_latency_us);
    p99s.push_back(st.p99_latency_us);
    out.cache_hit_rate += st.cache_hit_rate;
    out.fused_batch_len += st.fused_batch_len;
  }
  std::sort(p50s.begin(), p50s.end());
  out.p50_us = p50s[p50s.size() / 2];
  out.p99_us = *std::max_element(p99s.begin(), p99s.end());
  out.cache_hit_rate /= static_cast<double>(ids.size());
  out.fused_batch_len /= static_cast<double>(ids.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --repeat-sensor is this bench's own flag; bench::init rejects unknown
  // arguments, so strip it from argv before handing the rest over.
  std::size_t repeat = 8;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeat-sensor") == 0 && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed > 0) repeat = static_cast<std::size_t>(parsed);
    } else {
      args.push_back(argv[i]);
    }
  }
  bench::init(static_cast<int>(args.size()), args.data());
  const std::size_t threads = bench::threads();
  const std::size_t num_steps = bench::steps(30);
  const std::size_t reps = bench::trials(3);

  const Scenario scenario = make_scenario_a(10.0, 5.0, false);

  // Pre-generate one shared feed: the bench times the service, not the
  // simulator. Every session replays the same sweep sequence.
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  Rng noise(42);
  std::vector<std::vector<Measurement>> steps;
  for (std::size_t t = 0; t < num_steps; ++t) steps.push_back(sim.sample_time_step(noise));

  std::vector<std::size_t> session_counts =
      bench::smoke() ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 8, 32};

  bench::JsonWriter json("session_multiplex");
  std::printf("%-10s %-14s %16s %10s %10s %6s %6s\n", "sessions", "config", "readings/sec",
              "p50_us", "p99_us", "hit%", "fuse");
  const auto report = [&](std::size_t sessions, const char* label, const std::string& config,
                          const std::vector<std::vector<Measurement>>& feed, const RunConfig& rc) {
    RunStats best;
    for (std::size_t r = 0; r < reps; ++r) {
      const RunStats s = run_once(scenario, feed, sessions, threads, 1 + r, rc);
      if (s.readings_per_sec > best.readings_per_sec) best = s;
    }
    std::printf("%-10zu %-14s %16.0f %10.2f %10.2f %6.1f %6.2f\n", sessions, label,
                best.readings_per_sec, best.p50_us, best.p99_us, 100.0 * best.cache_hit_rate,
                best.fused_batch_len);
    json.add("A", config, "readings_per_sec", best.readings_per_sec, threads);
    json.add("A", config, "p50_latency_us", best.p50_us, threads);
    json.add("A", config, "p99_latency_us", best.p99_us, threads);
    if (rc.cache_entries > 0 || rc.fused) {
      json.add("A", config, "cache_hit_rate", best.cache_hit_rate, threads);
      json.add("A", config, "fused_batch_len", best.fused_batch_len, threads);
    }
  };

  for (const bool adaptive : {false, true}) {
    for (const std::size_t sessions : session_counts) {
      RunConfig rc;
      rc.adaptive = adaptive;
      const std::string config =
          "sessions:" + std::to_string(sessions) + (adaptive ? "|adaptive" : "");
      report(sessions, adaptive ? "adaptive" : "fixed", config, steps, rc);
    }
  }

  // Repeat-sensor trace replay: each step every sensor reports `repeat`
  // consecutive readings (drawn from independent sweeps, so the counts stay
  // honest Poisson draws). All three rows share the ESS-gated resample
  // threshold so the speedup isolates the cache and the fusing, not the
  // gate itself.
  std::vector<std::vector<Measurement>> repeat_steps;
  for (std::size_t t = 0; t < num_steps; ++t) {
    std::vector<std::vector<Measurement>> sweeps;
    for (std::size_t r = 0; r < repeat; ++r) sweeps.push_back(sim.sample_time_step(noise));
    std::vector<Measurement> step;
    step.reserve(repeat * sweeps.front().size());
    for (std::size_t s = 0; s < sweeps.front().size(); ++s) {
      for (std::size_t r = 0; r < repeat; ++r) step.push_back(sweeps[r][s]);
    }
    repeat_steps.push_back(std::move(step));
  }
  const std::vector<std::size_t> repeat_sessions =
      bench::smoke() ? std::vector<std::size_t>{1} : std::vector<std::size_t>{1, 8};
  for (const std::size_t sessions : repeat_sessions) {
    const std::string base = "repeat:" + std::to_string(repeat) + "|sessions:" +
                             std::to_string(sessions);
    RunConfig off;
    off.ess_threshold = 0.5;
    report(sessions, "repeat", base, repeat_steps, off);
    RunConfig cached = off;
    cached.cache_entries = 64;
    report(sessions, "repeat|cache", base + "|cache", repeat_steps, cached);
    RunConfig fused = cached;
    fused.fused = true;
    report(sessions, "repeat|fused", base + "|cache|fused", repeat_steps, fused);
  }
  json.write();
  return 0;
}

// Fig. 2 — what happens WITHOUT the fusion range: a conventional particle
// filter fed two sources gravitates toward whichever source's sensors
// reported most recently, oscillating between them as the sensor sweep
// proceeds.
//
// The bench runs (a) the typical single-state particle filter (joint filter
// with K = 1, every measurement updates every particle — the formulation
// Fig. 2 illustrates) and (b) the fusion-range filter, on the same
// two-source world, and prints the particle-centroid distance to each
// source across iterations of one sensor sweep, plus an oscillation
// summary.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/baselines/joint_pf.hpp"
#include "radloc/common/math.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("fig2_fusion_ablation");
  // Fig. 2's layout: sources A (upper-left region) and B (lower-right).
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  const std::vector<Source> sources{{{25, 75}, 50.0}, {{80, 25}, 50.0}};
  MeasurementSimulator sim(env, sensors, sources);

  JointPfConfig joint_cfg;
  joint_cfg.num_sources = 1;  // the typical "one source state" filter
  joint_cfg.num_particles = 2000;
  JointParticleFilter no_fusion(env, sensors, joint_cfg, Rng(7));

  LocalizerConfig cfg;
  cfg.filter.num_particles = 2000;
  MultiSourceLocalizer fusion(env, sensors, cfg, 7);

  Rng noise(8);
  std::cout << "Fig. 2 reproduction: particle centroid of a conventional (no fusion\n"
            << "range) filter vs the fusion-range filter; two 50 uCi sources at\n"
            << "(25,75) [A] and (80,25) [B].\n";

  // Warm up 3 time steps, then trace one full sensor sweep per row.
  for (int t = 0; t < 3; ++t) {
    for (const auto& m : sim.sample_time_step(noise)) {
      no_fusion.process(m);
      fusion.process(m);
    }
  }

  std::vector<std::vector<double>> rows;
  RunningStats swing;
  for (int t = 3; t < 8; ++t) {
    for (const auto& m : sim.sample_time_step(noise)) {
      no_fusion.process(m);
      fusion.process(m);
      const Point2 c = no_fusion.centroid();
      swing.add(distance(c, sources[0].pos));
    }
    const Point2 c = no_fusion.centroid();
    auto mass_near = [&](const Point2& p) {
      const auto& f = fusion.filter();
      double mass = 0.0;
      for (std::size_t i = 0; i < f.size(); ++i) {
        if (distance(f.positions()[i], p) < 15.0) mass += f.weights()[i];
      }
      return mass;
    };
    rows.push_back({static_cast<double>(t), distance(c, sources[0].pos),
                    distance(c, sources[1].pos), mass_near(sources[0].pos),
                    mass_near(sources[1].pos)});
  }

  const std::vector<std::string> header{"step", "noFus_dA", "noFus_dB", "fus_massA",
                                        "fus_massB"};
  print_banner(std::cout, "Fig. 2: centroid drift (no fusion) vs stable bimodal mass (fusion)");
  print_table(std::cout, header, rows);

  std::cout << "\nno-fusion centroid distance-to-A over all iterations: min " << swing.min()
            << ", max " << swing.max() << " (swing " << swing.max() - swing.min() << ")\n"
            << "A centroid cannot represent both sources: it oscillates/settles between\n"
            << "them, while the fusion-range filter holds mass at BOTH sources.\n";

  json.add("fig2-two-sources", "no-fusion-joint-pf", "centroid_swing",
           swing.max() - swing.min());
  json.add("fig2-two-sources", "fusion-range", "final_mass_near_A", rows.back()[3]);
  json.add("fig2-two-sources", "fusion-range", "final_mass_near_B", rows.back()[4]);
  return 0;
}

// Extension X8 — robustness across randomized worlds.
//
// The paper evaluates fixed layouts; this sweep runs the localizer on many
// RANDOM worlds (random source placement, strengths, and obstacle walls)
// and reports the distribution of outcomes with bootstrap confidence
// intervals — the release-readiness question "does it work on layouts
// nobody tuned for?".
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/eval/stats.hpp"
#include "radloc/sensornet/simulator.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("robustness_sweep");
  const std::size_t worlds = bench::worlds(20);
  const std::size_t num_steps = bench::steps(15);

  std::cout << "Robustness sweep: " << worlds << " random worlds per row (random source\n"
            << "positions, log-uniform 10-100 uCi strengths, random walls), " << num_steps
            << " steps.\n";

  std::vector<std::vector<double>> rows;
  Rng master(0xD1CE);
  for (const std::size_t k : {1u, 2u, 3u, 4u, 5u}) {
    std::vector<double> errors;
    std::vector<double> fn_counts;
    std::vector<double> fp_counts;
    std::size_t perfect = 0;

    for (std::size_t w = 0; w < worlds; ++w) {
      Rng world_rng = master.split();
      RandomScenarioConfig cfg;
      cfg.num_sources = k;
      const Scenario scenario = make_random_scenario(world_rng, cfg);

      MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
      MultiSourceLocalizer loc(scenario.env, scenario.sensors, LocalizerConfig{},
                               master());
      Rng noise = master.split();
      for (std::size_t t = 0; t < num_steps; ++t) loc.process_all(sim.sample_time_step(noise));

      const auto match = match_estimates(scenario.sources, loc.estimate());
      if (match.false_negatives == 0 && match.false_positives == 0) ++perfect;
      fn_counts.push_back(static_cast<double>(match.false_negatives));
      fp_counts.push_back(static_cast<double>(match.false_positives));
      if (match.false_negatives < k) errors.push_back(match.mean_error());
    }

    Rng boot(42);
    const auto err_ci = errors.empty() ? ConfidenceInterval{}
                                       : bootstrap_mean_ci(errors, boot);
    const auto fn_ci = bootstrap_mean_ci(fn_counts, boot);
    rows.push_back({static_cast<double>(k), err_ci.point, err_ci.lo, err_ci.hi, fn_ci.point,
                    bootstrap_mean_ci(fp_counts, boot).point,
                    static_cast<double>(perfect) / static_cast<double>(worlds)});
    // Append, not operator+ — GCC 12 -Wrestrict false positive (PR 105329).
    std::string config = "K";
    config += std::to_string(k);
    json.add("random-worlds", config, "mean_error", err_ci.point);
    json.add("random-worlds", config, "fn_mean", fn_ci.point);
    json.add("random-worlds", config, "perfect_frac",
             static_cast<double>(perfect) / static_cast<double>(worlds));
  }

  print_banner(std::cout, "outcomes by true source count (mean error with 95% bootstrap CI)");
  const std::vector<std::string> header{"K",       "err",     "err_lo", "err_hi",
                                        "FN_mean", "FP_mean", "perfect"};
  print_table(std::cout, header, rows);
  std::cout << "\nExpected shape: error flat in K (the constant-parameter-space claim);\n"
            << "FN grows mildly with K (weak sources in crowded worlds); most worlds\n"
            << "localize every source with no false alarms.\n";
  return 0;
}

// Extension X2 — design-choice ablations on the two-source scenario:
//
//  * fusion range d (the paper's key knob: too small -> false negatives on
//    weak sources; too large -> interference between sources, Fig. 2-like);
//  * resampling noise sigma_N (0 = degeneracy, large = blur);
//  * random replacement fraction (0 = blind to new sources);
//  * particle count NP (coverage vs cost).
#include <iostream>
#include <limits>

#include "bench_util.hpp"
#include "radloc/eval/experiment.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"

namespace {

using namespace radloc;

std::vector<double> run_config(const Scenario& scenario, const LocalizerConfig& cfg,
                               double knob, std::size_t trials, std::uint64_t seed) {
  ExperimentOptions opts;
  opts.trials = trials;
  opts.time_steps = bench::steps(20);
  opts.seed = seed;
  opts.localizer = cfg;
  opts.use_scenario_defaults = false;
  opts.num_threads = bench::threads();
  const auto r = run_experiment(scenario, opts);
  const std::size_t from = opts.time_steps / 2;
  const std::size_t to = opts.time_steps;
  return {knob, r.avg_error_all(from, to), r.avg_false_positives(from, to),
          r.avg_false_negatives(from, to)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("ablation_params");
  const std::size_t trials = bench::trials(3);
  const auto scenario = make_scenario_a(10.0, 5.0, false);
  const std::vector<std::string> header{"value", "err_late", "FP_late", "FN_late"};

  LocalizerConfig base;
  base.filter.num_particles = 2000;
  base.filter.fusion_range = 28.0;

  std::cout << "Design-choice ablations (two 10 uCi sources, " << trials << " trials).\n";

  auto record = [&json](const char* knob, const std::vector<std::vector<double>>& rows) {
    for (const auto& r : rows) {
      std::ostringstream cfg;
      cfg << knob << "=" << r[0];
      json.add("ablation-scenario-A", cfg.str(), "late_error", r[1]);
      json.add("ablation-scenario-A", cfg.str(), "late_fp", r[2]);
      json.add("ablation-scenario-A", cfg.str(), "late_fn", r[3]);
    }
  };

  {
    std::vector<std::vector<double>> rows;
    for (const double d : {10.0, 20.0, 28.0, 40.0, 60.0, 150.0}) {
      LocalizerConfig cfg = base;
      cfg.filter.fusion_range = d;
      rows.push_back(run_config(scenario, cfg, d, trials, 100));
    }
    print_banner(std::cout, "fusion range d (paper default 28; 150 ~ no fusion range)");
    print_table(std::cout, header, rows);
    record("fusion_range", rows);
  }
  {
    std::vector<std::vector<double>> rows;
    for (const double s : {0.0, 1.0, 3.0, 6.0, 12.0}) {
      LocalizerConfig cfg = base;
      cfg.filter.resample_noise_sigma = s;
      rows.push_back(run_config(scenario, cfg, s, trials, 200));
    }
    print_banner(std::cout, "resampling noise sigma_N (paper default 3)");
    print_table(std::cout, header, rows);
    record("resample_sigma", rows);
  }
  {
    std::vector<std::vector<double>> rows;
    for (const double f : {0.0, 0.02, 0.05, 0.15, 0.30}) {
      LocalizerConfig cfg = base;
      cfg.filter.random_replacement_frac = f;
      rows.push_back(run_config(scenario, cfg, f, trials, 300));
    }
    print_banner(std::cout, "random replacement fraction (paper default 0.05)");
    print_table(std::cout, header, rows);
    record("replacement_frac", rows);
  }
  {
    std::vector<std::vector<double>> rows;
    for (const std::size_t np : {250u, 500u, 1000u, 2000u, 4000u, 8000u}) {
      LocalizerConfig cfg = base;
      cfg.filter.num_particles = np;
      rows.push_back(run_config(scenario, cfg, static_cast<double>(np), trials, 400));
    }
    print_banner(std::cout, "particle count NP (paper: 2000 for the 100x100 area)");
    print_table(std::cout, header, rows);
    record("num_particles", rows);
  }
  {
    std::vector<std::vector<double>> rows;
    for (const double thr : {-1e18, 0.0, 3.0, 10.0, 30.0}) {
      LocalizerConfig cfg = base;
      cfg.detection_log_lr = thr;
      rows.push_back(run_config(scenario, cfg, thr < -1e17 ? -1.0 : thr, trials, 500));
    }
    print_banner(std::cout,
                 "detection log-LR threshold (-1 row = accept every mean-shift mode)");
    print_table(std::cout, header, rows);
    record("detection_log_lr", rows);
  }
  return 0;
}

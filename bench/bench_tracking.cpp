// Extension X10 — tracking a moving source (the paper's F_movement hook).
//
// A source crosses the area at increasing speeds; the filter runs with a
// random-walk movement model matched (or mismatched) to the motion.
// Reported: mean tracking error after warm-up and the fraction of steps
// the source was tracked (estimate within the 40-unit gate).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/common/math.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace {

using namespace radloc;

struct Outcome {
  double mean_err;
  double tracked_frac;
};

Outcome run(double speed_per_step, double model_sigma, std::size_t trials) {
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);

  RunningStats err;
  RunningStats tracked;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    LocalizerConfig cfg;
    cfg.filter.num_particles = 3000;
    MultiSourceLocalizer loc(env, sensors, cfg, 840 + trial);
    if (model_sigma > 0.0) {
      loc.filter().set_movement_model(std::make_unique<RandomWalkMovement>(model_sigma));
    }
    Rng noise(850 + trial);

    const int steps = static_cast<int>(bench::steps(25));
    for (int t = 0; t < steps; ++t) {
      // Diagonal transit scaled to the requested speed.
      const double progress = speed_per_step * t;
      const Source truth{{15.0 + progress * 0.8, 20.0 + progress * 0.6}, 60.0};
      if (!env.bounds().contains(truth.pos)) break;
      MeasurementSimulator sim(env, sensors, {truth});
      loc.process_all(sim.sample_time_step(noise));
      if (t < std::min(6, steps / 2)) continue;  // warm-up

      double best = std::nan("");
      for (const auto& e : loc.estimate()) {
        const double d = distance(e.pos, truth.pos);
        if (std::isnan(best) || d < best) best = d;
      }
      if (!std::isnan(best) && best <= 40.0) {
        err.add(best);
        tracked.add(1.0);
      } else {
        tracked.add(0.0);
      }
    }
  }
  return Outcome{err.mean(), tracked.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("tracking");
  const std::size_t trials = bench::trials(3);

  std::cout << "Moving-source tracking: a 60 uCi source transits diagonally; the\n"
            << "movement model is the per-iteration random-walk sigma. " << trials
            << " trials.\n";

  std::vector<std::vector<double>> rows;
  for (const double speed : {0.0, 1.0, 2.0, 4.0, 6.0}) {
    const Outcome static_model = run(speed, 0.0, trials);
    // Matched model: per-iteration sigma ~ speed / sqrt(N readings/step).
    const Outcome walk_model = run(speed, std::max(0.3, speed / 4.0), trials);
    rows.push_back({speed, static_model.mean_err, static_model.tracked_frac,
                    walk_model.mean_err, walk_model.tracked_frac});
    std::ostringstream config;
    config << "speed" << speed;
    json.add("moving-source-60uCi", config.str(), "static_tracked_frac",
             static_model.tracked_frac);
    json.add("moving-source-60uCi", config.str(), "walk_tracked_frac", walk_model.tracked_frac);
    json.add("moving-source-60uCi", config.str(), "walk_error", walk_model.mean_err);
  }

  print_banner(std::cout, "error / tracked fraction: static model vs random-walk model");
  const std::vector<std::string> header{"speed", "static_err", "static_trk", "walk_err",
                                        "walk_trk"};
  print_table(std::cout, header, rows);
  std::cout << "\nFinding: the resampling jitter (sigma_N = 3 per touched particle) already\n"
            << "acts as an implicit random-walk model, so the static filter tracks\n"
            << "moderate speeds; an explicit movement model mainly buys headroom at\n"
            << "higher speeds and lets sigma_N stay tuned for accuracy.\n";
  return 0;
}

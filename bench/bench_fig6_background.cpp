// Fig. 6 — two 10 uCi sources under background radiation of
// {0, 5, 10, 50} CPM.
//
// Paper shape: higher background only slows the first few time steps; the
// steady-state error and FP/FN are essentially unchanged.
#include <iostream>

#include "bench_util.hpp"
#include "radloc/eval/experiment.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("fig6_background");
  const std::size_t trials = bench::trials();

  std::cout << "Fig. 6 reproduction: two 10 uCi sources at (47,71), (81,42) under\n"
            << "background {0, 5, 10, 50} CPM, " << trials << " trials.\n";

  std::vector<std::vector<double>> summary;
  for (const double bg : {0.0, 5.0, 10.0, 50.0}) {
    const auto scenario = make_scenario_a(10.0, bg, /*with_obstacle=*/false);
    ExperimentOptions opts;
    opts.trials = trials;
    opts.time_steps = bench::steps(30);
    opts.seed = 6000 + static_cast<std::uint64_t>(bg);
    opts.num_threads = bench::threads();
    const auto result = run_experiment(scenario, opts);

    print_banner(std::cout, "Fig. 6: background " + std::to_string(static_cast<int>(bg)) +
                                " CPM (loc. error per source, FP, FN vs time step)");
    print_time_series(std::cout, result, default_source_names(scenario.sources.size()));
    const std::size_t from = opts.time_steps / 3;
    const std::size_t to = opts.time_steps;
    summary.push_back({bg, result.avg_error_all(0, 5), result.avg_error_all(from, to),
                       result.avg_false_positives(from, to),
                       result.avg_false_negatives(from, to)});
    const std::string config = "bg" + std::to_string(static_cast<int>(bg)) + "cpm";
    json.add("fig6-scenario-A", config, "early_error", result.avg_error_all(0, 5));
    json.add("fig6-scenario-A", config, "late_error", result.avg_error_all(from, to));
    json.add("fig6-scenario-A", config, "late_fp", result.avg_false_positives(from, to));
    json.add("fig6-scenario-A", config, "late_fn", result.avg_false_negatives(from, to));
  }

  print_banner(std::cout, "Fig. 6 summary: background effect is confined to early steps");
  const std::vector<std::string> header{"bg_cpm", "err_steps0-4", "err_steps10-29",
                                        "FP_late", "FN_late"};
  print_table(std::cout, header, summary);
  return 0;
}

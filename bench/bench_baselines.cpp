// Extension X1 — baseline comparison backing the paper's Sec. II claims:
//
//  * MLE + model selection "does not scale beyond four sources" [2]: its
//    optimization cost explodes with K and its selected K degrades;
//  * grid-discretized solvers [16] pay for resolution;
//  * the joint-state particle filter needs K known a priori;
//  * the proposed localizer holds a constant parameter space as K grows.
//
// For K = 1..4 true sources we run each method on the same measurement set
// and report mean localization error (over matched sources), |K̂ - K|, and
// wall time.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/baselines/em_gmm.hpp"
#include "radloc/baselines/grid_solver.hpp"
#include "radloc/baselines/joint_pf.hpp"
#include "radloc/baselines/mle.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/placement.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace {

using namespace radloc;

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("baselines");
  const std::size_t steps = bench::steps(10);

  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);

  // Well-separated truth sets of increasing K.
  const std::vector<Source> all_sources{
      {{25, 70}, 40.0}, {{75, 30}, 60.0}, {{80, 80}, 30.0}, {{20, 20}, 50.0}};

  std::cout << "Baseline comparison: mean loc. error / |Khat-K| / wall seconds, "
            << steps << " time steps of data, 6x6 grid.\n";

  std::vector<std::vector<double>> rows;
  for (std::size_t k = 1; k <= all_sources.size(); ++k) {
    const std::vector<Source> truth(all_sources.begin(),
                                    all_sources.begin() + static_cast<std::ptrdiff_t>(k));
    MeasurementSimulator sim(env, sensors, truth);
    Rng noise(40 + k);
    std::vector<Measurement> batch_all;
    std::vector<std::vector<Measurement>> by_step;
    for (std::size_t t = 0; t < steps; ++t) {
      by_step.push_back(sim.sample_time_step(noise));
      batch_all.insert(batch_all.end(), by_step.back().begin(), by_step.back().end());
    }

    std::vector<double> row{static_cast<double>(k)};
    // Built with append, not operator+: the concat form trips GCC 12's
    // -Wrestrict false positive (PR 105329) at -O3.
    std::string scenario_label = "K";
    scenario_label += std::to_string(k);
    auto score = [&](const char* method, const std::vector<SourceEstimate>& est, double secs) {
      const auto match = match_estimates(truth, est);
      row.push_back(match.mean_error());
      row.push_back(std::abs(static_cast<double>(est.size()) - static_cast<double>(k)));
      row.push_back(secs);
      json.add(scenario_label, method, "mean_error", match.mean_error());
      json.add(scenario_label, method, "k_mismatch",
               std::abs(static_cast<double>(est.size()) - static_cast<double>(k)));
      json.add(scenario_label, method, "seconds", secs);
    };

    {  // Proposed fusion-range localizer (K unknown).
      LocalizerConfig cfg;
      cfg.filter.num_particles = 2000;
      MultiSourceLocalizer loc(env, sensors, cfg, 50 + k);
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& batch : by_step) loc.process_all(batch);
      score("fusion-range", loc.estimate(), seconds_since(t0));
    }
    {  // Joint-state PF (K GIVEN — an advantage the others don't get).
      JointPfConfig cfg;
      cfg.num_sources = k;
      cfg.num_particles = 2000 * k;  // linear growth; paper argues exponential is needed
      JointParticleFilter pf(env, sensors, cfg, Rng(60 + k));
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& m : batch_all) pf.process(m);
      score("joint-pf", pf.estimate(), seconds_since(t0));
    }
    {  // MLE + BIC model selection (K estimated).
      MleConfig cfg;
      cfg.max_sources = all_sources.size() + 1;
      cfg.restarts = 4;
      cfg.optimizer.max_evaluations = 2000;
      MleLocalizer mle(env, sensors, cfg);
      Rng rng(70 + k);
      const auto t0 = std::chrono::steady_clock::now();
      const auto fit = mle.fit(batch_all, rng);
      score("mle-bic", fit.sources, seconds_since(t0));
    }
    {  // EM Gaussian-mixture with AIC (Ding & Cheng [15] style).
      EmConfig cfg;
      cfg.max_components = all_sources.size() + 1;
      EmGmmLocalizer em(env, sensors, cfg);
      Rng rng(80 + k);
      std::vector<double> avg(sensors.size(), 0.0);
      for (const auto& m : batch_all) avg[m.sensor] += m.cpm;
      for (auto& v : avg) v /= static_cast<double>(steps);
      const auto t0 = std::chrono::steady_clock::now();
      const auto fit = em.fit(avg, rng);
      score("em-gmm", fit.sources, seconds_since(t0));
    }
    {  // Grid-discretized NNLS solver.
      GridSolverConfig cfg;
      cfg.cells_x = 25;
      cfg.cells_y = 25;
      GridSolver solver(env, sensors, cfg);
      const auto t0 = std::chrono::steady_clock::now();
      const auto fit = solver.fit_measurements(batch_all);
      score("grid-nnls", fit.sources, seconds_since(t0));
    }
    rows.push_back(std::move(row));
  }

  const std::vector<std::string> header{
      "K",       "ours_err", "ours_dK", "ours_s",  "jpf_err",  "jpf_dK",  "jpf_s",
      "mle_err", "mle_dK",   "mle_s",   "em_err",  "em_dK",    "em_s",
      "grid_err", "grid_dK", "grid_s"};
  print_banner(std::cout, "error / K-mismatch / seconds by method and true K");
  print_table(std::cout, header, rows, 3);
  std::cout << "\nExpected shape: 'ours' holds errors low with near-zero dK at flat cost;\n"
            << "MLE cost grows steeply with K and its selected K drifts; the joint PF\n"
            << "needs K given and more particles as K grows; the EM mixture blurs and\n"
            << "under-counts; the grid solver's accuracy is capped by its cell size.\n";
  return 0;
}

// Table I — average execution time of the algorithm per iteration, for
// NP in {2000, 5000, 15000} x N in {36, 196} x worker threads {1, 2, 4}.
//
// One "iteration" = processing one sensor measurement; mean-shift
// estimation runs once per time step (N iterations) and its cost is
// amortized over the step, matching the paper's measurement. The paper's
// absolute numbers came from 4-core/24-core Xeons; the shape to reproduce
// is (i) growth with NP, (ii) near-insensitivity to N, (iii) speedup with
// threads (on multi-core hosts; this container may expose a single CPU).
#include <benchmark/benchmark.h>

#include "radloc/core/localizer.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace {

using namespace radloc;

void BM_Iteration(benchmark::State& state) {
  const auto particles = static_cast<std::size_t>(state.range(0));
  const bool large = state.range(1) != 0;
  const auto threads = static_cast<std::size_t>(state.range(2));

  const Scenario scenario = large ? make_scenario_b() : make_scenario_a(10.0, 5.0, false);
  LocalizerConfig cfg;
  cfg.filter.num_particles = particles;
  cfg.filter.fusion_range = scenario.recommended_fusion_range;
  cfg.num_threads = threads;
  MultiSourceLocalizer loc(scenario.env, scenario.sensors, cfg, 11);
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  Rng noise(12);

  // Warm up 3 time steps so particles reach their typical clustered state
  // (the paper notes early iterations are slower).
  for (int t = 0; t < 3; ++t) {
    loc.process_all(sim.sample_time_step(noise));
    (void)loc.estimate();
  }

  const auto n = static_cast<double>(scenario.sensors.size());
  for (auto _ : state) {
    const auto batch = sim.sample_time_step(noise);
    loc.process_all(batch);
    benchmark::DoNotOptimize(loc.estimate());
  }
  // Report per-iteration (per-measurement) time like the paper's Table I.
  state.counters["sec_per_iteration"] =
      benchmark::Counter(n * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

}  // namespace

BENCHMARK(BM_Iteration)
    ->ArgNames({"particles", "largeN", "threads"})
    ->Args({2000, 0, 1})
    ->Args({2000, 1, 1})
    ->Args({5000, 0, 1})
    ->Args({5000, 1, 1})
    ->Args({15000, 0, 1})
    ->Args({15000, 1, 1})
    ->Args({15000, 0, 2})
    ->Args({15000, 1, 2})
    ->Args({15000, 0, 4})
    ->Args({15000, 1, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

// Table I — average execution time of the algorithm per iteration, for
// NP in {2000, 5000, 15000} x N in {36, 196} x worker threads {1, 2, 4}.
//
// One "iteration" = processing one sensor measurement; mean-shift
// estimation runs once per time step (N iterations) and its cost is
// amortized over the step, matching the paper's measurement. The paper's
// absolute numbers came from 4-core/24-core Xeons; the shape to reproduce
// is (i) growth with NP, (ii) near-insensitivity to N, (iii) speedup with
// threads (on multi-core hosts; this container may expose a single CPU).
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace {

using namespace radloc;

void BM_Iteration(benchmark::State& state) {
  const auto particles = static_cast<std::size_t>(state.range(0));
  const bool large = state.range(1) != 0;
  const auto threads = static_cast<std::size_t>(state.range(2));

  const Scenario scenario = large ? make_scenario_b() : make_scenario_a(10.0, 5.0, false);
  LocalizerConfig cfg;
  cfg.filter.num_particles = particles;
  cfg.filter.fusion_range = scenario.recommended_fusion_range;
  cfg.num_threads = threads;
  MultiSourceLocalizer loc(scenario.env, scenario.sensors, cfg, 11);
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  Rng noise(12);

  // Warm up 3 time steps so particles reach their typical clustered state
  // (the paper notes early iterations are slower).
  for (int t = 0; t < 3; ++t) {
    loc.process_all(sim.sample_time_step(noise));
    (void)loc.estimate();
  }

  const auto n = static_cast<double>(scenario.sensors.size());
  for (auto _ : state) {
    const auto batch = sim.sample_time_step(noise);
    loc.process_all(batch);
    benchmark::DoNotOptimize(loc.estimate());
  }
  // Report per-iteration (per-measurement) time like the paper's Table I.
  state.counters["sec_per_iteration"] =
      benchmark::Counter(n * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

/// Console reporter that records sec_per_iteration per benchmark so the main
/// can print the multi-thread speedups (the paper's Table I shape) after the
/// run.
class Table1Reporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      const auto it = run.counters.find("sec_per_iteration");
      if (it != run.counters.end()) seconds[run.benchmark_name()] = it->second;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::map<std::string, double> seconds;
};

void print_speedups(const std::map<std::string, double>& seconds) {
  const auto at = [&](int large, int threads) {
    const std::string name = "BM_Iteration/particles:15000/largeN:" + std::to_string(large) +
                             "/threads:" + std::to_string(threads);
    const auto it = seconds.find(name);
    return it != seconds.end() ? it->second : 0.0;
  };
  std::printf("\n--- Table I thread scaling at NP=15000 (speedup vs 1 thread) ---\n");
  for (const int large : {0, 1}) {
    const double base = at(large, 1);
    if (base <= 0.0) continue;
    for (const int threads : {2, 4}) {
      const double t = at(large, threads);
      if (t > 0.0) {
        std::printf("SPEEDUP largeN:%d threads:%d %.2fx\n", large, threads, base / t);
      }
    }
  }
}

}  // namespace

BENCHMARK(BM_Iteration)
    ->ArgNames({"particles", "largeN", "threads"})
    ->Args({2000, 0, 1})
    ->Args({2000, 1, 1})
    ->Args({5000, 0, 1})
    ->Args({5000, 1, 1})
    ->Args({15000, 0, 1})
    ->Args({15000, 1, 1})
    ->Args({15000, 0, 2})
    ->Args({15000, 1, 2})
    ->Args({15000, 0, 4})
    ->Args({15000, 1, 4})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // --smoke is ours, everything else goes to google-benchmark. Smoke keeps
  // only the NP=2000 rows and shortens the measured time — the full matrix
  // (NP=15000 on the 196-sensor layout, with 3 warm-up steps per entry)
  // takes minutes.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      radloc::bench::detail::smoke_flag() = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_table1.gbench.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::string min_time_flag = "--benchmark_min_time=0.01";
  std::string filter_flag = "--benchmark_filter=particles:2000";
  bool has_out = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (std::strncmp(args[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  if (radloc::bench::smoke()) {
    args.push_back(min_time_flag.data());
    args.push_back(filter_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  Table1Reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  print_speedups(reporter.seconds);
  benchmark::Shutdown();

  radloc::bench::JsonWriter json("table1");
  for (const auto& [name, secs] : reporter.seconds) {
    std::size_t threads = 1;
    if (const auto pos = name.find("threads:"); pos != std::string::npos) {
      threads = static_cast<std::size_t>(std::strtoul(name.c_str() + pos + 8, nullptr, 10));
    }
    const bool large = name.find("largeN:1") != std::string::npos;
    json.add(large ? "scenario-B" : "scenario-A", name, "sec_per_iteration", secs, threads);
  }
  json.write();
  return 0;
}

// Scoring-cache + fused-update throughput on a same-sensor repeat stream
// (DESIGN.md §5.10).
//
// The workload these knobs were built for: each time step every sensor
// reports R consecutive readings (dwell/burst telemetry — a detector
// integrating several short windows before the next sensor reports).
// Three configs over the identical pre-generated stream:
//
//   off          the seed path (ESS-gated resample only)
//   cache        + generation-versioned scoring cache — repeat readings hit
//                the memoized fusion subset + hypothesis rates whenever the
//                ESS gate skipped the resample (bit-identical to off)
//   cache|fused  + consecutive same-sensor readings fuse into ONE weight
//                update (log-likelihoods add; tolerance-pinned)
//
// Reported per config: readings/sec (headline), speedup vs off, cache hit
// rate, mean fused group length, and the final localization error of the
// strongest estimate — the accuracy-parity check that makes the speedup an
// honest one (all three rows share the same ESS threshold).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "radloc/radloc.hpp"

namespace {

using namespace radloc;

struct RunResult {
  double readings_per_sec = 0.0;
  double cache_hit_rate = 0.0;
  double fused_batch_len = 0.0;
  double position_error = 0.0;
};

RunResult run_once(const Scenario& scenario,
                   const std::vector<std::vector<Measurement>>& steps, std::size_t threads,
                   std::size_t cache_entries, bool fused) {
  LocalizerConfig cfg;
  cfg.filter.num_particles = 2000;
  cfg.filter.fusion_range = scenario.recommended_fusion_range;
  // The ESS gate is what creates the long same-generation stretches a cache
  // can exploit; it is on in EVERY config so the rows isolate the cache and
  // the fusing, not the gate.
  cfg.filter.ess_resample_threshold = 0.5;
  cfg.filter.scoring_cache_entries = cache_entries;
  cfg.filter.fused_batch_updates = fused;
  cfg.num_threads = threads;

  MultiSourceLocalizer loc(scenario.env, scenario.sensors, cfg, /*seed=*/42);

  std::size_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& step : steps) {
    loc.process_all(step);
    total += step.size();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(t1 - t0).count();

  RunResult out;
  out.readings_per_sec = static_cast<double>(total) / elapsed;
  const FusionParticleFilter& f = loc.filter();
  out.cache_hit_rate = f.scoring_cache_lookups() > 0
                           ? static_cast<double>(f.scoring_cache_hits()) /
                                 static_cast<double>(f.scoring_cache_lookups())
                           : 0.0;
  out.fused_batch_len = f.fused_groups() > 0
                            ? static_cast<double>(f.fused_readings()) /
                                  static_cast<double>(f.fused_groups())
                            : 0.0;
  // Accuracy parity: error of the strongest estimate to its nearest true
  // source (untimed — the bench times ingest, not mean-shift).
  const auto estimates = loc.estimate();
  if (estimates.empty()) {
    out.position_error = std::numeric_limits<double>::infinity();
  } else {
    double best = std::numeric_limits<double>::infinity();
    for (const Source& src : scenario.sources) {
      best = std::min(best, distance(estimates.front().pos, src.pos));
    }
    out.position_error = best;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const std::size_t threads = bench::threads();
  const std::size_t num_steps = bench::steps(20);
  const std::size_t reps = bench::trials(3);

  const Scenario scenario = make_scenario_a(10.0, 5.0, false);

  // Pre-generate the repeat stream: R consecutive readings per sensor per
  // step, drawn from R independent sweeps so the counts stay honest Poisson
  // draws in arrival-plausible order.
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  Rng noise(7);
  const std::vector<std::size_t> repeats =
      bench::smoke() ? std::vector<std::size_t>{8} : std::vector<std::size_t>{8, 32};

  bench::JsonWriter json("scoring_cache");
  std::printf("%-8s %-14s %14s %9s %6s %6s %9s\n", "repeat", "config", "readings/sec",
              "speedup", "hit%", "fuse", "pos_err");
  for (const std::size_t repeat : repeats) {
    std::vector<std::vector<Measurement>> steps;
    for (std::size_t t = 0; t < num_steps; ++t) {
      std::vector<std::vector<Measurement>> sweeps;
      for (std::size_t r = 0; r < repeat; ++r) sweeps.push_back(sim.sample_time_step(noise));
      std::vector<Measurement> step;
      step.reserve(repeat * sweeps.front().size());
      for (std::size_t s = 0; s < sweeps.front().size(); ++s) {
        for (std::size_t r = 0; r < repeat; ++r) step.push_back(sweeps[r][s]);
      }
      steps.push_back(std::move(step));
    }

    struct Config {
      const char* label;
      std::size_t cache_entries;
      bool fused;
    };
    const Config configs[] = {
        {"off", 0, false},
        {"cache", 64, false},
        {"cache|fused", 64, true},
    };
    double baseline = 0.0;
    for (const Config& c : configs) {
      RunResult best;
      for (std::size_t r = 0; r < reps; ++r) {
        const RunResult res = run_once(scenario, steps, threads, c.cache_entries, c.fused);
        if (res.readings_per_sec > best.readings_per_sec) best = res;
      }
      if (baseline == 0.0) baseline = best.readings_per_sec;
      const double speedup = best.readings_per_sec / baseline;
      std::printf("%-8zu %-14s %14.0f %8.2fx %6.1f %6.2f %9.2f\n", repeat, c.label,
                  best.readings_per_sec, speedup, 100.0 * best.cache_hit_rate,
                  best.fused_batch_len, best.position_error);
      const std::string config = "repeat:" + std::to_string(repeat) + "|" + c.label;
      json.add("A", config, "readings_per_sec", best.readings_per_sec, threads);
      json.add("A", config, "speedup_vs_off", speedup, threads);
      json.add("A", config, "cache_hit_rate", best.cache_hit_rate, threads);
      json.add("A", config, "fused_batch_len", best.fused_batch_len, threads);
      json.add("A", config, "position_error", best.position_error, threads);
    }
  }
  json.write();
  return 0;
}

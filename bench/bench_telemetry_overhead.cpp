// Telemetry overhead on the session-multiplex workload (DESIGN.md §5.11).
//
// The observability layer promises that enabling it costs almost nothing:
// counters are relaxed sharded adds, gauges are relaxed stores, stage spans
// are sampled (default 1-in-16), and the disabled path is a pointer compare.
// This bench puts a number on that promise: the bench_session_multiplex
// ingest->drain->apply loop runs with observability off (null handles, the
// seed behavior), with the metrics registry alone, and with metrics plus
// stage tracing at the default sampling interval. Reported:
//
//   readings_per_sec   sustained throughput per config (best of reps)
//   overhead_pct       100 * (off - full) / off — the acceptance headline,
//                      required <= 5% in the committed baseline JSON
//
// The committed BENCH_telemetry_overhead.json records the full (non-smoke)
// run; tools/bench_compare.py tracks readings_per_sec across commits and
// reports overhead_pct informationally.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "radloc/obs/export.hpp"
#include "radloc/radloc.hpp"

namespace {

using namespace radloc;

enum class ObsMode { kOff, kMetrics, kFull };

double run_once(const Scenario& scenario, const std::vector<std::vector<Measurement>>& steps,
                std::size_t sessions, std::size_t threads, std::uint64_t seed, ObsMode mode) {
  SessionConfig cfg;
  cfg.localizer.filter.num_particles = 800;
  cfg.localizer.filter.fusion_range = scenario.recommended_fusion_range;
  cfg.queue_capacity = 1 << 12;

  ThreadPool pool(threads, threads);
  obs::MetricsRegistry registry;
  std::optional<obs::TraceSink> sink;
  ServiceObservability obs;
  if (mode != ObsMode::kOff) obs.metrics = &registry;
  if (mode == ObsMode::kFull) {
    sink.emplace();  // default capacity, default 1-in-16 sampling
    obs.trace = &*sink;
  }
  SessionManager mgr(pool, obs);
  std::vector<SessionManager::SessionId> ids;
  for (std::size_t k = 0; k < sessions; ++k) {
    ids.push_back(mgr.open(scenario.env, scenario.sensors, cfg, seed ^ (k * 7919)));
  }

  std::size_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < steps.size(); ++t) {
    for (const auto id : ids) {
      for (const Measurement& m : steps[t]) {
        (void)mgr.ingest(id, SessionReading{static_cast<double>(t), m});
      }
    }
    total += mgr.drain_all();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(total) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const std::size_t threads = bench::threads();
  const std::size_t num_steps = bench::steps(30);
  const std::size_t reps = bench::trials(3);
  const std::size_t sessions = bench::smoke() ? 2 : 8;

  const Scenario scenario = make_scenario_a(10.0, 5.0, false);
  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  Rng noise(42);
  std::vector<std::vector<Measurement>> steps;
  for (std::size_t t = 0; t < num_steps; ++t) steps.push_back(sim.sample_time_step(noise));

  bench::JsonWriter json("telemetry_overhead");
  std::printf("%-12s %16s\n", "config", "readings/sec");

  // Configs are INTERLEAVED within each rep (off, metrics, full, off, ...)
  // rather than run in three sequential blocks: throughput on a shared CI
  // host drifts over the seconds the bench runs, and a blocked order
  // charges whatever the machine is doing last entirely to the last config.
  // Interleaving spreads the drift evenly; best-of-reps then compares each
  // config's least-disturbed run.
  const struct {
    const char* name;
    ObsMode mode;
  } configs[] = {
      {"obs:off", ObsMode::kOff},
      {"obs:metrics", ObsMode::kMetrics},
      {"obs:full", ObsMode::kFull},
  };
  double best[3] = {0.0, 0.0, 0.0};
  // Per-rep PAIRED overheads: within one rep the three configs run within
  // milliseconds of each other, so host drift mostly cancels; the median of
  // the per-rep ratios is robust to the outlier reps that dominate a
  // best-of or mean-of comparison on a shared machine.
  std::vector<double> overheads;
  for (std::size_t r = 0; r < reps; ++r) {
    double rep[3];
    for (std::size_t c = 0; c < 3; ++c) {
      rep[c] = run_once(scenario, steps, sessions, threads, 1 + r, configs[c].mode);
      best[c] = std::max(best[c], rep[c]);
    }
    if (rep[0] > 0.0) overheads.push_back(100.0 * (rep[0] - rep[2]) / rep[0]);
  }
  for (std::size_t c = 0; c < 3; ++c) {
    std::printf("%-12s %16.0f\n", configs[c].name, best[c]);
    json.add("A", configs[c].name, "readings_per_sec", best[c], threads);
  }

  std::sort(overheads.begin(), overheads.end());
  const double overhead_pct = overheads.empty() ? 0.0 : overheads[overheads.size() / 2];
  std::printf("%-12s %15.2f%%\n", "overhead", overhead_pct);
  json.add("A", "obs:full", "overhead_pct", overhead_pct, threads);
  json.write();
  return 0;
}

// Fig. 3 — localization error and false positives/negatives over time for
// two sources of strength {4, 10, 50, 100} uCi at (47,71) and (81,42),
// background 5 CPM, 6x6 sensor grid, no obstacles.
//
// Paper shape to reproduce: error drops to a few units within ~5 time
// steps; false positives spike early then settle near zero (higher for
// stronger sources); false negatives near zero except the 4 uCi case.
#include <iostream>

#include "bench_util.hpp"
#include "radloc/eval/experiment.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("fig3_two_sources");
  const std::size_t trials = bench::trials();

  std::cout << "Fig. 3 reproduction: two sources at (47,71), (81,42), background 5 CPM,\n"
            << "6x6 sensor grid over 100x100, NP=2000, fusion range 28, " << trials
            << " trials.\n";

  for (const double strength : {4.0, 10.0, 50.0, 100.0}) {
    const auto scenario = make_scenario_a(strength, 5.0, /*with_obstacle=*/false);
    ExperimentOptions opts;
    opts.trials = trials;
    opts.time_steps = bench::steps(30);
    opts.seed = 1000 + static_cast<std::uint64_t>(strength);
    opts.num_threads = bench::threads();
    const auto result = run_experiment(scenario, opts);

    print_banner(std::cout, "Fig. 3: " + std::to_string(static_cast<int>(strength)) +
                                " uCi (loc. error per source, FP, FN vs time step)");
    const auto names = default_source_names(scenario.sources.size());
    print_time_series(std::cout, result, names);
    const std::size_t from = opts.time_steps / 3;
    const std::size_t to = opts.time_steps;
    std::cout << "late-window (steps " << from << "-" << to
              << ") mean error: " << result.avg_error_all(from, to)
              << "  FP: " << result.avg_false_positives(from, to)
              << "  FN: " << result.avg_false_negatives(from, to) << "\n";
    const std::string config = std::to_string(static_cast<int>(strength)) + "uCi";
    json.add("fig3-scenario-A", config, "late_error", result.avg_error_all(from, to));
    json.add("fig3-scenario-A", config, "late_fp", result.avg_false_positives(from, to));
    json.add("fig3-scenario-A", config, "late_fn", result.avg_false_negatives(from, to));
  }
  return 0;
}

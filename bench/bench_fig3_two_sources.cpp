// Fig. 3 — localization error and false positives/negatives over time for
// two sources of strength {4, 10, 50, 100} uCi at (47,71) and (81,42),
// background 5 CPM, 6x6 sensor grid, no obstacles.
//
// Paper shape to reproduce: error drops to a few units within ~5 time
// steps; false positives spike early then settle near zero (higher for
// stronger sources); false negatives near zero except the 4 uCi case.
#include <iostream>

#include "bench_util.hpp"
#include "radloc/eval/experiment.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"

int main() {
  using namespace radloc;
  const std::size_t trials = bench::trials();

  std::cout << "Fig. 3 reproduction: two sources at (47,71), (81,42), background 5 CPM,\n"
            << "6x6 sensor grid over 100x100, NP=2000, fusion range 28, " << trials
            << " trials.\n";

  for (const double strength : {4.0, 10.0, 50.0, 100.0}) {
    const auto scenario = make_scenario_a(strength, 5.0, /*with_obstacle=*/false);
    ExperimentOptions opts;
    opts.trials = trials;
    opts.time_steps = 30;
    opts.seed = 1000 + static_cast<std::uint64_t>(strength);
    const auto result = run_experiment(scenario, opts);

    print_banner(std::cout, "Fig. 3: " + std::to_string(static_cast<int>(strength)) +
                                " uCi (loc. error per source, FP, FN vs time step)");
    const auto names = default_source_names(scenario.sources.size());
    print_time_series(std::cout, result, names);
    std::cout << "late-window (steps 10-30) mean error: " << result.avg_error_all(10, 30)
              << "  FP: " << result.avg_false_positives(10, 30)
              << "  FN: " << result.avg_false_negatives(10, 30) << "\n";
  }
  return 0;
}

// Extension X4 — mean-shift ablations: kernel profile and bandwidth.
//
// The paper fixes a Gaussian kernel (Eq. 6) and leaves H unspecified. This
// bench sweeps the kernel profile (Gaussian vs Epanechnikov) and the
// spatial bandwidth, reporting accuracy, FP/FN, and estimation wall time on
// the three-source scenario.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/common/math.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/simd/simd.hpp"

namespace {

using namespace radloc;

struct Row {
  double err;
  double fp;
  double fn;
  double est_ms;
};

Row run(const Scenario& scenario, const MeanShiftConfig& ms, std::size_t trials) {
  RunningStats err;
  RunningStats fp;
  RunningStats fn;
  double est_seconds = 0.0;
  std::size_t est_calls = 0;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
    LocalizerConfig cfg;
    cfg.meanshift = ms;
    MultiSourceLocalizer loc(scenario.env, scenario.sensors, cfg, 500 + trial);
    Rng noise(600 + trial);
    const int steps = static_cast<int>(bench::steps(20));
    for (int step = 0; step < steps; ++step) {
      loc.process_all(sim.sample_time_step(noise));
      const auto t0 = std::chrono::steady_clock::now();
      const auto estimates = loc.estimate();
      est_seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      ++est_calls;
      if (step >= steps - 6) {  // average the converged window, not one snapshot
        const auto match = match_estimates(scenario.sources, estimates);
        err.add(match.mean_error());
        fp.add(static_cast<double>(match.false_positives));
        fn.add(static_cast<double>(match.false_negatives));
      }
    }
  }
  return Row{err.mean(), fp.mean(), fn.mean(), 1e3 * est_seconds / static_cast<double>(est_calls)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("kernels");
  const std::size_t trials = bench::trials(3);
  const auto scenario = make_scenario_a3(10.0, 5.0);

  std::cout << "Mean-shift ablations on three 10 uCi sources, " << trials << " trials.\n";

  {
    std::vector<std::vector<double>> rows;
    for (const auto kernel : {KernelType::kGaussian, KernelType::kEpanechnikov}) {
      MeanShiftConfig ms;
      ms.kernel = kernel;
      const Row r = run(scenario, ms, trials);
      rows.push_back({kernel == KernelType::kGaussian ? 0.0 : 1.0, r.err, r.fp, r.fn, r.est_ms});
      const char* name = kernel == KernelType::kGaussian ? "gaussian" : "epanechnikov";
      json.add("kernels-scenario-A3", name, "error", r.err);
      json.add("kernels-scenario-A3", name, "estimate_ms", r.est_ms);
    }
    print_banner(std::cout, "kernel profile (0 = Gaussian [paper, Eq. 6], 1 = Epanechnikov)");
    const std::vector<std::string> header{"kernel", "err", "FP", "FN", "estimate_ms"};
    print_table(std::cout, header, rows);
  }
  {
    std::vector<std::vector<double>> rows;
    for (const double h : {2.0, 3.5, 5.0, 8.0, 12.0}) {
      MeanShiftConfig ms;
      ms.bandwidth_xy = h;
      const Row r = run(scenario, ms, trials);
      rows.push_back({h, r.err, r.fp, r.fn, r.est_ms});
      json.add("kernels-scenario-A3", "bandwidth_xy=" + std::to_string(h), "error", r.err);
    }
    print_banner(std::cout, "spatial bandwidth h (library default 5)");
    const std::vector<std::string> header{"bandwidth", "err", "FP", "FN", "estimate_ms"};
    print_table(std::cout, header, rows);
  }
  {
    std::vector<std::vector<double>> rows;
    for (const double hs : {0.25, 0.5, 0.75, 1.5, 3.0}) {
      MeanShiftConfig ms;
      ms.bandwidth_log_strength = hs;
      const Row r = run(scenario, ms, trials);
      rows.push_back({hs, r.err, r.fp, r.fn, r.est_ms});
      json.add("kernels-scenario-A3", "bandwidth_log_strength=" + std::to_string(hs), "error",
               r.err);
    }
    print_banner(std::cout, "log-strength bandwidth (library default 0.75)");
    const std::vector<std::string> header{"bandwidth", "err", "FP", "FN", "estimate_ms"};
    print_table(std::cout, header, rows);
  }
  {
    // Simd tier sweep: the full localize-and-estimate pipeline (weight
    // update + mean-shift profile both route through the batch kernels) at
    // every tier the host supports. Accuracy must be flat across tiers; the
    // estimate time is the mean-shift side of the tier speedup story.
    std::vector<std::vector<double>> rows;
    for (const auto tier : simd::sweep_tiers()) {
      simd::force_tier(tier);
      const Row r = run(scenario, MeanShiftConfig{}, trials);
      const std::string name = std::string("gaussian,simd:") + simd::tier_name(tier);
      json.add("kernels-scenario-A3", name, "error", r.err);
      json.add("kernels-scenario-A3", name, "estimate_ms", r.est_ms);
      rows.push_back({static_cast<double>(tier), r.err, r.fp, r.fn, r.est_ms});
    }
    simd::reset_tier();
    print_banner(std::cout,
                 "simd kernel tier (0 scalar, 1 sse2, 2 avx2; RADLOC_SIMD pins one)");
    const std::vector<std::string> header{"tier", "err", "FP", "FN", "estimate_ms"};
    print_table(std::cout, header, rows);
  }
  return 0;
}

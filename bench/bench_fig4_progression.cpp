// Fig. 4 — progression of the particle filter over time: particles start
// uniform and cluster at the sources within the first few time steps.
//
// The paper shows scatter plots at time steps 1, 3, 5, 7; this bench
// reports the same progression numerically: the fraction of particle mass
// within 10 units of each source, the number of estimates, and a coarse
// ASCII density map per snapshot.
#include <array>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/simulator.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("fig4_progression");
  const auto scenario = make_scenario_a(10.0, 5.0, false);

  MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
  LocalizerConfig cfg;
  cfg.filter.num_particles = scenario.recommended_particles;
  cfg.filter.fusion_range = scenario.recommended_fusion_range;
  MultiSourceLocalizer loc(scenario.env, scenario.sensors, cfg, 42);
  Rng noise(43);

  std::cout << "Fig. 4 reproduction: particle clustering over time, two 10 uCi sources\n"
            << "at (47,71) and (81,42).\n";

  auto mass_near = [&](const Point2& c, double r) {
    const auto& f = loc.filter();
    double m = 0.0;
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (distance(f.positions()[i], c) <= r) m += f.weights()[i];
    }
    return m;
  };

  auto density_map = [&] {
    // 10x10 character map of particle counts (.:+*#).
    std::array<std::array<int, 10>, 10> counts{};
    const auto& f = loc.filter();
    for (const auto& p : f.positions()) {
      const int cx = std::min(9, static_cast<int>(p.x / 10.0));
      const int cy = std::min(9, static_cast<int>(p.y / 10.0));
      ++counts[cy][cx];
    }
    const char* shades = " .:+*#";
    for (int cy = 9; cy >= 0; --cy) {
      std::cout << "    ";
      for (int cx = 0; cx < 10; ++cx) {
        const int level = std::min(5, counts[cy][cx] / 40);
        std::cout << shades[level];
      }
      std::cout << '\n';
    }
  };

  for (int step = 0; step <= 7; ++step) {
    if (step > 0) loc.process_all(sim.sample_time_step(noise));
    if (step != 0 && step != 1 && step != 3 && step != 5 && step != 7) continue;

    const auto estimates = loc.estimate();
    std::cout << "\n-- time step " << step << " --\n";
    std::cout << "  mass within 10 of source A (47,71): " << mass_near({47, 71}, 10.0) << '\n';
    std::cout << "  mass within 10 of source B (81,42): " << mass_near({81, 42}, 10.0) << '\n';
    std::cout << "  estimates: " << estimates.size();
    for (const auto& e : estimates) {
      std::cout << "  (" << e.pos.x << ", " << e.pos.y << ") support " << e.support;
    }
    std::cout << "\n  particle density map (bottom-left is origin):\n";
    density_map();

    const std::string config = "step" + std::to_string(step);
    json.add("fig4-scenario-A", config, "mass_near_A", mass_near({47, 71}, 10.0));
    json.add("fig4-scenario-A", config, "mass_near_B", mass_near({81, 42}, 10.0));
    json.add("fig4-scenario-A", config, "num_estimates", static_cast<double>(estimates.size()));
  }
  return 0;
}

// Weight-update hot-path throughput (particles/sec), for
// {free-space, obstacles} x {1, 4 threads} x {transmission cache off/on},
// against a faithful re-creation of the seed repo's serial kernel
// (per-particle lgamma, per-obstacle chord_length with no hoisted AABB
// sweep).
//
// The measured kernel is exactly the likelihood stage of
// FusionParticleFilter::process_reading: score every particle of a fusion-
// range subset against one measurement. Selection/resampling costs are
// excluded here (bench_table1_runtime measures the end-to-end iteration).
//
// Writes the stable-schema BENCH_weight_update.json (bench_util JsonWriter)
// plus the raw google-benchmark dump BENCH_weight_update.gbench.json
// (override with --benchmark_out=...), and prints a speedup summary so CI
// has a machine-readable perf trajectory. `--smoke` shortens the measured
// time per benchmark for the benchsmoke ctest entry.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "radloc/common/math.hpp"
#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/geom/intersect.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/radiation/transmission_cache.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/simd/aligned.hpp"
#include "radloc/simd/simd.hpp"

namespace {

using namespace radloc;

constexpr std::size_t kParticles = 15000;
constexpr double kFusionRange = 28.0;

struct Cloud {
  Scenario scenario;
  std::vector<Point2> positions;
  std::vector<double> strengths;
  /// Per sensor: particle indices within the fusion range, and one sampled
  /// reading.
  std::vector<std::vector<std::uint32_t>> subsets;
  std::vector<double> readings;
};

Cloud make_cloud(bool obstacles) {
  Cloud c{make_scenario_a(10.0, 5.0, obstacles), {}, {}, {}, {}};
  Rng rng(97);
  c.positions.resize(kParticles);
  c.strengths.resize(kParticles);
  for (std::size_t i = 0; i < kParticles; ++i) {
    c.positions[i] = uniform_point(rng, c.scenario.env.bounds());
    c.strengths[i] = std::exp(uniform(rng, std::log(4.0), std::log(1000.0)));
  }
  MeasurementSimulator sim(c.scenario.env, c.scenario.sensors, c.scenario.sources);
  for (const Sensor& s : c.scenario.sensors) {
    std::vector<std::uint32_t> subset;
    for (std::size_t i = 0; i < kParticles; ++i) {
      if (distance(c.positions[i], s.pos) <= kFusionRange) {
        subset.push_back(static_cast<std::uint32_t>(i));
      }
    }
    c.subsets.push_back(std::move(subset));
    c.readings.push_back(sim.sample(rng, s.id).cpm);
  }
  return c;
}

// --- Verbatim re-creations of the seed repo's geometry hot path, so the
// --- baseline keeps paying the costs this PR removed (two divisions per
// --- edge test, a heap-allocated crossing buffer per chord call, and no
// --- hoisted AABB sweep).

std::optional<double> seed_intersection_param(const Segment& s1, const Segment& s2) {
  constexpr double kEps = 1e-12;
  const Vec2 d1 = s1.b - s1.a;
  const Vec2 d2 = s2.b - s2.a;
  const double denom = cross(d1, d2);
  if (std::abs(denom) < kEps) return std::nullopt;
  const Vec2 w = s2.a - s1.a;
  const double t = cross(w, d2) / denom;
  const double u = cross(w, d1) / denom;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps) return std::nullopt;
  return std::clamp(t, 0.0, 1.0);
}

double seed_chord_length(const Segment& seg, const Polygon& poly) {
  constexpr double kEps = 1e-12;
  if (!aabb_overlaps_segment(poly.aabb(), seg)) return 0.0;
  std::vector<double> ts;
  ts.reserve(poly.size() + 2);
  ts.push_back(0.0);
  ts.push_back(1.0);
  for (std::size_t i = 0; i < poly.size(); ++i) {
    if (const auto t = seed_intersection_param(seg, poly.edge(i))) ts.push_back(*t);
  }
  std::sort(ts.begin(), ts.end());
  const double seg_len = seg.length();
  double inside_len = 0.0;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    const double t0 = ts[i];
    const double t1 = ts[i + 1];
    if (t1 - t0 < kEps) continue;
    if (poly.contains(seg.at(0.5 * (t0 + t1)))) inside_len += (t1 - t0) * seg_len;
  }
  return inside_len;
}

double seed_path_attenuation(const Segment& seg, const std::vector<Obstacle>& obstacles) {
  double acc = 0.0;
  for (const auto& o : obstacles) {
    const double l = seed_chord_length(seg, o.shape());
    if (l > 0.0) acc += o.mu() * l;
  }
  return acc;
}

/// The seed's serial weight loop: poisson_log_pmf pays lgamma(cpm) per
/// particle.
void BM_WeightUpdateSeed(benchmark::State& state) {
  const bool obstacles = state.range(0) != 0;
  const Cloud c = make_cloud(obstacles);

  std::size_t sensor = 0;
  std::size_t scored = 0;
  std::vector<double> lls(kParticles);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const Sensor& s = c.scenario.sensors[sensor];
    const auto& subset = c.subsets[sensor];
    const double cpm = c.readings[sensor];
    for (std::size_t k = 0; k < subset.size(); ++k) {
      const auto i = subset[k];
      const Source hyp{c.positions[i], c.strengths[i]};
      double rate;
      if (obstacles) {
        const double a = seed_path_attenuation(Segment{s.pos, hyp.pos},
                                               c.scenario.env.obstacles());
        rate = kMicroCurieToCpm * s.response.efficiency * free_space_intensity(s.pos, hyp) *
                   (a > 0.0 ? std::exp(-a) : 1.0) +
               s.response.background_cpm;
      } else {
        rate = expected_cpm_single_free_space(s.pos, hyp, s.response);
      }
      lls[k] = poisson_log_pmf(cpm, rate);
    }
    benchmark::DoNotOptimize(lls.data());
    scored += subset.size();
    sensor = (sensor + 1) % c.scenario.sensors.size();
  }
  // Wall-clock rate (not google-benchmark's CPU-time rate): comparable
  // across thread counts.
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  state.counters["particles_per_sec"] =
      benchmark::Counter(secs > 0.0 ? static_cast<double>(scored) / secs : 0.0);
}

/// This PR's kernel: hoisted PoissonLogPmf, AABB-swept path_attenuation,
/// optional per-sensor transmission cache, chunked over the thread pool.
void BM_WeightUpdate(benchmark::State& state) {
  const bool obstacles = state.range(0) != 0;
  const auto threads = static_cast<std::size_t>(state.range(1));
  const bool cache_on = state.range(2) != 0;
  const Cloud c = make_cloud(obstacles);

  ThreadPool pool(threads);
  TransmissionCache cache(c.scenario.env, 2.0);

  std::size_t sensor = 0;
  std::size_t scored = 0;
  std::vector<double> lls(kParticles);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const Sensor& s = c.scenario.sensors[sensor];
    const auto& subset = c.subsets[sensor];
    const TransmissionCache::Field* field =
        obstacles && cache_on ? cache.prepare(s.pos) : nullptr;
    const PoissonLogPmf log_pmf(c.readings[sensor]);
    pool.parallel_for(subset.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        const auto i = subset[k];
        const Source hyp{c.positions[i], c.strengths[i]};
        double rate;
        if (!obstacles) {
          rate = expected_cpm_single_free_space(s.pos, hyp, s.response);
        } else if (field != nullptr) {
          rate = kMicroCurieToCpm * s.response.efficiency * free_space_intensity(s.pos, hyp) *
                     cache.transmission(*field, hyp.pos) +
                 s.response.background_cpm;
        } else {
          rate = expected_cpm_single(s.pos, hyp, c.scenario.env, s.response);
        }
        lls[k] = log_pmf(rate);
      }
    });
    benchmark::DoNotOptimize(lls.data());
    scored += subset.size();
    sensor = (sensor + 1) % c.scenario.sensors.size();
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  state.counters["particles_per_sec"] =
      benchmark::Counter(secs > 0.0 ? static_cast<double>(scored) / secs : 0.0);
}

/// One batched Poisson log-PMF pass over a fusion-subset-sized rate array —
/// the kernel the simd tiers exist for. Swept per tier (RegisterBenchmark in
/// main) so BENCH_weight_update.json records the scalar-vs-vector trajectory.
void BM_PoissonBatch(benchmark::State& state, simd::Tier tier) {
  const Cloud c = make_cloud(false);
  const simd::Kernels& ker = simd::kernels_for(tier);
  const Sensor& s = c.scenario.sensors[0];
  const PoissonLogPmf log_pmf(c.readings[0]);

  // Realistic rate magnitudes: every particle scored against sensor 0.
  simd::AVector<double> rates(kParticles);
  simd::AVector<double> out(kParticles);
  for (std::size_t i = 0; i < kParticles; ++i) {
    rates[i] = expected_cpm_single_free_space(s.pos, Source{c.positions[i], c.strengths[i]},
                                              s.response);
  }

  std::size_t scored = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    ker.poisson_log_pmf(log_pmf.count(), log_pmf.log_k_factorial(), rates.data(), out.data(),
                        kParticles);
    benchmark::DoNotOptimize(out.data());
    scored += kParticles;
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  state.counters["particles_per_sec"] =
      benchmark::Counter(secs > 0.0 ? static_cast<double>(scored) / secs : 0.0);
}

/// The filter's full batched scoring pipeline per tier: SoA gather, then
/// hypothesis rates (with gathered bilinear transmissions when obstacles are
/// cached), then the batch Poisson — exactly process_reading_impl's batched
/// path, serial, isolating the kernel tier from thread scaling.
void BM_WeightUpdateBatched(benchmark::State& state, bool obstacles, simd::Tier tier) {
  const Cloud c = make_cloud(obstacles);
  const simd::Kernels& ker = simd::kernels_for(tier);
  TransmissionCache cache(c.scenario.env, 2.0);

  simd::AVector<double> gx(kParticles);
  simd::AVector<double> gy(kParticles);
  simd::AVector<double> gs(kParticles);
  simd::AVector<double> gt(kParticles);
  simd::AVector<double> lls(kParticles);

  std::size_t sensor = 0;
  std::size_t scored = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const Sensor& s = c.scenario.sensors[sensor];
    const auto& subset = c.subsets[sensor];
    const std::size_t n = subset.size();
    const PoissonLogPmf log_pmf(c.readings[sensor]);
    for (std::size_t k = 0; k < n; ++k) {
      const auto i = subset[k];
      gx[k] = c.positions[i].x;
      gy[k] = c.positions[i].y;
      gs[k] = c.strengths[i];
    }
    const double* trans = nullptr;
    if (obstacles) {
      const TransmissionCache::Field* field = cache.prepare(s.pos);
      ker.bilinear(cache.grid_view(*field), gx.data(), gy.data(), gt.data(), n);
      trans = gt.data();
    }
    ker.hypothesis_rates(s.pos.x, s.pos.y, kMicroCurieToCpm * s.response.efficiency,
                         s.response.background_cpm, gx.data(), gy.data(), gs.data(), trans,
                         lls.data(), n);
    ker.poisson_log_pmf(log_pmf.count(), log_pmf.log_k_factorial(), lls.data(), lls.data(), n);
    benchmark::DoNotOptimize(lls.data());
    scored += n;
    sensor = (sensor + 1) % c.scenario.sensors.size();
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  state.counters["particles_per_sec"] =
      benchmark::Counter(secs > 0.0 ? static_cast<double>(scored) / secs : 0.0);
}

/// Console reporter that records particles_per_sec per benchmark so the main
/// can print seed-vs-new speedups after the run.
class SpeedupReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      const auto it = run.counters.find("particles_per_sec");
      if (it != run.counters.end()) rates[run.benchmark_name()] = it->second;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::map<std::string, double> rates;
};

void print_speedups(const std::map<std::string, double>& rates) {
  const auto rate = [&](const std::string& name) {
    const auto it = rates.find(name);
    return it != rates.end() ? it->second : 0.0;
  };
  const auto report = [&](const char* label, const std::string& num, const std::string& den) {
    const double a = rate(num);
    const double b = rate(den);
    if (a > 0.0 && b > 0.0) {
      std::printf("SPEEDUP %-44s %.2fx\n", label, a / b);
    }
  };
  std::printf("\n--- weight-update speedups vs seed serial kernel ---\n");
  report("free-space, 1 thread", "BM_WeightUpdate/obstacles:0/threads:1/cache:0",
         "BM_WeightUpdateSeed/obstacles:0");
  report("free-space, 4 threads", "BM_WeightUpdate/obstacles:0/threads:4/cache:0",
         "BM_WeightUpdateSeed/obstacles:0");
  report("obstacles, 1 thread, cache off", "BM_WeightUpdate/obstacles:1/threads:1/cache:0",
         "BM_WeightUpdateSeed/obstacles:1");
  report("obstacles, 4 threads, cache off", "BM_WeightUpdate/obstacles:1/threads:4/cache:0",
         "BM_WeightUpdateSeed/obstacles:1");
  report("obstacles, 1 thread, cache on", "BM_WeightUpdate/obstacles:1/threads:1/cache:1",
         "BM_WeightUpdateSeed/obstacles:1");
  report("obstacles, 4 threads, cache on", "BM_WeightUpdate/obstacles:1/threads:4/cache:1",
         "BM_WeightUpdateSeed/obstacles:1");

  // Tier sweep (rows exist only for tiers the host ran — RADLOC_SIMD pins).
  std::printf("\n--- simd kernel tiers vs scalar tier ---\n");
  for (const char* tier : {"sse2", "avx2"}) {
    const std::string suffix = std::string("simd:") + tier;
    report((std::string("poisson batch, ") + tier + " vs scalar").c_str(),
           "BM_PoissonBatch/" + suffix, "BM_PoissonBatch/simd:scalar");
    report((std::string("batched scoring, free space, ") + tier + " vs scalar").c_str(),
           "BM_WeightUpdateBatched/obstacles:0/" + suffix,
           "BM_WeightUpdateBatched/obstacles:0/simd:scalar");
    report((std::string("batched scoring, cached obstacles, ") + tier + " vs scalar").c_str(),
           "BM_WeightUpdateBatched/obstacles:1/" + suffix,
           "BM_WeightUpdateBatched/obstacles:1/simd:scalar");
  }
  report("batched scoring vs seed serial, free space",
         std::string("BM_WeightUpdateBatched/obstacles:0/simd:") +
             simd::tier_name(simd::detected_tier()),
         "BM_WeightUpdateSeed/obstacles:0");
  report("batched scoring vs seed serial, obstacles",
         std::string("BM_WeightUpdateBatched/obstacles:1/simd:") +
             simd::tier_name(simd::detected_tier()),
         "BM_WeightUpdateSeed/obstacles:1");
}

}  // namespace

BENCHMARK(BM_WeightUpdateSeed)->ArgNames({"obstacles"})->Arg(0)->Arg(1);

BENCHMARK(BM_WeightUpdate)
    ->ArgNames({"obstacles", "threads", "cache"})
    ->Args({0, 1, 0})
    ->Args({0, 4, 0})
    ->Args({1, 1, 0})
    ->Args({1, 4, 0})
    ->Args({1, 1, 1})
    ->Args({1, 4, 1});

int main(int argc, char** argv) {
  // --smoke is ours, everything else goes to google-benchmark.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      radloc::bench::detail::smoke_flag() = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_weight_update.gbench.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::string min_time_flag = "--benchmark_min_time=0.01";
  bool has_out = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (std::strncmp(args[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  if (radloc::bench::smoke()) args.push_back(min_time_flag.data());
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;

  // The simd tier sweep is a runtime property of the host (clamped to what
  // it supports; RADLOC_SIMD pins a single tier), so these are registered
  // dynamically; the tier rides in the name and lands in the JSON `config`.
  for (const auto tier : radloc::simd::sweep_tiers()) {
    const std::string tn = radloc::simd::tier_name(tier);
    benchmark::RegisterBenchmark(("BM_PoissonBatch/simd:" + tn).c_str(),
                                 [tier](benchmark::State& s) { BM_PoissonBatch(s, tier); });
    benchmark::RegisterBenchmark(
        ("BM_WeightUpdateBatched/obstacles:0/simd:" + tn).c_str(),
        [tier](benchmark::State& s) { BM_WeightUpdateBatched(s, false, tier); });
    benchmark::RegisterBenchmark(
        ("BM_WeightUpdateBatched/obstacles:1/simd:" + tn).c_str(),
        [tier](benchmark::State& s) { BM_WeightUpdateBatched(s, true, tier); });
  }

  SpeedupReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  print_speedups(reporter.rates);
  benchmark::Shutdown();

  radloc::bench::JsonWriter json("weight_update");
  for (const auto& [name, rate] : reporter.rates) {
    std::size_t threads = 1;
    if (const auto pos = name.find("threads:"); pos != std::string::npos) {
      threads = static_cast<std::size_t>(std::strtoul(name.c_str() + pos + 8, nullptr, 10));
    }
    json.add("weight-update-scenario-A", name, "particles_per_sec", rate, threads);
  }
  json.write();
  return 0;
}

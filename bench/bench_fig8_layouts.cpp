// Fig. 8 — the three scenario layouts (sensors, sources, obstacles).
//
// Prints the exact coordinates used by this reproduction plus an ASCII
// rendering of each layout. Scenario B/C source coordinates were published
// only as a plot; DESIGN.md documents how these were chosen.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "radloc/eval/scenarios.hpp"

namespace {

using namespace radloc;

void render(const Scenario& s) {
  constexpr int kW = 52;
  constexpr int kH = 26;
  const AreaBounds& b = s.env.bounds();
  std::vector<std::string> canvas(kH, std::string(kW, ' '));

  auto plot = [&](const Point2& p, char c) {
    const int x = std::min(kW - 1, static_cast<int>((p.x - b.min.x) / b.width() * kW));
    const int y = std::min(kH - 1, static_cast<int>((p.y - b.min.y) / b.height() * kH));
    canvas[kH - 1 - y][x] = c;
  };

  // Obstacles first (interior fill), then sensors, then sources on top.
  for (int cy = 0; cy < kH; ++cy) {
    for (int cx = 0; cx < kW; ++cx) {
      const Point2 p{b.min.x + (cx + 0.5) / kW * b.width(),
                     b.min.y + (kH - 1 - cy + 0.5) / kH * b.height()};
      for (const auto& o : s.env.obstacles()) {
        if (o.shape().contains(p)) canvas[cy][cx] = '#';
      }
    }
  }
  for (const auto& sensor : s.sensors) plot(sensor.pos, '+');
  for (const auto& src : s.sources) plot(src.pos, 'S');

  for (const auto& row : canvas) std::cout << "  |" << row << "|\n";
}

void describe(const Scenario& s) {
  std::cout << "\n== Scenario " << s.name << " ==\n";
  std::cout << "area: " << s.env.bounds().width() << " x " << s.env.bounds().height()
            << ", sensors: " << s.sensors.size() << ", sources: " << s.sources.size()
            << ", obstacles: " << s.env.obstacles().size()
            << (s.out_of_order_delivery ? ", out-of-order delivery" : "") << "\n";
  std::cout << "sources (x, y, strength uCi):\n";
  for (std::size_t j = 0; j < s.sources.size(); ++j) {
    std::cout << "  S" << j + 1 << ": (" << s.sources[j].pos.x << ", " << s.sources[j].pos.y
              << ", " << s.sources[j].strength << ")\n";
  }
  for (std::size_t j = 0; j < s.env.obstacles().size(); ++j) {
    const auto& box = s.env.obstacles()[j].shape().aabb();
    std::cout << "  obstacle " << j + 1 << ": bbox (" << box.min.x << "," << box.min.y
              << ")-(" << box.max.x << "," << box.max.y
              << "), mu = " << s.env.obstacles()[j].mu() << " per unit\n";
  }
  std::cout << "layout ('S' source, '+' sensor, '#' obstacle):\n";
  render(s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("fig8_layouts");
  std::cout << "Fig. 8 reproduction: scenario layouts.\n";
  for (const Scenario& s : {make_scenario_a(10.0, 5.0, /*with_obstacle=*/true),
                            make_scenario_b(), make_scenario_c()}) {
    describe(s);
    json.add("scenario-" + s.name, "layout", "sensors", static_cast<double>(s.sensors.size()));
    json.add("scenario-" + s.name, "layout", "sources", static_cast<double>(s.sources.size()));
    json.add("scenario-" + s.name, "layout", "obstacles",
             static_cast<double>(s.env.obstacles().size()));
  }
  return 0;
}

// Micro-benchmarks of the hot primitives (google-benchmark): spatial grid
// queries, chord-length ray casts, Poisson sampling, the Poisson log-PMF,
// one filter iteration, and one mean-shift ascent. These are the kernels
// Table I's end-to-end time decomposes into; regressions here explain
// regressions there.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "radloc/common/math.hpp"
#include "radloc/filter/particle_filter.hpp"
#include "radloc/geom/grid_index.hpp"
#include "radloc/geom/intersect.hpp"
#include "radloc/geom/shapes.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/sensornet/placement.hpp"

namespace {

using namespace radloc;

void BM_GridIndexRebuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const AreaBounds area = make_area(100, 100);
  std::vector<Point2> pts;
  for (std::size_t i = 0; i < n; ++i) pts.push_back(uniform_point(rng, area));
  GridIndex index(area, 14.0);
  for (auto _ : state) {
    index.rebuild(pts);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_GridIndexRebuild)->Arg(2000)->Arg(15000);

void BM_GridIndexQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const AreaBounds area = make_area(100, 100);
  std::vector<Point2> pts;
  for (std::size_t i = 0; i < n; ++i) pts.push_back(uniform_point(rng, area));
  GridIndex index(area, 14.0);
  index.rebuild(pts);
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    index.query_radius(pts, uniform_point(rng, area), 28.0, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridIndexQuery)->Arg(2000)->Arg(15000);

void BM_ChordLength(benchmark::State& state) {
  const Polygon u = make_u_shape(20, 20, 80, 70, 8.0);
  Rng rng(3);
  const AreaBounds area = make_area(100, 100);
  for (auto _ : state) {
    const Segment seg{uniform_point(rng, area), uniform_point(rng, area)};
    benchmark::DoNotOptimize(chord_length(seg, u));
  }
}
BENCHMARK(BM_ChordLength);

void BM_PoissonSample(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poisson(rng, lambda));
  }
}
BENCHMARK(BM_PoissonSample)->Arg(5)->Arg(100)->Arg(10000);

void BM_PoissonLogPmf(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poisson_log_pmf(uniform(rng, 0, 100), uniform(rng, 1, 100)));
  }
}
BENCHMARK(BM_PoissonLogPmf);

void BM_FilterIteration(benchmark::State& state) {
  const auto particles = static_cast<std::size_t>(state.range(0));
  Environment env(make_area(100, 100));
  auto sensors = place_grid(env.bounds(), 6, 6);
  set_background(sensors, 5.0);
  FilterConfig cfg;
  cfg.num_particles = particles;
  FusionParticleFilter filter(env, sensors, cfg, Rng(6));
  Rng rng(7);
  for (auto _ : state) {
    const auto sensor = static_cast<SensorId>(uniform_index(rng, sensors.size()));
    benchmark::DoNotOptimize(filter.process({sensor, std::floor(uniform(rng, 0, 40))}));
  }
}
BENCHMARK(BM_FilterIteration)->Arg(2000)->Arg(15000)->Unit(benchmark::kMicrosecond);

/// Console reporter that records per-iteration real time so the main can
/// emit the stable-schema BENCH_micro.json after the run.
class TimeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.iterations > 0) {
        seconds[run.benchmark_name()] =
            run.real_accumulated_time / static_cast<double>(run.iterations);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::map<std::string, double> seconds;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      radloc::bench::detail::smoke_flag() = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time_flag = "--benchmark_min_time=0.01";
  if (radloc::bench::smoke()) args.push_back(min_time_flag.data());
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  TimeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  radloc::bench::JsonWriter json("micro");
  for (const auto& [name, secs] : reporter.seconds) {
    json.add("kernels", name, "seconds_per_op", secs);
  }
  json.write();
  return 0;
}

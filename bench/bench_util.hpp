// Shared helpers for the figure/table reproduction binaries.
//
// Every bench runs argument-free. Trial counts default to values sized for
// a small CI machine; set RADLOC_TRIALS (and RADLOC_WORLDS for the
// robustness sweep) to grow them toward the paper's averaging (10 trials).
#pragma once

#include <cstdlib>
#include <string>

namespace radloc::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

inline std::size_t trials(std::size_t fallback = 5) { return env_size("RADLOC_TRIALS", fallback); }

}  // namespace radloc::bench

// Shared helpers for the figure/table reproduction binaries.
//
// Every bench runs argument-free by default. Two flags are recognized by
// bench::init (unknown arguments are rejected so typos fail loudly):
//
//   --smoke       reduced trials/steps/worlds — a seconds-long run that
//                 exercises the full code path (the `benchsmoke` ctest
//                 label runs every bench this way)
//   --threads N   trial-level worker threads where the bench supports them
//
// Environment equivalents: RADLOC_SMOKE=1, RADLOC_THREADS=N. Trial counts
// default to values sized for a small CI machine; set RADLOC_TRIALS (and
// RADLOC_WORLDS for the robustness sweep) to grow them toward the paper's
// averaging (10 trials).
//
// Results: every bench that prints results also records its headline
// numbers through JsonWriter, which emits BENCH_<name>.json in the working
// directory with one stable schema across benches:
//
//   { "bench": "<name>", "host_hw_threads": H, "host_simd": "<tier>",
//     "smoke": false,
//     "results": [ { "scenario": "...", "config": "...", "metric": "...",
//                    "threads": T, "value": V }, ... ] }
//
// so the perf/accuracy trajectory can be diffed across commits.
// `host_simd` is the best kernel tier the host supports (simd/simd.hpp) —
// benches that sweep tiers additionally tag each row's `config` string with
// `simd:<tier>`, so numbers from different machines compare honestly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "radloc/simd/simd.hpp"

namespace radloc::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

namespace detail {
inline bool& smoke_flag() {
  static bool flag = std::getenv("RADLOC_SMOKE") != nullptr;
  return flag;
}
inline std::size_t& threads_value() {
  static std::size_t value = env_size("RADLOC_THREADS", 1);
  return value;
}
}  // namespace detail

/// Parses --smoke / --threads N. Call first in main(); exits with a usage
/// message on anything unrecognized.
inline void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      detail::smoke_flag() = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed > 0) detail::threads_value() = static_cast<std::size_t>(parsed);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--threads N]\n", argv[0]);
      std::exit(2);
    }
  }
}

[[nodiscard]] inline bool smoke() { return detail::smoke_flag(); }

/// Trial-level worker threads (--threads / RADLOC_THREADS; default 1).
inline std::size_t threads(std::size_t fallback = 1) {
  return detail::threads_value() > 1 ? detail::threads_value() : fallback;
}

inline std::size_t trials(std::size_t fallback = 5) {
  if (smoke()) return 1;
  return env_size("RADLOC_TRIALS", fallback);
}

/// Time steps: the bench's own value, cut short in smoke mode.
inline std::size_t steps(std::size_t fallback) {
  if (smoke()) return fallback < 4 ? fallback : 4;
  return fallback;
}

/// Random worlds for sweep benches (RADLOC_WORLDS; reduced in smoke mode).
inline std::size_t worlds(std::size_t fallback) {
  if (smoke()) return 2;
  return env_size("RADLOC_WORLDS", fallback);
}

/// Collects {scenario, config, metric, threads, value} rows and writes
/// BENCH_<name>.json (working directory) when write() is called — or at
/// destruction as a backstop. NaN/inf serialize as null (JSON has no
/// non-finite literals).
class JsonWriter {
 public:
  explicit JsonWriter(std::string name) : name_(std::move(name)) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;
  ~JsonWriter() {
    if (!written_) write();
  }

  void add(const std::string& scenario, const std::string& config, const std::string& metric,
           double value, std::size_t threads = 1) {
    rows_.push_back(Row{scenario, config, metric, threads, value});
  }

  void write() {
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"host_hw_threads\": %u,\n", name_.c_str(), hw);
    std::fprintf(f, "  \"host_simd\": \"%s\",\n  \"smoke\": %s,\n",
                 simd::tier_name(simd::detected_tier()), smoke() ? "true" : "false");
    std::fprintf(f, "  \"results\": [");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "%s\n    {\"scenario\": \"%s\", \"config\": \"%s\", \"metric\": \"%s\", ",
                   i == 0 ? "" : ",", escape(r.scenario).c_str(), escape(r.config).c_str(),
                   escape(r.metric).c_str());
      std::fprintf(f, "\"threads\": %zu, \"value\": %s}", r.threads, number(r.value).c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu results)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string scenario, config, metric;
    std::size_t threads;
    double value;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  static std::string number(double v) {
    if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "null";
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
  }

  std::string name_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace radloc::bench

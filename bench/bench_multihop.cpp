// Extension X3 — localization under a realistic multi-hop network.
//
// The paper motivates the one-unordered-measurement-per-iteration design
// with multi-hop wireless realities: latency grows with hop count, relays
// die, links lose packets. This bench quantifies the claim: the same
// two-source scene localized through progressively worse network stacks,
// including relay failures that orphan whole subtrees mid-run.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "radloc/common/math.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/simulator.hpp"
#include "radloc/sensornet/topology.hpp"

namespace {

using namespace radloc;

struct Row {
  double err;
  double fp;
  double fn;
  double delivered_frac;
};

Row run(const Scenario& scenario, NetworkTopology* topo, double per_hop_loss,
        std::size_t slots, bool kill_relays, std::size_t trials) {
  const std::size_t steps = bench::steps(25);
  RunningStats err;
  RunningStats fp;
  RunningStats fn;
  std::size_t delivered = 0;
  std::size_t sent = 0;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
    MultiSourceLocalizer loc(scenario.env, scenario.sensors, LocalizerConfig{}, 100 + trial);
    NetworkTopology local_topo = *topo;  // fresh routes per trial
    MultiHopDelivery delivery(local_topo, per_hop_loss, slots);
    Rng noise(200 + trial);
    Rng net(300 + trial);

    for (std::size_t step = 0; step < steps; ++step) {
      if (kill_relays && step == steps / 2) {
        // Two central relays die mid-run.
        local_topo.kill(14);
        local_topo.kill(21);
      }
      auto batch = sim.sample_time_step(noise);
      sent += batch.size();
      auto arrived = delivery.deliver(net, std::move(batch));
      delivered += arrived.size();
      loc.process_all(arrived);
    }
    const auto match = match_estimates(scenario.sources, loc.estimate());
    err.add(match.mean_error());
    fp.add(static_cast<double>(match.false_positives));
    fn.add(static_cast<double>(match.false_negatives));
  }
  return Row{err.mean(), fp.mean(), fn.mean(),
             static_cast<double>(delivered) / static_cast<double>(sent)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("multihop");
  const std::size_t trials = bench::trials(3);

  auto scenario = make_scenario_a(20.0, 5.0, false);
  // Base station at the south-west corner sensor; radio range links grid
  // neighbors (pitch 20) and diagonals.
  NetworkTopology topo(scenario.sensors, 30.0, /*base=*/0);

  std::cout << "Multi-hop network robustness: two 20 uCi sources, 6x6 grid routed to a\n"
            << "corner base station (max depth " << 10 << " hops), " << trials
            << " trials.\n";
  std::cout << "topology: " << topo.connected_count() << "/" << scenario.sensors.size()
            << " sensors routed\n";

  std::vector<std::vector<double>> rows;
  struct Config {
    const char* label;
    double loss;
    std::size_t slots;
    bool kill;
  };
  const Config configs[] = {
      {"instant network (reference)", 0.0, 64, false},
      {"1 hop/step latency", 0.0, 1, false},
      {"4 hops/step, 5% hop loss", 0.05, 4, false},
      {"4 hops/step, 15% hop loss", 0.15, 4, false},
      {"relay failure at step 10", 0.05, 4, true},
  };
  int idx = 0;
  for (const auto& c : configs) {
    const Row r = run(scenario, &topo, c.loss, c.slots, c.kill, trials);
    std::cout << "  [" << idx << "] " << c.label << "\n";
    rows.push_back({static_cast<double>(idx++), r.err, r.fp, r.fn, r.delivered_frac});
    json.add("multihop-scenario-A", c.label, "mean_error", r.err);
    json.add("multihop-scenario-A", c.label, "fp", r.fp);
    json.add("multihop-scenario-A", c.label, "fn", r.fn);
    json.add("multihop-scenario-A", c.label, "delivered_frac", r.delivered_frac);
  }

  const std::vector<std::string> header{"config", "mean_err", "FP", "FN", "delivered"};
  print_banner(std::cout, "final-step metrics by network condition");
  print_table(std::cout, header, rows);
  std::cout << "\nExpected shape: graceful degradation — accuracy holds while the\n"
            << "delivered fraction falls; relay failures cost coverage, not stability.\n";
  return 0;
}

// Fig. 7 — large-network results: Scenario B (196-sensor grid) and
// Scenario C (195 Poisson-placed sensors, out-of-order delivery), each with
// and without the three obstacles; 9 sources of 10-100 uCi, NP = 15000.
//
// Paper shape: localization accuracy similar to the small network; FP/FN
// large in the first steps (many sources), then dropping to ~0.5; Scenario
// C slightly worse than B; obstacles REDUCE late-window FP/FN.
#include <iostream>

#include "bench_util.hpp"
#include "radloc/eval/experiment.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("fig7_large_network");
  const std::size_t trials = bench::trials(3);

  std::cout << "Fig. 7 reproduction: scenarios B and C, with and without obstacles,\n"
            << "9 sources (10-100 uCi), NP=15000, " << trials << " trials.\n";

  struct Config {
    const char* label;
    Scenario scenario;
  };
  const Config configs[] = {
      {"Scenario B, no obstacles", make_scenario_b(5.0, false)},
      {"Scenario B, with obstacles", make_scenario_b(5.0, true)},
      {"Scenario C, no obstacles", make_scenario_c(5.0, false)},
      {"Scenario C, with obstacles", make_scenario_c(5.0, true)},
  };

  std::vector<std::vector<double>> summary;
  int idx = 0;
  for (const auto& [label, scenario] : configs) {
    ExperimentOptions opts;
    opts.trials = trials;
    opts.time_steps = bench::steps(30);
    opts.seed = 7000 + idx;
    opts.num_threads = bench::threads();
    const auto result = run_experiment(scenario, opts);

    print_banner(std::cout, std::string("Fig. 7: ") + label +
                                " (error for sources 1-4 as in the paper; FP/FN all 9)");
    // The paper plots sources 1-4 and reports 5-9 as similar.
    ExperimentResult firstfour = result;
    for (auto& row : firstfour.error) row.resize(4);
    print_time_series(std::cout, firstfour, default_source_names(4));

    const std::size_t from = opts.time_steps / 3;
    const std::size_t to = opts.time_steps;
    summary.push_back({static_cast<double>(idx), result.avg_error_all(from, to),
                       result.avg_false_positives(0, 5), result.avg_false_positives(from, to),
                       result.avg_false_negatives(0, 5),
                       result.avg_false_negatives(from, to)});
    json.add("fig7", label, "late_error", result.avg_error_all(from, to));
    json.add("fig7", label, "late_fp", result.avg_false_positives(from, to));
    json.add("fig7", label, "late_fn", result.avg_false_negatives(from, to));
    ++idx;
  }

  print_banner(std::cout,
               "Fig. 7 summary (rows: 0=B/no-obs 1=B/obs 2=C/no-obs 3=C/obs)");
  const std::vector<std::string> header{"config", "err_late",  "FP_early",
                                        "FP_late", "FN_early", "FN_late"};
  print_table(std::cout, header, summary);
  std::cout << "\nExpected shape: FP/FN spike early then drop; obstacles reduce late\n"
            << "FP/FN; Scenario C (random placement + out-of-order) slightly worse.\n";
  return 0;
}

// Extension X9 — regional (tiled) distributed localization.
//
// The fusion range makes updates local, so the area can be partitioned
// into tiles running independent localizers in parallel, merged by core
// ownership. This bench runs Scenario B under 1x1 / 2x2 / 4x4 tilings and
// reports accuracy and wall time per time step — the distributed-systems
// payoff of the paper's locality property.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/common/math.hpp"
#include "radloc/distributed/regional.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"
#include "radloc/sensornet/simulator.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("distributed");
  const std::size_t trials = bench::trials(3);
  const std::size_t num_steps = bench::steps(15);

  // Scenario B is the heavyweight layout (196 sensors); smoke mode shrinks
  // the global particle budget so the ctest smoke entry stays fast.
  const std::size_t particles = bench::smoke() ? 2000 : 15000;

  auto scenario = make_scenario_b(5.0, false);
  std::cout << "Regional distributed localization on Scenario B (196 sensors, 9\n"
            << "sources), global particle budget " << particles << ", " << trials
            << " trials.\n";

  std::vector<std::vector<double>> rows;
  for (const std::size_t tiles : {1u, 2u, 4u}) {
    RunningStats err, fn, fp, ms_per_step;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
      RegionalConfig cfg;
      cfg.tiles_x = tiles;
      cfg.tiles_y = tiles;
      cfg.localizer.filter.num_particles = particles;
      cfg.num_threads = tiles * tiles;  // one worker per tile
      RegionalLocalizerGrid grid(scenario.env, scenario.sensors, cfg, 800 + trial);
      Rng noise(810 + trial);

      double seconds = 0.0;
      for (std::size_t t = 0; t < num_steps; ++t) {
        const auto batch = sim.sample_time_step(noise);
        const auto t0 = std::chrono::steady_clock::now();
        grid.process_time_step(batch);
        seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto estimates = grid.estimate();
      seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

      const auto match = match_estimates(scenario.sources, estimates);
      err.add(match.mean_error());
      fn.add(static_cast<double>(match.false_negatives));
      fp.add(static_cast<double>(match.false_positives));
      ms_per_step.add(1e3 * seconds / static_cast<double>(num_steps));
    }
    rows.push_back({static_cast<double>(tiles * tiles), err.mean(), fn.mean(), fp.mean(),
                    ms_per_step.mean()});
    const std::string config = std::to_string(tiles) + "x" + std::to_string(tiles);
    json.add("scenario-B", config, "mean_error", err.mean());
    json.add("scenario-B", config, "fp", fp.mean());
    json.add("scenario-B", config, "ms_per_step", ms_per_step.mean());
  }

  print_banner(std::cout, "tiling sweep: accuracy parity + per-step wall time");
  const std::vector<std::string> header{"tiles", "err", "FN", "FP", "ms_per_step"};
  print_table(std::cout, header, rows);
  std::cout << "\nExpected shape: localization error holds across tilings (locality!)\n"
            << "and per-step time falls ~3x from 1 to 16 tiles. The cost of\n"
            << "distribution is a few extra false positives: each tile validates\n"
            << "modes against only its own sensors, so seam ghosts survive that a\n"
            << "global view would refute.\n";
  return 0;
}

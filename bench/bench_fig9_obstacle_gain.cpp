// Fig. 9 — normalized localization error: err(without obstacles) /
// err(with obstacles). Values > 1 mean the obstacle IMPROVED accuracy.
//
// (a) Scenario A per time step (paper: obstacle helps source 1 by ~24.5%,
//     hurts source 2 by ~2.4%);
// (b) Scenario B per source, averaged over steps 5-29 (paper: S2,S3,S6,S7,
//     S9 benefit, S1,S4,S8 neutral, S5 hurt);
// (c) the same per-source ratios for Scenario C.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "radloc/eval/experiment.hpp"
#include "radloc/eval/report.hpp"
#include "radloc/eval/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace radloc;
  bench::init(argc, argv);
  bench::JsonWriter json("fig9_obstacle_gain");
  const std::size_t trials = bench::trials();
  const std::size_t steps = bench::steps(30);
  const std::size_t from = steps > 5 ? 5 : steps / 2;

  std::cout << "Fig. 9 reproduction: normalized loc. error (no-obstacle / obstacle).\n"
            << "Values > 1 mean obstacles improve accuracy. " << trials << " trials.\n";

  // --- (a) Scenario A per time step --------------------------------------
  {
    ExperimentOptions opts;
    opts.trials = trials;
    opts.time_steps = steps;
    opts.seed = 9000;
    opts.num_threads = bench::threads();
    const auto open = run_experiment(make_scenario_a(10.0, 5.0, false), opts);
    const auto walled = run_experiment(make_scenario_a(10.0, 5.0, true), opts);

    print_banner(std::cout, "Fig. 9(a): Scenario A normalized error per time step");
    std::vector<std::vector<double>> rows;
    for (std::size_t t = 0; t < open.error.size(); ++t) {
      rows.push_back({static_cast<double>(t), open.error[t][0] / walled.error[t][0],
                      open.error[t][1] / walled.error[t][1]});
    }
    const std::vector<std::string> header{"step", "Source1", "Source2"};
    print_table(std::cout, header, rows);
    for (std::size_t j = 0; j < 2; ++j) {
      const double gain = open.avg_error(j, from, steps) / walled.avg_error(j, from, steps);
      std::cout << "source " << j + 1 << " avg normalized error (steps " << from << "-"
                << steps - 1 << "): " << gain
                << (gain > 1.0 ? "  (obstacle helps)" : "  (obstacle hurts)") << "\n";
      json.add("fig9a-scenario-A", "source" + std::to_string(j + 1), "normalized_error", gain);
    }
  }

  // --- (b)+(c) Scenarios B and C per source ------------------------------
  auto per_source = [&](const Scenario& open_s, const Scenario& walled_s,
                        std::uint64_t seed) {
    ExperimentOptions opts;
    opts.trials = trials;
    opts.time_steps = steps;
    opts.seed = seed;
    opts.num_threads = bench::threads();
    const auto open = run_experiment(open_s, opts);
    const auto walled = run_experiment(walled_s, opts);
    std::vector<double> ratios;
    for (std::size_t j = 0; j < open_s.sources.size(); ++j) {
      ratios.push_back(open.avg_error(j, from, steps) / walled.avg_error(j, from, steps));
    }
    return ratios;
  };

  const auto b = per_source(make_scenario_b(5.0, false), make_scenario_b(5.0, true), 9100);
  const auto c = per_source(make_scenario_c(5.0, false), make_scenario_c(5.0, true), 9200);

  print_banner(std::cout, "Fig. 9(b,c): Scenario B & C avg normalized error per source "
                          "(steps 5-29)");
  std::vector<std::vector<double>> rows;
  for (std::size_t j = 0; j < b.size(); ++j) {
    rows.push_back({static_cast<double>(j + 1), b[j], c[j]});
    json.add("fig9b-scenario-B", "source" + std::to_string(j + 1), "normalized_error", b[j]);
    json.add("fig9c-scenario-C", "source" + std::to_string(j + 1), "normalized_error", c[j]);
  }
  const std::vector<std::string> header{"source", "ScenarioB", "ScenarioC"};
  print_table(std::cout, header, rows);
  std::cout << "\nPaper shape: sources with an obstacle nearby (S2,S3,S6,S7,S9) tend to\n"
            << "ratios > 1; open-space sources (S1,S4) stay near 1; S5 (walled in) can\n"
            << "drop below 1.\n";
  return 0;
}

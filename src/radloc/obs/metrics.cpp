#include "radloc/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace radloc::obs {

namespace {

/// Lock-free add for pre-C++20-fetch_add portability on atomic<double>.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

/// Canonical lookup key: name and key-sorted labels joined with control
/// separators no real label should contain.
std::string canonical_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

std::size_t Counter::shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

Histogram::Histogram(const HistogramSpec& spec) : spec_(spec) {
  if (!(spec_.first_bound > 0.0) || !std::isfinite(spec_.first_bound)) {
    throw std::invalid_argument("histogram first_bound must be finite and positive");
  }
  if (!(spec_.growth > 1.0) || !std::isfinite(spec_.growth)) {
    throw std::invalid_argument("histogram growth must be finite and > 1");
  }
  if (spec_.buckets < 3) {
    throw std::invalid_argument("histogram needs at least 3 buckets");
  }
  num_buckets_ = spec_.buckets;
  bounds_.resize(num_buckets_ - 1);
  double bound = spec_.first_bound;
  for (std::size_t i = 0; i + 1 < num_buckets_; ++i) {
    bounds_[i] = bound;
    bound *= spec_.growth;
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_buckets_);
  for (std::size_t i = 0; i < num_buckets_; ++i) counts_[i].store(0, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(double v) const {
  // NaN and negatives land in the underflow bucket: a latency can only be
  // malformed, never meaningfully negative, and a histogram must not throw
  // on the hot path.
  if (!(v >= bounds_.front())) return 0;
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double v) {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) atomic_add(sum_, v);
}

double Histogram::upper_bound(std::size_t i) const {
  if (i + 1 >= num_buckets_) return std::numeric_limits<double>::infinity();
  return bounds_[i];
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank, matching the seed service layer's exact-window percentile:
  // rank = floor(q * (n - 1)), 0-based over the sorted observations.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t cum = 0;
  std::size_t bucket = num_buckets_ - 1;
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    cum += counts_[i].load(std::memory_order_relaxed);
    if (cum > rank) {
      bucket = i;
      break;
    }
  }
  // Representative value: the geometric midpoint of the bucket (arithmetic
  // midpoint for the underflow; lower edge for the unbounded overflow).
  if (bucket == 0) return 0.5 * bounds_.front();
  if (bucket + 1 >= num_buckets_) return bounds_.back();
  return std::sqrt(bounds_[bucket - 1] * bounds_[bucket]);
}

const char* to_string(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kCallbackGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "unknown";
}

double MetricsRegistry::Instrument::scalar() const {
  switch (kind) {
    case InstrumentKind::kCounter: return static_cast<double>(counter->value());
    case InstrumentKind::kGauge: return gauge->value();
    case InstrumentKind::kCallbackGauge: return callback();
    case InstrumentKind::kHistogram: return static_cast<double>(histogram->count());
  }
  return 0.0;
}

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(const std::string& name,
                                                             Labels labels, InstrumentKind kind,
                                                             const HistogramSpec* spec) {
  std::sort(labels.begin(), labels.end());
  const std::string key = canonical_key(name, labels);
  const std::lock_guard lock(mu_);
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const std::pair<std::string, std::size_t>& e, const std::string& k) {
        return e.first < k;
      });
  if (it != index_.end() && it->first == key) {
    Instrument& found = *instruments_[it->second];
    if (found.kind != kind) {
      throw std::invalid_argument("metric '" + name + "' re-registered as a different kind");
    }
    return found;
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = name;
  inst->labels = std::move(labels);
  inst->kind = kind;
  switch (kind) {
    case InstrumentKind::kCounter: inst->counter = std::make_unique<Counter>(); break;
    case InstrumentKind::kGauge: inst->gauge = std::make_unique<Gauge>(); break;
    case InstrumentKind::kCallbackGauge: break;  // caller installs the fn
    case InstrumentKind::kHistogram:
      inst->histogram = std::make_unique<Histogram>(spec != nullptr ? *spec : HistogramSpec{});
      break;
  }
  instruments_.push_back(std::move(inst));
  index_.insert(it, {key, instruments_.size() - 1});
  return *instruments_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return *find_or_create(name, std::move(labels), InstrumentKind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return *find_or_create(name, std::move(labels), InstrumentKind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      const HistogramSpec& spec) {
  return *find_or_create(name, std::move(labels), InstrumentKind::kHistogram, &spec).histogram;
}

void MetricsRegistry::callback_gauge(const std::string& name, Labels labels,
                                     std::function<double()> fn) {
  find_or_create(name, std::move(labels), InstrumentKind::kCallbackGauge, nullptr).callback =
      std::move(fn);
}

void MetricsRegistry::visit(const std::function<void(const Instrument&)>& fn) const {
  const std::lock_guard lock(mu_);
  for (const auto& inst : instruments_) fn(*inst);
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard lock(mu_);
  return instruments_.size();
}

}  // namespace radloc::obs

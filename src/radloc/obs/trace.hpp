// Pipeline stage tracing — scoped spans around the per-reading stages of
// the fusion filter pipeline (DESIGN.md §5.11):
//
//   validate -> fusion-disk query -> weight update -> resample
//                                          -> mean-shift -> budget adapt
//
// plus a per-drain envelope span at the service layer. Spans are sampled
// (one shared relaxed tick counter, every Nth span records) and land in a
// preallocated ring-buffer TraceSink; the exporter (obs/export.hpp) drains
// the ring to JSONL.
//
// Disabled-path guarantees (pinned by the golden-fingerprint and
// zero-allocation tests):
//   * runtime-disabled — a null StageTracer — costs one pointer compare per
//     span site: no clock read, no RNG, no FP arithmetic, no allocation, so
//     filter results stay bit-identical to an uninstrumented build;
//   * compile-time RADLOC_OBS_OFF replaces ScopedSpan with an empty shell,
//     removing even that compare (the sink/exporter types remain so cold
//     tooling still links).
//
// A StageTracer is single-threaded by contract: the service layer binds one
// per session and only touches it under the session's drain serialization.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace radloc::obs {

enum class Stage : std::uint8_t {
  kValidate = 0,
  kFusionQuery,   ///< fusion-disk selection + predict + hypothesis rates
  kWeightUpdate,  ///< Poisson scoring + mass-preserving writeback (the
                  ///< resample span NESTS inside this one when it fires)
  kResample,
  kMeanShift,
  kBudgetAdapt,
  kDrain,         ///< service-layer envelope around one session drain
};

inline constexpr std::size_t kStageCount = 7;

[[nodiscard]] const char* to_string(Stage stage);

struct TraceEvent {
  std::uint64_t session = 0;  ///< tracer label (session id; 0 = unbound)
  std::uint64_t seq = 0;      ///< per-tracer recorded-span ordinal
  Stage stage = Stage::kValidate;
  double start_us = 0.0;      ///< microseconds since the sink's epoch
  double duration_us = 0.0;
};

/// Bounded ring of sampled spans. record() copies into a preallocated slot
/// under a mutex (spans are sampled, so the lock is off the common path);
/// once full, new events overwrite the oldest and `dropped` counts them.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;
  /// Default sampling: every 16th span. The committed telemetry-overhead
  /// baseline (BENCH_telemetry_overhead.json) is measured at this rate.
  static constexpr std::uint64_t kDefaultSampleInterval = 16;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity,
                     std::uint64_t sample_interval = kDefaultSampleInterval);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// One relaxed fetch_add; true for every sample_interval-th call across
  /// all threads. Interval 0 disables sampling entirely.
  [[nodiscard]] bool should_sample() {
    if (interval_ == 0) return false;
    return tick_.fetch_add(1, std::memory_order_relaxed) % interval_ == 0;
  }

  void record(const TraceEvent& e);

  /// Moves the buffered events out, oldest first, and clears the ring.
  [[nodiscard]] std::vector<TraceEvent> drain();

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t sample_interval() const { return interval_; }

  /// Microseconds since the sink's construction epoch (steady clock).
  [[nodiscard]] double now_us() const;

 private:
  std::uint64_t interval_;
  std::atomic<std::uint64_t> tick_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  ///< preallocated to capacity
  std::size_t head_ = 0;          ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Binds a sink to one pipeline owner (a session). Holds the label stamped
/// on every event and the per-tracer sequence counter. NOT thread-safe —
/// one tracer belongs to one serialized pipeline (the session drain lock).
class StageTracer {
 public:
  StageTracer() = default;
  StageTracer(TraceSink* sink, std::uint64_t label) : sink_(sink), label_(label) {}

  [[nodiscard]] TraceSink* sink() const { return sink_; }
  [[nodiscard]] std::uint64_t label() const { return label_; }
  std::uint64_t next_seq() { return seq_++; }

 private:
  TraceSink* sink_ = nullptr;
  std::uint64_t label_ = 0;
  std::uint64_t seq_ = 0;
};

#ifdef RADLOC_OBS_OFF

/// Compile-time escape hatch: span sites collapse to nothing.
class ScopedSpan {
 public:
  ScopedSpan(StageTracer* /*tracer*/, Stage /*stage*/) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#else

/// RAII span: samples at construction (null tracer = one pointer compare
/// and out), stamps start/duration from the sink's clock at destruction.
class ScopedSpan {
 public:
  ScopedSpan(StageTracer* tracer, Stage stage) {
    if (tracer != nullptr && tracer->sink() != nullptr && tracer->sink()->should_sample()) {
      tracer_ = tracer;
      stage_ = stage;
      start_us_ = tracer->sink()->now_us();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    TraceEvent e;
    e.session = tracer_->label();
    e.seq = tracer_->next_seq();
    e.stage = stage_;
    e.start_us = start_us_;
    e.duration_us = tracer_->sink()->now_us() - start_us_;
    tracer_->sink()->record(e);
  }

 private:
  StageTracer* tracer_ = nullptr;
  Stage stage_ = Stage::kValidate;
  double start_us_ = 0.0;
};

#endif  // RADLOC_OBS_OFF

}  // namespace radloc::obs

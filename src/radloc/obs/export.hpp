// Exporters for the observability layer (DESIGN.md §5.11): a Prometheus
// text-exposition writer over a MetricsRegistry and JSONL structured-event
// writers for trace spans and metric snapshots. All cold-path: they walk
// the registry / drained ring under its lock and format into a stream.
// radloc_serve surfaces them via --metrics-out / --trace-out.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "radloc/obs/metrics.hpp"
#include "radloc/obs/trace.hpp"

namespace radloc::obs {

/// Prometheus text exposition (format v0.0.4): one `# TYPE` line per metric
/// name, counters/gauges as `name{labels} value`, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`. Label values are
/// escaped per the spec (backslash, double-quote, newline). Metrics are
/// grouped by name; within a name, rows keep registration order.
void write_prometheus(const MetricsRegistry& registry, std::ostream& os);
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry);

/// JSONL trace export: one object per span, schema
///   {"type":"span","session":N,"seq":N,"stage":"...",
///    "start_us":F,"duration_us":F}
/// (stability pinned by tests/test_obs.cpp).
void write_trace_jsonl(std::span<const TraceEvent> events, std::ostream& os);

/// JSONL metrics snapshot: one object per instrument, schema
///   {"type":"counter|gauge|histogram","name":"...","labels":{...},...}
/// Counters carry integer "value"; gauges a double "value"; histograms
/// "count", "sum" and the exact-within-one-bucket "p50"/"p95"/"p99".
void write_metrics_jsonl(const MetricsRegistry& registry, std::ostream& os);

}  // namespace radloc::obs

#include "radloc/obs/trace.hpp"

#include <stdexcept>

namespace radloc::obs {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kValidate: return "validate";
    case Stage::kFusionQuery: return "fusion_query";
    case Stage::kWeightUpdate: return "weight_update";
    case Stage::kResample: return "resample";
    case Stage::kMeanShift: return "mean_shift";
    case Stage::kBudgetAdapt: return "budget_adapt";
    case Stage::kDrain: return "drain";
  }
  return "unknown";
}

TraceSink::TraceSink(std::size_t capacity, std::uint64_t sample_interval)
    : interval_(sample_interval), epoch_(std::chrono::steady_clock::now()) {
  if (capacity == 0) throw std::invalid_argument("trace ring capacity must be non-zero");
  ring_.resize(capacity);
}

double TraceSink::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSink::record(const TraceEvent& e) {
  const std::lock_guard lock(mu_);
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;  // overwrote the oldest undrained event
  }
  ++recorded_;
}

std::vector<TraceEvent> TraceSink::drain() {
  const std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  size_ = 0;
  return out;
}

std::uint64_t TraceSink::recorded() const {
  const std::lock_guard lock(mu_);
  return recorded_;
}

std::uint64_t TraceSink::dropped() const {
  const std::lock_guard lock(mu_);
  return dropped_;
}

}  // namespace radloc::obs

// Lock-cheap metrics registry — the unified observability layer's
// instrument store (DESIGN.md §5.11).
//
// Three instrument kinds, all designed so the HOT PATH is a relaxed atomic
// add (or a relaxed store) with no locks and no allocation:
//
//   Counter    monotone event tally, sharded across cache-line-padded
//              thread-local slots so concurrent drains never contend on one
//              cache line; summed on read.
//   Gauge      last-value double (relaxed store/load); a pull-style
//              CallbackGauge variant reads through a user function at
//              snapshot time (only for accessors that are themselves
//              thread-safe, e.g. ThreadPool counters).
//   Histogram  fixed-bucket log-scale distribution with exact-within-one-
//              bucket quantile queries (p50/p95/p99). Buckets are a fixed
//              atomic array, so observe() never allocates — the per-reading
//              drain-latency path stays inside the zero-allocation steady
//              state pinned by tests/test_alloc_steady.cpp.
//
// Instruments are registered by name + labels (session id, sensor id, SIMD
// tier, ...). Registration is mutex-guarded and COLD (session open, tool
// startup); the returned references are stable for the registry's lifetime
// — sessions hold raw pointers and bump them lock-free forever after.
// Exporters (obs/export.hpp) walk the registry via visit() in registration
// order.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace radloc::obs {

/// Label set attached to an instrument. Order-insensitive: the registry
/// canonicalizes by sorting on key, so {a,b} and {b,a} name one instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter. add() is a relaxed fetch_add on a thread-local
/// shard (cache-line padded), so writers on different threads never bounce
/// one cache line; value() sums the shards — monotone but only
/// eventually-consistent mid-write, which is exactly the Prometheus counter
/// contract.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  /// Threads are assigned shards round-robin on first touch; the index is
  /// per-thread, not per-counter, so every counter a thread bumps uses the
  /// same slot — one hot line per (thread, counter) pair.
  [[nodiscard]] static std::size_t shard_index();

  std::array<Shard, kShards> shards_{};
};

/// Last-value gauge (relaxed store/load of a double).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: bucket 0 is the underflow [0, first_bound);
/// buckets 1..n-2 grow geometrically (upper bound of bucket i is
/// first_bound * growth^(i-1)); bucket n-1 is the overflow. The default —
/// sqrt(2) growth from 1 µs over 64 buckets — resolves per-reading drain
/// latencies from sub-µs to ~36 minutes at better than ±21% per bucket.
struct HistogramSpec {
  double first_bound = 1.0;
  double growth = 1.4142135623730951;  // sqrt(2)
  std::size_t buckets = 64;            // total, incl. underflow + overflow
};

/// Fixed-bucket log-scale histogram. observe() is a bucket search plus two
/// relaxed atomic adds — no locks, no allocation (the bucket array is sized
/// at construction). quantile() answers nearest-rank p50/p95/p99 queries at
/// bucket resolution: the returned value is the geometric midpoint of the
/// bucket holding the rank, so it sits within one bucket (a factor of
/// `growth`) of the exact order statistic.
class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Nearest-rank quantile (q in [0, 1]; same rank rule as the service
  /// layer's old exact-window percentile): the representative value of the
  /// bucket containing the rank-th smallest observation. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  // Bucket introspection, for exporters and the one-bucket regression test.
  [[nodiscard]] std::size_t num_buckets() const { return num_buckets_; }
  [[nodiscard]] std::size_t bucket_index(double v) const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i; +inf for the overflow bucket.
  [[nodiscard]] double upper_bound(std::size_t i) const;
  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }

 private:
  HistogramSpec spec_;
  std::size_t num_buckets_ = 0;
  std::vector<double> bounds_;  ///< ascending upper bounds, size buckets-1
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kCallbackGauge, kHistogram };

[[nodiscard]] const char* to_string(InstrumentKind kind);

/// Name+labels keyed instrument store. counter()/gauge()/histogram() find or
/// create (idempotent: same name+labels returns the same instrument; a kind
/// mismatch throws std::invalid_argument). All registration calls take the
/// registry mutex — cold by design. The returned references stay valid for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {},
                       const HistogramSpec& spec = {});
  /// Pull-style gauge: `fn` is invoked at visit/export time. It must be
  /// thread-safe and must NOT register instruments (the registry mutex is
  /// held around the call) nor acquire a lock that a registering thread
  /// holds — keep callbacks to lock-free or leaf-lock accessors.
  void callback_gauge(const std::string& name, Labels labels, std::function<double()> fn);

  struct Instrument {
    std::string name;
    Labels labels;  ///< canonical (key-sorted)
    InstrumentKind kind = InstrumentKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;

    /// Scalar snapshot value (counter total, gauge value, callback result;
    /// histograms report their observation count here).
    [[nodiscard]] double scalar() const;
  };

  /// Walks every instrument in registration order under the registry mutex.
  void visit(const std::function<void(const Instrument&)>& fn) const;

  [[nodiscard]] std::size_t size() const;

 private:
  Instrument& find_or_create(const std::string& name, Labels labels, InstrumentKind kind,
                             const HistogramSpec* spec);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Instrument>> instruments_;  ///< stable addresses
  // Canonical "name\x1fk\x1ev..." -> index into instruments_.
  std::vector<std::pair<std::string, std::size_t>> index_;
};

}  // namespace radloc::obs

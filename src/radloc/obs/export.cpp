#include "radloc/obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <vector>

namespace radloc::obs {

namespace {

/// Shortest clean rendering of a double: integral values print without a
/// decimal point, everything else with enough digits to round-trip.
std::string format_number(double v) {
  if (!std::isfinite(v)) return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// JSON string escaping (the label set is operator-controlled text; control
/// characters below 0x20 get \u00XX).
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string label_block(const Labels& labels, const std::string& extra_key = {},
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + escape_label_value(extra_value) + "\"";
  }
  out += "}";
  return out;
}

/// Snapshot of one instrument, copied out under the registry lock so the
/// exposition can group/sort without holding it.
struct Sample {
  std::string name;
  Labels labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  double value = 0.0;
  // Histogram payload.
  std::vector<std::uint64_t> bucket_counts;
  std::vector<double> bucket_bounds;  ///< +inf last
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

std::vector<Sample> snapshot(const MetricsRegistry& registry) {
  std::vector<Sample> samples;
  registry.visit([&samples](const MetricsRegistry::Instrument& inst) {
    Sample s;
    s.name = inst.name;
    s.labels = inst.labels;
    s.kind = inst.kind;
    if (inst.kind == InstrumentKind::kHistogram) {
      const Histogram& h = *inst.histogram;
      s.bucket_counts.reserve(h.num_buckets());
      s.bucket_bounds.reserve(h.num_buckets());
      for (std::size_t i = 0; i < h.num_buckets(); ++i) {
        s.bucket_counts.push_back(h.bucket_count(i));
        s.bucket_bounds.push_back(h.upper_bound(i));
      }
      s.count = h.count();
      s.sum = h.sum();
      s.p50 = h.quantile(0.50);
      s.p95 = h.quantile(0.95);
      s.p99 = h.quantile(0.99);
    } else {
      s.value = inst.scalar();
    }
    samples.push_back(std::move(s));
  });
  return samples;
}

}  // namespace

void write_prometheus(const MetricsRegistry& registry, std::ostream& os) {
  std::vector<Sample> samples = snapshot(registry);
  // One # TYPE line per metric name: group by name, keeping registration
  // order within a name (stable sort).
  std::stable_sort(samples.begin(), samples.end(),
                   [](const Sample& a, const Sample& b) { return a.name < b.name; });
  const std::string* prev_name = nullptr;
  for (const Sample& s : samples) {
    if (prev_name == nullptr || *prev_name != s.name) {
      os << "# TYPE " << s.name << " " << to_string(s.kind) << "\n";
      prev_name = &s.name;
    }
    if (s.kind == InstrumentKind::kHistogram) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
        cum += s.bucket_counts[i];
        os << s.name << "_bucket" << label_block(s.labels, "le", format_number(s.bucket_bounds[i]))
           << " " << cum << "\n";
      }
      os << s.name << "_sum" << label_block(s.labels) << " " << format_number(s.sum) << "\n";
      os << s.name << "_count" << label_block(s.labels) << " " << s.count << "\n";
    } else {
      os << s.name << label_block(s.labels) << " " << format_number(s.value) << "\n";
    }
  }
}

std::string prometheus_text(const MetricsRegistry& registry) {
  std::ostringstream os;
  write_prometheus(registry, os);
  return os.str();
}

void write_trace_jsonl(std::span<const TraceEvent> events, std::ostream& os) {
  for (const TraceEvent& e : events) {
    os << "{\"type\":\"span\",\"session\":" << e.session << ",\"seq\":" << e.seq
       << ",\"stage\":\"" << to_string(e.stage) << "\",\"start_us\":" << format_number(e.start_us)
       << ",\"duration_us\":" << format_number(e.duration_us) << "}\n";
  }
}

void write_metrics_jsonl(const MetricsRegistry& registry, std::ostream& os) {
  const std::vector<Sample> samples = snapshot(registry);
  for (const Sample& s : samples) {
    os << "{\"type\":\"" << to_string(s.kind) << "\",\"name\":\"" << escape_json(s.name)
       << "\",\"labels\":{";
    bool first = true;
    for (const auto& [k, v] : s.labels) {
      if (!first) os << ",";
      first = false;
      os << "\"" << escape_json(k) << "\":\"" << escape_json(v) << "\"";
    }
    os << "}";
    if (s.kind == InstrumentKind::kHistogram) {
      os << ",\"count\":" << s.count << ",\"sum\":" << format_number(s.sum)
         << ",\"p50\":" << format_number(s.p50) << ",\"p95\":" << format_number(s.p95)
         << ",\"p99\":" << format_number(s.p99);
    } else {
      os << ",\"value\":" << format_number(s.value);
    }
    os << "}\n";
  }
}

}  // namespace radloc::obs

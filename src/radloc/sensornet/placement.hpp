// Sensor placement strategies.
#pragma once

#include <cstddef>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

/// `nx` x `ny` sensors in a uniform grid covering `area` (sensors on the
/// boundary included, like the paper's 6x6 grid over 100x100). All sensors
/// get `response`.
[[nodiscard]] std::vector<Sensor> place_grid(const AreaBounds& area, std::size_t nx,
                                             std::size_t ny,
                                             const SensorResponse& response = {
                                                 kDefaultEfficiency, 0.0});

/// `n` sensors placed by a (binomial) Poisson point process over `area` —
/// the paper's Scenario C.
[[nodiscard]] std::vector<Sensor> place_poisson(Rng& rng, const AreaBounds& area, std::size_t n,
                                                const SensorResponse& response = {
                                                    kDefaultEfficiency, 0.0});

/// Sets the background rate (CPM) on every sensor; returns the same vector
/// for chaining.
std::vector<Sensor>& set_background(std::vector<Sensor>& sensors, double background_cpm);

}  // namespace radloc

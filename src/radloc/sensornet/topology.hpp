// Multi-hop network topology.
//
// The paper's robustness argument (Sec. V bullet 1) is rooted in real
// wireless sensor networks: measurements reach the fusion center over
// multi-hop trees, so latency grows with depth and a dead relay silences a
// whole subtree. This module builds the communication graph from sensor
// positions and a radio range, extracts a BFS routing tree toward a base
// station, and exposes a delivery model with per-hop delay and loss.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

/// Communication graph over sensors: an undirected edge links every pair
/// within `radio_range`.
class NetworkTopology {
 public:
  /// Builds the graph and the BFS routing tree rooted at `base_station`
  /// (a sensor id). Sensors unreachable from the base station have no
  /// route (orphans). Throws on an unknown base station id.
  NetworkTopology(std::span<const Sensor> sensors, double radio_range, SensorId base_station);

  [[nodiscard]] std::size_t size() const { return parent_.size(); }
  [[nodiscard]] SensorId base_station() const { return base_; }

  /// Parent of `id` in the routing tree; nullopt for the base station and
  /// for orphans.
  [[nodiscard]] std::optional<SensorId> parent(SensorId id) const;

  /// Hop count from `id` to the base station; nullopt for orphans.
  [[nodiscard]] std::optional<std::size_t> hops(SensorId id) const;

  /// True when the sensor has a route to the base station.
  [[nodiscard]] bool connected(SensorId id) const { return hops_[id].has_value(); }

  /// Number of sensors with a route (including the base station).
  [[nodiscard]] std::size_t connected_count() const;

  /// All direct neighbors of `id` in the communication graph.
  [[nodiscard]] const std::vector<SensorId>& neighbors(SensorId id) const {
    return adjacency_[id];
  }

  /// The route from `id` to the base station (inclusive); empty for orphans.
  [[nodiscard]] std::vector<SensorId> route(SensorId id) const;

  /// Marks a sensor dead; routes are rebuilt, so its subtree re-attaches
  /// through other neighbors when the graph allows, and becomes orphaned
  /// otherwise.
  void kill(SensorId id);
  [[nodiscard]] bool is_dead(SensorId id) const { return dead_[id]; }

 private:
  void rebuild_routes();

  SensorId base_;
  std::vector<std::vector<SensorId>> adjacency_;
  std::vector<std::optional<SensorId>> parent_;
  std::vector<std::optional<std::size_t>> hops_;
  std::vector<bool> dead_;
};

/// Delivery model driven by a NetworkTopology: a measurement from sensor s
/// takes hops(s) transmissions; each transmission takes one "slot" of
/// `slots_per_step` per time step and is independently lost with
/// `per_hop_loss`. Measurements from orphaned or dead sensors never arrive.
/// Arrivals within a step are shuffled (they race through the network).
class MultiHopDelivery final : public DeliveryModel {
 public:
  /// The topology is borrowed and must outlive the model.
  MultiHopDelivery(const NetworkTopology& topology, double per_hop_loss = 0.0,
                   std::size_t slots_per_step = 4);

  [[nodiscard]] std::vector<Measurement> deliver(Rng& rng,
                                                 std::vector<Measurement> batch) override;
  [[nodiscard]] std::vector<Measurement> drain(Rng& rng) override;

 private:
  struct InFlight {
    Measurement m;
    std::size_t hops_left;
  };

  const NetworkTopology* topology_;
  double per_hop_loss_;
  std::size_t slots_per_step_;
  std::vector<InFlight> in_flight_;
};

}  // namespace radloc

#include "radloc/sensornet/topology.hpp"

#include <deque>
#include <utility>

#include "radloc/common/math.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

NetworkTopology::NetworkTopology(std::span<const Sensor> sensors, double radio_range,
                                 SensorId base_station)
    : base_(base_station),
      adjacency_(sensors.size()),
      parent_(sensors.size()),
      hops_(sensors.size()),
      dead_(sensors.size(), false) {
  require(base_station < sensors.size(), "unknown base station sensor id");
  require(radio_range > 0.0, "radio range must be positive");
  const double range2 = square(radio_range);
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    for (std::size_t j = i + 1; j < sensors.size(); ++j) {
      if (distance2(sensors[i].pos, sensors[j].pos) <= range2) {
        adjacency_[i].push_back(static_cast<SensorId>(j));
        adjacency_[j].push_back(static_cast<SensorId>(i));
      }
    }
  }
  rebuild_routes();
}

void NetworkTopology::rebuild_routes() {
  std::fill(parent_.begin(), parent_.end(), std::nullopt);
  std::fill(hops_.begin(), hops_.end(), std::nullopt);
  if (dead_[base_]) return;  // the fusion center itself is down

  std::deque<SensorId> queue{base_};
  hops_[base_] = 0;
  while (!queue.empty()) {
    const SensorId u = queue.front();
    queue.pop_front();
    for (const SensorId v : adjacency_[u]) {
      if (dead_[v] || hops_[v]) continue;
      hops_[v] = *hops_[u] + 1;
      parent_[v] = u;
      queue.push_back(v);
    }
  }
}

std::optional<SensorId> NetworkTopology::parent(SensorId id) const { return parent_.at(id); }

std::optional<std::size_t> NetworkTopology::hops(SensorId id) const { return hops_.at(id); }

std::size_t NetworkTopology::connected_count() const {
  std::size_t n = 0;
  for (const auto& h : hops_) {
    if (h) ++n;
  }
  return n;
}

std::vector<SensorId> NetworkTopology::route(SensorId id) const {
  std::vector<SensorId> path;
  if (!hops_.at(id)) return path;
  for (std::optional<SensorId> cur = id; cur; cur = parent_[*cur]) {
    path.push_back(*cur);
    if (*cur == base_) break;
  }
  return path;
}

void NetworkTopology::kill(SensorId id) {
  dead_.at(id) = true;
  rebuild_routes();
}

MultiHopDelivery::MultiHopDelivery(const NetworkTopology& topology, double per_hop_loss,
                                   std::size_t slots_per_step)
    : topology_(&topology), per_hop_loss_(per_hop_loss), slots_per_step_(slots_per_step) {
  require(per_hop_loss >= 0.0 && per_hop_loss < 1.0, "per-hop loss must be in [0, 1)");
  require(slots_per_step > 0, "need at least one transmission slot per step");
}

std::vector<Measurement> MultiHopDelivery::deliver(Rng& rng, std::vector<Measurement> batch) {
  for (auto& m : batch) {
    if (m.sensor >= topology_->size()) continue;  // foreign sensor: drop
    if (topology_->is_dead(m.sensor)) continue;
    const auto hops = topology_->hops(m.sensor);
    if (!hops) continue;  // orphaned: no route to the fusion center
    in_flight_.push_back(InFlight{m, *hops});
  }

  std::vector<Measurement> delivered;
  std::vector<InFlight> still_flying;
  for (auto& f : in_flight_) {
    bool lost = false;
    for (std::size_t slot = 0; slot < slots_per_step_ && f.hops_left > 0; ++slot) {
      if (per_hop_loss_ > 0.0 && uniform01(rng) < per_hop_loss_) {
        lost = true;
        break;
      }
      --f.hops_left;
    }
    if (lost) continue;
    if (f.hops_left == 0) {
      delivered.push_back(f.m);
    } else {
      still_flying.push_back(f);
    }
  }
  in_flight_ = std::move(still_flying);

  // Arrivals race through the network: shuffle within the step.
  for (std::size_t i = delivered.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_index(rng, i));
    std::swap(delivered[i - 1], delivered[j]);
  }
  return delivered;
}

std::vector<Measurement> MultiHopDelivery::drain(Rng& rng) {
  std::vector<Measurement> out;
  out.reserve(in_flight_.size());
  for (const auto& f : in_flight_) out.push_back(f.m);
  in_flight_.clear();
  // Same out-of-order contract as deliver(): the stragglers race out too.
  for (std::size_t i = out.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_index(rng, i));
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

}  // namespace radloc

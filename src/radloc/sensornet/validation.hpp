// Measurement ingestion validation — the single choke point where raw
// readings are admitted into the localization pipeline.
//
// The paper's robustness claim (Sec. V) is about *delivery* pathologies:
// loss, reordering, latency. A production ingest path additionally sees
// *malformed* readings — unknown sensor ids, NaN/inf counts from failed
// hardware, negative rates from buggy decoders. Before this module those
// checks lived as scattered `require(...)` calls with generic messages and
// no way to count or tolerate rejects. MeasurementValidator centralizes
// them: one place that defines what a well-formed reading is, names each
// fault explicitly, tallies verdicts for telemetry, and lets callers choose
// between throwing (enforce) and non-throwing (check/admit) handling.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "radloc/common/types.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

/// Why a reading was rejected at ingestion. kNone means well-formed.
enum class ReadingFault : std::uint8_t {
  kNone = 0,
  kUnknownSensor,       ///< sensor id outside the known deployment
  kNonFiniteCpm,        ///< NaN or infinite count rate
  kNegativeCpm,         ///< count rates cannot be negative
  kNonFinitePosition,   ///< mobile reading taken at a NaN/inf position
  kNonFiniteTimestamp,  ///< NaN or infinite timestamp on a timed reading
  kNegativeTimestamp,   ///< timestamps are offsets from stream start; < 0 is malformed
};

inline constexpr std::size_t kReadingFaultCount = 7;

/// Human-readable fault description (stable, suitable for error messages).
[[nodiscard]] const char* to_string(ReadingFault fault);

/// Validates measurements against a deployment of `sensor_count` sensors
/// (dense ids 0..sensor_count-1) and position-stamped mobile readings.
/// Stateless verdicts via check*/enforce; admit* additionally tallies the
/// verdict into per-fault counters so ingest health is observable.
class MeasurementValidator {
 public:
  /// Sentinel for "no deployment to check against": pipelines that only
  /// ever ingest position-stamped readings skip the id check entirely.
  /// Distinct from an EMPTY deployment (sensor_count == 0), where every
  /// sensor id is unknown by definition.
  static constexpr std::size_t kAnySensorId = static_cast<std::size_t>(-1);

  explicit MeasurementValidator(std::size_t sensor_count = kAnySensorId)
      : sensor_count_(sensor_count) {}

  /// Verdict for a sensor-id measurement (id + count rate).
  [[nodiscard]] ReadingFault check(const Measurement& m) const;

  /// Verdict for a position-stamped reading (mobile detector).
  [[nodiscard]] ReadingFault check_reading(const Point2& at, double cpm) const;

  /// Verdict for a timestamp alone. A NaN timestamp is the nastiest of the
  /// three: fed into a comparison-based drain order it breaks strict weak
  /// ordering (every comparison is false), which is UB for std::sort — so
  /// timed ingest paths must reject it before any ordering decision.
  [[nodiscard]] static ReadingFault check_timestamp(double timestamp);

  /// Verdict for a timed reading (streaming ingest): the timestamp is
  /// checked first, then the measurement itself.
  [[nodiscard]] ReadingFault check_timed(const Measurement& m, double timestamp) const;

  /// check()/check_reading()/check_timed() + verdict tally.
  ReadingFault admit(const Measurement& m);
  ReadingFault admit_reading(const Point2& at, double cpm);
  ReadingFault admit_timed(const Measurement& m, double timestamp);

  /// Throws std::invalid_argument carrying to_string(fault) unless kNone.
  static void enforce(ReadingFault fault);

  [[nodiscard]] std::size_t sensor_count() const { return sensor_count_; }

  /// Number of admit* calls that returned `fault` (kNone counts accepts).
  [[nodiscard]] std::size_t count(ReadingFault fault) const {
    return counts_[static_cast<std::size_t>(fault)];
  }
  [[nodiscard]] std::size_t accepted() const { return count(ReadingFault::kNone); }
  [[nodiscard]] std::size_t rejected() const;

 private:
  std::size_t sensor_count_;
  std::array<std::size_t, kReadingFaultCount> counts_{};
};

}  // namespace radloc

#include "radloc/sensornet/placement.hpp"

#include "radloc/common/math.hpp"
#include "radloc/rng/poisson_process.hpp"

namespace radloc {

std::vector<Sensor> place_grid(const AreaBounds& area, std::size_t nx, std::size_t ny,
                               const SensorResponse& response) {
  require(nx >= 2 && ny >= 2, "grid placement needs at least 2x2 sensors");
  std::vector<Sensor> sensors;
  sensors.reserve(nx * ny);
  const double dx = area.width() / static_cast<double>(nx - 1);
  const double dy = area.height() / static_cast<double>(ny - 1);
  SensorId id = 0;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      sensors.push_back(Sensor{
          id++,
          Point2{area.min.x + static_cast<double>(ix) * dx,
                 area.min.y + static_cast<double>(iy) * dy},
          response});
    }
  }
  return sensors;
}

std::vector<Sensor> place_poisson(Rng& rng, const AreaBounds& area, std::size_t n,
                                  const SensorResponse& response) {
  const auto pts = sample_binomial_process(rng, area, n);
  std::vector<Sensor> sensors;
  sensors.reserve(n);
  SensorId id = 0;
  for (const auto& p : pts) sensors.push_back(Sensor{id++, p, response});
  return sensors;
}

std::vector<Sensor>& set_background(std::vector<Sensor>& sensors, double background_cpm) {
  for (auto& s : sensors) s.response.background_cpm = background_cpm;
  return sensors;
}

}  // namespace radloc

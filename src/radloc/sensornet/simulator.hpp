// Ground-truth measurement generator.
//
// Implements the generative model of Sec. III: each sensor's reading is a
// Poisson sample with rate given by Eq. (4) over the true source set and the
// true environment (obstacles included).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radloc/radiation/environment.hpp"
#include "radloc/radiation/source.hpp"
#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

class MeasurementSimulator {
 public:
  /// The simulator copies sensors/sources; `env` must outlive it.
  MeasurementSimulator(const Environment& env, std::vector<Sensor> sensors,
                       std::vector<Source> sources);

  /// Expected CPM (Eq. 4) at sensor `i` — the Poisson rate, before sampling.
  [[nodiscard]] double expected_cpm_at(SensorId i) const;

  /// One Poisson-sampled reading from sensor `i`.
  [[nodiscard]] Measurement sample(Rng& rng, SensorId i) const;

  /// One Poisson-sampled reading taken at an arbitrary position with the
  /// given detector response (mobile detectors). Returns raw CPM.
  [[nodiscard]] double sample_at(Rng& rng, const Point2& at,
                                 const SensorResponse& response) const;

  /// One reading from every sensor, in sensor-id order (one "time step" of
  /// the paper: T = N iterations).
  [[nodiscard]] std::vector<Measurement> sample_time_step(Rng& rng) const;

  [[nodiscard]] std::span<const Sensor> sensors() const { return sensors_; }
  [[nodiscard]] std::span<const Source> sources() const { return sources_; }
  [[nodiscard]] const Environment& environment() const { return *env_; }

  /// Marks sensor `i` dead: it still appears in sensors() but produces no
  /// measurements (paper Sec. V: robustness to malfunctioning sensors).
  void kill_sensor(SensorId i);
  [[nodiscard]] bool is_dead(SensorId i) const;

 private:
  const Environment* env_;
  std::vector<Sensor> sensors_;
  std::vector<Source> sources_;
  std::vector<bool> dead_;
  // Eq. (4) rates memoized per sensor at construction (sensors, sources and
  // the obstacle geometry are all fixed): static-sensor sampling becomes
  // pure Poisson draws with no geometry, and — because the memo is written
  // once and only read afterwards — one simulator is safe to share const
  // across concurrent experiment trials. Guarded by the environment's
  // obstacle revision; on mismatch expected_cpm_at recomputes exactly.
  std::vector<double> rates_;
  std::uint64_t rates_revision_ = 0;
};

}  // namespace radloc

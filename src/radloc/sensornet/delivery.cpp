#include "radloc/sensornet/delivery.hpp"

#include <algorithm>
#include <utility>

#include "radloc/common/math.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

namespace {

/// Fisher-Yates shuffle driven by the radloc engine (std::shuffle's output
/// is implementation-defined; we need reproducibility).
void shuffle_measurements(Rng& rng, std::vector<Measurement>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_index(rng, i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace

std::vector<Measurement> InOrderDelivery::deliver(Rng& /*rng*/, std::vector<Measurement> batch) {
  return batch;
}

std::vector<Measurement> ShuffledDelivery::deliver(Rng& rng, std::vector<Measurement> batch) {
  shuffle_measurements(rng, batch);
  return batch;
}

LossyDelivery::LossyDelivery(double loss_rate, std::unique_ptr<DeliveryModel> inner)
    : loss_rate_(loss_rate), inner_(std::move(inner)) {
  require(loss_rate >= 0.0 && loss_rate < 1.0, "loss rate must be in [0, 1)");
  require(inner_ != nullptr, "lossy delivery needs an inner model");
}

std::vector<Measurement> LossyDelivery::deliver(Rng& rng, std::vector<Measurement> batch) {
  std::erase_if(batch, [&](const Measurement&) { return uniform01(rng) < loss_rate_; });
  return inner_->deliver(rng, std::move(batch));
}

RandomLatencyDelivery::RandomLatencyDelivery(double mean_delay_steps) {
  require(mean_delay_steps >= 0.0, "mean delay must be non-negative");
  // Geometric(p) with mean (1-p)/p extra steps => stay-queued probability.
  delay_prob_ = mean_delay_steps / (1.0 + mean_delay_steps);
}

std::vector<Measurement> RandomLatencyDelivery::deliver(Rng& rng,
                                                        std::vector<Measurement> batch) {
  for (auto& m : batch) in_flight_.push_back(m);
  std::vector<Measurement> delivered;
  std::vector<Measurement> still_queued;
  delivered.reserve(in_flight_.size());
  for (const auto& m : in_flight_) {
    if (uniform01(rng) < delay_prob_) {
      still_queued.push_back(m);
    } else {
      delivered.push_back(m);
    }
  }
  in_flight_ = std::move(still_queued);
  shuffle_measurements(rng, delivered);
  return delivered;
}

std::vector<Measurement> RandomLatencyDelivery::drain(Rng& rng) {
  // The drained tail is still a set of late arrivals racing to the fusion
  // center — returning it in insertion order would leak ordering the model
  // promises not to provide, so it is shuffled exactly like deliver()'s.
  std::vector<Measurement> out = std::exchange(in_flight_, {});
  shuffle_measurements(rng, out);
  return out;
}

}  // namespace radloc

// Measurement trace recording and replay.
//
// Real deployments log every reading; analyses re-run localization offline
// against recorded traces. A trace is a sequence of time steps, each a
// sequence of (sensor, cpm) measurements in arrival order; the CSV format
// is `step,sensor,cpm` per line with a one-line header.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "radloc/sensornet/sensor.hpp"

namespace radloc {

class MeasurementTrace {
 public:
  MeasurementTrace() = default;

  /// Appends one time step of measurements (arrival order preserved).
  void record_step(std::vector<Measurement> step);

  [[nodiscard]] std::size_t num_steps() const { return steps_.size(); }
  [[nodiscard]] std::size_t num_measurements() const;
  [[nodiscard]] const std::vector<Measurement>& step(std::size_t t) const {
    return steps_.at(t);
  }

  /// All measurements flattened in arrival order.
  [[nodiscard]] std::vector<Measurement> flattened() const;

  /// Writes the trace as CSV (`step,sensor,cpm`).
  void save_csv(std::ostream& os) const;
  void save_csv_file(const std::string& path) const;

  /// Parses a CSV trace. Throws std::invalid_argument on malformed rows,
  /// non-contiguous step numbers, or negative readings.
  [[nodiscard]] static MeasurementTrace load_csv(std::istream& is);
  [[nodiscard]] static MeasurementTrace load_csv_file(const std::string& path);

  friend bool operator==(const MeasurementTrace&, const MeasurementTrace&);

 private:
  std::vector<std::vector<Measurement>> steps_;
};

[[nodiscard]] bool operator==(const Measurement& a, const Measurement& b);

}  // namespace radloc

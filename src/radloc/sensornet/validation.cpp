#include "radloc/sensornet/validation.hpp"

#include <cmath>
#include <stdexcept>

namespace radloc {

const char* to_string(ReadingFault fault) {
  switch (fault) {
    case ReadingFault::kNone:
      return "reading accepted";
    case ReadingFault::kUnknownSensor:
      return "measurement from unknown sensor id";
    case ReadingFault::kNonFiniteCpm:
      return "CPM reading must be finite (got NaN or inf)";
    case ReadingFault::kNegativeCpm:
      return "CPM reading must be non-negative";
    case ReadingFault::kNonFinitePosition:
      return "reading position must be finite (got NaN or inf coordinate)";
    case ReadingFault::kNonFiniteTimestamp:
      return "reading timestamp must be finite (got NaN or inf)";
    case ReadingFault::kNegativeTimestamp:
      return "reading timestamp must be non-negative";
  }
  return "unknown reading fault";
}

namespace {

ReadingFault check_cpm(double cpm) {
  if (!std::isfinite(cpm)) return ReadingFault::kNonFiniteCpm;
  if (cpm < 0.0) return ReadingFault::kNegativeCpm;
  return ReadingFault::kNone;
}

}  // namespace

ReadingFault MeasurementValidator::check(const Measurement& m) const {
  if (sensor_count_ != kAnySensorId && m.sensor >= sensor_count_) {
    return ReadingFault::kUnknownSensor;
  }
  return check_cpm(m.cpm);
}

ReadingFault MeasurementValidator::check_reading(const Point2& at, double cpm) const {
  // A NaN coordinate is worse than a wrong answer: downstream grid-cell
  // arithmetic float->int casts it, which is undefined behavior.
  if (!std::isfinite(at.x) || !std::isfinite(at.y)) return ReadingFault::kNonFinitePosition;
  return check_cpm(cpm);
}

ReadingFault MeasurementValidator::check_timestamp(double timestamp) {
  if (!std::isfinite(timestamp)) return ReadingFault::kNonFiniteTimestamp;
  if (timestamp < 0.0) return ReadingFault::kNegativeTimestamp;
  return ReadingFault::kNone;
}

ReadingFault MeasurementValidator::check_timed(const Measurement& m, double timestamp) const {
  const ReadingFault time_fault = check_timestamp(timestamp);
  if (time_fault != ReadingFault::kNone) return time_fault;
  return check(m);
}

ReadingFault MeasurementValidator::admit(const Measurement& m) {
  const ReadingFault fault = check(m);
  ++counts_[static_cast<std::size_t>(fault)];
  return fault;
}

ReadingFault MeasurementValidator::admit_reading(const Point2& at, double cpm) {
  const ReadingFault fault = check_reading(at, cpm);
  ++counts_[static_cast<std::size_t>(fault)];
  return fault;
}

ReadingFault MeasurementValidator::admit_timed(const Measurement& m, double timestamp) {
  const ReadingFault fault = check_timed(m, timestamp);
  ++counts_[static_cast<std::size_t>(fault)];
  return fault;
}

void MeasurementValidator::enforce(ReadingFault fault) {
  if (fault != ReadingFault::kNone) throw std::invalid_argument(to_string(fault));
}

std::size_t MeasurementValidator::rejected() const {
  std::size_t n = 0;
  for (std::size_t f = 1; f < kReadingFaultCount; ++f) n += counts_[f];
  return n;
}

}  // namespace radloc

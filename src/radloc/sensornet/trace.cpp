#include "radloc/sensornet/trace.hpp"

#include <fstream>
#include <sstream>

#include "radloc/common/math.hpp"

namespace radloc {

bool operator==(const Measurement& a, const Measurement& b) {
  return a.sensor == b.sensor && a.cpm == b.cpm;
}

bool operator==(const MeasurementTrace& a, const MeasurementTrace& b) {
  return a.steps_ == b.steps_;
}

void MeasurementTrace::record_step(std::vector<Measurement> step) {
  steps_.push_back(std::move(step));
}

std::size_t MeasurementTrace::num_measurements() const {
  std::size_t n = 0;
  for (const auto& s : steps_) n += s.size();
  return n;
}

std::vector<Measurement> MeasurementTrace::flattened() const {
  std::vector<Measurement> out;
  out.reserve(num_measurements());
  for (const auto& s : steps_) out.insert(out.end(), s.begin(), s.end());
  return out;
}

void MeasurementTrace::save_csv(std::ostream& os) const {
  os << "step,sensor,cpm\n";
  for (std::size_t t = 0; t < steps_.size(); ++t) {
    for (const auto& m : steps_[t]) {
      os << t << ',' << m.sensor << ',' << m.cpm << '\n';
    }
  }
}

void MeasurementTrace::save_csv_file(const std::string& path) const {
  std::ofstream os(path);
  require(os.good(), "cannot open trace file for writing");
  save_csv(os);
}

MeasurementTrace MeasurementTrace::load_csv(std::istream& is) {
  MeasurementTrace trace;
  std::string line;
  require(static_cast<bool>(std::getline(is, line)), "empty trace stream");
  require(line.rfind("step,sensor,cpm", 0) == 0, "trace header mismatch");

  std::vector<Measurement> current;
  std::size_t current_step = 0;
  bool any = false;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::size_t step = 0;
    char c1 = 0;
    char c2 = 0;
    std::uint32_t sensor = 0;
    double cpm = -1.0;
    row >> step >> c1 >> sensor >> c2 >> cpm;
    require(!row.fail() && c1 == ',' && c2 == ',', "malformed trace row");
    require(cpm >= 0.0, "negative CPM in trace");
    if (any) {
      require(step >= current_step, "trace steps must be non-decreasing");
      // A forward jump closes the current step and re-creates any empty
      // steps in between, so step indices round-trip exactly.
      while (current_step < step) {
        trace.record_step(std::move(current));
        current.clear();
        ++current_step;
      }
    } else {
      require(step == 0, "trace must start at step 0");
      any = true;
    }
    current.push_back(Measurement{sensor, cpm});
  }
  if (any) trace.record_step(std::move(current));
  return trace;
}

MeasurementTrace MeasurementTrace::load_csv_file(const std::string& path) {
  std::ifstream is(path);
  require(is.good(), "cannot open trace file for reading");
  return load_csv(is);
}

}  // namespace radloc

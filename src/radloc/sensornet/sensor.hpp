// A radiation counter at a known position.
#pragma once

#include <cstdint>

#include "radloc/common/types.hpp"
#include "radloc/radiation/intensity_model.hpp"

namespace radloc {

using SensorId = std::uint32_t;

/// Default counting efficiency E_i. With Eq. (4)'s 2.22e6 uCi->CPM constant,
/// E = 3e-5 calibrates the model to the paper's regime: a 10 uCi source
/// reads ~25 CPM a few units away, is weaker than a 5 CPM background one
/// grid spacing away (~14 units from the nearest sensor), and is buried in
/// background across the area (so superposed far-field does not masquerade
/// as phantom weak sources). Experiments may override per sensor.
inline constexpr double kDefaultEfficiency = 3.0e-5;

struct Sensor {
  SensorId id = 0;
  Point2 pos;
  SensorResponse response{kDefaultEfficiency, 0.0};
};

/// One reading: sensor `sensor` measured `cpm` counts per minute.
/// The paper's m(S_i); iterations are defined by arrival order, so the
/// measurement itself carries no timestamp.
struct Measurement {
  SensorId sensor = 0;
  double cpm = 0.0;
};

}  // namespace radloc

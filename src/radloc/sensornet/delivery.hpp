// Network delivery models.
//
// The paper stresses that the algorithm consumes ONE measurement per
// iteration, with no ordering assumption, tolerating loss and unpredictable
// latency (Sec. V bullet 1; Scenario C uses out-of-order delivery). These
// models transform the per-time-step measurement batch into the arrival
// sequence the localizer actually sees.
#pragma once

#include <memory>
#include <vector>

#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

/// Interface: reorders / drops a batch of measurements generated in one time
/// step. Implementations may keep state across steps (e.g. latency queues).
class DeliveryModel {
 public:
  virtual ~DeliveryModel() = default;

  /// Consumes this step's batch, returns the measurements *delivered* this
  /// step (possibly including stragglers from earlier steps, possibly
  /// missing delayed or dropped ones).
  [[nodiscard]] virtual std::vector<Measurement> deliver(Rng& rng,
                                                         std::vector<Measurement> batch) = 0;

  /// Measurements still in flight (for latency models); drained at shutdown.
  /// Like deliver(), arrivals carry no ordering guarantee: latency models
  /// shuffle the drained tail so it honors the same out-of-order contract.
  [[nodiscard]] virtual std::vector<Measurement> drain(Rng& rng) {
    (void)rng;
    return {};
  }
};

/// Perfect in-order delivery (Scenarios A and B).
class InOrderDelivery final : public DeliveryModel {
 public:
  [[nodiscard]] std::vector<Measurement> deliver(Rng& rng,
                                                 std::vector<Measurement> batch) override;
};

/// Uniformly random permutation of each step's batch (out-of-order arrival
/// within a step — Scenario C).
class ShuffledDelivery final : public DeliveryModel {
 public:
  [[nodiscard]] std::vector<Measurement> deliver(Rng& rng,
                                                 std::vector<Measurement> batch) override;
};

/// Drops each measurement independently with probability `loss_rate`
/// (unreliable wireless), then delegates to an inner model.
class LossyDelivery final : public DeliveryModel {
 public:
  LossyDelivery(double loss_rate, std::unique_ptr<DeliveryModel> inner);

  [[nodiscard]] std::vector<Measurement> deliver(Rng& rng,
                                                 std::vector<Measurement> batch) override;
  [[nodiscard]] std::vector<Measurement> drain(Rng& rng) override { return inner_->drain(rng); }

 private:
  double loss_rate_;
  std::unique_ptr<DeliveryModel> inner_;
};

/// Each measurement is delayed by a geometric number of steps with mean
/// `mean_delay_steps` (multi-hop forwarding latency); arrivals within a step
/// are shuffled. Measurements can therefore arrive many steps late and
/// heavily out of order across steps.
class RandomLatencyDelivery final : public DeliveryModel {
 public:
  explicit RandomLatencyDelivery(double mean_delay_steps);

  [[nodiscard]] std::vector<Measurement> deliver(Rng& rng,
                                                 std::vector<Measurement> batch) override;
  [[nodiscard]] std::vector<Measurement> drain(Rng& rng) override;

 private:
  double delay_prob_;  // probability a queued measurement stays queued a step
  std::vector<Measurement> in_flight_;
};

}  // namespace radloc

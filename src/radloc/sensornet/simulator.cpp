#include "radloc/sensornet/simulator.hpp"

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

MeasurementSimulator::MeasurementSimulator(const Environment& env, std::vector<Sensor> sensors,
                                           std::vector<Source> sources)
    : env_(&env),
      sensors_(std::move(sensors)),
      sources_(std::move(sources)),
      dead_(sensors_.size(), false) {
  require(!sensors_.empty(), "simulator needs at least one sensor");
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    require(sensors_[i].id == i, "sensor ids must be dense and in order");
  }
  rates_.reserve(sensors_.size());
  for (const Sensor& s : sensors_) {
    rates_.push_back(expected_cpm(s.pos, sources_, *env_, s.response));
  }
  rates_revision_ = env_->revision();
}

double MeasurementSimulator::expected_cpm_at(SensorId i) const {
  // The memo is exact (same expression, evaluated once) while the obstacle
  // set is unchanged; after an obstacle edit fall back to fresh geometry.
  if (env_->revision() == rates_revision_) return rates_.at(i);
  const Sensor& s = sensors_.at(i);
  return expected_cpm(s.pos, sources_, *env_, s.response);
}

double MeasurementSimulator::sample_at(Rng& rng, const Point2& at,
                                        const SensorResponse& response) const {
  const double lambda = expected_cpm(at, sources_, *env_, response);
  return static_cast<double>(poisson(rng, lambda));
}

Measurement MeasurementSimulator::sample(Rng& rng, SensorId i) const {
  const double lambda = expected_cpm_at(i);
  return Measurement{i, static_cast<double>(poisson(rng, lambda))};
}

std::vector<Measurement> MeasurementSimulator::sample_time_step(Rng& rng) const {
  std::vector<Measurement> out;
  out.reserve(sensors_.size());
  for (const Sensor& s : sensors_) {
    if (!dead_[s.id]) out.push_back(sample(rng, s.id));
  }
  return out;
}

void MeasurementSimulator::kill_sensor(SensorId i) { dead_.at(i) = true; }

bool MeasurementSimulator::is_dead(SensorId i) const { return dead_.at(i); }

}  // namespace radloc

#include "radloc/optim/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

#include "radloc/common/math.hpp"

namespace radloc {

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& opts) {
  const std::size_t dim = x0.size();
  require(dim > 0, "nelder_mead needs at least one dimension");

  struct Vertex {
    std::vector<double> x;
    double fx;
  };

  std::size_t evals = 0;
  auto eval = [&](const std::vector<double>& x) {
    ++evals;
    return f(x);
  };

  // Initial simplex: x0 plus one offset vertex per coordinate.
  std::vector<Vertex> simplex;
  simplex.reserve(dim + 1);
  simplex.push_back(Vertex{x0, eval(x0)});
  for (std::size_t d = 0; d < dim; ++d) {
    auto x = x0;
    x[d] += opts.initial_step;
    simplex.push_back(Vertex{x, eval(x)});
  }

  auto by_value = [](const Vertex& a, const Vertex& b) { return a.fx < b.fx; };
  std::sort(simplex.begin(), simplex.end(), by_value);

  std::vector<double> centroid(dim), candidate(dim);
  bool converged = false;

  auto diameter = [&] {
    double d = 0.0;
    for (std::size_t v = 1; v <= dim; ++v) {
      for (std::size_t c = 0; c < dim; ++c) {
        d = std::max(d, std::abs(simplex[v].x[c] - simplex[0].x[c]));
      }
    }
    return d;
  };

  while (evals < opts.max_evaluations) {
    // Both the value spread AND the simplex extent must be small: a simplex
    // straddling a minimum symmetrically has zero f-spread but is not done.
    if (simplex.back().fx - simplex.front().fx < opts.tolerance &&
        diameter() < opts.x_tolerance) {
      converged = true;
      break;
    }

    // Centroid of all vertices except the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t v = 0; v < dim; ++v) {
      for (std::size_t d = 0; d < dim; ++d) centroid[d] += simplex[v].x[d];
    }
    for (auto& c : centroid) c /= static_cast<double>(dim);

    Vertex& worst = simplex.back();
    auto blend = [&](double coeff) {
      for (std::size_t d = 0; d < dim; ++d) {
        candidate[d] = centroid[d] + coeff * (centroid[d] - worst.x[d]);
      }
    };

    blend(opts.reflection);
    const double f_reflect = eval(candidate);
    if (f_reflect < simplex.front().fx) {
      const auto reflected = candidate;
      blend(opts.expansion);
      const double f_expand = eval(candidate);
      if (f_expand < f_reflect) {
        worst = Vertex{candidate, f_expand};
      } else {
        worst = Vertex{reflected, f_reflect};
      }
    } else if (f_reflect < simplex[dim - 1].fx) {
      worst = Vertex{candidate, f_reflect};
    } else {
      blend(f_reflect < worst.fx ? opts.contraction : -opts.contraction);
      const double f_contract = eval(candidate);
      if (f_contract < std::min(f_reflect, worst.fx)) {
        worst = Vertex{candidate, f_contract};
      } else {
        // Shrink toward the best vertex.
        for (std::size_t v = 1; v <= dim; ++v) {
          for (std::size_t d = 0; d < dim; ++d) {
            simplex[v].x[d] =
                simplex[0].x[d] + opts.shrink * (simplex[v].x[d] - simplex[0].x[d]);
          }
          simplex[v].fx = eval(simplex[v].x);
        }
      }
    }
    std::sort(simplex.begin(), simplex.end(), by_value);
  }

  return NelderMeadResult{simplex.front().x, simplex.front().fx, evals, converged};
}

}  // namespace radloc

// Nelder-Mead simplex minimizer.
//
// Substrate for the MLE baseline (baselines/mle.*): existing multi-source
// localizers minimize the negative log-likelihood over 3K continuous
// parameters, which is exactly what this derivative-free optimizer does.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace radloc {

struct NelderMeadOptions {
  std::size_t max_evaluations = 5000;
  double tolerance = 1e-7;     ///< stop when the simplex f-spread is below this
  double x_tolerance = 1e-6;   ///< ...and its diameter is below this (guards
                               ///< against symmetric stalls around a minimum)
  double initial_step = 1.0;   ///< per-coordinate offset building the simplex
  // Standard coefficients (Nelder & Mead 1965).
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

struct NelderMeadResult {
  std::vector<double> x;        ///< best point found
  double value = 0.0;           ///< f(x)
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Minimizes `f` starting from `x0`. `f` must be callable on any point in
/// R^dim; constraints are the caller's job (penalty or reparameterization).
[[nodiscard]] NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f, std::vector<double> x0,
    const NelderMeadOptions& opts = {});

}  // namespace radloc

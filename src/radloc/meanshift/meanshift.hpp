// Weighted mean-shift mode finding over the particle cloud — Sec. V-D.
//
// The weighted particles define a kernel density estimate
//   L_P(x) = sum_i w_i * phi_H(x - p_i),
// a mixture whose modes are the source-parameter estimates. Mean-shift
// ascends L_P from many seeds; converged points are merged into modes and
// the number of surviving modes IS the learned source count K.
//
// Feature space: (x, y, log strength). Log-strength makes the 4-1000 uCi
// range scale-free under a single bandwidth (the paper leaves the strength
// bandwidth unspecified). The kernel is a diagonal Gaussian truncated at
// 3 sigma spatially, evaluated through a uniform grid index, so one shift
// step costs O(local particles) instead of O(NP). Seeds are independent and
// run in parallel on the thread pool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/geom/grid_index.hpp"

namespace radloc {

/// Kernel profile for the KDE. Gaussian is the paper's choice (Eq. 6);
/// Epanechnikov (truncated parabola, zero beyond 3h) converges in fewer
/// shifts and is exposed for the kernel ablation bench.
enum class KernelType { kGaussian, kEpanechnikov };

struct MeanShiftConfig {
  KernelType kernel = KernelType::kGaussian;
  double bandwidth_xy = 5.0;        ///< spatial kernel bandwidth h (length units)
  double bandwidth_log_strength = 0.75;  ///< kernel bandwidth in log-strength
  double convergence_eps = 1e-3;    ///< stop when the shift moves less than this
  std::size_t max_iterations = 200;
  std::size_t max_seeds = 64;       ///< cap on mean-shift starting points
  double seed_separation = 5.0;     ///< min spatial distance between seeds
  double merge_radius = 6.0;        ///< modes closer than this merge (spatially)
  /// Minimum fraction of total particle weight a mode's basin must hold to
  /// be reported as a source. The particle masses of different clusters can
  /// be very uneven (clusters absorb the mass of every fusion disk that
  /// touches them), so this stays low; downstream, the localizer's
  /// detection log-LR test does the real noise filtering.
  double min_support = 0.02;
  /// Optional concentration gate: minimum fraction of a mode's basin mass
  /// lying within one spatial bandwidth of the mode. A converged source
  /// cluster (sigma ~ resampling jitter) scores ~0.7+; a locally uniform
  /// cloud scores ~ (h / basin radius)^2 ~ 0.25. Off (0) by default — kept
  /// as an ablation knob.
  double min_tightness = 0.0;
};

/// One recovered mode of L_P: a source estimate.
struct SourceEstimate {
  Point2 pos;
  double strength = 0.0;  ///< uCi (exp of the log-strength coordinate)
  double support = 0.0;   ///< fraction of total particle weight in the basin
};

class MeanShiftEstimator {
 public:
  /// `bounds` must cover all particle positions; `pool` is borrowed and must
  /// outlive the estimator.
  MeanShiftEstimator(const AreaBounds& bounds, MeanShiftConfig cfg, ThreadPool& pool);

  /// Finds all modes of the weighted particle KDE. Spans must have equal
  /// length; weights must be non-negative. Returns estimates sorted by
  /// descending support. Empty input or all-zero weights yield no estimates.
  [[nodiscard]] std::vector<SourceEstimate> estimate(std::span<const Point2> positions,
                                                     std::span<const double> strengths,
                                                     std::span<const double> weights);

  [[nodiscard]] const MeanShiftConfig& config() const { return cfg_; }

  /// The deterministic stratified seed draw estimate() starts from: particle
  /// indices sampled proportionally to weight, thinned by seed_separation,
  /// never containing a duplicate index (a duplicate would burn one of the
  /// max_seeds ascents re-climbing the same start). Exposed for tests and
  /// diagnostics; requires equal-length spans, weights clamped at >= 0.
  [[nodiscard]] std::vector<std::uint32_t> select_seeds(std::span<const Point2> positions,
                                                        std::span<const double> weights) const;

 private:
  struct Mode {
    Point2 pos;
    double log_strength = 0.0;
    double density = 0.0;
  };

  /// Runs the mean-shift iteration x <- M(x) (Eq. 7) from one seed.
  /// `log_strengths` holds log(strengths[i]), precomputed by estimate().
  [[nodiscard]] Mode ascend(std::span<const Point2> positions,
                            std::span<const double> log_strengths,
                            std::span<const double> weights, Point2 seed_pos,
                            double seed_log_strength) const;

  MeanShiftConfig cfg_;
  ThreadPool* pool_;
  GridIndex grid_;
  std::vector<double> log_strengths_;  ///< estimate() scratch (see ascend)
};

}  // namespace radloc

#include "radloc/meanshift/meanshift.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "radloc/common/math.hpp"
#include "radloc/simd/aligned.hpp"
#include "radloc/simd/simd.hpp"

namespace radloc {

namespace {

// Per-thread gather buffers for the batched profile evaluation: ascents for
// different seeds run concurrently on the pool, and one ascent performs up
// to max_iterations gathers — thread_local keeps them allocation-free at
// steady state without racing.
struct AscendScratch {
  simd::AVector<double> x;
  simd::AVector<double> y;
  simd::AVector<double> ls;
  simd::AVector<double> w;
  simd::AVector<double> profile;
};

AscendScratch& ascend_scratch() {
  thread_local AscendScratch scratch;
  return scratch;
}

}  // namespace

MeanShiftEstimator::MeanShiftEstimator(const AreaBounds& bounds, MeanShiftConfig cfg,
                                       ThreadPool& pool)
    : cfg_(cfg), pool_(&pool), grid_(bounds, std::max(cfg.bandwidth_xy, 1.0)) {
  require(cfg_.bandwidth_xy > 0.0, "spatial bandwidth must be positive");
  require(cfg_.bandwidth_log_strength > 0.0, "strength bandwidth must be positive");
  require(cfg_.max_seeds > 0, "need at least one seed");
  require(cfg_.min_support >= 0.0 && cfg_.min_support <= 1.0, "min_support must be in [0,1]");
}

std::vector<std::uint32_t> MeanShiftEstimator::select_seeds(
    std::span<const Point2> positions, std::span<const double> weights) const {
  // Deterministic stratified sampling proportional to weight: draw several
  // strata per requested seed, then thin by spatial separation. Mass-heavy
  // regions receive seeds in proportion to their mass, so every cluster
  // whose basin holds >~ 1/(4*max_seeds) of the weight is seeded. (Ranking
  // particles by weight would be wrong: local resampling leaves weights
  // near-uniform and the ranking would sort floating-point noise.)
  double total = 0.0;
  for (const double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return {};

  const std::size_t strata = std::max<std::size_t>(4 * cfg_.max_seeds, 256);
  std::vector<std::uint32_t> seeds;
  const double sep2 = square(cfg_.seed_separation);
  const double step = total / static_cast<double>(strata);

  double cumulative = 0.0;
  std::size_t i = 0;
  for (std::size_t j = 0; j < strata && seeds.size() < cfg_.max_seeds; ++j) {
    const double target = (static_cast<double>(j) + 0.5) * step;
    while (i + 1 < weights.size() && cumulative + std::max(weights[i], 0.0) < target) {
      cumulative += std::max(weights[i], 0.0);
      ++i;
    }
    bool far_enough = true;
    for (const auto s : seeds) {
      // The index check matters when seed_separation == 0: 0 < 0 is false,
      // so the distance test alone would admit the same particle once per
      // stratum and burn max_seeds duplicate ascents.
      if (s == static_cast<std::uint32_t>(i) || distance2(positions[i], positions[s]) < sep2) {
        far_enough = false;
        break;
      }
    }
    if (far_enough) seeds.push_back(static_cast<std::uint32_t>(i));
  }
  return seeds;
}

MeanShiftEstimator::Mode MeanShiftEstimator::ascend(std::span<const Point2> positions,
                                                    std::span<const double> log_strengths,
                                                    std::span<const double> weights,
                                                    Point2 seed_pos,
                                                    double seed_log_strength) const {
  const double h2 = square(cfg_.bandwidth_xy);
  const double hs2 = square(cfg_.bandwidth_log_strength);
  const double radius = 3.0 * cfg_.bandwidth_xy;

  Point2 x = seed_pos;
  double s = seed_log_strength;
  double density = 0.0;
  const bool gaussian = cfg_.kernel == KernelType::kGaussian;
  const simd::Kernels& ker = simd::kernels();
  AscendScratch& sc = ascend_scratch();

  for (std::size_t iter = 0; iter < cfg_.max_iterations; ++iter) {
    // Gather the in-radius neighborhood into SoA slices, evaluate the
    // kernel profile k_i = w_i * phi(e_i) as one batch, then reduce in
    // gather order — the same neighbor order and accumulation order as the
    // former per-neighbor loop, so the scalar tier is bit-identical.
    sc.x.clear();
    sc.y.clear();
    sc.ls.clear();
    sc.w.clear();
    grid_.for_each_in_radius(positions, x, radius, [&](std::uint32_t i) {
      const double w = weights[i];
      if (w <= 0.0) return;
      sc.x.push_back(positions[i].x);
      sc.y.push_back(positions[i].y);
      sc.ls.push_back(log_strengths[i]);
      sc.w.push_back(w);
    });
    const std::size_t n = sc.x.size();
    sc.profile.resize(n);
    // Gaussian profile exp(-e), or the Epanechnikov profile 1 - e/4.5
    // (parabola hitting zero at the same 3-sigma truncation edge).
    ker.meanshift_profile(gaussian, x.x, x.y, s, h2, hs2, sc.x.data(), sc.y.data(),
                          sc.ls.data(), sc.w.data(), sc.profile.data(), n);
    Point2 num_pos{0.0, 0.0};
    double num_s = 0.0;
    double denom = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double k = sc.profile[j];
      num_pos.x += k * sc.x[j];
      num_pos.y += k * sc.y[j];
      num_s += k * sc.ls[j];
      denom += k;
    }
    if (denom <= 0.0) return Mode{x, s, 0.0};  // seed stranded in empty space

    const Point2 new_pos = (1.0 / denom) * num_pos;
    const double new_s = num_s / denom;
    const double shift =
        distance(new_pos, x) + cfg_.bandwidth_xy / cfg_.bandwidth_log_strength * std::abs(new_s - s);
    x = new_pos;
    s = new_s;
    density = denom;
    if (shift < cfg_.convergence_eps) break;
  }
  return Mode{x, s, density};
}

std::vector<SourceEstimate> MeanShiftEstimator::estimate(std::span<const Point2> positions,
                                                         std::span<const double> strengths,
                                                         std::span<const double> weights) {
  require(positions.size() == strengths.size() && positions.size() == weights.size(),
          "positions/strengths/weights must have equal length");
  if (positions.empty()) return {};
  const double total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total_weight <= 0.0) return {};

  grid_.rebuild(positions);

  // log(strength) is re-read for every neighbor of every shift step; pay
  // std::log once per particle up front (identical values — same libm call
  // on the same inputs) and hand the ascents a precomputed array.
  log_strengths_.resize(strengths.size());
  for (std::size_t i = 0; i < strengths.size(); ++i) log_strengths_[i] = std::log(strengths[i]);

  const auto seeds = select_seeds(positions, weights);
  std::vector<Mode> modes(seeds.size());
  pool_->for_each_index(seeds.size(), [&](std::size_t k) {
    const auto i = seeds[k];
    modes[k] = ascend(positions, log_strengths_, weights, positions[i], log_strengths_[i]);
  });

  // Merge converged points: keep the densest representative of each cluster.
  std::sort(modes.begin(), modes.end(),
            [](const Mode& a, const Mode& b) { return a.density > b.density; });
  std::vector<Mode> kept;
  const double merge2 = square(cfg_.merge_radius);
  for (const auto& m : modes) {
    if (m.density <= 0.0) continue;
    bool is_new = true;
    for (const auto& k : kept) {
      if (distance2(m.pos, k.pos) < merge2) {
        is_new = false;
        break;
      }
    }
    if (is_new) kept.push_back(m);
  }

  // Basin support: each particle contributes its weight to the nearest mode
  // within the kernel's reach (approximate basin assignment — exact basins
  // would need a full ascent per particle). The O(particles x modes) scan is
  // chunked over the pool with per-chunk accumulators merged serially; chunk
  // boundaries are fixed (not per-thread), so the merged sums are
  // bit-identical at any thread count.
  const double assign_radius2 = square(std::max(cfg_.merge_radius, 2.0 * cfg_.bandwidth_xy));
  const double core_radius2 = square(cfg_.bandwidth_xy);
  std::vector<double> support(kept.size(), 0.0);
  std::vector<double> core(kept.size(), 0.0);
  if (!kept.empty()) {
    constexpr std::size_t kChunk = 2048;
    const std::size_t num_chunks = (positions.size() + kChunk - 1) / kChunk;
    std::vector<std::vector<double>> chunk_support(num_chunks);
    std::vector<std::vector<double>> chunk_core(num_chunks);
    pool_->for_each_index(num_chunks, [&](std::size_t c) {
      auto& sup = chunk_support[c];
      auto& cor = chunk_core[c];
      sup.assign(kept.size(), 0.0);
      cor.assign(kept.size(), 0.0);
      const std::size_t begin = c * kChunk;
      const std::size_t end = std::min(positions.size(), begin + kChunk);
      for (std::size_t i = begin; i < end; ++i) {
        if (weights[i] <= 0.0) continue;
        double best_d2 = assign_radius2;
        std::size_t best = kept.size();
        for (std::size_t k = 0; k < kept.size(); ++k) {
          const double d2 = distance2(positions[i], kept[k].pos);
          if (d2 < best_d2) {
            best_d2 = d2;
            best = k;
          }
        }
        if (best < kept.size()) {
          sup[best] += weights[i];
          if (best_d2 <= core_radius2) cor[best] += weights[i];
        }
      }
    });
    for (std::size_t c = 0; c < num_chunks; ++c) {
      for (std::size_t k = 0; k < kept.size(); ++k) {
        support[k] += chunk_support[c][k];
        core[k] += chunk_core[c][k];
      }
    }
  }

  std::vector<SourceEstimate> out;
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const double frac = support[k] / total_weight;
    if (frac < cfg_.min_support) continue;
    // Tightness separates a converged cluster from a patch of diffuse cloud
    // that happens to clear the mass threshold.
    const double tightness = core[k] / support[k];
    if (tightness < cfg_.min_tightness) continue;
    out.push_back(SourceEstimate{kept[k].pos, std::exp(kept[k].log_strength), frac});
  }
  std::sort(out.begin(), out.end(),
            [](const SourceEstimate& a, const SourceEstimate& b) { return a.support > b.support; });
  return out;
}

}  // namespace radloc

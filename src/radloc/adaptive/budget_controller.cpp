#include "radloc/adaptive/budget_controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "radloc/common/math.hpp"

namespace radloc {

namespace {

/// A bin is occupied when it holds more than this many particles' worth of
/// uniform-share mass. The filter's random-replacement scatter (default 5%)
/// deposits ~0.05 * NP / bins particles per bin — well under this factor for
/// any sane geometry — while a converged cluster bin holds hundreds. Mass-
/// based (not count-based) so the rare heavy-weight straggler still counts.
constexpr double kOccupancyMassFactor = 2.5;

/// The band below which a budget move is "small". Small growth is
/// suppressed (resizing costs a full-population resample; tiny upward
/// corrections are not worth it); small shrinks descend FREELY, because
/// band-suppressing them would stall the occupancy feedback that walks a
/// settled budget down to the floor, and gating them on mode stability
/// would pay for mean-shift at every settled equilibrium above the floor.
/// Only larger-than-band shrinks face the stability gates (see recommend()).
constexpr double kHysteresisFrac = 0.125;

/// Modes below this support fraction are ignored by the stability window.
/// Subset-mass conservation keeps a population of weak persistent clusters
/// alive (every fusion disk's mass stays in its neighborhood), and their
/// count flickers near the mean-shift min_support cutoff; only substantial
/// clusters carry information about whether the posterior has settled.
constexpr double kModeSupportFloor = 0.05;

}  // namespace

BudgetController::BudgetController(const AreaBounds& bounds, const BudgetControllerConfig& cfg)
    : cfg_(cfg), bounds_(bounds) {
  require(cfg_.min_particles > 0 && cfg_.min_particles <= cfg_.max_particles,
          "budget bounds invalid");
  require(std::isfinite(cfg_.bin_size) && cfg_.bin_size > 0.0, "bin size must be positive");
  require(std::isfinite(cfg_.kld_epsilon) && cfg_.kld_epsilon > 0.0, "KLD epsilon invalid");
  require(std::isfinite(cfg_.kld_quantile) && cfg_.kld_quantile > 0.0, "KLD quantile invalid");
  require(cfg_.stability_window > 0, "stability window must be non-zero");
  nx_ = static_cast<std::size_t>(std::ceil(std::max(bounds_.width(), 1e-9) / cfg_.bin_size));
  ny_ = static_cast<std::size_t>(std::ceil(std::max(bounds_.height(), 1e-9) / cfg_.bin_size));
  nx_ = std::max<std::size_t>(nx_, 1);
  ny_ = std::max<std::size_t>(ny_, 1);
  bin_mass_.assign(nx_ * ny_, 0.0);
  touched_.reserve(nx_ * ny_);
}

std::size_t BudgetController::kld_sample_size(std::size_t occupied_bins, double epsilon,
                                              double quantile) {
  if (occupied_bins < 2) return 1;  // zero degrees of freedom
  const double km1 = static_cast<double>(occupied_bins - 1);
  const double a = 2.0 / (9.0 * km1);
  const double b = 1.0 - a + std::sqrt(a) * quantile;
  const double n = km1 / (2.0 * epsilon) * b * b * b;
  return static_cast<std::size_t>(std::ceil(std::max(n, 1.0)));
}

std::size_t BudgetController::count_occupied_bins(std::span<const Point2> positions,
                                                  std::span<const double> weights) {
  for (const auto bin : touched_) bin_mass_[bin] = 0.0;
  touched_.clear();
  double total = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double w = weights[i];
    if (!(w > 0.0)) continue;
    const Point2 p = bounds_.clamp(positions[i]);
    auto bx = static_cast<std::size_t>((p.x - bounds_.min.x) / cfg_.bin_size);
    auto by = static_cast<std::size_t>((p.y - bounds_.min.y) / cfg_.bin_size);
    bx = std::min(bx, nx_ - 1);
    by = std::min(by, ny_ - 1);
    const std::size_t bin = by * nx_ + bx;
    if (bin_mass_[bin] == 0.0) touched_.push_back(static_cast<std::uint32_t>(bin));
    bin_mass_[bin] += w;
    total += w;
  }
  if (total <= 0.0 || positions.empty()) return 0;
  const double threshold = kOccupancyMassFactor * total / static_cast<double>(positions.size());
  std::size_t occupied = 0;
  for (const auto bin : touched_) {
    if (bin_mass_[bin] > threshold) ++occupied;
  }
  return occupied;
}

bool BudgetController::update_mode_window(std::span<const SourceEstimate> modes) {
  strong_modes_.clear();
  for (const auto& m : modes) {
    if (m.support >= kModeSupportFloor) strong_modes_.push_back(m.pos);
  }
  bool stable_step = false;
  const std::size_t count = strong_modes_.size();
  // +/-1 count tolerance: a cluster whose support straddles the floor flips
  // the count every other run without the posterior actually changing.
  if (have_prev_modes_ &&
      (count > prev_strong_count_ ? count - prev_strong_count_ : prev_strong_count_ - count) <=
          1) {
    stable_step = true;
    // Displacement is checked against ALL previous modes (not just strong
    // ones): a cluster that dipped under the floor last run and resurfaced
    // is still the same cluster, not churn.
    for (const auto& m : strong_modes_) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& p : prev_modes_) best = std::min(best, distance(m, p));
      if (!(best <= cfg_.mode_displacement)) {
        stable_step = false;
        break;
      }
    }
    // An empty set matched against an empty set is trivially stable.
  }
  prev_modes_.clear();
  prev_modes_.reserve(modes.size());
  for (const auto& m : modes) prev_modes_.push_back(m.pos);
  prev_strong_count_ = count;
  have_prev_modes_ = true;
  stable_runs_ = stable_step ? stable_runs_ + 1 : 0;
  unstable_runs_ = stable_step ? 0 : unstable_runs_ + 1;
  diag_.mode_count = count;
  return stable_runs_ >= cfg_.stability_window;
}

std::size_t BudgetController::recommend(std::span<const Point2> positions,
                                        std::span<const double> weights, double ess_fraction,
                                        const std::function<std::vector<SourceEstimate>()>& modes,
                                        std::size_t current) {
  const std::size_t occupied = count_occupied_bins(positions, weights);
  const std::size_t kld_target = kld_sample_size(occupied, cfg_.kld_epsilon, cfg_.kld_quantile);

  auto clamp_budget = [&](std::size_t n) {
    return std::clamp(n, cfg_.min_particles, cfg_.max_particles);
  };
  const auto band = static_cast<std::size_t>(static_cast<double>(current) * kHysteresisFrac);

  std::size_t target = clamp_budget(kld_target);
  if (ess_fraction < cfg_.ess_floor) {
    // Degeneracy alarm: multiplicative growth toward the cap.
    target = std::max(target, clamp_budget(current + current / 2));
    ++diag_.ess_alarm_events;
  }

  // Shrink policy is two-speed. A shrink WITHIN the band descends freely
  // (see below): each step drops at most 12.5% of the population, is cheap,
  // and follows the KLD occupancy estimate downward — fewer particles
  // scatter into fewer occupied bins, so free descent and the occupancy
  // feedback walk an easy scenario's budget to its KLD equilibrium (the
  // floor, for a converged posterior), while a hard scenario's spread
  // posterior keeps the equilibrium high and stops the descent by itself.
  // Only a LARGER-than-band shrink (including one pinning the floor) is a
  // collapse risk and must pass the persistence + mode-stability gates.
  const bool pins_floor = target == cfg_.min_particles && target < current;
  const bool wants_shrink = target < current && (pins_floor || target + band <= current);
  shrink_pressure_ = wants_shrink ? shrink_pressure_ + 1 : 0;
  bool stable = false;
  if (wants_shrink && shrink_pressure_ < 2) {
    // Occupancy is a noisy estimate: an isolated shrink proposal near the
    // settle point is usually a downward blip, and evaluating it would pay
    // for mean-shift every few runs forever. Require the pressure to
    // persist for two consecutive runs (a real descent proposes shrinking
    // every run, so this costs one interval of latency once).
    target = current;
  } else if (wants_shrink) {
    // Only a persistent shrink consults the (comparatively expensive)
    // mean-shift stability signal; growth and holds never invoke the
    // callback, so a settled budget costs one O(NP) binning pass per run.
    stable = update_mode_window(modes());
    if (stable) {
      // Rate-limited shrink: at most halve per run.
      target = std::max(target, clamp_budget(current - current / 2));
    } else {
      // Never shrink while the mode set is still churning, and once the
      // churn has persisted for a full window, grow: strong modes that keep
      // moving or appearing mean the posterior is under-resolved at the
      // current budget (sources still separating, or drifting behind an
      // unmodeled obstacle).
      target = current;
      if (unstable_runs_ >= cfg_.stability_window) {
        target = clamp_budget(current + current / 2);
      }
    }
  } else if (target > current && target < current + band) {
    // Growth inside the hysteresis band: not worth a full-population
    // resample (the ESS alarm and churn-grow bypass the band by
    // construction — both jump 1.5x). An in-band SHRINK deliberately falls
    // through untouched: free descent, as motivated above.
    target = current;
  }
  target = clamp_budget(target);

  ++diag_.controller_runs;
  if (target > current) ++diag_.grow_events;
  if (target < current) ++diag_.shrink_events;
  diag_.current_budget = target;
  diag_.occupied_bins = occupied;
  diag_.kld_target = kld_target;
  diag_.ess_fraction = ess_fraction;
  diag_.modes_stable = stable;
  return target;
}

}  // namespace radloc

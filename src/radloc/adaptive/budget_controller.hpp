// KLD-sampling particle-budget controller (the ROADMAP's "adaptive budget"
// item; ISSUE 8 tentpole).
//
// The paper fixes NP for every scenario, so Table I pays the worst-case
// particle count even after the posterior has collapsed to a few tight
// modes. This controller resizes the budget between configured bounds from
// three signals, all cheap and all deterministic:
//
//   1. Occupied-bin complexity. Particle positions are binned on a uniform
//      grid over the surveillance area (pitch derived from the fusion range,
//      like the filter's spatial index). The KLD-sampling bound (Fox 2003)
//      converts the occupied-bin count k into the number of particles needed
//      to keep the sample-vs-binned-posterior K-L divergence under epsilon
//      with confidence z. A bin counts as occupied only when it holds
//      meaningfully more than its uniform share of mass — the filter's 5%
//      random-replacement scatter would otherwise keep every bin nominally
//      occupied forever and the budget could never shrink.
//   2. Effective sample size. A global ESS fraction under the configured
//      floor is a degeneracy alarm: grow multiplicatively toward the cap
//      regardless of the bin count.
//   3. Mean-shift mode stability. Only modes holding >= 5% of the total
//      particle mass count (weak persistent clusters flicker near the
//      mean-shift min_support cutoff and carry no settling signal).
//      Shrinking is allowed only after the strong-mode set has been stable
//      (count within +/-1, displacement bounded against the previous run's
//      full mode list) for a full window of controller runs; churn that
//      persists for a full window instead GROWS the budget — strong modes
//      that keep moving mean the posterior is under-resolved at the current
//      count (sources still separating, or drifting behind an unmodeled
//      obstacle). The mean-shift signal is LAZY: it is only computed when
//      the cheap signals propose a shrink, so a settled budget's controller
//      run is a single O(NP) binning pass.
//
// Shrink policy is two-speed: shrinks within 12.5% of the current budget
// descend freely (cheap, low-risk steps that follow the KLD occupancy
// estimate to its equilibrium — the floor on an easy scenario, a high
// plateau on a hard one), while larger shrinks must persist for two
// consecutive runs and pass the mode-stability window, and are rate-limited
// to at most halving per run. Growth within +12.5% is suppressed. The
// controller holds no reference to the filter: the caller feeds it particle
// views and raw mean-shift modes and applies the returned budget itself
// (see MultiSourceLocalizer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/meanshift/meanshift.hpp"

namespace radloc {

struct BudgetControllerConfig {
  std::size_t min_particles = 500;
  std::size_t max_particles = 4000;
  double kld_epsilon = 0.05;
  double kld_quantile = 2.33;
  double bin_size = 7.0;  ///< occupancy-grid pitch; must be positive
  std::size_t stability_window = 3;
  double mode_displacement = 5.0;
  double ess_floor = 0.25;
};

/// Telemetry snapshot of the last controller run (core/localizer.hpp
/// surfaces it; service/session_manager folds budget+ESS into SessionStats).
struct BudgetDiagnostics {
  std::size_t current_budget = 0;   ///< particle count after the last apply
  std::size_t occupied_bins = 0;    ///< k of the last run
  std::size_t kld_target = 0;       ///< raw KLD bound before policy/clamps
  double ess_fraction = 1.0;        ///< global ESS / budget at the last run
  /// Strong (support >= 5%) modes at the last run that EVALUATED stability;
  /// holds and grows skip the mean-shift signal, leaving these two stale.
  std::size_t mode_count = 0;
  bool modes_stable = false;        ///< stability window satisfied at that run
  std::uint64_t controller_runs = 0;
  std::uint64_t grow_events = 0;    ///< runs whose applied budget grew
  std::uint64_t shrink_events = 0;  ///< runs whose applied budget shrank
  /// Runs where the ESS fraction sat under the configured floor — the
  /// degeneracy alarm fired (multiplicative growth proposed), whether or
  /// not the clamp let the budget actually move.
  std::uint64_t ess_alarm_events = 0;
};

class BudgetController {
 public:
  /// `bounds` is the surveillance area the occupancy grid tiles. cfg must
  /// satisfy the same constraints FusionParticleFilter enforces on
  /// FilterConfig (positive bounds/epsilon/quantile, min <= max); bin_size
  /// must be positive (the caller resolves the 0 = derive default).
  BudgetController(const AreaBounds& bounds, const BudgetControllerConfig& cfg);

  /// One controller run: bins the particles, evaluates the KLD bound, the
  /// ESS floor and (lazily) mode stability, and returns the budget the
  /// filter should adopt (already clamped to [min, max], rate-limited and
  /// hysteresis-filtered against `current`). `positions`/`weights` are the
  /// filter's SoA views, `ess_fraction` = filter ESS / current. `modes` must
  /// produce the RAW mean-shift estimate (pre detection gating — the
  /// stability signal must see weak modes too); it is invoked ONLY when the
  /// cheap signals propose a shrink, so a settled or growing budget never
  /// pays for mean-shift. Deterministic: same inputs, same answer.
  [[nodiscard]] std::size_t recommend(std::span<const Point2> positions,
                                      std::span<const double> weights, double ess_fraction,
                                      const std::function<std::vector<SourceEstimate>()>& modes,
                                      std::size_t current);

  [[nodiscard]] const BudgetDiagnostics& diagnostics() const { return diag_; }

  /// The KLD-sampling bound: particles needed so the K-L divergence between
  /// the sample distribution and the true posterior binned over k occupied
  /// bins stays below epsilon with standard-normal confidence quantile z.
  /// k <= 1 has zero degrees of freedom: returns 1.
  [[nodiscard]] static std::size_t kld_sample_size(std::size_t occupied_bins, double epsilon,
                                                   double quantile);

 private:
  [[nodiscard]] std::size_t count_occupied_bins(std::span<const Point2> positions,
                                                std::span<const double> weights);
  [[nodiscard]] bool update_mode_window(std::span<const SourceEstimate> modes);

  BudgetControllerConfig cfg_;
  AreaBounds bounds_;
  std::size_t nx_ = 0, ny_ = 0;
  std::vector<double> bin_mass_;          ///< nx*ny accumulator, cleared via touched_
  std::vector<std::uint32_t> touched_;    ///< bins written this run
  std::vector<Point2> prev_modes_;        ///< ALL mode positions of the previous run
  std::vector<Point2> strong_modes_;      ///< scratch: modes above the support floor
  std::size_t prev_strong_count_ = 0;     ///< strong-mode count of the previous run
  bool have_prev_modes_ = false;
  std::size_t stable_runs_ = 0;           ///< consecutive stable comparisons
  std::size_t unstable_runs_ = 0;         ///< consecutive churning comparisons
  std::size_t shrink_pressure_ = 0;       ///< consecutive runs proposing a shrink
  BudgetDiagnostics diag_;
};

}  // namespace radloc

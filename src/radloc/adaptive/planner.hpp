// Adaptive sensing: which sensor should report next?
//
// Energy-constrained networks cannot have every sensor stream constantly.
// Following the information-driven search of Ristic et al. [18] (the
// paper's related work), this planner scores each candidate sensor by the
// information its next reading is expected to add to the CURRENT particle
// posterior, and schedules the most informative ones.
//
// Score: the posterior predictive rate at sensor i is lambda(p) over
// particles p. A reading only discriminates when different plausible
// hypotheses predict different rates, so the score is the weighted variance
// of the predicted rate normalized by its mean (the Fano factor of the
// hypothesis spread):
//   score_i = Var_w[lambda_i(p)] / (1 + E_w[lambda_i(p)]).
// Sensors whose reading is already determined (everyone agrees) score ~0;
// sensors that would split the posterior score high.
#pragma once

#include <cstddef>
#include <vector>

#include "radloc/filter/particle_filter.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct SensorScore {
  SensorId sensor = 0;
  double score = 0.0;          ///< expected informativeness (>= 0)
  double predicted_cpm = 0.0;  ///< posterior-mean predicted reading
};

struct AdaptivePlannerConfig {
  /// Evaluate the predictive spread over at most this many particles
  /// (deterministically strided) — the score is a ranking heuristic, not an
  /// estimate that needs every particle.
  std::size_t max_particles_evaluated = 1024;
};

class AdaptiveSensingPlanner {
 public:
  explicit AdaptiveSensingPlanner(AdaptivePlannerConfig cfg = {}) : cfg_(cfg) {}

  /// Scores every sensor of the filter against its current particle cloud.
  /// Results are sorted by descending score.
  [[nodiscard]] std::vector<SensorScore> score_sensors(const FusionParticleFilter& filter) const;

  /// The `budget` most informative sensors to poll this round.
  [[nodiscard]] std::vector<SensorId> select(const FusionParticleFilter& filter,
                                             std::size_t budget) const;

 private:
  AdaptivePlannerConfig cfg_;
};

}  // namespace radloc

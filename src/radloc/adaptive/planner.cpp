#include "radloc/adaptive/planner.hpp"

#include <algorithm>

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"

namespace radloc {

std::vector<SensorScore> AdaptiveSensingPlanner::score_sensors(
    const FusionParticleFilter& filter) const {
  const auto positions = filter.positions();
  const auto strengths = filter.strengths();
  const auto weights = filter.weights();
  const auto sensors = filter.sensors();
  const double fusion_range = filter.config().fusion_range;
  const bool obstacles = filter.config().use_known_obstacles;
  const Environment& env = filter.environment();

  const std::size_t stride =
      std::max<std::size_t>(1, positions.size() / cfg_.max_particles_evaluated);

  std::vector<SensorScore> scores;
  scores.reserve(sensors.size());
  for (const Sensor& s : sensors) {
    // Weighted mean/variance of the predicted rate over the particles this
    // sensor can actually influence (its fusion disk).
    double w_total = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    for (std::size_t i = 0; i < positions.size(); i += stride) {
      if (distance(positions[i], s.pos) > fusion_range) continue;
      const double w = weights[i];
      if (w <= 0.0) continue;
      const Source hyp{positions[i], strengths[i]};
      const double rate = obstacles
                              ? expected_cpm_single(s.pos, hyp, env, s.response)
                              : expected_cpm_single_free_space(s.pos, hyp, s.response);
      // West's incremental weighted variance.
      w_total += w;
      const double delta = rate - mean;
      mean += (w / w_total) * delta;
      m2 += w * delta * (rate - mean);
    }
    SensorScore sc;
    sc.sensor = s.id;
    if (w_total > 0.0) {
      const double variance = m2 / w_total;
      sc.predicted_cpm = mean;
      sc.score = variance / (1.0 + mean);
    }
    scores.push_back(sc);
  }
  std::sort(scores.begin(), scores.end(),
            [](const SensorScore& a, const SensorScore& b) { return a.score > b.score; });
  return scores;
}

std::vector<SensorId> AdaptiveSensingPlanner::select(const FusionParticleFilter& filter,
                                                     std::size_t budget) const {
  const auto scores = score_sensors(filter);
  std::vector<SensorId> out;
  out.reserve(std::min(budget, scores.size()));
  for (std::size_t i = 0; i < scores.size() && out.size() < budget; ++i) {
    out.push_back(scores[i].sensor);
  }
  return out;
}

}  // namespace radloc

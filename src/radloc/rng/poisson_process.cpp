#include "radloc/rng/poisson_process.hpp"

#include "radloc/common/math.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

std::vector<Point2> sample_poisson_process(Rng& rng, const AreaBounds& area, double intensity) {
  require(intensity >= 0.0, "poisson process intensity must be non-negative");
  const auto n = poisson(rng, intensity * area.area());
  return sample_binomial_process(rng, area, static_cast<std::size_t>(n));
}

std::vector<Point2> sample_binomial_process(Rng& rng, const AreaBounds& area, std::size_t n) {
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back(uniform_point(rng, area));
  return pts;
}

std::vector<Point2> sample_separated_points(Rng& rng, const AreaBounds& area, std::size_t n,
                                            double min_distance, std::size_t max_attempts) {
  std::vector<Point2> pts;
  pts.reserve(n);
  const double min_d2 = square(min_distance);
  for (std::size_t i = 0; i < n; ++i) {
    Point2 candidate{};
    bool placed = false;
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      candidate = uniform_point(rng, area);
      bool ok = true;
      for (const auto& p : pts) {
        if (distance2(p, candidate) < min_d2) {
          ok = false;
          break;
        }
      }
      if (ok) {
        placed = true;
        break;
      }
    }
    // Fall back to the last candidate if separation is infeasible; callers
    // asking for impossible densities still get n points.
    (void)placed;
    pts.push_back(candidate);
  }
  return pts;
}

}  // namespace radloc

#include "radloc/rng/distributions.hpp"

#include <cmath>

#include "radloc/common/math.hpp"

namespace radloc {

double uniform01(Rng& rng) {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double uniform(Rng& rng, double lo, double hi) { return lo + (hi - lo) * uniform01(rng); }

std::uint64_t uniform_index(Rng& rng, std::uint64_t n) {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = rng();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Point2 uniform_point(Rng& rng, const AreaBounds& area) {
  return Point2{uniform(rng, area.min.x, area.max.x), uniform(rng, area.min.y, area.max.y)};
}

double normal(Rng& rng, double mean, double stddev) {
  double u, v, s;
  do {
    u = 2.0 * uniform01(rng) - 1.0;
    v = 2.0 * uniform01(rng) - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

double exponential(Rng& rng, double lambda) {
  return -std::log(1.0 - uniform01(rng)) / lambda;
}

namespace {

std::uint64_t poisson_knuth(Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform01(rng);
  } while (p > limit);
  return k - 1;
}

// PTRS: W. Hoermann, "The transformed rejection method for generating Poisson
// random variables" (1993). Valid for lambda >= 10; we use it from 30 up.
std::uint64_t poisson_ptrs(Rng& rng, double lambda) {
  const double log_lambda = std::log(lambda);
  const double b = 0.931 + 2.53 * std::sqrt(lambda);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);

  for (;;) {
    const double u = uniform01(rng) - 0.5;
    const double v = uniform01(rng);
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * log_lambda - lambda - log_factorial(k)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace

std::uint64_t poisson(Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) return poisson_knuth(rng, lambda);
  return poisson_ptrs(rng, lambda);
}

}  // namespace radloc

// Deterministic, cross-platform random number engine.
//
// radloc's experiments must be reproducible bit-for-bit across standard
// libraries, so we implement our own engine (xoshiro256++) and our own
// distributions instead of relying on implementation-defined std::
// distribution algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace radloc {

/// SplitMix64 — used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Deterministically derives an independent child engine; used to give
  /// each trial / each subsystem its own stream.
  [[nodiscard]] Xoshiro256 split() { return Xoshiro256((*this)() ^ 0x6a09e667f3bcc909ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

using Rng = Xoshiro256;

}  // namespace radloc

// Spatial Poisson point process — used for random sensor placement
// (Scenario C of the paper) and for randomized source placement.
#pragma once

#include <cstddef>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/rng/rng.hpp"

namespace radloc {

/// Samples a homogeneous Poisson point process with the given intensity
/// (expected points per unit area) over `area`. The number of points is
/// Poisson(intensity * area), positions i.i.d. uniform.
[[nodiscard]] std::vector<Point2> sample_poisson_process(Rng& rng, const AreaBounds& area,
                                                         double intensity);

/// Samples a Poisson point process conditioned on producing exactly `n`
/// points (a binomial point process): n i.i.d. uniform points. This matches
/// the paper's "195 sensors distributed according to a Poisson point
/// process" where the count is fixed by the experiment.
[[nodiscard]] std::vector<Point2> sample_binomial_process(Rng& rng, const AreaBounds& area,
                                                          std::size_t n);

/// Samples `n` points i.i.d. uniform subject to a minimum pairwise distance
/// (simple dart throwing; gives up after `max_attempts` rejections per point
/// and falls back to unconstrained placement). Used to place well-separated
/// sources in randomized experiments.
[[nodiscard]] std::vector<Point2> sample_separated_points(Rng& rng, const AreaBounds& area,
                                                          std::size_t n, double min_distance,
                                                          std::size_t max_attempts = 1000);

}  // namespace radloc

// Hand-rolled distributions over the radloc engine.
//
// Every sampler is a free function taking the engine by reference; all are
// deterministic given the engine state (no thread-local caches), which keeps
// multi-trial experiments reproducible.
#pragma once

#include <cstdint>

#include "radloc/common/types.hpp"
#include "radloc/rng/rng.hpp"

namespace radloc {

/// Uniform double in [0, 1).
[[nodiscard]] double uniform01(Rng& rng);

/// Uniform double in [lo, hi). Precondition: lo <= hi.
[[nodiscard]] double uniform(Rng& rng, double lo, double hi);

/// Uniform integer in [0, n). Precondition: n > 0. Uses Lemire rejection to
/// avoid modulo bias.
[[nodiscard]] std::uint64_t uniform_index(Rng& rng, std::uint64_t n);

/// Uniform point inside an axis-aligned area.
[[nodiscard]] Point2 uniform_point(Rng& rng, const AreaBounds& area);

/// Standard normal via Marsaglia polar method (no state between calls: the
/// spare deviate is discarded for determinism under interleaving).
[[nodiscard]] double normal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Exponential with rate lambda (> 0).
[[nodiscard]] double exponential(Rng& rng, double lambda);

/// Poisson(lambda) sample. Knuth multiplication for lambda < 30, otherwise
/// PTRS transformed rejection (Hoermann 1993); exact for all lambda >= 0.
[[nodiscard]] std::uint64_t poisson(Rng& rng, double lambda);

}  // namespace radloc

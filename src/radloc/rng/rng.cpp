// rng.hpp is header-only; this TU exists so the module has a home for future
// out-of-line engine code and to anchor the library archive member.
#include "radloc/rng/rng.hpp"

namespace radloc {
static_assert(Xoshiro256::min() == 0);
}  // namespace radloc

#include "radloc/geom/intersect.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace radloc {

namespace {
constexpr double kEps = 1e-12;
}

std::optional<double> segment_intersection_param(const Segment& s1, const Segment& s2) {
  const Vec2 d1 = s1.b - s1.a;
  const Vec2 d2 = s2.b - s2.a;
  const double denom = cross(d1, d2);
  if (std::abs(denom) < kEps) return std::nullopt;  // parallel or collinear
  const Vec2 w = s2.a - s1.a;
  const double t = cross(w, d2) / denom;
  const double u = cross(w, d1) / denom;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps) return std::nullopt;
  return std::clamp(t, 0.0, 1.0);
}

bool aabb_overlaps_segment(const AreaBounds& box, const Segment& seg) {
  const double lo_x = std::min(seg.a.x, seg.b.x);
  const double hi_x = std::max(seg.a.x, seg.b.x);
  const double lo_y = std::min(seg.a.y, seg.b.y);
  const double hi_y = std::max(seg.a.y, seg.b.y);
  return lo_x <= box.max.x && hi_x >= box.min.x && lo_y <= box.max.y && hi_y >= box.min.y;
}

double chord_length(const Segment& seg, const Polygon& poly) {
  if (!aabb_overlaps_segment(poly.aabb(), seg)) return 0.0;

  // Collect the crossing parameters along the segment, plus the endpoints,
  // then classify each sub-interval by its midpoint.
  std::vector<double> ts;
  ts.reserve(poly.size() + 2);
  ts.push_back(0.0);
  ts.push_back(1.0);
  for (std::size_t i = 0; i < poly.size(); ++i) {
    if (const auto t = segment_intersection_param(seg, poly.edge(i))) ts.push_back(*t);
  }
  std::sort(ts.begin(), ts.end());

  const double seg_len = seg.length();
  double inside_len = 0.0;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    const double t0 = ts[i];
    const double t1 = ts[i + 1];
    if (t1 - t0 < kEps) continue;
    if (poly.contains(seg.at(0.5 * (t0 + t1)))) inside_len += (t1 - t0) * seg_len;
  }
  return inside_len;
}

}  // namespace radloc

#include "radloc/geom/intersect.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace radloc {

namespace {
constexpr double kEps = 1e-12;

// Crossing parameters of typical obstacle polygons (walls, L/U shapes,
// <=32-gon pillars) fit on the stack; chord_length is called per particle
// per obstacle in the weight-update hot path, so a heap allocation per call
// is measurable.
constexpr std::size_t kStackParams = 64;

double classify_intervals(const Segment& seg, const Polygon& poly, double* ts, std::size_t n) {
  std::sort(ts, ts + n);
  double inside_frac = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double t0 = ts[i];
    const double t1 = ts[i + 1];
    if (t1 - t0 < kEps) continue;
    if (poly.contains(seg.at(0.5 * (t0 + t1)))) inside_frac += t1 - t0;
  }
  // Defer the sqrt in length() until an inside interval actually exists —
  // most segments that reach interval classification still miss the polygon.
  return inside_frac > 0.0 ? inside_frac * seg.length() : 0.0;
}

}  // namespace

std::optional<double> segment_intersection_param(const Segment& s1, const Segment& s2) {
  const Vec2 d1 = s1.b - s1.a;
  const Vec2 d2 = s2.b - s2.a;
  const double denom = cross(d1, d2);
  if (std::abs(denom) < kEps) return std::nullopt;  // parallel or collinear
  const Vec2 w = s2.a - s1.a;
  // Accept iff t = tn/denom and u = un/denom lie in [-kEps, 1 + kEps]; the
  // bounds are checked on the numerators (scaled by |denom|) so the common
  // no-intersection case pays no division.
  const double tn = cross(w, d2);
  const double un = cross(w, d1);
  const double tol = kEps * std::abs(denom);
  if (denom > 0.0) {
    if (tn < -tol || tn > denom + tol || un < -tol || un > denom + tol) return std::nullopt;
  } else {
    if (tn > tol || tn < denom - tol || un > tol || un < denom - tol) return std::nullopt;
  }
  return std::clamp(tn / denom, 0.0, 1.0);
}

bool aabb_overlaps_segment(const AreaBounds& box, const Segment& seg) {
  const double lo_x = std::min(seg.a.x, seg.b.x);
  const double hi_x = std::max(seg.a.x, seg.b.x);
  const double lo_y = std::min(seg.a.y, seg.b.y);
  const double hi_y = std::max(seg.a.y, seg.b.y);
  return lo_x <= box.max.x && hi_x >= box.min.x && lo_y <= box.max.y && hi_y >= box.min.y;
}

double chord_length(const Segment& seg, const Polygon& poly) {
  if (!aabb_overlaps_segment(poly.aabb(), seg)) return 0.0;

  // Rectilinear polygons (all paper obstacle shapes) decompose into disjoint
  // axis-aligned rectangles; the chord is then the sum of per-rectangle slab
  // clips — no crossing sweep, no sort, no containment walks.
  const auto& rects = poly.slab_rects();
  if (!rects.empty()) {
    const double ax = seg.a.x;
    const double ay = seg.a.y;
    const double dx = seg.b.x - ax;
    const double dy = seg.b.y - ay;
    const double inv_dx = 1.0 / dx;  // +-inf when dx == 0; guarded below
    const double inv_dy = 1.0 / dy;
    double frac = 0.0;
    for (const AreaBounds& r : rects) {
      double t0 = 0.0;
      double t1 = 1.0;
      if (dx == 0.0) {
        if (ax < r.min.x || ax > r.max.x) continue;
      } else {
        const double ta = (r.min.x - ax) * inv_dx;
        const double tb = (r.max.x - ax) * inv_dx;
        t0 = std::max(t0, std::min(ta, tb));
        t1 = std::min(t1, std::max(ta, tb));
      }
      if (dy == 0.0) {
        if (ay < r.min.y || ay > r.max.y) continue;
      } else {
        const double ta = (r.min.y - ay) * inv_dy;
        const double tb = (r.max.y - ay) * inv_dy;
        t0 = std::max(t0, std::min(ta, tb));
        t1 = std::min(t1, std::max(ta, tb));
      }
      if (t1 > t0) frac += t1 - t0;
    }
    return frac > 0.0 ? frac * seg.length() : 0.0;
  }

  const double lo_x = std::min(seg.a.x, seg.b.x);
  const double hi_x = std::max(seg.a.x, seg.b.x);
  const double lo_y = std::min(seg.a.y, seg.b.y);
  const double hi_y = std::max(seg.a.y, seg.b.y);

  // Fast path: one pass over the edges collects the crossing parameters of
  // `seg` with the boundary (AABB-prefiltered per edge) and, in the same
  // loop, runs the even-odd ray test for seg.a. Each transversal crossing
  // flips insideness, so when the crossings are clean (pairwise distinct,
  // away from the segment endpoints) the intervals classify by alternation —
  // no per-midpoint containment walks.
  if (poly.size() + 2 <= kStackParams) {
    const auto& vs = poly.vertices();
    const std::size_t n_verts = vs.size();
    const Point2 a = seg.a;
    const Vec2 d1 = seg.b - seg.a;  // loop-invariant segment direction
    std::array<double, kStackParams> ts;
    std::size_t n_cross = 0;
    bool parity = false;
    for (std::size_t i = 0, j = n_verts - 1; i < n_verts; j = i++) {
      const Point2& vi = vs[i];
      const Point2& vj = vs[j];
      const double dy = vi.y - vj.y;
      // Even-odd ray test for seg.a, branchless: flip iff the edge straddles
      // a.y and a is left of the crossing ((rhs - lhs) * dy > 0 encodes the
      // divided comparison for either sign of dy; multiplying only affects
      // the sign, never the outcome).
      const bool straddles = (vi.y > a.y) != (vj.y > a.y);
      const double lhs = (a.x - vj.x) * dy;
      const double rhs = (a.y - vj.y) * (vi.x - vj.x);
      parity = parity != (straddles & ((rhs - lhs) * dy > 0.0));
      // segment_intersection_param(seg, edge vj->vi), computed without
      // data-dependent branches: normalizing by the sign of denom (exact)
      // folds the two comparison directions into one, and the accept branch
      // below is the only one left — rarely taken, so well predicted.
      const Vec2 d2 = vi - vj;
      const double denom = cross(d1, d2);
      const Vec2 w = vj - a;
      const double s = denom > 0.0 ? 1.0 : -1.0;
      const double sd = s * denom;  // |denom|
      const double st = s * cross(w, d2);
      const double su = s * cross(w, d1);
      const double tol = kEps * sd;
      if (sd >= kEps && st >= -tol && st <= sd + tol && su >= -tol && su <= sd + tol) {
        ts[n_cross++] = std::clamp(st / sd, 0.0, 1.0);
      }
    }
    const bool a_inside = parity;

    if (n_cross == 0) return a_inside ? seg.length() : 0.0;
    std::sort(ts.data(), ts.data() + n_cross);

    // Touching a vertex, grazing an edge, or starting/ending on the boundary
    // produces coincident or endpoint crossings that break the alternation
    // argument — classify those by interval midpoints instead.
    constexpr double kSafe = 1e-9;
    bool degenerate = ts[0] < kSafe || ts[n_cross - 1] > 1.0 - kSafe;
    for (std::size_t i = 0; i + 1 < n_cross && !degenerate; ++i) {
      if (ts[i + 1] - ts[i] < kSafe) degenerate = true;
    }
    if (!degenerate) {
      double inside_frac = 0.0;
      bool inside = a_inside;
      double prev = 0.0;
      for (std::size_t i = 0; i < n_cross; ++i) {
        if (inside) inside_frac += ts[i] - prev;
        prev = ts[i];
        inside = !inside;
      }
      if (inside) inside_frac += 1.0 - prev;
      return inside_frac > 0.0 ? inside_frac * seg.length() : 0.0;
    }

    // Shift the crossings up to make room for the interval endpoints.
    for (std::size_t i = n_cross; i > 0; --i) ts[i] = ts[i - 1];
    ts[0] = 0.0;
    ts[n_cross + 1] = 1.0;
    return classify_intervals(seg, poly, ts.data(), n_cross + 2);
  }

  // Large polygons: collect the crossings plus the endpoints on the heap and
  // classify every sub-interval by its midpoint.
  std::vector<double> ts;
  ts.reserve(poly.size() + 2);
  ts.push_back(0.0);
  ts.push_back(1.0);
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Segment e = poly.edge(i);
    if (std::max(e.a.x, e.b.x) < lo_x || std::min(e.a.x, e.b.x) > hi_x ||
        std::max(e.a.y, e.b.y) < lo_y || std::min(e.a.y, e.b.y) > hi_y) {
      continue;
    }
    if (const auto t = segment_intersection_param(seg, e)) ts.push_back(*t);
  }
  return classify_intervals(seg, poly, ts.data(), ts.size());
}

}  // namespace radloc

// Uniform-grid spatial index over a fixed rectangular area.
//
// Two hot paths use it: (i) the fusion-range query "all particles within
// d of sensor S" (Eq. (5) of the paper) and (ii) truncated-kernel neighbor
// queries inside mean-shift. Both need millions of radius queries per
// experiment, so the index is flat (CSR layout), cache-friendly, and
// rebuilt in O(n).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "radloc/common/types.hpp"

namespace radloc {

class GridIndex {
 public:
  /// `bounds` is the indexable region (points outside are clamped into the
  /// border cells); `cell_size` > 0 is the grid pitch — pick it near the
  /// typical query radius.
  GridIndex(const AreaBounds& bounds, double cell_size);

  /// Rebuilds the index over `points`; item i keeps identifier i.
  void rebuild(std::span<const Point2> points);

  /// Invokes `fn(i)` for every indexed point i with ||points[i] - c|| <= r.
  /// `points` must be the span passed to the last rebuild().
  template <typename Fn>
  void for_each_in_radius(std::span<const Point2> points, const Point2& c, double r,
                          Fn&& fn) const {
    const double r2 = r * r;
    const auto [cx0, cy0] = cell_of(Point2{c.x - r, c.y - r});
    const auto [cx1, cy1] = cell_of(Point2{c.x + r, c.y + r});
    for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
      for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
        const std::size_t cell = static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx);
        for (std::uint32_t k = cell_start_[cell]; k < cell_start_[cell + 1]; ++k) {
          const std::uint32_t i = items_[k];
          if (distance2(points[i], c) <= r2) fn(i);
        }
      }
    }
  }

  /// Radius query collecting matching indices into `out` (cleared first).
  void query_radius(std::span<const Point2> points, const Point2& c, double r,
                    std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] double cell_size() const { return cell_size_; }

 private:
  [[nodiscard]] std::pair<std::int32_t, std::int32_t> cell_of(const Point2& p) const;

  AreaBounds bounds_;
  double cell_size_;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<std::uint32_t> cell_start_;  // CSR offsets, size nx*ny + 1
  std::vector<std::uint32_t> items_;       // point indices grouped by cell
  // rebuild() scratch, kept so steady-state rebuilds are allocation-free
  std::vector<std::uint32_t> cell_of_point_;
  std::vector<std::uint32_t> cursor_;
};

}  // namespace radloc

// Simple polygons. Obstacles in radloc are simple (possibly non-convex)
// polygons of homogeneous material; the U-shaped obstacle of the paper's
// Scenario A is one polygon.
#pragma once

#include <cstddef>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/geom/segment.hpp"

namespace radloc {

/// A simple polygon (no self-intersections; either winding order).
/// Invariant: at least 3 vertices. Enforced at construction.
class Polygon {
 public:
  /// Throws std::invalid_argument if fewer than 3 vertices are given.
  explicit Polygon(std::vector<Point2> vertices);

  [[nodiscard]] const std::vector<Point2>& vertices() const { return vertices_; }
  [[nodiscard]] std::size_t size() const { return vertices_.size(); }

  /// Edge i connects vertex i to vertex (i+1) mod n.
  [[nodiscard]] Segment edge(std::size_t i) const {
    return Segment{vertices_[i], vertices_[(i + 1) % vertices_.size()]};
  }

  /// Even-odd (crossing-number) point containment; points exactly on the
  /// boundary may report either value (irrelevant at simulation tolerances).
  [[nodiscard]] bool contains(const Point2& p) const;

  /// Tight axis-aligned bounding box.
  [[nodiscard]] const AreaBounds& aabb() const { return aabb_; }

  /// Signed area (positive for counter-clockwise winding).
  [[nodiscard]] double signed_area() const;

  /// Disjoint axis-aligned rectangles whose union is the interior — built at
  /// construction when every edge is axis-aligned (true for all paper
  /// obstacle shapes), empty otherwise. Lets chord_length replace the
  /// crossing sweep with a per-rectangle slab clip.
  [[nodiscard]] const std::vector<AreaBounds>& slab_rects() const { return slab_rects_; }

 private:
  void build_slab_rects();

  std::vector<Point2> vertices_;
  AreaBounds aabb_;
  std::vector<AreaBounds> slab_rects_;
};

/// Axis-aligned rectangle polygon [x0,x1] x [y0,y1].
[[nodiscard]] Polygon make_rect(double x0, double y0, double x1, double y1);

/// A U-shaped (upward-opening) polygon: outer rectangle [x0,x1] x [y0,y1]
/// with a rectangular notch of the given wall `thickness` cut downward from
/// the top edge. Matches the paper's Scenario A obstacle shape.
[[nodiscard]] Polygon make_u_shape(double x0, double y0, double x1, double y1, double thickness);

}  // namespace radloc

// Segment / polygon intersection queries.
//
// The radiation model Eq. (3) needs, for each sensor-source pair, the total
// thickness of each obstacle along the straight path. That is the length of
// the chord(s) of the segment inside the polygon, computed here.
#pragma once

#include <optional>

#include "radloc/geom/polygon.hpp"
#include "radloc/geom/segment.hpp"

namespace radloc {

/// Intersection point parameters of two segments, if they properly intersect
/// (returns the parameter along `s1`). Collinear overlaps return nullopt.
[[nodiscard]] std::optional<double> segment_intersection_param(const Segment& s1,
                                                               const Segment& s2);

/// Total length of `seg` lying inside `poly` (sum over all chords; the
/// polygon may be non-convex). Endpoints inside the polygon are handled.
/// This is the `l_b` of Eq. (3): the material thickness traversed.
[[nodiscard]] double chord_length(const Segment& seg, const Polygon& poly);

/// Fast conservative reject: does the segment's AABB overlap the polygon's?
[[nodiscard]] bool aabb_overlaps_segment(const AreaBounds& box, const Segment& seg);

}  // namespace radloc

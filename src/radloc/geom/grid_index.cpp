#include "radloc/geom/grid_index.hpp"

#include <algorithm>
#include <cmath>

#include "radloc/common/math.hpp"

namespace radloc {

GridIndex::GridIndex(const AreaBounds& bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  require(cell_size > 0.0, "grid cell size must be positive");
  require(bounds.width() > 0.0 && bounds.height() > 0.0, "grid bounds must be non-degenerate");
  nx_ = static_cast<std::size_t>(std::ceil(bounds.width() / cell_size));
  ny_ = static_cast<std::size_t>(std::ceil(bounds.height() / cell_size));
  nx_ = std::max<std::size_t>(nx_, 1);
  ny_ = std::max<std::size_t>(ny_, 1);
  cell_start_.assign(nx_ * ny_ + 1, 0);
}

std::pair<std::int32_t, std::int32_t> GridIndex::cell_of(const Point2& p) const {
  auto cx = static_cast<std::int32_t>(std::floor((p.x - bounds_.min.x) / cell_size_));
  auto cy = static_cast<std::int32_t>(std::floor((p.y - bounds_.min.y) / cell_size_));
  cx = std::clamp(cx, 0, static_cast<std::int32_t>(nx_) - 1);
  cy = std::clamp(cy, 0, static_cast<std::int32_t>(ny_) - 1);
  return {cx, cy};
}

void GridIndex::rebuild(std::span<const Point2> points) {
  std::fill(cell_start_.begin(), cell_start_.end(), 0u);
  items_.resize(points.size());

  // Counting sort into cells (CSR). The two passes reuse member scratch:
  // rebuild runs once per filter reading, and a steady-state rebuild must
  // not allocate (tests/test_alloc_steady.cpp).
  cell_of_point_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto [cx, cy] = cell_of(points[i]);
    const auto cell =
        static_cast<std::uint32_t>(static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx));
    cell_of_point_[i] = cell;
    ++cell_start_[cell + 1];
  }
  for (std::size_t c = 1; c < cell_start_.size(); ++c) cell_start_[c] += cell_start_[c - 1];
  cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    items_[cursor_[cell_of_point_[i]]++] = static_cast<std::uint32_t>(i);
  }
}

void GridIndex::query_radius(std::span<const Point2> points, const Point2& c, double r,
                             std::vector<std::uint32_t>& out) const {
  out.clear();
  for_each_in_radius(points, c, r, [&](std::uint32_t i) { out.push_back(i); });
}

}  // namespace radloc

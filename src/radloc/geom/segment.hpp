// Line segments, the building block for ray-tracing radiation paths.
#pragma once

#include "radloc/common/types.hpp"

namespace radloc {

struct Segment {
  Point2 a;
  Point2 b;

  [[nodiscard]] double length() const { return distance(a, b); }

  /// Point at parameter t in [0, 1] along the segment.
  [[nodiscard]] constexpr Point2 at(double t) const { return a + t * (b - a); }

  friend constexpr bool operator==(const Segment&, const Segment&) = default;
};

}  // namespace radloc

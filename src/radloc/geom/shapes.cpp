#include "radloc/geom/shapes.hpp"

#include <cmath>

#include "radloc/common/math.hpp"

namespace radloc {

Polygon make_regular_polygon(const Point2& c, double r, std::size_t n) {
  require(n >= 3, "regular polygon needs at least 3 vertices");
  require(r > 0.0, "regular polygon radius must be positive");
  std::vector<Point2> vertices;
  vertices.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * kPi * static_cast<double>(i) / static_cast<double>(n);
    vertices.push_back(Point2{c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polygon(std::move(vertices));
}

Polygon make_l_shape(double x0, double y0, double x1, double y1, double t_h, double t_v) {
  require(x1 - x0 > t_v && y1 - y0 > t_h, "L-shape arms thicker than the outline");
  require(t_h > 0.0 && t_v > 0.0, "L-shape arm thicknesses must be positive");
  return Polygon({
      {x0, y0},
      {x1, y0},
      {x1, y0 + t_h},
      {x0 + t_v, y0 + t_h},
      {x0 + t_v, y1},
      {x0, y1},
  });
}

Polygon make_wall(const Point2& a, const Point2& b, double thickness) {
  require(thickness > 0.0, "wall thickness must be positive");
  const Vec2 dir = b - a;
  const double len = norm(dir);
  require(len > 0.0, "wall endpoints must differ");
  const Vec2 n{-dir.y / len * 0.5 * thickness, dir.x / len * 0.5 * thickness};
  return Polygon({a - n, b - n, b + n, a + n});
}

Polygon translated(const Polygon& p, const Vec2& offset) {
  std::vector<Point2> vertices;
  vertices.reserve(p.size());
  for (const auto& v : p.vertices()) vertices.push_back(v + offset);
  return Polygon(std::move(vertices));
}

Polygon rotated(const Polygon& p, double radians, const Point2& pivot) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  std::vector<Point2> vertices;
  vertices.reserve(p.size());
  for (const auto& v : p.vertices()) {
    const Vec2 d = v - pivot;
    vertices.push_back(Point2{pivot.x + c * d.x - s * d.y, pivot.y + s * d.x + c * d.y});
  }
  return Polygon(std::move(vertices));
}

Point2 centroid(const Polygon& p) {
  // Standard area-weighted centroid (shoelace form).
  double area2 = 0.0;
  Point2 acc{0.0, 0.0};
  const auto& v = p.vertices();
  const std::size_t n = v.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const double w = cross(v[j], v[i]);
    area2 += w;
    acc += w * (v[j] + v[i]);
  }
  require(area2 != 0.0, "degenerate polygon has no centroid");
  return (1.0 / (3.0 * area2)) * acc;
}

bool is_convex(const Polygon& p) {
  const auto& v = p.vertices();
  const std::size_t n = v.size();
  int sign = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 e1 = v[(i + 1) % n] - v[i];
    const Vec2 e2 = v[(i + 2) % n] - v[(i + 1) % n];
    const double c = cross(e1, e2);
    if (c == 0.0) continue;  // collinear edge pair
    const int s = c > 0.0 ? 1 : -1;
    if (sign == 0) {
      sign = s;
    } else if (s != sign) {
      return false;
    }
  }
  return true;
}

}  // namespace radloc

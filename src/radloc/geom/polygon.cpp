#include "radloc/geom/polygon.hpp"

#include <algorithm>
#include <limits>

#include "radloc/common/math.hpp"

namespace radloc {

Polygon::Polygon(std::vector<Point2> vertices) : vertices_(std::move(vertices)) {
  require(vertices_.size() >= 3, "polygon needs at least 3 vertices");
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  for (const auto& v : vertices_) {
    min_x = std::min(min_x, v.x);
    min_y = std::min(min_y, v.y);
    max_x = std::max(max_x, v.x);
    max_y = std::max(max_y, v.y);
  }
  aabb_ = AreaBounds{Point2{min_x, min_y}, Point2{max_x, max_y}};
  build_slab_rects();
}

void Polygon::build_slab_rects() {
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const bool axis_aligned =
        vertices_[i].x == vertices_[j].x || vertices_[i].y == vertices_[j].y;
    if (!axis_aligned) return;  // general polygon: no decomposition
  }

  // Scanline decomposition: split the y-range at every vertex y; within one
  // slab the interior is a fixed set of x-intervals, found by intersecting
  // the slab's midline with the vertical edges (even-odd pairing).
  std::vector<double> ys;
  ys.reserve(n);
  for (const auto& v : vertices_) ys.push_back(v.y);
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<double> xs;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const double y0 = ys[s];
    const double y1 = ys[s + 1];
    const double mid = 0.5 * (y0 + y1);
    xs.clear();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
      const Point2& vi = vertices_[i];
      const Point2& vj = vertices_[j];
      if (vi.x != vj.x) continue;  // horizontal edge: never crosses the midline
      if ((vi.y > mid) != (vj.y > mid)) xs.push_back(vi.x);
    }
    std::sort(xs.begin(), xs.end());
    for (std::size_t k = 0; k + 1 < xs.size(); k += 2) {
      slab_rects_.push_back(AreaBounds{Point2{xs[k], y0}, Point2{xs[k + 1], y1}});
    }
  }
}

bool Polygon::contains(const Point2& p) const {
  if (!aabb_.contains(p)) return false;
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point2& vi = vertices_[i];
    const Point2& vj = vertices_[j];
    const bool crosses = (vi.y > p.y) != (vj.y > p.y);
    if (crosses) {
      // p.x < vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x) with the
      // division cleared; dy != 0 for a straddling edge, and the comparison
      // direction flips with its sign. Exact for axis-aligned edges.
      const double dy = vi.y - vj.y;
      const double lhs = (p.x - vj.x) * dy;
      const double rhs = (p.y - vj.y) * (vi.x - vj.x);
      if (dy > 0.0 ? lhs < rhs : lhs > rhs) inside = !inside;
    }
  }
  return inside;
}

double Polygon::signed_area() const {
  double acc = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    acc += cross(vertices_[j], vertices_[i]);
  }
  return 0.5 * acc;
}

Polygon make_rect(double x0, double y0, double x1, double y1) {
  return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

Polygon make_u_shape(double x0, double y0, double x1, double y1, double thickness) {
  require(x1 - x0 > 2.0 * thickness && y1 - y0 > thickness,
          "u-shape walls thicker than the outline");
  // Outline traced counter-clockwise, notch cut from the top edge.
  return Polygon({
      {x0, y0},
      {x1, y0},
      {x1, y1},
      {x1 - thickness, y1},
      {x1 - thickness, y0 + thickness},
      {x0 + thickness, y0 + thickness},
      {x0 + thickness, y1},
      {x0, y1},
  });
}

}  // namespace radloc

#include "radloc/geom/polygon.hpp"

#include <algorithm>
#include <limits>

#include "radloc/common/math.hpp"

namespace radloc {

Polygon::Polygon(std::vector<Point2> vertices) : vertices_(std::move(vertices)) {
  require(vertices_.size() >= 3, "polygon needs at least 3 vertices");
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  for (const auto& v : vertices_) {
    min_x = std::min(min_x, v.x);
    min_y = std::min(min_y, v.y);
    max_x = std::max(max_x, v.x);
    max_y = std::max(max_y, v.y);
  }
  aabb_ = AreaBounds{Point2{min_x, min_y}, Point2{max_x, max_y}};
}

bool Polygon::contains(const Point2& p) const {
  if (!aabb_.contains(p)) return false;
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point2& vi = vertices_[i];
    const Point2& vj = vertices_[j];
    const bool crosses = (vi.y > p.y) != (vj.y > p.y);
    if (crosses) {
      const double x_at = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::signed_area() const {
  double acc = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    acc += cross(vertices_[j], vertices_[i]);
  }
  return 0.5 * acc;
}

Polygon make_rect(double x0, double y0, double x1, double y1) {
  return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

Polygon make_u_shape(double x0, double y0, double x1, double y1, double thickness) {
  require(x1 - x0 > 2.0 * thickness && y1 - y0 > thickness,
          "u-shape walls thicker than the outline");
  // Outline traced counter-clockwise, notch cut from the top edge.
  return Polygon({
      {x0, y0},
      {x1, y0},
      {x1, y1},
      {x1 - thickness, y1},
      {x1 - thickness, y0 + thickness},
      {x0 + thickness, y0 + thickness},
      {x0 + thickness, y1},
      {x0, y1},
  });
}

}  // namespace radloc

// Polygon factories for common deployment geometry.
//
// Obstacles in radloc are polygons; these helpers build the shapes a real
// deployment meets — walls, L-shaped buildings, circular pillars/tanks —
// plus affine transforms to place them.
#pragma once

#include <cstddef>

#include "radloc/geom/polygon.hpp"

namespace radloc {

/// Regular n-gon approximating a disc of radius `r` centered at `c` (used
/// for circular pillars and tanks; n >= 8 keeps the chord-length error
/// below ~2% of r). Throws for n < 3 or r <= 0.
[[nodiscard]] Polygon make_regular_polygon(const Point2& c, double r, std::size_t n);

/// L-shaped polygon: the union of a horizontal arm [x0,x1] x [y0, y0+t_h]
/// and a vertical arm [x0, x0+t_v] x [y0, y1]. Arms may have different
/// thicknesses ("uneven thickness" obstacles of the paper's Scenario B).
[[nodiscard]] Polygon make_l_shape(double x0, double y0, double x1, double y1, double t_h,
                                   double t_v);

/// A thin wall from `a` to `b` of the given `thickness` (an oriented
/// rectangle). Throws if a == b or thickness <= 0.
[[nodiscard]] Polygon make_wall(const Point2& a, const Point2& b, double thickness);

/// The polygon translated by `offset`.
[[nodiscard]] Polygon translated(const Polygon& p, const Vec2& offset);

/// The polygon rotated by `radians` around `pivot`.
[[nodiscard]] Polygon rotated(const Polygon& p, double radians, const Point2& pivot);

/// Polygon centroid (area-weighted).
[[nodiscard]] Point2 centroid(const Polygon& p);

/// True when every interior angle turns the same way (convex outline).
[[nodiscard]] bool is_convex(const Polygon& p);

}  // namespace radloc

// Mobile radiation search — a single detector-carrying robot hunting for
// sources, in the spirit of Ristic et al.'s "controlled search for
// radioactive point sources" [18] (the paper's related work).
//
// The robot repeatedly: (i) takes a reading at its current position and
// feeds it to the fusion-range particle filter via process_reading();
// (ii) scores a ring of candidate waypoints by the expected informativeness
// of a reading there (the hypothesis-spread score of adaptive/planner.hpp,
// discounted by travel time); (iii) drives toward the best waypoint. The
// search ends when the posterior is concentrated or the step budget runs
// out.
#pragma once

#include <cstddef>
#include <vector>

#include "radloc/filter/particle_filter.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct SearcherConfig {
  FilterConfig filter;                  ///< particle filter settings
  SensorResponse detector{kDefaultEfficiency, 5.0};
  double speed = 5.0;                   ///< distance per step
  double measure_radius = 28.0;         ///< fusion range of the mobile readings
  std::size_t candidate_directions = 12;  ///< waypoints scored per step
  double lookahead = 15.0;              ///< candidate waypoint distance
  /// Candidate score = predicted information at the waypoint, mildly
  /// discounted per unit of travel so the robot prefers nearby information.
  double travel_discount = 0.02;
  /// Stop when the LOCAL posterior (particles within measure_radius of the
  /// robot) holds at least `stop_mass` of the total weight with an RMS
  /// spread below `stop_spread` — i.e. the robot is parked on a resolved
  /// source. (A global spread criterion cannot work: the fusion-range
  /// filter deliberately leaves unvisited regions diffuse.)
  double stop_spread = 5.0;
  /// Minimum local weight fraction. Kept low: repeatedly measuring the same
  /// disk bleeds its weight outward through random replacement, so a
  /// resolved source's local mass is small-but-concentrated.
  double stop_mass = 0.03;
  /// The robot must also be reading a clear signal: median of the recent
  /// readings at least this multiple of the detector background.
  double stop_signal_factor = 3.0;
  std::size_t max_steps = 400;
};

struct SearchStep {
  Point2 position;   ///< robot position after the move
  double reading;    ///< CPM measured at the position
  double spread;     ///< local posterior spread diagnostic after the update
};

struct SearchResult {
  std::vector<SearchStep> path;
  std::vector<SourceEstimate> estimates;  ///< final mean-shift estimates
  bool converged = false;                 ///< stop_spread reached
  double distance_travelled = 0.0;
};

/// Measurement oracle: the searcher asks it for a reading at a position
/// (tests use a MeasurementSimulator; field code would read hardware).
class MeasurementOracle {
 public:
  virtual ~MeasurementOracle() = default;
  [[nodiscard]] virtual double read_cpm(const Point2& at, const SensorResponse& response) = 0;
};

class MobileSearcher {
 public:
  /// `env` must outlive the searcher. The filter starts uniform — the robot
  /// knows nothing about the sources.
  MobileSearcher(const Environment& env, SearcherConfig cfg, Rng rng);

  /// Runs the search from `start`. The oracle supplies the physics.
  [[nodiscard]] SearchResult search(const Point2& start, MeasurementOracle& oracle);

  /// Single step (exposed for visualization loops): measure at the current
  /// position, update, pick the next waypoint, move. Returns the step log.
  [[nodiscard]] SearchStep step(MeasurementOracle& oracle);

  [[nodiscard]] const FusionParticleFilter& filter() const { return filter_; }
  [[nodiscard]] const Point2& position() const { return position_; }
  void set_position(const Point2& p) { position_ = p; }

  /// Posterior spread diagnostic: weighted RMS distance of particles to the
  /// weighted mean, over the whole cloud.
  [[nodiscard]] double posterior_spread() const;

  /// Spread of the particles within measure_radius of the robot, and the
  /// fraction of total weight they hold — the stop diagnostics.
  struct LocalPosterior {
    double spread = 0.0;
    double mass = 0.0;
  };
  [[nodiscard]] LocalPosterior local_posterior() const;

 private:
  [[nodiscard]] double candidate_score(const Point2& candidate) const;

  const Environment* env_;
  SearcherConfig cfg_;
  FusionParticleFilter filter_;
  Point2 position_{};
  Rng rng_;
};

}  // namespace radloc

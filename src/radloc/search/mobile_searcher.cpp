#include "radloc/search/mobile_searcher.hpp"

#include <algorithm>
#include <cmath>

#include "radloc/common/math.hpp"
#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/radiation/intensity_model.hpp"

namespace radloc {

namespace {

FilterConfig searcher_filter_config(const SearcherConfig& cfg) {
  FilterConfig f = cfg.filter;
  f.fusion_range = cfg.measure_radius;
  // A mobile detector hammers one fusion disk with consecutive updates;
  // the network default of 5% random replacement would bleed the local
  // posterior dry. Keep a small trickle for new-source coverage.
  f.random_replacement_frac = std::min(f.random_replacement_frac, 0.02);
  return f;
}

}  // namespace

MobileSearcher::MobileSearcher(const Environment& env, SearcherConfig cfg, Rng rng)
    : env_(&env),
      cfg_(cfg),
      filter_(env, {}, searcher_filter_config(cfg), rng),
      rng_(rng.split()) {
  require(cfg_.speed > 0.0, "robot speed must be positive");
  require(cfg_.candidate_directions >= 3, "need at least 3 candidate directions");
  require(cfg_.lookahead > 0.0, "lookahead must be positive");
  require(cfg_.max_steps >= 1, "need at least one step");
}

double MobileSearcher::posterior_spread() const {
  const auto positions = filter_.positions();
  const auto weights = filter_.weights();
  Point2 mean{0.0, 0.0};
  double total = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    mean += weights[i] * positions[i];
    total += weights[i];
  }
  if (total <= 0.0) return std::numeric_limits<double>::infinity();
  mean = (1.0 / total) * mean;
  double var = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    var += weights[i] * distance2(positions[i], mean);
  }
  return std::sqrt(var / total);
}

MobileSearcher::LocalPosterior MobileSearcher::local_posterior() const {
  const auto positions = filter_.positions();
  const auto weights = filter_.weights();
  Point2 mean{0.0, 0.0};
  double mass = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (distance(positions[i], position_) > cfg_.measure_radius) continue;
    mean += weights[i] * positions[i];
    mass += weights[i];
  }
  if (mass <= 0.0) return LocalPosterior{std::numeric_limits<double>::infinity(), 0.0};
  mean = (1.0 / mass) * mean;
  double var = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (distance(positions[i], position_) > cfg_.measure_radius) continue;
    var += weights[i] * distance2(positions[i], mean);
  }
  return LocalPosterior{std::sqrt(var / mass), mass};
}

double MobileSearcher::candidate_score(const Point2& candidate) const {
  // Hypothesis-spread score (see adaptive/planner.hpp): the weighted
  // variance of the predicted reading over the particles the measurement
  // would touch, Fano-normalized; discounted by travel distance.
  const auto positions = filter_.positions();
  const auto strengths = filter_.strengths();
  const auto weights = filter_.weights();
  const std::size_t stride = std::max<std::size_t>(1, positions.size() / 1024);

  double w_total = 0.0;
  double mean = 0.0;
  double m2 = 0.0;
  for (std::size_t i = 0; i < positions.size(); i += stride) {
    if (distance(positions[i], candidate) > cfg_.measure_radius) continue;
    const double w = weights[i];
    if (w <= 0.0) continue;
    const double rate = expected_cpm_single_free_space(
        candidate, Source{positions[i], strengths[i]}, cfg_.detector);
    w_total += w;
    const double delta = rate - mean;
    mean += (w / w_total) * delta;
    m2 += w * delta * (rate - mean);
  }
  if (w_total <= 0.0) return 0.0;
  const double info = (m2 / w_total) / (1.0 + mean);
  return info / (1.0 + cfg_.travel_discount * distance(position_, candidate));
}

SearchStep MobileSearcher::step(MeasurementOracle& oracle) {
  // Measure and update at the current position.
  const double reading = oracle.read_cpm(position_, cfg_.detector);
  (void)filter_.process_reading(position_, cfg_.detector, std::floor(std::max(reading, 0.0)));

  // Pick the most informative waypoint on the lookahead ring.
  Point2 best = position_;
  double best_score = -1.0;
  for (std::size_t d = 0; d < cfg_.candidate_directions; ++d) {
    const double angle = 2.0 * kPi * static_cast<double>(d) /
                         static_cast<double>(cfg_.candidate_directions);
    const Point2 candidate = env_->bounds().clamp(
        position_ + Vec2{cfg_.lookahead * std::cos(angle), cfg_.lookahead * std::sin(angle)});
    const double score = candidate_score(candidate);
    if (score > best_score) {
      best_score = score;
      best = candidate;
    }
  }

  // Drive one step of `speed` toward the chosen waypoint.
  const Vec2 to = best - position_;
  const double dist = norm(to);
  if (dist > 1e-9) {
    const double travel = std::min(cfg_.speed, dist);
    position_ = env_->bounds().clamp(position_ + (travel / dist) * to);
  }

  return SearchStep{position_, reading, local_posterior().spread};
}

SearchResult MobileSearcher::search(const Point2& start, MeasurementOracle& oracle) {
  position_ = env_->bounds().clamp(start);
  SearchResult result;
  Point2 prev = position_;
  for (std::size_t i = 0; i < cfg_.max_steps; ++i) {
    const SearchStep s = step(oracle);
    result.distance_travelled += distance(prev, s.position);
    prev = s.position;
    result.path.push_back(s);
    const LocalPosterior local = local_posterior();
    // Median of the last few readings: the robot must actually be in a hot
    // zone, not just sitting on a tight but silent particle clump.
    double recent_median = 0.0;
    if (result.path.size() >= 5) {
      std::vector<double> recent;
      for (std::size_t r = result.path.size() - 5; r < result.path.size(); ++r) {
        recent.push_back(result.path[r].reading);
      }
      std::nth_element(recent.begin(), recent.begin() + 2, recent.end());
      recent_median = recent[2];
    }
    const double signal_floor =
        cfg_.stop_signal_factor * std::max(cfg_.detector.background_cpm, 1.0);
    if (local.spread <= cfg_.stop_spread && local.mass >= cfg_.stop_mass &&
        recent_median >= signal_floor) {
      result.converged = true;
      break;
    }
  }

  // Final estimates from the particle cloud. Unvisited regions stay
  // diffuse by design, so the tightness gate filters their broad modes and
  // keeps only resolved clusters.
  ThreadPool pool(1);
  MeanShiftConfig ms;
  ms.min_tightness = 0.4;
  MeanShiftEstimator estimator(env_->bounds(), ms, pool);
  result.estimates =
      estimator.estimate(filter_.positions(), filter_.strengths(), filter_.weights());
  return result;
}

}  // namespace radloc

#include "radloc/service/session_manager.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace radloc {

namespace {

using Clock = std::chrono::steady_clock;

double microseconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Percentile over an unordered sample copy (nearest-rank).
double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

}  // namespace

struct SessionManager::Session {
  Session(const Environment& env, std::vector<Sensor> sensors, SessionConfig config,
          std::uint64_t seed, ThreadPool* pool)
      : cfg(config),
        localizer(env, std::move(sensors), config.localizer, seed, pool),
        validator(localizer.filter().sensors().size()),
        current_budget(localizer.filter().size()) {}

  SessionConfig cfg;
  MultiSourceLocalizer localizer;

  /// Queue + counters + latency window. Held only for O(1) operations so
  /// ingest stays cheap while a drain is in flight.
  mutable std::mutex mu;
  MeasurementValidator validator;  ///< ingest-time tallies (guarded by mu)
  std::deque<SessionReading> queue;
  std::size_t ingested = 0;
  std::size_t processed = 0;
  std::size_t applied = 0;
  std::size_t rejected_full = 0;
  std::size_t dropped_oldest = 0;
  // Sliding latency window: a ring of the most recent per-reading drain
  // latencies (µs). head is the next overwrite slot once the ring is full.
  std::vector<double> latency_us;
  std::size_t latency_head = 0;
  // Budget telemetry snapshotted at the end of each drain (guarded by mu).
  std::size_t current_budget = 0;
  double ess_fraction = 1.0;
  // Scoring-cache / fused-update telemetry, same snapshot discipline.
  double cache_hit_rate = 0.0;
  double fused_batch_len = 0.0;

  /// Serializes drains (and estimates) of this session, so one session's
  /// readings never apply concurrently or out of queue order. Distinct from
  /// `mu` so a long drain never blocks ingests.
  std::mutex drain_mu;
  // Drain scratch, reused across drains (guarded by drain_mu).
  std::vector<SessionReading> backlog;
  std::vector<Measurement> batch;
  std::vector<double> batch_latency_us;
};

SessionManager::SessionId SessionManager::open(const Environment& env,
                                               std::vector<Sensor> sensors, SessionConfig cfg,
                                               std::uint64_t seed) {
  if (cfg.queue_capacity == 0) {
    throw std::invalid_argument("session queue capacity must be at least 1");
  }
  auto session = std::make_shared<Session>(env, std::move(sensors), cfg, seed, pool_);
  const std::lock_guard lock(mu_);
  const SessionId id = next_id_++;
  sessions_.emplace(id, std::move(session));
  return id;
}

bool SessionManager::close(SessionId id) {
  std::shared_ptr<Session> victim;
  {
    const std::lock_guard lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // `victim` destructs here (or when the last concurrent borrower drops its
  // reference — shared_ptr keeps racing ingests/stats on a just-closed
  // session memory-safe; their writes simply die with the session).
  return true;
}

std::size_t SessionManager::num_sessions() const {
  const std::lock_guard lock(mu_);
  return sessions_.size();
}

std::shared_ptr<SessionManager::Session> SessionManager::find(SessionId id) const {
  const std::lock_guard lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("unknown session id " + std::to_string(id));
  }
  return it->second;
}

IngestStatus SessionManager::ingest(SessionId id, const SessionReading& reading) {
  const std::shared_ptr<Session> s = find(id);
  const std::lock_guard lock(s->mu);
  const ReadingFault fault = s->validator.admit_timed(reading.m, reading.timestamp);
  if (fault != ReadingFault::kNone) return IngestStatus::kRejectedMalformed;
  if (s->queue.size() >= s->cfg.queue_capacity) {
    if (s->cfg.backpressure == BackpressurePolicy::kRejectNewest) {
      ++s->rejected_full;
      return IngestStatus::kRejectedFull;
    }
    s->queue.pop_front();
    ++s->dropped_oldest;
    s->queue.push_back(reading);
    ++s->ingested;
    return IngestStatus::kQueuedDroppedOldest;
  }
  s->queue.push_back(reading);
  ++s->ingested;
  return IngestStatus::kQueued;
}

std::size_t SessionManager::drain_session(Session& s) {
  // One drainer per session at a time: within a session, readings apply
  // strictly in queue order on a single thread — the determinism contract.
  const std::lock_guard drain_lock(s.drain_mu);
  {
    const std::lock_guard lock(s.mu);
    s.backlog.assign(s.queue.begin(), s.queue.end());
    s.queue.clear();
  }
  if (s.backlog.empty()) return 0;

  if (s.cfg.drain_order == DrainOrder::kTimestamp) {
    // Safe comparator: ingest validation already rejected NaN timestamps
    // (a NaN here would break strict weak ordering — UB for sort).
    std::stable_sort(s.backlog.begin(), s.backlog.end(),
                     [](const SessionReading& a, const SessionReading& b) {
                       return a.timestamp < b.timestamp;
                     });
  }

  s.batch.clear();
  for (const SessionReading& r : s.backlog) s.batch.push_back(r.m);

  // Per-reading latency from callback deltas: one clock read per reading,
  // charged to the reading that just finished (validation + filter work).
  s.batch_latency_us.clear();
  Clock::time_point prev = Clock::now();
  const BatchIngestResult result =
      s.localizer.try_process_all(s.batch, [&s, &prev](std::size_t, ReadingFault) {
        const Clock::time_point now = Clock::now();
        s.batch_latency_us.push_back(microseconds_between(prev, now));
        prev = now;
      });

  const std::size_t drained = s.batch.size();
  // Still under drain_mu — safe to read the localizer here, not in stats().
  const FusionParticleFilter& filter = s.localizer.filter();
  const std::size_t budget = filter.size();
  const double ess = filter.effective_sample_size();
  const std::uint64_t lookups = filter.scoring_cache_lookups();
  const std::uint64_t hits = filter.scoring_cache_hits();
  const std::uint64_t fgroups = filter.fused_groups();
  const std::uint64_t freadings = filter.fused_readings();
  {
    const std::lock_guard lock(s.mu);
    s.processed += drained;
    s.applied += result.processed;
    s.current_budget = budget;
    s.ess_fraction = budget > 0 ? ess / static_cast<double>(budget) : 0.0;
    s.cache_hit_rate =
        lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
    s.fused_batch_len =
        fgroups > 0 ? static_cast<double>(freadings) / static_cast<double>(fgroups) : 0.0;
    for (const double us : s.batch_latency_us) {
      if (s.latency_us.size() < s.cfg.latency_window) {
        s.latency_us.push_back(us);
      } else {
        s.latency_us[s.latency_head] = us;
        s.latency_head = (s.latency_head + 1) % s.cfg.latency_window;
      }
    }
  }
  return drained;
}

std::size_t SessionManager::drain(SessionId id) { return drain_session(*find(id)); }

std::size_t SessionManager::drain_all() {
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    const std::lock_guard lock(mu_);
    snapshot.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) snapshot.push_back(s);
  }
  std::atomic<std::size_t> total{0};
  {
    // group.wait() (via ~TaskGroup on the throw path) lets every drain
    // retire before the first exception propagates out of drain_all().
    ThreadPool::TaskGroup group(*pool_);
    for (const std::shared_ptr<Session>& s : snapshot) {
      // Skip empty sessions without scheduling: idle tenants are the common
      // case in a many-session server, and a task per idle session is pure
      // queue pressure.
      bool has_backlog = false;
      {
        const std::lock_guard lock(s->mu);
        has_backlog = !s->queue.empty();
      }
      if (!has_backlog) continue;
      group.run([this, s, &total] { total.fetch_add(drain_session(*s)); });
    }
    group.wait();
  }
  return total.load();
}

SessionStats SessionManager::stats(SessionId id) const {
  const std::shared_ptr<Session> s = find(id);
  SessionStats out;
  std::vector<double> samples;
  {
    const std::lock_guard lock(s->mu);
    out.queue_depth = s->queue.size();
    out.ingested = s->ingested;
    out.processed = s->processed;
    out.applied = s->applied;
    out.rejected_full = s->rejected_full;
    out.dropped_oldest = s->dropped_oldest;
    out.rejected_malformed = s->validator.rejected();
    for (std::size_t f = 0; f < kReadingFaultCount; ++f) {
      out.faults[f] = s->validator.count(static_cast<ReadingFault>(f));
    }
    // Every reading the service applied is exactly one filter iteration, so
    // the counter can come from the mu-guarded tally — reading
    // localizer.iterations() here would race an in-flight drain.
    out.filter_iterations = s->applied;
    out.current_budget = s->current_budget;
    out.ess_fraction = s->ess_fraction;
    out.cache_hit_rate = s->cache_hit_rate;
    out.fused_batch_len = s->fused_batch_len;
    samples = s->latency_us;
  }
  out.latency_samples = samples.size();
  out.p50_latency_us = percentile(samples, 0.50);
  out.p99_latency_us = percentile(samples, 0.99);
  return out;
}

std::vector<SourceEstimate> SessionManager::estimate(SessionId id) {
  const std::shared_ptr<Session> s = find(id);
  const std::lock_guard drain_lock(s->drain_mu);
  return s->localizer.estimate();
}

const MultiSourceLocalizer& SessionManager::localizer(SessionId id) const {
  return find(id)->localizer;
}

const char* to_string(IngestStatus status) {
  switch (status) {
    case IngestStatus::kQueued: return "queued";
    case IngestStatus::kQueuedDroppedOldest: return "queued (dropped oldest)";
    case IngestStatus::kRejectedMalformed: return "rejected (malformed)";
    case IngestStatus::kRejectedFull: return "rejected (queue full)";
  }
  return "unknown";
}

}  // namespace radloc

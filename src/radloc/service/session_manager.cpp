#include "radloc/service/session_manager.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace radloc {

namespace {

using Clock = std::chrono::steady_clock;

double microseconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Registry instruments are optional (null without a MetricsRegistry); these
/// keep the mirroring sites one-liners. A zero-delta bump is skipped so an
/// idle counter costs nothing.
void bump(obs::Counter* c, std::uint64_t n = 1) {
  if (c != nullptr && n != 0) c->add(n);
}

void publish(obs::Gauge* g, double v) {
  if (g != nullptr) g->set(v);
}

}  // namespace

struct SessionManager::Session {
  Session(const Environment& env, std::vector<Sensor> sensors, SessionConfig config,
          std::uint64_t seed, ThreadPool* pool)
      : cfg(config),
        localizer(env, std::move(sensors), config.localizer, seed, pool),
        validator(localizer.filter().sensors().size()),
        current_budget(localizer.filter().size()) {}

  SessionConfig cfg;
  MultiSourceLocalizer localizer;

  /// Registry mirrors of the per-session tallies; every pointer is null when
  /// the manager has no MetricsRegistry. The mu-guarded fields below stay
  /// authoritative (SessionStats snapshots read THEM) — the instruments are
  /// export-side copies: ingest-side counters add at the tally site, drain
  /// -side counters publish advance-deltas of the localizer's cumulative
  /// counters (guarded by drain_mu via the prev_* trackers).
  struct Instruments {
    obs::Counter* ingested = nullptr;
    obs::Counter* processed = nullptr;
    obs::Counter* applied = nullptr;
    obs::Counter* rejected_malformed = nullptr;
    obs::Counter* rejected_full = nullptr;
    obs::Counter* dropped_oldest = nullptr;
    std::array<obs::Counter*, kReadingFaultCount> faults{};  ///< [kNone] unused
    obs::Counter* drains = nullptr;
    obs::Counter* cache_lookups = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* fused_groups = nullptr;
    obs::Counter* fused_readings = nullptr;
    obs::Counter* resamples_performed = nullptr;
    obs::Counter* resamples_skipped = nullptr;
    obs::Counter* generation_bumps = nullptr;
    obs::Counter* budget_runs = nullptr;
    obs::Counter* budget_grow = nullptr;
    obs::Counter* budget_shrink = nullptr;
    obs::Counter* budget_ess_alarms = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* ess_fraction = nullptr;
    obs::Gauge* particle_budget = nullptr;
  };
  Instruments ins;

  /// Cumulative per-reading drain-latency histogram backing the p50/p99 in
  /// SessionStats. Points at the registry-owned instrument when the manager
  /// has a registry, else at owned_latency — never null after open().
  obs::Histogram* latency_hist = nullptr;
  std::unique_ptr<obs::Histogram> owned_latency;

  /// Stage tracer for this session's pipeline spans. Only touched under
  /// drain_mu (drains and estimates), satisfying the single-threaded tracer
  /// contract; with no TraceSink the localizer keeps a null tracer and every
  /// span site is a single pointer compare.
  obs::StageTracer tracer;

  /// Queue + counters + latency histogram. Held only for O(1) operations so
  /// ingest stays cheap while a drain is in flight.
  mutable std::mutex mu;
  MeasurementValidator validator;  ///< ingest-time tallies (guarded by mu)
  std::deque<SessionReading> queue;
  std::size_t ingested = 0;
  std::size_t processed = 0;
  std::size_t applied = 0;
  std::size_t rejected_full = 0;
  std::size_t dropped_oldest = 0;
  // Budget telemetry snapshotted at the end of each drain (guarded by mu).
  std::size_t current_budget = 0;
  double ess_fraction = 1.0;
  // Scoring-cache / fused-update telemetry, same snapshot discipline.
  double cache_hit_rate = 0.0;
  double fused_batch_len = 0.0;

  /// Serializes drains (and estimates) of this session, so one session's
  /// readings never apply concurrently or out of queue order. Distinct from
  /// `mu` so a long drain never blocks ingests.
  std::mutex drain_mu;
  // Drain scratch, reused across drains (guarded by drain_mu).
  std::vector<SessionReading> backlog;
  std::vector<Measurement> batch;
  std::vector<double> batch_latency_us;
  // Advance-delta trackers for the drain-side counter mirrors: the filter
  // and budget counters are cumulative, the registry wants increments.
  std::uint64_t prev_cache_lookups = 0;
  std::uint64_t prev_cache_hits = 0;
  std::uint64_t prev_fused_groups = 0;
  std::uint64_t prev_fused_readings = 0;
  std::uint64_t prev_resamples_performed = 0;
  std::uint64_t prev_resamples_skipped = 0;
  std::uint64_t prev_generation = 0;
  std::uint64_t prev_budget_runs = 0;
  std::uint64_t prev_budget_grow = 0;
  std::uint64_t prev_budget_shrink = 0;
  std::uint64_t prev_budget_alarms = 0;
};

SessionManager::SessionManager(ThreadPool& pool, ServiceObservability obs)
    : pool_(&pool), metrics_(obs.metrics), trace_(obs.trace) {
  if (metrics_ == nullptr) return;
  // Pull gauges: the pool and session-count numbers are cheap thread-safe
  // reads, so sampling them at export time beats mirroring every enqueue.
  // Lock order registry -> (pool mu | manager mu_); nothing acquires the
  // registry mutex while holding either, so the callbacks cannot deadlock.
  metrics_->callback_gauge("radloc_sessions_open", {},
                           [this] { return static_cast<double>(num_sessions()); });
  metrics_->callback_gauge("radloc_pool_queue_depth", {}, [p = pool_] {
    return static_cast<double>(p->stats().queue_depth);
  });
  metrics_->callback_gauge("radloc_pool_tasks_executed", {}, [p = pool_] {
    return static_cast<double>(p->stats().tasks_executed);
  });
  metrics_->callback_gauge("radloc_pool_steals", {}, [p = pool_] {
    return static_cast<double>(p->stats().steals);
  });
}

SessionManager::SessionId SessionManager::open(const Environment& env,
                                               std::vector<Sensor> sensors, SessionConfig cfg,
                                               std::uint64_t seed) {
  if (cfg.queue_capacity == 0) {
    throw std::invalid_argument("session queue capacity must be at least 1");
  }
  // The id is allocated up front (ids are never reused, so an open that
  // throws later just skips one) because the instruments need it for labels
  // — and they must register BEFORE mu_ is retaken: registration takes the
  // registry mutex, which the sessions-open pull gauge holds while it takes
  // mu_, so registering under mu_ would invert that order.
  SessionId id = 0;
  {
    const std::lock_guard lock(mu_);
    id = next_id_++;
  }
  auto session = std::make_shared<Session>(env, std::move(sensors), cfg, seed, pool_);
  if (metrics_ != nullptr) {
    const obs::Labels sl{{"session", std::to_string(id)}};
    auto& ins = session->ins;
    ins.ingested = &metrics_->counter("radloc_session_readings_ingested_total", sl);
    ins.processed = &metrics_->counter("radloc_session_readings_processed_total", sl);
    ins.applied = &metrics_->counter("radloc_session_readings_applied_total", sl);
    ins.rejected_malformed = &metrics_->counter("radloc_session_rejected_malformed_total", sl);
    ins.rejected_full = &metrics_->counter("radloc_session_rejected_full_total", sl);
    ins.dropped_oldest = &metrics_->counter("radloc_session_dropped_oldest_total", sl);
    for (std::size_t f = 1; f < kReadingFaultCount; ++f) {
      obs::Labels fl = sl;
      fl.emplace_back("fault", to_string(static_cast<ReadingFault>(f)));
      ins.faults[f] = &metrics_->counter("radloc_session_ingest_faults_total", std::move(fl));
    }
    ins.drains = &metrics_->counter("radloc_session_drains_total", sl);
    ins.cache_lookups = &metrics_->counter("radloc_filter_cache_lookups_total", sl);
    ins.cache_hits = &metrics_->counter("radloc_filter_cache_hits_total", sl);
    ins.fused_groups = &metrics_->counter("radloc_filter_fused_groups_total", sl);
    ins.fused_readings = &metrics_->counter("radloc_filter_fused_readings_total", sl);
    ins.resamples_performed = &metrics_->counter("radloc_filter_resamples_performed_total", sl);
    ins.resamples_skipped = &metrics_->counter("radloc_filter_resamples_skipped_total", sl);
    ins.generation_bumps = &metrics_->counter("radloc_filter_generation_bumps_total", sl);
    ins.budget_runs = &metrics_->counter("radloc_budget_runs_total", sl);
    ins.budget_grow = &metrics_->counter("radloc_budget_grow_total", sl);
    ins.budget_shrink = &metrics_->counter("radloc_budget_shrink_total", sl);
    ins.budget_ess_alarms = &metrics_->counter("radloc_budget_ess_alarms_total", sl);
    ins.queue_depth = &metrics_->gauge("radloc_session_queue_depth", sl);
    ins.ess_fraction = &metrics_->gauge("radloc_filter_ess_fraction", sl);
    ins.particle_budget = &metrics_->gauge("radloc_filter_particle_budget", sl);
    session->latency_hist = &metrics_->histogram("radloc_session_drain_latency_us", sl);
  } else {
    session->owned_latency = std::make_unique<obs::Histogram>();
    session->latency_hist = session->owned_latency.get();
  }
  if (trace_ != nullptr) {
    session->tracer = obs::StageTracer(trace_, id);
    session->localizer.set_stage_tracer(&session->tracer);
  }
  const std::lock_guard lock(mu_);
  sessions_.emplace(id, std::move(session));
  return id;
}

bool SessionManager::close(SessionId id) {
  std::shared_ptr<Session> victim;
  {
    const std::lock_guard lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // `victim` destructs here (or when the last concurrent borrower drops its
  // reference — shared_ptr keeps racing ingests/stats on a just-closed
  // session memory-safe; their writes simply die with the session). Its
  // registry instruments stay registered: closed-session counters keep
  // their final values in exports, which is what monotonic counters owe a
  // scrape pipeline.
  return true;
}

std::size_t SessionManager::num_sessions() const {
  const std::lock_guard lock(mu_);
  return sessions_.size();
}

std::shared_ptr<SessionManager::Session> SessionManager::find(SessionId id) const {
  const std::lock_guard lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("unknown session id " + std::to_string(id));
  }
  return it->second;
}

IngestStatus SessionManager::ingest(SessionId id, const SessionReading& reading) {
  const std::shared_ptr<Session> s = find(id);
  const std::lock_guard lock(s->mu);
  const ReadingFault fault = s->validator.admit_timed(reading.m, reading.timestamp);
  if (fault != ReadingFault::kNone) {
    bump(s->ins.rejected_malformed);
    bump(s->ins.faults[static_cast<std::size_t>(fault)]);
    return IngestStatus::kRejectedMalformed;
  }
  if (s->queue.size() >= s->cfg.queue_capacity) {
    if (s->cfg.backpressure == BackpressurePolicy::kRejectNewest) {
      ++s->rejected_full;
      bump(s->ins.rejected_full);
      return IngestStatus::kRejectedFull;
    }
    s->queue.pop_front();
    ++s->dropped_oldest;
    s->queue.push_back(reading);
    ++s->ingested;
    bump(s->ins.dropped_oldest);
    bump(s->ins.ingested);
    publish(s->ins.queue_depth, static_cast<double>(s->queue.size()));
    return IngestStatus::kQueuedDroppedOldest;
  }
  s->queue.push_back(reading);
  ++s->ingested;
  bump(s->ins.ingested);
  publish(s->ins.queue_depth, static_cast<double>(s->queue.size()));
  return IngestStatus::kQueued;
}

std::size_t SessionManager::drain_session(Session& s) {
  // One drainer per session at a time: within a session, readings apply
  // strictly in queue order on a single thread — the determinism contract.
  const std::lock_guard drain_lock(s.drain_mu);
  // Service-layer envelope span: the per-reading stage spans the localizer
  // emits all nest (in time) inside this one drain.
  const obs::ScopedSpan span(&s.tracer, obs::Stage::kDrain);
  {
    const std::lock_guard lock(s.mu);
    s.backlog.assign(s.queue.begin(), s.queue.end());
    s.queue.clear();
  }
  if (s.backlog.empty()) return 0;

  if (s.cfg.drain_order == DrainOrder::kTimestamp) {
    // Safe comparator: ingest validation already rejected NaN timestamps
    // (a NaN here would break strict weak ordering — UB for sort).
    std::stable_sort(s.backlog.begin(), s.backlog.end(),
                     [](const SessionReading& a, const SessionReading& b) {
                       return a.timestamp < b.timestamp;
                     });
  }

  s.batch.clear();
  for (const SessionReading& r : s.backlog) s.batch.push_back(r.m);

  // Per-reading latency from callback deltas: one clock read per reading,
  // charged to the reading that just finished (validation + filter work).
  s.batch_latency_us.clear();
  Clock::time_point prev = Clock::now();
  const BatchIngestResult result =
      s.localizer.try_process_all(s.batch, [&s, &prev](std::size_t, ReadingFault) {
        const Clock::time_point now = Clock::now();
        s.batch_latency_us.push_back(microseconds_between(prev, now));
        prev = now;
      });

  const std::size_t drained = s.batch.size();
  // Still under drain_mu — safe to read the localizer here, not in stats().
  const FusionParticleFilter& filter = s.localizer.filter();
  const std::size_t budget = filter.size();
  const double ess = filter.effective_sample_size();
  const std::uint64_t lookups = filter.scoring_cache_lookups();
  const std::uint64_t hits = filter.scoring_cache_hits();
  const std::uint64_t fgroups = filter.fused_groups();
  const std::uint64_t freadings = filter.fused_readings();

  // Drain-side counter mirrors: advance-deltas of the cumulative localizer
  // counters since the previous drain (prev_* guarded by drain_mu).
  bump(s.ins.drains);
  bump(s.ins.cache_lookups, lookups - s.prev_cache_lookups);
  s.prev_cache_lookups = lookups;
  bump(s.ins.cache_hits, hits - s.prev_cache_hits);
  s.prev_cache_hits = hits;
  bump(s.ins.fused_groups, fgroups - s.prev_fused_groups);
  s.prev_fused_groups = fgroups;
  bump(s.ins.fused_readings, freadings - s.prev_fused_readings);
  s.prev_fused_readings = freadings;
  bump(s.ins.resamples_performed, filter.resamples_performed() - s.prev_resamples_performed);
  s.prev_resamples_performed = filter.resamples_performed();
  bump(s.ins.resamples_skipped, filter.resamples_skipped() - s.prev_resamples_skipped);
  s.prev_resamples_skipped = filter.resamples_skipped();
  bump(s.ins.generation_bumps, filter.particle_generation() - s.prev_generation);
  s.prev_generation = filter.particle_generation();
  const BudgetDiagnostics bd = s.localizer.budget_diagnostics();
  bump(s.ins.budget_runs, bd.controller_runs - s.prev_budget_runs);
  s.prev_budget_runs = bd.controller_runs;
  bump(s.ins.budget_grow, bd.grow_events - s.prev_budget_grow);
  s.prev_budget_grow = bd.grow_events;
  bump(s.ins.budget_shrink, bd.shrink_events - s.prev_budget_shrink);
  s.prev_budget_shrink = bd.shrink_events;
  bump(s.ins.budget_ess_alarms, bd.ess_alarm_events - s.prev_budget_alarms);
  s.prev_budget_alarms = bd.ess_alarm_events;

  {
    const std::lock_guard lock(s.mu);
    s.processed += drained;
    s.applied += result.processed;
    s.current_budget = budget;
    s.ess_fraction = budget > 0 ? ess / static_cast<double>(budget) : 0.0;
    s.cache_hit_rate =
        lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
    s.fused_batch_len =
        fgroups > 0 ? static_cast<double>(freadings) / static_cast<double>(fgroups) : 0.0;
    // Latency lands in the histogram inside the SAME critical section as
    // the processed tally, pinning latency_samples == processed for every
    // stats() snapshot (the observe itself is atomic and allocation-free).
    for (const double us : s.batch_latency_us) s.latency_hist->observe(us);
    bump(s.ins.processed, drained);
    bump(s.ins.applied, result.processed);
    publish(s.ins.queue_depth, static_cast<double>(s.queue.size()));
    publish(s.ins.ess_fraction, s.ess_fraction);
    publish(s.ins.particle_budget, static_cast<double>(budget));
  }
  return drained;
}

std::size_t SessionManager::drain(SessionId id) { return drain_session(*find(id)); }

std::size_t SessionManager::drain_all() {
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    const std::lock_guard lock(mu_);
    snapshot.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) snapshot.push_back(s);
  }
  std::atomic<std::size_t> total{0};
  {
    // group.wait() (via ~TaskGroup on the throw path) lets every drain
    // retire before the first exception propagates out of drain_all().
    ThreadPool::TaskGroup group(*pool_);
    for (const std::shared_ptr<Session>& s : snapshot) {
      // Skip empty sessions without scheduling: idle tenants are the common
      // case in a many-session server, and a task per idle session is pure
      // queue pressure.
      bool has_backlog = false;
      {
        const std::lock_guard lock(s->mu);
        has_backlog = !s->queue.empty();
      }
      if (!has_backlog) continue;
      group.run([this, s, &total] { total.fetch_add(drain_session(*s)); });
    }
    group.wait();
  }
  return total.load();
}

SessionStats SessionManager::stats(SessionId id) const {
  const std::shared_ptr<Session> s = find(id);
  SessionStats out;
  const std::lock_guard lock(s->mu);
  out.queue_depth = s->queue.size();
  out.ingested = s->ingested;
  out.processed = s->processed;
  out.applied = s->applied;
  out.rejected_full = s->rejected_full;
  out.dropped_oldest = s->dropped_oldest;
  out.rejected_malformed = s->validator.rejected();
  for (std::size_t f = 0; f < kReadingFaultCount; ++f) {
    out.faults[f] = s->validator.count(static_cast<ReadingFault>(f));
  }
  // Every reading the service applied is exactly one filter iteration, so
  // the counter can come from the mu-guarded tally — reading
  // localizer.iterations() here would race an in-flight drain.
  out.filter_iterations = s->applied;
  out.current_budget = s->current_budget;
  out.ess_fraction = s->ess_fraction;
  out.cache_hit_rate = s->cache_hit_rate;
  out.fused_batch_len = s->fused_batch_len;
  // The histogram is written under this same mutex (drain_session), so the
  // sample count is exactly `processed` in every snapshot.
  out.latency_samples = static_cast<std::size_t>(s->latency_hist->count());
  out.p50_latency_us = s->latency_hist->quantile(0.50);
  out.p99_latency_us = s->latency_hist->quantile(0.99);
  return out;
}

std::vector<SourceEstimate> SessionManager::estimate(SessionId id) {
  const std::shared_ptr<Session> s = find(id);
  const std::lock_guard drain_lock(s->drain_mu);
  return s->localizer.estimate();
}

const MultiSourceLocalizer& SessionManager::localizer(SessionId id) const {
  return find(id)->localizer;
}

const char* to_string(IngestStatus status) {
  switch (status) {
    case IngestStatus::kQueued: return "queued";
    case IngestStatus::kQueuedDroppedOldest: return "queued (dropped oldest)";
    case IngestStatus::kRejectedMalformed: return "rejected (malformed)";
    case IngestStatus::kRejectedFull: return "rejected (queue full)";
  }
  return "unknown";
}

}  // namespace radloc

// Streaming multi-session ingestion service — the production shape of the
// paper's online filter: ONE long-lived process multiplexing many
// independent surveillance areas ("sessions", one localizer each) over one
// shared ThreadPool.
//
// The paper's fusion-range locality (Sec. V-B) keeps per-reading work small
// — one filter iteration touches only the particles within one sensor's
// fusion disk — which is exactly what makes thousands of interleaved
// measurement streams drainable online. The pieces:
//
//   ingest   thread-safe, cheap: validate the timed reading at the
//            MeasurementValidator choke point (timestamps included — a NaN
//            timestamp would break the drain's ordering comparator), then
//            enqueue on the session's BOUNDED queue. A full queue applies
//            the session's backpressure policy: reject the new reading, or
//            drop the oldest queued one to make room. Every verdict is
//            tallied per session.
//   drain    one TaskGroup task per session with a backlog: snapshot the
//            queue, feed it through MultiSourceLocalizer::try_process_all
//            (malformed readings are counted skips, never a half-applied
//            batch), stamping per-reading latency. Sessions drain
//            concurrently; WITHIN a session readings apply strictly in
//            queue order on one thread at a time, so every session's filter
//            state is bit-identical to the same feed replayed serially
//            through a standalone localizer (pinned by
//            tests/test_stress_service.cpp).
//   stats    per-session telemetry: queue depth, ingest/drop/reject
//            counters, per-fault tallies, p50/p99 per-reading drain latency
//            from a fixed-bucket log-scale histogram (obs/metrics.hpp).
//
// Observability (DESIGN.md §5.11): constructed with a ServiceObservability
// handle, the manager mirrors every per-session tally into named
// MetricsRegistry instruments (counters/gauges/latency histogram, labelled
// by session id), registers pull gauges for the shared pool, and threads a
// per-session StageTracer through the localizer so each drained reading
// emits pipeline stage spans into the TraceSink. All of it is passive —
// filter results stay bit-identical — and with the default (null) handle
// the manager behaves exactly as before, with a session-owned histogram
// backing the latency percentiles.
//
// Exception-safety contract (DESIGN.md §5.8): drain() schedules work
// through TaskGroup, so the first exception thrown by any session's drain
// is rethrown at drain()'s return — the remaining sessions still complete
// their drains, the pool survives, and the manager stays usable. This is
// only sound on top of the ThreadPool exception-propagation guarantee
// (concurrency/thread_pool.hpp); before that fix a throwing task killed the
// whole process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/obs/metrics.hpp"
#include "radloc/obs/trace.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/sensornet/sensor.hpp"
#include "radloc/sensornet/validation.hpp"

namespace radloc {

/// One reading as it arrives off the wire: the paper's Measurement plus the
/// stream timestamp (seconds since stream start; any monotone clock works).
/// The filter itself is order-agnostic — the timestamp exists for the
/// optional time-ordered drain, staleness decisions, and telemetry.
struct SessionReading {
  double timestamp = 0.0;
  Measurement m;
};

/// What a session does when a reading arrives and its queue is full.
enum class BackpressurePolicy : std::uint8_t {
  kRejectNewest,  ///< refuse the arriving reading (loss at the edge)
  kDropOldest,    ///< evict the oldest queued reading to make room
};

/// How a drained backlog is ordered before it is applied.
enum class DrainOrder : std::uint8_t {
  kArrival,    ///< queue order — the paper's arrival-order iteration
  kTimestamp,  ///< stable-sorted by timestamp within each drained batch
};

struct SessionConfig {
  LocalizerConfig localizer;
  /// Bounded ingest queue: readings admitted but not yet drained.
  std::size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kRejectNewest;
  DrainOrder drain_order = DrainOrder::kArrival;
};

/// Verdict of one ingest call.
enum class IngestStatus : std::uint8_t {
  kQueued,              ///< admitted, queue had room
  kQueuedDroppedOldest, ///< admitted after evicting the oldest (kDropOldest)
  kRejectedMalformed,   ///< failed validation (see SessionStats::faults)
  kRejectedFull,        ///< queue full under kRejectNewest
};

/// Human-readable ingest verdict, for logs and CLI output.
[[nodiscard]] const char* to_string(IngestStatus status);

/// Point-in-time per-session telemetry snapshot.
struct SessionStats {
  std::size_t queue_depth = 0;      ///< readings admitted, not yet drained
  std::size_t ingested = 0;         ///< readings admitted into the queue
  std::size_t processed = 0;        ///< readings drained through the localizer
  std::size_t applied = 0;          ///< drained readings the filter accepted
  std::size_t rejected_malformed = 0;  ///< ingest-time validation rejects
  std::size_t rejected_full = 0;       ///< backpressure rejects (kRejectNewest)
  std::size_t dropped_oldest = 0;      ///< backpressure evictions (kDropOldest)
  /// Ingest-time per-fault tallies (index by ReadingFault; kNone = accepts).
  std::array<std::size_t, kReadingFaultCount> faults{};
  std::uint64_t filter_iterations = 0;
  /// Per-reading drain latency percentiles over ALL drained readings, in
  /// microseconds, read from the session's log-scale latency histogram
  /// (bucket-resolution nearest-rank, obs::Histogram::quantile); 0 when no
  /// reading has been drained yet. latency_samples always equals processed:
  /// the histogram is updated in the same critical section as the processed
  /// tally, so a stats() snapshot never sees them diverge.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  std::size_t latency_samples = 0;
  /// Particle budget and ESS fraction recorded at the END of the last drain
  /// (before any drain: the configured num_particles and 1.0). With
  /// adaptive_budget on this is the live multiplier an operator watches: a
  /// session whose scenario has converged runs near min_particles while a
  /// hard one holds the cap. Snapshotted into mu-guarded fields by the
  /// drain itself — stats() never reads the localizer (that would race an
  /// in-flight drain).
  std::size_t current_budget = 0;
  double ess_fraction = 1.0;
  /// Scoring-cache hit rate (hits / lookups, 0 when the cache is off or has
  /// seen no lookups) and mean fused-group length (fused readings / fused
  /// groups, 0 when fusing is off or no group of >= 2 formed), both
  /// snapshotted at the end of the last drain like the budget fields.
  double cache_hit_rate = 0.0;
  double fused_batch_len = 0.0;
};

/// Borrowed observability backends for a SessionManager; both optional and
/// both externally owned. Lifetime: the backends must outlive the manager,
/// and the registry must not be visited (exported) after the manager or its
/// pool is destroyed — the manager registers pull gauges whose callbacks
/// read manager and pool state.
struct ServiceObservability {
  obs::MetricsRegistry* metrics = nullptr;  ///< null = no metric mirroring
  obs::TraceSink* trace = nullptr;          ///< null = no stage spans
};

/// Multiplexes many independent MultiSourceLocalizer sessions over one
/// shared ThreadPool. ingest() is safe from any thread; drain()/drain(id)
/// may run concurrently with ingests (each drain processes the backlog
/// snapshot taken at its start). open/close are safe from any thread, but
/// close() must not race a drain of the SAME session it is closing — the
/// caller owns session lifecycle.
class SessionManager {
 public:
  using SessionId = std::uint64_t;

  /// `pool` is the shared worker pool (must outlive the manager). Every
  /// session's localizer borrows it, so inner weight-update parallelism
  /// collapses inline under drain tasks per the §5.6 nesting policy.
  /// `obs` optionally plugs in a metrics registry and a trace sink (see
  /// ServiceObservability for the lifetime contract).
  explicit SessionManager(ThreadPool& pool, ServiceObservability obs = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session (one surveillance area / tenant). `env` must outlive
  /// the session; `seed` fixes the session's randomness. Returns the new
  /// session's id (ids are never reused within a manager).
  SessionId open(const Environment& env, std::vector<Sensor> sensors, SessionConfig cfg,
                 std::uint64_t seed);

  /// Closes and destroys a session; false if the id is unknown (already
  /// closed). Pending queued readings are discarded.
  bool close(SessionId id);

  [[nodiscard]] std::size_t num_sessions() const;

  /// Validates and enqueues one timed reading. Thread-safe; cheap (no
  /// filter work happens here). Throws std::out_of_range on an unknown id —
  /// an unknown session is a caller bug, not a data fault.
  IngestStatus ingest(SessionId id, const SessionReading& reading);

  /// Drains every session's backlog: one TaskGroup task per session with
  /// pending readings, running concurrently on the shared pool. Returns the
  /// total number of readings drained. Rethrows the first exception any
  /// session's drain raised (after all drains retired).
  std::size_t drain_all();

  /// Drains one session inline on the calling thread.
  std::size_t drain(SessionId id);

  [[nodiscard]] SessionStats stats(SessionId id) const;

  /// Runs the mean-shift estimate on the session's current particle cloud.
  /// Serialized against drains of the same session.
  std::vector<SourceEstimate> estimate(SessionId id);

  /// The session's localizer, for diagnostics and tests. Do not call
  /// mutating operations while drains may run.
  [[nodiscard]] const MultiSourceLocalizer& localizer(SessionId id) const;

 private:
  struct Session;

  [[nodiscard]] std::shared_ptr<Session> find(SessionId id) const;
  std::size_t drain_session(Session& s);

  ThreadPool* pool_;
  obs::MetricsRegistry* metrics_;  ///< null = metrics mirroring off
  obs::TraceSink* trace_;          ///< null = stage tracing off
  mutable std::mutex mu_;  ///< guards sessions_ and next_id_
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  SessionId next_id_ = 1;
};

}  // namespace radloc

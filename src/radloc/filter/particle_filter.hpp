// The fusion-range particle filter — Sec. V-A, V-B, V-C, V-E of the paper.
//
// One filter iteration per measurement:
//   1. select P' = particles within the reporting sensor's fusion range
//      (Eq. 5), via the spatial grid index;
//   2. predict: evolve P' with the movement model (identity for static
//      sources);
//   3. weight: w <- P_Poisson(m | particle-as-only-source) * w, with the
//      single-source rate from Eq. (4) (free space, unless the filter is
//      configured with known obstacles);
//   4. merge P'' back and renormalize all weights;
//   5. resample P'' locally (systematic), jitter duplicates with
//      N(0, sigma_N), and replace a small fraction with fresh uniform
//      particles.
//
// The state dimension stays 3 regardless of the number of sources; mean-
// shift (meanshift/) later extracts every source from the particle cloud.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/filter/config.hpp"
#include "radloc/filter/movement.hpp"
#include "radloc/filter/particle.hpp"
#include "radloc/geom/grid_index.hpp"
#include "radloc/obs/trace.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/radiation/transmission_cache.hpp"
#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/sensor.hpp"
#include "radloc/sensornet/validation.hpp"
#include "radloc/simd/aligned.hpp"

namespace radloc {

class ThreadPool;

class FusionParticleFilter {
 public:
  /// `sensors` are the known sensor positions/responses (measurements refer
  /// to them by id); `env` supplies the area bounds, and — only if
  /// cfg.use_known_obstacles — the obstacle set. Particles are initialized
  /// uniformly at random (Sec. V-A). The environment must outlive the filter.
  FusionParticleFilter(const Environment& env, std::vector<Sensor> sensors, FilterConfig cfg,
                       Rng rng);

  /// Processes one measurement (one filter iteration). Malformed input
  /// (unknown sensor id, NaN/inf/negative CPM — see sensornet/validation.hpp)
  /// throws std::invalid_argument with the specific fault. Returns the
  /// number of particles updated (|P'|); 0 means the fusion range was empty
  /// or the update degenerated and was skipped.
  ///
  /// Degenerate-update semantics (pinned by tests): when the fusion disk is
  /// EMPTY the iteration is a no-op. When the disk is non-empty but the
  /// weight update degenerates (all log-likelihoods -inf, or zero posterior
  /// mass), the PREDICT step has already run — a non-static movement model
  /// has evolved the selected particles — and only the update/resample is
  /// skipped: weights are left exactly as they were.
  std::size_t process(const Measurement& m);

  /// Non-throwing ingestion: validates `m`, tallies the verdict on the
  /// validator, and processes only well-formed measurements. Returns the
  /// fault (ReadingFault::kNone on success) — the choke point for feeds
  /// where malformed readings are expected and must be counted, not fatal.
  ReadingFault try_process(const Measurement& m);

  /// Fused multi-reading update: applies a group of measurements that all
  /// report from ONE sensor as a single weight update — per-particle
  /// log-likelihoods of the K readings add (they share the same hypothesis
  /// rates within one particle generation), so the group costs one subset
  /// traversal, one Poisson/exp pass, and at most one resample instead of K.
  /// Every reading is validated (and tallied) exactly as process(); a group
  /// mixing sensor ids throws std::invalid_argument. Requires a static
  /// movement model. Groups of size 1 take the exact process() path bit for
  /// bit. The fused posterior differs from serially applying the K readings
  /// only by floating-point reordering and by resample placement (the serial
  /// path may resample between readings) — see FilterConfig::
  /// fused_batch_updates for the policy. Returns |P'| like process().
  std::size_t process_fused(std::span<const Measurement> group);

  /// The same filter iteration for a reading taken at an arbitrary position
  /// (a MOBILE detector, cf. the controlled-search literature [18]): the
  /// fusion disk is centered on `at` and the likelihood uses `response`.
  /// `at` must be finite (it need not lie inside the bounds); same
  /// validation and degenerate-update semantics as process().
  std::size_t process_reading(const Point2& at, const SensorResponse& response, double cpm);

  /// Number of iterations processed so far (t). Counts every WELL-FORMED
  /// reading fed through process()/try_process()/process_reading()/
  /// process_fused() — including readings whose fusion disk was empty or
  /// whose update degenerated and was skipped. This is intentional (pinned
  /// by tests): iteration() is the stream clock that keeps
  /// MultiSourceLocalizer::iterations(), the adaptive-budget cadence, and
  /// the service-layer accounting aligned with the number of readings fed,
  /// not with the subset geometry of each one.
  [[nodiscard]] std::uint64_t iteration() const { return iteration_; }

  // Particle accessors (struct-of-arrays views; valid until next process()).
  [[nodiscard]] std::span<const Point2> positions() const { return positions_; }
  [[nodiscard]] std::span<const double> strengths() const { return strengths_; }
  [[nodiscard]] std::span<const double> weights() const { return weights_; }
  [[nodiscard]] std::size_t size() const { return positions_.size(); }

  /// AoS copy for callers that prefer whole particles.
  [[nodiscard]] std::vector<Particle> particles() const;

  [[nodiscard]] const FilterConfig& config() const { return cfg_; }
  [[nodiscard]] std::span<const Sensor> sensors() const { return sensors_; }
  [[nodiscard]] const Environment& environment() const { return *env_; }

  /// Replaces the movement model (default: StaticMovement).
  void set_movement_model(std::unique_ptr<MovementModel> model);

  /// Borrows a thread pool for the per-measurement weight update; nullptr
  /// (the default) runs serially. The parallel path chunks the likelihood
  /// loop over disjoint index ranges and reduces serially in index order, so
  /// weights are bit-identical to the serial path at any thread count. The
  /// pool must outlive the filter (MultiSourceLocalizer wires its own pool
  /// in automatically).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Borrows a stage tracer for per-reading pipeline spans (validate,
  /// fusion-disk query, weight update, resample — DESIGN.md §5.11); nullptr
  /// (the default) disables tracing at the cost of one pointer compare per
  /// stage. Instrumentation is passive: it never consumes RNG, reorders FP
  /// work, or changes control flow, so results stay bit-identical with any
  /// tracer wired. The tracer must outlive the filter and is subject to the
  /// single-threaded tracer contract (obs/trace.hpp).
  void set_stage_tracer(obs::StageTracer* tracer) { tracer_ = tracer; }

  /// The per-sensor transmission cache, if cfg enabled one (diagnostics).
  [[nodiscard]] const TransmissionCache* transmission_cache() const { return cache_.get(); }

  /// Borrows an externally owned, fully prepared transmission cache instead
  /// of this filter's own lazily built one — run_experiment's per-scenario
  /// shared read-only state: the fields depend only on the environment and
  /// sensor origins, so concurrent trials can share one cache with no
  /// hot-path synchronization. The cache must be built over the same
  /// environment and cell size as cfg would build, prepared (serially, up
  /// front) for every origin the filter will query, and must outlive the
  /// filter. Origins the shared cache lacks fall back to exact geometry;
  /// nullptr restores the owned cache. Swapping the transmission source
  /// invalidates the scoring cache (memoized rates embed transmissions).
  void set_shared_transmission_cache(const TransmissionCache* cache) {
    shared_cache_ = cache;
    for (auto& e : score_cache_) e.valid = false;
  }

  /// Ingestion validator: per-fault accept/reject tallies for everything fed
  /// through process()/try_process()/process_reading().
  [[nodiscard]] const MeasurementValidator& validator() const { return validator_; }

  /// Effective number of particles 1 / sum(w^2) — a standard degeneracy
  /// diagnostic (exposed for tests and ablations).
  [[nodiscard]] double effective_sample_size() const;

  /// Resamples the WHOLE population down/up to `count` particles (systematic
  /// over the global weights, duplicate jitter as in the local resample, no
  /// random replacement) and resets weights to uniform 1/count. The budget
  /// controller's resize primitive; also usable directly. `count` must be
  /// in [1, max_particles] when adaptive_budget is on (capacity for
  /// max_particles is reserved up front so steady-state resizes do not
  /// allocate). Returns the new size.
  std::size_t resize_budget(std::size_t count);

  // Work/skip counters for the throughput diagnostics and benches.
  /// Cumulative |P'| over all scored readings (particles-per-reading numerator).
  [[nodiscard]] std::uint64_t particles_scored() const { return particles_scored_; }
  /// Resample passes run vs skipped by the ESS gate (ess_resample_threshold).
  [[nodiscard]] std::uint64_t resamples_performed() const { return resamples_performed_; }
  [[nodiscard]] std::uint64_t resamples_skipped() const { return resamples_skipped_; }

  // Scoring-cache / fused-update telemetry (DESIGN.md §5.10).
  /// Monotone particle-state version: bumped whenever positions or strengths
  /// change (resample+jitter, movement evolution, resize_budget). Scoring-
  /// cache entries are valid only while their recorded generation matches.
  [[nodiscard]] std::uint64_t particle_generation() const { return particle_generation_; }
  /// Cache lookups attempted / hits (lookups happen only when the cache is
  /// enabled and the movement model is static).
  [[nodiscard]] std::uint64_t scoring_cache_lookups() const { return cache_lookups_; }
  [[nodiscard]] std::uint64_t scoring_cache_hits() const { return cache_hits_; }
  /// Fused groups applied (size >= 2 only) and the readings they covered.
  [[nodiscard]] std::uint64_t fused_groups() const { return fused_groups_; }
  [[nodiscard]] std::uint64_t fused_readings() const { return fused_readings_; }
  /// True while the movement model is the identity StaticMovement — the
  /// precondition for scoring-cache lookups and fused updates (hoisted from
  /// the per-reading dynamic_cast the predict step used to pay).
  [[nodiscard]] bool movement_is_static() const { return movement_is_static_; }

 private:
  /// One scoring-cache entry: a sensor origin's fusion subset and per-
  /// particle hypothesis rates, stamped with the particle generation and
  /// environment revision they were computed under (DESIGN.md §5.10).
  /// `rates` holds exactly subset.size() values; an entry with an empty
  /// subset is still a valid (and cheap) hit — it memoizes "this disk is
  /// empty at this generation".
  struct CacheEntry {
    Point2 origin{};
    double efficiency = 0.0;
    double background = 0.0;
    std::uint64_t generation = 0;
    std::uint64_t env_revision = 0;
    std::uint64_t last_used = 0;  ///< lookup tick for LRU eviction
    bool valid = false;
    bool kernel_pmf = false;  ///< rates came from the batch-kernel path
    std::vector<std::uint32_t> subset;
    simd::AVector<double> rates;
  };

  void initialize_particles();
  [[nodiscard]] double hypothesis_rate(const Point2& at, const SensorResponse& response,
                                       const Point2& pos, double strength,
                                       const TransmissionCache* cache,
                                       const TransmissionCache::Field* field) const;
  [[nodiscard]] Point2 random_position();
  [[nodiscard]] double random_strength();
  void resample_subset(std::span<const std::uint32_t> subset, double subset_mass);
  /// The filter iteration proper; input already validated.
  std::size_t process_reading_impl(const Point2& at, const SensorResponse& response, double cpm);

  /// True when a cache lookup may be attempted for this reading: the cache
  /// is configured and the movement model is static (per-reading evolution
  /// would mutate positions mid-iteration, making memoized rates stale
  /// within a single update).
  [[nodiscard]] bool cache_enabled() const {
    return scoring_cache_capacity_ > 0 && movement_is_static_;
  }
  /// Finds a fresh entry for (at, response) at the current generation /
  /// env revision; bumps lookup counters. nullptr on miss.
  CacheEntry* cache_find(const Point2& at, const SensorResponse& response);
  /// Returns the entry to (over)write for (at, response): the matching slot
  /// if one exists, else an unused/LRU victim. Marks it invalid; the caller
  /// fills subset+rates and stamps it via cache_commit.
  CacheEntry* cache_begin_store(const Point2& at, const SensorResponse& response);
  void cache_commit(CacheEntry& e, const Point2& at, const SensorResponse& response);
  /// The shared scoring core: cache lookup (when enabled), else selection +
  /// rates, then the weight update. `k_sum`/`reps`/`log_fact_sum` describe
  /// the reading group (reps == 1 for a single reading — bit-identical to
  /// the seed's single-k pass). Returns |P'| or 0.
  std::size_t score_reading(const Point2& at, const SensorResponse& response, double k_sum,
                            double reps, double log_fact_sum);
  /// Selects the fusion subset into subset_, runs predict, and computes the
  /// per-particle hypothesis rates into `rates_out` (the cache-miss path).
  /// `kernel_pmf_out` reports whether the batch-kernel scoring flavor
  /// applies. Returns false when the disk is empty.
  bool select_and_rate(const Point2& at, const SensorResponse& response,
                       simd::AVector<double>& rates_out, bool& kernel_pmf_out);
  /// Scores `rates` against the (fused) counts and applies the mass-
  /// preserving weight update + ESS-gated resample. Returns |P'| or 0 on a
  /// degenerate update.
  std::size_t apply_scores(std::span<const std::uint32_t> subset,
                           const simd::AVector<double>& rates, double k_sum, double reps,
                           double log_fact_sum, bool kernel_pmf);

  const Environment* env_;
  std::vector<Sensor> sensors_;
  FilterConfig cfg_;
  Rng rng_;
  MeasurementValidator validator_;
  ThreadPool* pool_ = nullptr;
  obs::StageTracer* tracer_ = nullptr;  ///< null = tracing off (the default)
  std::unique_ptr<TransmissionCache> cache_;
  const TransmissionCache* shared_cache_ = nullptr;  ///< wins over cache_ when set

  // SoA particle state, 32-byte aligned for the batch kernels.
  simd::AVector<Point2> positions_;
  simd::AVector<double> strengths_;
  simd::AVector<double> weights_;

  std::unique_ptr<MovementModel> movement_;
  bool movement_is_static_ = true;  ///< hoisted dynamic_cast (set_movement_model)
  GridIndex grid_;
  bool grid_dirty_ = true;
  std::uint64_t iteration_ = 0;
  std::uint64_t particles_scored_ = 0;
  std::uint64_t resamples_performed_ = 0;
  std::uint64_t resamples_skipped_ = 0;

  // Generation-versioned scoring cache (DESIGN.md §5.10). Any mutation of
  // positions/strengths bumps particle_generation_, invalidating every
  // entry at once — per-entry overlap reasoning is unsound because random
  // replacement can move a particle anywhere.
  std::uint64_t particle_generation_ = 0;
  std::size_t scoring_cache_capacity_ = 0;  ///< cfg or RADLOC_SCORING_CACHE
  std::vector<CacheEntry> score_cache_;
  std::uint64_t cache_tick_ = 0;
  std::uint64_t cache_lookups_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t fused_groups_ = 0;
  std::uint64_t fused_readings_ = 0;

  // Scratch buffers reused across iterations: after warmup, a reading must
  // not allocate (tests/test_alloc_steady.cpp pins this).
  std::vector<std::uint32_t> subset_;
  simd::AVector<double> subset_weights_;
  // batch-kernel gather slices of the fusion subset (SoA)
  simd::AVector<double> scratch_x_;
  simd::AVector<double> scratch_y_;
  simd::AVector<double> scratch_s_;
  simd::AVector<double> scratch_t_;
  // hypothesis-rate destination when the cache is off (the cache stores
  // rates per entry instead)
  simd::AVector<double> rates_scratch_;
  // resample scratch
  struct Drawn {
    Point2 pos;
    double strength;
  };
  std::vector<std::uint32_t> picks_;
  std::vector<Drawn> drawn_;
};

}  // namespace radloc

#include "radloc/filter/movement.hpp"

#include "radloc/rng/distributions.hpp"

namespace radloc {

void RandomWalkMovement::evolve(Rng& rng, Point2& pos, double& /*strength*/) const {
  pos.x += normal(rng, 0.0, sigma_);
  pos.y += normal(rng, 0.0, sigma_);
}

}  // namespace radloc

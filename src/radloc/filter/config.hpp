// Tunables of the fusion-range particle filter (Sec. V).
#pragma once

#include <cstddef>

namespace radloc {

struct FilterConfig {
  /// NP — number of particles. Paper: 2000 for the 100x100 scenarios,
  /// 15000 for the 260x260 ones ("proportional to the area increase").
  std::size_t num_particles = 2000;

  /// Fusion range d_i (Eq. 5): only particles within this distance of the
  /// reporting sensor are touched by an update. Paper: 28 for sensors on a
  /// 20-unit grid ("a particle is within the fusion range of a handful of
  /// sensors").
  double fusion_range = 28.0;

  /// sigma_N — std-dev of the Gaussian position jitter added to duplicated
  /// particles at resampling. Paper: 3.0.
  double resample_noise_sigma = 3.0;

  /// Multiplicative log-normal jitter on the strength of duplicated
  /// particles: strength *= exp(N(0, sigma)). The paper jitters "the
  /// duplicated particles" without giving a strength value; a relative
  /// jitter keeps the 4-1000 uCi range scale-free.
  double strength_jitter_sigma = 0.10;

  /// Fraction of resampled slots replaced by fresh uniform particles so new
  /// sources in emptied regions are eventually found. Paper: "e.g., 5%".
  double random_replacement_frac = 0.05;

  /// Prior strength range (uCi) for particle initialization and for fresh
  /// replacement particles — the paper's dirty-bomb range, 4-1000 uCi.
  /// The floor matters: hypotheses much weaker than the weakest source of
  /// interest are indistinguishable from background noise and would form
  /// unfalsifiable ghost clusters (false positives).
  double strength_min = 4.0;
  double strength_max = 1000.0;

  /// Draw initial strengths log-uniformly (scale-free over three decades).
  /// false = uniform, the literal reading of "uniformly random particles".
  bool log_uniform_strength = true;

  /// If true the filter is told the true obstacle set and applies Eq. (3)
  /// when predicting sensor readings; if false (the paper's complex-
  /// environment mode) it assumes free space, Eq. (1).
  bool use_known_obstacles = false;

  /// Memoize per-sensor transmission fields on a uniform grid (see
  /// radiation/transmission_cache.hpp); only meaningful with
  /// use_known_obstacles. Default off: the cache trades a bounded
  /// interpolation error for speed, and with it off the likelihood numerics
  /// are exactly the seed's.
  bool use_transmission_cache = false;

  /// Grid pitch (length units) of the memoized transmission field. Smaller
  /// is more accurate; the per-sensor build cost grows as 1/cell^2.
  double transmission_cache_cell = 2.0;
};

}  // namespace radloc

// Tunables of the fusion-range particle filter (Sec. V).
#pragma once

#include <cstddef>

namespace radloc {

struct FilterConfig {
  /// NP — number of particles. Paper: 2000 for the 100x100 scenarios,
  /// 15000 for the 260x260 ones ("proportional to the area increase").
  std::size_t num_particles = 2000;

  /// Fusion range d_i (Eq. 5): only particles within this distance of the
  /// reporting sensor are touched by an update. Paper: 28 for sensors on a
  /// 20-unit grid ("a particle is within the fusion range of a handful of
  /// sensors").
  double fusion_range = 28.0;

  /// sigma_N — std-dev of the Gaussian position jitter added to duplicated
  /// particles at resampling. Paper: 3.0.
  double resample_noise_sigma = 3.0;

  /// Multiplicative log-normal jitter on the strength of duplicated
  /// particles: strength *= exp(N(0, sigma)). The paper jitters "the
  /// duplicated particles" without giving a strength value; a relative
  /// jitter keeps the 4-1000 uCi range scale-free.
  double strength_jitter_sigma = 0.10;

  /// Fraction of resampled slots replaced by fresh uniform particles so new
  /// sources in emptied regions are eventually found. Paper: "e.g., 5%".
  double random_replacement_frac = 0.05;

  /// Prior strength range (uCi) for particle initialization and for fresh
  /// replacement particles — the paper's dirty-bomb range, 4-1000 uCi.
  /// The floor matters: hypotheses much weaker than the weakest source of
  /// interest are indistinguishable from background noise and would form
  /// unfalsifiable ghost clusters (false positives).
  double strength_min = 4.0;
  double strength_max = 1000.0;

  /// Draw initial strengths log-uniformly (scale-free over three decades).
  /// false = uniform, the literal reading of "uniformly random particles".
  bool log_uniform_strength = true;

  /// If true the filter is told the true obstacle set and applies Eq. (3)
  /// when predicting sensor readings; if false (the paper's complex-
  /// environment mode) it assumes free space, Eq. (1).
  bool use_known_obstacles = false;

  /// Memoize per-sensor transmission fields on a uniform grid (see
  /// radiation/transmission_cache.hpp); only meaningful with
  /// use_known_obstacles. Default off: the cache trades a bounded
  /// interpolation error for speed, and with it off the likelihood numerics
  /// are exactly the seed's.
  bool use_transmission_cache = false;

  /// Grid pitch (length units) of the memoized transmission field. Smaller
  /// is more accurate; the per-sensor build cost grows as 1/cell^2.
  double transmission_cache_cell = 2.0;

  // --- Generation-versioned scoring cache + fused same-sensor updates. ---

  /// Capacity (entries) of the per-sensor scoring cache: each entry memoizes
  /// one origin's fusion subset and Eq.-1/Eq.-3 hypothesis rates, valid while
  /// the particle generation is unchanged (no resample/jitter/evolve/resize
  /// since they were computed — the ESS resample gate is what creates long
  /// same-generation stretches). A hit skips the spatial query, the SoA
  /// gather, the transmission lookups, and the rate kernel, and jumps
  /// straight to the Poisson scoring — bit-identical to recomputing, so the
  /// knob is pure speed. 0 (default) disables the cache: the seed path.
  /// The RADLOC_SCORING_CACHE environment variable, when set to a positive
  /// entry count, overrides a default-0 config (benches/CI force the cache
  /// on fleet-wide without touching configs; an explicit non-zero config
  /// value always wins).
  std::size_t scoring_cache_entries = 0;

  /// Fuse consecutive same-sensor readings in the batch ingest paths
  /// (process_all / try_process_all and the service drain) into ONE weight
  /// update: log-likelihoods add, so K readings cost one subset traversal,
  /// one exp/renormalize pass, and at most one resample instead of K. The
  /// fused posterior equals the serial one up to floating-point reordering
  /// (tolerance-pinned, DESIGN.md §5.10) and up to resample placement: the
  /// serial path may resample between the K readings, the fused path at most
  /// once after them — both are valid filter iterations over the same
  /// evidence. Requires a static movement model (per-reading prediction
  /// would be skipped otherwise; the filter falls back to serial updates
  /// when a non-static model is set). Default off: the seed path.
  bool fused_batch_updates = false;

  // --- ESS-gated resampling (adaptive/budget_controller.hpp rationale). ---

  /// Skip the local systematic resample + jitter when the fusion subset's
  /// effective sample size fraction ESS/|P'| exceeds this threshold — a
  /// near-uniform subset gains nothing from resampling, so the pass (and its
  /// RNG draws) is pure cost. Any value >= 1.0 disables the gate entirely:
  /// the default path resamples every update, bit-identical to the seed.
  double ess_resample_threshold = 1.0;

  // --- Adaptive particle budget (KLD-sampling controller; opt-in). ---

  /// Enable the budget controller: the localizer periodically resizes the
  /// particle count between min_particles/max_particles based on posterior
  /// complexity (occupied bins), ESS, and mean-shift mode stability. Off by
  /// default: the filter keeps num_particles forever, exactly the seed.
  bool adaptive_budget = false;

  /// Budget bounds. With adaptive_budget on, num_particles (the starting
  /// budget) must lie in [min_particles, max_particles].
  std::size_t min_particles = 500;
  std::size_t max_particles = 4000;

  /// KLD-sampling bound (Fox 2003): with k occupied bins the target count is
  /// (k-1)/(2*eps) * (1 - 2/(9(k-1)) + sqrt(2/(9(k-1))) * z)^3, the particle
  /// count needed to keep the K-L divergence between the sample distribution
  /// and the binned posterior below eps with confidence quantile z.
  double kld_epsilon = 0.05;
  /// Upper standard-normal quantile z_{1-delta}; 2.33 is the 99% bound.
  double kld_quantile = 2.33;

  /// Bin pitch for the occupancy count, in length units. 0 (default) derives
  /// fusion_range / 4 — finer than the particle index so a fusion disk spans
  /// several bins and occupancy tracks posterior spread, not disk count.
  double budget_bin_size = 0.0;

  /// Controller cadence: run once every this many filter iterations
  /// (readings). The default ~ two thirds of a time step of the paper's 6x6
  /// grid, frequent enough that the budget settles within a few steps.
  std::size_t budget_adapt_interval = 24;

  /// Shrinking requires this many consecutive controller runs with a stable
  /// strong-mode set (count within +/-1, displacement under
  /// budget_mode_displacement); the same number of consecutive CHURNING runs
  /// grows the budget instead — hysteresis in both directions.
  std::size_t budget_stability_window = 2;

  /// Max nearest-mode displacement (length units) between consecutive
  /// controller runs for the mode set to still count as stable.
  double budget_mode_displacement = 5.0;

  /// Degeneracy alarm: global ESS fraction below this floor grows the budget
  /// by 1.5x toward max_particles regardless of the KLD target.
  double budget_ess_floor = 0.25;
};

}  // namespace radloc

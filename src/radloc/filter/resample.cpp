#include "radloc/filter/resample.hpp"

#include <cmath>

#include "radloc/common/math.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

std::vector<std::uint32_t> systematic_resample(Rng& rng, std::span<const double> weights,
                                               std::size_t count) {
  std::vector<std::uint32_t> out;
  systematic_resample(rng, weights, count, out);
  return out;
}

void systematic_resample(Rng& rng, std::span<const double> weights, std::size_t count,
                         std::vector<std::uint32_t>& out) {
  // A single NaN/inf weight would poison the cumulative sum and silently pin
  // every pick to one index (collapsing the subset), so non-finite input is a
  // hard error, reported explicitly rather than folded into the total.
  // Scanning also locates the first/last strictly positive weights: picks
  // must never land on a zero-weight index, which the plain cumulative walk
  // allows in two edge cases (pointer == 0 with a zero-weight prefix, and
  // pointer drifting past the total by accumulated rounding with a
  // zero-weight tail). Zeros add exactly nothing to an IEEE sum, so `total`
  // matches the pre-guard accumulate bit-for-bit and well-formed inputs
  // resample identically.
  double total = 0.0;
  std::size_t first_pos = weights.size();
  std::size_t last_pos = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    require(std::isfinite(w), "resampling weights must be finite (NaN/inf weight)");
    require(w >= 0.0, "resampling weights must be non-negative");
    if (w > 0.0) {
      if (first_pos == weights.size()) first_pos = i;
      last_pos = i;
      total += w;
    }
  }
  require(total > 0.0, "resampling needs a positive total weight");

  out.clear();
  out.reserve(count);
  if (count == 0) return;

  const double step = total / static_cast<double>(count);
  double pointer = uniform01(rng) * step;
  double cumulative = weights[first_pos];
  std::size_t i = first_pos;
  for (std::size_t k = 0; k < count; ++k) {
    while (cumulative < pointer && i < last_pos) {
      ++i;
      cumulative += weights[i];
    }
    out.push_back(static_cast<std::uint32_t>(i));
    pointer += step;
  }
}

}  // namespace radloc

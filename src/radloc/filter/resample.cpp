#include "radloc/filter/resample.hpp"

#include <numeric>

#include "radloc/common/math.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

std::vector<std::uint32_t> systematic_resample(Rng& rng, std::span<const double> weights,
                                               std::size_t count) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  require(total > 0.0, "resampling needs a positive total weight");

  std::vector<std::uint32_t> out;
  out.reserve(count);
  if (count == 0) return out;

  const double step = total / static_cast<double>(count);
  double pointer = uniform01(rng) * step;
  double cumulative = weights[0];
  std::uint32_t i = 0;
  for (std::size_t k = 0; k < count; ++k) {
    while (cumulative < pointer && i + 1 < weights.size()) {
      ++i;
      cumulative += weights[i];
    }
    out.push_back(i);
    pointer += step;
  }
  return out;
}

}  // namespace radloc

// Source movement models — the F_movement : A -> A of Sec. V-B.
//
// The paper assumes static sources (P'' = P'); the hook exists so the same
// filter tracks slowly moving sources (the paper's future-work direction).
#pragma once

#include "radloc/common/types.hpp"
#include "radloc/rng/rng.hpp"

namespace radloc {

class MovementModel {
 public:
  virtual ~MovementModel() = default;

  /// Evolves one particle hypothesis in place for one iteration.
  virtual void evolve(Rng& rng, Point2& pos, double& strength) const = 0;
};

/// P'' = P': the paper's static-source assumption.
class StaticMovement final : public MovementModel {
 public:
  void evolve(Rng& /*rng*/, Point2& /*pos*/, double& /*strength*/) const override {}
};

/// Isotropic Gaussian random walk with the given per-iteration std-dev.
class RandomWalkMovement final : public MovementModel {
 public:
  explicit RandomWalkMovement(double step_sigma) : sigma_(step_sigma) {}

  void evolve(Rng& rng, Point2& pos, double& strength) const override;

 private:
  double sigma_;
};

}  // namespace radloc

// Particle representation.
//
// The filter stores particles struct-of-arrays (positions contiguously) so
// the spatial grid index and the mean-shift kernel loops stay cache-friendly;
// `Particle` is the AoS view handed out by accessors.
#pragma once

#include "radloc/common/types.hpp"

namespace radloc {

/// One hypothesis <x, y, strength> with its posterior weight.
struct Particle {
  Point2 pos;
  double strength = 0.0;  ///< micro-Curies
  double weight = 0.0;    ///< normalized over the whole population
};

}  // namespace radloc

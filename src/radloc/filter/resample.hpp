// Systematic resampling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radloc/rng/rng.hpp"

namespace radloc {

/// Systematic (stratified, single-offset) resampling: draws `count` indices
/// in [0, weights.size()) with probability proportional to weights[i].
/// Weights need not be normalized but must be non-negative with a positive
/// sum. Output indices are non-decreasing.
[[nodiscard]] std::vector<std::uint32_t> systematic_resample(Rng& rng,
                                                             std::span<const double> weights,
                                                             std::size_t count);

}  // namespace radloc

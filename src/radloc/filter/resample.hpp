// Systematic resampling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radloc/rng/rng.hpp"

namespace radloc {

/// Systematic (stratified, single-offset) resampling: draws `count` indices
/// in [0, weights.size()) with probability proportional to weights[i].
/// Weights need not be normalized but must be finite and non-negative with a
/// positive sum (violations throw std::invalid_argument — a single NaN would
/// otherwise silently collapse every pick onto one index). Output indices are
/// non-decreasing, and every returned index has strictly positive weight.
[[nodiscard]] std::vector<std::uint32_t> systematic_resample(Rng& rng,
                                                             std::span<const double> weights,
                                                             std::size_t count);

/// Allocation-free variant for per-reading callers: fills `out` (cleared
/// first, capacity reused) instead of returning a fresh vector. Identical
/// semantics and RNG draw order — the uniform offset is consumed only when
/// count > 0, exactly like the returning overload.
void systematic_resample(Rng& rng, std::span<const double> weights, std::size_t count,
                         std::vector<std::uint32_t>& out);

}  // namespace radloc

#include "radloc/filter/particle_filter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "radloc/common/math.hpp"
#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/filter/resample.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/simd/simd.hpp"

namespace radloc {

namespace {

// Grid pitch for the particle index: half the fusion range balances cell
// occupancy against the number of cells scanned per query.
double index_cell_size(const FilterConfig& cfg) { return std::max(cfg.fusion_range / 2.0, 1.0); }

// RADLOC_SCORING_CACHE: entry-count override applied only when the config
// leaves scoring_cache_entries at its default 0 (safe fleet-wide because a
// cache hit is bit-identical to recomputing). Read per call — constructors
// are cold — and clamped to a sane entry count.
std::size_t env_scoring_cache_entries() {
  const char* v = std::getenv("RADLOC_SCORING_CACHE");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    std::fprintf(stderr,
                 "radloc: ignoring unrecognized RADLOC_SCORING_CACHE='%s' "
                 "(expected an entry count); cache stays off\n",
                 v);
    return 0;
  }
  constexpr unsigned long long kMaxEntries = 4096;
  return static_cast<std::size_t>(std::min(n, kMaxEntries));
}

}  // namespace

FusionParticleFilter::FusionParticleFilter(const Environment& env, std::vector<Sensor> sensors,
                                           FilterConfig cfg, Rng rng)
    : env_(&env),
      sensors_(std::move(sensors)),
      cfg_(cfg),
      rng_(rng),
      validator_(sensors_.size()),
      movement_(std::make_unique<StaticMovement>()),
      grid_(env.bounds(), index_cell_size(cfg)) {
  require(cfg_.num_particles > 0, "filter needs at least one particle");
  require(cfg_.fusion_range > 0.0, "fusion range must be positive");
  require(cfg_.resample_noise_sigma >= 0.0, "resample noise must be non-negative");
  require(cfg_.random_replacement_frac >= 0.0 && cfg_.random_replacement_frac < 1.0,
          "random replacement fraction must be in [0, 1)");
  require(cfg_.strength_min > 0.0 && cfg_.strength_max >= cfg_.strength_min,
          "strength prior range invalid");
  // Budget fields are validated unconditionally — a config that would blow
  // up the moment adaptive_budget flips on is rejected up front, matching
  // the MeasurementValidator philosophy of failing at the choke point.
  require(std::isfinite(cfg_.ess_resample_threshold) && cfg_.ess_resample_threshold > 0.0,
          "ESS resample threshold must be finite and positive");
  require(cfg_.min_particles > 0 && cfg_.max_particles > 0, "particle budgets must be non-zero");
  require(cfg_.min_particles <= cfg_.max_particles,
          "min_particles must not exceed max_particles");
  require(std::isfinite(cfg_.kld_epsilon) && cfg_.kld_epsilon > 0.0,
          "KLD epsilon must be finite and positive");
  require(std::isfinite(cfg_.kld_quantile) && cfg_.kld_quantile > 0.0,
          "KLD quantile must be finite and positive");
  require(std::isfinite(cfg_.budget_bin_size) && cfg_.budget_bin_size >= 0.0,
          "budget bin size must be finite and non-negative");
  require(cfg_.budget_adapt_interval > 0, "budget adapt interval must be non-zero");
  require(cfg_.budget_stability_window > 0, "budget stability window must be non-zero");
  require(std::isfinite(cfg_.budget_mode_displacement) && cfg_.budget_mode_displacement >= 0.0,
          "budget mode displacement must be finite and non-negative");
  require(std::isfinite(cfg_.budget_ess_floor) && cfg_.budget_ess_floor >= 0.0 &&
              cfg_.budget_ess_floor <= 1.0,
          "budget ESS floor must be in [0, 1]");
  if (cfg_.adaptive_budget) {
    require(cfg_.num_particles >= cfg_.min_particles && cfg_.num_particles <= cfg_.max_particles,
            "num_particles must start inside [min_particles, max_particles]");
  }
  // An empty sensor list is allowed: mobile-detector users feed readings
  // through process_reading() and never reference a sensor id.
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    require(sensors_[i].id == i, "sensor ids must be dense and in order");
  }
  if (cfg_.use_known_obstacles && cfg_.use_transmission_cache) {
    cache_ = std::make_unique<TransmissionCache>(*env_, cfg_.transmission_cache_cell);
  }
  scoring_cache_capacity_ =
      cfg_.scoring_cache_entries > 0 ? cfg_.scoring_cache_entries : env_scoring_cache_entries();
  score_cache_.reserve(std::min<std::size_t>(scoring_cache_capacity_, 64));
  initialize_particles();
}

void FusionParticleFilter::initialize_particles() {
  const std::size_t np = cfg_.num_particles;
  if (cfg_.adaptive_budget) {
    // Reserve the cap once so later resize_budget() calls never reallocate
    // the SoA arrays — the zero-allocation steady state survives resizes.
    positions_.reserve(cfg_.max_particles);
    strengths_.reserve(cfg_.max_particles);
    weights_.reserve(cfg_.max_particles);
  }
  positions_.resize(np);
  strengths_.resize(np);
  weights_.assign(np, 1.0 / static_cast<double>(np));
  simd::assert_vector_aligned(positions_.data());
  simd::assert_vector_aligned(strengths_.data());
  simd::assert_vector_aligned(weights_.data());
  for (std::size_t i = 0; i < np; ++i) {
    positions_[i] = random_position();
    strengths_[i] = random_strength();
  }
  grid_dirty_ = true;
}

Point2 FusionParticleFilter::random_position() { return uniform_point(rng_, env_->bounds()); }

double FusionParticleFilter::random_strength() {
  if (cfg_.log_uniform_strength) {
    return std::exp(uniform(rng_, std::log(cfg_.strength_min), std::log(cfg_.strength_max)));
  }
  return uniform(rng_, cfg_.strength_min, cfg_.strength_max);
}

double FusionParticleFilter::hypothesis_rate(const Point2& at, const SensorResponse& response,
                                             const Point2& pos, double strength,
                                             const TransmissionCache* cache,
                                             const TransmissionCache::Field* field) const {
  const Source hypothesis{pos, strength};
  if (!cfg_.use_known_obstacles) {
    return expected_cpm_single_free_space(at, hypothesis, response);
  }
  if (field != nullptr) {
    // Cached Eq. (3): exact free-space fading times the memoized
    // transmission of the sensor->particle path.
    return kMicroCurieToCpm * response.efficiency * free_space_intensity(at, hypothesis) *
               cache->transmission(*field, pos) +
           response.background_cpm;
  }
  return expected_cpm_single(at, hypothesis, *env_, response);
}

void FusionParticleFilter::set_movement_model(std::unique_ptr<MovementModel> model) {
  require(model != nullptr, "movement model must not be null");
  movement_ = std::move(model);
  // Hoisted once here instead of a dynamic_cast per reading in the predict
  // step; also gates the scoring cache and fused updates.
  movement_is_static_ = dynamic_cast<const StaticMovement*>(movement_.get()) != nullptr;
}

double FusionParticleFilter::effective_sample_size() const {
  double sum_sq = 0.0;
  for (const double w : weights_) sum_sq += w * w;
  return sum_sq > 0.0 ? 1.0 / sum_sq : 0.0;
}

std::vector<Particle> FusionParticleFilter::particles() const {
  std::vector<Particle> out(positions_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Particle{positions_[i], strengths_[i], weights_[i]};
  }
  return out;
}

std::size_t FusionParticleFilter::process(const Measurement& m) {
  {
    const obs::ScopedSpan span(tracer_, obs::Stage::kValidate);
    MeasurementValidator::enforce(validator_.admit(m));
  }
  const Sensor& sensor = sensors_[m.sensor];
  return process_reading_impl(sensor.pos, sensor.response, m.cpm);
}

ReadingFault FusionParticleFilter::try_process(const Measurement& m) {
  ReadingFault fault;
  {
    const obs::ScopedSpan span(tracer_, obs::Stage::kValidate);
    fault = validator_.admit(m);
  }
  if (fault != ReadingFault::kNone) return fault;
  const Sensor& sensor = sensors_[m.sensor];
  (void)process_reading_impl(sensor.pos, sensor.response, m.cpm);
  return ReadingFault::kNone;
}

std::size_t FusionParticleFilter::process_reading(const Point2& at,
                                                  const SensorResponse& response, double cpm) {
  MeasurementValidator::enforce(validator_.admit_reading(at, cpm));
  return process_reading_impl(at, response, cpm);
}

std::size_t FusionParticleFilter::process_reading_impl(const Point2& at,
                                                       const SensorResponse& response,
                                                       double cpm) {
  ++iteration_;
  // log(cpm!) is constant across the subset — pay lgamma once, not per
  // particle (PoissonLogPmf evaluates bit-identically to poisson_log_pmf).
  const PoissonLogPmf log_pmf(cpm);
  return score_reading(at, response, log_pmf.count(), 1.0, log_pmf.log_k_factorial());
}

std::size_t FusionParticleFilter::process_fused(std::span<const Measurement> group) {
  if (group.empty()) return 0;
  // Every reading is validated and tallied exactly as process() would; a
  // fault anywhere rejects the whole group before any state changes.
  for (const auto& m : group) {
    MeasurementValidator::enforce(validator_.admit(m));
  }
  for (const auto& m : group) {
    require(m.sensor == group.front().sensor, "fused group must share one sensor");
  }
  const Sensor& sensor = sensors_[group.front().sensor];
  if (group.size() == 1) {
    // Bit-for-bit the plain path: 1.0 * lambda is exact, same association.
    return process_reading_impl(sensor.pos, sensor.response, group.front().cpm);
  }
  require(movement_is_static_,
          "fused updates require a static movement model (per-reading prediction "
          "cannot be batched)");
  // The K readings share one hypothesis-rate vector, so their per-particle
  // log-likelihoods add: sum_j [k_j log(l) - l - log(k_j!)]
  //                    = k_sum log(l) - K*l - sum_j log(k_j!).
  double k_sum = 0.0;
  double log_fact_sum = 0.0;
  for (const auto& m : group) {
    const PoissonLogPmf log_pmf(m.cpm);
    k_sum += log_pmf.count();
    log_fact_sum += log_pmf.log_k_factorial();
  }
  iteration_ += group.size();  // the stream clock counts readings, not updates
  ++fused_groups_;
  fused_readings_ += group.size();
  return score_reading(sensor.pos, sensor.response, k_sum, static_cast<double>(group.size()),
                       log_fact_sum);
}

FusionParticleFilter::CacheEntry* FusionParticleFilter::cache_find(const Point2& at,
                                                                   const SensorResponse& response) {
  ++cache_lookups_;
  ++cache_tick_;
  for (auto& e : score_cache_) {
    if (e.valid && e.origin.x == at.x && e.origin.y == at.y &&
        e.efficiency == response.efficiency && e.background == response.background_cpm &&
        e.generation == particle_generation_ && e.env_revision == env_->revision()) {
      e.last_used = cache_tick_;
      ++cache_hits_;
      return &e;
    }
  }
  return nullptr;
}

FusionParticleFilter::CacheEntry* FusionParticleFilter::cache_begin_store(
    const Point2& at, const SensorResponse& response) {
  CacheEntry* victim = nullptr;
  // Reuse the slot already keyed to this origin (stale or not) so a sensor
  // never occupies two entries; else an unused slot; else grow; else LRU.
  for (auto& e : score_cache_) {
    if (e.origin.x == at.x && e.origin.y == at.y && e.efficiency == response.efficiency &&
        e.background == response.background_cpm) {
      victim = &e;
      break;
    }
  }
  if (victim == nullptr) {
    for (auto& e : score_cache_) {
      if (!e.valid) {
        victim = &e;
        break;
      }
    }
  }
  if (victim == nullptr && score_cache_.size() < scoring_cache_capacity_) {
    victim = &score_cache_.emplace_back();
  }
  if (victim == nullptr) {
    victim = &*std::min_element(
        score_cache_.begin(), score_cache_.end(),
        [](const CacheEntry& a, const CacheEntry& b) { return a.last_used < b.last_used; });
  }
  victim->valid = false;
  return victim;
}

void FusionParticleFilter::cache_commit(CacheEntry& e, const Point2& at,
                                        const SensorResponse& response) {
  e.origin = at;
  e.efficiency = response.efficiency;
  e.background = response.background_cpm;
  e.generation = particle_generation_;
  e.env_revision = env_->revision();
  e.last_used = cache_tick_;
  e.valid = true;
}

std::size_t FusionParticleFilter::score_reading(const Point2& at, const SensorResponse& response,
                                                double k_sum, double reps, double log_fact_sum) {
  if (cache_enabled()) {
    if (CacheEntry* hit = cache_find(at, response)) {
      // Skip the spatial query, the gather, the transmission lookups, and
      // the rate kernel; the Poisson scoring still runs against the CURRENT
      // weights. An empty memoized subset is the cheapest hit of all.
      if (hit->subset.empty()) return 0;
      return apply_scores(hit->subset, hit->rates, k_sum, reps, log_fact_sum, hit->kernel_pmf);
    }
    CacheEntry* e = cache_begin_store(at, response);
    const bool nonempty = select_and_rate(at, response, e->rates, e->kernel_pmf);
    e->subset.assign(subset_.begin(), subset_.end());
    if (!nonempty) e->rates.clear();
    cache_commit(*e, at, response);
    if (!nonempty) return 0;
    return apply_scores(e->subset, e->rates, k_sum, reps, log_fact_sum, e->kernel_pmf);
  }
  bool kernel_pmf = false;
  if (!select_and_rate(at, response, rates_scratch_, kernel_pmf)) return 0;
  return apply_scores(subset_, rates_scratch_, k_sum, reps, log_fact_sum, kernel_pmf);
}

bool FusionParticleFilter::select_and_rate(const Point2& at, const SensorResponse& response,
                                           simd::AVector<double>& rates_out,
                                           bool& kernel_pmf_out) {
  // Span covers the memoizable stage the scoring cache skips on a hit:
  // spatial selection, predict, and the hypothesis-rate kernels.
  const obs::ScopedSpan span(tracer_, obs::Stage::kFusionQuery);
  if (grid_dirty_) {
    grid_.rebuild(positions_);
    grid_dirty_ = false;
  }

  // --- Selection (Eq. 5): P' = particles within the fusion range. ---
  grid_.query_radius(positions_, at, cfg_.fusion_range, subset_);
  if (subset_.empty()) return false;

  // --- Predict: evolve the selected hypotheses. ---
  if (!movement_is_static_) {
    for (const auto i : subset_) {
      movement_->evolve(rng_, positions_[i], strengths_[i]);
      positions_[i] = env_->bounds().clamp(positions_[i]);
    }
    grid_dirty_ = true;
    ++particle_generation_;
  }

  // The transmission field for this origin is prepared serially here; the
  // parallel loop below only reads it. A borrowed shared cache (prepared up
  // front, read-only — safe across concurrent trials) wins over the owned
  // one; origins it lacks fall back to exact geometry.
  const TransmissionCache* cache = shared_cache_ != nullptr ? shared_cache_ : cache_.get();
  const TransmissionCache::Field* field = nullptr;
  if (shared_cache_ != nullptr) {
    field = shared_cache_->find(at);
  } else if (cache_ != nullptr) {
    field = cache_->prepare(at);
  }

  const std::size_t n = subset_.size();
  rates_out.resize(n);
  const simd::Kernels& ker = simd::kernels();

  // Rates run through the batch kernels (simd/simd.hpp) whenever the rate
  // is pure arithmetic: free space, or the cached Eq. (3) path whose
  // transmissions are bilinear lookups. Obstacle geometry without a cache
  // field keeps the per-particle exact path. The scalar tier replays the
  // seed expressions bit for bit; vector tiers are an explicit opt-in.
  const bool batched = !cfg_.use_known_obstacles || field != nullptr;
  kernel_pmf_out = batched;
  if (batched) {
    scratch_x_.resize(n);
    scratch_y_.resize(n);
    scratch_s_.resize(n);
    const bool use_field = cfg_.use_known_obstacles;
    if (use_field) scratch_t_.resize(n);
    simd::assert_vector_aligned(scratch_x_.data());
    simd::assert_vector_aligned(rates_out.data());
    const double scale = kMicroCurieToCpm * response.efficiency;
    const simd::BilinearGrid grid = use_field ? cache->grid_view(*field) : simd::BilinearGrid{};
    const auto rate_chunk = [&](std::size_t begin, std::size_t end) {
      const std::size_t len = end - begin;
      if (len == 0) return;
      double* gx = scratch_x_.data() + begin;
      double* gy = scratch_y_.data() + begin;
      double* gs = scratch_s_.data() + begin;
      for (std::size_t k = 0; k < len; ++k) {
        const auto i = subset_[begin + k];
        gx[k] = positions_[i].x;
        gy[k] = positions_[i].y;
        gs[k] = strengths_[i];
      }
      const double* gt = nullptr;
      if (use_field) {
        double* t = scratch_t_.data() + begin;
        ker.bilinear(grid, gx, gy, t, len);
        gt = t;
      }
      ker.hypothesis_rates(at.x, at.y, scale, response.background_cpm, gx, gy, gs, gt,
                           rates_out.data() + begin, len);
    };
    if (pool_ != nullptr) {
      // Chunks write disjoint slots; kernels are elementwise with padded
      // tails, so any chunking yields the same bits within a tier, and the
      // scoring/reductions downstream run serially in index order.
      pool_->parallel_for(n, rate_chunk);
    } else {
      rate_chunk(0, n);
    }
  } else {
    const auto rate_chunk = [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        const auto i = subset_[k];
        rates_out[k] = hypothesis_rate(at, response, positions_[i], strengths_[i], cache, field);
      }
    };
    if (pool_ != nullptr) {
      pool_->parallel_for(n, rate_chunk);
    } else {
      rate_chunk(0, n);
    }
  }
  return true;
}

std::size_t FusionParticleFilter::apply_scores(std::span<const std::uint32_t> subset,
                                               const simd::AVector<double>& rates, double k_sum,
                                               double reps, double log_fact_sum, bool kernel_pmf) {
  // The weight-update span covers Poisson scoring through the resample
  // decision; when the resample runs, its span nests inside this one.
  const obs::ScopedSpan span(tracer_, obs::Stage::kWeightUpdate);
  // --- Weight update (Sec. V-C), computed in log space. ---
  // Raw likelihoods can underflow for wildly wrong hypotheses; we rescale by
  // the subset max log-likelihood. The subset's *total* mass is preserved
  // explicitly below, so the rescaling cannot tilt the subset-vs-rest
  // balance (the paper normalizes globally after merging; preserving subset
  // mass keeps the same invariant without underflow).
  const double subset_mass_before =
      std::accumulate(subset.begin(), subset.end(), 0.0,
                      [&](double acc, std::uint32_t i) { return acc + weights_[i]; });
  if (subset_mass_before <= 0.0) return 0;

  const std::size_t n = subset.size();
  subset_weights_.resize(n);
  simd::assert_vector_aligned(subset_weights_.data());
  const simd::Kernels& ker = simd::kernels();
  // The batch-kernel flavor scores through the active tier; the exact-
  // geometry flavor replays the seed's per-particle scalar PoissonLogPmf
  // (the scalar kernel is bit-identical to it) regardless of tier.
  const simd::Kernels& pker = kernel_pmf ? ker : simd::kernels_for(simd::Tier::kScalar);
  const bool fused = reps != 1.0;
  const auto pmf_chunk = [&](std::size_t begin, std::size_t end) {
    const std::size_t len = end - begin;
    if (len == 0) return;
    if (fused) {
      pker.poisson_log_pmf_fused(k_sum, reps, log_fact_sum, rates.data() + begin,
                                 subset_weights_.data() + begin, len);
    } else {
      pker.poisson_log_pmf(k_sum, log_fact_sum, rates.data() + begin,
                           subset_weights_.data() + begin, len);
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(n, pmf_chunk);
  } else {
    pmf_chunk(0, n);
  }

  const double max_ll = ker.max_value(subset_weights_.data(), n);
  if (!std::isfinite(max_ll)) return 0;  // measurement impossible for all hypotheses

  ker.exp_shifted(subset_weights_.data(), max_ll, subset_weights_.data(), n);
  double new_mass = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    subset_weights_[k] = weights_[subset[k]] * subset_weights_[k];
    new_mass += subset_weights_[k];
  }
  if (new_mass <= 0.0 || !std::isfinite(new_mass)) return 0;  // degenerate update: skip
  particles_scored_ += n;

  // Scale the posterior subset weights so the subset keeps its prior mass,
  // then write back. Global weights remain normalized.
  const double scale = subset_mass_before / new_mass;
  for (std::size_t k = 0; k < subset.size(); ++k) {
    weights_[subset[k]] = subset_weights_[k] * scale;
  }

  // ESS gate: a near-uniform posterior subset gains nothing from resampling.
  // ESS is scale-invariant, so it is computed on the unscaled posterior
  // weights (new_mass is already their sum). Thresholds >= 1.0 short-circuit
  // — no extra pass, no behavior change, bit-identical to the seed (FP
  // rounding can push the fraction of an exactly uniform subset marginally
  // above 1.0, so `frac > threshold` alone would not preserve that).
  if (cfg_.ess_resample_threshold < 1.0) {
    double sum_sq = 0.0;
    for (std::size_t k = 0; k < n; ++k) sum_sq += subset_weights_[k] * subset_weights_[k];
    if (sum_sq > 0.0 &&
        new_mass * new_mass > cfg_.ess_resample_threshold * static_cast<double>(n) * sum_sq) {
      // Skip the resample: no RNG consumed; positions unchanged by this
      // branch, so the grid stays valid unless predict already dirtied it —
      // and the particle generation is unchanged, so cache entries survive.
      ++resamples_skipped_;
      return subset.size();
    }
  }

  // --- Resample P'' locally (Sec. V-E). ---
  resample_subset(subset, subset_mass_before);
  ++resamples_performed_;
  grid_dirty_ = true;

  return subset.size();
}

void FusionParticleFilter::resample_subset(std::span<const std::uint32_t> subset,
                                           double subset_mass) {
  const obs::ScopedSpan span(tracer_, obs::Stage::kResample);
  subset_weights_.resize(subset.size());
  for (std::size_t k = 0; k < subset.size(); ++k) subset_weights_[k] = weights_[subset[k]];

  systematic_resample(rng_, subset_weights_, subset.size(), picks_);

  // Materialize the resampled hypotheses before overwriting the slots.
  // picks_/drawn_ are members: a steady-state reading reuses their capacity
  // instead of allocating (tests/test_alloc_steady.cpp).
  auto& drawn = drawn_;
  drawn.clear();
  drawn.reserve(picks_.size());
  std::uint32_t prev = std::numeric_limits<std::uint32_t>::max();
  for (const auto k : picks_) {
    const auto i = subset[k];
    Drawn d{positions_[i], strengths_[i]};
    if (k == prev) {
      // Duplicated particle: regularization jitter (Gordon et al. [24]).
      d.pos.x += normal(rng_, 0.0, cfg_.resample_noise_sigma);
      d.pos.y += normal(rng_, 0.0, cfg_.resample_noise_sigma);
      d.pos = env_->bounds().clamp(d.pos);
      if (cfg_.strength_jitter_sigma > 0.0) {
        d.strength *= std::exp(normal(rng_, 0.0, cfg_.strength_jitter_sigma));
        d.strength = std::clamp(d.strength, cfg_.strength_min, cfg_.strength_max);
      }
    }
    prev = k;
    drawn.push_back(d);
  }

  // Fresh uniform particles for source appearance (Sec. V-E, last para.).
  for (auto& d : drawn) {
    if (uniform01(rng_) < cfg_.random_replacement_frac) {
      d.pos = random_position();
      d.strength = random_strength();
    }
  }

  // Write back with uniform weights that preserve the subset's mass.
  const double w = subset_mass / static_cast<double>(subset.size());
  for (std::size_t k = 0; k < subset.size(); ++k) {
    const auto slot = subset[k];
    positions_[slot] = drawn[k].pos;
    strengths_[slot] = drawn[k].strength;
    weights_[slot] = w;
  }
  // Positions/strengths changed: every scoring-cache entry is now stale
  // (random replacement can move a particle into ANY fusion disk, so
  // per-entry overlap reasoning would be unsound — invalidate globally).
  ++particle_generation_;
}

std::size_t FusionParticleFilter::resize_budget(std::size_t count) {
  require(count > 0, "particle budget must be non-zero");
  const std::size_t old_count = positions_.size();
  if (count == old_count) return old_count;  // no-op: no RNG consumed

  // Systematic resample over the FULL population re-represents the posterior
  // at the new budget; duplicates get the same regularization jitter as the
  // local resample (shrinking concentrates picks, growing duplicates them —
  // jitter keeps diversity either way). No random replacement: a resize is a
  // re-representation, not a filter iteration, so source-appearance
  // exploration stays the local resample's job.
  systematic_resample(rng_, weights_, count, picks_);
  auto& drawn = drawn_;
  drawn.clear();
  drawn.reserve(picks_.size());
  std::uint32_t prev = std::numeric_limits<std::uint32_t>::max();
  for (const auto i : picks_) {
    Drawn d{positions_[i], strengths_[i]};
    if (i == prev) {
      d.pos.x += normal(rng_, 0.0, cfg_.resample_noise_sigma);
      d.pos.y += normal(rng_, 0.0, cfg_.resample_noise_sigma);
      d.pos = env_->bounds().clamp(d.pos);
      if (cfg_.strength_jitter_sigma > 0.0) {
        d.strength *= std::exp(normal(rng_, 0.0, cfg_.strength_jitter_sigma));
        d.strength = std::clamp(d.strength, cfg_.strength_min, cfg_.strength_max);
      }
    }
    prev = i;
    drawn.push_back(d);
  }

  positions_.resize(count);
  strengths_.resize(count);
  weights_.resize(count);
  simd::assert_vector_aligned(positions_.data());
  simd::assert_vector_aligned(strengths_.data());
  simd::assert_vector_aligned(weights_.data());
  const double w = 1.0 / static_cast<double>(count);
  for (std::size_t k = 0; k < count; ++k) {
    positions_[k] = drawn[k].pos;
    strengths_[k] = drawn[k].strength;
    weights_[k] = w;
  }
  grid_dirty_ = true;
  // A resize rewrites the whole population — and shrinking can leave cached
  // subset indices out of range — so the generation must move.
  ++particle_generation_;
  return count;
}

}  // namespace radloc

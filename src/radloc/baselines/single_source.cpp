#include "radloc/baselines/single_source.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "radloc/common/math.hpp"
#include "radloc/optim/nelder_mead.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

SingleSourceLocalizer::SingleSourceLocalizer(const Environment& env, std::vector<Sensor> sensors,
                                             SingleSourceConfig cfg)
    : env_(&env), sensors_(std::move(sensors)), cfg_(cfg) {
  require(sensors_.size() >= 3, "single-source localizers need at least 3 sensors");
}

std::vector<double> SingleSourceLocalizer::average_per_sensor(
    std::span<const Measurement> measurements) const {
  std::vector<double> sum(sensors_.size(), 0.0);
  std::vector<std::size_t> count(sensors_.size(), 0);
  for (const auto& m : measurements) {
    require(m.sensor < sensors_.size(), "measurement from unknown sensor");
    sum[m.sensor] += m.cpm;
    ++count[m.sensor];
  }
  for (std::size_t i = 0; i < sum.size(); ++i) {
    if (count[i] > 0) sum[i] /= static_cast<double>(count[i]);
  }
  return sum;
}

SourceEstimate SingleSourceLocalizer::fit_subset(std::span<const double> avg_cpm,
                                                 std::span<const std::size_t> subset, Rng& rng,
                                                 std::size_t restarts) const {
  const AreaBounds& bounds = env_->bounds();
  const double log_smin = std::log(cfg_.strength_min);
  const double log_smax = std::log(cfg_.strength_max);

  auto objective = [&](const std::vector<double>& p) {
    const Source hyp{{p[0], p[1]}, std::exp(std::clamp(p[2], log_smin - 3.0, log_smax + 3.0))};
    double nll = 0.0;
    for (const std::size_t i : subset) {
      const Sensor& s = sensors_[i];
      const double rate = expected_cpm_single_free_space(s.pos, hyp, s.response);
      nll -= poisson_log_pmf(std::round(avg_cpm[i]), rate);
    }
    double penalty = 0.0;
    if (p[0] < bounds.min.x) penalty += square(bounds.min.x - p[0]);
    if (p[0] > bounds.max.x) penalty += square(p[0] - bounds.max.x);
    if (p[1] < bounds.min.y) penalty += square(bounds.min.y - p[1]);
    if (p[1] > bounds.max.y) penalty += square(p[1] - bounds.max.y);
    return nll + 1e3 * penalty;
  };

  NelderMeadOptions opts;
  opts.initial_step = 0.15 * std::min(bounds.width(), bounds.height());
  opts.max_evaluations = 2000;

  NelderMeadResult best;
  best.value = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < restarts; ++r) {
    const Point2 start = uniform_point(rng, bounds);
    auto res = nelder_mead(objective, {start.x, start.y, uniform(rng, log_smin, log_smax)}, opts);
    if (res.value < best.value) best = std::move(res);
  }
  return SourceEstimate{{best.x[0], best.x[1]}, std::exp(best.x[2]), 1.0};
}

SourceEstimate SingleSourceLocalizer::fit_ml(std::span<const double> avg_cpm, Rng& rng) const {
  require(avg_cpm.size() == sensors_.size(), "need one average reading per sensor");
  std::vector<std::size_t> all(sensors_.size());
  std::iota(all.begin(), all.end(), 0u);
  return fit_subset(avg_cpm, all, rng, cfg_.restarts);
}

SourceEstimate SingleSourceLocalizer::fit_moe(std::span<const double> avg_cpm, Rng& rng) const {
  require(avg_cpm.size() == sensors_.size(), "need one average reading per sensor");

  std::vector<double> xs, ys, ss;
  for (std::size_t t = 0; t < cfg_.moe_triples; ++t) {
    std::size_t tri[3];
    tri[0] = static_cast<std::size_t>(uniform_index(rng, sensors_.size()));
    do {
      tri[1] = static_cast<std::size_t>(uniform_index(rng, sensors_.size()));
    } while (tri[1] == tri[0]);
    do {
      tri[2] = static_cast<std::size_t>(uniform_index(rng, sensors_.size()));
    } while (tri[2] == tri[0] || tri[2] == tri[1]);

    const auto est = fit_subset(avg_cpm, tri, rng, 2);
    xs.push_back(est.pos.x);
    ys.push_back(est.pos.y);
    ss.push_back(est.strength);
  }

  // Robust combine: coordinate-wise median (trims the bad triples whose
  // three sensors barely see the source).
  auto median = [](std::vector<double>& v) {
    const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
    std::nth_element(v.begin(), mid, v.end());
    return *mid;
  };
  return SourceEstimate{{median(xs), median(ys)}, median(ss), 1.0};
}

}  // namespace radloc

#include "radloc/baselines/em_gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

EmGmmLocalizer::EmGmmLocalizer(const Environment& env, std::vector<Sensor> sensors, EmConfig cfg)
    : env_(&env), sensors_(std::move(sensors)), cfg_(cfg) {
  require(!sensors_.empty(), "EM baseline needs sensors");
  require(cfg_.max_components >= 1, "need at least one component");
  require(cfg_.restarts >= 1, "need at least one restart");
  require(cfg_.min_variance > 0.0, "variance floor must be positive");
}

namespace {

double gauss2(const Point2& x, const Point2& mu, double var) {
  return std::exp(-0.5 * distance2(x, mu) / var) / (2.0 * kPi * var);
}

}  // namespace

EmFit EmGmmLocalizer::em_once(std::span<const double> excess, std::size_t k, Rng& rng) const {
  const std::size_t n = sensors_.size();
  const double total_excess =
      std::max(std::accumulate(excess.begin(), excess.end(), 0.0), 1e-9);

  // Init: means at excess-weighted random sensors, broad variance.
  std::vector<GmmComponent> comps(k);
  for (auto& c : comps) {
    // Sample a sensor proportional to excess.
    double target = uniform01(rng) * total_excess;
    std::size_t pick = 0;
    for (std::size_t i = 0; i < n; ++i) {
      target -= excess[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    c.mean = sensors_[pick].pos + Vec2{normal(rng, 0, 3.0), normal(rng, 0, 3.0)};
    c.variance = square(0.2 * env_->bounds().width());
    c.weight = 1.0 / static_cast<double>(k);
  }

  std::vector<double> resp(n * k);
  double prev_ll = -std::numeric_limits<double>::infinity();
  double ll = prev_ll;
  for (std::size_t iter = 0; iter < cfg_.max_iterations; ++iter) {
    // E-step over the weighted sample (sensor positions, weights = excess).
    ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double mix = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        resp[i * k + j] = comps[j].weight * gauss2(sensors_[i].pos, comps[j].mean,
                                                   comps[j].variance);
        mix += resp[i * k + j];
      }
      if (mix <= 0.0) {
        for (std::size_t j = 0; j < k; ++j) resp[i * k + j] = 1.0 / static_cast<double>(k);
        mix = 1e-300;
      } else {
        for (std::size_t j = 0; j < k; ++j) resp[i * k + j] /= mix;
      }
      ll += excess[i] * std::log(mix);
    }

    // M-step (weighted).
    for (std::size_t j = 0; j < k; ++j) {
      double wsum = 0.0;
      Point2 mean{0.0, 0.0};
      for (std::size_t i = 0; i < n; ++i) {
        const double w = excess[i] * resp[i * k + j];
        wsum += w;
        mean += w * sensors_[i].pos;
      }
      if (wsum <= 1e-12) {
        comps[j].weight = 1e-6;  // starved component
        continue;
      }
      mean = (1.0 / wsum) * mean;
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        var += excess[i] * resp[i * k + j] * distance2(sensors_[i].pos, mean);
      }
      comps[j].mean = mean;
      comps[j].variance = std::max(var / (2.0 * wsum), cfg_.min_variance);
      comps[j].weight = wsum / total_excess;
    }

    if (ll - prev_ll < cfg_.tolerance && iter > 2) break;
    prev_ll = ll;
  }

  EmFit fit;
  fit.components = comps;
  fit.selected_k = k;
  fit.log_likelihood = ll;

  // Source estimates: component means; strengths re-fit against the
  // physical model (the GMM itself has no strength notion): for component
  // j, s_j = (responsibility-weighted excess) / (responsibility-weighted
  // unit-source response).
  for (std::size_t j = 0; j < k; ++j) {
    if (comps[j].weight < 1e-3) continue;  // starved
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = resp[i * k + j];
      const double unit = kMicroCurieToCpm * sensors_[i].response.efficiency *
                          free_space_intensity(sensors_[i].pos, Source{comps[j].mean, 1.0});
      num += r * excess[i];
      den += r * unit;
    }
    const double strength = den > 0.0 ? num / den : 0.0;
    fit.sources.push_back(SourceEstimate{comps[j].mean, strength, comps[j].weight});
  }
  std::sort(fit.sources.begin(), fit.sources.end(),
            [](const SourceEstimate& a, const SourceEstimate& b) {
              return a.support > b.support;
            });
  return fit;
}

EmFit EmGmmLocalizer::fit_fixed_k(std::span<const double> avg_cpm, std::size_t k,
                                  Rng& rng) const {
  require(avg_cpm.size() == sensors_.size(), "need one average reading per sensor");
  require(k >= 1, "k must be >= 1");

  std::vector<double> excess(sensors_.size());
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    excess[i] = std::max(avg_cpm[i] - sensors_[i].response.background_cpm, 0.0);
  }

  EmFit best;
  best.log_likelihood = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < cfg_.restarts; ++r) {
    EmFit fit = em_once(excess, k, rng);
    if (fit.log_likelihood > best.log_likelihood) best = std::move(fit);
  }
  return best;
}

EmFit EmGmmLocalizer::fit(std::span<const double> avg_cpm, Rng& rng) const {
  require(avg_cpm.size() == sensors_.size(), "need one average reading per sensor");

  // Effective sample size for the BIC penalty: total excess counts.
  double total_excess = 0.0;
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    total_excess += std::max(avg_cpm[i] - sensors_[i].response.background_cpm, 0.0);
  }
  const double n_eff = std::max(total_excess, 2.0);

  EmFit best;
  double best_criterion = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= cfg_.max_components; ++k) {
    EmFit fit = fit_fixed_k(avg_cpm, k, rng);
    const double params = 4.0 * static_cast<double>(k) - 1.0;  // mean(2)+var+weight per comp
    fit.criterion_value = cfg_.criterion == ModelSelection::kAic
                              ? 2.0 * params - 2.0 * fit.log_likelihood
                              : params * std::log(n_eff) - 2.0 * fit.log_likelihood;
    if (fit.criterion_value < best_criterion) {
      best_criterion = fit.criterion_value;
      best = std::move(fit);
    }
  }
  return best;
}

}  // namespace radloc

#include "radloc/baselines/mle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/simd/aligned.hpp"
#include "radloc/simd/simd.hpp"

namespace radloc {

MleLocalizer::MleLocalizer(const Environment& env, std::vector<Sensor> sensors, MleConfig cfg)
    : env_(&env), sensors_(std::move(sensors)), cfg_(cfg) {
  require(!sensors_.empty(), "MLE baseline needs sensors");
  require(cfg_.max_sources > 0, "max_sources must be >= 1");
  require(cfg_.restarts > 0, "need at least one restart");
}

double MleLocalizer::negative_log_likelihood(std::span<const Measurement> measurements,
                                             std::span<const Source> sources) const {
  std::vector<PoissonLogPmf> kernels;
  kernels.reserve(measurements.size());
  for (const auto& m : measurements) kernels.emplace_back(m.cpm);
  return nll_with_kernels(measurements, kernels, sources);
}

double MleLocalizer::nll_with_kernels(std::span<const Measurement> measurements,
                                      std::span<const PoissonLogPmf> kernels,
                                      std::span<const Source> sources) const {
  const Environment free_space = env_->without_obstacles();
  const Environment& model_env = cfg_.use_known_obstacles ? *env_ : free_space;

  // The per-measurement counts vary, so this uses the multi-k batch kernel;
  // the scalar tier replays PoissonLogPmf bit for bit, and the final sum
  // runs in measurement order exactly as before. thread_local scratch:
  // experiments evaluate objectives on concurrent trial threads, and one
  // fit calls this thousands of times — steady state must not allocate.
  struct Scratch {
    simd::AVector<double> k;
    simd::AVector<double> log_kf;
    simd::AVector<double> rates;
  };
  thread_local Scratch sc;
  const std::size_t n = measurements.size();
  sc.k.resize(n);
  sc.log_kf.resize(n);
  sc.rates.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Sensor& s = sensors_[measurements[i].sensor];
    sc.rates[i] = expected_cpm(s.pos, sources, model_env, s.response);
    sc.k[i] = kernels[i].count();
    sc.log_kf[i] = kernels[i].log_k_factorial();
  }
  simd::kernels().poisson_log_pmf_multi(sc.k.data(), sc.log_kf.data(), sc.rates.data(),
                                        sc.rates.data(), n);
  double nll = 0.0;
  for (std::size_t i = 0; i < n; ++i) nll -= sc.rates[i];
  return nll;
}

namespace {

/// Parameter vector layout: [x_0, y_0, log_s_0, x_1, ...].
std::vector<Source> unpack(const std::vector<double>& params) {
  std::vector<Source> sources(params.size() / 3);
  for (std::size_t j = 0; j < sources.size(); ++j) {
    sources[j] = Source{{params[3 * j], params[3 * j + 1]}, std::exp(params[3 * j + 2])};
  }
  return sources;
}

}  // namespace

MleFit MleLocalizer::optimize_k(std::span<const Measurement> measurements, std::size_t k,
                                Rng& rng) const {
  const AreaBounds& bounds = env_->bounds();
  const double log_smin = std::log(cfg_.strength_min);
  const double log_smax = std::log(cfg_.strength_max);

  // Per-measurement Poisson kernels, shared by every objective evaluation.
  std::vector<PoissonLogPmf> kernels;
  kernels.reserve(measurements.size());
  for (const auto& m : measurements) kernels.emplace_back(m.cpm);

  auto objective = [&](const std::vector<double>& params) {
    // Soft box penalty keeps the simplex inside the physical domain.
    double penalty = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double x = params[3 * j];
      const double y = params[3 * j + 1];
      const double ls = params[3 * j + 2];
      if (x < bounds.min.x) penalty += square(bounds.min.x - x);
      if (x > bounds.max.x) penalty += square(x - bounds.max.x);
      if (y < bounds.min.y) penalty += square(bounds.min.y - y);
      if (y > bounds.max.y) penalty += square(y - bounds.max.y);
      if (ls < log_smin) penalty += 100.0 * square(log_smin - ls);
      if (ls > log_smax) penalty += 100.0 * square(ls - log_smax);
    }
    return nll_with_kernels(measurements, kernels, unpack(params)) + 1e3 * penalty;
  };

  NelderMeadResult best;
  best.value = std::numeric_limits<double>::infinity();
  std::size_t evals = 0;
  NelderMeadOptions opts = cfg_.optimizer;
  opts.initial_step = 0.1 * std::min(bounds.width(), bounds.height());

  for (std::size_t r = 0; r < cfg_.restarts; ++r) {
    std::vector<double> x0;
    x0.reserve(3 * k);
    for (std::size_t j = 0; j < k; ++j) {
      const Point2 p = uniform_point(rng, bounds);
      x0.push_back(p.x);
      x0.push_back(p.y);
      x0.push_back(uniform(rng, log_smin, log_smax));
    }
    auto res = nelder_mead(objective, std::move(x0), opts);
    evals += res.evaluations;
    if (res.value < best.value) best = std::move(res);
  }

  MleFit fit;
  fit.selected_k = k;
  fit.total_evaluations = evals;
  const auto sources = unpack(best.x);
  fit.nll = negative_log_likelihood(measurements, sources);
  for (const auto& s : sources) {
    fit.sources.push_back(SourceEstimate{s.pos, s.strength, 1.0 / static_cast<double>(k)});
  }
  return fit;
}

MleFit MleLocalizer::fit_fixed_k(std::span<const Measurement> measurements, std::size_t k,
                                 Rng& rng) const {
  require(k > 0, "k must be >= 1");
  require(!measurements.empty(), "MLE fit needs measurements");
  return optimize_k(measurements, k, rng);
}

MleFit MleLocalizer::fit(std::span<const Measurement> measurements, Rng& rng) const {
  require(!measurements.empty(), "MLE fit needs measurements");
  const double n = static_cast<double>(measurements.size());

  MleFit best;
  double best_criterion = std::numeric_limits<double>::infinity();
  std::size_t total_evals = 0;
  for (std::size_t k = 1; k <= cfg_.max_sources; ++k) {
    MleFit fit = optimize_k(measurements, k, rng);
    total_evals += fit.total_evaluations;
    const double params = 3.0 * static_cast<double>(k);
    fit.criterion_value = cfg_.criterion == ModelSelection::kAic
                              ? 2.0 * params + 2.0 * fit.nll
                              : params * std::log(n) + 2.0 * fit.nll;
    if (fit.criterion_value < best_criterion) {
      best_criterion = fit.criterion_value;
      best = std::move(fit);
    }
  }
  best.total_evaluations = total_evals;
  return best;
}

}  // namespace radloc

#include "radloc/baselines/joint_pf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "radloc/common/math.hpp"
#include "radloc/filter/resample.hpp"
#include "radloc/radiation/intensity_model.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/simd/simd.hpp"

namespace radloc {

JointParticleFilter::JointParticleFilter(const Environment& env, std::vector<Sensor> sensors,
                                         JointPfConfig cfg, Rng rng)
    : env_(&env), sensors_(std::move(sensors)), cfg_(cfg), rng_(rng) {
  require(cfg_.num_sources > 0, "joint filter needs K >= 1");
  require(cfg_.num_particles > 0, "joint filter needs at least one particle");
  require(!sensors_.empty(), "joint filter needs sensors");

  states_.resize(cfg_.num_particles * cfg_.num_sources);
  weights_.assign(cfg_.num_particles, 1.0 / static_cast<double>(cfg_.num_particles));
  for (auto& s : states_) {
    s.pos = uniform_point(rng_, env_->bounds());
    s.strength = cfg_.log_uniform_strength
                     ? std::exp(uniform(rng_, std::log(cfg_.strength_min),
                                        std::log(cfg_.strength_max)))
                     : uniform(rng_, cfg_.strength_min, cfg_.strength_max);
  }
}

double JointParticleFilter::joint_rate(const Sensor& s, std::span<const Source> hypothesis) const {
  return expected_cpm(s.pos, hypothesis, *env_, s.response);
}

void JointParticleFilter::process(const Measurement& m) {
  require(m.sensor < sensors_.size(), "measurement from unknown sensor");
  const Sensor& sensor = sensors_[m.sensor];
  const std::size_t k = cfg_.num_sources;

  // log(cpm!) is shared by every particle's likelihood — hoist it, and
  // score all hypothesis rates with one batch kernel call (the scalar tier
  // replays PoissonLogPmf bit for bit; same for the max scan and exp).
  const PoissonLogPmf log_pmf(m.cpm);
  const std::size_t np = weights_.size();
  rates_.resize(np);
  for (std::size_t p = 0; p < np; ++p) {
    const std::span<const Source> hyp(states_.data() + p * k, k);
    rates_[p] = joint_rate(sensor, hyp);
  }
  const simd::Kernels& ker = simd::kernels();
  ker.poisson_log_pmf(log_pmf.count(), log_pmf.log_k_factorial(), rates_.data(), rates_.data(),
                      np);
  const double max_ll = ker.max_value(rates_.data(), np);
  if (!std::isfinite(max_ll)) return;

  ker.exp_shifted(rates_.data(), max_ll, rates_.data(), np);
  double total = 0.0;
  for (std::size_t p = 0; p < np; ++p) {
    weights_[p] *= rates_[p];
    total += weights_[p];
  }
  if (total <= 0.0) {  // degenerate: reset to uniform rather than divide by 0
    std::fill(weights_.begin(), weights_.end(), 1.0 / static_cast<double>(weights_.size()));
    return;
  }
  for (auto& w : weights_) w /= total;

  if (effective_sample_size() <
      cfg_.resample_ess_frac * static_cast<double>(cfg_.num_particles)) {
    resample_all();
  }
}

void JointParticleFilter::resample_all() {
  const std::size_t k = cfg_.num_sources;
  const auto picks = systematic_resample(rng_, weights_, weights_.size());

  std::vector<Source> new_states(states_.size());
  std::uint32_t prev = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t p = 0; p < picks.size(); ++p) {
    const auto src_particle = picks[p];
    for (std::size_t j = 0; j < k; ++j) {
      Source s = states_[src_particle * k + j];
      if (picks[p] == prev) {
        s.pos.x += normal(rng_, 0.0, cfg_.resample_noise_sigma);
        s.pos.y += normal(rng_, 0.0, cfg_.resample_noise_sigma);
        s.pos = env_->bounds().clamp(s.pos);
        s.strength *= std::exp(normal(rng_, 0.0, cfg_.strength_jitter_sigma));
        s.strength = std::clamp(s.strength, cfg_.strength_min, cfg_.strength_max);
      }
      new_states[p * k + j] = s;
    }
    prev = picks[p];
  }
  states_ = std::move(new_states);
  std::fill(weights_.begin(), weights_.end(), 1.0 / static_cast<double>(weights_.size()));
}

std::vector<SourceEstimate> JointParticleFilter::estimate() const {
  const std::size_t k = cfg_.num_sources;
  std::vector<SourceEstimate> out(k);
  for (std::size_t j = 0; j < k; ++j) {
    Point2 pos{0.0, 0.0};
    double log_strength = 0.0;
    for (std::size_t p = 0; p < weights_.size(); ++p) {
      const Source& s = states_[p * k + j];
      pos += weights_[p] * s.pos;
      log_strength += weights_[p] * std::log(s.strength);
    }
    out[j] = SourceEstimate{pos, std::exp(log_strength), 1.0 / static_cast<double>(k)};
  }
  return out;
}

Point2 JointParticleFilter::centroid() const {
  const std::size_t k = cfg_.num_sources;
  Point2 c{0.0, 0.0};
  for (std::size_t p = 0; p < weights_.size(); ++p) {
    for (std::size_t j = 0; j < k; ++j) {
      c += (weights_[p] / static_cast<double>(k)) * states_[p * k + j].pos;
    }
  }
  return c;
}

double JointParticleFilter::effective_sample_size() const {
  double sum_sq = 0.0;
  for (const double w : weights_) sum_sq += w * w;
  return sum_sq > 0.0 ? 1.0 / sum_sq : 0.0;
}

}  // namespace radloc

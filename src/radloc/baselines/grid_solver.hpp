// Baseline: grid-discretized source-term estimation — the Cheng & Singh
// [16] style comparator.
//
// The surveillance area is discretized into cells; each cell carries an
// unknown non-negative strength. The expected reading of sensor i is linear
// in the cell strengths (free-space kernel), so the fit is non-negative
// least squares, solved here by projected coordinate descent with an
// optional L1 (sparsity) penalty. Local maxima above a threshold become the
// source estimates. Cost grows with grid resolution — the scalability
// limitation the paper cites (209 s for 196 sensors in [16]).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct GridSolverConfig {
  std::size_t cells_x = 25;
  std::size_t cells_y = 25;
  std::size_t max_sweeps = 200;     ///< coordinate-descent sweeps
  double tolerance = 1e-8;          ///< stop when a sweep's max update is below this
  double l1_penalty = 1e-3;         ///< sparsity pressure on cell strengths
  double detect_threshold = 0.5;    ///< min cell strength (uCi) to report a source
};

struct GridFit {
  std::vector<SourceEstimate> sources;
  std::vector<double> cell_strengths;  ///< row-major, cells_x * cells_y
  std::size_t sweeps_used = 0;
  double residual = 0.0;               ///< final sum of squared residuals
};

class GridSolver {
 public:
  GridSolver(const Environment& env, std::vector<Sensor> sensors, GridSolverConfig cfg);

  /// Fits cell strengths to per-sensor *average* readings. `avg_cpm[i]`
  /// must be the mean reading of sensor i (averaging combats Poisson noise;
  /// the model matrix is deterministic).
  [[nodiscard]] GridFit fit(std::span<const double> avg_cpm) const;

  /// Convenience: averages raw measurements per sensor, then fits.
  [[nodiscard]] GridFit fit_measurements(std::span<const Measurement> measurements) const;

  [[nodiscard]] std::size_t num_cells() const { return cfg_.cells_x * cfg_.cells_y; }
  [[nodiscard]] Point2 cell_center(std::size_t cell) const;

 private:
  const Environment* env_;
  std::vector<Sensor> sensors_;
  GridSolverConfig cfg_;
  std::vector<double> design_;  // row-major |sensors| x num_cells model matrix
  std::vector<double> col_norm2_;
};

}  // namespace radloc

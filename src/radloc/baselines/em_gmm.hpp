// Baseline: Gaussian-mixture-model localization with EM and information-
// criterion model selection — the Ding & Cheng [15] style comparator.
//
// The generic-target approach: per-sensor background-corrected average
// readings are treated as a weighted spatial sample at the sensor
// locations; a K-component isotropic Gaussian mixture is fitted with
// weighted EM; K is selected by AIC/BIC; component means become the source
// position estimates. The paper's critique — "their source model is
// generic, and application to real-world radiation source models is not
// discussed" — is visible in the results: the mixture fits the *footprint*
// of the 1/(1+r^2) fading, not the source, so positions are biased and
// close sources blur together.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "radloc/baselines/mle.hpp"  // ModelSelection
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct GmmComponent {
  Point2 mean;
  double variance = 1.0;  ///< isotropic
  double weight = 0.0;    ///< mixture proportion
};

struct EmConfig {
  std::size_t max_components = 5;
  std::size_t max_iterations = 200;
  double tolerance = 1e-6;       ///< stop when log-lik improves less
  std::size_t restarts = 4;      ///< random restarts per K
  ModelSelection criterion = ModelSelection::kAic;
  double min_variance = 4.0;     ///< variance floor (sensor-spacing scale)
};

struct EmFit {
  std::vector<GmmComponent> components;
  std::vector<SourceEstimate> sources;  ///< positions from means, strengths re-fit
  std::size_t selected_k = 0;
  double log_likelihood = 0.0;
  double criterion_value = 0.0;
};

class EmGmmLocalizer {
 public:
  EmGmmLocalizer(const Environment& env, std::vector<Sensor> sensors, EmConfig cfg = {});

  /// Fits over per-sensor average readings (one entry per sensor).
  [[nodiscard]] EmFit fit(std::span<const double> avg_cpm, Rng& rng) const;

  /// Fixed-K fit (no model selection).
  [[nodiscard]] EmFit fit_fixed_k(std::span<const double> avg_cpm, std::size_t k,
                                  Rng& rng) const;

 private:
  [[nodiscard]] EmFit em_once(std::span<const double> excess, std::size_t k, Rng& rng) const;

  const Environment* env_;
  std::vector<Sensor> sensors_;
  EmConfig cfg_;
};

}  // namespace radloc

// Baseline: the "typical" joint-state particle filter of Sec. IV.
//
// State = the concatenated parameters of all K sources (3K dimensions), K
// fixed and known in advance. Every measurement updates every particle with
// the full superposition likelihood of Eq. (4). This is the formulation the
// paper argues against: the particle count must grow exponentially with K
// for constant coverage, and K must be known. Implemented faithfully so the
// comparison benches can reproduce those failure modes (Fig. 2's drift is
// the K=1 case of this filter under multiple true sources).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/radiation/source.hpp"
#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/sensor.hpp"
#include "radloc/simd/aligned.hpp"

namespace radloc {

struct JointPfConfig {
  std::size_t num_sources = 1;      ///< K — must be known a priori
  std::size_t num_particles = 2000;
  double resample_noise_sigma = 3.0;
  double strength_jitter_sigma = 0.10;
  double strength_min = 1.0;
  double strength_max = 1000.0;
  bool log_uniform_strength = true;
  /// Resample when ESS falls below this fraction of the particle count
  /// (joint filters degenerate fast; always-resample also works but wastes
  /// diversity).
  double resample_ess_frac = 0.5;
};

class JointParticleFilter {
 public:
  JointParticleFilter(const Environment& env, std::vector<Sensor> sensors, JointPfConfig cfg,
                      Rng rng);

  /// One Bayes update over ALL particles (no fusion range).
  void process(const Measurement& m);

  /// Posterior-mean estimate of each of the K source slots.
  [[nodiscard]] std::vector<SourceEstimate> estimate() const;

  /// Weighted centroid over every hypothesized source of every particle —
  /// the quantity that oscillates between true sources in Fig. 2.
  [[nodiscard]] Point2 centroid() const;

  [[nodiscard]] double effective_sample_size() const;
  [[nodiscard]] std::size_t size() const { return weights_.size(); }
  [[nodiscard]] const JointPfConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] double joint_rate(const Sensor& s, std::span<const Source> hypothesis) const;
  void resample_all();

  const Environment* env_;
  std::vector<Sensor> sensors_;
  JointPfConfig cfg_;
  Rng rng_;

  // particle p's hypothesis for source j lives at states_[p * K + j]
  std::vector<Source> states_;
  std::vector<double> weights_;
  // process() scratch — joint rates, then scored in place by the batch
  // Poisson kernel (simd/simd.hpp); reused so steady state never allocates
  simd::AVector<double> rates_;
};

}  // namespace radloc

#include "radloc/baselines/grid_solver.hpp"

#include <algorithm>
#include <cmath>

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"

namespace radloc {

GridSolver::GridSolver(const Environment& env, std::vector<Sensor> sensors, GridSolverConfig cfg)
    : env_(&env), sensors_(std::move(sensors)), cfg_(cfg) {
  require(!sensors_.empty(), "grid solver needs sensors");
  require(cfg_.cells_x >= 2 && cfg_.cells_y >= 2, "grid solver needs at least 2x2 cells");

  // Design matrix: reading contribution of a unit (1 uCi) source at each
  // cell center to each sensor, free-space model (the baseline, like the
  // localizer, does not know the obstacles).
  const std::size_t nc = num_cells();
  design_.assign(sensors_.size() * nc, 0.0);
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    const Sensor& s = sensors_[i];
    for (std::size_t c = 0; c < nc; ++c) {
      const Source unit{cell_center(c), 1.0};
      design_[i * nc + c] =
          kMicroCurieToCpm * s.response.efficiency * free_space_intensity(s.pos, unit);
    }
  }
  col_norm2_.assign(nc, 0.0);
  for (std::size_t c = 0; c < nc; ++c) {
    for (std::size_t i = 0; i < sensors_.size(); ++i) {
      col_norm2_[c] += square(design_[i * nc + c]);
    }
  }
}

Point2 GridSolver::cell_center(std::size_t cell) const {
  const AreaBounds& b = env_->bounds();
  const std::size_t cx = cell % cfg_.cells_x;
  const std::size_t cy = cell / cfg_.cells_x;
  const double w = b.width() / static_cast<double>(cfg_.cells_x);
  const double h = b.height() / static_cast<double>(cfg_.cells_y);
  return Point2{b.min.x + (static_cast<double>(cx) + 0.5) * w,
                b.min.y + (static_cast<double>(cy) + 0.5) * h};
}

GridFit GridSolver::fit(std::span<const double> avg_cpm) const {
  require(avg_cpm.size() == sensors_.size(), "need one average reading per sensor");
  const std::size_t nc = num_cells();
  const std::size_t ns = sensors_.size();

  // Background-corrected targets.
  std::vector<double> residual(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    residual[i] = avg_cpm[i] - sensors_[i].response.background_cpm;
  }

  // Projected coordinate descent on 0.5*||r||^2 + l1 * sum(x), x >= 0.
  std::vector<double> x(nc, 0.0);
  std::size_t sweeps = 0;
  for (; sweeps < cfg_.max_sweeps; ++sweeps) {
    double max_update = 0.0;
    for (std::size_t c = 0; c < nc; ++c) {
      if (col_norm2_[c] <= 0.0) continue;
      double grad = 0.0;
      for (std::size_t i = 0; i < ns; ++i) grad += design_[i * nc + c] * residual[i];
      // Closed-form coordinate minimizer with non-negativity projection.
      const double new_x =
          std::max(0.0, x[c] + (grad - cfg_.l1_penalty) / col_norm2_[c]);
      const double delta = new_x - x[c];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < ns; ++i) residual[i] -= delta * design_[i * nc + c];
        x[c] = new_x;
        max_update = std::max(max_update, std::abs(delta));
      }
    }
    if (max_update < cfg_.tolerance) break;
  }

  GridFit fit;
  fit.cell_strengths = x;
  fit.sweeps_used = sweeps;
  for (const double r : residual) fit.residual += square(r);

  // Report local maxima above the detection threshold as sources.
  const auto idx = [&](std::size_t cx, std::size_t cy) { return cy * cfg_.cells_x + cx; };
  for (std::size_t cy = 0; cy < cfg_.cells_y; ++cy) {
    for (std::size_t cx = 0; cx < cfg_.cells_x; ++cx) {
      const double v = x[idx(cx, cy)];
      if (v < cfg_.detect_threshold) continue;
      bool is_peak = true;
      for (int dy = -1; dy <= 1 && is_peak; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const auto nx = static_cast<std::ptrdiff_t>(cx) + dx;
          const auto ny = static_cast<std::ptrdiff_t>(cy) + dy;
          if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(cfg_.cells_x) ||
              ny >= static_cast<std::ptrdiff_t>(cfg_.cells_y)) {
            continue;
          }
          if (x[idx(static_cast<std::size_t>(nx), static_cast<std::size_t>(ny))] > v) {
            is_peak = false;
            break;
          }
        }
      }
      if (is_peak) {
        // The solver smears one point source over adjacent cells: the 3x3
        // neighborhood mass approximates the strength, and its center of
        // mass refines the position below the cell pitch.
        double mass = 0.0;
        Point2 centroid{0.0, 0.0};
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const auto nx = static_cast<std::ptrdiff_t>(cx) + dx;
            const auto ny = static_cast<std::ptrdiff_t>(cy) + dy;
            if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(cfg_.cells_x) ||
                ny >= static_cast<std::ptrdiff_t>(cfg_.cells_y)) {
              continue;
            }
            const std::size_t cell = idx(static_cast<std::size_t>(nx), static_cast<std::size_t>(ny));
            mass += x[cell];
            centroid += x[cell] * cell_center(cell);
          }
        }
        fit.sources.push_back(SourceEstimate{(1.0 / mass) * centroid, mass, v});
      }
    }
  }
  std::sort(fit.sources.begin(), fit.sources.end(),
            [](const SourceEstimate& a, const SourceEstimate& b) {
              return a.strength > b.strength;
            });
  return fit;
}

GridFit GridSolver::fit_measurements(std::span<const Measurement> measurements) const {
  std::vector<double> sum(sensors_.size(), 0.0);
  std::vector<std::size_t> count(sensors_.size(), 0);
  for (const auto& m : measurements) {
    require(m.sensor < sensors_.size(), "measurement from unknown sensor");
    sum[m.sensor] += m.cpm;
    ++count[m.sensor];
  }
  for (std::size_t i = 0; i < sum.size(); ++i) {
    if (count[i] > 0) sum[i] /= static_cast<double>(count[i]);
  }
  return fit(sum);
}

}  // namespace radloc

// Baseline: maximum-likelihood estimation with AIC/BIC model selection —
// the Morelande et al. [1], [2] style comparator the paper discusses.
//
// For each candidate source count K in [1, max_sources], minimize the
// negative Poisson log-likelihood of ALL collected measurements over the 3K
// parameters (x_j, y_j, log strength_j) with multi-start Nelder-Mead; then
// pick K by an information criterion. Cost grows steeply with K — the
// scaling wall the paper's Sec. II cites ("the algorithms do not scale
// beyond four sources").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "radloc/common/math.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/optim/nelder_mead.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

enum class ModelSelection { kAic, kBic };

struct MleConfig {
  std::size_t max_sources = 5;       ///< largest K tried
  std::size_t restarts = 8;          ///< random restarts per K
  ModelSelection criterion = ModelSelection::kBic;
  double strength_min = 1.0;
  double strength_max = 1000.0;
  NelderMeadOptions optimizer{};     ///< per-restart optimizer budget
  bool use_known_obstacles = false;  ///< apply Eq. (3) instead of Eq. (1)
};

struct MleFit {
  std::vector<SourceEstimate> sources;  ///< the selected-K fit
  std::size_t selected_k = 0;
  double nll = 0.0;                 ///< negative log-likelihood at the fit
  double criterion_value = 0.0;     ///< AIC or BIC of the winner
  std::size_t total_evaluations = 0;  ///< likelihood evaluations across all K
};

class MleLocalizer {
 public:
  MleLocalizer(const Environment& env, std::vector<Sensor> sensors, MleConfig cfg);

  /// Batch fit over all measurements (this family of methods is inherently
  /// batch: it needs the full data to evaluate the likelihood).
  [[nodiscard]] MleFit fit(std::span<const Measurement> measurements, Rng& rng) const;

  /// Fit with K forced (no model selection) — used by benches to isolate
  /// the optimization cost per K.
  [[nodiscard]] MleFit fit_fixed_k(std::span<const Measurement> measurements, std::size_t k,
                                   Rng& rng) const;

  /// Negative Poisson log-likelihood of the measurements under a source set.
  [[nodiscard]] double negative_log_likelihood(std::span<const Measurement> measurements,
                                               std::span<const Source> sources) const;

 private:
  [[nodiscard]] MleFit optimize_k(std::span<const Measurement> measurements, std::size_t k,
                                  Rng& rng) const;

  /// negative_log_likelihood with the per-measurement log(cpm!) terms
  /// precomputed: the optimizer evaluates the same measurement set thousands
  /// of times, so the lgamma work is paid once per fit, not per evaluation.
  [[nodiscard]] double nll_with_kernels(std::span<const Measurement> measurements,
                                        std::span<const PoissonLogPmf> kernels,
                                        std::span<const Source> sources) const;

  const Environment* env_;
  std::vector<Sensor> sensors_;
  MleConfig cfg_;
};

}  // namespace radloc

// Baselines: single-source localizers.
//
// (i)  Least-squares / ML fit of one source over the averaged readings
//      (Howse et al. [11], Gunatilaka et al. [12] family).
// (ii) Mean-of-estimators (MoE, Rao et al. [14]): localize with many random
//      sensor triples independently, robustly combine the per-triple
//      estimates. Each triple is solved with a small Nelder-Mead fit in
//      log-measurement space (the practical stand-in for the geometric
//      log-TDOA construction of [4], which needs the same three readings).
//
// Both are single-source by construction — the benches use them to show why
// multi-source scenarios need the paper's approach.
#pragma once

#include <span>
#include <vector>

#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/rng/rng.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct SingleSourceConfig {
  double strength_min = 1.0;
  double strength_max = 1000.0;
  std::size_t restarts = 6;     ///< Nelder-Mead restarts (full LS fit)
  std::size_t moe_triples = 40; ///< sensor triples sampled by MoE
};

class SingleSourceLocalizer {
 public:
  SingleSourceLocalizer(const Environment& env, std::vector<Sensor> sensors,
                        SingleSourceConfig cfg = {});

  /// Poisson-ML fit of a single source to per-sensor average readings.
  [[nodiscard]] SourceEstimate fit_ml(std::span<const double> avg_cpm, Rng& rng) const;

  /// Mean-of-estimators: median-combined per-triple fits.
  [[nodiscard]] SourceEstimate fit_moe(std::span<const double> avg_cpm, Rng& rng) const;

  /// Per-sensor averages from raw measurements (helper shared with benches).
  [[nodiscard]] std::vector<double> average_per_sensor(
      std::span<const Measurement> measurements) const;

 private:
  [[nodiscard]] SourceEstimate fit_subset(std::span<const double> avg_cpm,
                                          std::span<const std::size_t> subset, Rng& rng,
                                          std::size_t restarts) const;

  const Environment* env_;
  std::vector<Sensor> sensors_;
  SingleSourceConfig cfg_;
};

}  // namespace radloc

// Vocabulary value types shared by every radloc subsystem.
//
// All geometry in radloc is 2-D; the units follow the paper: positions in
// length units (the paper's surveillance areas are 100x100 and 260x260),
// strengths in micro-Curies, intensities in counts per minute (CPM).
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace radloc {

/// A 2-D point / vector. Plain aggregate: no invariant, so members are public
/// (Core Guidelines C.2).
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point2&, const Point2&) = default;

  constexpr Point2& operator+=(const Point2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Point2& operator-=(const Point2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Point2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
};

using Vec2 = Point2;

[[nodiscard]] constexpr Point2 operator+(Point2 a, const Point2& b) { return a += b; }
[[nodiscard]] constexpr Point2 operator-(Point2 a, const Point2& b) { return a -= b; }
[[nodiscard]] constexpr Point2 operator*(Point2 a, double s) { return a *= s; }
[[nodiscard]] constexpr Point2 operator*(double s, Point2 a) { return a *= s; }

[[nodiscard]] constexpr double dot(const Vec2& a, const Vec2& b) {
  return a.x * b.x + a.y * b.y;
}

/// 2-D cross product (z component of the 3-D cross product).
[[nodiscard]] constexpr double cross(const Vec2& a, const Vec2& b) {
  return a.x * b.y - a.y * b.x;
}

[[nodiscard]] constexpr double norm2(const Vec2& v) { return dot(v, v); }

[[nodiscard]] inline double norm(const Vec2& v) { return std::sqrt(norm2(v)); }

[[nodiscard]] constexpr double distance2(const Point2& a, const Point2& b) {
  return norm2(a - b);
}

[[nodiscard]] inline double distance(const Point2& a, const Point2& b) {
  return norm(a - b);
}

std::ostream& operator<<(std::ostream& os, const Point2& p);

/// Axis-aligned rectangular region. Used for surveillance-area bounds.
struct AreaBounds {
  Point2 min;
  Point2 max;

  [[nodiscard]] constexpr double width() const { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const { return max.y - min.y; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }

  [[nodiscard]] constexpr bool contains(const Point2& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Clamps `p` to the bounds (component-wise).
  [[nodiscard]] constexpr Point2 clamp(Point2 p) const {
    if (p.x < min.x) p.x = min.x;
    if (p.x > max.x) p.x = max.x;
    if (p.y < min.y) p.y = min.y;
    if (p.y > max.y) p.y = max.y;
    return p;
  }

  friend constexpr bool operator==(const AreaBounds&, const AreaBounds&) = default;
};

/// Convenience factory for the common [0,w] x [0,h] area.
[[nodiscard]] constexpr AreaBounds make_area(double w, double h) {
  return AreaBounds{Point2{0.0, 0.0}, Point2{w, h}};
}

}  // namespace radloc

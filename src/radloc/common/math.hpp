// Small numeric helpers used across radloc.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>

namespace radloc {

inline constexpr double kPi = 3.14159265358979323846;

[[nodiscard]] constexpr double square(double v) { return v * v; }

/// log(n!) via lgamma. Stable for the large CPM counts Eq. (4) produces.
/// Uses the reentrant lgamma_r where available: glibc's lgamma() writes the
/// global `signgam`, which is a (benign but TSan-reported) data race when
/// parallel trials score weights concurrently.
[[nodiscard]] inline double log_factorial(double n) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(n + 1.0, &sign);
#else
  return std::lgamma(n + 1.0);
#endif
}

/// Log-PMF of a Poisson(lambda) distribution at integer count k (k passed as
/// double because CPM counts can be large). Returns -inf for lambda <= 0 with
/// k > 0, and 0 for lambda == 0, k == 0.
[[nodiscard]] double poisson_log_pmf(double k, double lambda);

/// Poisson log-PMF with the count k fixed: log(k!) is paid once at
/// construction instead of per evaluation. This is the weight-update hot-path
/// kernel — one measurement is scored against thousands of hypothesized
/// rates, and lgamma dominates the naive per-particle poisson_log_pmf.
/// Evaluation order matches poisson_log_pmf exactly, so results are
/// bit-identical to the free function.
class PoissonLogPmf {
 public:
  explicit PoissonLogPmf(double k)
      : k_(k), log_k_factorial_(k >= 0.0 ? log_factorial(k) : 0.0) {}

  [[nodiscard]] double count() const { return k_; }

  /// The hoisted log(k!) term (0.0 when k < 0) — lets the batch kernels
  /// (simd/simd.hpp) replay operator() over whole rate arrays.
  [[nodiscard]] double log_k_factorial() const { return log_k_factorial_; }

  [[nodiscard]] double operator()(double lambda) const {
    if (k_ < 0.0) return -std::numeric_limits<double>::infinity();
    if (lambda <= 0.0) {
      return k_ == 0.0 ? 0.0 : -std::numeric_limits<double>::infinity();
    }
    return k_ * std::log(lambda) - lambda - log_k_factorial_;
  }

 private:
  double k_;
  double log_k_factorial_;
};

/// PMF of Poisson(lambda) at k; exp of the above.
[[nodiscard]] double poisson_pmf(double k, double lambda);

/// Numerically stable log(sum(exp(v))) over a span.
[[nodiscard]] double log_sum_exp(std::span<const double> v);

/// Streaming mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double v) {
    ++n_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Throws std::invalid_argument with `msg` when `cond` is false. Used to
/// validate public-API preconditions (Core Guidelines I.5/I.10).
inline void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace radloc

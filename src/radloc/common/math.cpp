#include "radloc/common/math.hpp"

#include <algorithm>
#include <ostream>

#include "radloc/common/types.hpp"

namespace radloc {

double poisson_log_pmf(double k, double lambda) {
  if (k < 0.0) return -std::numeric_limits<double>::infinity();
  if (lambda <= 0.0) {
    return k == 0.0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  return k * std::log(lambda) - lambda - log_factorial(k);
}

double poisson_pmf(double k, double lambda) { return std::exp(poisson_log_pmf(k, lambda)); }

double log_sum_exp(std::span<const double> v) {
  if (v.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (const double x : v) sum += std::exp(x - m);
  return m + std::log(sum);
}

std::ostream& operator<<(std::ostream& os, const Point2& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace radloc

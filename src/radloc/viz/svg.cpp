#include "radloc/viz/svg.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "radloc/common/math.hpp"

namespace radloc {

namespace {

std::string style_attrs(const SvgStyle& s) {
  std::ostringstream os;
  os << "fill=\"" << (s.fill.empty() ? "none" : s.fill) << "\" stroke=\""
     << (s.stroke.empty() ? "none" : s.stroke) << "\" stroke-width=\"" << s.stroke_width
     << "\"";
  if (s.opacity < 1.0) os << " opacity=\"" << s.opacity << "\"";
  return os.str();
}

}  // namespace

SvgCanvas::SvgCanvas(const AreaBounds& world, int width_px) : world_(world), width_px_(width_px) {
  require(width_px > 0, "canvas width must be positive");
  require(world.width() > 0.0 && world.height() > 0.0, "world bounds degenerate");
  scale_ = static_cast<double>(width_px) / world.width();
  height_px_ = static_cast<int>(std::lround(world.height() * scale_));
}

Point2 SvgCanvas::to_pixel(const Point2& world) const {
  return Point2{(world.x - world_.min.x) * scale_,
                (world_.max.y - world.y) * scale_};  // flip y
}

void SvgCanvas::add_polygon(const Polygon& poly, const SvgStyle& style) {
  std::ostringstream os;
  os << "<polygon points=\"";
  for (const auto& v : poly.vertices()) {
    const Point2 p = to_pixel(v);
    os << p.x << ',' << p.y << ' ';
  }
  os << "\" " << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::add_circle(const Point2& center, double radius_world, const SvgStyle& style) {
  const Point2 c = to_pixel(center);
  std::ostringstream os;
  os << "<circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\"" << radius_world * scale_
     << "\" " << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::add_cross(const Point2& center, double half_size_world, const SvgStyle& style) {
  add_line(center + Vec2{-half_size_world, -half_size_world},
           center + Vec2{half_size_world, half_size_world}, style);
  add_line(center + Vec2{-half_size_world, half_size_world},
           center + Vec2{half_size_world, -half_size_world}, style);
}

void SvgCanvas::add_line(const Point2& a, const Point2& b, const SvgStyle& style) {
  const Point2 pa = to_pixel(a);
  const Point2 pb = to_pixel(b);
  std::ostringstream os;
  os << "<line x1=\"" << pa.x << "\" y1=\"" << pa.y << "\" x2=\"" << pb.x << "\" y2=\""
     << pb.y << "\" " << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::add_text(const Point2& at, const std::string& text, double font_px,
                         const std::string& color) {
  const Point2 p = to_pixel(at);
  std::ostringstream os;
  os << "<text x=\"" << p.x << "\" y=\"" << p.y << "\" font-size=\"" << font_px
     << "\" fill=\"" << color << "\">" << text << "</text>";
  elements_.push_back(os.str());
}

void SvgCanvas::add_points(std::span<const Point2> points, double radius_px,
                           const std::string& color, double opacity) {
  if (points.empty()) return;
  std::ostringstream os;
  os << "<g fill=\"" << color << "\" opacity=\"" << opacity << "\">";
  for (const auto& w : points) {
    const Point2 p = to_pixel(w);
    os << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\"" << radius_px << "\"/>";
  }
  os << "</g>";
  elements_.push_back(os.str());
}

void SvgCanvas::write(std::ostream& os) const {
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_ << "\" height=\""
     << height_px_ << "\" viewBox=\"0 0 " << width_px_ << ' ' << height_px_ << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << width_px_ << "\" height=\"" << height_px_
     << "\" fill=\"white\" stroke=\"black\"/>\n";
  for (const auto& e : elements_) os << e << '\n';
  os << "</svg>\n";
}

std::string SvgCanvas::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void SvgCanvas::save(const std::string& path) const {
  std::ofstream os(path);
  require(os.good(), "cannot open SVG file for writing");
  write(os);
}

SvgCanvas render_scene(const Environment& env, std::span<const Sensor> sensors,
                       std::span<const Source> sources, std::span<const Point2> particles,
                       std::span<const SourceEstimate> estimates, int width_px) {
  SvgCanvas canvas(env.bounds(), width_px);

  for (const auto& o : env.obstacles()) {
    canvas.add_polygon(o.shape(), SvgStyle{"#b0b0b0", "#606060", 1.0, 0.9});
  }
  canvas.add_points(particles, 1.2, "#3366cc", 0.5);
  const double unit = env.bounds().width() / 100.0;
  for (const auto& s : sensors) {
    canvas.add_cross(s.pos, 0.8 * unit, SvgStyle{"none", "#444444", 1.0, 1.0});
  }
  for (const auto& src : sources) {
    canvas.add_circle(src.pos, 1.5 * unit, SvgStyle{"#cc2222", "#881111", 1.0, 1.0});
  }
  for (const auto& e : estimates) {
    canvas.add_cross(e.pos, 1.5 * unit, SvgStyle{"none", "#22aa22", 2.0, 1.0});
  }
  return canvas;
}

}  // namespace radloc

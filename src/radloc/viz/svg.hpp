// SVG rendering of scenarios, particle clouds, and estimates.
//
// The paper communicates its algorithm through scatter plots (Figs. 2, 4,
// 8); this module renders the same pictures from live objects so users can
// *see* the filter converge. Output is plain SVG 1.1 written to any
// ostream — no external dependencies.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/geom/polygon.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/radiation/source.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

/// Minimal style: fill / stroke in any SVG color syntax; empty = none.
struct SvgStyle {
  std::string fill = "none";
  std::string stroke = "black";
  double stroke_width = 1.0;
  double opacity = 1.0;
};

/// World-coordinate SVG canvas. Y grows upward in world space (the paper's
/// convention) and is flipped to SVG's downward pixel axis internally.
class SvgCanvas {
 public:
  /// `world` is the visible region; `width_px` the raster hint (height
  /// follows the aspect ratio).
  SvgCanvas(const AreaBounds& world, int width_px = 640);

  void add_polygon(const Polygon& poly, const SvgStyle& style);
  void add_circle(const Point2& center, double radius_world, const SvgStyle& style);
  /// An x-shaped marker of the given world half-size.
  void add_cross(const Point2& center, double half_size_world, const SvgStyle& style);
  void add_line(const Point2& a, const Point2& b, const SvgStyle& style);
  void add_text(const Point2& at, const std::string& text, double font_px = 12.0,
                const std::string& color = "black");

  /// Point cloud rendered as tiny dots (batched into one <g>).
  void add_points(std::span<const Point2> points, double radius_px, const std::string& color,
                  double opacity = 0.6);

  [[nodiscard]] std::size_t element_count() const { return elements_.size(); }
  [[nodiscard]] int width_px() const { return width_px_; }
  [[nodiscard]] int height_px() const { return height_px_; }

  /// World -> pixel transform (exposed for tests).
  [[nodiscard]] Point2 to_pixel(const Point2& world) const;

  void write(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  void save(const std::string& path) const;

 private:
  AreaBounds world_;
  int width_px_;
  int height_px_;
  double scale_;
  std::vector<std::string> elements_;
};

/// One-call scene render: area frame, obstacles (gray), sensors (+),
/// true sources (red discs), particles (blue dots), estimates (green x).
/// Any span may be empty.
[[nodiscard]] SvgCanvas render_scene(const Environment& env, std::span<const Sensor> sensors,
                                     std::span<const Source> sources,
                                     std::span<const Point2> particles,
                                     std::span<const SourceEstimate> estimates,
                                     int width_px = 640);

}  // namespace radloc

// The radiation intensity models of Sec. III, Eqs. (1)-(4).
#pragma once

#include <span>

#include "radloc/common/types.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/radiation/source.hpp"

namespace radloc {

/// micro-Curie -> counts-per-minute conversion constant of Eq. (4).
inline constexpr double kMicroCurieToCpm = 2.22e6;

/// Eq. (1): free-space intensity of `src` at `x`:
///   I_FS = A_str / (1 + |x - A_pos|^2).
[[nodiscard]] double free_space_intensity(const Point2& x, const Source& src);

/// Eq. (2): intensity after passing through thickness `l` of material with
/// attenuation coefficient `mu`: A_str * exp(-mu * l).
[[nodiscard]] double shielded_intensity(double strength, double mu, double l);

/// Eq. (3): combined free-space + obstacle model — free-space fading times
/// the transmission of the straight path from source to `x`.
[[nodiscard]] double intensity(const Point2& x, const Source& src, const Environment& env);

/// Per-sensor measurement-model parameters of Eq. (4).
struct SensorResponse {
  double efficiency = 1.0;      ///< counting efficiency E_i (unitless)
  double background_cpm = 0.0;  ///< background rate B_i (CPM)
};

/// Eq. (4): expected CPM at location `at` for the full source set:
///   I_i = 2.22e6 * E_i * sum_j I(S_i, A_j) + B_i.
[[nodiscard]] double expected_cpm(const Point2& at, std::span<const Source> sources,
                                  const Environment& env, const SensorResponse& response);

/// Eq. (4) restricted to a single hypothesized source — the particle
/// weighting model of Sec. V-C (each particle explains the reading alone).
[[nodiscard]] double expected_cpm_single(const Point2& at, const Source& hypothesis,
                                         const Environment& env, const SensorResponse& response);

/// Free-space-only variant used by the obstacle-agnostic localizer: the
/// environment's obstacles are deliberately ignored.
[[nodiscard]] double expected_cpm_single_free_space(const Point2& at, const Source& hypothesis,
                                                    const SensorResponse& response);

}  // namespace radloc

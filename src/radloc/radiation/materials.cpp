#include "radloc/radiation/materials.hpp"

#include <cmath>

namespace radloc {

double attenuation_coefficient(Material m) {
  // Linear attenuation at 1 MeV, mu = (mu/rho) * rho with mass coefficients
  // from Hubbell-style tables and nominal densities.
  switch (m) {
    case Material::kLead:     return 0.776;   // rho 11.35, mu/rho 0.0684
    case Material::kSteel:    return 0.469;   // rho 7.87,  mu/rho 0.0596
    case Material::kConcrete: return 0.1295;  // rho 2.30,  mu/rho 0.0563 -> ~6x weaker than lead
    case Material::kBrick:    return 0.102;
    case Material::kWater:    return 0.0707;
    case Material::kWood:     return 0.029;
    case Material::kGlass:    return 0.130;
    case Material::kAluminum: return 0.166;   // rho 2.70,  mu/rho 0.0614
    case Material::kPaperU:   return 0.0693;  // halves intensity per 10 length units
  }
  return 0.0;  // unreachable for valid enumerators
}

std::string_view material_name(Material m) {
  switch (m) {
    case Material::kLead:     return "lead";
    case Material::kSteel:    return "steel";
    case Material::kConcrete: return "concrete";
    case Material::kBrick:    return "brick";
    case Material::kWater:    return "water";
    case Material::kWood:     return "wood";
    case Material::kGlass:    return "glass";
    case Material::kAluminum: return "aluminum";
    case Material::kPaperU:   return "paper-synthetic";
  }
  return "unknown";
}

double half_value_layer(Material m) { return std::log(2.0) / attenuation_coefficient(m); }

double equivalent_thickness(Material a, double ta, Material b) {
  return ta * attenuation_coefficient(a) / attenuation_coefficient(b);
}

}  // namespace radloc

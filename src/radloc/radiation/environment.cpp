#include "radloc/radiation/environment.hpp"

#include <algorithm>
#include <cmath>

#include "radloc/geom/intersect.hpp"

namespace radloc {

double Environment::path_attenuation(const Segment& seg) const {
  if (obstacles_.empty()) return 0.0;

  // Segment AABB, computed once for the whole obstacle sweep.
  const double lo_x = std::min(seg.a.x, seg.b.x);
  const double hi_x = std::max(seg.a.x, seg.b.x);
  const double lo_y = std::min(seg.a.y, seg.b.y);
  const double hi_y = std::max(seg.a.y, seg.b.y);

  double acc = 0.0;
  for (std::size_t i = 0; i < obstacles_.size(); ++i) {
    const AreaBounds& box = aabbs_[i];
    if (lo_x > box.max.x || hi_x < box.min.x || lo_y > box.max.y || hi_y < box.min.y) continue;
    const double l = chord_length(seg, obstacles_[i].shape());
    if (l > 0.0) acc += obstacles_[i].mu() * l;
  }
  return acc;
}

double Environment::transmission(const Segment& seg) const {
  const double a = path_attenuation(seg);
  return a > 0.0 ? std::exp(-a) : 1.0;
}

}  // namespace radloc

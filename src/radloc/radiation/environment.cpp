#include "radloc/radiation/environment.hpp"

#include <cmath>

#include "radloc/geom/intersect.hpp"

namespace radloc {

double Environment::path_attenuation(const Segment& seg) const {
  double acc = 0.0;
  for (const auto& obstacle : obstacles_) {
    const double l = chord_length(seg, obstacle.shape());
    if (l > 0.0) acc += obstacle.mu() * l;
  }
  return acc;
}

double Environment::transmission(const Segment& seg) const {
  const double a = path_attenuation(seg);
  return a > 0.0 ? std::exp(-a) : 1.0;
}

}  // namespace radloc

// Gamma attenuation coefficients for common shielding materials.
//
// The paper cites Hubbell's NSRDS-NBS 29 tables. We embed linear attenuation
// coefficients mu (per cm) at 1 MeV photon energy — the energy the paper's
// footnote fixes — for the materials a deployment is likely to meet. Only
// the product mu * thickness enters Eq. (2)/(3), so a small table suffices.
#pragma once

#include <string_view>

namespace radloc {

enum class Material {
  kLead,
  kSteel,
  kConcrete,
  kBrick,
  kWater,
  kWood,
  kGlass,
  kAluminum,
  kPaperU,  ///< the paper's synthetic obstacle material, mu = 0.0693 /cm
};

/// Linear attenuation coefficient (1/cm) at 1 MeV.
[[nodiscard]] double attenuation_coefficient(Material m);

[[nodiscard]] std::string_view material_name(Material m);

/// Thickness (cm) of material `m` that halves 1 MeV gamma intensity:
/// ln(2) / mu.
[[nodiscard]] double half_value_layer(Material m);

/// Thickness of `b` delivering the same attenuation as `ta` cm of `a`.
/// E.g. equivalent_thickness(kLead, 1.0, kConcrete) ~ 6 cm (paper Sec. III).
[[nodiscard]] double equivalent_thickness(Material a, double ta, Material b);

}  // namespace radloc

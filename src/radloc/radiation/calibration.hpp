// Sensor efficiency calibration — the procedure the paper cites from
// Chin et al. (SenSys 2008) to obtain E_i.
//
// A check source of known strength is placed at a known position; each
// sensor collects readings. From Eq. (4),
//   E_i = (mean_cpm_i - B_i) / (2.22e6 * I(S_i, A)),
// with a maximum-likelihood pooled estimate when several sessions (source
// positions) are available. Background B_i itself can be calibrated from a
// source-free session.
#pragma once

#include <span>
#include <vector>

#include "radloc/radiation/environment.hpp"
#include "radloc/radiation/source.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

/// One calibration session: readings collected while a known check source
/// (or none, for background calibration) was present.
struct CalibrationSession {
  std::vector<Source> sources;          ///< known check sources (may be empty)
  std::vector<Measurement> readings;    ///< raw readings during the session
};

struct CalibrationResult {
  std::vector<double> efficiency;       ///< per sensor; NaN when unobserved
  std::vector<double> background_cpm;   ///< per sensor; NaN when unobserved
  std::size_t sensors_calibrated = 0;
};

/// Estimates per-sensor background from source-free sessions and efficiency
/// from check-source sessions. Sessions with sources contribute to
/// efficiency; sessions without contribute to background. A sensor needs at
/// least one reading of each kind to be fully calibrated. `env` provides
/// the obstacle model for the check-source geometry.
[[nodiscard]] CalibrationResult calibrate_sensors(const Environment& env,
                                                  std::span<const Sensor> sensors,
                                                  std::span<const CalibrationSession> sessions);

/// Applies a calibration result onto the sensor array (skips NaN entries).
void apply_calibration(std::vector<Sensor>& sensors, const CalibrationResult& result);

}  // namespace radloc

#include "radloc/radiation/intensity_model.hpp"

#include <cmath>

namespace radloc {

double free_space_intensity(const Point2& x, const Source& src) {
  return src.strength / (1.0 + distance2(x, src.pos));
}

double shielded_intensity(double strength, double mu, double l) {
  return strength * std::exp(-mu * l);
}

double intensity(const Point2& x, const Source& src, const Environment& env) {
  const double fs = free_space_intensity(x, src);
  if (!env.has_obstacles()) return fs;
  return fs * env.transmission(Segment{x, src.pos});
}

double expected_cpm(const Point2& at, std::span<const Source> sources, const Environment& env,
                    const SensorResponse& response) {
  double sum = 0.0;
  for (const auto& src : sources) sum += intensity(at, src, env);
  return kMicroCurieToCpm * response.efficiency * sum + response.background_cpm;
}

double expected_cpm_single(const Point2& at, const Source& hypothesis, const Environment& env,
                           const SensorResponse& response) {
  return kMicroCurieToCpm * response.efficiency * intensity(at, hypothesis, env) +
         response.background_cpm;
}

double expected_cpm_single_free_space(const Point2& at, const Source& hypothesis,
                                      const SensorResponse& response) {
  return kMicroCurieToCpm * response.efficiency * free_space_intensity(at, hypothesis) +
         response.background_cpm;
}

}  // namespace radloc

#include "radloc/radiation/calibration.hpp"

#include <cmath>
#include <limits>

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"

namespace radloc {

CalibrationResult calibrate_sensors(const Environment& env, std::span<const Sensor> sensors,
                                    std::span<const CalibrationSession> sessions) {
  require(!sensors.empty(), "calibration needs sensors");

  const double nan = std::numeric_limits<double>::quiet_NaN();
  CalibrationResult result;
  result.efficiency.assign(sensors.size(), nan);
  result.background_cpm.assign(sensors.size(), nan);

  // Pass 1: background from source-free sessions (plain Poisson MLE: the
  // mean reading).
  std::vector<double> bg_sum(sensors.size(), 0.0);
  std::vector<std::size_t> bg_n(sensors.size(), 0);
  for (const auto& session : sessions) {
    if (!session.sources.empty()) continue;
    for (const auto& m : session.readings) {
      require(m.sensor < sensors.size(), "calibration reading from unknown sensor");
      bg_sum[m.sensor] += m.cpm;
      ++bg_n[m.sensor];
    }
  }
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    if (bg_n[i] > 0) result.background_cpm[i] = bg_sum[i] / static_cast<double>(bg_n[i]);
  }

  // Pass 2: efficiency from check-source sessions. For sensor i with
  // per-session source intensity g_s = 2.22e6 * sum_j I(S_i, A_j), the
  // Poisson MLE of E pools sessions: E = sum(readings - B) / sum(n_s * g_s).
  std::vector<double> num(sensors.size(), 0.0);
  std::vector<double> den(sensors.size(), 0.0);
  for (const auto& session : sessions) {
    if (session.sources.empty()) continue;
    std::vector<double> g(sensors.size(), 0.0);
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      double intensity_sum = 0.0;
      for (const auto& src : session.sources) {
        intensity_sum += intensity(sensors[i].pos, src, env);
      }
      g[i] = kMicroCurieToCpm * intensity_sum;
    }
    for (const auto& m : session.readings) {
      require(m.sensor < sensors.size(), "calibration reading from unknown sensor");
      const double bg = !std::isnan(result.background_cpm[m.sensor])
                            ? result.background_cpm[m.sensor]
                            : sensors[m.sensor].response.background_cpm;
      num[m.sensor] += m.cpm - bg;
      den[m.sensor] += g[m.sensor];
    }
  }
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    if (den[i] > 0.0) {
      result.efficiency[i] = std::max(num[i] / den[i], 0.0);
      if (!std::isnan(result.background_cpm[i])) ++result.sensors_calibrated;
    }
  }
  return result;
}

void apply_calibration(std::vector<Sensor>& sensors, const CalibrationResult& result) {
  require(sensors.size() == result.efficiency.size(), "calibration size mismatch");
  for (auto& s : sensors) {
    if (!std::isnan(result.efficiency[s.id])) s.response.efficiency = result.efficiency[s.id];
    if (!std::isnan(result.background_cpm[s.id])) {
      s.response.background_cpm = result.background_cpm[s.id];
    }
  }
}

}  // namespace radloc

// Per-sensor memoized transmission fields — the known-obstacle hot path.
//
// When the filter models obstacles (Eq. 3), every particle weighting asks for
// the transmission of a segment whose ORIGIN is a fixed sensor position that
// repeats thousands of times per measurement and every measurement thereafter.
// This cache trades that repeated segment/polygon geometry for one uniform
// grid per origin whose nodes hold the exact transmission exp(-attenuation);
// queries bilinearly interpolate in the transmission domain, so they are pure
// arithmetic — no geometry and no exp. Accuracy is bounded by the grid pitch
// (the field is piecewise smooth away from obstacle silhouette edges);
// exactness is recovered by disabling the cache
// (FilterConfig::use_transmission_cache, default off, keeps seed numerics
// untouched).
//
// Thread-safety contract: prepare() mutates and must be called serially;
// transmission() against a prepared field is read-only and safe to fan out
// across the thread pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/simd/aligned.hpp"
#include "radloc/simd/simd.hpp"

namespace radloc {

class TransmissionCache {
 public:
  /// One origin's transmission field sampled at the grid nodes.
  struct Field {
    Point2 origin;
    /// exp(-path_attenuation) node values, (nx+1) x (ny+1), row-major in y.
    /// 32-byte-aligned so the batch bilinear kernel's gathers stream from
    /// aligned rows (simd/aligned.hpp).
    simd::AVector<double> transmission;
  };

  /// `cell_size` is the grid pitch over env.bounds() (smaller = more accurate,
  /// costlier to build); `max_fields` caps memory for mobile-detector streams
  /// where origins never repeat — beyond the cap, prepare() declines and the
  /// caller falls back to exact geometry. The environment is borrowed and
  /// must outlive the cache.
  TransmissionCache(const Environment& env, double cell_size, std::size_t max_fields = 256);

  /// Returns the field for rays starting at `origin`, building it (exact
  /// per-node path_attenuation) on first use. If the environment's obstacle
  /// revision changed since the fields were built, every field is dropped
  /// first. Returns nullptr when `max_fields` distinct origins already exist.
  /// Fields live in stable storage: the pointer survives later prepare()
  /// calls for other origins and is invalidated only by an environment
  /// revision change (which drops every field) or cache destruction.
  const Field* prepare(const Point2& origin);

  /// Read-only lookup: the field for `origin` if it was already prepared AND
  /// the environment's obstacle revision still matches; nullptr otherwise
  /// (the caller falls back to prepare() on its own cache, or to exact
  /// geometry). Never builds or drops fields, so — per the thread-safety
  /// contract above — a fully prepared cache can be shared const across
  /// concurrent localizers (run_experiment's per-scenario shared state).
  [[nodiscard]] const Field* find(const Point2& origin) const;

  /// Bilinearly interpolated transmission from `field.origin` to `target`;
  /// node values are exact exp(-path_attenuation). Targets outside the
  /// bounds clamp to the boundary node values.
  [[nodiscard]] double transmission(const Field& field, const Point2& target) const;

  /// The field as a batch-kernel grid view (simd::Kernels::bilinear): one
  /// batched call replays transmission() per target, bit-identically.
  /// Borrows the field's node storage — same lifetime rules as `field`.
  [[nodiscard]] simd::BilinearGrid grid_view(const Field& field) const {
    return simd::BilinearGrid{field.transmission.data(), nx_,     ny_,
                              env_->bounds().min.x,      env_->bounds().min.y,
                              inv_dx_,                   inv_dy_};
  }

  [[nodiscard]] std::size_t field_count() const { return fields_.size(); }
  [[nodiscard]] std::size_t nodes_per_field() const { return (nx_ + 1) * (ny_ + 1); }
  [[nodiscard]] double cell_size() const { return cell_size_; }

 private:
  void build_field(Field& field) const;

  const Environment* env_;
  double cell_size_;
  std::size_t max_fields_;
  std::size_t nx_;  ///< cell count in x (nodes: nx_ + 1)
  std::size_t ny_;  ///< cell count in y (nodes: ny_ + 1)
  double dx_;
  double dy_;
  double inv_dx_;
  double inv_dy_;
  std::uint64_t revision_;
  // Linear scan: origin sets are sensor-sized. A deque, not a vector, so a
  // push_back never relocates fields handed out by earlier prepare() calls.
  std::deque<Field> fields_;
};

}  // namespace radloc

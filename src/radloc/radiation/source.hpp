// Radiation point source — the A_j = <x, y, strength> of Sec. III.
#pragma once

#include "radloc/common/types.hpp"

namespace radloc {

struct Source {
  Point2 pos;             ///< position, length units
  double strength = 0.0;  ///< micro-Curies (> 0 for a physical source)

  friend constexpr bool operator==(const Source&, const Source&) = default;
};

}  // namespace radloc

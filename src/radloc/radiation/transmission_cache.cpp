#include "radloc/radiation/transmission_cache.hpp"

#include <algorithm>
#include <cmath>

#include "radloc/common/math.hpp"
#include "radloc/geom/segment.hpp"

namespace radloc {

TransmissionCache::TransmissionCache(const Environment& env, double cell_size,
                                     std::size_t max_fields)
    : env_(&env),
      cell_size_(cell_size),
      max_fields_(max_fields),
      revision_(env.revision()) {
  require(cell_size > 0.0, "transmission cache cell size must be positive");
  require(max_fields > 0, "transmission cache needs room for at least one field");
  const AreaBounds& b = env.bounds();
  nx_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(b.width() / cell_size_)));
  ny_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(b.height() / cell_size_)));
  dx_ = b.width() / static_cast<double>(nx_);
  dy_ = b.height() / static_cast<double>(ny_);
  inv_dx_ = 1.0 / dx_;
  inv_dy_ = 1.0 / dy_;
}

void TransmissionCache::build_field(Field& field) const {
  const AreaBounds& b = env_->bounds();
  field.transmission.resize(nodes_per_field());
  std::size_t idx = 0;
  for (std::size_t j = 0; j <= ny_; ++j) {
    const double y = b.min.y + static_cast<double>(j) * dy_;
    for (std::size_t i = 0; i <= nx_; ++i, ++idx) {
      const Point2 node{b.min.x + static_cast<double>(i) * dx_, y};
      const double a = env_->path_attenuation(Segment{field.origin, node});
      field.transmission[idx] = a > 0.0 ? std::exp(-a) : 1.0;
    }
  }
}

const TransmissionCache::Field* TransmissionCache::prepare(const Point2& origin) {
  if (env_->revision() != revision_) {
    fields_.clear();
    revision_ = env_->revision();
  }
  for (const auto& f : fields_) {
    if (f.origin == origin) return &f;
  }
  if (fields_.size() >= max_fields_) return nullptr;
  fields_.push_back(Field{origin, {}});
  build_field(fields_.back());
  return &fields_.back();
}

const TransmissionCache::Field* TransmissionCache::find(const Point2& origin) const {
  if (env_->revision() != revision_) return nullptr;
  for (const auto& f : fields_) {
    if (f.origin == origin) return &f;
  }
  return nullptr;
}

double TransmissionCache::transmission(const Field& field, const Point2& target) const {
  const AreaBounds& b = env_->bounds();
  const double u = std::clamp((target.x - b.min.x) * inv_dx_, 0.0, static_cast<double>(nx_));
  const double v = std::clamp((target.y - b.min.y) * inv_dy_, 0.0, static_cast<double>(ny_));
  const std::size_t i = std::min(static_cast<std::size_t>(u), nx_ - 1);
  const std::size_t j = std::min(static_cast<std::size_t>(v), ny_ - 1);
  const double fu = u - static_cast<double>(i);
  const double fv = v - static_cast<double>(j);

  const std::size_t row = j * (nx_ + 1) + i;
  const double t00 = field.transmission[row];
  const double t10 = field.transmission[row + 1];
  const double t01 = field.transmission[row + nx_ + 1];
  const double t11 = field.transmission[row + nx_ + 2];
  return (1.0 - fv) * ((1.0 - fu) * t00 + fu * t10) + fv * ((1.0 - fu) * t01 + fu * t11);
}

}  // namespace radloc

// The physical surveillance environment: bounds + obstacles.
//
// The *simulator* always knows the environment; the *localizer* deliberately
// does not (the paper's complex-environment setting). Keeping the obstacle
// set behind this type makes that asymmetry explicit in signatures.
#pragma once

#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/geom/segment.hpp"
#include "radloc/radiation/obstacle.hpp"

namespace radloc {

class Environment {
 public:
  explicit Environment(AreaBounds bounds, std::vector<Obstacle> obstacles = {})
      : bounds_(bounds), obstacles_(std::move(obstacles)) {}

  [[nodiscard]] const AreaBounds& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<Obstacle>& obstacles() const { return obstacles_; }
  [[nodiscard]] bool has_obstacles() const { return !obstacles_.empty(); }

  void add_obstacle(Obstacle o) { obstacles_.push_back(std::move(o)); }

  /// Sum over obstacles of mu_b * l_b along the straight path `seg` — the
  /// exponent of Eq. (3). Zero when the path is unobstructed.
  [[nodiscard]] double path_attenuation(const Segment& seg) const;

  /// exp(-path_attenuation): the fraction of intensity surviving the path.
  [[nodiscard]] double transmission(const Segment& seg) const;

  /// An identical environment with the obstacles removed (for the paper's
  /// with/without-obstacle comparisons).
  [[nodiscard]] Environment without_obstacles() const { return Environment(bounds_); }

 private:
  AreaBounds bounds_;
  std::vector<Obstacle> obstacles_;
};

}  // namespace radloc

// The physical surveillance environment: bounds + obstacles.
//
// The *simulator* always knows the environment; the *localizer* deliberately
// does not (the paper's complex-environment setting). Keeping the obstacle
// set behind this type makes that asymmetry explicit in signatures.
#pragma once

#include <cstdint>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/geom/segment.hpp"
#include "radloc/radiation/obstacle.hpp"

namespace radloc {

class Environment {
 public:
  explicit Environment(AreaBounds bounds, std::vector<Obstacle> obstacles = {})
      : bounds_(bounds), obstacles_(std::move(obstacles)) {
    rebuild_aabbs();
  }

  [[nodiscard]] const AreaBounds& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<Obstacle>& obstacles() const { return obstacles_; }
  [[nodiscard]] bool has_obstacles() const { return !obstacles_.empty(); }

  void add_obstacle(Obstacle o) {
    obstacles_.push_back(std::move(o));
    aabbs_.push_back(obstacles_.back().shape().aabb());
    ++revision_;
  }

  /// Monotone counter bumped on every obstacle change. Memoizing layers
  /// (e.g. TransmissionCache) compare it to detect a stale snapshot.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// Sum over obstacles of mu_b * l_b along the straight path `seg` — the
  /// exponent of Eq. (3). Zero when the path is unobstructed. Obstacles whose
  /// bounding box misses the segment's are rejected before any chord-length
  /// geometry runs, so obstacle-free rays cost one AABB sweep.
  [[nodiscard]] double path_attenuation(const Segment& seg) const;

  /// exp(-path_attenuation): the fraction of intensity surviving the path.
  [[nodiscard]] double transmission(const Segment& seg) const;

  /// An identical environment with the obstacles removed (for the paper's
  /// with/without-obstacle comparisons).
  [[nodiscard]] Environment without_obstacles() const { return Environment(bounds_); }

 private:
  void rebuild_aabbs() {
    aabbs_.clear();
    aabbs_.reserve(obstacles_.size());
    for (const auto& o : obstacles_) aabbs_.push_back(o.shape().aabb());
  }

  AreaBounds bounds_;
  std::vector<Obstacle> obstacles_;
  // Flat copy of each obstacle's AABB, kept in obstacle order: the
  // path_attenuation reject sweep touches contiguous memory instead of
  // chasing into every Polygon.
  std::vector<AreaBounds> aabbs_;
  std::uint64_t revision_ = 0;
};

}  // namespace radloc

// An obstacle: a homogeneous-material polygon that attenuates gamma rays.
#pragma once

#include <utility>

#include "radloc/geom/polygon.hpp"
#include "radloc/radiation/materials.hpp"

namespace radloc {

class Obstacle {
 public:
  Obstacle(Polygon shape, double mu) : shape_(std::move(shape)), mu_(mu) {}
  Obstacle(Polygon shape, Material m) : Obstacle(std::move(shape), attenuation_coefficient(m)) {}

  [[nodiscard]] const Polygon& shape() const { return shape_; }

  /// Linear attenuation coefficient mu_b of Eq. (3), per length unit.
  [[nodiscard]] double mu() const { return mu_; }

 private:
  Polygon shape_;
  double mu_;
};

}  // namespace radloc

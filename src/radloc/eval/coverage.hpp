// Deployment coverage analysis: what can this sensor network actually see?
//
// Before deploying (or when sizing the grid for a new site), planners need
// the map of minimum detectable source strength: the weakest source at
// each location whose signal is statistically separable from background
// within a chosen observation budget. The detectability criterion matches
// the localizer's detection test: the accumulated Poisson log-LR of
// "source present at its true parameters" vs "background only" over the
// sensors within `detection_range`, with `steps` readings each, must reach
// `required_log_lr`.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct CoverageConfig {
  std::size_t cells_x = 50;
  std::size_t cells_y = 50;
  /// Readings per sensor assumed available (the time budget T).
  std::size_t steps = 10;
  /// Only sensors within this range of a location contribute (matches the
  /// localizer's fusion range).
  double detection_range = 28.0;
  /// Required accumulated log likelihood ratio (the localizer's default
  /// detection threshold).
  double required_log_lr = 3.0;
  /// Strength search bracket (uCi).
  double strength_min = 0.1;
  double strength_max = 10000.0;
  /// Model obstacles when predicting rates.
  bool use_obstacles = true;
};

struct CoverageMap {
  std::size_t cells_x = 0;
  std::size_t cells_y = 0;
  AreaBounds bounds;
  /// Row-major minimum detectable strength (uCi); +inf where nothing in
  /// range can ever detect (no sensors within detection_range).
  std::vector<double> min_detectable;

  [[nodiscard]] double at(std::size_t cx, std::size_t cy) const {
    return min_detectable[cy * cells_x + cx];
  }
  [[nodiscard]] Point2 cell_center(std::size_t cx, std::size_t cy) const;

  /// Fraction of cells with min-detectable <= `strength`.
  [[nodiscard]] double covered_fraction(double strength) const;
  /// Largest min-detectable over the area (inf if any cell is blind).
  [[nodiscard]] double worst_case() const;
};

/// Computes the minimum-detectable-strength map for a deployment.
[[nodiscard]] CoverageMap compute_coverage(const Environment& env,
                                           std::span<const Sensor> sensors,
                                           const CoverageConfig& cfg = {});

/// Expected detection log-LR for a specific source under the deployment —
/// the quantity the map thresholds. Exposed for tests and planners.
[[nodiscard]] double expected_detection_log_lr(const Environment& env,
                                               std::span<const Sensor> sensors,
                                               const Source& source,
                                               const CoverageConfig& cfg = {});

}  // namespace radloc

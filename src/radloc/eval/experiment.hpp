// Multi-trial experiment runner reproducing the paper's protocol (Sec. VI):
// 30 time steps, one measurement per sensor per step, metrics averaged over
// repeated trials with independent noise.
#pragma once

#include <cstdint>
#include <vector>

#include "radloc/core/localizer.hpp"
#include "radloc/eval/matching.hpp"
#include "radloc/eval/scenarios.hpp"

namespace radloc {

enum class DeliveryKind { kInOrder, kShuffled, kRandomLatency };

struct ExperimentOptions {
  std::size_t time_steps = 30;
  std::size_t trials = 10;
  std::uint64_t seed = 1;
  double match_gate = kDefaultMatchGate;
  /// kInOrder unless the scenario flags out-of-order delivery; explicit
  /// override via `delivery_override`.
  std::optional<DeliveryKind> delivery_override;
  double mean_latency_steps = 1.0;  ///< for kRandomLatency
  double loss_rate = 0.0;           ///< fraction of measurements dropped
  /// Localizer configuration; num_particles / fusion_range are taken from
  /// the scenario's recommendation unless `use_scenario_defaults` is false.
  LocalizerConfig localizer;
  bool use_scenario_defaults = true;
  /// Worker threads for TRIAL-level parallelism: independent trials run
  /// concurrently on one shared pool (inner weight-update/mean-shift
  /// parallelism from inside a trial runs inline — DESIGN.md §5.6). 1 (or
  /// 0) keeps the seed's serial loop, in which case localizer.num_threads
  /// still governs inner parallelism. Per-trial RNG streams are pre-split
  /// serially and aggregation runs in trial-index order, so every
  /// ExperimentResult field except the wall-clock seconds_per_iteration is
  /// bit-identical at any thread count (pinned by test).
  std::size_t num_threads = 1;
  /// Share immutable per-scenario state across trials — the ground-truth
  /// simulator (memoized Eq. 4 rates) and, when the filter uses the
  /// transmission cache, one fully prepared read-only cache — instead of
  /// rebuilding both per trial. Bit-identical either way; disable to
  /// reproduce the seed's rebuild-per-trial cost (the benchmark baseline).
  bool share_scenario_state = true;
};

struct ExperimentResult {
  /// error[t][j]: mean localization error of source j at time step t over
  /// the trials in which it was matched; NaN if never matched at step t.
  std::vector<std::vector<double>> error;
  /// Mean false positives / negatives per time step (over trials).
  std::vector<double> false_positives;
  std::vector<double> false_negatives;
  /// Mean fraction of trials in which source j was matched at step t.
  std::vector<std::vector<double>> matched_frac;
  /// Mean wall-clock seconds per filter iteration (measurement), per trial.
  double seconds_per_iteration = 0.0;

  /// Mean error of source j averaged over steps [from, to) (skipping NaN).
  [[nodiscard]] double avg_error(std::size_t source, std::size_t from, std::size_t to) const;
  /// Mean over all sources and steps [from, to).
  [[nodiscard]] double avg_error_all(std::size_t from, std::size_t to) const;
  [[nodiscard]] double avg_false_positives(std::size_t from, std::size_t to) const;
  [[nodiscard]] double avg_false_negatives(std::size_t from, std::size_t to) const;
};

/// Runs the scenario `opts.trials` times with independent measurement noise
/// and localizer seeds; returns averaged per-step metrics.
[[nodiscard]] ExperimentResult run_experiment(const Scenario& scenario,
                                              const ExperimentOptions& opts);

}  // namespace radloc

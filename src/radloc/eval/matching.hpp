// Estimate-to-truth matching and the paper's three metrics (Sec. VI):
// localization error, false positives, false negatives.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/source.hpp"

namespace radloc {

/// The paper's acceptance gate: an estimate farther than 40 units from every
/// source matches nothing.
inline constexpr double kDefaultMatchGate = 40.0;

struct MatchResult {
  /// Per true source: localization error of its matched estimate, or
  /// nullopt when the source is a false negative. Same order as `truth`.
  std::vector<std::optional<double>> error;
  /// Per true source: index into `estimates` of the match (or nullopt).
  std::vector<std::optional<std::size_t>> matched_estimate;
  std::size_t false_positives = 0;  ///< estimates traced to no source
  std::size_t false_negatives = 0;  ///< sources with no estimate in range

  /// Mean error over matched sources (0 when none matched).
  [[nodiscard]] double mean_error() const;
};

/// Greedy one-to-one matching by increasing distance ("each estimate must
/// estimate a single source only"): the globally closest (source, estimate)
/// pair within `gate` is matched first, both are removed, repeat.
[[nodiscard]] MatchResult match_estimates(std::span<const Source> truth,
                                          std::span<const SourceEstimate> estimates,
                                          double gate = kDefaultMatchGate);

}  // namespace radloc

#include "radloc/eval/report.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "radloc/common/math.hpp"

namespace radloc {

void print_banner(std::ostream& os, std::string_view title) {
  os << "\n== " << title << " ==\n";
}

void print_table(std::ostream& os, std::span<const std::string> header,
                 std::span<const std::vector<double>> rows, int precision) {
  constexpr int kColWidth = 12;
  for (const auto& h : header) os << std::setw(kColWidth) << h;
  os << '\n';
  os << std::fixed << std::setprecision(precision);
  for (const auto& row : rows) {
    require(row.size() == header.size(), "table row width mismatch");
    for (const double v : row) {
      if (std::isnan(v)) {
        os << std::setw(kColWidth) << "-";
      } else {
        os << std::setw(kColWidth) << v;
      }
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
}

void print_time_series(std::ostream& os, const ExperimentResult& result,
                       std::span<const std::string> source_names) {
  std::vector<std::string> header{"step"};
  for (const auto& n : source_names) header.push_back(n);
  header.emplace_back("FalsePos");
  header.emplace_back("FalseNeg");

  std::vector<std::vector<double>> rows;
  for (std::size_t t = 0; t < result.error.size(); ++t) {
    std::vector<double> row{static_cast<double>(t)};
    for (std::size_t j = 0; j < source_names.size(); ++j) row.push_back(result.error[t][j]);
    row.push_back(result.false_positives[t]);
    row.push_back(result.false_negatives[t]);
    rows.push_back(std::move(row));
  }
  print_table(os, header, rows);
}

void write_time_series_csv(std::ostream& os, const ExperimentResult& result,
                           std::span<const std::string> source_names) {
  os << "step";
  for (const auto& n : source_names) os << ',' << n;
  os << ",false_positives,false_negatives\n";
  for (std::size_t t = 0; t < result.error.size(); ++t) {
    os << t;
    for (std::size_t j = 0; j < source_names.size(); ++j) {
      os << ',';
      if (!std::isnan(result.error[t][j])) os << result.error[t][j];
    }
    os << ',' << result.false_positives[t] << ',' << result.false_negatives[t] << '\n';
  }
}

std::vector<std::string> default_source_names(std::size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t j = 1; j <= n; ++j) names.push_back("Source" + std::to_string(j));
  return names;
}

}  // namespace radloc

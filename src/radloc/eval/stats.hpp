// Statistical summaries for experiment reporting: percentiles and
// bootstrap confidence intervals. Simulation papers report means over a
// handful of trials; the bootstrap puts honest error bars on them.
#pragma once

#include <span>
#include <vector>

#include "radloc/rng/rng.hpp"

namespace radloc {

/// Linear-interpolated percentile (q in [0, 1]) of the sample. Throws on an
/// empty sample or q outside [0, 1].
[[nodiscard]] double percentile(std::span<const double> sample, double q);

struct ConfidenceInterval {
  double point = 0.0;  ///< the statistic on the full sample (here: mean)
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;
};

/// Percentile-bootstrap confidence interval for the MEAN of the sample:
/// `resamples` bootstrap means, interval = [(1-level)/2, 1-(1-level)/2]
/// percentiles. Deterministic given `rng`. Throws on an empty sample.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                                   double level = 0.95,
                                                   std::size_t resamples = 2000);

/// Five-number summary helper used by report tables.
struct Summary {
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> sample);

}  // namespace radloc

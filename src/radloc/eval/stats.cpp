#include "radloc/eval/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "radloc/common/math.hpp"
#include "radloc/rng/distributions.hpp"

namespace radloc {

double percentile(std::span<const double> sample, double q) {
  require(!sample.empty(), "percentile of an empty sample");
  require(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, Rng& rng, double level,
                                     std::size_t resamples) {
  require(!sample.empty(), "bootstrap of an empty sample");
  require(level > 0.0 && level < 1.0, "confidence level must be in (0, 1)");
  require(resamples >= 10, "too few bootstrap resamples");

  const double n = static_cast<double>(sample.size());
  ConfidenceInterval ci;
  ci.level = level;
  ci.point = std::accumulate(sample.begin(), sample.end(), 0.0) / n;

  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      sum += sample[uniform_index(rng, sample.size())];
    }
    means.push_back(sum / n);
  }
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = percentile(means, alpha);
  ci.hi = percentile(means, 1.0 - alpha);
  return ci;
}

Summary summarize(std::span<const double> sample) {
  require(!sample.empty(), "summary of an empty sample");
  Summary s;
  s.min = percentile(sample, 0.0);
  s.p25 = percentile(sample, 0.25);
  s.median = percentile(sample, 0.5);
  s.p75 = percentile(sample, 0.75);
  s.max = percentile(sample, 1.0);
  s.mean = std::accumulate(sample.begin(), sample.end(), 0.0) /
           static_cast<double>(sample.size());
  return s;
}

}  // namespace radloc

#include "radloc/eval/matching.hpp"

#include <algorithm>

namespace radloc {

double MatchResult::mean_error() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& e : error) {
    if (e) {
      sum += *e;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

MatchResult match_estimates(std::span<const Source> truth,
                            std::span<const SourceEstimate> estimates, double gate) {
  MatchResult result;
  result.error.assign(truth.size(), std::nullopt);
  result.matched_estimate.assign(truth.size(), std::nullopt);

  struct Pair {
    double d;
    std::size_t source;
    std::size_t estimate;
  };
  std::vector<Pair> pairs;
  for (std::size_t s = 0; s < truth.size(); ++s) {
    for (std::size_t e = 0; e < estimates.size(); ++e) {
      const double d = distance(truth[s].pos, estimates[e].pos);
      if (d <= gate) pairs.push_back(Pair{d, s, e});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) { return a.d < b.d; });

  std::vector<bool> estimate_used(estimates.size(), false);
  for (const auto& p : pairs) {
    if (result.error[p.source] || estimate_used[p.estimate]) continue;
    result.error[p.source] = p.d;
    result.matched_estimate[p.source] = p.estimate;
    estimate_used[p.estimate] = true;
  }

  for (const auto& e : result.error) {
    if (!e) ++result.false_negatives;
  }
  for (const bool used : estimate_used) {
    if (!used) ++result.false_positives;
  }
  return result;
}

}  // namespace radloc

#include "radloc/eval/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "radloc/common/math.hpp"
#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/radiation/transmission_cache.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {

namespace {

std::unique_ptr<DeliveryModel> make_delivery(const Scenario& scenario,
                                             const ExperimentOptions& opts) {
  DeliveryKind kind = scenario.out_of_order_delivery ? DeliveryKind::kShuffled
                                                     : DeliveryKind::kInOrder;
  if (opts.delivery_override) kind = *opts.delivery_override;

  std::unique_ptr<DeliveryModel> model;
  switch (kind) {
    case DeliveryKind::kInOrder:
      model = std::make_unique<InOrderDelivery>();
      break;
    case DeliveryKind::kShuffled:
      model = std::make_unique<ShuffledDelivery>();
      break;
    case DeliveryKind::kRandomLatency:
      model = std::make_unique<RandomLatencyDelivery>(opts.mean_latency_steps);
      break;
  }
  if (opts.loss_rate > 0.0) {
    model = std::make_unique<LossyDelivery>(opts.loss_rate, std::move(model));
  }
  return model;
}

}  // namespace

double ExperimentResult::avg_error(std::size_t source, std::size_t from, std::size_t to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t t = from; t < to && t < error.size(); ++t) {
    const double e = error[t][source];
    if (!std::isnan(e)) {
      sum += e;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : std::numeric_limits<double>::quiet_NaN();
}

double ExperimentResult::avg_error_all(std::size_t from, std::size_t to) const {
  if (error.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < error.front().size(); ++j) {
    const double e = avg_error(j, from, to);
    if (!std::isnan(e)) {
      sum += e;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : std::numeric_limits<double>::quiet_NaN();
}

double ExperimentResult::avg_false_positives(std::size_t from, std::size_t to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t t = from; t < to && t < false_positives.size(); ++t) {
    sum += false_positives[t];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double ExperimentResult::avg_false_negatives(std::size_t from, std::size_t to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t t = from; t < to && t < false_negatives.size(); ++t) {
    sum += false_negatives[t];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

namespace {

/// Everything one trial produces, kept separate per trial so trials can run
/// concurrently and be reduced afterwards in trial-index order — the
/// reduction then performs the exact floating-point additions, in the exact
/// order, of the seed's serial accumulation loop.
struct TrialAccum {
  /// err[t * num_sources + j]: match error of source j at step t, NaN when
  /// unmatched (one value per (t, j) per trial — never summed in-trial).
  std::vector<double> err;
  std::vector<double> fp;  ///< false positives per step
  std::vector<double> fn;  ///< false negatives per step
  double seconds = 0.0;
  std::uint64_t iterations = 0;
};

/// Per-trial RNG streams, pre-split SERIALLY from the master in the seed's
/// exact statement order (noise split, delivery split, localizer seed draw
/// per trial) so the streams are independent of thread count.
struct TrialStreams {
  Rng noise;
  Rng delivery;
  std::uint64_t localizer_seed;
};

}  // namespace

ExperimentResult run_experiment(const Scenario& scenario, const ExperimentOptions& opts) {
  require(opts.trials > 0, "experiment needs at least one trial");
  require(opts.time_steps > 0, "experiment needs at least one time step");

  const std::size_t num_sources = scenario.sources.size();
  const std::size_t steps = opts.time_steps;
  const double nan = std::numeric_limits<double>::quiet_NaN();

  LocalizerConfig cfg = opts.localizer;
  if (opts.use_scenario_defaults) {
    cfg.filter.num_particles = scenario.recommended_particles;
    cfg.filter.fusion_range = scenario.recommended_fusion_range;
  }

  Rng master(opts.seed);
  std::vector<TrialStreams> streams;
  streams.reserve(opts.trials);
  for (std::size_t trial = 0; trial < opts.trials; ++trial) {
    // Braced-init evaluates left to right: split, split, draw — the seed's
    // per-trial order.
    streams.push_back(TrialStreams{master.split(), master.split(), master()});
  }

  // Immutable per-scenario state shared across trials: the ground-truth
  // simulator (Eq. 4 rates memoized at construction) and one transmission
  // cache prepared serially, up front, for every sensor origin. Both are
  // only read after this point, so concurrent trials borrow them with no
  // hot-path synchronization. Values are identical to what each trial would
  // rebuild for itself — sharing cannot change results.
  std::optional<MeasurementSimulator> shared_sim;
  std::optional<TransmissionCache> shared_cache;
  if (opts.share_scenario_state) {
    shared_sim.emplace(scenario.env, scenario.sensors, scenario.sources);
    if (cfg.filter.use_known_obstacles && cfg.filter.use_transmission_cache) {
      shared_cache.emplace(scenario.env, cfg.filter.transmission_cache_cell);
      for (const Sensor& s : scenario.sensors) (void)shared_cache->prepare(s.pos);
    }
  }

  std::vector<TrialAccum> accums(opts.trials);
  const std::size_t outer =
      std::min(opts.num_threads > 0 ? opts.num_threads : 1, opts.trials);
  // The trial pool is shared with each trial's filter/mean-shift stages:
  // with outer parallelism the inner parallel_for calls run inline on the
  // trial's thread (ThreadPool's nesting policy), so thread count never
  // exceeds `outer`. In the serial case localizers own their pools per
  // cfg.num_threads, exactly as before.
  std::optional<ThreadPool> pool;
  if (outer > 1) pool.emplace(outer);

  const auto run_trial = [&](std::size_t trial) {
    TrialAccum& acc = accums[trial];
    acc.err.assign(steps * num_sources, nan);
    acc.fp.assign(steps, 0.0);
    acc.fn.assign(steps, 0.0);

    Rng noise_rng = streams[trial].noise;
    Rng delivery_rng = streams[trial].delivery;

    std::optional<MeasurementSimulator> own_sim;
    if (!shared_sim) own_sim.emplace(scenario.env, scenario.sensors, scenario.sources);
    const MeasurementSimulator& sim = shared_sim ? *shared_sim : *own_sim;

    MultiSourceLocalizer localizer(scenario.env, scenario.sensors, cfg,
                                   streams[trial].localizer_seed,
                                   pool ? &*pool : nullptr);
    if (shared_cache) localizer.filter().set_shared_transmission_cache(&*shared_cache);
    auto delivery = make_delivery(scenario, opts);

    for (std::size_t t = 0; t < steps; ++t) {
      auto batch = sim.sample_time_step(noise_rng);
      const auto delivered = delivery->deliver(delivery_rng, std::move(batch));

      const auto t0 = std::chrono::steady_clock::now();
      localizer.process_all(delivered);
      const auto estimates = localizer.estimate();
      const auto t1 = std::chrono::steady_clock::now();
      acc.seconds += std::chrono::duration<double>(t1 - t0).count();
      acc.iterations += delivered.size();

      const auto match = match_estimates(scenario.sources, estimates, opts.match_gate);
      for (std::size_t j = 0; j < num_sources; ++j) {
        if (match.error[j]) acc.err[t * num_sources + j] = *match.error[j];
      }
      acc.fp[t] = static_cast<double>(match.false_positives);
      acc.fn[t] = static_cast<double>(match.false_negatives);
    }
  };

  if (pool) {
    ThreadPool::TaskGroup group(*pool);
    for (std::size_t trial = 0; trial < opts.trials; ++trial) {
      group.run([&run_trial, trial] { run_trial(trial); });
    }
    group.wait();
  } else {
    for (std::size_t trial = 0; trial < opts.trials; ++trial) run_trial(trial);
  }

  // Reduce in trial-index order: for every (t, j) cell the additions below
  // happen trial 0, 1, 2, ... — the same floating-point evaluation order as
  // the seed's serial loop, hence bit-identical sums at any thread count.
  std::vector<std::vector<double>> err_sum(steps, std::vector<double>(num_sources, 0.0));
  std::vector<std::vector<std::size_t>> err_n(steps, std::vector<std::size_t>(num_sources, 0));
  std::vector<double> fp_sum(steps, 0.0);
  std::vector<double> fn_sum(steps, 0.0);
  double total_seconds = 0.0;
  std::uint64_t total_iterations = 0;
  for (std::size_t trial = 0; trial < opts.trials; ++trial) {
    const TrialAccum& acc = accums[trial];
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t j = 0; j < num_sources; ++j) {
        const double e = acc.err[t * num_sources + j];
        if (!std::isnan(e)) {
          err_sum[t][j] += e;
          ++err_n[t][j];
        }
      }
      fp_sum[t] += acc.fp[t];
      fn_sum[t] += acc.fn[t];
    }
    total_seconds += acc.seconds;
    total_iterations += acc.iterations;
  }

  ExperimentResult result;
  result.error.assign(steps, std::vector<double>(num_sources, 0.0));
  result.matched_frac.assign(steps, std::vector<double>(num_sources, 0.0));
  result.false_positives.resize(steps);
  result.false_negatives.resize(steps);
  const auto trials = static_cast<double>(opts.trials);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t j = 0; j < num_sources; ++j) {
      result.error[t][j] = err_n[t][j] > 0
                               ? err_sum[t][j] / static_cast<double>(err_n[t][j])
                               : std::numeric_limits<double>::quiet_NaN();
      result.matched_frac[t][j] = static_cast<double>(err_n[t][j]) / trials;
    }
    result.false_positives[t] = fp_sum[t] / trials;
    result.false_negatives[t] = fn_sum[t] / trials;
  }
  result.seconds_per_iteration =
      total_iterations > 0 ? total_seconds / static_cast<double>(total_iterations) : 0.0;
  return result;
}

}  // namespace radloc

#include "radloc/eval/experiment.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "radloc/common/math.hpp"
#include "radloc/sensornet/delivery.hpp"
#include "radloc/sensornet/simulator.hpp"

namespace radloc {

namespace {

std::unique_ptr<DeliveryModel> make_delivery(const Scenario& scenario,
                                             const ExperimentOptions& opts) {
  DeliveryKind kind = scenario.out_of_order_delivery ? DeliveryKind::kShuffled
                                                     : DeliveryKind::kInOrder;
  if (opts.delivery_override) kind = *opts.delivery_override;

  std::unique_ptr<DeliveryModel> model;
  switch (kind) {
    case DeliveryKind::kInOrder:
      model = std::make_unique<InOrderDelivery>();
      break;
    case DeliveryKind::kShuffled:
      model = std::make_unique<ShuffledDelivery>();
      break;
    case DeliveryKind::kRandomLatency:
      model = std::make_unique<RandomLatencyDelivery>(opts.mean_latency_steps);
      break;
  }
  if (opts.loss_rate > 0.0) {
    model = std::make_unique<LossyDelivery>(opts.loss_rate, std::move(model));
  }
  return model;
}

}  // namespace

double ExperimentResult::avg_error(std::size_t source, std::size_t from, std::size_t to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t t = from; t < to && t < error.size(); ++t) {
    const double e = error[t][source];
    if (!std::isnan(e)) {
      sum += e;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : std::numeric_limits<double>::quiet_NaN();
}

double ExperimentResult::avg_error_all(std::size_t from, std::size_t to) const {
  if (error.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < error.front().size(); ++j) {
    const double e = avg_error(j, from, to);
    if (!std::isnan(e)) {
      sum += e;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : std::numeric_limits<double>::quiet_NaN();
}

double ExperimentResult::avg_false_positives(std::size_t from, std::size_t to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t t = from; t < to && t < false_positives.size(); ++t) {
    sum += false_positives[t];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double ExperimentResult::avg_false_negatives(std::size_t from, std::size_t to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t t = from; t < to && t < false_negatives.size(); ++t) {
    sum += false_negatives[t];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

ExperimentResult run_experiment(const Scenario& scenario, const ExperimentOptions& opts) {
  require(opts.trials > 0, "experiment needs at least one trial");
  require(opts.time_steps > 0, "experiment needs at least one time step");

  const std::size_t num_sources = scenario.sources.size();
  const std::size_t steps = opts.time_steps;

  // Accumulators: per-step per-source error sums & match counts, fp/fn sums.
  std::vector<std::vector<double>> err_sum(steps, std::vector<double>(num_sources, 0.0));
  std::vector<std::vector<std::size_t>> err_n(steps, std::vector<std::size_t>(num_sources, 0));
  std::vector<double> fp_sum(steps, 0.0);
  std::vector<double> fn_sum(steps, 0.0);
  double total_seconds = 0.0;
  std::uint64_t total_iterations = 0;

  Rng master(opts.seed);
  for (std::size_t trial = 0; trial < opts.trials; ++trial) {
    Rng noise_rng = master.split();
    Rng delivery_rng = master.split();
    const std::uint64_t localizer_seed = master();

    LocalizerConfig cfg = opts.localizer;
    if (opts.use_scenario_defaults) {
      cfg.filter.num_particles = scenario.recommended_particles;
      cfg.filter.fusion_range = scenario.recommended_fusion_range;
    }

    MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
    MultiSourceLocalizer localizer(scenario.env, scenario.sensors, cfg, localizer_seed);
    auto delivery = make_delivery(scenario, opts);

    for (std::size_t t = 0; t < steps; ++t) {
      auto batch = sim.sample_time_step(noise_rng);
      const auto delivered = delivery->deliver(delivery_rng, std::move(batch));

      const auto t0 = std::chrono::steady_clock::now();
      localizer.process_all(delivered);
      const auto estimates = localizer.estimate();
      const auto t1 = std::chrono::steady_clock::now();
      total_seconds += std::chrono::duration<double>(t1 - t0).count();
      total_iterations += delivered.size();

      const auto match = match_estimates(scenario.sources, estimates, opts.match_gate);
      for (std::size_t j = 0; j < num_sources; ++j) {
        if (match.error[j]) {
          err_sum[t][j] += *match.error[j];
          ++err_n[t][j];
        }
      }
      fp_sum[t] += static_cast<double>(match.false_positives);
      fn_sum[t] += static_cast<double>(match.false_negatives);
    }
  }

  ExperimentResult result;
  result.error.assign(steps, std::vector<double>(num_sources, 0.0));
  result.matched_frac.assign(steps, std::vector<double>(num_sources, 0.0));
  result.false_positives.resize(steps);
  result.false_negatives.resize(steps);
  const auto trials = static_cast<double>(opts.trials);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t j = 0; j < num_sources; ++j) {
      result.error[t][j] = err_n[t][j] > 0
                               ? err_sum[t][j] / static_cast<double>(err_n[t][j])
                               : std::numeric_limits<double>::quiet_NaN();
      result.matched_frac[t][j] = static_cast<double>(err_n[t][j]) / trials;
    }
    result.false_positives[t] = fp_sum[t] / trials;
    result.false_negatives[t] = fn_sum[t] / trials;
  }
  result.seconds_per_iteration =
      total_iterations > 0 ? total_seconds / static_cast<double>(total_iterations) : 0.0;
  return result;
}

}  // namespace radloc

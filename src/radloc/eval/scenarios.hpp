// The paper's evaluation scenarios (Sec. VI, Fig. 8).
//
// Scenario A: 100x100 area, 6x6 sensor grid, two sources, optional U-shaped
//             obstacle in the middle (Fig. 8(a)).
// Scenario B: 260x260 area, 14x14 = 196 sensor grid, nine sources of
//             non-uniform strength, three obstacles of uneven thickness
//             (Fig. 8(b)).
// Scenario C: Scenario B's sources/obstacles with 195 Poisson-placed sensors
//             and out-of-order delivery (Fig. 8(c)).
//
// Source coordinates for A come from the paper text. B/C's exact coordinates
// were published only as a plot; the values here are read off Fig. 8 and
// chosen to preserve the obstacle-adjacency structure the paper analyzes
// (obstacles near S2, S3, S6, S7, S9; S5 walled in; S1, S4 in the open).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "radloc/radiation/environment.hpp"
#include "radloc/rng/rng.hpp"
#include "radloc/radiation/source.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct Scenario {
  std::string name;
  Environment env;                ///< bounds + (possibly empty) obstacles
  std::vector<Sensor> sensors;
  std::vector<Source> sources;
  std::size_t recommended_particles = 2000;
  double recommended_fusion_range = 28.0;
  bool out_of_order_delivery = false;  ///< Scenario C's shuffled arrivals

  /// The same scenario with obstacles stripped (for Fig. 7/9's
  /// with-vs-without comparisons). Measurements change; sensors stay.
  [[nodiscard]] Scenario without_obstacles() const;
};

/// Scenario A with two sources of the given strength (uCi) and the given
/// per-sensor background (CPM). `with_obstacle` adds the U-shaped obstacle
/// (thickness 2, mu = 0.0693 — halves intensity per 10 units).
[[nodiscard]] Scenario make_scenario_a(double source_strength = 10.0, double background_cpm = 5.0,
                                       bool with_obstacle = false);

/// The paper's three-source variant of Scenario A (Sec. VI-A): sources at
/// (87,89), (37,14), (55,51). `with_obstacle` adds Scenario A's U-shaped
/// obstacle (the Fig. 5 three-source-with-obstacle configuration).
[[nodiscard]] Scenario make_scenario_a3(double source_strength = 10.0,
                                        double background_cpm = 5.0,
                                        bool with_obstacle = false);

/// Scenario B: 196-sensor grid, 9 sources (10-100 uCi), 3 obstacles.
[[nodiscard]] Scenario make_scenario_b(double background_cpm = 5.0, bool with_obstacles = true);

/// Scenario C: B's sources/obstacles, 195 Poisson-placed sensors (fixed by
/// `placement_seed`), out-of-order delivery flagged.
[[nodiscard]] Scenario make_scenario_c(double background_cpm = 5.0, bool with_obstacles = true,
                                       std::uint64_t placement_seed = 0xC0FFEE);

/// Parameters for randomized stress-test worlds.
struct RandomScenarioConfig {
  double area_side = 100.0;
  std::size_t grid_sensors_per_side = 6;
  std::size_t num_sources = 3;
  double strength_min = 10.0;        ///< uCi (log-uniform draw)
  double strength_max = 100.0;
  double min_source_separation = 25.0;
  std::size_t num_obstacles = 2;     ///< random walls of random material
  double background_cpm = 5.0;
};

/// A randomized world: grid sensors, separated random sources with
/// log-uniform strengths, and random heavy walls. Fully determined by
/// `rng`'s state — used by the robustness sweep to test the localizer
/// across many layouts rather than the paper's fixed ones.
[[nodiscard]] Scenario make_random_scenario(Rng& rng, const RandomScenarioConfig& cfg = {});

}  // namespace radloc

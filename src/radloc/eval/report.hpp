// Console / CSV reporting helpers shared by the bench binaries.
//
// Every bench prints the same rows/series as the corresponding paper figure
// or table; these helpers keep that output consistent and parseable.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "radloc/eval/experiment.hpp"

namespace radloc {

/// Prints "== title ==" banner.
void print_banner(std::ostream& os, std::string_view title);

/// Prints a fixed-width table: `header` column names, then one row per
/// entry of `rows`. Column count must match.
void print_table(std::ostream& os, std::span<const std::string> header,
                 std::span<const std::vector<double>> rows, int precision = 2);

/// Prints the per-time-step series of an ExperimentResult the way the
/// paper's figures plot them: one row per step, one error column per source,
/// then FP and FN columns.
void print_time_series(std::ostream& os, const ExperimentResult& result,
                       std::span<const std::string> source_names);

/// Writes the same series as CSV (for external plotting).
void write_time_series_csv(std::ostream& os, const ExperimentResult& result,
                           std::span<const std::string> source_names);

/// "Source 1", "Source 2", ... helper.
[[nodiscard]] std::vector<std::string> default_source_names(std::size_t n);

}  // namespace radloc

#include "radloc/eval/scenarios.hpp"

#include <cmath>

#include "radloc/common/math.hpp"
#include "radloc/geom/polygon.hpp"
#include "radloc/geom/shapes.hpp"
#include "radloc/rng/distributions.hpp"
#include "radloc/rng/poisson_process.hpp"
#include "radloc/sensornet/placement.hpp"

namespace radloc {

namespace {

/// The paper's synthetic obstacle attenuation: halves intensity every 10
/// length units (Sec. VI-B).
constexpr double kPaperMu = 0.0693;

/// Scenario B/C source set. Strengths are "non-uniform, between 10-100 uCi"
/// (Sec. VI-C); the layout mirrors Fig. 8(b): S2/S3 flank the tall wall,
/// S5 sits right under the central wall, S6 next to its vertical arm,
/// S7/S9 flank the eastern wall, S1/S4 are in open space.
std::vector<Source> scenario_b_sources() {
  return {
      Source{{30.0, 230.0}, 40.0},   // S1 — open space (top-left)
      Source{{92.0, 205.0}, 25.0},   // S2 — west of wall 1
      Source{{150.0, 210.0}, 60.0},  // S3 — east of wall 1
      Source{{235.0, 235.0}, 90.0},  // S4 — open space (top-right)
      Source{{130.0, 132.0}, 15.0},  // S5 — immediately south of wall 2 (hurt by it)
      Source{{48.0, 112.0}, 35.0},   // S6 — beside wall 2's vertical arm
      Source{{215.0, 140.0}, 80.0},  // S7 — north of wall 3
      Source{{70.0, 40.0}, 20.0},    // S8 — mostly open (south-west)
      Source{{190.0, 52.0}, 50.0},   // S9 — south of wall 3
  };
}

/// Three obstacles of uneven thickness (Fig. 8(b)).
std::vector<Obstacle> scenario_b_obstacles() {
  std::vector<Obstacle> obstacles;
  // Wall 1: tall vertical slab separating S2 from S3.
  obstacles.emplace_back(make_rect(114.0, 180.0, 122.0, 250.0), kPaperMu);
  // Wall 2: L-shape — horizontal arm just north of S5, vertical arm east of
  // S6. Thickness varies between arms ("uneven thickness").
  obstacles.emplace_back(Polygon({{60.0, 140.0},
                                  {175.0, 140.0},
                                  {175.0, 148.0},
                                  {72.0, 148.0},
                                  {72.0, 100.0},
                                  {60.0, 100.0}}),
                         kPaperMu);
  // Wall 3: vertical slab between S7 (north) and S9 (south).
  obstacles.emplace_back(make_rect(196.0, 65.0, 202.0, 128.0), kPaperMu);
  return obstacles;
}

}  // namespace

Scenario Scenario::without_obstacles() const {
  Scenario s{*this};
  s.env = env.without_obstacles();
  return s;
}

Scenario make_scenario_a(double source_strength, double background_cpm, bool with_obstacle) {
  const AreaBounds area = make_area(100.0, 100.0);
  std::vector<Obstacle> obstacles;
  if (with_obstacle) {
    // U-shaped obstacle in the middle, walls 2 units thick, opening upward.
    obstacles.emplace_back(make_u_shape(38.0, 35.0, 62.0, 60.0, 2.0), kPaperMu);
  }
  Scenario s{
      "A",
      Environment(area, std::move(obstacles)),
      place_grid(area, 6, 6),
      {Source{{47.0, 71.0}, source_strength}, Source{{81.0, 42.0}, source_strength}},
      /*recommended_particles=*/2000,
      /*recommended_fusion_range=*/28.0,
      /*out_of_order_delivery=*/false,
  };
  set_background(s.sensors, background_cpm);
  return s;
}

Scenario make_scenario_a3(double source_strength, double background_cpm, bool with_obstacle) {
  const AreaBounds area = make_area(100.0, 100.0);
  std::vector<Obstacle> obstacles;
  if (with_obstacle) {
    // Scenario A's U-shaped central obstacle; S3 at (55,51) sits inside it.
    obstacles.emplace_back(make_u_shape(38.0, 35.0, 62.0, 60.0, 2.0), kPaperMu);
  }
  Scenario s{
      "A3",
      Environment(area, std::move(obstacles)),
      place_grid(area, 6, 6),
      {Source{{87.0, 89.0}, source_strength}, Source{{37.0, 14.0}, source_strength},
       Source{{55.0, 51.0}, source_strength}},
      /*recommended_particles=*/2000,
      /*recommended_fusion_range=*/28.0,
      /*out_of_order_delivery=*/false,
  };
  set_background(s.sensors, background_cpm);
  return s;
}

Scenario make_scenario_b(double background_cpm, bool with_obstacles) {
  const AreaBounds area = make_area(260.0, 260.0);
  Scenario s{
      "B",
      Environment(area, with_obstacles ? scenario_b_obstacles() : std::vector<Obstacle>{}),
      place_grid(area, 14, 14),
      scenario_b_sources(),
      /*recommended_particles=*/15000,
      /*recommended_fusion_range=*/28.0,
      /*out_of_order_delivery=*/false,
  };
  set_background(s.sensors, background_cpm);
  return s;
}

Scenario make_scenario_c(double background_cpm, bool with_obstacles,
                         std::uint64_t placement_seed) {
  const AreaBounds area = make_area(260.0, 260.0);
  Rng rng(placement_seed);
  Scenario s{
      "C",
      Environment(area, with_obstacles ? scenario_b_obstacles() : std::vector<Obstacle>{}),
      place_poisson(rng, area, 195),
      scenario_b_sources(),
      /*recommended_particles=*/15000,
      /*recommended_fusion_range=*/32.0,  // random gaps need a slightly wider range
      /*out_of_order_delivery=*/true,
  };
  set_background(s.sensors, background_cpm);
  return s;
}

Scenario make_random_scenario(Rng& rng, const RandomScenarioConfig& cfg) {
  require(cfg.num_sources >= 1, "random scenario needs at least one source");
  require(cfg.strength_min > 0.0 && cfg.strength_max >= cfg.strength_min,
          "random scenario strength range invalid");
  const AreaBounds area = make_area(cfg.area_side, cfg.area_side);

  // Sources: separated positions, log-uniform strengths, kept off the very
  // edge so every source has sensors on all sides.
  const AreaBounds inner{area.min + Vec2{10.0, 10.0}, area.max - Vec2{10.0, 10.0}};
  const auto positions =
      sample_separated_points(rng, inner, cfg.num_sources, cfg.min_source_separation);
  std::vector<Source> sources;
  for (const auto& p : positions) {
    sources.push_back(Source{
        p, std::exp(uniform(rng, std::log(cfg.strength_min), std::log(cfg.strength_max)))});
  }

  // Obstacles: random walls of random length/orientation/material.
  std::vector<Obstacle> obstacles;
  for (std::size_t i = 0; i < cfg.num_obstacles; ++i) {
    const Point2 a = uniform_point(rng, inner);
    const double angle = uniform(rng, 0.0, 2.0 * kPi);
    const double len = uniform(rng, 0.15, 0.35) * cfg.area_side;
    const Point2 b = area.clamp(a + Vec2{len * std::cos(angle), len * std::sin(angle)});
    if (distance(a, b) < 1.0) continue;  // clamped into a degenerate stub
    const Material materials[] = {Material::kConcrete, Material::kBrick, Material::kSteel};
    obstacles.emplace_back(make_wall(a, b, uniform(rng, 2.0, 6.0)),
                           materials[uniform_index(rng, 3)]);
  }

  Scenario s{
      "random",
      Environment(area, std::move(obstacles)),
      place_grid(area, cfg.grid_sensors_per_side, cfg.grid_sensors_per_side),
      std::move(sources),
      /*recommended_particles=*/static_cast<std::size_t>(
          2000.0 * square(cfg.area_side) / 1e4),
      /*recommended_fusion_range=*/28.0,
      /*out_of_order_delivery=*/false,
  };
  set_background(s.sensors, cfg.background_cpm);
  return s;
}

}  // namespace radloc

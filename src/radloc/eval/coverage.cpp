#include "radloc/eval/coverage.hpp"

#include <cmath>
#include <limits>

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"

namespace radloc {

Point2 CoverageMap::cell_center(std::size_t cx, std::size_t cy) const {
  const double w = bounds.width() / static_cast<double>(cells_x);
  const double h = bounds.height() / static_cast<double>(cells_y);
  return Point2{bounds.min.x + (static_cast<double>(cx) + 0.5) * w,
                bounds.min.y + (static_cast<double>(cy) + 0.5) * h};
}

double CoverageMap::covered_fraction(double strength) const {
  if (min_detectable.empty()) return 0.0;
  std::size_t covered = 0;
  for (const double s : min_detectable) {
    if (s <= strength) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(min_detectable.size());
}

double CoverageMap::worst_case() const {
  double worst = 0.0;
  for (const double s : min_detectable) worst = std::max(worst, s);
  return worst;
}

double expected_detection_log_lr(const Environment& env, std::span<const Sensor> sensors,
                                 const Source& source, const CoverageConfig& cfg) {
  // Under truth "source present", the expected per-reading log-LR at sensor
  // i is the Kullback-Leibler divergence KL(Poisson(lambda) || Poisson(B)):
  //   lambda * ln(lambda / B) - (lambda - B).
  Environment free_space = env.without_obstacles();
  const Environment& model_env = cfg.use_obstacles ? env : free_space;
  double total = 0.0;
  for (const Sensor& s : sensors) {
    if (distance(s.pos, source.pos) > cfg.detection_range) continue;
    const double bg = std::max(s.response.background_cpm, 0.1);
    const double lambda = std::max(expected_cpm_single(s.pos, source, model_env, s.response),
                                   bg);
    total += static_cast<double>(cfg.steps) * (lambda * std::log(lambda / bg) - (lambda - bg));
  }
  return total;
}

CoverageMap compute_coverage(const Environment& env, std::span<const Sensor> sensors,
                             const CoverageConfig& cfg) {
  require(cfg.cells_x >= 1 && cfg.cells_y >= 1, "coverage grid must be non-empty");
  require(cfg.strength_min > 0.0 && cfg.strength_max > cfg.strength_min,
          "coverage strength bracket invalid");
  require(!sensors.empty(), "coverage needs sensors");

  CoverageMap map;
  map.cells_x = cfg.cells_x;
  map.cells_y = cfg.cells_y;
  map.bounds = env.bounds();
  map.min_detectable.assign(cfg.cells_x * cfg.cells_y,
                            std::numeric_limits<double>::infinity());

  for (std::size_t cy = 0; cy < cfg.cells_y; ++cy) {
    for (std::size_t cx = 0; cx < cfg.cells_x; ++cx) {
      const Point2 pos = map.cell_center(cx, cy);
      // The log-LR is monotone increasing in strength: bisect for the
      // threshold crossing.
      auto lr = [&](double strength) {
        return expected_detection_log_lr(env, sensors, Source{pos, strength}, cfg);
      };
      if (lr(cfg.strength_max) < cfg.required_log_lr) continue;  // blind cell
      double lo = cfg.strength_min;
      double hi = cfg.strength_max;
      if (lr(lo) >= cfg.required_log_lr) {
        map.min_detectable[cy * cfg.cells_x + cx] = lo;
        continue;
      }
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (lr(mid) >= cfg.required_log_lr) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      map.min_detectable[cy * cfg.cells_x + cx] = hi;
    }
  }
  return map;
}

}  // namespace radloc

// Malfunctioning-sensor detection.
//
// The paper claims robustness to malfunctioning sensors; this module makes
// the failure visible. Given the current source estimates, every sensor's
// reading history should be Poisson around the modeled rate. Sensors whose
// standardized residual drifts far from zero are flagged — stuck counters,
// mis-calibrated efficiency, or local interference all show up here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct SensorHealth {
  SensorId sensor = 0;
  std::size_t readings = 0;
  double mean_cpm = 0.0;       ///< empirical mean reading
  double expected_cpm = 0.0;   ///< modeled rate given the estimates
  /// Standardized residual: (mean - expected) / sqrt(expected / n). Under a
  /// healthy sensor this is ~N(0,1); |z| > ~4 is a strong anomaly.
  double z_score = 0.0;
  bool suspect = false;
};

struct FaultDetectorConfig {
  /// |z| above which a sensor is flagged.
  double z_threshold = 4.0;
  /// Minimum readings before a sensor can be judged.
  std::size_t min_readings = 5;
  /// Model obstacles when predicting rates (requires a trusted obstacle map).
  bool use_known_obstacles = false;
  /// Sensors closer than this to any estimated source are never flagged:
  /// so near a source, a one-unit localization error changes the expected
  /// rate by tens of percent, and the residual measures the estimate, not
  /// the sensor. 0 disables the exclusion.
  double near_source_exclusion = 0.0;
};

class FaultDetector {
 public:
  /// `env` and `sensors` are copied/borrowed like the localizer's; `env`
  /// must outlive the detector.
  FaultDetector(const Environment& env, std::vector<Sensor> sensors,
                FaultDetectorConfig cfg = {});

  /// Feeds one observed measurement.
  void observe(const Measurement& m);

  /// Health report for every sensor, given the current best source
  /// estimates (e.g. MultiSourceLocalizer::estimate()).
  [[nodiscard]] std::vector<SensorHealth> assess(
      std::span<const SourceEstimate> estimates) const;

  /// Ids of flagged sensors only.
  [[nodiscard]] std::vector<SensorId> suspects(
      std::span<const SourceEstimate> estimates) const;

  void reset();

 private:
  const Environment* env_;
  std::vector<Sensor> sensors_;
  FaultDetectorConfig cfg_;
  std::vector<std::uint64_t> count_;
  std::vector<double> sum_;
};

}  // namespace radloc

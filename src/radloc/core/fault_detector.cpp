#include "radloc/core/fault_detector.hpp"

#include <cmath>

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"

namespace radloc {

FaultDetector::FaultDetector(const Environment& env, std::vector<Sensor> sensors,
                             FaultDetectorConfig cfg)
    : env_(&env),
      sensors_(std::move(sensors)),
      cfg_(cfg),
      count_(sensors_.size(), 0),
      sum_(sensors_.size(), 0.0) {
  require(!sensors_.empty(), "fault detector needs sensors");
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    require(sensors_[i].id == i, "sensor ids must be dense and in order");
  }
}

void FaultDetector::observe(const Measurement& m) {
  require(m.sensor < sensors_.size(), "measurement from unknown sensor");
  require(m.cpm >= 0.0, "negative CPM reading");
  ++count_[m.sensor];
  sum_[m.sensor] += m.cpm;
}

std::vector<SensorHealth> FaultDetector::assess(
    std::span<const SourceEstimate> estimates) const {
  std::vector<Source> sources;
  sources.reserve(estimates.size());
  for (const auto& e : estimates) sources.push_back(Source{e.pos, e.strength});

  Environment free_space = env_->without_obstacles();
  const Environment& model_env = cfg_.use_known_obstacles ? *env_ : free_space;

  std::vector<SensorHealth> report;
  report.reserve(sensors_.size());
  for (const Sensor& s : sensors_) {
    SensorHealth h;
    h.sensor = s.id;
    h.readings = count_[s.id];
    h.expected_cpm = expected_cpm(s.pos, sources, model_env, s.response);
    if (h.readings > 0) h.mean_cpm = sum_[s.id] / static_cast<double>(h.readings);
    if (h.readings >= cfg_.min_readings && h.expected_cpm > 0.0) {
      const double n = static_cast<double>(h.readings);
      h.z_score = (h.mean_cpm - h.expected_cpm) / std::sqrt(h.expected_cpm / n);
      bool near_source = false;
      if (cfg_.near_source_exclusion > 0.0) {
        for (const auto& src : sources) {
          if (distance(s.pos, src.pos) < cfg_.near_source_exclusion) near_source = true;
        }
      }
      h.suspect = !near_source && std::abs(h.z_score) > cfg_.z_threshold;
    }
    report.push_back(h);
  }
  return report;
}

std::vector<SensorId> FaultDetector::suspects(std::span<const SourceEstimate> estimates) const {
  std::vector<SensorId> out;
  for (const auto& h : assess(estimates)) {
    if (h.suspect) out.push_back(h.sensor);
  }
  return out;
}

void FaultDetector::reset() {
  std::fill(count_.begin(), count_.end(), 0u);
  std::fill(sum_.begin(), sum_.end(), 0.0);
}

}  // namespace radloc

// MultiSourceLocalizer — radloc's public entry point.
//
// Combines the fusion-range particle filter (filter/) with mean-shift mode
// finding (meanshift/) exactly as in Fig. 1 of the paper: feed measurements
// one at a time in arrival order (any order), ask for estimates whenever you
// like. Neither the number of sources nor the obstacle layout is required.
//
//   Environment env(make_area(100, 100));          // bounds only; obstacles unknown
//   auto sensors = place_grid(env.bounds(), 6, 6);
//   MultiSourceLocalizer loc(env, sensors, {}, /*seed=*/42);
//   for (const Measurement& m : arriving_measurements) loc.process(m);
//   for (const SourceEstimate& e : loc.estimate())
//     use(e.pos, e.strength, e.support);
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "radloc/adaptive/budget_controller.hpp"
#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/filter/particle_filter.hpp"
#include "radloc/meanshift/meanshift.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/sensornet/sensor.hpp"
#include "radloc/sensornet/validation.hpp"

namespace radloc {

/// Outcome of a non-throwing batch ingest (try_process_all): every reading
/// was validated, the well-formed ones were applied in order, the malformed
/// ones were tallied per fault kind. `processed + rejected` always equals
/// the batch size — a batch is never half-accounted.
struct BatchIngestResult {
  std::size_t processed = 0;  ///< well-formed readings applied to the filter
  std::size_t rejected = 0;   ///< malformed readings skipped (and tallied)
  /// Per-fault reject tallies for THIS batch (index by ReadingFault).
  std::array<std::size_t, kReadingFaultCount> fault_counts{};
  /// First fault encountered, kNone when the whole batch was well-formed.
  ReadingFault first_fault = ReadingFault::kNone;

  [[nodiscard]] bool clean() const { return rejected == 0; }
  [[nodiscard]] std::size_t count(ReadingFault fault) const {
    return fault_counts[static_cast<std::size_t>(fault)];
  }
};

struct LocalizerConfig {
  FilterConfig filter;
  MeanShiftConfig meanshift;
  /// Worker threads for the mean-shift stage (1 = serial). The paper's
  /// Table I scaling knob.
  std::size_t num_threads = 1;
  /// Detection threshold: mean-shift modes are accepted greedily, strongest
  /// evidence first; a candidate is reported only when the accumulated
  /// *marginal* log likelihood ratio of "accepted sources + candidate" vs
  /// "accepted sources only", over the observed readings of the sensors
  /// within fusion range of the candidate, exceeds this value. This is the
  /// mode-acceptance rule the paper leaves unspecified: weak but real
  /// sources emerge as evidence accumulates (the paper's slow 4 uCi
  /// convergence), while phantom modes that merely re-explain the far field
  /// of already-accepted sources are rejected. Set to -inf to report every
  /// mean-shift mode.
  double detection_log_lr = 3.0;
  /// Sliding window of recent readings per sensor feeding the detection
  /// test. Bounded history is essential for source DISAPPEARANCE: with
  /// unlimited memory, a removed source keeps passing the detection test
  /// on stale evidence indefinitely. Ten readings per sensor give a weak
  /// 4 uCi source an accumulated log-LR well above the threshold while
  /// flushing a removed source's evidence within ten time steps.
  std::size_t history_window = 10;
};

class MultiSourceLocalizer {
 public:
  /// `env` carries the surveillance-area bounds (and, only when
  /// cfg.filter.use_known_obstacles is set, obstacles the localizer may
  /// exploit); it must outlive the localizer. `sensors` are the known sensor
  /// deployments; `seed` fixes all of the localizer's randomness.
  ///
  /// `shared_pool`, when non-null, is an externally owned pool (it must
  /// outlive the localizer) that the filter and mean-shift stages use
  /// instead of an internal one — this is how trial-level outer parallelism
  /// (run_experiment) and the inner weight-update/mean-shift parallelism
  /// share one pool without oversubscription; cfg.num_threads is ignored in
  /// that case (the pool's thread count rules). See DESIGN.md §5.6.
  MultiSourceLocalizer(const Environment& env, std::vector<Sensor> sensors, LocalizerConfig cfg,
                       std::uint64_t seed, ThreadPool* shared_pool = nullptr);

  /// Feeds one measurement (one filter iteration, Sec. V-B/C/E). Malformed
  /// measurements throw std::invalid_argument naming the specific fault.
  void process(const Measurement& m);

  /// Non-throwing ingestion for feeds where malformed readings are expected
  /// (field telemetry, hostile networks): validates, tallies the verdict
  /// (see filter().validator()), processes only well-formed measurements,
  /// and returns the fault — ReadingFault::kNone on success.
  ReadingFault try_process(const Measurement& m);

  /// Feeds a batch in the given order (convenience for one time step).
  /// All-or-nothing on malformed input: the whole batch is validated BEFORE
  /// anything is applied, so a bad reading mid-batch throws
  /// std::invalid_argument (naming the fault and the offending index) with
  /// the filter state untouched — never half a batch applied with no record
  /// of progress. Feeds that expect malformed readings should use
  /// try_process_all instead. With cfg.filter.fused_batch_updates set (and a
  /// static movement model), consecutive same-sensor runs are applied as one
  /// fused weight update each (FusionParticleFilter::process_fused).
  void process_all(std::span<const Measurement> batch);

  /// Non-throwing batch ingestion — the streaming-service drain path:
  /// validates every reading, applies the well-formed ones in batch order,
  /// tallies each malformed one per fault kind, and reports the outcome.
  /// `on_reading`, when set, is invoked after each reading's verdict (index,
  /// fault) — the hook the service layer uses to stamp per-reading latency
  /// without a second pass. With cfg.filter.fused_batch_updates set (and a
  /// static movement model), consecutive same-sensor runs of well-formed
  /// readings fuse into one weight update; a malformed reading breaks the
  /// run. Callback order and per-reading tallies are unchanged (a fused
  /// run's callbacks fire after the run applies, still in batch order).
  BatchIngestResult try_process_all(
      std::span<const Measurement> batch,
      const std::function<void(std::size_t, ReadingFault)>& on_reading = nullptr);

  /// Runs mean-shift over the current particle cloud, validates each mode
  /// against the background-only hypothesis (detection_log_lr), and returns
  /// one estimate per discovered source, sorted by support (Sec. V-D). The
  /// number of returned estimates is the learned K.
  [[nodiscard]] std::vector<SourceEstimate> estimate();

  /// Accumulated marginal log likelihood ratio of adding `candidate` on top
  /// of the `accepted` source set, over all readings seen so far from
  /// sensors within the fusion range of the candidate. Positive = evidence
  /// the candidate is a real additional source. Exposed for diagnostics and
  /// tests; estimate() uses it greedily.
  [[nodiscard]] double detection_evidence(
      const SourceEstimate& candidate,
      std::span<const SourceEstimate> accepted = {}) const;

  [[nodiscard]] const FusionParticleFilter& filter() const { return filter_; }
  [[nodiscard]] FusionParticleFilter& filter() { return filter_; }
  [[nodiscard]] const LocalizerConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t iterations() const { return filter_.iteration(); }

  /// Telemetry snapshot of the adaptive particle budget. With
  /// cfg.filter.adaptive_budget off this still reports the (fixed) budget
  /// and live ESS fraction; the controller fields stay at their defaults.
  /// With it on, every cfg.filter.budget_adapt_interval-th reading runs the
  /// BudgetController (occupied-bin KLD bound + ESS floor + raw mean-shift
  /// mode stability) and applies its recommendation via
  /// FusionParticleFilter::resize_budget — deterministic, so results remain
  /// bit-identical across thread counts.
  [[nodiscard]] BudgetDiagnostics budget_diagnostics() const;

  /// Borrows a stage tracer for pipeline spans: the filter's per-reading
  /// stages plus this layer's mean-shift and budget-adapt stages
  /// (DESIGN.md §5.11). nullptr disables. Passive — results stay
  /// bit-identical with tracing on. The tracer must outlive the localizer;
  /// single-threaded tracer contract as in obs/trace.hpp.
  void set_stage_tracer(obs::StageTracer* tracer) {
    tracer_ = tracer;
    filter_.set_stage_tracer(tracer);
  }

 private:
  /// Runs the budget controller when it is enabled and the adapt interval
  /// was crossed between `prev_iteration` and the filter's current
  /// iteration. For single readings (prev = current - 1) this fires exactly
  /// when iteration % interval == 0, the historical cadence; fused groups
  /// advance the iteration by K at once and still fire at most once per
  /// crossing instead of skipping boundaries that fall inside the jump.
  void maybe_adapt_budget(std::uint64_t prev_iteration);
  /// Records `m` in the per-sensor detection-history ring.
  void note_reading(const Measurement& m);
  /// Applies a validated same-sensor run as one fused update, then updates
  /// the detection history and budget cadence for every reading in it.
  void apply_fused_group(std::span<const Measurement> group);

  LocalizerConfig cfg_;
  ThreadPool pool_;
  FusionParticleFilter filter_;
  obs::StageTracer* tracer_ = nullptr;  ///< null = tracing off
  MeanShiftEstimator estimator_;
  std::unique_ptr<BudgetController> budget_;  ///< null unless adaptive_budget
  /// Reduced-seed mean-shift for the controller's stability signal (null
  /// unless adaptive_budget): the controller only needs the strong clusters,
  /// not estimate()'s full seed sweep, and it runs every adapt interval.
  std::unique_ptr<MeanShiftEstimator> budget_estimator_;
  // Per-sensor ring buffers of the most recent readings (detection test).
  std::vector<std::vector<double>> recent_readings_;
  std::vector<std::size_t> recent_head_;
  std::vector<std::size_t> recent_size_;
};

}  // namespace radloc

#include "radloc/core/tracker.hpp"

#include <algorithm>
#include <limits>

#include "radloc/common/math.hpp"

namespace radloc {

SourceTracker::SourceTracker(TrackerConfig cfg) : cfg_(cfg) {
  require(cfg_.association_gate > 0.0, "association gate must be positive");
  require(cfg_.confirm_hits >= 1, "confirm_hits must be >= 1");
  require(cfg_.confirm_window >= cfg_.confirm_hits, "confirm window shorter than hits");
  require(cfg_.kill_misses >= 1, "kill_misses must be >= 1");
  require(cfg_.smoothing_alpha > 0.0 && cfg_.smoothing_alpha <= 1.0,
          "smoothing alpha must be in (0, 1]");
}

std::vector<TrackEvent> SourceTracker::update(std::span<const SourceEstimate> estimates) {
  ++update_count_;
  std::vector<TrackEvent> events;

  // Greedy association: globally closest (track, estimate) pairs first.
  struct Pair {
    double d;
    std::size_t track;
    std::size_t estimate;
  };
  std::vector<Pair> pairs;
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    for (std::size_t e = 0; e < estimates.size(); ++e) {
      const double d = distance(tracks_[t].pos, estimates[e].pos);
      if (d <= cfg_.association_gate) pairs.push_back(Pair{d, t, e});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) { return a.d < b.d; });

  std::vector<bool> track_hit(tracks_.size(), false);
  std::vector<bool> estimate_used(estimates.size(), false);
  for (const auto& p : pairs) {
    if (track_hit[p.track] || estimate_used[p.estimate]) continue;
    track_hit[p.track] = true;
    estimate_used[p.estimate] = true;

    Track& track = tracks_[p.track];
    const SourceEstimate& est = estimates[p.estimate];
    const double a = cfg_.smoothing_alpha;
    track.pos = (1.0 - a) * track.pos + a * est.pos;
    track.strength = (1.0 - a) * track.strength + a * est.strength;
    ++track.hits;
    track.misses = 0;
    track.last_seen = update_count_;

    if (track.state == TrackState::kTentative && track.hits >= cfg_.confirm_hits &&
        update_count_ - track.first_seen < cfg_.confirm_window) {
      track.state = TrackState::kConfirmed;
      events.push_back(TrackEvent{TrackEvent::Kind::kConfirmed, track});
    }
  }

  // Miss bookkeeping and track death.
  std::vector<Track> survivors;
  survivors.reserve(tracks_.size());
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    Track& track = tracks_[t];
    if (!track_hit[t]) ++track.misses;
    if (track.misses >= cfg_.kill_misses) {
      if (track.state == TrackState::kConfirmed) {
        events.push_back(TrackEvent{TrackEvent::Kind::kLost, track});
      }
      continue;  // tentative tracks die silently
    }
    survivors.push_back(track);
  }
  tracks_ = std::move(survivors);

  // Unassociated estimates start new tentative tracks.
  for (std::size_t e = 0; e < estimates.size(); ++e) {
    if (estimate_used[e]) continue;
    Track track;
    track.id = next_id_++;
    track.pos = estimates[e].pos;
    track.strength = estimates[e].strength;
    track.hits = 1;
    track.first_seen = update_count_;
    track.last_seen = update_count_;
    if (cfg_.confirm_hits == 1) {
      track.state = TrackState::kConfirmed;
      events.push_back(TrackEvent{TrackEvent::Kind::kConfirmed, track});
    }
    tracks_.push_back(track);
  }

  std::sort(tracks_.begin(), tracks_.end(),
            [](const Track& a, const Track& b) { return a.id < b.id; });
  return events;
}

std::vector<Track> SourceTracker::confirmed() const {
  std::vector<Track> out;
  for (const auto& t : tracks_) {
    if (t.state == TrackState::kConfirmed) out.push_back(t);
  }
  return out;
}

void SourceTracker::reset() {
  tracks_.clear();
  next_id_ = 1;
  update_count_ = 0;
}

}  // namespace radloc

// Source track management — turning per-step estimates into stable,
// operator-facing tracks and alarms.
//
// MultiSourceLocalizer::estimate() is memoryless: it reports the modes of
// the current particle cloud, so estimates can flicker between steps. The
// paper's application (alarming on dirty-bomb placement) needs the
// opposite: persistent source identities, confirmation before alarming,
// and a clean "source disappeared" signal. SourceTracker implements the
// standard M-of-N track lifecycle over the estimate stream:
//
//   tentative --(M hits out of N updates)--> confirmed
//   any state --(miss streak >= kill_misses)--> dropped (+ lost event)
//
// Estimates are associated to tracks greedily by distance (gate =
// `association_gate`); positions and strengths are exponentially smoothed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radloc/common/types.hpp"
#include "radloc/meanshift/meanshift.hpp"

namespace radloc {

using TrackId = std::uint64_t;

enum class TrackState { kTentative, kConfirmed };

struct Track {
  TrackId id = 0;
  TrackState state = TrackState::kTentative;
  Point2 pos;                ///< smoothed position
  double strength = 0.0;     ///< smoothed strength (uCi)
  std::size_t hits = 0;      ///< total associated estimates
  std::size_t misses = 0;    ///< current consecutive misses
  std::uint64_t first_seen = 0;  ///< update index of track birth
  std::uint64_t last_seen = 0;   ///< update index of last associated estimate
};

/// Alarm-style notifications produced by an update.
struct TrackEvent {
  enum class Kind { kConfirmed, kLost } kind = Kind::kConfirmed;
  Track track;  ///< snapshot at event time
};

struct TrackerConfig {
  /// Estimates farther than this from every track start a new track.
  double association_gate = 15.0;
  /// Hits needed (within the first `confirm_window` updates of the track's
  /// life) to confirm. 1/1 confirms instantly.
  std::size_t confirm_hits = 3;
  std::size_t confirm_window = 5;
  /// Consecutive updates without an associated estimate before the track
  /// is dropped.
  std::size_t kill_misses = 5;
  /// Exponential smoothing factor for position/strength (1 = no smoothing).
  double smoothing_alpha = 0.5;
};

class SourceTracker {
 public:
  explicit SourceTracker(TrackerConfig cfg = {});

  /// Feeds one round of estimates (typically once per time step). Returns
  /// the events raised by this update (confirmations and losses).
  std::vector<TrackEvent> update(std::span<const SourceEstimate> estimates);

  /// Live tracks (tentative + confirmed), ordered by id.
  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }

  /// Confirmed tracks only.
  [[nodiscard]] std::vector<Track> confirmed() const;

  [[nodiscard]] std::uint64_t updates() const { return update_count_; }
  [[nodiscard]] const TrackerConfig& config() const { return cfg_; }

  void reset();

 private:
  TrackerConfig cfg_;
  std::vector<Track> tracks_;
  TrackId next_id_ = 1;
  std::uint64_t update_count_ = 0;
};

}  // namespace radloc

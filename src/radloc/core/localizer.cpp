#include "radloc/core/localizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "radloc/common/math.hpp"
#include "radloc/radiation/intensity_model.hpp"

namespace radloc {

MultiSourceLocalizer::MultiSourceLocalizer(const Environment& env, std::vector<Sensor> sensors,
                                           LocalizerConfig cfg, std::uint64_t seed,
                                           ThreadPool* shared_pool)
    : cfg_(cfg),
      // With a borrowed pool the internal one stays empty (1 = inline, no
      // worker threads) — it exists only so estimator_ always has a pool.
      pool_(shared_pool != nullptr ? 1 : cfg.num_threads),
      filter_(env, std::move(sensors), cfg.filter, Rng(seed)),
      estimator_(env.bounds(), cfg.meanshift, shared_pool != nullptr ? *shared_pool : pool_),
      recent_readings_(filter_.sensors().size()),
      recent_head_(filter_.sensors().size(), 0),
      recent_size_(filter_.sensors().size(), 0) {
  require(cfg_.history_window >= 1, "history window must hold at least one reading");
  // The weight update shares the mean-shift pool: one pool, one thread-count
  // knob (Table I's scaling parameter) for the whole measurement hot path.
  filter_.set_thread_pool(shared_pool != nullptr ? shared_pool : &pool_);
  for (auto& buf : recent_readings_) buf.assign(cfg_.history_window, 0.0);
  if (cfg_.filter.adaptive_budget) {
    BudgetControllerConfig bc;
    bc.min_particles = cfg_.filter.min_particles;
    bc.max_particles = cfg_.filter.max_particles;
    bc.kld_epsilon = cfg_.filter.kld_epsilon;
    bc.kld_quantile = cfg_.filter.kld_quantile;
    // 0 derives a pitch finer than the filter's spatial index: a fusion disk
    // spans several bins, so occupancy tracks posterior spread, not disks.
    bc.bin_size = cfg_.filter.budget_bin_size > 0.0 ? cfg_.filter.budget_bin_size
                                                    : cfg_.filter.fusion_range / 4.0;
    bc.stability_window = cfg_.filter.budget_stability_window;
    bc.mode_displacement = cfg_.filter.budget_mode_displacement;
    bc.ess_floor = cfg_.filter.budget_ess_floor;
    budget_ = std::make_unique<BudgetController>(env.bounds(), bc);
    // The stability signal only needs the strong clusters located to well
    // under budget_mode_displacement — a reduced seed sweep with coarse
    // convergence keeps the controller's mean-shift an order of magnitude
    // cheaper than estimate()'s full-precision run.
    MeanShiftConfig mc = cfg_.meanshift;
    mc.max_seeds = std::min<std::size_t>(mc.max_seeds, 16);
    mc.convergence_eps = std::max(mc.convergence_eps, 0.2);
    mc.max_iterations = std::min<std::size_t>(mc.max_iterations, 60);
    budget_estimator_ = std::make_unique<MeanShiftEstimator>(
        env.bounds(), mc, shared_pool != nullptr ? *shared_pool : pool_);
  }
}

void MultiSourceLocalizer::maybe_adapt_budget(std::uint64_t prev_iteration) {
  if (budget_ == nullptr) return;
  // Interval-crossing test: equivalent to iteration % interval == 0 when the
  // iteration advanced by one, and fires exactly once when a fused group
  // jumps it across a boundary.
  const std::uint64_t interval = cfg_.filter.budget_adapt_interval;
  if (prev_iteration / interval == filter_.iteration() / interval) return;
  // Span opens after the interval check: skipped readings cost nothing.
  const obs::ScopedSpan span(tracer_, obs::Stage::kBudgetAdapt);
  const std::size_t current = filter_.size();
  const double ess_fraction =
      filter_.effective_sample_size() / static_cast<double>(current);
  // RAW mean-shift modes (pre detection gating): the stability signal must
  // see weak modes too, and must not depend on the detection history state.
  // The controller invokes the callback only when a shrink is on the table.
  const auto modes = [this] {
    return budget_estimator_->estimate(filter_.positions(), filter_.strengths(),
                                       filter_.weights());
  };
  const std::size_t target = budget_->recommend(filter_.positions(), filter_.weights(),
                                                ess_fraction, modes, current);
  if (target != current) (void)filter_.resize_budget(target);
}

BudgetDiagnostics MultiSourceLocalizer::budget_diagnostics() const {
  BudgetDiagnostics d;
  if (budget_ != nullptr) d = budget_->diagnostics();
  d.current_budget = filter_.size();
  if (budget_ == nullptr) {
    d.ess_fraction = filter_.effective_sample_size() / static_cast<double>(filter_.size());
  }
  return d;
}

void MultiSourceLocalizer::note_reading(const Measurement& m) {
  // Caller validated the sensor id. The ring buffer bounds the detection
  // history so evidence from a since-removed source gets flushed.
  auto& buf = recent_readings_[m.sensor];
  buf[recent_head_[m.sensor]] = m.cpm;
  recent_head_[m.sensor] = (recent_head_[m.sensor] + 1) % buf.size();
  recent_size_[m.sensor] = std::min(recent_size_[m.sensor] + 1, buf.size());
}

void MultiSourceLocalizer::apply_fused_group(std::span<const Measurement> group) {
  const std::uint64_t prev = filter_.iteration();
  (void)filter_.process_fused(group);
  // Detection history sees every reading individually — the fusing is a
  // weight-update implementation detail, not an evidence reduction.
  for (const auto& m : group) note_reading(m);
  maybe_adapt_budget(prev);
}

void MultiSourceLocalizer::process(const Measurement& m) {
  filter_.process(m);
  note_reading(m);
  maybe_adapt_budget(filter_.iteration() - 1);
}

ReadingFault MultiSourceLocalizer::try_process(const Measurement& m) {
  const ReadingFault fault = filter_.try_process(m);
  if (fault != ReadingFault::kNone) return fault;
  note_reading(m);
  maybe_adapt_budget(filter_.iteration() - 1);
  return ReadingFault::kNone;
}

void MultiSourceLocalizer::process_all(std::span<const Measurement> batch) {
  // Validate the whole batch up front: a malformed reading mid-batch used to
  // throw out of the loop with the earlier readings already applied and no
  // record of progress. Now the throw happens before any state changes.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const ReadingFault fault = filter_.validator().check(batch[i]);
    if (fault != ReadingFault::kNone) {
      throw std::invalid_argument(std::string(to_string(fault)) + " (batch index " +
                                  std::to_string(i) + ")");
    }
  }
  if (!cfg_.filter.fused_batch_updates || !filter_.movement_is_static()) {
    for (const auto& m : batch) process(m);
    return;
  }
  // Fused ingest: consecutive same-sensor runs apply as one weight update.
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].sensor == batch[i].sensor) ++j;
    if (j - i == 1) {
      process(batch[i]);
    } else {
      apply_fused_group(batch.subspan(i, j - i));
    }
    i = j;
  }
}

BatchIngestResult MultiSourceLocalizer::try_process_all(
    std::span<const Measurement> batch,
    const std::function<void(std::size_t, ReadingFault)>& on_reading) {
  BatchIngestResult result;
  const auto reject = [&](std::size_t i, ReadingFault fault) {
    ++result.rejected;
    ++result.fault_counts[static_cast<std::size_t>(fault)];
    if (result.first_fault == ReadingFault::kNone) result.first_fault = fault;
    if (on_reading) on_reading(i, fault);
  };
  if (!cfg_.filter.fused_batch_updates || !filter_.movement_is_static()) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const ReadingFault fault = try_process(batch[i]);
      if (fault == ReadingFault::kNone) {
        ++result.processed;
        if (on_reading) on_reading(i, fault);
      } else {
        reject(i, fault);
      }
    }
    return result;
  }
  // Fused ingest: same-sensor runs of WELL-FORMED readings (probed with the
  // const check — the filter's admit() still tallies each exactly once when
  // the run applies) fuse into one update; malformed readings break the run
  // and are tallied through the serial path as before.
  std::size_t i = 0;
  while (i < batch.size()) {
    const ReadingFault fault = filter_.validator().check(batch[i]);
    if (fault != ReadingFault::kNone) {
      reject(i, try_process(batch[i]));
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].sensor == batch[i].sensor &&
           filter_.validator().check(batch[j]) == ReadingFault::kNone) {
      ++j;
    }
    if (j - i == 1) {
      (void)try_process(batch[i]);
      ++result.processed;
      if (on_reading) on_reading(i, ReadingFault::kNone);
    } else {
      apply_fused_group(batch.subspan(i, j - i));
      result.processed += j - i;
      if (on_reading) {
        for (std::size_t k = i; k < j; ++k) on_reading(k, ReadingFault::kNone);
      }
    }
    i = j;
  }
  return result;
}

double MultiSourceLocalizer::detection_evidence(
    const SourceEstimate& candidate, std::span<const SourceEstimate> accepted) const {
  // Profile-likelihood detection test at the candidate's position: with
  // lambda0_i the rate under the accepted sources and g_i the unit-strength
  // contribution of a source at the candidate position, the marginal
  // Poisson log-LR of n_i readings with empirical mean mbar_i is
  //   f(s) = sum_i n_i * [ mbar_i * ln((lambda0_i + s*g_i)/lambda0_i) - s*g_i ],
  // maximized over the nuisance strength s >= 0 (f is concave in s). This
  // asks "is there ANY source strength here that adds evidence" — robust to
  // the mode's own strength estimate being noisy.
  const double range = cfg_.filter.fusion_range;
  const Environment& env = filter_.environment();
  const bool obstacles = cfg_.filter.use_known_obstacles;

  auto contribution = [&](const Source& src, const Sensor& s) {
    return obstacles ? expected_cpm_single(s.pos, src, env, s.response) -
                           s.response.background_cpm
                     : expected_cpm_single_free_space(s.pos, src, s.response) -
                           s.response.background_cpm;
  };

  struct Term {
    double n, mean, base, gain;
  };
  std::vector<Term> terms;
  for (const Sensor& s : filter_.sensors()) {
    if (recent_size_[s.id] == 0) continue;
    if (distance(s.pos, candidate.pos) > range) continue;
    double base = s.response.background_cpm;
    for (const auto& a : accepted) base += contribution(Source{a.pos, a.strength}, s);
    // Guard the bg = 0 corner: ln(x/0) diverges; floor the base rate at a
    // fraction of a count so zero-background deployments work.
    base = std::max(base, 0.1);
    const double gain = contribution(Source{candidate.pos, 1.0}, s);
    if (gain <= 0.0) continue;
    const auto n = static_cast<double>(recent_size_[s.id]);
    double sum = 0.0;
    for (std::size_t r = 0; r < recent_size_[s.id]; ++r) sum += recent_readings_[s.id][r];
    terms.push_back(Term{n, sum / n, base, gain});
  }
  if (terms.empty()) return -std::numeric_limits<double>::infinity();

  auto f = [&](double s) {
    double total = 0.0;
    for (const auto& t : terms) {
      total += t.n * (t.mean * std::log1p(s * t.gain / t.base) - s * t.gain);
    }
    return total;
  };

  // Ternary search on the concave profile over the physical strength range.
  double lo = 0.0;
  double hi = cfg_.filter.strength_max;
  for (int iter = 0; iter < 80; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (f(m1) < f(m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  return f(0.5 * (lo + hi));
}

std::vector<SourceEstimate> MultiSourceLocalizer::estimate() {
  // The span covers the whole estimation stage: the mean-shift sweep plus
  // the greedy detection gating that consumes its modes.
  const obs::ScopedSpan span(tracer_, obs::Stage::kMeanShift);
  auto modes = estimator_.estimate(filter_.positions(), filter_.strengths(), filter_.weights());
  if (std::isinf(cfg_.detection_log_lr) && cfg_.detection_log_lr < 0.0) return modes;

  // Greedy forward selection: accept the candidate with the largest marginal
  // evidence, fold it into the explained model, repeat until no remaining
  // candidate clears the threshold. Phantom modes that only re-explain the
  // far field of accepted sources see their marginal evidence collapse.
  std::vector<SourceEstimate> accepted;
  std::vector<SourceEstimate> pool = std::move(modes);
  while (!pool.empty()) {
    double best_gain = -std::numeric_limits<double>::infinity();
    std::size_t best = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const double gain = detection_evidence(pool[i], accepted);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == pool.size() || best_gain < cfg_.detection_log_lr) break;
    accepted.push_back(pool[best]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const SourceEstimate& a, const SourceEstimate& b) {
              return a.support > b.support;
            });
  return accepted;
}

}  // namespace radloc

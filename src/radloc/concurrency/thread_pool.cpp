#include "radloc/concurrency/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace radloc {

namespace {
// The pool whose work the current thread is executing right now, if any.
// Set around every job body (worker loop, caller-owned chunks, stolen jobs)
// and checked by parallel_for to run nested calls inline. Per-thread, so no
// synchronization; a plain pointer, so pools can nest across distinct pool
// objects without confusion.
thread_local const ThreadPool* tls_active_pool = nullptr;

// RAII marker so every execution path (including early returns) restores the
// previous pool — a task may itself wait on a group and steal foreign jobs.
class ActivePoolScope {
 public:
  explicit ActivePoolScope(const ThreadPool* pool) : prev_(tls_active_pool) {
    tls_active_pool = pool;
  }
  ActivePoolScope(const ActivePoolScope&) = delete;
  ActivePoolScope& operator=(const ActivePoolScope&) = delete;
  ~ActivePoolScope() { tls_active_pool = prev_; }

 private:
  const ThreadPool* prev_;
};
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t max_fanout) {
  if (max_fanout > 0) {
    hw_threads_ = max_fanout;
  } else {
    const std::size_t hw = std::thread::hardware_concurrency();
    hw_threads_ = hw > 0 ? hw : num_threads;
  }
  const std::size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_pool_work() const { return tls_active_pool == this; }

ThreadPool::PoolStats ThreadPool::stats() const {
  PoolStats out;
  {
    const std::lock_guard lock(mu_);
    out.queue_depth = queue_.size();
  }
  out.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  out.steals = steals_.load(std::memory_order_relaxed);
  return out;
}

void ThreadPool::execute(Job& job) {
  // A job that throws must not unwind a worker thread (std::terminate) and
  // must still retire on its Sync — a lost decrement would hang the wave's
  // waiter forever. Capture the exception; the wave's wait point rethrows.
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  std::exception_ptr err;
  {
    const ActivePoolScope scope(this);
    try {
      if (job.chunk != nullptr) {
        (*job.chunk)(job.begin, job.end);
      } else {
        job.owned();
      }
    } catch (...) {
      err = std::current_exception();
    }
  }
  bool done = false;
  {
    const std::lock_guard lock(mu_);
    if (err != nullptr && job.sync->error == nullptr) job.sync->error = err;
    done = (--job.sync->remaining == 0);
  }
  // Outside the lock: the waiter re-checks its predicate under the mutex, so
  // notifying unlocked is safe and avoids a pointless wake-then-block.
  if (done) cv_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(job);
  }
}

void ThreadPool::wait_for(Sync& sync) {
  std::exception_ptr err = wait_for_collect(sync);
  if (err != nullptr) std::rethrow_exception(err);
}

std::exception_ptr ThreadPool::wait_for_collect(Sync& sync) {
  std::unique_lock lock(mu_);
  while (sync.remaining > 0) {
    if (!queue_.empty()) {
      // Steal: run any queued job (ours or another wave's) instead of
      // idling. This is what makes waiting inside pool work deadlock-free —
      // the jobs a waiter depends on are either queued (it runs them) or
      // already running on some thread (it blocks until they retire).
      steals_.fetch_add(1, std::memory_order_relaxed);
      Job job = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      execute(job);
      lock.lock();
      continue;
    }
    cv_.wait(lock, [this, &sync] { return sync.remaining == 0 || !queue_.empty(); });
  }
  // Hand the wave's first error to the caller and clear it so the Sync (a
  // reused TaskGroup's, say) starts the next wave clean.
  return std::exchange(sync.error, nullptr);
}

void ThreadPool::record_error(Sync& sync, std::exception_ptr err) {
  const std::lock_guard lock(mu_);
  if (sync.error == nullptr) sync.error = std::move(err);
}

void ThreadPool::TaskGroup::run(std::function<void()> fn) {
  ThreadPool& pool = *pool_;
  if (pool.workers_.empty()) {
    // No workers: execute inline immediately — the serial baseline. The
    // nesting marker still applies so inner parallel_for calls stay inline.
    // The exception contract is the same as the queued path: run() returns
    // normally, the first captured exception surfaces at wait().
    pool.tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    const ActivePoolScope scope(&pool);
    try {
      fn();
    } catch (...) {
      pool.record_error(sync_, std::current_exception());
    }
    return;
  }
  {
    const std::lock_guard lock(pool.mu_);
    Job job;
    job.owned = std::move(fn);
    job.sync = &sync_;
    ++sync_.remaining;
    pool.queue_.push_back(std::move(job));
  }
  pool.cv_.notify_all();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (n == 0) return;
  // Nesting / oversubscription guard: inside pool work, run the whole range
  // inline. Outer tasks already occupy the threads; fanning out here would
  // only queue-shuffle the same cores, and blocking for it could deadlock.
  // An exception propagates directly to the caller here — same observable
  // contract as the fanned-out path (rethrow at the parallel_for call site).
  if (in_pool_work()) {
    chunk_fn(0, n);
    return;
  }
  // Never fan out wider than the host's cores: on a machine that exposes
  // fewer CPUs than the pool has threads, extra chunks only buy context
  // switches. Results don't depend on the fan-out — chunks cover disjoint
  // index ranges whoever runs them.
  const std::size_t threads = std::min(num_threads(), hw_threads_);
  if (threads == 1 || n == 1) {
    chunk_fn(0, n);
    return;
  }

  const std::size_t chunks = std::min(threads, n);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;

  // Keep the first chunk for the calling thread; queue the rest.
  Sync sync;
  std::size_t begin = base + (rem > 0 ? 1 : 0);
  const std::size_t own_end = begin;
  {
    const std::lock_guard lock(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t len = base + (c < rem ? 1 : 0);
      Job job;
      job.chunk = &chunk_fn;
      job.begin = begin;
      job.end = begin + len;
      job.sync = &sync;
      ++sync.remaining;
      queue_.push_back(std::move(job));
      begin += len;
    }
  }
  cv_.notify_all();

  {
    const ActivePoolScope scope(this);
    try {
      chunk_fn(0, own_end);
    } catch (...) {
      // Must NOT unwind yet: the queued jobs borrow chunk_fn and sync from
      // this stack frame, so returning before they retire would hand the
      // workers dangling pointers. Record the error and fall through to the
      // wait; it rethrows once the wave has drained.
      record_error(sync, std::current_exception());
    }
  }

  // Help drain the queue instead of idling: when workers are slow to wake
  // (or the host exposes fewer cores than the pool has threads) the caller
  // executes the remaining chunks itself. Rethrows the wave's first error.
  wait_for(sync);
}

}  // namespace radloc

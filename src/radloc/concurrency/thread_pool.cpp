#include "radloc/concurrency/thread_pool.hpp"

#include <algorithm>

namespace radloc {

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t max_fanout) {
  if (max_fanout > 0) {
    hw_threads_ = max_fanout;
  } else {
    const std::size_t hw = std::thread::hardware_concurrency();
    hw_threads_ = hw > 0 ? hw : num_threads;
  }
  const std::size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_ && pending_.empty()) return;
      task = pending_.back();
      pending_.pop_back();
    }
    (*task.body)(task.begin, task.end);
    {
      const std::lock_guard lock(mu_);
      --outstanding_;
      if (outstanding_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (n == 0) return;
  // Never fan out wider than the host's cores: on a machine that exposes
  // fewer CPUs than the pool has threads, extra chunks only buy context
  // switches. Results don't depend on the fan-out — chunks cover disjoint
  // index ranges whoever runs them.
  const std::size_t threads = std::min(num_threads(), hw_threads_);
  if (threads == 1 || n == 1) {
    chunk_fn(0, n);
    return;
  }

  const std::size_t chunks = std::min(threads, n);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;

  // Keep the first chunk for the calling thread; queue the rest.
  std::size_t begin = base + (rem > 0 ? 1 : 0);
  const std::size_t own_end = begin;
  {
    const std::lock_guard lock(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t len = base + (c < rem ? 1 : 0);
      pending_.push_back(Task{&chunk_fn, begin, begin + len});
      begin += len;
      ++outstanding_;
    }
  }
  work_ready_.notify_all();

  chunk_fn(0, own_end);

  // Help drain the queue instead of idling: when workers are slow to wake
  // (or the host exposes fewer cores than the pool has threads) the caller
  // executes the remaining chunks itself. Which thread runs a chunk never
  // affects results — chunks touch disjoint index ranges.
  std::unique_lock lock(mu_);
  while (!pending_.empty()) {
    const Task task = pending_.back();
    pending_.pop_back();
    lock.unlock();
    (*task.body)(task.begin, task.end);
    lock.lock();
    --outstanding_;
  }
  work_done_.wait(lock, [this] { return outstanding_ == 0; });
}

}  // namespace radloc

// Fixed-size thread pool with a chunked parallel_for.
//
// The paper's Table I shows the algorithm's concurrency (mostly mean-shift
// seeds) scaling to 24 cores. radloc funnels all parallelism through this
// pool so thread count is an explicit experiment parameter.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radloc {

class ThreadPool {
 public:
  /// `num_threads` == 1 (or 0) means run inline on the caller with no worker
  /// threads at all — the serial baseline for scaling experiments.
  ///
  /// parallel_for never fans out wider than the host's core count (extra
  /// chunks on an oversubscribed host only buy context switches); pass
  /// `max_fanout` > 0 to override that cap, e.g. to exercise the dispatch
  /// machinery in tests regardless of host.
  explicit ThreadPool(std::size_t num_threads, std::size_t max_fanout = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for i in [0, n); blocks until all iterations finish. The
  /// range is split into contiguous chunks, one per thread (iterations
  /// should be of comparable cost — true for mean-shift seeds and particle
  /// weighting). fn must not throw.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& chunk_fn);

  /// Element-wise convenience over the chunked form.
  template <typename Fn>
  void for_each_index(std::size_t n, Fn&& fn) {
    parallel_for(n, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::size_t hw_threads_ = 1;  ///< host core count; caps parallel_for fan-out
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> pending_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
};

}  // namespace radloc
